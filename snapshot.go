package nestedtx

import (
	"fmt"
	"sync"
	"time"

	"nestedtx/internal/checker"
)

// Snapshot is a read-only snapshot transaction: it pins the sequence
// number of the latest published top-level commit and serves every read
// from the committed version chain at or below that point, without ever
// touching the lock manager. Reads are repeatable, multi-object
// consistent (a commit is visible in full or not at all), and never
// block — or are blocked by — writers. A Snapshot is safe for
// concurrent use; Close releases the pin so the store can trim history.
//
// The mode is licensed by the paper's §4.3 equieffectiveness argument:
// a read-only operation returns the state it was given, so running it
// against a committed version is indistinguishable from a serial
// execution inserted at the pin point. [Manager.Verify] machine-checks
// exactly that placement.
type Snapshot struct {
	mgr *Manager
	pin snapPin
	id  string

	mu    sync.Mutex
	done  bool
	reads []checker.SnapRead // recording mode only
}

// snapPin is the store pin interface (satisfied by *snap.Pin); it keeps
// the concrete store type out of the public struct.
type snapPin interface {
	Seq() uint64
	Read(x string) (State, error)
	Release()
}

// BeginSnapshot starts a read-only snapshot transaction pinned at the
// current commit sequence number. The caller must Close it.
func (m *Manager) BeginSnapshot() *Snapshot {
	m.snapMu.Lock()
	n := m.nextSnap
	m.nextSnap++
	m.snapMu.Unlock()
	m.met.SnapBegin()
	s := &Snapshot{mgr: m, pin: m.snap.Acquire(), id: fmt.Sprintf("S%d", n)}
	m.met.Trace("SNAP_BEGIN", s.id, "", 0)
	return s
}

// RunReadOnly runs fn as a read-only snapshot transaction and releases
// the snapshot when fn returns. All reads inside fn observe one
// consistent committed prefix of the history, pinned at entry.
func (m *Manager) RunReadOnly(fn func(*Snapshot) error) error {
	s := m.BeginSnapshot()
	defer s.Close()
	return fn(s)
}

// ID returns the snapshot transaction's identifier (S0, S1, …); the
// namespace is disjoint from the transaction tree's TIDs.
func (s *Snapshot) ID() string { return s.id }

// Seq returns the pinned commit sequence number: the snapshot observes
// exactly the first Seq published top-level commits.
func (s *Snapshot) Seq() uint64 { return s.pin.Seq() }

// Read applies a read-only operation to obj's state as of the pinned
// sequence number and returns its value. It fails if op is not
// read-only, if the snapshot is closed, or if obj was not registered at
// the pin point.
func (s *Snapshot) Read(obj string, op Op) (Value, error) {
	if !op.ReadOnly() {
		return nil, fmt.Errorf("nestedtx: %s: operation %T is not read-only", s.id, op)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done {
		return nil, ErrDone
	}
	start := time.Now()
	st, err := s.pin.Read(obj)
	if err != nil {
		return nil, fmt.Errorf("nestedtx: %s: %w", s.id, err)
	}
	_, v := op.Apply(st)
	s.mgr.met.ObserveSnapRead(time.Since(start))
	if s.mgr.rec != nil {
		s.reads = append(s.reads, checker.SnapRead{Object: obj, Op: op, Value: v})
	}
	return v, nil
}

// Close ends the snapshot transaction and releases its pin. Idempotent.
func (s *Snapshot) Close() error {
	s.mu.Lock()
	if s.done {
		s.mu.Unlock()
		return nil
	}
	s.done = true
	reads := s.reads
	s.reads = nil
	s.mu.Unlock()
	s.pin.Release()
	s.mgr.met.SnapEnd()
	s.mgr.met.Trace("SNAP_END", s.id, "", 0)
	if s.mgr.rec != nil {
		s.mgr.snapMu.Lock()
		s.mgr.snapTxs = append(s.mgr.snapTxs, checker.SnapTx{ID: s.id, Seq: s.pin.Seq(), Reads: reads})
		s.mgr.snapMu.Unlock()
	}
	return nil
}
