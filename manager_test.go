package nestedtx

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func TestRunCommit(t *testing.T) {
	m := NewManager(WithRecording())
	m.MustRegister("r", NewRegister(int64(1)))
	err := m.Run(func(tx *Tx) error {
		v, err := tx.Read("r", RegRead{})
		if err != nil {
			return err
		}
		if v != int64(1) {
			t.Errorf("read %v, want 1", v)
		}
		_, err = tx.Write("r", RegWrite{V: int64(42)})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.State("r")
	if err != nil {
		t.Fatal(err)
	}
	if s.(Register).V != int64(42) {
		t.Fatalf("state = %v, want 42", s)
	}
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestRunAbortRollsBack(t *testing.T) {
	m := NewManager(WithRecording())
	m.MustRegister("r", NewRegister(int64(1)))
	boom := errors.New("boom")
	err := m.Run(func(tx *Tx) error {
		if _, err := tx.Write("r", RegWrite{V: int64(99)}); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	s, _ := m.State("r")
	if s.(Register).V != int64(1) {
		t.Fatalf("state = %v, want rollback to 1", s)
	}
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestSubAbortIsolated(t *testing.T) {
	m := NewManager(WithRecording())
	m.MustRegister("a", Account{Balance: 100})
	err := m.Run(func(tx *Tx) error {
		// First subtransaction commits.
		if err := tx.Sub(func(tx *Tx) error {
			_, err := tx.Do("a", AcctDeposit{Amount: 10})
			return err
		}); err != nil {
			return err
		}
		// Second aborts; its withdrawal must roll back.
		suberr := tx.Sub(func(tx *Tx) error {
			if _, err := tx.Do("a", AcctWithdraw{Amount: 60}); err != nil {
				return err
			}
			return errors.New("changed my mind")
		})
		if suberr == nil {
			return errors.New("subtransaction should have failed")
		}
		// Parent sees the committed deposit, not the aborted withdrawal.
		v, err := tx.Do("a", AcctBalance{})
		if err != nil {
			return err
		}
		if v != int64(110) {
			return fmt.Errorf("balance inside parent = %v, want 110", v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	s, _ := m.State("a")
	if s.(Account).Balance != 110 {
		t.Fatalf("final balance = %v, want 110", s)
	}
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentSiblings(t *testing.T) {
	m := NewManager(WithRecording())
	m.MustRegister("ctr", Counter{})
	err := m.Run(func(tx *Tx) error {
		var hs []*Handle
		for i := 0; i < 8; i++ {
			hs = append(hs, tx.Go(func(tx *Tx) error {
				_, err := tx.Do("ctr", CtrAdd{Delta: 1})
				return err
			}))
		}
		for _, h := range hs {
			if err := h.Wait(); err != nil {
				return err
			}
		}
		v, err := tx.Do("ctr", CtrGet{})
		if err != nil {
			return err
		}
		if v != int64(8) {
			return fmt.Errorf("counter = %v, want 8", v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentTopLevels(t *testing.T) {
	m := NewManager(WithRecording())
	m.MustRegister("ctr", Counter{})
	var wg sync.WaitGroup
	errs := make([]error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = m.Run(func(tx *Tx) error {
				_, err := tx.Do("ctr", CtrAdd{Delta: 1})
				return err
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("tx %d: %v", i, err)
		}
	}
	s, _ := m.State("ctr")
	if s.(Counter).N != 16 {
		t.Fatalf("counter = %v, want 16", s)
	}
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDeadlockDetectedAndVictimized(t *testing.T) {
	m := NewManager(WithRecording())
	m.MustRegister("x", NewRegister(int64(0)))
	m.MustRegister("y", NewRegister(int64(0)))
	// Two top-level transactions locking x,y in opposite orders, rendezvous
	// so both hold their first lock before requesting the second.
	barrier := make(chan struct{}, 2)
	rendezvous := func() {
		barrier <- struct{}{}
		for len(barrier) < 2 {
		}
	}
	var wg sync.WaitGroup
	res := make([]error, 2)
	body := func(first, second string) func(*Tx) error {
		return func(tx *Tx) error {
			if _, err := tx.Write(first, RegWrite{V: int64(1)}); err != nil {
				return err
			}
			rendezvous()
			_, err := tx.Write(second, RegWrite{V: int64(2)})
			return err
		}
	}
	wg.Add(2)
	go func() { defer wg.Done(); res[0] = m.Run(body("x", "y")) }()
	go func() { defer wg.Done(); res[1] = m.Run(body("y", "x")) }()
	wg.Wait()
	deadlocks := 0
	for _, err := range res {
		if errors.Is(err, ErrDeadlock) {
			deadlocks++
		} else if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if deadlocks != 1 {
		t.Fatalf("want exactly 1 deadlock victim, got %d (res=%v)", deadlocks, res)
	}
	if m.Stats().Deadlocks == 0 {
		t.Fatal("stats should count the deadlock")
	}
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestPanicAborts(t *testing.T) {
	m := NewManager(WithRecording())
	m.MustRegister("r", NewRegister(int64(7)))
	func() {
		defer func() {
			if recover() == nil {
				t.Error("panic should propagate")
			}
		}()
		_ = m.Run(func(tx *Tx) error {
			if _, err := tx.Write("r", RegWrite{V: int64(0)}); err != nil {
				return err
			}
			panic("kaboom")
		})
	}()
	s, _ := m.State("r")
	if s.(Register).V != int64(7) {
		t.Fatalf("state = %v, want rollback to 7", s)
	}
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestReadWriteGuards(t *testing.T) {
	m := NewManager()
	m.MustRegister("r", NewRegister(int64(0)))
	err := m.Run(func(tx *Tx) error {
		if _, err := tx.Read("r", RegWrite{V: int64(1)}); err == nil {
			return errors.New("Read must reject write ops")
		}
		if _, err := tx.Write("r", RegRead{}); err == nil {
			return errors.New("Write must reject read ops")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRetryAfterDeadlock(t *testing.T) {
	m := NewManager()
	m.MustRegister("x", NewRegister(int64(0)))
	m.MustRegister("y", NewRegister(int64(0)))
	start := make(chan struct{})
	var wg sync.WaitGroup
	res := make([]error, 2)
	body := func(first, second string) func(*Tx) error {
		return func(tx *Tx) error {
			if _, err := tx.Write(first, RegWrite{V: int64(1)}); err != nil {
				return err
			}
			_, err := tx.Write(second, RegWrite{V: int64(2)})
			return err
		}
	}
	wg.Add(2)
	go func() { defer wg.Done(); <-start; res[0] = m.RunRetry(10, body("x", "y")) }()
	go func() { defer wg.Done(); <-start; res[1] = m.RunRetry(10, body("y", "x")) }()
	close(start)
	wg.Wait()
	if res[0] != nil || res[1] != nil {
		t.Fatalf("retries should eventually succeed: %v %v", res, m.Stats())
	}
}

func TestReturnValue(t *testing.T) {
	m := NewManager()
	m.MustRegister("r", NewRegister(int64(5)))
	err := m.Run(func(tx *Tx) error {
		return tx.Sub(func(tx *Tx) error {
			v, err := tx.Read("r", RegRead{})
			if err != nil {
				return err
			}
			tx.Return(v)
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestUnawaitedFailedChildFailsParent(t *testing.T) {
	m := NewManager()
	m.MustRegister("r", NewRegister(int64(0)))
	err := m.Run(func(tx *Tx) error {
		tx.Go(func(tx *Tx) error { return errors.New("child fails") })
		return nil // parent "forgets" to Wait
	})
	if err == nil {
		t.Fatal("parent must not commit over an unobserved child failure")
	}
}
