#!/usr/bin/env bash
# metrics-smoke: end-to-end probe of the observability surface using the
# real binaries, not the test harness. It builds txserver and txmetrics,
# starts a traced server, drives committed load through the wire,
# fetches STATS + METRICS(dump), and asserts that the histogram counts
# reconcile exactly against the outcome counters, that the quantiles are
# monotone and positive, and that the trace ring is populated. It also
# sends the server SIGQUIT and checks the ring lands in the log, and
# checks the -metrics-every ticker emitted a summary line.
set -euo pipefail

cd "$(dirname "$0")/.."

bin="$(mktemp -d)"
server_pid=""
cleanup() {
  [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
  wait 2>/dev/null || true
  rm -rf "$bin"
}
trap cleanup EXIT

echo "metrics-smoke: building txserver + txmetrics"
go build -o "$bin" ./cmd/txserver ./cmd/txmetrics

addr="127.0.0.1:${METRICS_SMOKE_PORT:-7689}"
"$bin/txserver" -addr "$addr" -trace 8192 -metrics-every 200ms \
  >"$bin/server.log" 2>&1 &
server_pid=$!

up=""
for _ in $(seq 1 100); do
  if "$bin/txmetrics" -addr "$addr" -timeout 1s >/dev/null 2>&1; then
    up=1
    break
  fi
  sleep 0.1
done
if [ -z "$up" ]; then
  echo "metrics-smoke: server never came up" >&2
  cat "$bin/server.log" >&2
  exit 1
fi

echo "metrics-smoke: driving 200 transactions"
"$bin/txmetrics" -addr "$addr" -exercise 200 >/dev/null
"$bin/txmetrics" -addr "$addr" -json -dump >"$bin/metrics.json"

echo "metrics-smoke: reconciling METRICS against STATS"
python3 - "$bin/metrics.json" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    out = json.load(f)
s, m = out["stats"], out["metrics"]

def check(cond, msg):
    if not cond:
        sys.exit("metrics-smoke: FAIL: " + msg + "\n" + json.dumps(out, indent=2))

victims = m["victims_deadlock"] + m["victims_cancelled"]
check(m["tx_commits"] >= 200, "expected >= 200 commits, got %d" % m["tx_commits"])
check(m["tx_commits"] == s["commits"] and m["tx_aborts"] == s["aborts"],
      "outcome counters disagree with STATS")
check(m["tx_latency"]["count"] == s["commits"] + s["aborts"],
      "tx_latency count %d != commits %d + aborts %d"
      % (m["tx_latency"]["count"], s["commits"], s["aborts"]))
check(m["op_latency"]["count"] == s["lock_acquires"] + victims,
      "op_latency count %d != acquires %d + victims %d"
      % (m["op_latency"]["count"], s["lock_acquires"], victims))
check(m["lock_wait"]["count"] == s["lock_waits"] + victims,
      "lock_wait count %d != waits %d + victims %d"
      % (m["lock_wait"]["count"], s["lock_waits"], victims))
check(m["victims"] == victims, "victim breakdown does not sum")
for name in ("op_latency", "tx_latency"):
    h = m[name]
    if h["count"] == 0:
        continue
    check(0 < h["p50_ns"] <= h["p90_ns"] <= h["p99_ns"] <= h["max_ns"],
          name + " quantiles not monotone positive")
check(m["queued_waiters"] == 0 and m["contended_objects"] == 0,
      "gauges nonzero at quiescence")
trace = m.get("trace") or []
check(len(trace) > 0, "dump returned no trace entries")
kinds = {e["kind"] for e in trace}
check(kinds <= {"CREATE", "REQUEST_COMMIT", "COMMIT", "ABORT",
                "LOCK_WAIT", "LOCK_ACQUIRE"},
      "unexpected trace kinds: %s" % kinds)
print("metrics-smoke: reconciled: commits=%d tx_latency n=%d trace entries=%d"
      % (m["tx_commits"], m["tx_latency"]["count"], len(trace)))
EOF

echo "metrics-smoke: SIGQUIT trace dump"
kill -QUIT "$server_pid"
sleep 0.5
grep -q "txserver: trace: .* retained" "$bin/server.log" || {
  echo "metrics-smoke: FAIL: SIGQUIT did not dump the trace ring" >&2
  cat "$bin/server.log" >&2
  exit 1
}
grep -q "txserver: metrics: tx p50=" "$bin/server.log" || {
  echo "metrics-smoke: FAIL: -metrics-every never logged a summary" >&2
  cat "$bin/server.log" >&2
  exit 1
}

kill -TERM "$server_pid"
wait "$server_pid" 2>/dev/null || true
server_pid=""
echo "metrics-smoke: ok"
