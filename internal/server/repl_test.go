package server_test

import (
	"context"
	"errors"
	"net"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nestedtx"
	"nestedtx/client"
	"nestedtx/internal/faultnet"
	"nestedtx/internal/repl"
	"nestedtx/internal/server"
	"nestedtx/internal/wal"
)

// startLeader opens a durable manager in dir and serves it — a
// replication leader (the server attaches a shipper to any durable
// manager).
func startLeader(t *testing.T, fs wal.FS, dir string) (*nestedtx.Manager, *server.Server, string) {
	t.Helper()
	mgr, _, err := nestedtx.OpenDurable(dir, nestedtx.DurableOptions{FS: fs})
	if err != nil {
		t.Fatalf("OpenDurable(%s): %v", dir, err)
	}
	srv, addr := start(t, mgr, server.Config{})
	return mgr, srv, addr
}

// startFollower opens dir as a replica of leaderAddr and serves it
// read-only. The caller owns promotion.
func startFollower(t *testing.T, fs wal.FS, dir, leaderAddr string) (*server.Server, *repl.Follower, string) {
	t.Helper()
	f, err := repl.OpenFollower(dir, wal.Options{FS: fs})
	if err != nil {
		t.Fatalf("OpenFollower(%s): %v", dir, err)
	}
	srv := server.New(nil, server.Config{Follower: f})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go srv.Serve(ln)
	go f.Run(leaderAddr)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("follower shutdown: %v", err)
		}
	})
	return srv, f, ln.Addr().String()
}

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// caughtUp reports whether the follower's log has every record the
// leader's durable log has. Note the follower logs a batch before
// applying its effects, so a read of follower *states* right after this
// returns true may still trail by the final batch — tests that assert
// on state values use caughtUpState instead.
func caughtUp(f *repl.Follower, mgr *nestedtx.Manager) bool {
	st, ok := mgr.WalStats()
	return ok && f.Status().NextLSN == st.DurableLSN
}

// caughtUpState additionally waits for the follower's applied counter
// state to reach n.
func caughtUpState(f *repl.Follower, mgr *nestedtx.Manager, obj string, n int64) bool {
	if !caughtUp(f, mgr) {
		return false
	}
	st, err := f.State(obj)
	return err == nil && st.(nestedtx.Counter).N == n
}

// TestReplicaServesReadsRejectsWrites is the basic leader→follower
// pipeline: commits on the leader appear in the replica's states, the
// replica serves them over STATE, rejects every transaction verb with
// CodeReadOnly, and both sides report status and lag.
func TestReplicaServesReadsRejectsWrites(t *testing.T) {
	fs := wal.NewMemFS()
	mgr, _, leaderAddr := startLeader(t, fs, "leader")
	mgr.MustRegister("ctr", nestedtx.Counter{})
	mgr.MustRegister("reg", nestedtx.NewRegister(int64(0)))

	_, f, followerAddr := startFollower(t, fs, "follower", leaderAddr)
	for i := 0; i < 25; i++ {
		if err := mgr.Run(func(tx *nestedtx.Tx) error {
			if _, err := tx.Write("ctr", nestedtx.CtrAdd{Delta: 2}); err != nil {
				return err
			}
			_, err := tx.Write("reg", nestedtx.RegWrite{V: int64(i)})
			return err
		}); err != nil {
			t.Fatalf("leader commit %d: %v", i, err)
		}
	}
	waitUntil(t, "follower catch-up", func() bool { return caughtUpState(f, mgr, "ctr", 50) })

	fc := dial(t, followerAddr)
	st, err := fc.State("ctr")
	if err != nil {
		t.Fatalf("replica State(ctr): %v", err)
	}
	if st.(nestedtx.Counter).N != 50 {
		t.Fatalf("replica ctr = %v, want 50", st)
	}

	// Every transaction verb is refused read-only — with the sentinel
	// clients can switch leaders on.
	if _, err := fc.Begin(); !errors.Is(err, client.ErrReadOnly) {
		t.Fatalf("BEGIN on replica: err = %v, want ErrReadOnly", err)
	}

	// Status both sides.
	rs, err := fc.ReplStatus()
	if err != nil {
		t.Fatalf("replica ReplStatus: %v", err)
	}
	if rs.Role != "follower" || !rs.Connected || rs.LagRecords != 0 {
		t.Fatalf("replica status = %+v, want connected follower at lag 0", rs)
	}
	lc := dial(t, leaderAddr)
	ls, err := lc.ReplStatus()
	if err != nil {
		t.Fatalf("leader ReplStatus: %v", err)
	}
	if ls.Role != "leader" || len(ls.Followers) != 1 || ls.Followers[0].AckLSN != ls.DurableLSN {
		t.Fatalf("leader status = %+v, want one fully-acked follower", ls)
	}

	// Lag is observable end-to-end through METRICS on both roles.
	lm, err := lc.Metrics(false)
	if err != nil {
		t.Fatalf("leader Metrics: %v", err)
	}
	if lm.ReplFollowers != 1 || lm.ReplBatches == 0 || lm.ReplAcks == 0 || lm.ShipLatency.Count == 0 {
		t.Fatalf("leader repl metrics not populated: %+v", lm)
	}
	fm, err := fc.Metrics(false)
	if err != nil {
		t.Fatalf("follower Metrics: %v", err)
	}
	// 27 records: 25 commits plus the two registrations.
	if fm.ReplRecordsApplied < 27 || fm.ReplLagRecords != 0 {
		t.Fatalf("follower repl metrics not populated: %+v", fm)
	}
}

// TestPromoteEndToEnd: drain a follower to zero lag, promote it over
// the wire, and commit on the new leader. The promotion re-verifies the
// inherited history (Recovery.Verify — Theorem 34 across the handoff).
func TestPromoteEndToEnd(t *testing.T) {
	fs := wal.NewMemFS()
	mgr, leaderSrv, leaderAddr := startLeader(t, fs, "leader")
	mgr.MustRegister("ctr", nestedtx.Counter{})
	fsrv, f, followerAddr := startFollower(t, fs, "follower", leaderAddr)

	for i := 0; i < 30; i++ {
		if err := mgr.Run(func(tx *nestedtx.Tx) error {
			_, err := tx.Write("ctr", nestedtx.CtrAdd{Delta: 1})
			return err
		}); err != nil {
			t.Fatalf("leader commit: %v", err)
		}
	}
	// Fence + drain: no new writes; the follower reaches the leader's
	// exact durable position, so promotion loses nothing.
	waitUntil(t, "drain to zero lag", func() bool { return caughtUp(f, mgr) })
	leaderNext, _ := mgr.WalStats()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := leaderSrv.Shutdown(ctx); err != nil {
		t.Fatalf("leader shutdown: %v", err)
	}

	fc := dial(t, followerAddr)
	if err := fc.Promote(); err != nil {
		t.Fatalf("PROMOTE: %v", err)
	}
	// Promoting a leader is refused.
	if err := fc.Promote(); err == nil {
		t.Fatal("second PROMOTE succeeded on a leader")
	}
	rs, err := fc.ReplStatus()
	if err != nil {
		t.Fatalf("ReplStatus after promote: %v", err)
	}
	if rs.Role != "leader" {
		t.Fatalf("promoted role = %q, want leader", rs.Role)
	}
	if rs.NextLSN != leaderNext.DurableLSN {
		t.Fatalf("promoted NextLSN %d != old leader durable %d", rs.NextLSN, leaderNext.DurableLSN)
	}

	// The promoted node accepts writes and serves the inherited history.
	if err := fc.Run(func(tx *client.Tx) error {
		_, err := tx.Write("ctr", nestedtx.CtrAdd{Delta: 100})
		return err
	}); err != nil {
		t.Fatalf("commit on promoted leader: %v", err)
	}
	st, err := fc.State("ctr")
	if err != nil {
		t.Fatalf("State after promote: %v", err)
	}
	if st.(nestedtx.Counter).N != 130 {
		t.Fatalf("promoted ctr = %v, want 130", st)
	}
	// The promoted manager keeps the Theorem-34 guarantee for new
	// epochs too: its own WAL recovers and verifies.
	if err := fsrv.Manager().SyncWAL(); err != nil {
		t.Fatalf("SyncWAL: %v", err)
	}
	rec, err := wal.Inspect("follower", fs)
	if err != nil {
		t.Fatalf("Inspect promoted log: %v", err)
	}
	if err := rec.Verify(); err != nil {
		t.Fatalf("promoted history fails Verify: %v", err)
	}
}

// TestControlledFailoverUnderChaos is the acceptance scenario: 16
// writers hammer the leader while the replication link is cut
// mid-stream by a faultnet partition and healed; then client traffic is
// fenced, the follower drains to zero lag, the leader dies, and the
// follower promotes. Every client-acked commit must be present on the
// promoted leader, its WAL must be exactly the leader's durable
// history (no unacked suffix invented, nothing lost), and the
// inherited history must pass Recovery.Verify.
func TestControlledFailoverUnderChaos(t *testing.T) {
	fs := wal.NewMemFS()
	mgr, leaderSrv, leaderAddr := startLeader(t, fs, "leader")
	mgr.MustRegister("ctr", nestedtx.Counter{})

	// The follower reaches the leader only through the fault proxy.
	proxy, err := faultnet.New(leaderAddr, faultnet.Faults{}, 42)
	if err != nil {
		t.Fatalf("faultnet: %v", err)
	}
	defer proxy.Close()
	_, f, followerAddr := startFollower(t, fs, "follower", proxy.Addr())

	// 16 writers, paced so the run straddles the partition window. The
	// history is kept modest because promotion re-verifies all of it
	// through the full S9 machine check, whose cost grows steeply with
	// the post-checkpoint record count.
	const writers, txsPerWriter = 16, 8
	var acked atomic.Int64
	pool, err := client.NewPool(leaderAddr, writers, client.WithTimeout(20*time.Second))
	if err != nil {
		t.Fatalf("pool: %v", err)
	}
	defer pool.Close()

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < txsPerWriter; i++ {
				err := pool.RunRetry(8, func(tx *client.Tx) error {
					_, err := tx.Write("ctr", nestedtx.CtrAdd{Delta: 1})
					return err
				})
				if err == nil {
					acked.Add(1)
				}
				time.Sleep(2 * time.Millisecond)
			}
		}()
	}

	// Cut the replication link mid-stream (live connections are RST,
	// possibly mid-batch) while the writers keep committing, then heal:
	// the follower must reconnect and catch back up.
	time.Sleep(30 * time.Millisecond)
	proxy.Partition()
	time.Sleep(100 * time.Millisecond)
	proxy.Heal()
	wg.Wait()

	if got := acked.Load(); got != writers*txsPerWriter {
		t.Fatalf("only %d/%d commits acked (no client faults were injected)", got, writers*txsPerWriter)
	}
	if _, cut := proxy.Stats(); cut == 0 {
		t.Fatal("partition cut no replication connection; the chaos never bit")
	}

	// Fence: the writers are done, every ack delivered. Drain the
	// follower to the leader's exact durable position — the step that
	// makes failover lossless under asynchronous replication.
	waitUntil(t, "post-chaos drain to zero lag", func() bool { return caughtUp(f, mgr) })
	leaderStats, _ := mgr.WalStats()
	leaderStates := map[string]nestedtx.State{}
	if st, err := mgr.State("ctr"); err == nil {
		leaderStates["ctr"] = st
	}

	// The leader dies.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := leaderSrv.Shutdown(ctx); err != nil {
		t.Fatalf("leader shutdown: %v", err)
	}

	// Promote. Promote itself re-runs recovery and Recovery.Verify on
	// the inherited history — a promotion serving an uncertified state
	// is impossible by construction.
	fc := dial(t, followerAddr)
	if err := fc.Promote(); err != nil {
		t.Fatalf("PROMOTE after leader death: %v", err)
	}

	// Every acked commit is present: the counter equals the acked count.
	st, err := fc.State("ctr")
	if err != nil {
		t.Fatalf("State on promoted leader: %v", err)
	}
	if got := st.(nestedtx.Counter).N; got != acked.Load() {
		t.Fatalf("promoted ctr = %d, acked commits = %d", got, acked.Load())
	}
	// No unacked suffix, nothing lost: the promoted WAL is exactly the
	// leader's durable history.
	rec, err := wal.Inspect("follower", fs)
	if err != nil {
		t.Fatalf("Inspect promoted log: %v", err)
	}
	if rec.NextLSN != leaderStats.DurableLSN {
		t.Fatalf("promoted NextLSN %d != dead leader's durable %d", rec.NextLSN, leaderStats.DurableLSN)
	}
	if !reflect.DeepEqual(rec.States()["ctr"], leaderStates["ctr"]) {
		t.Fatalf("promoted states %v != dead leader's %v", rec.States()["ctr"], leaderStates["ctr"])
	}
	if err := rec.Verify(); err != nil {
		t.Fatalf("inherited history fails Theorem-34 verification: %v", err)
	}

	// Life goes on: the promoted leader takes writes.
	if err := fc.Run(func(tx *client.Tx) error {
		_, err := tx.Write("ctr", nestedtx.CtrAdd{Delta: 1})
		return err
	}); err != nil {
		t.Fatalf("commit on promoted leader: %v", err)
	}
}

// TestFollowerRestartMidCatchUp: a follower dies partway through
// catching up on a large backlog (its stream stalled by the fault
// proxy), restarts, and resumes from its recovered position — ending
// byte-equivalent with the leader.
func TestFollowerRestartMidCatchUp(t *testing.T) {
	fs := wal.NewMemFS()
	mgr, _, leaderAddr := startLeader(t, fs, "leader")
	mgr.MustRegister("ctr", nestedtx.Counter{})
	// Big enough that catch-up takes several max-size batches (512
	// records each): the stall below fires after the second one, so the
	// follower restarts with a strict prefix of the backlog.
	const backlog = 1200
	for i := 0; i < backlog; i++ {
		if err := mgr.Run(func(tx *nestedtx.Tx) error {
			_, err := tx.Write("ctr", nestedtx.CtrAdd{Delta: 1})
			return err
		}); err != nil {
			t.Fatalf("backlog commit %d: %v", i, err)
		}
	}

	// The stream stalls after a few frames: the follower gets part of
	// the backlog, then silence.
	proxy, err := faultnet.New(leaderAddr, faultnet.Faults{
		StallAfterFrames: 3, StallFor: 30 * time.Second,
	}, 7)
	if err != nil {
		t.Fatalf("faultnet: %v", err)
	}
	defer proxy.Close()

	f, err := repl.OpenFollower("follower", wal.Options{FS: fs})
	if err != nil {
		t.Fatalf("OpenFollower: %v", err)
	}
	go f.Run(proxy.Addr())
	// Wait for at least one applied batch, then kill the follower while
	// the stalled stream still holds most of the backlog.
	waitUntil(t, "partial catch-up", func() bool { return f.Status().NextLSN > 500 })
	mid := f.Status().NextLSN
	if err := f.Close(); err != nil {
		t.Fatalf("close mid-catch-up: %v", err)
	}
	leaderStats, _ := mgr.WalStats()
	if mid >= leaderStats.DurableLSN {
		t.Fatalf("stall never bit: follower reached %d of %d before restart", mid, leaderStats.DurableLSN)
	}

	// Restart, direct to the leader this time.
	f2, err := repl.OpenFollower("follower", wal.Options{FS: fs})
	if err != nil {
		t.Fatalf("reopen follower: %v", err)
	}
	defer f2.Close()
	if got := f2.Status().NextLSN; got != mid {
		t.Fatalf("recovered follower NextLSN %d, want the mid-catch-up position %d", got, mid)
	}
	go f2.Run(leaderAddr)
	waitUntil(t, "resumed catch-up", func() bool { return caughtUpState(f2, mgr, "ctr", backlog) })
	st, err := f2.State("ctr")
	if err != nil {
		t.Fatalf("State: %v", err)
	}
	if st.(nestedtx.Counter).N != backlog {
		t.Fatalf("resumed follower ctr = %v, want %d", st, backlog)
	}
	// The full machine check is cubic in the record count, so on this
	// deliberately large backlog assert the linear invariants instead:
	// the resumed log is LSN-contiguous (no gap where the restart
	// spliced) and replays to the leader's exact state. Theorem-34
	// verification of replicated histories is covered by the promote
	// tests above.
	rec, err := wal.Inspect("follower", fs)
	if err != nil {
		t.Fatalf("Inspect: %v", err)
	}
	if rec.NextLSN != leaderStats.DurableLSN {
		t.Fatalf("resumed NextLSN %d != leader durable %d", rec.NextLSN, leaderStats.DurableLSN)
	}
	want := rec.CheckpointLSN
	for _, r := range rec.Records {
		if want != 0 && r.LSN != want {
			t.Fatalf("resumed log has a gap: LSN %d, want %d", r.LSN, want)
		}
		want = r.LSN + 1
	}
	lst, err := mgr.State("ctr")
	if err != nil {
		t.Fatalf("leader State: %v", err)
	}
	if !reflect.DeepEqual(rec.States()["ctr"], lst) {
		t.Fatalf("resumed states %v != leader %v", rec.States()["ctr"], lst)
	}
}

// TestReplicaPoolRoutingAndFailover drives the client-side view:
// ReadState prefers the replica, and after the leader dies and the
// replica is promoted, writes chase the new leader automatically.
func TestReplicaPoolRoutingAndFailover(t *testing.T) {
	fs := wal.NewMemFS()
	mgr, leaderSrv, leaderAddr := startLeader(t, fs, "leader")
	mgr.MustRegister("ctr", nestedtx.Counter{})
	fsrv, f, followerAddr := startFollower(t, fs, "follower", leaderAddr)

	rp, err := client.NewReplicaPool(leaderAddr, []string{followerAddr}, 2,
		client.WithTimeout(10*time.Second))
	if err != nil {
		t.Fatalf("NewReplicaPool: %v", err)
	}
	defer rp.Close()

	for i := 0; i < 10; i++ {
		if err := rp.Run(func(tx *client.Tx) error {
			_, err := tx.Write("ctr", nestedtx.CtrAdd{Delta: 1})
			return err
		}); err != nil {
			t.Fatalf("pool write %d: %v", i, err)
		}
	}
	waitUntil(t, "replica catch-up", func() bool { return caughtUpState(f, mgr, "ctr", 10) })

	before := fsrv.Counters().Requests
	st, err := rp.ReadState("ctr")
	if err != nil {
		t.Fatalf("ReadState: %v", err)
	}
	if st.(nestedtx.Counter).N != 10 {
		t.Fatalf("ReadState = %v, want 10", st)
	}
	if fsrv.Counters().Requests == before {
		t.Fatal("ReadState did not touch the replica")
	}

	// Leader dies; operator promotes the replica; the pool's next write
	// fails over to it.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := leaderSrv.Shutdown(ctx); err != nil {
		t.Fatalf("leader shutdown: %v", err)
	}
	if _, err := fsrv.Promote(); err != nil {
		t.Fatalf("Promote: %v", err)
	}
	if err := rp.RunRetry(8, func(tx *client.Tx) error {
		_, err := tx.Write("ctr", nestedtx.CtrAdd{Delta: 5})
		return err
	}); err != nil {
		t.Fatalf("write after failover: %v", err)
	}
	if rp.Leader() != followerAddr {
		t.Fatalf("pool leader = %s, want the promoted %s", rp.Leader(), followerAddr)
	}
	if rp.Failovers() != 1 {
		t.Fatalf("failovers = %d, want 1", rp.Failovers())
	}
	st, err = rp.ReadState("ctr")
	if err != nil {
		t.Fatalf("ReadState after failover: %v", err)
	}
	if st.(nestedtx.Counter).N != 15 {
		t.Fatalf("state after failover = %v, want 15", st)
	}
}
