package server

import (
	"errors"
	"testing"

	"nestedtx/internal/wire"
)

// TestMapOpErrNilManager: mapOpErr's unregistered-object classification
// consults the manager, which is nil during the promotion window (the
// follower is detached, the recovered manager not yet installed). An op
// error mapped in that window must come back as a typed response, not
// crash the session on the nil manager.
func TestMapOpErrNilManager(t *testing.T) {
	ss := &session{srv: &Server{}}
	resp := ss.mapOpErr("obj", errors.New("some op failure"))
	if resp == nil || resp.OK {
		t.Fatalf("mapOpErr with nil manager: %+v, want a failure response", resp)
	}
	if resp.Code != wire.CodeInternal {
		t.Fatalf("mapOpErr with nil manager: code %q, want %q", resp.Code, wire.CodeInternal)
	}
}
