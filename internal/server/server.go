// Package server exposes a nestedtx.Manager over TCP — the Argus
// deployment scenario: many remote clients sharing one transaction
// universe. It speaks the internal/wire protocol; package client is the
// matching Go client.
//
// Each connection is a session. A session owns the transaction handles
// it opens: BEGIN starts a server-side top-level transaction whose body
// is a command loop driven by the session's subsequent requests, SUB
// nests a child loop inside it (mirroring Tx.Sub's stack discipline),
// and READ/WRITE/COMMIT/ABORT are executed by the loop owning the
// handle. Concurrent sessions therefore map onto concurrent top-level
// transactions of the shared Manager, and every locking, inheritance
// and deadlock-detection rule of the runtime applies across the network
// exactly as in-process. With the Manager in recording mode, a server
// run's schedule remains machine-checkable by Manager.Verify after
// [Server.Shutdown] has drained the sessions.
package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"nestedtx"
	"nestedtx/internal/adt"
	"nestedtx/internal/dst/clock"
	"nestedtx/internal/obs"
	"nestedtx/internal/repl"
	"nestedtx/internal/wire"
)

func newBufReader(c net.Conn) *bufio.Reader { return bufio.NewReaderSize(c, 32<<10) }
func newBufWriter(c net.Conn) *bufio.Writer { return bufio.NewWriterSize(c, 32<<10) }

// Config parameterises a Server.
type Config struct {
	// MaxConns caps concurrent sessions; excess connections are refused
	// with a busy frame (connection-limit backpressure). <= 0 means
	// unlimited.
	MaxConns int
	// IdleTimeout is how long a session may sit with no request before
	// the reaper aborts its transactions and closes it, reclaiming locks
	// from abandoned clients. <= 0 disables reaping.
	IdleTimeout time.Duration
	// RequestTimeout is the per-request deadline: a request (typically an
	// access blocked on a lock) that cannot complete within it aborts its
	// transaction and fails with a timeout frame. <= 0 means the default
	// of 10s.
	RequestTimeout time.Duration
	// Follower, when non-nil, runs the server as a read replica: it
	// serves STATE from the follower's replicated states, rejects every
	// transaction verb with CodeReadOnly, and stays promotable (see
	// [Server.Promote]). New's mgr argument may be nil in this mode.
	// The caller owns starting Follower.Run.
	Follower *repl.Follower
	// PromoteOptions are the Manager options a promotion opens the
	// inherited data directory with (recording mode, tracing, ...).
	PromoteOptions []nestedtx.Option
	// Clock is the time source for the per-request timeout timers. nil
	// means the wall clock; the deterministic simulator injects its
	// virtual clock so request timeouts are event-queue time. Network
	// deadlines (connection reads/writes) stay on the wall clock — they
	// guard real sockets.
	Clock clock.Clock
}

const defaultRequestTimeout = 10 * time.Second

// Counters are the server's own counters, exposed (with the lock
// manager's) via STATS.
//
// A [Server.Counters] snapshot is mutually consistent: all fields are
// updated and copied under one lock, never read field-by-field from
// independent atomics. Cross-field invariants therefore hold in every
// snapshot — in particular Commits + Aborts <= TxBegun (a transaction's
// outcome is never visible before its beginning) and snapshots taken in
// sequence are monotone per field.
type Counters struct {
	ActiveSessions  int64
	TotalSessions   uint64
	ReapedSessions  uint64
	RejectedConns   uint64
	Requests        uint64
	TxBegun         uint64
	Commits         uint64
	Aborts          uint64
	DeadlockVictims uint64
	// SnapshotTxs counts read-only snapshot transactions begun; kept out
	// of TxBegun so Commits + Aborts <= TxBegun stays an invariant.
	SnapshotTxs uint64
}

// Server serves one Manager's transaction universe over a listener.
type Server struct {
	mgr *nestedtx.Manager
	cfg Config

	cmu sync.Mutex // guards cnt; see Counters' consistency contract
	cnt Counters

	mu       sync.Mutex
	mgrMu    sync.Mutex // guards mgr/follower/shipper across Promote
	ln       net.Listener
	sessions map[*session]struct{}
	closed   bool
	reapStop chan struct{}
	wg       sync.WaitGroup // live session goroutines

	follower *repl.Follower // non-nil while serving as a read replica
	shipper  *repl.Shipper  // non-nil while serving a durable leader
}

// New returns a Server for mgr. The objects clients may touch must be
// Registered on mgr before Serve. With cfg.Follower set the server is a
// read replica and mgr may be nil; a durable mgr makes the server a
// replication leader (followers may connect with REPL_HELLO).
func New(mgr *nestedtx.Manager, cfg Config) *Server {
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = defaultRequestTimeout
	}
	cfg.Clock = clock.Or(cfg.Clock)
	s := &Server{
		mgr:      mgr,
		cfg:      cfg,
		follower: cfg.Follower,
		sessions: make(map[*session]struct{}),
		reapStop: make(chan struct{}),
	}
	if mgr != nil && mgr.Durable() {
		s.shipper = repl.NewShipper(mgr.WAL(), mgr.Metrics())
	}
	return s
}

// Manager returns the served manager (for post-drain Verify / State).
// Nil while the server is a follower that has not been promoted.
func (s *Server) Manager() *nestedtx.Manager {
	s.mgrMu.Lock()
	defer s.mgrMu.Unlock()
	return s.mgr
}

// Follower returns the replica state (nil on a leader).
func (s *Server) Follower() *repl.Follower {
	s.mgrMu.Lock()
	defer s.mgrMu.Unlock()
	return s.follower
}

func (s *Server) shipperRef() *repl.Shipper {
	s.mgrMu.Lock()
	defer s.mgrMu.Unlock()
	return s.shipper
}

// Promote turns a follower server into a leader: streaming stops, the
// inherited data directory is recovered by nestedtx.OpenDurable, the
// recovered history is re-certified by Recovery.Verify (Theorem 34 must
// hold for the state the new leader will serve — a promotion that fails
// verification is refused), and only then does the server start
// accepting writes and shipping to its own followers. The recovered
// objects are Registered on the new manager by recovery itself.
func (s *Server) Promote() (*nestedtx.Recovery, error) {
	s.mgrMu.Lock()
	f := s.follower
	if f == nil {
		s.mgrMu.Unlock()
		return nil, errors.New("server: not a follower")
	}
	s.follower = nil // claim the promotion; concurrent calls fail above
	s.mgrMu.Unlock()

	if err := f.Close(); err != nil {
		s.mgrMu.Lock()
		s.follower = f
		s.mgrMu.Unlock()
		return nil, fmt.Errorf("server: promote: close replica log: %w", err)
	}
	mgr, rec, err := nestedtx.OpenDurable(f.Dir(), f.WalOptions(), s.cfg.PromoteOptions...)
	if err != nil {
		s.mgrMu.Lock()
		s.follower = f // log closed, but states still serve reads
		s.mgrMu.Unlock()
		return nil, fmt.Errorf("server: promote: recover %s: %w", f.Dir(), err)
	}
	if err := rec.Verify(); err != nil {
		mgr.CloseWAL()
		s.mgrMu.Lock()
		s.follower = f
		s.mgrMu.Unlock()
		return nil, fmt.Errorf("server: promote: inherited history fails verification: %w", err)
	}
	s.mgrMu.Lock()
	s.mgr = mgr
	s.shipper = repl.NewShipper(mgr.WAL(), mgr.Metrics())
	s.mgrMu.Unlock()
	return rec, nil
}

// Counters returns a consistent snapshot of the server counters (see
// the type's consistency contract).
func (s *Server) Counters() Counters {
	s.cmu.Lock()
	defer s.cmu.Unlock()
	return s.cnt
}

// count applies one counter mutation under the counter lock. Every
// update goes through here, so snapshots never observe a torn state.
func (s *Server) count(f func(*Counters)) {
	s.cmu.Lock()
	f(&s.cnt)
	s.cmu.Unlock()
}

// Addr returns the listener address (nil before Serve).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// ListenAndServe listens on addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts sessions on ln until Shutdown closes it. It returns nil
// after a graceful Shutdown and the accept error otherwise.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("server: already shut down")
	}
	s.ln = ln
	s.mu.Unlock()
	if s.cfg.IdleTimeout > 0 {
		go s.reapLoop()
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.isClosed() {
				return nil
			}
			return err
		}
		if s.cfg.MaxConns > 0 && s.Counters().ActiveSessions >= int64(s.cfg.MaxConns) {
			s.count(func(c *Counters) { c.RejectedConns++ })
			go refuse(conn)
			continue
		}
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// refuse tells a connection the server is full, then closes it.
func refuse(conn net.Conn) {
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(2 * time.Second))
	bw := newBufWriter(conn)
	wire.WriteFrame(bw, &wire.Response{OK: false, Code: wire.CodeBusy,
		Err: "server: connection limit reached"})
}

// Shutdown drains the server: the listener closes, every session's
// in-flight transactions are aborted cleanly (so a recorded schedule
// stays well-formed and verifiable), and all session goroutines are
// awaited. It returns ctx.Err() if the drain outlives ctx.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	close(s.reapStop)
	open := make([]*session, 0, len(s.sessions))
	for ss := range s.sessions {
		open = append(open, ss)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, ss := range open {
		ss.close()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		if f := s.Follower(); f != nil {
			return f.Close()
		}
		if m := s.Manager(); m != nil {
			// On a durable manager every acknowledged commit was fsynced
			// before its reply went out, so the drain leaves nothing
			// volatile; the final flush covers group-commit stragglers that
			// were never acknowledged and costs one fsync at most.
			return m.SyncWAL()
		}
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// reapLoop periodically aborts and closes sessions that have been idle —
// no request in flight and none received — for IdleTimeout, so
// abandoned clients cannot pin locks forever.
func (s *Server) reapLoop() {
	period := s.cfg.IdleTimeout / 4
	if period < time.Millisecond {
		period = time.Millisecond
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-s.reapStop:
			return
		case <-tick.C:
		}
		cutoff := time.Now().Add(-s.cfg.IdleTimeout).UnixNano()
		s.mu.Lock()
		var stale []*session
		for ss := range s.sessions {
			if !ss.inFlight.Load() && ss.lastActive.Load() < cutoff {
				stale = append(stale, ss)
			}
		}
		s.mu.Unlock()
		for _, ss := range stale {
			s.count(func(c *Counters) { c.ReapedSessions++ })
			ss.close()
		}
	}
}

// session is one connection's state. All fields below the atomics are
// touched only by the session's own goroutine.
type session struct {
	srv    *Server
	conn   net.Conn
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup // top-level transaction runner goroutines

	lastActive atomic.Int64 // unix nanos of last request activity
	inFlight   atomic.Bool  // a request is being handled right now

	txs    map[uint64]*txHandle
	ros    map[uint64]roTx // open read-only snapshot transactions
	nextTx uint64          // shared id space for txs and ros
}

// roTx is an open read-only snapshot transaction, served either by the
// leader's version store (*nestedtx.Snapshot) or by a follower's
// replicated one (*repl.Snapshot). It never touches the lock manager,
// which is why its verbs bypass the follower and promotion gates.
type roTx interface {
	ID() string
	Seq() uint64
	Read(obj string, op adt.Op) (adt.Value, error)
	Close() error
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	ctx, cancel := context.WithCancel(context.Background())
	ss := &session{srv: s, conn: conn, ctx: ctx, cancel: cancel,
		txs: make(map[uint64]*txHandle), ros: make(map[uint64]roTx)}
	ss.lastActive.Store(time.Now().UnixNano())
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		cancel()
		conn.Close()
		return
	}
	s.sessions[ss] = struct{}{}
	s.mu.Unlock()
	s.count(func(c *Counters) { c.ActiveSessions++; c.TotalSessions++ })
	defer func() {
		// Abort whatever the client left open, wait for the transaction
		// goroutines to finish (so Shutdown → Verify sees quiescence),
		// then deregister.
		cancel()
		conn.Close()
		ss.wg.Wait()
		// Release any snapshot pins the client left open so the version
		// store can trim the history they were holding.
		for _, ro := range ss.ros {
			ro.Close()
		}
		s.mu.Lock()
		delete(s.sessions, ss)
		s.mu.Unlock()
		s.count(func(c *Counters) { c.ActiveSessions-- })
	}()

	br := newBufReader(conn)
	bw := newBufWriter(conn)
	for {
		req, err := wire.ReadRequest(br)
		if err != nil {
			return // EOF, reset, or reaped/drained under us
		}
		if req.Type == wire.TReplHello {
			// The connection becomes a replication push stream: the shipper
			// owns both directions until the follower disconnects. Marked
			// permanently in flight so the idle reaper leaves it alone.
			ss.inFlight.Store(true)
			ss.serveRepl(req, br, bw)
			return
		}
		ss.inFlight.Store(true)
		ss.lastActive.Store(time.Now().UnixNano())
		s.count(func(c *Counters) { c.Requests++ })
		resp := ss.handle(req)
		resp.Seq = req.Seq
		werr := wire.WriteFrameMax(bw, resp, wire.MaxResponseSize)
		ss.lastActive.Store(time.Now().UnixNano())
		ss.inFlight.Store(false)
		if werr != nil {
			return
		}
	}
}

// close aborts the session's transactions and tears down its connection;
// the session goroutine finishes the cleanup.
func (ss *session) close() {
	ss.cancel()
	ss.conn.Close()
}

// ---- transaction handles ----

// errAbortRequested is the sentinel a command loop returns when the
// client asked for ABORT: it makes the runtime roll the transaction
// back, and the handler maps it back to a successful ABORT response.
var errAbortRequested = errors.New("server: abort requested by client")

type cmdKind int

const (
	cmdOp cmdKind = iota
	cmdSub
	cmdFinish
)

type opResult struct {
	v   nestedtx.Value
	err error
}

type txCmd struct {
	kind  cmdKind
	obj   string
	op    adt.Op
	child *txHandle     // cmdSub
	abort bool          // cmdFinish
	reply chan opResult // cmdOp; buffered so the loop never blocks on it
}

// txHandle is one open transaction (top-level or sub) owned by a session.
type txHandle struct {
	id     uint64
	parent *txHandle // nil for top-level handles

	// treeCtx covers the whole top-level tree; cancelling it (per-request
	// timeout, session teardown) aborts every transaction in the tree.
	treeCtx    context.Context
	treeCancel context.CancelFunc

	cmds    chan txCmd
	started chan string   // tx.ID(), sent once the body is entered
	res     chan error    // the Run/Sub outcome, sent exactly once
	done    chan struct{} // closed after res is sent

	busyChild *txHandle // non-nil while a SUB is open under this handle
}

func (ss *session) newHandle(parent *txHandle) *txHandle {
	ss.nextTx++
	h := &txHandle{
		id:      ss.nextTx,
		parent:  parent,
		cmds:    make(chan txCmd),
		started: make(chan string, 1),
		res:     make(chan error, 1),
		done:    make(chan struct{}),
	}
	if parent == nil {
		h.treeCtx, h.treeCancel = context.WithCancel(ss.ctx)
	} else {
		h.treeCtx, h.treeCancel = parent.treeCtx, parent.treeCancel
	}
	return h
}

// root returns the top-level handle of h's tree.
func (h *txHandle) root() *txHandle {
	for h.parent != nil {
		h = h.parent
	}
	return h
}

// body is the command loop run as the transaction's body: it executes
// the session's requests against the live *nestedtx.Tx until the client
// finishes the handle or the tree's context is cancelled.
func (ss *session) body(h *txHandle) func(*nestedtx.Tx) error {
	return func(tx *nestedtx.Tx) error {
		h.started <- tx.ID()
		for {
			select {
			case cmd := <-h.cmds:
				switch cmd.kind {
				case cmdOp:
					v, err := tx.Do(cmd.obj, cmd.op)
					cmd.reply <- opResult{v, err}
				case cmdSub:
					// Runs the child's loop on this stack, exactly like a
					// local Tx.Sub body; we resume when the child finishes.
					err := tx.Sub(ss.body(cmd.child))
					cmd.child.res <- err
					close(cmd.child.done)
				case cmdFinish:
					if cmd.abort {
						return errAbortRequested
					}
					return nil
				}
			case <-h.treeCtx.Done():
				return h.treeCtx.Err()
			}
		}
	}
}

// ---- request handling ----

func (ss *session) handle(req *wire.Request) *wire.Response {
	// Read-only snapshot transactions bypass the locking gates below:
	// they never touch the lock manager, so a follower can serve them
	// (from its replicated version store) just as well as the leader.
	switch req.Type {
	case wire.TBegin:
		if req.ReadOnly {
			return ss.handleBeginRO()
		}
	case wire.TSub, wire.TRead, wire.TWrite, wire.TCommit, wire.TAbort:
		if _, ok := ss.ros[req.Tx]; ok {
			return ss.handleRO(req)
		}
	}
	switch req.Type {
	case wire.TBegin, wire.TSub, wire.TRead, wire.TWrite, wire.TCommit, wire.TAbort:
		// A read replica serves no locking transactions at all — not even
		// reads: a replica read is a plain committed-state read (STATE)
		// or a snapshot transaction, never a locked access. Writes must
		// go to the leader.
		if f := ss.srv.Follower(); f != nil {
			return fail(wire.CodeReadOnly,
				fmt.Sprintf("server: read-only replica of %s; transactions go to the leader", f.Leader()))
		}
		// Between "promotion claimed" and "recovered manager installed"
		// both the follower and the manager are nil; a transaction verb
		// in that window must be refused, not crash on the missing
		// manager. CodeReadOnly is what retrying clients already chase.
		if ss.srv.Manager() == nil {
			return fail(wire.CodeReadOnly, "server: promotion in progress; retry")
		}
	}
	switch req.Type {
	case wire.TPing:
		return &wire.Response{OK: true}
	case wire.TStats:
		return ss.handleStats()
	case wire.TMetrics:
		return ss.handleMetrics(req.Dump)
	case wire.TState:
		return ss.handleState(req)
	case wire.TReplStatus:
		return ss.handleReplStatus()
	case wire.TPromote:
		return ss.handlePromote()
	case wire.TBegin:
		return ss.handleBegin()
	case wire.TSub:
		return ss.handleSub(req)
	case wire.TRead, wire.TWrite:
		return ss.handleOp(req)
	case wire.TCommit:
		return ss.handleFinish(req, false)
	case wire.TAbort:
		return ss.handleFinish(req, true)
	default:
		return fail(wire.CodeBadRequest, fmt.Sprintf("unknown request type %q", req.Type))
	}
}

func fail(code, msg string) *wire.Response {
	return &wire.Response{OK: false, Code: code, Err: msg}
}

// serveRepl hands a REPL_HELLO connection to the shipper. Only a
// durable leader ships; a follower or volatile server refuses.
func (ss *session) serveRepl(req *wire.Request, br *bufio.Reader, bw *bufio.Writer) {
	sh := ss.srv.shipperRef()
	if sh == nil {
		msg := "server: replication requires a durable leader"
		if ss.srv.Follower() != nil {
			msg = "server: cannot replicate from a follower"
		}
		wire.WriteFrameMax(bw, &wire.Response{Seq: req.Seq, OK: false,
			Code: wire.CodeBadRequest, Err: msg}, wire.MaxResponseSize)
		bw.Flush()
		return
	}
	sh.Serve(ss.ctx.Done(), ss.conn.RemoteAddr().String(), req, br, bw)
}

func (ss *session) handleReplStatus() *wire.Response {
	if f := ss.srv.Follower(); f != nil {
		return &wire.Response{OK: true, ReplStatus: f.Status()}
	}
	if sh := ss.srv.shipperRef(); sh != nil {
		return &wire.Response{OK: true, ReplStatus: sh.Status()}
	}
	return fail(wire.CodeNotConfigured, "server: replication not configured (volatile manager)")
}

func (ss *session) handlePromote() *wire.Response {
	if _, err := ss.srv.Promote(); err != nil {
		return fail(wire.CodeBadRequest, err.Error())
	}
	return &wire.Response{OK: true}
}

func (ss *session) handleStats() *wire.Response {
	c := ss.srv.Counters()
	var lk nestedtx.Stats
	if m := ss.srv.Manager(); m != nil {
		lk = m.Stats()
	}
	return &wire.Response{OK: true, Stats: &wire.Stats{
		ActiveSessions:  c.ActiveSessions,
		TotalSessions:   c.TotalSessions,
		ReapedSessions:  c.ReapedSessions,
		RejectedConns:   c.RejectedConns,
		Requests:        c.Requests,
		TxBegun:         c.TxBegun,
		Commits:         c.Commits,
		Aborts:          c.Aborts,
		DeadlockVictims: c.DeadlockVictims,
		SnapshotTxs:     c.SnapshotTxs,
		Acquires:        lk.Acquires,
		Waits:           lk.Waits,
		Deadlocks:       lk.Deadlocks,
		CommitMoves:     lk.CommitMoves,
		AbortReleases:   lk.AbortReleases,
		Wakeups:         lk.Wakeups,
		SpuriousWakeups: lk.SpuriousWakeups,
		MaxQueueDepth:   lk.MaxQueueDepth,
		LockShards:      lk.Shards,
		LockEscalations: lk.Escalations,
	}}
}

// maxTraceEntries caps a METRICS dump so the response frame stays under
// wire.MaxFrameSize even with long transaction names (~200 bytes per
// encoded entry against the 1 MiB frame limit).
const maxTraceEntries = 4096

func histQ(s obs.HistSnapshot) wire.HistQ {
	return wire.HistQ{
		Count: s.Count,
		SumNS: int64(s.Sum),
		P50NS: int64(s.Quantile(50)),
		P90NS: int64(s.Quantile(90)),
		P99NS: int64(s.Quantile(99)),
		MaxNS: int64(s.Max),
	}
}

func (ss *session) handleMetrics(dump bool) *wire.Response {
	var met *obs.Metrics
	if f := ss.srv.Follower(); f != nil {
		met = f.Metrics()
	} else if m := ss.srv.Manager(); m != nil {
		met = m.Metrics()
	} else {
		return fail(wire.CodeInternal, "server: no metrics source")
	}
	s := met.Snapshot()
	m := &wire.Metrics{
		OpLatency:        histQ(s.OpLatency),
		TxLatency:        histQ(s.TxLatency),
		LockWait:         histQ(s.LockWait),
		TxCommits:        s.TxCommits,
		TxAborts:         s.TxAborts,
		VictimsDeadlock:  s.VictimsDeadlock,
		VictimsCancelled: s.VictimsCancelled,
		Victims:          s.Victims(),
		QueuedWaiters:    s.QueuedWaiters,
		ContendedObjects: s.ContendedObjects,
		ShardQueued:      s.ShardQueued,
		FsyncLatency:     histQ(s.FsyncLatency),
		WalAppends:       s.WalAppends,
		WalFsyncs:        s.WalFsyncs,
		WalMaxBatch:      uint64(s.WalMaxBatch),
		WalCheckpoints:   s.WalCheckpoints,
		WalCheckpointLSN: uint64(s.WalCheckpointLSN),

		ShipLatency:        histQ(s.ShipLatency),
		ReplBatches:        s.ReplBatches,
		ReplRecordsShipped: s.ReplRecordsShipped,
		ReplAcks:           s.ReplAcks,
		ReplBatchesApplied: s.ReplBatchesApplied,
		ReplRecordsApplied: s.ReplRecordsApplied,
		ReplFollowers:      s.ReplFollowers,
		ReplLagRecords:     s.ReplLagRecords,
		ReplLagSeconds:     s.ReplLag.Seconds(),

		SnapReadLatency: histQ(s.SnapReadLatency),
		SnapTxs:         s.SnapTxs,
		SnapReads:       s.SnapReads,
		SnapPublishes:   s.SnapPublishes,
		SnapPinned:      s.SnapPinned,
	}
	if dump && met.Tracer != nil {
		entries := met.Tracer.Dump()
		if len(entries) > maxTraceEntries {
			entries = entries[len(entries)-maxTraceEntries:]
		}
		m.Trace = make([]wire.TraceEntry, len(entries))
		for i, e := range entries {
			m.Trace[i] = wire.TraceEntry{
				Seq:    e.Seq,
				AtUnix: e.At.UnixNano(),
				Kind:   e.Kind,
				T:      e.T,
				Object: e.Object,
				DurNS:  int64(e.Dur),
			}
		}
		if total, kept := met.Tracer.Seq(), uint64(len(entries)); total > kept {
			m.TraceDropped = total - kept
		}
	}
	return &wire.Response{OK: true, Metrics: m}
}

func (ss *session) handleState(req *wire.Request) *wire.Response {
	var st adt.State
	var err error
	if f := ss.srv.Follower(); f != nil {
		// Replica read: the replicated committed-to-root state. Every
		// record behind it was CRC-checked and value-verified on apply.
		st, err = f.State(req.Obj)
	} else if m := ss.srv.Manager(); m != nil {
		st, err = m.State(req.Obj)
	} else {
		err = errors.New("server: no state source")
	}
	if err != nil {
		return fail(wire.CodeBadRequest, err.Error())
	}
	raw, err := wire.EncodeState(st)
	if err != nil {
		return fail(wire.CodeInternal, err.Error())
	}
	// A snapshot the response frame cannot carry is an explicit, session-
	// preserving error — not a torn write that kills the connection. The
	// margin covers the response envelope around the state payload.
	if len(raw) > wire.MaxResponseSize-1024 {
		return fail(wire.CodeTooLarge, fmt.Sprintf(
			"server: state of %q is %d bytes, over the %d-byte response limit",
			req.Obj, len(raw), wire.MaxResponseSize))
	}
	return &wire.Response{OK: true, State: raw}
}

func (ss *session) handleBegin() *wire.Response {
	if ss.srv.isClosed() {
		return fail(wire.CodeShutdown, "server: draining")
	}
	h := ss.newHandle(nil)
	ss.wg.Add(1)
	go func() {
		defer ss.wg.Done()
		// attempts=1: the body is request-driven and cannot be replayed
		// server-side, so deadlock retry belongs to the remote client;
		// RunRetryCtx still gives per-request deadlines and session
		// teardown a cancellation point (including between any future
		// backoff attempts).
		ss.srv.count(func(c *Counters) { c.TxBegun++ })
		err := ss.srv.Manager().RunRetryCtx(h.treeCtx, 1, ss.body(h))
		if err == nil {
			ss.srv.count(func(c *Counters) { c.Commits++ })
		} else {
			ss.srv.count(func(c *Counters) { c.Aborts++ })
		}
		h.res <- err
		close(h.done)
	}()
	select {
	case txid := <-h.started:
		ss.txs[h.id] = h
		return &wire.Response{OK: true, Tx: h.id, TxID: txid}
	case <-h.done:
		return mapTxErr(<-h.res)
	}
}

// handleBeginRO opens a read-only snapshot transaction. It is served by
// whichever committed-version store this node has — the manager's on a
// leader, the replicated one on a follower — and involves no locks, so
// long scans neither block nor are blocked by writers.
func (ss *session) handleBeginRO() *wire.Response {
	if ss.srv.isClosed() {
		return fail(wire.CodeShutdown, "server: draining")
	}
	var ro roTx
	if f := ss.srv.Follower(); f != nil {
		ro = f.BeginSnapshot()
	} else if m := ss.srv.Manager(); m != nil {
		ro = m.BeginSnapshot()
	} else {
		return fail(wire.CodeReadOnly, "server: promotion in progress; retry")
	}
	ss.srv.count(func(c *Counters) { c.SnapshotTxs++ })
	ss.nextTx++
	id := ss.nextTx
	ss.ros[id] = ro
	return &wire.Response{OK: true, Tx: id, TxID: ro.ID(), Snap: ro.Seq()}
}

// handleRO serves the transaction verbs on an open snapshot handle.
// Reads go straight to the pinned version chain; WRITE is refused with
// read_only; SUB is meaningless (there is nothing to nest — a snapshot
// cannot abort partially); COMMIT and ABORT are the same operation:
// release the pin.
func (ss *session) handleRO(req *wire.Request) *wire.Response {
	ro := ss.ros[req.Tx]
	switch req.Type {
	case wire.TRead:
		op, err := wire.DecodeOp(req.Op)
		if err != nil {
			return fail(wire.CodeBadRequest, err.Error())
		}
		if !op.ReadOnly() {
			return fail(wire.CodeBadRequest, fmt.Sprintf("READ with non-read-only op %v", op))
		}
		v, err := ro.Read(req.Obj, op)
		if err != nil {
			return fail(wire.CodeBadRequest, err.Error())
		}
		raw, err := wire.EncodeValue(v)
		if err != nil {
			return fail(wire.CodeInternal, err.Error())
		}
		return &wire.Response{OK: true, Value: raw}
	case wire.TWrite:
		return fail(wire.CodeReadOnly,
			fmt.Sprintf("transaction %d is a read-only snapshot; writes go to a locking transaction", req.Tx))
	case wire.TSub:
		return fail(wire.CodeBadRequest,
			fmt.Sprintf("transaction %d is a read-only snapshot; it cannot open subtransactions", req.Tx))
	default: // TCommit, TAbort
		ro.Close()
		delete(ss.ros, req.Tx)
		return &wire.Response{OK: true}
	}
}

func (ss *session) handleSub(req *wire.Request) *wire.Response {
	parent, resp := ss.lookup(req.Tx)
	if resp != nil {
		return resp
	}
	child := ss.newHandle(parent)
	cmd := txCmd{kind: cmdSub, child: child}
	if resp := ss.deliver(parent, cmd); resp != nil {
		return resp
	}
	select {
	case txid := <-child.started:
		parent.busyChild = child
		ss.txs[child.id] = child
		return &wire.Response{OK: true, Tx: child.id, TxID: txid}
	case <-child.done:
		// Sub refused to start (parent aborted under us).
		return mapTxErr(<-child.res)
	}
}

func (ss *session) handleOp(req *wire.Request) *wire.Response {
	h, resp := ss.lookup(req.Tx)
	if resp != nil {
		return resp
	}
	op, err := wire.DecodeOp(req.Op)
	if err != nil {
		return fail(wire.CodeBadRequest, err.Error())
	}
	if req.Type == wire.TRead && !op.ReadOnly() {
		return fail(wire.CodeBadRequest, fmt.Sprintf("READ with non-read-only op %v", op))
	}
	if req.Type == wire.TWrite && op.ReadOnly() {
		return fail(wire.CodeBadRequest, fmt.Sprintf("WRITE with read-only op %v", op))
	}
	cmd := txCmd{kind: cmdOp, obj: req.Obj, op: op, reply: make(chan opResult, 1)}
	if resp := ss.deliver(h, cmd); resp != nil {
		return resp
	}
	timer := ss.srv.cfg.Clock.NewTimer(ss.srv.cfg.RequestTimeout)
	defer timer.Stop()
	select {
	case r := <-cmd.reply:
		if r.err != nil {
			return ss.mapOpErr(req.Obj, r.err)
		}
		raw, err := wire.EncodeValue(r.v)
		if err != nil {
			return fail(wire.CodeInternal, err.Error())
		}
		return &wire.Response{OK: true, Value: raw}
	case <-timer.C():
		// The access is stuck (blocked on a lock past the request
		// deadline): abort the whole transaction tree, which unblocks it.
		h.treeCancel()
		<-cmd.reply
		// Wait for the tree to finish unwinding before answering, so the
		// session's next request deterministically sees a dead root: the
		// stale handles (this one, ancestors parked in SUB, the root) are
		// cleared by lookup and follow-ups report "aborted" rather than a
		// bogus "has open subtransaction". Cancellation makes the unwind
		// prompt — every loop in the tree selects treeCtx.Done.
		<-h.root().done
		return fail(wire.CodeTimeout,
			fmt.Sprintf("request exceeded %v; transaction aborted", ss.srv.cfg.RequestTimeout))
	}
}

func (ss *session) handleFinish(req *wire.Request, abort bool) *wire.Response {
	h, ok := ss.txs[req.Tx]
	if !ok {
		return fail(wire.CodeUnknownTx, fmt.Sprintf("no open transaction handle %d", req.Tx))
	}
	if treeDead(h) {
		// The whole tree already aborted (per-request timeout,
		// cancellation): this handle is stale. Drop it and answer what
		// the client needs to unwind — ABORT of a dead handle is the
		// idempotent no-op, COMMIT reports the abort. Each stale handle
		// is cleared on its own touch (not the whole tree at once), so a
		// client unwinding sub-by-sub gets a coherent answer at every
		// level instead of unknown_tx.
		delete(ss.txs, h.id)
		if abort {
			return &wire.Response{OK: true}
		}
		return fail(wire.CodeAborted, "transaction already aborted")
	}
	if h.busyChild != nil {
		return fail(wire.CodeBadRequest,
			fmt.Sprintf("transaction %d has open subtransaction %d", h.id, h.busyChild.id))
	}
	cmd := txCmd{kind: cmdFinish, abort: abort}
	select {
	case h.cmds <- cmd:
	case <-h.root().done: // tree already dead; res below is still delivered
	}
	var err error
	select {
	case err = <-h.res:
	case <-ss.ctx.Done():
		return fail(wire.CodeShutdown, "server: draining")
	}
	// The handle is finished either way: forget it.
	delete(ss.txs, h.id)
	if h.parent != nil {
		h.parent.busyChild = nil
	}
	if abort {
		if err == nil || errors.Is(err, errAbortRequested) ||
			errors.Is(err, nestedtx.ErrAborted) || errors.Is(err, context.Canceled) {
			return &wire.Response{OK: true}
		}
		return mapTxErr(err)
	}
	return mapTxErr(err)
}

// lookup resolves a handle id, rejecting unknown handles and handles
// whose command loop is parked under an open subtransaction. A handle
// whose tree has already died (per-request timeout abort, cancellation)
// is reported as aborted — not as "has open subtransaction" — and the
// touched handle is dropped, so a client that lost a subtransaction to
// a timeout gets coherent answers on the parent.
func (ss *session) lookup(id uint64) (*txHandle, *wire.Response) {
	h, ok := ss.txs[id]
	if !ok {
		return nil, fail(wire.CodeUnknownTx, fmt.Sprintf("no open transaction handle %d", id))
	}
	if treeDead(h) {
		delete(ss.txs, h.id)
		return nil, fail(wire.CodeAborted, "transaction already finished")
	}
	if h.busyChild != nil {
		return nil, fail(wire.CodeBadRequest,
			fmt.Sprintf("transaction %d has open subtransaction %d", id, h.busyChild.id))
	}
	return h, nil
}

// treeDead reports whether h's whole tree has finished (its root's
// outcome is delivered) — true for handles left stale by a timeout
// abort of the tree.
func treeDead(h *txHandle) bool {
	select {
	case <-h.root().done:
		return true
	default:
		return false
	}
}

// Stale handles of a dead tree are cleared lazily — each on its own
// next touch (lookup, finish or deliver). A client that abandons a dead
// tree's handles without touching them leaks the map entries until the
// session closes, which is bounded and harmless; clearing eagerly would
// instead make the *next* touch an unknown_tx, confusing clients that
// unwind a timed-out tree level by level (Sub aborts the child, Run
// then commits/aborts the parent). Only the session goroutine touches
// ss.txs, so no locking is needed.

// deliver hands cmd to h's command loop, failing fast if the loop is
// gone or cannot take it within the request deadline.
func (ss *session) deliver(h *txHandle, cmd txCmd) *wire.Response {
	timer := ss.srv.cfg.Clock.NewTimer(ss.srv.cfg.RequestTimeout)
	defer timer.Stop()
	select {
	case h.cmds <- cmd:
		return nil
	case <-h.root().done:
		delete(ss.txs, h.id)
		return fail(wire.CodeAborted, "transaction already finished")
	case <-timer.C():
		return fail(wire.CodeTimeout, "transaction busy")
	}
}

// mapOpErr converts an access error into its wire form, counting
// deadlock victims.
func (ss *session) mapOpErr(obj string, err error) *wire.Response {
	switch {
	case errors.Is(err, nestedtx.ErrDeadlock):
		ss.srv.count(func(c *Counters) { c.DeadlockVictims++ })
		return fail(wire.CodeDeadlock, err.Error())
	case errors.Is(err, nestedtx.ErrAborted):
		return fail(wire.CodeAborted, err.Error())
	default:
		// Off the happy path only: distinguish the client naming an
		// unregistered object from a genuine server-side failure. The
		// manager can be nil here (a promotion claimed the server while
		// this access was in flight): skip the classification rather
		// than crash the session on the missing manager.
		if m := ss.srv.Manager(); m != nil {
			if _, serr := m.State(obj); serr != nil {
				return fail(wire.CodeBadRequest, serr.Error())
			}
		}
		return fail(wire.CodeInternal, err.Error())
	}
}

// mapTxErr converts a transaction outcome error into its wire form.
func mapTxErr(err error) *wire.Response {
	switch {
	case err == nil:
		return &wire.Response{OK: true}
	case errors.Is(err, nestedtx.ErrDeadlock):
		return fail(wire.CodeDeadlock, err.Error())
	case errors.Is(err, nestedtx.ErrAborted), errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded), errors.Is(err, errAbortRequested):
		return fail(wire.CodeAborted, err.Error())
	default:
		return fail(wire.CodeInternal, err.Error())
	}
}
