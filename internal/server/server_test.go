package server_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"nestedtx"
	"nestedtx/client"
	"nestedtx/internal/server"
)

// start serves mgr on a loopback listener and returns the server and its
// dial address. The server is drained at test cleanup (Shutdown is
// idempotent, so tests may also drain explicitly first).
func start(t *testing.T, mgr *nestedtx.Manager, cfg server.Config) (*server.Server, string) {
	t.Helper()
	srv := server.New(mgr, cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return srv, ln.Addr().String()
}

func dial(t *testing.T, addr string) *client.Client {
	t.Helper()
	c, err := client.Dial(addr, client.WithTimeout(20*time.Second))
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func drainAndVerify(t *testing.T, srv *server.Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if err := srv.Manager().Verify(); err != nil {
		t.Fatalf("Verify after drain: %v", err)
	}
}

// TestRemoteNestedTransaction runs one client through the full surface:
// nested subtransactions with partial rollback, reads, writes, state
// inspection, ping and stats — then drains and machine-checks the
// recorded schedule.
func TestRemoteNestedTransaction(t *testing.T) {
	mgr := nestedtx.NewManager(nestedtx.WithRecording())
	mgr.MustRegister("acct", nestedtx.Account{Balance: 100})
	mgr.MustRegister("log", nestedtx.NewRegister(int64(0)))
	srv, addr := start(t, mgr, server.Config{})
	c := dial(t, addr)

	if err := c.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}
	err := c.Run(func(tx *client.Tx) error {
		if tx.ID() == "" {
			t.Errorf("empty remote transaction ID")
		}
		// A failing subtransaction rolls back only its own effects.
		suberr := tx.Sub(func(sub *client.Tx) error {
			if _, err := sub.Write("acct", nestedtx.AcctWithdraw{Amount: 70}); err != nil {
				return err
			}
			return errors.New("change of heart")
		})
		if suberr == nil {
			t.Errorf("failing sub reported success")
		}
		// A committing subtransaction passes its effects up.
		if err := tx.Sub(func(sub *client.Tx) error {
			v, err := sub.Write("acct", nestedtx.AcctWithdraw{Amount: 30})
			if err != nil {
				return err
			}
			if r := v.(nestedtx.AcctResult); !r.OK || r.Balance != 70 {
				t.Errorf("withdraw saw rolled-back state: %+v", r)
			}
			return nil
		}); err != nil {
			return err
		}
		v, err := tx.Read("acct", nestedtx.AcctBalance{})
		if err != nil {
			return err
		}
		if v.(int64) != 70 {
			t.Errorf("balance inside tx = %v, want 70", v)
		}
		_, err = tx.Write("log", nestedtx.RegWrite{V: int64(1)})
		return err
	})
	if err != nil {
		t.Fatalf("remote transaction: %v", err)
	}

	st, err := c.State("acct")
	if err != nil {
		t.Fatalf("state: %v", err)
	}
	if st.(nestedtx.Account).Balance != 70 {
		t.Fatalf("committed balance = %+v, want 70", st)
	}
	stats, err := c.Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if stats.Commits != 1 || stats.ActiveSessions != 1 || stats.Requests == 0 {
		t.Fatalf("implausible stats: %+v", stats)
	}
	drainAndVerify(t, srv)
}

// TestConcurrentClientsVerify is the acceptance end-to-end: concurrent
// network clients run conflicting nested transactions in recording mode,
// the server drains gracefully, and Manager.Verify accepts the recorded
// schedule (well-formed, replays on M(X), serially correct, Theorem 34).
func TestConcurrentClientsVerify(t *testing.T) {
	const (
		clients = 5
		txPer   = 6
	)
	mgr := nestedtx.NewManager(nestedtx.WithRecording())
	mgr.MustRegister("hot", nestedtx.Counter{})
	mgr.MustRegister("warm", nestedtx.Counter{})
	srv, addr := start(t, mgr, server.Config{})

	var wg sync.WaitGroup
	errc := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := client.Dial(addr, client.WithTimeout(20*time.Second))
			if err != nil {
				errc <- err
				return
			}
			defer c.Close()
			for j := 0; j < txPer; j++ {
				err := c.RunRetry(25, func(tx *client.Tx) error {
					// Conflicting nested work: every transaction updates the
					// hot counter inside a subtransaction and reads the other.
					if err := tx.Sub(func(sub *client.Tx) error {
						_, err := sub.Write("hot", nestedtx.CtrAdd{Delta: 1})
						return err
					}); err != nil {
						return err
					}
					if i%2 == 0 {
						_, err := tx.Write("warm", nestedtx.CtrAdd{Delta: 1})
						return err
					}
					_, err := tx.Read("warm", nestedtx.CtrGet{})
					return err
				})
				if err != nil {
					errc <- fmt.Errorf("client %d tx %d: %w", i, j, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	st, err := mgr.State("hot")
	if err != nil {
		t.Fatal(err)
	}
	if got := st.(nestedtx.Counter).N; got != clients*txPer {
		t.Fatalf("hot counter = %d, want %d", got, clients*txPer)
	}
	if c := srv.Counters(); c.Commits < clients*txPer {
		t.Fatalf("commit counter %d < %d", c.Commits, clients*txPer)
	}
	drainAndVerify(t, srv)
}

// TestDeadlockPropagation forces a two-client deadlock and checks that
// the victim's client observes nestedtx.ErrDeadlock over the wire,
// retries, and commits — while the survivor just blocks and wins.
func TestDeadlockPropagation(t *testing.T) {
	mgr := nestedtx.NewManager(nestedtx.WithRecording())
	mgr.MustRegister("X", nestedtx.Counter{})
	mgr.MustRegister("Y", nestedtx.Counter{})
	srv, addr := start(t, mgr, server.Config{RequestTimeout: 15 * time.Second})

	aFirst := make(chan struct{})
	bFirst := make(chan struct{})
	var victims int32
	var mu sync.Mutex

	runSide := func(first, second string, mine chan struct{}, other chan struct{}) error {
		c, err := client.Dial(addr, client.WithTimeout(30*time.Second))
		if err != nil {
			return err
		}
		defer c.Close()
		for attempt := 0; attempt < 20; attempt++ {
			tx, err := c.Begin()
			if err != nil {
				return err
			}
			_, err = tx.Write(first, nestedtx.CtrAdd{Delta: 1})
			if err == nil && attempt == 0 {
				close(mine)
				<-other // both sides hold their first lock: the cycle is set
			}
			if err == nil {
				_, err = tx.Write(second, nestedtx.CtrAdd{Delta: 1})
			}
			if err == nil {
				if err = tx.Commit(); err == nil {
					return nil
				}
			}
			if !errors.Is(err, nestedtx.ErrDeadlock) {
				return fmt.Errorf("non-deadlock failure: %w", err)
			}
			mu.Lock()
			victims++
			mu.Unlock()
			if aerr := tx.Abort(); aerr != nil {
				return fmt.Errorf("abort after deadlock: %w", aerr)
			}
			time.Sleep(time.Duration(attempt+1) * time.Millisecond)
		}
		return errors.New("never committed")
	}

	errc := make(chan error, 2)
	go func() { errc <- runSide("X", "Y", aFirst, bFirst) }()
	go func() { errc <- runSide("Y", "X", bFirst, aFirst) }()
	for i := 0; i < 2; i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	if victims == 0 {
		t.Fatal("no client ever observed ErrDeadlock")
	}
	if got := srv.Counters().DeadlockVictims; got == 0 {
		t.Fatal("server counted no deadlock victims")
	}
	for _, obj := range []string{"X", "Y"} {
		st, err := mgr.State(obj)
		if err != nil {
			t.Fatal(err)
		}
		if got := st.(nestedtx.Counter).N; got != 2 {
			t.Fatalf("%s = %d, want 2 (one commit per side)", obj, got)
		}
	}
	drainAndVerify(t, srv)
}

// TestIdleReaperAbortsAbandonedTransactions checks that a session that
// goes silent while holding locks is reaped: its transaction aborts and
// the lock becomes available to others.
func TestIdleReaperAbortsAbandonedTransactions(t *testing.T) {
	mgr := nestedtx.NewManager(nestedtx.WithRecording())
	mgr.MustRegister("c", nestedtx.Counter{})
	srv, addr := start(t, mgr, server.Config{IdleTimeout: 100 * time.Millisecond})

	abandoned := dial(t, addr)
	tx, err := abandoned.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Write("c", nestedtx.CtrAdd{Delta: 5}); err != nil {
		t.Fatal(err)
	}
	// Go silent. The reaper must abort the transaction and free the lock.
	c2 := dial(t, addr)
	err = c2.Run(func(tx *client.Tx) error {
		_, err := tx.Write("c", nestedtx.CtrAdd{Delta: 1})
		return err
	})
	if err != nil {
		t.Fatalf("transaction after reap: %v", err)
	}
	st, err := mgr.State("c")
	if err != nil {
		t.Fatal(err)
	}
	if got := st.(nestedtx.Counter).N; got != 1 {
		t.Fatalf("counter = %d, want 1 (abandoned +5 rolled back)", got)
	}
	if srv.Counters().ReapedSessions == 0 {
		t.Fatal("reaper did not count the abandoned session")
	}
	drainAndVerify(t, srv)
}

// TestConnectionLimitBackpressure checks that connections beyond
// MaxConns are refused with a busy frame.
func TestConnectionLimitBackpressure(t *testing.T) {
	mgr := nestedtx.NewManager()
	srv, addr := start(t, mgr, server.Config{MaxConns: 1})

	c1 := dial(t, addr)
	if err := c1.Ping(); err != nil {
		t.Fatalf("first client: %v", err)
	}
	c2, err := client.Dial(addr, client.WithTimeout(5*time.Second))
	if err != nil {
		t.Fatalf("dial should succeed (refusal is a frame): %v", err)
	}
	defer c2.Close()
	if err := c2.Ping(); !errors.Is(err, client.ErrBusy) {
		t.Fatalf("second client ping: got %v, want ErrBusy", err)
	}
	if srv.Counters().RejectedConns != 1 {
		t.Fatalf("rejected = %d, want 1", srv.Counters().RejectedConns)
	}
}

// TestRequestTimeoutAbortsTransaction checks the per-request deadline: an
// access blocked past RequestTimeout fails with ErrTimeout and its
// transaction is aborted server-side, releasing nothing to the committed
// state.
func TestRequestTimeoutAbortsTransaction(t *testing.T) {
	mgr := nestedtx.NewManager(nestedtx.WithRecording())
	mgr.MustRegister("c", nestedtx.Counter{})
	srv, addr := start(t, mgr, server.Config{RequestTimeout: 150 * time.Millisecond})

	holder := dial(t, addr)
	htx, err := holder.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := htx.Write("c", nestedtx.CtrAdd{Delta: 1}); err != nil {
		t.Fatal(err)
	}

	blocked := dial(t, addr)
	btx, err := blocked.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := btx.Write("c", nestedtx.CtrAdd{Delta: 10}); !errors.Is(err, client.ErrTimeout) {
		t.Fatalf("blocked write: got %v, want ErrTimeout", err)
	}
	// The timed-out transaction is gone; committing it must fail.
	if err := btx.Commit(); err == nil {
		t.Fatal("commit of timed-out transaction succeeded")
	}
	if err := htx.Commit(); err != nil {
		t.Fatal(err)
	}
	st, _ := mgr.State("c")
	if got := st.(nestedtx.Counter).N; got != 1 {
		t.Fatalf("counter = %d, want 1", got)
	}
	drainAndVerify(t, srv)
}

// TestShutdownAbortsInFlight checks graceful drain: open transactions
// abort cleanly and the recorded schedule still verifies.
func TestShutdownAbortsInFlight(t *testing.T) {
	mgr := nestedtx.NewManager(nestedtx.WithRecording())
	mgr.MustRegister("c", nestedtx.Counter{})
	srv, addr := start(t, mgr, server.Config{})

	c := dial(t, addr)
	tx, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Write("c", nestedtx.CtrAdd{Delta: 9}); err != nil {
		t.Fatal(err)
	}
	drainAndVerify(t, srv)
	st, err := mgr.State("c")
	if err != nil {
		t.Fatal(err)
	}
	if got := st.(nestedtx.Counter).N; got != 0 {
		t.Fatalf("counter = %d after drain, want 0 (in-flight tx aborted)", got)
	}
}

// BenchmarkServerThroughput measures end-to-end requests/sec through the
// wire protocol at varying client counts; each transaction is three
// requests (BEGIN, WRITE, COMMIT) on a client-private counter.
func BenchmarkServerThroughput(b *testing.B) {
	for _, clients := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			mgr := nestedtx.NewManager()
			for i := 0; i < clients; i++ {
				mgr.MustRegister(fmt.Sprintf("ctr%d", i), nestedtx.Counter{})
			}
			srv := server.New(mgr, server.Config{})
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			go srv.Serve(ln)
			defer srv.Shutdown(context.Background())

			conns := make([]*client.Client, clients)
			for i := range conns {
				if conns[i], err = client.Dial(ln.Addr().String()); err != nil {
					b.Fatal(err)
				}
				defer conns[i].Close()
			}
			per := b.N/clients + 1
			b.ResetTimer()
			startAt := time.Now()
			var wg sync.WaitGroup
			for i := 0; i < clients; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					obj := fmt.Sprintf("ctr%d", i)
					for j := 0; j < per; j++ {
						if err := conns[i].Run(func(tx *client.Tx) error {
							_, err := tx.Write(obj, nestedtx.CtrAdd{Delta: 1})
							return err
						}); err != nil {
							b.Error(err)
							return
						}
					}
				}(i)
			}
			wg.Wait()
			elapsed := time.Since(startAt)
			txs := float64(per * clients)
			b.ReportMetric(txs*3/elapsed.Seconds(), "req/s")
			b.ReportMetric(txs/elapsed.Seconds(), "tx/s")
		})
	}
}
