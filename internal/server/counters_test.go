package server

import (
	"sync"
	"testing"
)

// TestCountersSnapshotConsistency pins the Counters consistency
// contract: snapshots are taken under the same lock as updates, so the
// cross-field invariant Commits + Aborts <= TxBegun holds in every
// snapshot and successive snapshots are monotone per field. An
// implementation that reads the fields one-by-one from independent
// atomics (as the server once did) lets a reader observe a
// transaction's outcome before its beginning; with the hammer below,
// such torn snapshots surface with high probability in every round, so
// across the rounds a torn implementation virtually always fails.
func TestCountersSnapshotConsistency(t *testing.T) {
	const rounds, writers, perWriter, readers = 6, 8, 20000, 4
	for round := 0; round < rounds; round++ {
		s := New(nil, Config{})
		var wg sync.WaitGroup
		stop := make(chan struct{})

		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < perWriter; i++ {
					// Begin strictly before outcome, as handleBegin does.
					s.count(func(c *Counters) { c.TxBegun++ })
					if i%3 == 0 {
						s.count(func(c *Counters) { c.Aborts++ })
					} else {
						s.count(func(c *Counters) { c.Commits++ })
					}
				}
			}(w)
		}

		var rwg sync.WaitGroup
		for r := 0; r < readers; r++ {
			rwg.Add(1)
			go func() {
				defer rwg.Done()
				var prev Counters
				for {
					c := s.Counters()
					if c.Commits+c.Aborts > c.TxBegun {
						t.Errorf("torn snapshot: commits %d + aborts %d > begun %d",
							c.Commits, c.Aborts, c.TxBegun)
						return
					}
					if c.TxBegun < prev.TxBegun || c.Commits < prev.Commits || c.Aborts < prev.Aborts {
						t.Errorf("non-monotone snapshots: %+v then %+v", prev, c)
						return
					}
					prev = c
					select {
					case <-stop:
						return
					default:
					}
				}
			}()
		}

		wg.Wait()
		close(stop)
		rwg.Wait()
		if t.Failed() {
			return
		}

		c := s.Counters()
		if want := uint64(writers * perWriter); c.TxBegun != want || c.Commits+c.Aborts != want {
			t.Fatalf("final counts: begun %d, commits+aborts %d, want %d",
				c.TxBegun, c.Commits+c.Aborts, want)
		}
	}
}
