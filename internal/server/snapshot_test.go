package server_test

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"testing"

	"nestedtx"
	"nestedtx/client"
	"nestedtx/internal/server"
	"nestedtx/internal/wal"
	"nestedtx/internal/wire"
)

// TestStateVerbNeverSeesUncommittedWrite is the wire-level STATE
// dirty-read regression: a remote writer holds a write lock with a
// tentative version, and a concurrent STATE from another session must
// answer the committed value — before the fix it answered the live
// writer's uncommitted (and here eventually aborted) write.
func TestStateVerbNeverSeesUncommittedWrite(t *testing.T) {
	mgr := nestedtx.NewManager(nestedtx.WithRecording())
	mgr.MustRegister("x", nestedtx.Counter{})
	srv, addr := start(t, mgr, server.Config{})
	writer := dial(t, addr)
	reader := dial(t, addr)

	tx, err := writer.Begin()
	if err != nil {
		t.Fatalf("begin: %v", err)
	}
	if _, err := tx.Write("x", nestedtx.CtrAdd{Delta: 7}); err != nil {
		t.Fatalf("write: %v", err)
	}
	// The writer now holds the write lock with tentative value 7.
	st, err := reader.State("x")
	if err != nil {
		t.Fatalf("state: %v", err)
	}
	if got := st.(nestedtx.Counter).N; got != 0 {
		t.Fatalf("STATE observed a live writer's uncommitted version: got %d, want 0", got)
	}
	if err := tx.Abort(); err != nil {
		t.Fatalf("abort: %v", err)
	}
	st, err = reader.State("x")
	if err != nil {
		t.Fatalf("state after abort: %v", err)
	}
	if got := st.(nestedtx.Counter).N; got != 0 {
		t.Fatalf("STATE observed an aborted write: got %d, want 0", got)
	}
	if err := writer.Run(func(tx *client.Tx) error {
		_, err := tx.Write("x", nestedtx.CtrAdd{Delta: 3})
		return err
	}); err != nil {
		t.Fatalf("commit run: %v", err)
	}
	st, err = reader.State("x")
	if err != nil {
		t.Fatalf("state after commit: %v", err)
	}
	if got := st.(nestedtx.Counter).N; got != 3 {
		t.Fatalf("STATE after commit: got %d, want 3", got)
	}
	drainAndVerify(t, srv)
}

// TestRemoteReadOnlySnapshot drives a read-only snapshot transaction
// over the wire on a leader: the pin holds one consistent cut across
// concurrent commits, a fresh snapshot sees them, and the stats and
// metrics surfaces report the snapshot counters.
func TestRemoteReadOnlySnapshot(t *testing.T) {
	mgr := nestedtx.NewManager(nestedtx.WithRecording())
	mgr.MustRegister("a", nestedtx.Counter{})
	mgr.MustRegister("b", nestedtx.Counter{})
	srv, addr := start(t, mgr, server.Config{})
	c := dial(t, addr)
	bump := func(delta int64) {
		t.Helper()
		if err := c.Run(func(tx *client.Tx) error {
			if _, err := tx.Write("a", nestedtx.CtrAdd{Delta: delta}); err != nil {
				return err
			}
			_, err := tx.Write("b", nestedtx.CtrAdd{Delta: -delta})
			return err
		}); err != nil {
			t.Fatalf("bump: %v", err)
		}
	}
	bump(10)

	s, err := c.BeginReadOnly()
	if err != nil {
		t.Fatalf("BeginReadOnly: %v", err)
	}
	if s.ID() == "" || s.Seq() == 0 {
		t.Fatalf("snapshot handle: id=%q seq=%d, want S-name and seq 1", s.ID(), s.Seq())
	}
	// Commits after the pin must stay invisible to this snapshot.
	bump(5)
	bump(7)
	va, err := s.Read("a", nestedtx.CtrGet{})
	if err != nil {
		t.Fatalf("snap read a: %v", err)
	}
	vb, err := s.Read("b", nestedtx.CtrGet{})
	if err != nil {
		t.Fatalf("snap read b: %v", err)
	}
	if va.(int64) != 10 || vb.(int64) != -10 {
		t.Fatalf("snapshot read a=%v b=%v, want 10/-10", va, vb)
	}
	// Client-side write rejection on a snapshot handle.
	if _, err := s.Read("a", nestedtx.CtrAdd{Delta: 1}); err == nil {
		t.Fatal("snapshot Read accepted a mutating op")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// A fresh snapshot observes the later commits, consistently.
	if err := c.RunReadOnly(func(s2 *client.Snapshot) error {
		va, err := s2.Read("a", nestedtx.CtrGet{})
		if err != nil {
			return err
		}
		vb, err := s2.Read("b", nestedtx.CtrGet{})
		if err != nil {
			return err
		}
		if va.(int64) != 22 || vb.(int64) != -22 {
			return fmt.Errorf("fresh snapshot read a=%v b=%v, want 22/-22", va, vb)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	stats, err := c.Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if stats.SnapshotTxs != 2 {
		t.Fatalf("stats.SnapshotTxs = %d, want 2", stats.SnapshotTxs)
	}
	met, err := c.Metrics(false)
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	if met.SnapTxs != 2 || met.SnapReads != 4 || met.SnapPinned != 0 || met.SnapPublishes != 3 {
		t.Fatalf("snapshot metrics: txs=%d reads=%d pinned=%d publishes=%d, want 2/4/0/3",
			met.SnapTxs, met.SnapReads, met.SnapPinned, met.SnapPublishes)
	}
	// Verify must place both snapshot transactions at their pin points.
	drainAndVerify(t, srv)
}

// TestReadOnlyHandleRejectsWriteAndSub exercises the server-side verb
// rules on a snapshot handle over raw wire frames (the client refuses
// these client-side, so the server's own enforcement needs raw frames):
// WRITE answers read_only, SUB answers bad_request, READ of an unknown
// object answers bad_request, and COMMIT releases the handle.
func TestReadOnlyHandleRejectsWriteAndSub(t *testing.T) {
	mgr := nestedtx.NewManager()
	mgr.MustRegister("x", nestedtx.Counter{})
	_, addr := start(t, mgr, server.Config{})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	seq := uint64(0)
	roundTrip := func(req *wire.Request) *wire.Response {
		t.Helper()
		seq++
		req.Seq = seq
		if err := wire.WriteFrame(bw, req); err != nil {
			t.Fatalf("write frame: %v", err)
		}
		resp, err := wire.ReadResponse(br)
		if err != nil {
			t.Fatalf("read response: %v", err)
		}
		return resp
	}
	resp := roundTrip(&wire.Request{Type: wire.TBegin, ReadOnly: true})
	if !resp.OK || resp.Tx == 0 {
		t.Fatalf("read-only BEGIN failed: %+v", resp)
	}
	h := resp.Tx
	add, err := wire.EncodeOp(nestedtx.CtrAdd{Delta: 1})
	if err != nil {
		t.Fatal(err)
	}
	get, err := wire.EncodeOp(nestedtx.CtrGet{})
	if err != nil {
		t.Fatal(err)
	}
	if resp := roundTrip(&wire.Request{Type: wire.TWrite, Tx: h, Obj: "x", Op: add}); resp.OK || resp.Code != wire.CodeReadOnly {
		t.Fatalf("WRITE on snapshot handle: %+v, want code %q", resp, wire.CodeReadOnly)
	}
	if resp := roundTrip(&wire.Request{Type: wire.TSub, Tx: h}); resp.OK || resp.Code != wire.CodeBadRequest {
		t.Fatalf("SUB on snapshot handle: %+v, want code %q", resp, wire.CodeBadRequest)
	}
	// READ with a mutating op is refused even on the read path.
	if resp := roundTrip(&wire.Request{Type: wire.TRead, Tx: h, Obj: "x", Op: add}); resp.OK || resp.Code != wire.CodeBadRequest {
		t.Fatalf("READ with mutating op: %+v, want code %q", resp, wire.CodeBadRequest)
	}
	if resp := roundTrip(&wire.Request{Type: wire.TRead, Tx: h, Obj: "nope", Op: get}); resp.OK || resp.Code != wire.CodeBadRequest {
		t.Fatalf("READ of unknown object: %+v, want code %q", resp, wire.CodeBadRequest)
	}
	if resp := roundTrip(&wire.Request{Type: wire.TRead, Tx: h, Obj: "x", Op: get}); !resp.OK {
		t.Fatalf("READ on snapshot handle failed: %+v", resp)
	}
	if resp := roundTrip(&wire.Request{Type: wire.TCommit, Tx: h}); !resp.OK {
		t.Fatalf("COMMIT of snapshot handle failed: %+v", resp)
	}
	// The handle is gone; a second COMMIT is an unknown transaction.
	if resp := roundTrip(&wire.Request{Type: wire.TCommit, Tx: h}); resp.OK || resp.Code != wire.CodeUnknownTx {
		t.Fatalf("COMMIT of released snapshot handle: %+v, want code %q", resp, wire.CodeUnknownTx)
	}
}

// TestFollowerServesSnapshotTransactions: a follower refuses locking
// transactions but serves read-only snapshot ones from its replicated
// version store, with the same consistent-cut guarantee.
func TestFollowerServesSnapshotTransactions(t *testing.T) {
	fs := wal.NewMemFS()
	mgr, _, leaderAddr := startLeader(t, fs, "leader")
	mgr.MustRegister("a", nestedtx.Counter{})
	mgr.MustRegister("b", nestedtx.Counter{})
	_, f, followerAddr := startFollower(t, fs, "follower", leaderAddr)

	for i := 0; i < 5; i++ {
		if err := mgr.Run(func(tx *nestedtx.Tx) error {
			if _, err := tx.Write("a", nestedtx.CtrAdd{Delta: 1}); err != nil {
				return err
			}
			_, err := tx.Write("b", nestedtx.CtrAdd{Delta: 1})
			return err
		}); err != nil {
			t.Fatalf("leader commit: %v", err)
		}
	}
	waitUntil(t, "follower caught up", func() bool { return caughtUpState(f, mgr, "a", 5) })

	c := dial(t, followerAddr)
	// Locking transactions are still refused...
	err := c.Run(func(tx *client.Tx) error { return nil })
	if !errors.Is(err, client.ErrReadOnly) {
		t.Fatalf("locking Run on follower: %v, want ErrReadOnly", err)
	}
	// ...but snapshot transactions are served, and see a consistent cut.
	if err := c.RunReadOnly(func(s *client.Snapshot) error {
		va, err := s.Read("a", nestedtx.CtrGet{})
		if err != nil {
			return err
		}
		vb, err := s.Read("b", nestedtx.CtrGet{})
		if err != nil {
			return err
		}
		if va.(int64) != vb.(int64) {
			return fmt.Errorf("torn follower snapshot: a=%v b=%v", va, vb)
		}
		if va.(int64) != 5 {
			return fmt.Errorf("follower snapshot read a=%v, want 5", va)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	stats, err := c.Stats()
	if err != nil {
		t.Fatalf("follower stats: %v", err)
	}
	if stats.SnapshotTxs != 1 {
		t.Fatalf("follower stats.SnapshotTxs = %d, want 1", stats.SnapshotTxs)
	}
	met, err := c.Metrics(false)
	if err != nil {
		t.Fatalf("follower metrics: %v", err)
	}
	if met.SnapTxs != 1 || met.SnapReads != 2 || met.SnapPinned != 0 || met.SnapPublishes != 5 {
		t.Fatalf("follower snapshot metrics: txs=%d reads=%d pinned=%d publishes=%d, want 1/2/0/5",
			met.SnapTxs, met.SnapReads, met.SnapPinned, met.SnapPublishes)
	}
}

// TestSessionTeardownReleasesSnapshotPins: a client that vanishes with a
// snapshot open must not pin the version store forever — the session
// teardown releases it.
func TestSessionTeardownReleasesSnapshotPins(t *testing.T) {
	mgr := nestedtx.NewManager()
	mgr.MustRegister("x", nestedtx.Counter{})
	_, addr := start(t, mgr, server.Config{})
	c := dial(t, addr)
	if _, err := c.BeginReadOnly(); err != nil {
		t.Fatalf("BeginReadOnly: %v", err)
	}
	if got := mgr.Metrics().Snapshot().SnapPinned; got != 1 {
		t.Fatalf("live pins = %d, want 1", got)
	}
	c.Close()
	deadline := func() bool { return mgr.Metrics().Snapshot().SnapPinned == 0 }
	waitUntil(t, "snapshot pin released by session teardown", deadline)
}
