package server_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nestedtx"
	"nestedtx/client"
	"nestedtx/internal/server"
	"nestedtx/internal/wal"
	"nestedtx/internal/wire"
)

// bigTable builds a Table whose adt encoding is at least min bytes.
func bigTable(min int) nestedtx.Table {
	val := strings.Repeat("x", 1024)
	m := make(map[string]nestedtx.Value)
	for i := 0; i*1100 < min; i++ {
		m[fmt.Sprintf("k%06d", i)] = val
	}
	return nestedtx.NewTable(m)
}

// TestLargeStateRoundTrip regresses the MaxFrameSize audit: a STATE
// snapshot bigger than the 1 MiB request limit (but under the response
// limit) must round-trip to the client intact instead of killing the
// session.
func TestLargeStateRoundTrip(t *testing.T) {
	mgr := nestedtx.NewManager()
	tbl := bigTable(2 << 20)
	mgr.MustRegister("big", tbl)
	_, addr := start(t, mgr, server.Config{})
	c := dial(t, addr)

	st, err := c.State("big")
	if err != nil {
		t.Fatalf("State(big): %v", err)
	}
	got, ok := st.(nestedtx.Table)
	if !ok {
		t.Fatalf("state type %T, want Table", st)
	}
	if _, v := (nestedtx.TblGet{K: "k000000"}).Apply(got); v != strings.Repeat("x", 1024) {
		t.Fatalf("round-tripped table lost its values")
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("ping after large state: %v", err)
	}
}

// TestOversizeStateExplicitError: a snapshot over even the response limit
// comes back as a CodeTooLarge error — and the session survives it.
func TestOversizeStateExplicitError(t *testing.T) {
	mgr := nestedtx.NewManager()
	mgr.MustRegister("huge", bigTable(wire.MaxResponseSize+1<<20))
	mgr.MustRegister("ctr", nestedtx.Counter{})
	_, addr := start(t, mgr, server.Config{})
	c := dial(t, addr)

	_, err := c.State("huge")
	var ce *client.Error
	if !errors.As(err, &ce) || ce.Code != wire.CodeTooLarge {
		t.Fatalf("State(huge) = %v, want code %q", err, wire.CodeTooLarge)
	}
	// The error was a reply, not a connection teardown.
	if err := c.Ping(); err != nil {
		t.Fatalf("ping after too-large state: %v", err)
	}
	if _, err := c.State("ctr"); err != nil {
		t.Fatalf("small state after too-large state: %v", err)
	}
}

// TestDrainDurability drains a durable server under write load and
// checks the contract of Server.Shutdown on a durable manager: every
// commit a client saw acknowledged is present after recovery, and the
// recovered history passes the Theorem-34 checker.
func TestDrainDurability(t *testing.T) {
	mem := wal.NewMemFS()
	mgr, _, err := nestedtx.OpenDurable("d", nestedtx.DurableOptions{
		FS: mem, SyncWindow: 200 * time.Microsecond,
	})
	if err != nil {
		t.Fatalf("OpenDurable: %v", err)
	}
	if err := mgr.Register("ctr", nestedtx.Counter{}); err != nil {
		t.Fatalf("register: %v", err)
	}
	srv, addr := start(t, mgr, server.Config{})

	var acked atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := client.Dial(addr, client.WithTimeout(10*time.Second))
			if err != nil {
				return
			}
			defer c.Close()
			for {
				select {
				case <-stop:
					return
				default:
				}
				err := c.RunRetry(4, func(tx *client.Tx) error {
					_, err := tx.Write("ctr", nestedtx.CtrAdd{Delta: 1})
					return err
				})
				if err == nil {
					acked.Add(1)
				} else if c.Lost() {
					return
				}
			}
		}()
	}

	// Let load build, then drain mid-flight.
	time.Sleep(50 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	close(stop)
	wg.Wait()
	if err := mgr.CloseWAL(); err != nil {
		t.Fatalf("close wal: %v", err)
	}

	m2, rec, err := nestedtx.OpenDurable("d", nestedtx.DurableOptions{FS: mem})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer m2.CloseWAL()
	if err := rec.Verify(); err != nil {
		t.Fatalf("recovered schedule rejected: %v", err)
	}
	st, err := m2.State("ctr")
	if err != nil {
		t.Fatalf("recovered ctr: %v", err)
	}
	n := st.(nestedtx.Counter).N
	if want := acked.Load(); n < want {
		t.Fatalf("recovered %d commits, but clients saw %d acknowledged", n, want)
	}
	if acked.Load() == 0 {
		t.Fatalf("no commits acknowledged before the drain; test proved nothing")
	}
}
