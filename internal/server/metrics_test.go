package server_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"nestedtx"
	"nestedtx/client"
	"nestedtx/internal/server"
)

// TestMetricsEndToEnd drives a contended workload over the wire and
// then reconciles the METRICS payload against the STATS counters at
// quiescence. The invariants are exact, not bounds: every observation
// lands in exactly one histogram bucket, so the histogram counts must
// agree with the independent counters to the unit.
func TestMetricsEndToEnd(t *testing.T) {
	mgr := nestedtx.NewManager(nestedtx.WithTracing(1 << 15))
	mgr.MustRegister("a", nestedtx.Counter{})
	mgr.MustRegister("b", nestedtx.Counter{})
	_, addr := start(t, mgr, server.Config{})

	const workers, txPer = 6, 25
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := client.Dial(addr, client.WithTimeout(20*time.Second))
			if err != nil {
				errc <- err
				return
			}
			defer c.Close()
			for j := 0; j < txPer; j++ {
				// Opposite lock orders between odd and even workers force
				// waits and deadlock victims, so every histogram gets data.
				first, second := "a", "b"
				if w%2 == 1 {
					first, second = "b", "a"
				}
				err := c.RunRetry(50, func(tx *client.Tx) error {
					if _, err := tx.Write(first, nestedtx.CtrAdd{Delta: 1}); err != nil {
						return err
					}
					_, err := tx.Write(second, nestedtx.CtrAdd{Delta: 1})
					return err
				})
				if err != nil {
					errc <- fmt.Errorf("worker %d tx %d: %w", w, j, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	c := dial(t, addr)
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	m, err := c.Metrics(false)
	if err != nil {
		t.Fatal(err)
	}

	// Outcome counters line up 1:1 with the server's (every BEGIN runs
	// exactly one top-level transaction; none were cancelled mid-begin).
	if m.TxCommits != stats.Commits || m.TxAborts != stats.Aborts {
		t.Errorf("outcome mismatch: metrics %d/%d, stats %d/%d",
			m.TxCommits, m.TxAborts, stats.Commits, stats.Aborts)
	}
	if want := uint64(workers * txPer); m.TxCommits != want {
		t.Errorf("tx_commits = %d, want %d", m.TxCommits, want)
	}
	// Every finished top-level transaction was timed exactly once.
	if m.TxLatency.Count != stats.Commits+stats.Aborts {
		t.Errorf("tx_latency count %d != commits %d + aborts %d",
			m.TxLatency.Count, stats.Commits, stats.Aborts)
	}
	// Every blocked acquisition landed in the lock-wait histogram exactly
	// once: granted (Waits), deadlock victim, or cancelled.
	if m.LockWait.Count != stats.Waits+m.VictimsDeadlock+m.VictimsCancelled {
		t.Errorf("lock_wait count %d != waits %d + victims %d+%d",
			m.LockWait.Count, stats.Waits, m.VictimsDeadlock, m.VictimsCancelled)
	}
	// The victim breakdown reconciles with the lock manager's own count.
	if m.VictimsDeadlock != stats.Deadlocks {
		t.Errorf("victims_deadlock %d != lock_deadlocks %d", m.VictimsDeadlock, stats.Deadlocks)
	}
	if m.Victims != m.VictimsDeadlock+m.VictimsCancelled {
		t.Errorf("victims %d != %d + %d", m.Victims, m.VictimsDeadlock, m.VictimsCancelled)
	}
	// Every access acquisition was timed exactly once, whatever its fate.
	if m.OpLatency.Count != stats.Acquires+m.VictimsDeadlock+m.VictimsCancelled {
		t.Errorf("op_latency count %d != acquires %d + victims %d+%d",
			m.OpLatency.Count, stats.Acquires, m.VictimsDeadlock, m.VictimsCancelled)
	}
	// The opposite-order workload must actually have contended.
	if stats.Waits == 0 || m.VictimsDeadlock == 0 {
		t.Errorf("workload did not contend: waits %d, deadlock victims %d",
			stats.Waits, m.VictimsDeadlock)
	}
	// Quantiles are monotone and clamped to the max.
	for name, q := range map[string]struct{ P50, P90, P99, Max int64 }{
		"op_latency": {m.OpLatency.P50NS, m.OpLatency.P90NS, m.OpLatency.P99NS, m.OpLatency.MaxNS},
		"tx_latency": {m.TxLatency.P50NS, m.TxLatency.P90NS, m.TxLatency.P99NS, m.TxLatency.MaxNS},
		"lock_wait":  {m.LockWait.P50NS, m.LockWait.P90NS, m.LockWait.P99NS, m.LockWait.MaxNS},
	} {
		if q.P50 <= 0 || q.P50 > q.P90 || q.P90 > q.P99 || q.P99 > q.Max {
			t.Errorf("%s quantiles not monotone positive: %+v", name, q)
		}
	}
	// Quiescent gauges read level, not rate: nothing is blocked now.
	if m.QueuedWaiters != 0 || m.ContendedObjects != 0 {
		t.Errorf("gauges nonzero at quiescence: queued %d, contended %d",
			m.QueuedWaiters, m.ContendedObjects)
	}

	// The dump carries the trace ring; with a ring larger than the run,
	// nothing was evicted and the COMMIT entries for top-level
	// transactions count exactly the commits.
	md, err := c.Metrics(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(md.Trace) == 0 {
		t.Fatal("dump returned no trace entries")
	}
	if md.TraceDropped != 0 {
		t.Fatalf("ring evicted %d entries; enlarge the test's WithTracing capacity", md.TraceDropped)
	}
	topCommits := uint64(0)
	for i, e := range md.Trace {
		if i > 0 && e.Seq != md.Trace[i-1].Seq+1 {
			t.Fatalf("trace not in sequence order at %d", i)
		}
		switch e.Kind {
		case "CREATE", "REQUEST_COMMIT", "COMMIT", "ABORT", "LOCK_WAIT", "LOCK_ACQUIRE":
		default:
			t.Fatalf("unexpected trace kind %q", e.Kind)
		}
		if e.Kind == "COMMIT" && strings.Count(e.T, ".") == 1 {
			topCommits++ // top-level names are "T0.n"
		}
	}
	if topCommits != md.TxCommits {
		t.Errorf("trace has %d top-level COMMIT entries, metrics report %d commits",
			topCommits, md.TxCommits)
	}
}
