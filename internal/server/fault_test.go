package server_test

// The fault-injection suite: workloads driven through the faultnet
// proxy while connections are stalled, cut and partitioned
// mid-transaction. The paper scopes out crashes ("our model does not
// yet include crashes", §1) but proves Theorem 34 for every non-orphan
// transaction; an abandoned network client is exactly the orphan
// scenario, so these tests assert the deployment-level counterpart:
// the server reclaims every lock a dead connection held
// (CheckInvariants), counters stay consistent with committed state,
// and a recording-mode run's drained schedule still passes
// Manager.Verify — Theorem 34 holds under network faults.

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nestedtx"
	"nestedtx/client"
	"nestedtx/internal/faultnet"
	"nestedtx/internal/server"
)

// proxyFor puts a faultnet proxy in front of addr, closed at cleanup.
func proxyFor(t *testing.T, addr string, faults faultnet.Faults, seed int64) *faultnet.Proxy {
	t.Helper()
	p, err := faultnet.New(addr, faults, seed)
	if err != nil {
		t.Fatalf("faultnet: %v", err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

// checkQuiescent drains the server, then asserts the lock table is
// clean (every lock reclaimed) and, in recording mode, that the drained
// schedule machine-checks against Theorem 34.
func checkQuiescent(t *testing.T, srv *server.Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if err := srv.Manager().CheckInvariants(); err != nil {
		t.Fatalf("lock-table invariants after faults: %v", err)
	}
	if err := srv.Manager().Verify(); err != nil {
		t.Fatalf("Verify after faulted run: %v", err)
	}
}

// TestTimeoutAbortClearsHandles is the regression for the session
// desync bug: after a per-request timeout aborts a transaction tree
// with an open subtransaction, follow-up requests on the parent used to
// fail forever with "bad_request: has open subtransaction". They must
// report the abort, and the session must stay usable. Driven through
// the fault proxy (transparent here; the timeout is the fault).
func TestTimeoutAbortClearsHandles(t *testing.T) {
	mgr := nestedtx.NewManager(nestedtx.WithRecording())
	mgr.MustRegister("c", nestedtx.Counter{})
	srv, addr := start(t, mgr, server.Config{RequestTimeout: 150 * time.Millisecond})
	px := proxyFor(t, addr, faultnet.Faults{}, 1)

	holder := dial(t, addr)
	htx, err := holder.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := htx.Write("c", nestedtx.CtrAdd{Delta: 1}); err != nil {
		t.Fatal(err)
	}

	victim := dial(t, px.Addr())
	vtx, err := victim.Begin()
	if err != nil {
		t.Fatal(err)
	}
	// The timeout strikes inside an open subtransaction: the whole tree
	// aborts server-side, leaving (pre-fix) stale handles behind.
	suberr := vtx.Sub(func(sub *client.Tx) error {
		_, err := sub.Write("c", nestedtx.CtrAdd{Delta: 10})
		return err
	})
	if !errors.Is(suberr, client.ErrTimeout) {
		t.Fatalf("blocked sub write: got %v, want ErrTimeout", suberr)
	}
	// Pre-fix: bad_request "has open subtransaction". Post-fix: the dead
	// tree reads as aborted.
	if err := vtx.Commit(); !errors.Is(err, nestedtx.ErrAborted) {
		t.Fatalf("commit after timeout abort: got %v, want ErrAborted", err)
	}
	// The stale handle was cleared by that touch (further use is a
	// plain unknown-handle error, not a desync)...
	if err := vtx.Abort(); err == nil || errors.Is(err, nestedtx.ErrAborted) {
		t.Fatalf("second touch of cleared handle: got %v, want unknown_tx", err)
	}
	// ...and the session is fully usable for new transactions.
	if err := htx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := victim.Run(func(tx *client.Tx) error {
		_, err := tx.Write("c", nestedtx.CtrAdd{Delta: 100})
		return err
	}); err != nil {
		t.Fatalf("fresh transaction on recovered session: %v", err)
	}
	st, err := mgr.State("c")
	if err != nil {
		t.Fatal(err)
	}
	if got := st.(nestedtx.Counter).N; got != 101 {
		t.Fatalf("counter = %d, want 101 (holder +1, recovered +100, timed-out +10 rolled back)", got)
	}
	checkQuiescent(t, srv)
}

// TestStalledConnectionPoisonsAndServerReclaims: a byte-level stall past
// the client deadline poisons the client (fail-fast ErrConnLost, no
// stale-frame reads) and the server reclaims the abandoned
// transaction's resources once the connection goes.
func TestStalledConnectionPoisonsAndServerReclaims(t *testing.T) {
	mgr := nestedtx.NewManager(nestedtx.WithRecording())
	mgr.MustRegister("c", nestedtx.Counter{})
	srv, addr := start(t, mgr, server.Config{IdleTimeout: 200 * time.Millisecond})
	// Stall the client→server direction for 2s once one frame has passed.
	px := proxyFor(t, addr, faultnet.Faults{StallAfterFrames: 1, StallFor: 2 * time.Second}, 2)

	c, err := client.Dial(px.Addr(), client.WithTimeout(200*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	tx, err := c.Begin() // frame 1 passes; the stall now arms
	if err != nil {
		t.Fatal(err)
	}
	// Frame 2 hits the stall: the client deadline fires first.
	_, err = tx.Write("c", nestedtx.CtrAdd{Delta: 7})
	if !errors.Is(err, client.ErrConnLost) {
		t.Fatalf("stalled write: got %v, want ErrConnLost", err)
	}
	// Poisoned: instant failures, no reads of late frames.
	startAt := time.Now()
	if err := c.Ping(); !errors.Is(err, client.ErrConnLost) {
		t.Fatalf("ping after poison: %v", err)
	}
	if d := time.Since(startAt); d > 100*time.Millisecond {
		t.Fatalf("poisoned call took %v; want fail-fast", d)
	}
	c.Close()
	// The server must reclaim the orphaned session (teardown on the
	// closed connection, or the idle reaper as backstop): a second
	// client's conflicting write succeeds.
	c2 := dial(t, addr)
	if err := c2.Run(func(tx *client.Tx) error {
		_, err := tx.Write("c", nestedtx.CtrAdd{Delta: 1})
		return err
	}); err != nil {
		t.Fatalf("write after orphan reclaim: %v", err)
	}
	st, _ := mgr.State("c")
	if got := st.(nestedtx.Counter).N; got != 1 {
		t.Fatalf("counter = %d, want 1 (orphan's +7 never committed)", got)
	}
	checkQuiescent(t, srv)
}

// TestPoolReconnectsThroughCuts: every connection dies after a few
// frames, so each transaction costs the pool a redial — and the
// workload still completes exactly, because a cut connection's open
// transaction aborts server-side before the retry re-runs the body.
func TestPoolReconnectsThroughCuts(t *testing.T) {
	mgr := nestedtx.NewManager(nestedtx.WithRecording())
	mgr.MustRegister("hot", nestedtx.Counter{})
	srv, addr := start(t, mgr, server.Config{IdleTimeout: 300 * time.Millisecond})
	// Cut every connection after 8 client→server frames: a health-check
	// ping plus two three-frame transactions, then death mid-stream.
	px := proxyFor(t, addr, faultnet.Faults{CutAfterFrames: 8}, 3)

	pool, err := client.NewPool(px.Addr(), 2, client.WithTimeout(2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	const want = 20
	completed := 0
	for i := 0; i < want; i++ {
		if err := pool.RunRetry(50, func(tx *client.Tx) error {
			_, err := tx.Write("hot", nestedtx.CtrAdd{Delta: 1})
			return err
		}); err != nil {
			t.Fatalf("workload item %d through cuts: %v", i, err)
		}
		completed++
	}
	if ps := pool.Stats(); ps.Redials == 0 || ps.Discarded == 0 {
		t.Fatalf("pool never reconnected (stats %+v) — cuts not exercised", ps)
	}
	if _, cut := px.Stats(); cut == 0 {
		t.Fatal("proxy cut nothing")
	}
	// Exact accounting despite lost COMMIT responses: every server-side
	// commit is exactly one +1, so state must equal the commit counter.
	st, _ := mgr.State("hot")
	got := st.(nestedtx.Counter).N
	if commits := srv.Counters().Commits; int64(got) != int64(commits) {
		t.Fatalf("hot = %d but server committed %d: counters drifted under faults", got, commits)
	}
	if got < int64(completed) {
		t.Fatalf("hot = %d < %d client-observed completions", got, completed)
	}
	checkQuiescent(t, srv)
}

// TestFaultInjectionWorkload is the acceptance end-to-end: a pooled
// workload runs through a latency/jitter proxy while a chaos goroutine
// cuts every live connection repeatedly and imposes a full
// partition/heal cycle. Afterwards: locks all reclaimed, counters
// consistent with committed state, no goroutine leaks, and the recorded
// schedule verifies (Theorem 34 under network faults).
func TestFaultInjectionWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("fault-injection e2e skipped in -short mode")
	}
	startGoroutines := runtime.NumGoroutine()

	mgr := nestedtx.NewManager(nestedtx.WithRecording())
	mgr.MustRegister("hot", nestedtx.Counter{})
	mgr.MustRegister("warm", nestedtx.Counter{})
	srv, addr := start(t, mgr, server.Config{
		IdleTimeout:    400 * time.Millisecond,
		RequestTimeout: 2 * time.Second,
	})
	px := proxyFor(t, addr, faultnet.Faults{Latency: 200 * time.Microsecond, Jitter: time.Millisecond}, 4)

	pool, err := client.NewPool(px.Addr(), 4, client.WithTimeout(3*time.Second))
	if err != nil {
		t.Fatal(err)
	}

	// Chaos: cut all live connections every 25ms for a while, with one
	// full partition/heal cycle in the middle, then go quiet.
	chaosDone := make(chan struct{})
	go func() {
		defer close(chaosDone)
		for i := 0; i < 12; i++ {
			time.Sleep(25 * time.Millisecond)
			if i == 6 {
				px.Partition()
				time.Sleep(150 * time.Millisecond)
				px.Heal()
				continue
			}
			px.CutAll()
		}
	}()

	const workers, perWorker = 4, 8
	var wg sync.WaitGroup
	var failures atomic.Int64
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for j := 0; j < perWorker; j++ {
				err := pool.RunRetry(200, func(tx *client.Tx) error {
					// Nested conflicting work mid-chaos: the hot counter
					// inside a subtransaction, the warm one at top level.
					if err := tx.Sub(func(sub *client.Tx) error {
						_, err := sub.Write("hot", nestedtx.CtrAdd{Delta: 1})
						return err
					}); err != nil {
						return err
					}
					_, err := tx.Write("warm", nestedtx.CtrAdd{Delta: 1})
					return err
				})
				if err != nil {
					failures.Add(1)
					errc <- fmt.Errorf("worker %d item %d: %w", w, j, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	<-chaosDone
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if t.Failed() {
		t.Fatalf("%d workers failed despite retries through reconnects", failures.Load())
	}

	// Counters stay consistent: each server-side commit is exactly one
	// +1 to each counter, whatever the clients managed to observe.
	commits := int64(srv.Counters().Commits)
	for _, obj := range []string{"hot", "warm"} {
		st, err := mgr.State(obj)
		if err != nil {
			t.Fatal(err)
		}
		if got := st.(nestedtx.Counter).N; got != commits {
			t.Fatalf("%s = %d but server committed %d", obj, got, commits)
		}
	}
	if commits < workers*perWorker {
		t.Fatalf("commits = %d < %d completed workloads", commits, workers*perWorker)
	}
	if ps := pool.Stats(); ps.Redials == 0 {
		t.Logf("note: pool stats %+v (chaos may have missed live conns)", ps)
	}
	// The pool measured its calls: every completed transaction is at
	// least three round-trips, with sane quantiles.
	if ps := pool.Stats(); ps.Calls < uint64(3*workers*perWorker) ||
		ps.P50 <= 0 || ps.P50 > ps.P90 || ps.P90 > ps.P99 || ps.P99 > ps.Max {
		t.Errorf("pool RTT stats implausible: %+v", ps)
	}

	// METRICS over the wire while sessions may still be unwinding from
	// the last cuts: structural sanity only — the exact reconciliation
	// below waits for true quiescence.
	mc := dial(t, addr)
	wm, err := mc.Metrics(false)
	if err != nil {
		t.Fatal(err)
	}
	if wm.TxLatency.Count == 0 || wm.OpLatency.Count == 0 {
		t.Errorf("live METRICS empty after workload: %+v", wm)
	}
	if wm.TxLatency.P50NS > wm.TxLatency.P90NS || wm.TxLatency.P90NS > wm.TxLatency.P99NS ||
		wm.TxLatency.P99NS > wm.TxLatency.MaxNS {
		t.Errorf("live METRICS quantiles not monotone: %+v", wm.TxLatency)
	}
	mc.Close()

	// Drain, reclaim, verify: Theorem 34 under network faults.
	pool.Close()
	px.Close()
	checkQuiescent(t, srv)

	// Exact metric reconciliation at quiescence: chaos (cuts, timeouts,
	// partitions, reaping) must not lose or double-count an observation.
	met := srv.Manager().Metrics().Snapshot()
	lk := srv.Manager().Stats()
	cnt := srv.Counters()
	// Every blocked acquisition landed in the lock-wait histogram exactly
	// once: granted (Waits), deadlock victim, or cancelled by an abort.
	if met.LockWait.Count != lk.Waits+met.VictimsDeadlock+met.VictimsCancelled {
		t.Errorf("lock_wait count %d != waits %d + victims %d+%d",
			met.LockWait.Count, lk.Waits, met.VictimsDeadlock, met.VictimsCancelled)
	}
	// The victim breakdown sums to the total and the deadlock slice
	// matches the lock manager's cycle count.
	if met.VictimsDeadlock != lk.Deadlocks {
		t.Errorf("victims_deadlock %d != lock deadlocks %d", met.VictimsDeadlock, lk.Deadlocks)
	}
	if met.Victims() != met.VictimsDeadlock+met.VictimsCancelled {
		t.Errorf("victim sum broken: %d != %d + %d",
			met.Victims(), met.VictimsDeadlock, met.VictimsCancelled)
	}
	// Every access acquisition was timed exactly once, whatever its fate.
	if met.OpLatency.Count != lk.Acquires+met.VictimsDeadlock+met.VictimsCancelled {
		t.Errorf("op_latency count %d != acquires %d + victims %d+%d",
			met.OpLatency.Count, lk.Acquires, met.VictimsDeadlock, met.VictimsCancelled)
	}
	// Commit accounting is exact; aborts may exceed the runtime's count
	// by begins that were cancelled before the transaction body started
	// (session teardown racing BEGIN).
	if met.TxCommits != cnt.Commits {
		t.Errorf("tx_commits %d != server commits %d", met.TxCommits, cnt.Commits)
	}
	if met.TxAborts > cnt.Aborts {
		t.Errorf("tx_aborts %d > server aborts %d", met.TxAborts, cnt.Aborts)
	}
	if met.TxLatency.Count != met.TxCommits+met.TxAborts {
		t.Errorf("tx_latency count %d != commits %d + aborts %d",
			met.TxLatency.Count, met.TxCommits, met.TxAborts)
	}
	if met.QueuedWaiters != 0 || met.ContendedObjects != 0 {
		t.Errorf("gauges nonzero at quiescence: %+v", met)
	}

	// No goroutine leaks: sessions, proxies, pool and chaos all gone.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= startGoroutines+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: started with %d, still %d\n%s",
				startGoroutines, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
