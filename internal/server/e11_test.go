package server_test

// E11 (EXPERIMENTS.md): throughput and abort breakdown vs connection
// fault rate. A fixed pooled workload runs for a fixed window through a
// faultnet proxy while every live connection is cut at a swept
// interval; the log line per rate reports committed transactions/sec,
// the server's commit/abort split, and the pool's reconnect activity.
// Run with: go test -run TestE11FaultRateSweep -v ./internal/server

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nestedtx"
	"nestedtx/client"
	"nestedtx/internal/faultnet"
	"nestedtx/internal/server"
)

func TestE11FaultRateSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("E11 sweep skipped in -short mode")
	}
	const (
		workers = 4
		window  = 400 * time.Millisecond
	)
	type row struct {
		label     string
		cutEvery  time.Duration // 0 = no faults
		committed int64
		commits   uint64
		aborts    uint64
		redials   uint64
	}
	rows := []*row{
		{label: "none", cutEvery: 0},
		{label: "cut every 100ms", cutEvery: 100 * time.Millisecond},
		{label: "cut every 50ms", cutEvery: 50 * time.Millisecond},
		{label: "cut every 25ms", cutEvery: 25 * time.Millisecond},
	}
	for _, r := range rows {
		mgr := nestedtx.NewManager()
		for w := 0; w < workers; w++ {
			mgr.MustRegister(fmt.Sprintf("ctr%d", w), nestedtx.Counter{})
		}
		srv, addr := start(t, mgr, server.Config{IdleTimeout: 300 * time.Millisecond})
		px, err := faultnet.New(addr, faultnet.Faults{}, 11)
		if err != nil {
			t.Fatal(err)
		}
		pool, err := client.NewPool(px.Addr(), workers, client.WithTimeout(2*time.Second))
		if err != nil {
			t.Fatal(err)
		}

		stopChaos := make(chan struct{})
		var chaosWG sync.WaitGroup
		if r.cutEvery > 0 {
			chaosWG.Add(1)
			go func(every time.Duration) {
				defer chaosWG.Done()
				tick := time.NewTicker(every)
				defer tick.Stop()
				for {
					select {
					case <-stopChaos:
						return
					case <-tick.C:
						px.CutAll()
					}
				}
			}(r.cutEvery)
		}

		deadline := time.Now().Add(window)
		var wg sync.WaitGroup
		var committed atomic.Int64
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				obj := fmt.Sprintf("ctr%d", w)
				for time.Now().Before(deadline) {
					err := pool.RunRetry(100, func(tx *client.Tx) error {
						_, err := tx.Write(obj, nestedtx.CtrAdd{Delta: 1})
						return err
					})
					if err != nil {
						t.Errorf("rate %q worker %d: %v", r.label, w, err)
						return
					}
					committed.Add(1)
				}
			}(w)
		}
		wg.Wait()
		close(stopChaos)
		chaosWG.Wait()

		c := srv.Counters()
		ps := pool.Stats()
		r.committed = committed.Load()
		r.commits, r.aborts, r.redials = c.Commits, c.Aborts, ps.Redials
		pool.Close()
		px.Close()
		t.Logf("E11 %-16s: %6.0f tx/s client-complete | server commits=%d aborts=%d (%.1f%% aborted) | pool redials=%d",
			r.label, float64(r.committed)/window.Seconds(),
			r.commits, r.aborts,
			100*float64(r.aborts)/float64(r.commits+r.aborts), r.redials)
	}
	// Sanity, not timing assertions: the faultless run must not abort,
	// and every faulted run must have survived via reconnects.
	if rows[0].aborts != 0 {
		t.Errorf("faultless run aborted %d transactions", rows[0].aborts)
	}
	for _, r := range rows[1:] {
		if r.redials == 0 {
			t.Errorf("rate %q: pool never redialled — faults not exercised", r.label)
		}
		if r.committed == 0 {
			t.Errorf("rate %q: nothing committed", r.label)
		}
	}
}
