package server_test

import (
	"context"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nestedtx"
	"nestedtx/client"
	"nestedtx/internal/wal"
)

// TestReplicaPoolRunVsFailoverRace hammers Run/ReadState/Leader against
// a concurrent leader switch. It is the -race regression test for the
// pool-swap data race: ReplicaPool.Run and ReadState used to read
// rp.pool without holding rp.mu while Failover swapped and closed it
// under the lock — a torn read the race detector flags, and a
// use-after-Close window that surfaced as spurious ErrPoolClosed. With
// the snapshot-under-mu fix, every goroutine works on a coherent *Pool
// and the run survives a mid-flight failover.
func TestReplicaPoolRunVsFailoverRace(t *testing.T) {
	fs := wal.NewMemFS()
	mgr, leaderSrv, leaderAddr := startLeader(t, fs, "leader")
	mgr.MustRegister("ctr", nestedtx.Counter{})
	fsrv, f, followerAddr := startFollower(t, fs, "follower", leaderAddr)

	rp, err := client.NewReplicaPool(leaderAddr, []string{followerAddr}, 2,
		client.WithTimeout(10*time.Second))
	if err != nil {
		t.Fatalf("NewReplicaPool: %v", err)
	}
	defer rp.Close()

	// One write so the replica has the object before readers start.
	if err := rp.Run(func(tx *client.Tx) error {
		_, err := tx.Write("ctr", nestedtx.CtrAdd{Delta: 1})
		return err
	}); err != nil {
		t.Fatalf("seed write: %v", err)
	}
	waitUntil(t, "replica catch-up", func() bool { return caughtUpState(f, mgr, "ctr", 1) })

	done := make(chan struct{})
	var successes atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				// Errors are expected while the leader is down; what must
				// not happen is a race-detector report or a successful
				// write getting lost.
				if rp.RunRetry(4, func(tx *client.Tx) error {
					_, err := tx.Write("ctr", nestedtx.CtrAdd{Delta: 1})
					return err
				}) == nil {
					successes.Add(1)
				}
			}
		}()
	}
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				rp.ReadState("ctr")
				rp.Leader()
				rp.Failovers()
				rp.Failover() // exercise probe coalescing under load
			}
		}()
	}

	// Let traffic flow against the old leader, then kill it and promote
	// the follower while the hammer keeps going.
	time.Sleep(100 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := leaderSrv.Shutdown(ctx); err != nil {
		t.Fatalf("leader shutdown: %v", err)
	}
	if _, err := fsrv.Promote(); err != nil {
		t.Fatalf("Promote: %v", err)
	}
	waitUntil(t, "a write to land on the new leader", func() bool {
		before := successes.Load()
		rp.Failover()
		return successes.Load() > before || rp.RunRetry(4, func(tx *client.Tx) error {
			_, err := tx.Write("ctr", nestedtx.CtrAdd{Delta: 1})
			return err
		}) == nil
	})
	time.Sleep(100 * time.Millisecond)
	close(done)
	wg.Wait()

	if got := rp.Failovers(); got != 1 {
		t.Fatalf("failovers = %d, want exactly 1 (probe rounds must coalesce)", got)
	}
	if rp.Leader() != followerAddr {
		t.Fatalf("leader = %s, want promoted %s", rp.Leader(), followerAddr)
	}
	// The new leader must still be writable through the pool the
	// failover installed.
	if err := rp.Run(func(tx *client.Tx) error {
		_, err := tx.Write("ctr", nestedtx.CtrAdd{Delta: 1})
		return err
	}); err != nil {
		t.Fatalf("write after hammer: %v", err)
	}
	st, err := rp.ReadState("ctr")
	if err != nil {
		t.Fatalf("ReadState after hammer: %v", err)
	}
	// Every acknowledged write is in the final state. (The state may
	// exceed the acknowledged count: a commit whose ack was cut by the
	// shutdown still applied.)
	if n := st.(nestedtx.Counter).N; n < successes.Load() {
		t.Fatalf("final state %d < %d acknowledged writes", n, successes.Load())
	}
}

// blackhole returns the address of a listener that accepts connections
// and then never answers — the worst-case probe target: the TCP dial
// succeeds, so only the client's I/O timeout ends the probe. accepted
// signals the first connection.
func blackhole(t *testing.T) (addr string, accepted <-chan struct{}) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	ch := make(chan struct{}, 16)
	var conns []net.Conn
	var mu sync.Mutex
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			conns = append(conns, c)
			mu.Unlock()
			select {
			case ch <- struct{}{}:
			default:
			}
		}
	}()
	t.Cleanup(func() {
		ln.Close()
		mu.Lock()
		for _, c := range conns {
			c.Close()
		}
		mu.Unlock()
	})
	return ln.Addr().String(), ch
}

// TestReplicaPoolReadsProceedDuringProbe is the regression test for
// Failover holding the state mutex across its network probes: with a
// probe stuck on a blackholed endpoint (dial OK, no response until the
// 3s I/O timeout), Leader() and a replica ReadState must answer in
// microseconds, not after the probe gives up. Before the fix both
// blocked on rp.mu for the full endpoints×timeout window.
func TestReplicaPoolReadsProceedDuringProbe(t *testing.T) {
	fs := wal.NewMemFS()
	mgr, leaderSrv, leaderAddr := startLeader(t, fs, "leader")
	mgr.MustRegister("ctr", nestedtx.Counter{})
	fsrv, f, followerAddr := startFollower(t, fs, "follower", leaderAddr)
	bhAddr, accepted := blackhole(t)

	rp, err := client.NewReplicaPool(leaderAddr, []string{followerAddr, bhAddr}, 2,
		client.WithTimeout(3*time.Second))
	if err != nil {
		t.Fatalf("NewReplicaPool: %v", err)
	}
	defer rp.Close()

	if err := rp.Run(func(tx *client.Tx) error {
		_, err := tx.Write("ctr", nestedtx.CtrAdd{Delta: 7})
		return err
	}); err != nil {
		t.Fatalf("seed write: %v", err)
	}
	// Wait for catch-up via the follower handle directly — ReadState
	// would advance the round-robin cursor onto the blackhole.
	waitUntil(t, "replica catch-up", func() bool { return caughtUpState(f, mgr, "ctr", 7) })

	// Kill the leader so the probe walks the endpoint list: the dead
	// leader fails fast, the follower answers "follower", and the
	// blackhole pins the probe until the I/O timeout.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := leaderSrv.Shutdown(ctx); err != nil {
		t.Fatalf("leader shutdown: %v", err)
	}
	probeDone := make(chan error, 1)
	go func() { probeDone <- rp.Failover() }()

	select {
	case <-accepted:
	case <-time.After(10 * time.Second):
		t.Fatal("probe never reached the blackholed endpoint")
	case err := <-probeDone:
		t.Fatalf("probe finished before reaching the blackhole: %v", err)
	}

	// Probe is now parked on the blackhole holding only probeMu. State
	// reads and replica reads must not notice.
	start := time.Now()
	if got := rp.Leader(); got != leaderAddr {
		t.Fatalf("Leader() = %s, want still %s mid-probe", got, leaderAddr)
	}
	st, err := rp.ReadState("ctr")
	if err != nil {
		t.Fatalf("ReadState during probe: %v", err)
	}
	if st.(nestedtx.Counter).N != 7 {
		t.Fatalf("ReadState during probe = %v, want 7", st)
	}
	if d := time.Since(start); d > 1500*time.Millisecond {
		t.Fatalf("reads took %v while a probe was in flight; they must not wait for it", d)
	}

	// The stuck round ends with no leader found (the follower was never
	// promoted); it must report failure, not misclassify.
	select {
	case err := <-probeDone:
		if err == nil {
			t.Fatal("Failover found a leader in a cluster with none")
		}
	case <-time.After(15 * time.Second):
		t.Fatal("Failover never returned from the blackholed probe")
	}

	// Promote the follower: the next probe finds it before reaching the
	// blackhole (endpoint order), so recovery is quick and complete.
	if _, err := fsrv.Promote(); err != nil {
		t.Fatalf("Promote: %v", err)
	}
	if err := rp.Failover(); err != nil {
		t.Fatalf("Failover after promote: %v", err)
	}
	if rp.Leader() != followerAddr {
		t.Fatalf("leader = %s, want promoted %s", rp.Leader(), followerAddr)
	}
	if err := rp.Run(func(tx *client.Tx) error {
		_, err := tx.Write("ctr", nestedtx.CtrAdd{Delta: 1})
		return err
	}); err != nil {
		t.Fatalf("write after failover: %v", err)
	}
}
