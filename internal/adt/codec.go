package adt

import (
	"encoding/json"
	"fmt"
)

// The codec serialises the library's values, operations and states with
// explicit type tags, so schedules and system types round-trip through
// JSON exactly (encoding/json alone would erase int64 into float64 and
// lose struct identity). Custom user-defined ops are not serialisable;
// the tools that persist schedules work with the library types.

// taggedValue is the wire form of a Value.
type taggedValue struct {
	T string          `json:"t"`
	V json.RawMessage `json:"v,omitempty"`
}

// EncodeValue serialises a Value produced by the library's ops.
func EncodeValue(v Value) ([]byte, error) {
	switch x := v.(type) {
	case nil:
		return json.Marshal(taggedValue{T: "nil"})
	case int64:
		raw, _ := json.Marshal(x)
		return json.Marshal(taggedValue{T: "i", V: raw})
	case bool:
		raw, _ := json.Marshal(x)
		return json.Marshal(taggedValue{T: "b", V: raw})
	case string:
		raw, _ := json.Marshal(x)
		return json.Marshal(taggedValue{T: "s", V: raw})
	case AcctResult:
		raw, _ := json.Marshal(x)
		return json.Marshal(taggedValue{T: "acct", V: raw})
	case TakeResult:
		raw, _ := json.Marshal(x)
		return json.Marshal(taggedValue{T: "take", V: raw})
	default:
		return nil, fmt.Errorf("adt: cannot encode value of type %T", v)
	}
}

// DecodeValue reverses EncodeValue.
func DecodeValue(data []byte) (Value, error) {
	var tv taggedValue
	if err := json.Unmarshal(data, &tv); err != nil {
		return nil, fmt.Errorf("adt: decode value: %w", err)
	}
	switch tv.T {
	case "nil":
		return nil, nil
	case "i":
		var x int64
		if err := json.Unmarshal(tv.V, &x); err != nil {
			return nil, err
		}
		return x, nil
	case "b":
		var x bool
		if err := json.Unmarshal(tv.V, &x); err != nil {
			return nil, err
		}
		return x, nil
	case "s":
		var x string
		if err := json.Unmarshal(tv.V, &x); err != nil {
			return nil, err
		}
		return x, nil
	case "acct":
		var x AcctResult
		if err := json.Unmarshal(tv.V, &x); err != nil {
			return nil, err
		}
		return x, nil
	case "take":
		var x TakeResult
		if err := json.Unmarshal(tv.V, &x); err != nil {
			return nil, err
		}
		return x, nil
	default:
		return nil, fmt.Errorf("adt: unknown value tag %q", tv.T)
	}
}

// taggedOp is the wire form of an Op.
type taggedOp struct {
	T string          `json:"t"`
	A json.RawMessage `json:"a,omitempty"`
}

// EncodeOp serialises one of the library's operations.
func EncodeOp(op Op) ([]byte, error) {
	tag, args, err := opTag(op)
	if err != nil {
		return nil, err
	}
	return json.Marshal(taggedOp{T: tag, A: args})
}

func opTag(op Op) (string, json.RawMessage, error) {
	marshal := func(v any) json.RawMessage {
		raw, _ := json.Marshal(v)
		return raw
	}
	switch x := op.(type) {
	case RegRead:
		return "reg.read", nil, nil
	case RegWrite:
		raw, err := EncodeValue(x.V)
		if err != nil {
			return "", nil, err
		}
		return "reg.write", raw, nil
	case CtrGet:
		return "ctr.get", nil, nil
	case CtrAdd:
		return "ctr.add", marshal(x.Delta), nil
	case CtrTake:
		return "ctr.take", marshal(x.N), nil
	case AcctBalance:
		return "acct.balance", nil, nil
	case AcctDeposit:
		return "acct.deposit", marshal(x.Amount), nil
	case AcctWithdraw:
		return "acct.withdraw", marshal(x.Amount), nil
	case SetInsert:
		return "set.insert", marshal(x.X), nil
	case SetRemove:
		return "set.remove", marshal(x.X), nil
	case SetContains:
		return "set.contains", marshal(x.X), nil
	case SetSize:
		return "set.size", nil, nil
	case QEnqueue:
		raw, err := EncodeValue(x.V)
		if err != nil {
			return "", nil, err
		}
		return "q.enqueue", raw, nil
	case QDequeue:
		return "q.dequeue", nil, nil
	case QPeek:
		return "q.peek", nil, nil
	case QLen:
		return "q.len", nil, nil
	case TblGet:
		return "tbl.get", marshal(x.K), nil
	case TblDelete:
		return "tbl.delete", marshal(x.K), nil
	case TblPut:
		v, err := EncodeValue(x.V)
		if err != nil {
			return "", nil, err
		}
		return "tbl.put", marshal(struct {
			K string          `json:"k"`
			V json.RawMessage `json:"v"`
		}{x.K, v}), nil
	default:
		return "", nil, fmt.Errorf("adt: cannot encode op of type %T", op)
	}
}

// DecodeOp reverses EncodeOp.
func DecodeOp(data []byte) (Op, error) {
	var to taggedOp
	if err := json.Unmarshal(data, &to); err != nil {
		return nil, fmt.Errorf("adt: decode op: %w", err)
	}
	switch to.T {
	case "reg.read":
		return RegRead{}, nil
	case "reg.write":
		v, err := DecodeValue(to.A)
		if err != nil {
			return nil, err
		}
		return RegWrite{V: v}, nil
	case "ctr.get":
		return CtrGet{}, nil
	case "ctr.add":
		var d int64
		if err := json.Unmarshal(to.A, &d); err != nil {
			return nil, err
		}
		return CtrAdd{Delta: d}, nil
	case "ctr.take":
		var n int64
		if err := json.Unmarshal(to.A, &n); err != nil {
			return nil, err
		}
		return CtrTake{N: n}, nil
	case "acct.balance":
		return AcctBalance{}, nil
	case "acct.deposit":
		var a int64
		if err := json.Unmarshal(to.A, &a); err != nil {
			return nil, err
		}
		return AcctDeposit{Amount: a}, nil
	case "acct.withdraw":
		var a int64
		if err := json.Unmarshal(to.A, &a); err != nil {
			return nil, err
		}
		return AcctWithdraw{Amount: a}, nil
	case "set.insert", "set.remove", "set.contains":
		var x int64
		if err := json.Unmarshal(to.A, &x); err != nil {
			return nil, err
		}
		switch to.T {
		case "set.insert":
			return SetInsert{X: x}, nil
		case "set.remove":
			return SetRemove{X: x}, nil
		default:
			return SetContains{X: x}, nil
		}
	case "set.size":
		return SetSize{}, nil
	case "q.enqueue":
		v, err := DecodeValue(to.A)
		if err != nil {
			return nil, err
		}
		return QEnqueue{V: v}, nil
	case "q.dequeue":
		return QDequeue{}, nil
	case "q.peek":
		return QPeek{}, nil
	case "q.len":
		return QLen{}, nil
	case "tbl.get", "tbl.delete":
		var k string
		if err := json.Unmarshal(to.A, &k); err != nil {
			return nil, err
		}
		if to.T == "tbl.get" {
			return TblGet{K: k}, nil
		}
		return TblDelete{K: k}, nil
	case "tbl.put":
		var kv struct {
			K string          `json:"k"`
			V json.RawMessage `json:"v"`
		}
		if err := json.Unmarshal(to.A, &kv); err != nil {
			return nil, err
		}
		v, err := DecodeValue(kv.V)
		if err != nil {
			return nil, err
		}
		return TblPut{K: kv.K, V: v}, nil
	default:
		return nil, fmt.Errorf("adt: unknown op tag %q", to.T)
	}
}

// taggedState is the wire form of a State.
type taggedState struct {
	T string          `json:"t"`
	V json.RawMessage `json:"v,omitempty"`
}

// EncodeState serialises one of the library's states.
func EncodeState(s State) ([]byte, error) {
	marshal := func(tag string, v any) ([]byte, error) {
		raw, err := json.Marshal(v)
		if err != nil {
			return nil, err
		}
		return json.Marshal(taggedState{T: tag, V: raw})
	}
	switch x := s.(type) {
	case Register:
		v, err := EncodeValue(x.V)
		if err != nil {
			return nil, err
		}
		return json.Marshal(taggedState{T: "reg", V: v})
	case Counter:
		return marshal("ctr", x.N)
	case Account:
		return marshal("acct", x.Balance)
	case IntSet:
		members := make([]int64, 0, x.Size())
		for k := range x.m {
			members = append(members, k)
		}
		return marshal("set", members)
	case Queue:
		enc := make([]json.RawMessage, 0, x.Len())
		for _, v := range x.Items() {
			raw, err := EncodeValue(v)
			if err != nil {
				return nil, err
			}
			enc = append(enc, raw)
		}
		return marshal("queue", enc)
	case Table:
		enc := make(map[string]json.RawMessage, len(x.m))
		for k, v := range x.m {
			raw, err := EncodeValue(v)
			if err != nil {
				return nil, err
			}
			enc[k] = raw
		}
		return marshal("tbl", enc)
	default:
		return nil, fmt.Errorf("adt: cannot encode state of type %T", s)
	}
}

// DecodeState reverses EncodeState.
func DecodeState(data []byte) (State, error) {
	var ts taggedState
	if err := json.Unmarshal(data, &ts); err != nil {
		return nil, fmt.Errorf("adt: decode state: %w", err)
	}
	switch ts.T {
	case "reg":
		v, err := DecodeValue(ts.V)
		if err != nil {
			return nil, err
		}
		return NewRegister(v), nil
	case "ctr":
		var n int64
		if err := json.Unmarshal(ts.V, &n); err != nil {
			return nil, err
		}
		return Counter{N: n}, nil
	case "acct":
		var b int64
		if err := json.Unmarshal(ts.V, &b); err != nil {
			return nil, err
		}
		return Account{Balance: b}, nil
	case "set":
		var members []int64
		if err := json.Unmarshal(ts.V, &members); err != nil {
			return nil, err
		}
		return NewIntSet(members...), nil
	case "queue":
		var enc []json.RawMessage
		if err := json.Unmarshal(ts.V, &enc); err != nil {
			return nil, err
		}
		items := make([]Value, 0, len(enc))
		for _, raw := range enc {
			v, err := DecodeValue(raw)
			if err != nil {
				return nil, err
			}
			items = append(items, v)
		}
		return NewQueue(items...), nil
	case "tbl":
		var enc map[string]json.RawMessage
		if err := json.Unmarshal(ts.V, &enc); err != nil {
			return nil, err
		}
		m := make(map[string]Value, len(enc))
		for k, raw := range enc {
			v, err := DecodeValue(raw)
			if err != nil {
				return nil, err
			}
			m[k] = v
		}
		return NewTable(m), nil
	default:
		return nil, fmt.Errorf("adt: unknown state tag %q", ts.T)
	}
}
