package adt

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// TestReadOnlyOpsLeaveStateUnchanged is the property test behind the
// lock-mode contract (and now the snapshot read path): for EVERY op the
// package defines, ReadOnly() == true implies Apply returns the state
// it was given, unchanged and deterministically. The op inventory below
// must list every exported Op; the completeness check at the bottom
// fails the test if a newly added op type is missing.
func TestReadOnlyOpsLeaveStateUnchanged(t *testing.T) {
	rng := rand.New(rand.NewSource(1))

	randValues := func() []Value {
		return []Value{int64(rng.Intn(100)), "s" + fmt.Sprint(rng.Intn(10)), rng.Intn(2) == 0}
	}
	// State generators, one batch per data type, randomized per seed.
	states := func() map[string][]State {
		vs := randValues()
		return map[string][]State{
			"Register": {Register{}, NewRegister(vs[0]), NewRegister(vs[1])},
			"Counter":  {Counter{}, Counter{N: int64(rng.Intn(1000) - 500)}},
			"IntSet":   {NewIntSet(), NewIntSet(1), NewIntSet(int64(rng.Intn(5)), int64(rng.Intn(5)), 7)},
			"Account":  {Account{}, Account{Balance: int64(rng.Intn(1000))}},
			"Table":    {NewTable(nil), NewTable(map[string]Value{"k": vs[0], "j": vs[2]})},
			"Queue":    {NewQueue(), NewQueue(vs...)},
		}
	}
	// Every op in the package, keyed by the data type it applies to.
	ops := func() map[string][]Op {
		vs := randValues()
		k := int64(rng.Intn(8))
		return map[string][]Op{
			"Register": {RegRead{}, RegWrite{V: vs[0]}},
			"Counter":  {CtrGet{}, CtrAdd{Delta: k}, CtrTake{N: k}},
			"IntSet":   {SetInsert{X: k}, SetRemove{X: k}, SetContains{X: k}, SetSize{}},
			"Account":  {AcctBalance{}, AcctDeposit{Amount: k}, AcctWithdraw{Amount: k}},
			"Table":    {TblGet{K: "k"}, TblPut{K: "k", V: vs[1]}, TblDelete{K: "k"}},
			"Queue":    {QEnqueue{V: vs[0]}, QDequeue{}, QPeek{}, QLen{}},
		}
	}

	covered := make(map[reflect.Type]bool)
	for seed := 0; seed < 200; seed++ {
		st := states()
		for typ, typOps := range ops() {
			for _, op := range typOps {
				covered[reflect.TypeOf(op)] = true
				for _, s := range st[typ] {
					next, v := op.Apply(s)
					if !op.ReadOnly() {
						continue
					}
					if !reflect.DeepEqual(next, s) {
						t.Fatalf("%T claims ReadOnly but changed %v to %v", op, s, next)
					}
					_, v2 := op.Apply(s)
					if !reflect.DeepEqual(v, v2) {
						t.Fatalf("%T is not deterministic: %v then %v on %v", op, v, v2, s)
					}
				}
			}
		}
	}

	// Completeness: every op the codec can round-trip must appear in the
	// inventory above, so a newly added op cannot silently dodge the
	// read-only property.
	for _, op := range allOps() {
		if !covered[reflect.TypeOf(op)] {
			t.Errorf("op %T is not covered by the read-only property test inventory", op)
		}
	}
}

// allOps is one instance of every operation the package exports — the
// codec's EncodeOp type switch is the authoritative list; a codec test
// failure plus this list going stale is the worst case for a missed op.
func allOps() []Op {
	return []Op{
		RegRead{}, RegWrite{},
		CtrGet{}, CtrAdd{}, CtrTake{},
		AcctBalance{}, AcctDeposit{}, AcctWithdraw{},
		SetInsert{}, SetRemove{}, SetContains{}, SetSize{},
		TblGet{}, TblPut{}, TblDelete{},
		QEnqueue{}, QDequeue{}, QPeek{}, QLen{},
	}
}
