// Package adt provides the abstract data types that back object automata.
//
// The paper's example basic object (§4.3) holds "an instance of an abstract
// data type"; each access applies a function to the instance, yielding a
// return value and a possibly altered instance. This package supplies the
// State/Op interfaces for such instances and a library of concrete types
// (register, counter, set, bank account, key-value table).
//
// The semantic conditions of §4.3 demand that *read* accesses leave the
// object "essentially" in the state they found it (equieffectiveness).
// Operations here make that syntactically evident: an Op whose ReadOnly
// method reports true must return the very state it was given. The
// equieffectiveness property tests in internal/object verify this for every
// type in the library.
package adt

import "fmt"

// Value is an access's return value. Values must be comparable with ==
// (ints, strings, bools, small comparable structs) so that schedules can be
// compared for serial correctness.
type Value any

// State is an immutable snapshot of an object's data. Ops never mutate a
// State in place; they return the successor state. Because M(X) keeps one
// version per write-lockholder, immutability makes version maps cheap and
// aliasing-safe.
type State interface {
	// String renders the state for traces and error messages.
	String() string
}

// Op is a single operation of the data type: the function an access applies
// to the instance.
type Op interface {
	// Apply computes (successor state, return value). For a ReadOnly op the
	// successor must be the argument itself.
	Apply(s State) (State, Value)
	// ReadOnly classifies the access: true for read accesses, false for
	// write accesses (Moss' algorithm takes no semantic assumptions about
	// writes, so any op may be declared a write).
	ReadOnly() bool
	// String renders the operation for traces.
	String() string
}

// --- Register ---------------------------------------------------------

// Register is a single mutable cell holding a Value.
type Register struct{ V Value }

// NewRegister returns a register state holding v.
func NewRegister(v Value) Register { return Register{V: v} }

func (r Register) String() string { return fmt.Sprintf("reg(%v)", r.V) }

// RegRead reads the register.
type RegRead struct{}

func (RegRead) Apply(s State) (State, Value) { return s, s.(Register).V }
func (RegRead) ReadOnly() bool               { return true }
func (RegRead) String() string               { return "read" }

// RegWrite overwrites the register with V.
type RegWrite struct{ V Value }

func (w RegWrite) Apply(s State) (State, Value) { return Register{V: w.V}, w.V }
func (RegWrite) ReadOnly() bool                 { return false }
func (w RegWrite) String() string               { return fmt.Sprintf("write(%v)", w.V) }

// --- Counter ----------------------------------------------------------

// Counter is a monotonic-free integer counter.
type Counter struct{ N int64 }

func (c Counter) String() string { return fmt.Sprintf("ctr(%d)", c.N) }

// CtrGet reads the counter.
type CtrGet struct{}

func (CtrGet) Apply(s State) (State, Value) { return s, s.(Counter).N }
func (CtrGet) ReadOnly() bool               { return true }
func (CtrGet) String() string               { return "get" }

// CtrAdd adds Delta to the counter and returns the new total.
type CtrAdd struct{ Delta int64 }

func (a CtrAdd) Apply(s State) (State, Value) {
	n := s.(Counter).N + a.Delta
	return Counter{N: n}, n
}
func (CtrAdd) ReadOnly() bool   { return false }
func (a CtrAdd) String() string { return fmt.Sprintf("add(%d)", a.Delta) }

// --- Set --------------------------------------------------------------

// IntSet is a set of int64 members. States are persistent: operations copy
// on write.
type IntSet struct{ m map[int64]struct{} }

// NewIntSet returns a set state containing the given members.
func NewIntSet(members ...int64) IntSet {
	m := make(map[int64]struct{}, len(members))
	for _, x := range members {
		m[x] = struct{}{}
	}
	return IntSet{m: m}
}

func (s IntSet) String() string { return fmt.Sprintf("set(size=%d)", len(s.m)) }

// Size returns the number of members.
func (s IntSet) Size() int { return len(s.m) }

// Has reports membership.
func (s IntSet) Has(x int64) bool { _, ok := s.m[x]; return ok }

func (s IntSet) with(x int64) IntSet {
	m := make(map[int64]struct{}, len(s.m)+1)
	for k := range s.m {
		m[k] = struct{}{}
	}
	m[x] = struct{}{}
	return IntSet{m: m}
}

func (s IntSet) without(x int64) IntSet {
	m := make(map[int64]struct{}, len(s.m))
	for k := range s.m {
		if k != x {
			m[k] = struct{}{}
		}
	}
	return IntSet{m: m}
}

// SetInsert inserts X; returns whether it was newly added.
type SetInsert struct{ X int64 }

func (i SetInsert) Apply(s State) (State, Value) {
	st := s.(IntSet)
	if st.Has(i.X) {
		return st, false
	}
	return st.with(i.X), true
}
func (SetInsert) ReadOnly() bool   { return false }
func (i SetInsert) String() string { return fmt.Sprintf("insert(%d)", i.X) }

// SetRemove removes X; returns whether it was present.
type SetRemove struct{ X int64 }

func (r SetRemove) Apply(s State) (State, Value) {
	st := s.(IntSet)
	if !st.Has(r.X) {
		return st, false
	}
	return st.without(r.X), true
}
func (SetRemove) ReadOnly() bool   { return false }
func (r SetRemove) String() string { return fmt.Sprintf("remove(%d)", r.X) }

// SetContains tests membership of X.
type SetContains struct{ X int64 }

func (c SetContains) Apply(s State) (State, Value) { return s, s.(IntSet).Has(c.X) }
func (SetContains) ReadOnly() bool                 { return true }
func (c SetContains) String() string               { return fmt.Sprintf("contains(%d)", c.X) }

// SetSize returns the cardinality.
type SetSize struct{}

func (SetSize) Apply(s State) (State, Value) { return s, int64(s.(IntSet).Size()) }
func (SetSize) ReadOnly() bool               { return true }
func (SetSize) String() string               { return "size" }

// --- Bank account -----------------------------------------------------

// Account is a bank account balance in integer cents. Withdrawals that
// would overdraw fail without changing the state (the op is still a write
// access: failure is decided against the version the access locks).
type Account struct{ Balance int64 }

func (a Account) String() string { return fmt.Sprintf("acct(%d)", a.Balance) }

// AcctResult is the return value of account mutations.
type AcctResult struct {
	OK      bool  // false when a withdrawal was refused
	Balance int64 // balance after the operation
}

// AcctBalance reads the balance.
type AcctBalance struct{}

func (AcctBalance) Apply(s State) (State, Value) { return s, s.(Account).Balance }
func (AcctBalance) ReadOnly() bool               { return true }
func (AcctBalance) String() string               { return "balance" }

// AcctDeposit adds Amount (must be >= 0) to the balance.
type AcctDeposit struct{ Amount int64 }

func (d AcctDeposit) Apply(s State) (State, Value) {
	b := s.(Account).Balance + d.Amount
	return Account{Balance: b}, AcctResult{OK: true, Balance: b}
}
func (AcctDeposit) ReadOnly() bool   { return false }
func (d AcctDeposit) String() string { return fmt.Sprintf("deposit(%d)", d.Amount) }

// AcctWithdraw subtracts Amount if funds suffice; otherwise it refuses and
// leaves the balance unchanged.
type AcctWithdraw struct{ Amount int64 }

func (w AcctWithdraw) Apply(s State) (State, Value) {
	a := s.(Account)
	if a.Balance < w.Amount {
		return a, AcctResult{OK: false, Balance: a.Balance}
	}
	b := a.Balance - w.Amount
	return Account{Balance: b}, AcctResult{OK: true, Balance: b}
}
func (AcctWithdraw) ReadOnly() bool   { return false }
func (w AcctWithdraw) String() string { return fmt.Sprintf("withdraw(%d)", w.Amount) }

// --- Key-value table --------------------------------------------------

// Table is a string-keyed map with persistent (copy-on-write) states.
type Table struct{ m map[string]Value }

// NewTable returns a table state with the given contents.
func NewTable(init map[string]Value) Table {
	m := make(map[string]Value, len(init))
	for k, v := range init {
		m[k] = v
	}
	return Table{m: m}
}

func (t Table) String() string { return fmt.Sprintf("table(size=%d)", len(t.m)) }

// Get returns the value stored at k, or nil.
func (t Table) Get(k string) Value { return t.m[k] }

// Len returns the number of keys.
func (t Table) Len() int { return len(t.m) }

func (t Table) with(k string, v Value) Table {
	m := make(map[string]Value, len(t.m)+1)
	for key, val := range t.m {
		m[key] = val
	}
	m[k] = v
	return Table{m: m}
}

func (t Table) without(k string) Table {
	m := make(map[string]Value, len(t.m))
	for key, val := range t.m {
		if key != k {
			m[key] = val
		}
	}
	return Table{m: m}
}

// TblGet reads key K; returns the stored value, or nil if absent.
type TblGet struct{ K string }

func (g TblGet) Apply(s State) (State, Value) { return s, s.(Table).Get(g.K) }
func (TblGet) ReadOnly() bool                 { return true }
func (g TblGet) String() string               { return fmt.Sprintf("get(%s)", g.K) }

// TblPut stores V at key K and returns the previous value (or nil).
type TblPut struct {
	K string
	V Value
}

func (p TblPut) Apply(s State) (State, Value) {
	t := s.(Table)
	prev := t.Get(p.K)
	return t.with(p.K, p.V), prev
}
func (TblPut) ReadOnly() bool   { return false }
func (p TblPut) String() string { return fmt.Sprintf("put(%s=%v)", p.K, p.V) }

// TblDelete removes key K and returns whether it was present.
type TblDelete struct{ K string }

func (d TblDelete) Apply(s State) (State, Value) {
	t := s.(Table)
	if t.Get(d.K) == nil {
		return t, false
	}
	return t.without(d.K), true
}
func (TblDelete) ReadOnly() bool   { return false }
func (d TblDelete) String() string { return fmt.Sprintf("delete(%s)", d.K) }

// TakeResult is the return value of CtrTake.
type TakeResult struct {
	OK bool  // whether the take succeeded
	N  int64 // counter value after the operation
}

// CtrTake atomically takes N units from the counter if at least N remain;
// otherwise it fails and leaves the counter unchanged. A single write
// access, it avoids the read-then-write lock-upgrade pattern that invites
// deadlock in reservation workloads.
type CtrTake struct{ N int64 }

func (t CtrTake) Apply(s State) (State, Value) {
	c := s.(Counter)
	if c.N < t.N {
		return c, TakeResult{OK: false, N: c.N}
	}
	n := c.N - t.N
	return Counter{N: n}, TakeResult{OK: true, N: n}
}
func (CtrTake) ReadOnly() bool   { return false }
func (t CtrTake) String() string { return fmt.Sprintf("take(%d)", t.N) }

// --- Queue --------------------------------------------------------------

// Queue is a FIFO of Values with persistent (copy-on-write) states.
type Queue struct{ items []Value }

// NewQueue returns a queue state with the given initial contents (front
// first).
func NewQueue(items ...Value) Queue {
	q := Queue{items: make([]Value, len(items))}
	copy(q.items, items)
	return q
}

func (q Queue) String() string { return fmt.Sprintf("queue(len=%d)", len(q.items)) }

// Len returns the number of queued items.
func (q Queue) Len() int { return len(q.items) }

// Front returns the front item, or nil when empty.
func (q Queue) Front() Value {
	if len(q.items) == 0 {
		return nil
	}
	return q.items[0]
}

// Items returns a copy of the queued items, front first.
func (q Queue) Items() []Value {
	out := make([]Value, len(q.items))
	copy(out, q.items)
	return out
}

// QEnqueue appends V and returns the new length.
type QEnqueue struct{ V Value }

func (e QEnqueue) Apply(s State) (State, Value) {
	q := s.(Queue)
	items := make([]Value, len(q.items)+1)
	copy(items, q.items)
	items[len(q.items)] = e.V
	return Queue{items: items}, int64(len(items))
}
func (QEnqueue) ReadOnly() bool   { return false }
func (e QEnqueue) String() string { return fmt.Sprintf("enqueue(%v)", e.V) }

// QDequeue removes and returns the front item (nil when empty).
type QDequeue struct{}

func (QDequeue) Apply(s State) (State, Value) {
	q := s.(Queue)
	if len(q.items) == 0 {
		return q, nil
	}
	items := make([]Value, len(q.items)-1)
	copy(items, q.items[1:])
	return Queue{items: items}, q.items[0]
}
func (QDequeue) ReadOnly() bool { return false }
func (QDequeue) String() string { return "dequeue" }

// QPeek returns the front item without removing it (read lock).
type QPeek struct{}

func (QPeek) Apply(s State) (State, Value) { return s, s.(Queue).Front() }
func (QPeek) ReadOnly() bool               { return true }
func (QPeek) String() string               { return "peek" }

// QLen returns the queue length (read lock).
type QLen struct{}

func (QLen) Apply(s State) (State, Value) { return s, int64(s.(Queue).Len()) }
func (QLen) ReadOnly() bool               { return true }
func (QLen) String() string               { return "len" }
