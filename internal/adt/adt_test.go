package adt

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// ops returns a generator of random ops for each state kind, used by the
// read-only property tests.
func randomOp(r *rand.Rand, kind int) Op {
	switch kind {
	case 0:
		if r.Intn(2) == 0 {
			return RegRead{}
		}
		return RegWrite{V: int64(r.Intn(100))}
	case 1:
		switch r.Intn(3) {
		case 0:
			return CtrGet{}
		case 1:
			return CtrAdd{Delta: int64(r.Intn(20) - 10)}
		default:
			return CtrTake{N: int64(r.Intn(5))}
		}
	case 2:
		switch r.Intn(3) {
		case 0:
			return AcctBalance{}
		case 1:
			return AcctDeposit{Amount: int64(r.Intn(50))}
		default:
			return AcctWithdraw{Amount: int64(r.Intn(80))}
		}
	case 3:
		switch r.Intn(4) {
		case 0:
			return SetContains{X: int64(r.Intn(8))}
		case 1:
			return SetSize{}
		case 2:
			return SetInsert{X: int64(r.Intn(8))}
		default:
			return SetRemove{X: int64(r.Intn(8))}
		}
	default:
		k := []string{"a", "b", "c"}[r.Intn(3)]
		switch r.Intn(3) {
		case 0:
			return TblGet{K: k}
		case 1:
			return TblPut{K: k, V: int64(r.Intn(100))}
		default:
			return TblDelete{K: k}
		}
	}
}

func initialState(r *rand.Rand, kind int) State {
	switch kind {
	case 0:
		return NewRegister(int64(r.Intn(10)))
	case 1:
		return Counter{N: int64(r.Intn(10))}
	case 2:
		return Account{Balance: int64(r.Intn(100))}
	case 3:
		return NewIntSet(int64(r.Intn(4)), int64(r.Intn(4)))
	default:
		return NewTable(map[string]Value{"a": int64(1)})
	}
}

// TestReadOnlyOpsReturnSameState: the contract behind the paper's
// semantic condition 3 — a read access's Apply must return the state it
// was given (strongest form of "leaves the object in essentially the same
// state").
func TestReadOnlyOpsReturnSameState(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func() bool {
		kind := r.Intn(5)
		s := initialState(r, kind)
		// Advance through a few random ops first.
		for i := 0; i < r.Intn(6); i++ {
			s, _ = randomOp(r, kind).Apply(s)
		}
		op := randomOp(r, kind)
		next, _ := op.Apply(s)
		if op.ReadOnly() {
			return sameDynamic(next, s)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

// sameDynamic compares states that hold maps (not == comparable) by
// identity of behaviour on probes.
func sameDynamic(a, b State) bool {
	switch av := a.(type) {
	case IntSet:
		bv := b.(IntSet)
		if av.Size() != bv.Size() {
			return false
		}
		for x := int64(0); x < 16; x++ {
			if av.Has(x) != bv.Has(x) {
				return false
			}
		}
		return true
	case Table:
		bv := b.(Table)
		if av.Len() != bv.Len() {
			return false
		}
		for _, k := range []string{"a", "b", "c"} {
			if av.Get(k) != bv.Get(k) {
				return false
			}
		}
		return true
	default:
		return a == b
	}
}

func TestRegister(t *testing.T) {
	s := State(NewRegister(int64(3)))
	s2, v := RegRead{}.Apply(s)
	if v != int64(3) || s2 != s {
		t.Fatalf("read: %v %v", v, s2)
	}
	s3, v := RegWrite{V: int64(9)}.Apply(s)
	if v != int64(9) || s3.(Register).V != int64(9) || s.(Register).V != int64(3) {
		t.Fatal("write must return new state and not mutate the old")
	}
}

func TestCounter(t *testing.T) {
	s := State(Counter{N: 5})
	s, v := CtrAdd{Delta: -2}.Apply(s)
	if v != int64(3) || s.(Counter).N != 3 {
		t.Fatalf("add: %v", v)
	}
	_, v = CtrGet{}.Apply(s)
	if v != int64(3) {
		t.Fatalf("get: %v", v)
	}
	s, v = CtrTake{N: 5}.Apply(s)
	if v.(TakeResult).OK || s.(Counter).N != 3 {
		t.Fatal("take must fail without enough units and leave state")
	}
	s, v = CtrTake{N: 3}.Apply(s)
	if !v.(TakeResult).OK || v.(TakeResult).N != 0 || s.(Counter).N != 0 {
		t.Fatal("take should succeed exactly")
	}
}

func TestAccount(t *testing.T) {
	s := State(Account{Balance: 10})
	s, v := AcctWithdraw{Amount: 20}.Apply(s)
	if v.(AcctResult).OK || s.(Account).Balance != 10 {
		t.Fatal("overdraft must be refused without changing state")
	}
	s, v = AcctDeposit{Amount: 15}.Apply(s)
	if !v.(AcctResult).OK || v.(AcctResult).Balance != 25 {
		t.Fatalf("deposit: %v", v)
	}
	s, v = AcctWithdraw{Amount: 25}.Apply(s)
	if !v.(AcctResult).OK || s.(Account).Balance != 0 {
		t.Fatalf("withdraw: %v", v)
	}
	_, v = AcctBalance{}.Apply(s)
	if v != int64(0) {
		t.Fatalf("balance: %v", v)
	}
}

func TestIntSetPersistence(t *testing.T) {
	s0 := NewIntSet(1, 2)
	s1, v := SetInsert{X: 3}.Apply(s0)
	if v != true || !s1.(IntSet).Has(3) || s0.Has(3) {
		t.Fatal("insert must be persistent (no aliasing)")
	}
	_, v = SetInsert{X: 3}.Apply(s1)
	if v != false {
		t.Fatal("re-insert reports false")
	}
	s2, v := SetRemove{X: 1}.Apply(s1)
	if v != true || s2.(IntSet).Has(1) || !s1.(IntSet).Has(1) {
		t.Fatal("remove must be persistent")
	}
	_, v = SetRemove{X: 99}.Apply(s2)
	if v != false {
		t.Fatal("removing absent member reports false")
	}
	_, v = SetContains{X: 2}.Apply(s2)
	if v != true {
		t.Fatal("contains")
	}
	_, v = SetSize{}.Apply(s2)
	if v != int64(2) {
		t.Fatalf("size: %v", v)
	}
}

func TestTablePersistence(t *testing.T) {
	t0 := NewTable(map[string]Value{"a": int64(1)})
	t1, prev := TblPut{K: "b", V: int64(2)}.Apply(t0)
	if prev != nil || t0.Get("b") != nil || t1.(Table).Get("b") != int64(2) {
		t.Fatal("put must be persistent and return previous value")
	}
	_, prev = TblPut{K: "a", V: int64(5)}.Apply(t1)
	if prev != int64(1) {
		t.Fatalf("previous = %v", prev)
	}
	t2, ok := TblDelete{K: "a"}.Apply(t1)
	if ok != true || t2.(Table).Get("a") != nil || t1.(Table).Get("a") != int64(1) {
		t.Fatal("delete must be persistent")
	}
	_, ok = TblDelete{K: "zz"}.Apply(t2)
	if ok != false {
		t.Fatal("deleting absent key reports false")
	}
	_, v := TblGet{K: "b"}.Apply(t2)
	if v != int64(2) {
		t.Fatalf("get: %v", v)
	}
}

func TestOpStrings(t *testing.T) {
	ops := []Op{
		RegRead{}, RegWrite{V: 1}, CtrGet{}, CtrAdd{Delta: 2}, CtrTake{N: 1},
		AcctBalance{}, AcctDeposit{Amount: 3}, AcctWithdraw{Amount: 4},
		SetInsert{X: 5}, SetRemove{X: 6}, SetContains{X: 7}, SetSize{},
		TblGet{K: "k"}, TblPut{K: "k", V: 1}, TblDelete{K: "k"},
	}
	for _, op := range ops {
		if op.String() == "" {
			t.Errorf("%T has empty String", op)
		}
	}
	states := []State{NewRegister(1), Counter{}, Account{}, NewIntSet(), NewTable(nil)}
	for _, s := range states {
		if s.String() == "" {
			t.Errorf("%T has empty String", s)
		}
	}
}

func TestQueuePersistence(t *testing.T) {
	q0 := NewQueue(int64(1), int64(2))
	s1, n := QEnqueue{V: int64(3)}.Apply(q0)
	if n != int64(3) || q0.Len() != 2 || s1.(Queue).Len() != 3 {
		t.Fatal("enqueue must be persistent and return new length")
	}
	_, front := QPeek{}.Apply(s1)
	if front != int64(1) {
		t.Fatalf("peek = %v", front)
	}
	s2, v := QDequeue{}.Apply(s1)
	if v != int64(1) || s2.(Queue).Len() != 2 || s1.(Queue).Len() != 3 {
		t.Fatal("dequeue must be persistent and return front")
	}
	_, l := QLen{}.Apply(s2)
	if l != int64(2) {
		t.Fatalf("len = %v", l)
	}
	empty := NewQueue()
	same, v := QDequeue{}.Apply(empty)
	if v != nil || same.(Queue).Len() != 0 {
		t.Fatal("dequeue of empty queue returns nil and leaves state")
	}
	for _, op := range []Op{QPeek{}, QEnqueue{V: 1}, QDequeue{}, QLen{}} {
		if op.String() == "" {
			t.Fatal("strings")
		}
	}
}

func TestQueueCodecRoundTrip(t *testing.T) {
	q := NewQueue(int64(1), "two", true)
	raw, err := EncodeState(q)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeState(raw)
	if err != nil {
		t.Fatal(err)
	}
	items := back.(Queue).Items()
	if len(items) != 3 || items[0] != int64(1) || items[1] != "two" || items[2] != true {
		t.Fatalf("round-trip changed queue: %v", items)
	}
	for _, op := range []Op{QEnqueue{V: int64(4)}, QDequeue{}, QPeek{}, QLen{}} {
		raw, err := EncodeOp(op)
		if err != nil {
			t.Fatal(err)
		}
		back, err := DecodeOp(raw)
		if err != nil {
			t.Fatal(err)
		}
		if back.String() != op.String() || back.ReadOnly() != op.ReadOnly() {
			t.Fatalf("op round-trip mismatch: %s vs %s", op, back)
		}
	}
}

func TestCodecErrorPaths(t *testing.T) {
	// Bad inner payloads for each tagged decode path.
	badValues := []string{
		`{"t":"i","v":"x"}`, `{"t":"b","v":3}`, `{"t":"s","v":1}`,
		`{"t":"acct","v":"x"}`, `{"t":"take","v":"x"}`, `not json`,
	}
	for _, b := range badValues {
		if _, err := DecodeValue([]byte(b)); err == nil {
			t.Errorf("DecodeValue(%q) accepted", b)
		}
	}
	badOps := []string{
		`{"t":"reg.write","a":{"t":"?"}}`, `{"t":"ctr.add","a":"x"}`,
		`{"t":"ctr.take","a":"x"}`, `{"t":"acct.deposit","a":"x"}`,
		`{"t":"acct.withdraw","a":"x"}`, `{"t":"set.insert","a":"x"}`,
		`{"t":"tbl.get","a":1}`, `{"t":"tbl.put","a":"x"}`,
		`{"t":"tbl.put","a":{"k":"k","v":{"t":"?"}}}`,
		`{"t":"q.enqueue","a":{"t":"?"}}`, `bogus`,
	}
	for _, b := range badOps {
		if _, err := DecodeOp([]byte(b)); err == nil {
			t.Errorf("DecodeOp(%q) accepted", b)
		}
	}
	badStates := []string{
		`{"t":"reg","v":{"t":"?"}}`, `{"t":"ctr","v":"x"}`, `{"t":"acct","v":"x"}`,
		`{"t":"set","v":"x"}`, `{"t":"tbl","v":"x"}`, `{"t":"tbl","v":{"k":{"t":"?"}}}`,
		`{"t":"queue","v":"x"}`, `{"t":"queue","v":[{"t":"?"}]}`, `garbage`,
	}
	for _, b := range badStates {
		if _, err := DecodeState([]byte(b)); err == nil {
			t.Errorf("DecodeState(%q) accepted", b)
		}
	}
	// Ops/states carrying unencodable values are rejected.
	if _, err := EncodeOp(RegWrite{V: struct{ X int }{}}); err == nil {
		t.Error("RegWrite with custom value must be rejected")
	}
	if _, err := EncodeOp(TblPut{K: "k", V: struct{ X int }{}}); err == nil {
		t.Error("TblPut with custom value must be rejected")
	}
	if _, err := EncodeOp(QEnqueue{V: struct{ X int }{}}); err == nil {
		t.Error("QEnqueue with custom value must be rejected")
	}
	if _, err := EncodeState(NewRegister(struct{ X int }{})); err == nil {
		t.Error("register with custom value must be rejected")
	}
	if _, err := EncodeState(NewQueue(struct{ X int }{})); err == nil {
		t.Error("queue with custom value must be rejected")
	}
	if _, err := EncodeState(NewTable(map[string]Value{"k": struct{ X int }{}})); err == nil {
		t.Error("table with custom value must be rejected")
	}
}

func TestValueCodecRoundTripAll(t *testing.T) {
	values := []Value{nil, int64(-5), true, false, "hello",
		AcctResult{OK: true, Balance: 3}, TakeResult{OK: false, N: 9}}
	for _, v := range values {
		raw, err := EncodeValue(v)
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		back, err := DecodeValue(raw)
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if back != v {
			t.Fatalf("round trip changed %v to %v", v, back)
		}
	}
}
