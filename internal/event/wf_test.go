package event

import (
	"strings"
	"testing"
)

func wfTx(t *testing.T, evs ...Event) error {
	t.Helper()
	return WFTransaction(evs, "T0.0")
}

func TestWFTransactionAccepts(t *testing.T) {
	err := wfTx(t,
		Event{Kind: Create, T: "T0.0"},
		Event{Kind: RequestCreate, T: "T0.0.0"},
		Event{Kind: RequestCreate, T: "T0.0.1"},
		Event{Kind: ReportAbort, T: "T0.0.1"},
		Event{Kind: ReportCommit, T: "T0.0.0", Value: int64(1)},
		Event{Kind: ReportCommit, T: "T0.0.0", Value: int64(1)}, // repeat of same report is legal
		Event{Kind: RequestCommit, T: "T0.0", Value: int64(2)},
		Event{Kind: ReportAbort, T: "T0.0.1"}, // reports may arrive after commit request
	)
	if err != nil {
		t.Fatal(err)
	}
}

func TestWFTransactionRejects(t *testing.T) {
	cases := []struct {
		name string
		evs  []Event
		want string
	}{
		{"duplicate create", []Event{
			{Kind: Create, T: "T0.0"}, {Kind: Create, T: "T0.0"},
		}, "duplicate CREATE"},
		{"output before create", []Event{
			{Kind: RequestCreate, T: "T0.0.0"},
		}, "before CREATE"},
		{"request commit before create", []Event{
			{Kind: RequestCommit, T: "T0.0"},
		}, "before CREATE"},
		{"duplicate request create", []Event{
			{Kind: Create, T: "T0.0"},
			{Kind: RequestCreate, T: "T0.0.0"},
			{Kind: RequestCreate, T: "T0.0.0"},
		}, "duplicate REQUEST_CREATE"},
		{"report for unrequested child", []Event{
			{Kind: Create, T: "T0.0"},
			{Kind: ReportCommit, T: "T0.0.0"},
		}, "not requested"},
		{"conflicting reports", []Event{
			{Kind: Create, T: "T0.0"},
			{Kind: RequestCreate, T: "T0.0.0"},
			{Kind: ReportCommit, T: "T0.0.0", Value: int64(1)},
			{Kind: ReportAbort, T: "T0.0.0"},
		}, "REPORT_ABORT after REPORT_COMMIT"},
		{"conflicting report values", []Event{
			{Kind: Create, T: "T0.0"},
			{Kind: RequestCreate, T: "T0.0.0"},
			{Kind: ReportCommit, T: "T0.0.0", Value: int64(1)},
			{Kind: ReportCommit, T: "T0.0.0", Value: int64(2)},
		}, "conflicting value"},
		{"output after request commit", []Event{
			{Kind: Create, T: "T0.0"},
			{Kind: RequestCommit, T: "T0.0"},
			{Kind: RequestCreate, T: "T0.0.0"},
		}, "after REQUEST_COMMIT"},
		{"duplicate request commit", []Event{
			{Kind: Create, T: "T0.0"},
			{Kind: RequestCommit, T: "T0.0"},
			{Kind: RequestCommit, T: "T0.0"},
		}, "duplicate REQUEST_COMMIT"},
		{"foreign event", []Event{
			{Kind: Create, T: "T0.1"},
		}, "not an operation"},
	}
	for _, c := range cases {
		err := wfTx(t, c.evs...)
		if err == nil {
			t.Errorf("%s: accepted, want rejection", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestWFObject(t *testing.T) {
	st := testType(t)
	good := Schedule{
		{Kind: Create, T: "T0.0.0"},
		{Kind: Create, T: "T0.0.1"},
		{Kind: RequestCommit, T: "T0.0.1", Value: int64(0)},
		{Kind: RequestCommit, T: "T0.0.0", Value: int64(1)},
	}
	if err := WFObject(good, st, "X"); err != nil {
		t.Fatal(err)
	}
	bads := []Schedule{
		{{Kind: Create, T: "T0.0.0"}, {Kind: Create, T: "T0.0.0"}},
		{{Kind: RequestCommit, T: "T0.0.0"}},
		{{Kind: Create, T: "T0.0.0"}, {Kind: RequestCommit, T: "T0.0.0"}, {Kind: RequestCommit, T: "T0.0.0"}},
		{{Kind: Create, T: "T0.1.0"}}, // access to Y, not X
		{{Kind: Commit, T: "T0.0.0"}}, // not a basic-object operation
	}
	for i, b := range bads {
		if WFObject(b, st, "X") == nil {
			t.Errorf("bad object schedule %d accepted", i)
		}
	}
}

func TestPending(t *testing.T) {
	st := testType(t)
	s := Schedule{
		{Kind: Create, T: "T0.0.0"},
		{Kind: Create, T: "T0.0.1"},
		{Kind: RequestCommit, T: "T0.0.0", Value: int64(1)},
	}
	p := Pending(s, st, "X")
	if len(p) != 1 || p[0] != "T0.0.1" {
		t.Fatalf("Pending = %v", p)
	}
}

func TestWFLockObject(t *testing.T) {
	st := testType(t)
	good := Schedule{
		{Kind: Create, T: "T0.0.0"},
		{Kind: RequestCommit, T: "T0.0.0", Value: int64(1)},
		{Kind: InformCommitAt, T: "T0.0.0", Object: "X"},
		{Kind: InformCommitAt, T: "T0.0", Object: "X"},
		{Kind: InformAbortAt, T: "T0.1", Object: "X"},
	}
	if err := WFLockObject(good, st, "X"); err != nil {
		t.Fatal(err)
	}
	bads := []struct {
		name string
		s    Schedule
	}{
		{"inform commit before response", Schedule{
			{Kind: Create, T: "T0.0.0"},
			{Kind: InformCommitAt, T: "T0.0.0", Object: "X"},
		}},
		{"inform commit then abort", Schedule{
			{Kind: InformCommitAt, T: "T0.0", Object: "X"},
			{Kind: InformAbortAt, T: "T0.0", Object: "X"},
		}},
		{"inform abort then commit", Schedule{
			{Kind: InformAbortAt, T: "T0.0", Object: "X"},
			{Kind: InformCommitAt, T: "T0.0", Object: "X"},
		}},
		{"duplicate create", Schedule{
			{Kind: Create, T: "T0.0.0"},
			{Kind: Create, T: "T0.0.0"},
		}},
		{"wrong object inform", Schedule{
			{Kind: InformCommitAt, T: "T0.0", Object: "Y"},
		}},
	}
	for _, b := range bads {
		if WFLockObject(b.s, st, "X") == nil {
			t.Errorf("%s: accepted", b.name)
		}
	}
}

func TestWFSerialAndConcurrent(t *testing.T) {
	st := testType(t)
	s := Schedule{
		{Kind: Create, T: "T0"},
		{Kind: RequestCreate, T: "T0.0"},
		{Kind: Create, T: "T0.0"},
		{Kind: RequestCreate, T: "T0.0.0"},
		{Kind: Create, T: "T0.0.0"},
		{Kind: RequestCommit, T: "T0.0.0", Value: int64(1)},
	}
	if err := WFSerial(s, st); err != nil {
		t.Fatal(err)
	}
	if err := WFConcurrent(s, st); err != nil {
		t.Fatal(err)
	}
	bad := append(s.Clone(), Event{Kind: Create, T: "T0.0.0"})
	if WFSerial(bad, st) == nil || WFConcurrent(bad, st) == nil {
		t.Fatal("duplicate access CREATE must be rejected by both")
	}
}
