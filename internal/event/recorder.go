package event

import "sync"

// Recorder accumulates the event schedule of a live run, thread-safely.
// Components record each operation at the moment its state transition
// logically takes effect, so the accumulated sequence is a schedule of the
// composed system. A nil *Recorder is valid and records nothing, which
// lets benchmarks run with recording off.
type Recorder struct {
	mu     sync.Mutex
	events Schedule
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Record appends e. No-op on a nil recorder.
func (r *Recorder) Record(e Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

// RecordAll appends a batch of events atomically (they will appear
// contiguously in the schedule). No-op on a nil recorder.
func (r *Recorder) RecordAll(es ...Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.events = append(r.events, es...)
	r.mu.Unlock()
}

// Snapshot returns a copy of the schedule so far. Nil recorders return
// nil.
func (r *Recorder) Snapshot() Schedule {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.events.Clone()
}

// Len returns the number of events recorded.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}
