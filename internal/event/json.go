package event

import (
	"encoding/json"
	"fmt"

	"nestedtx/internal/adt"
	"nestedtx/internal/tree"
)

// Run is a self-contained persisted run: a system type (objects and
// accesses) plus a schedule. Saved runs are regression artifacts — a
// failing schedule can be stored and replayed through the checker later.
type Run struct {
	SystemType *SystemType
	Schedule   Schedule
}

// wire forms ------------------------------------------------------------

type wireEvent struct {
	Kind   string          `json:"kind"`
	T      string          `json:"t"`
	Value  json.RawMessage `json:"value,omitempty"`
	Object string          `json:"object,omitempty"`
}

type wireAccess struct {
	T      string          `json:"t"`
	Object string          `json:"object"`
	Op     json.RawMessage `json:"op"`
}

type wireObject struct {
	Name    string          `json:"name"`
	Initial json.RawMessage `json:"initial"`
}

type wireRun struct {
	Objects  []wireObject `json:"objects"`
	Accesses []wireAccess `json:"accesses"`
	Schedule []wireEvent  `json:"schedule"`
}

var kindByName = func() map[string]Kind {
	m := make(map[string]Kind, len(kindNames))
	for k, n := range kindNames {
		m[n] = Kind(k)
	}
	return m
}()

// MarshalRun serialises a run. Only the adt library's ops, states and
// values are supported (see adt codec).
func MarshalRun(st *SystemType, s Schedule) ([]byte, error) {
	var wr wireRun
	for _, x := range st.Objects() {
		init, _ := st.ObjectInitial(x)
		raw, err := adt.EncodeState(init)
		if err != nil {
			return nil, fmt.Errorf("event: marshal object %s: %w", x, err)
		}
		wr.Objects = append(wr.Objects, wireObject{Name: x, Initial: raw})
	}
	for _, t := range st.Accesses() {
		a, _ := st.AccessInfo(t)
		raw, err := adt.EncodeOp(a.Op)
		if err != nil {
			return nil, fmt.Errorf("event: marshal access %s: %w", t, err)
		}
		wr.Accesses = append(wr.Accesses, wireAccess{T: string(t), Object: a.Object, Op: raw})
	}
	for _, e := range s {
		we := wireEvent{Kind: e.Kind.String(), T: string(e.T), Object: e.Object}
		if e.Kind == RequestCommit || e.Kind == ReportCommit {
			raw, err := adt.EncodeValue(e.Value)
			if err != nil {
				return nil, fmt.Errorf("event: marshal %s: %w", e, err)
			}
			we.Value = raw
		}
		wr.Schedule = append(wr.Schedule, we)
	}
	return json.MarshalIndent(wr, "", " ")
}

// UnmarshalRun reverses MarshalRun.
func UnmarshalRun(data []byte) (*SystemType, Schedule, error) {
	var wr wireRun
	if err := json.Unmarshal(data, &wr); err != nil {
		return nil, nil, fmt.Errorf("event: unmarshal run: %w", err)
	}
	st := NewSystemType()
	for _, o := range wr.Objects {
		init, err := adt.DecodeState(o.Initial)
		if err != nil {
			return nil, nil, fmt.Errorf("event: object %s: %w", o.Name, err)
		}
		st.DefineObject(o.Name, init)
	}
	for _, a := range wr.Accesses {
		op, err := adt.DecodeOp(a.Op)
		if err != nil {
			return nil, nil, fmt.Errorf("event: access %s: %w", a.T, err)
		}
		id := tree.TID(a.T)
		if !id.Valid() {
			return nil, nil, fmt.Errorf("event: access %q: invalid name", a.T)
		}
		if err := st.DefineAccess(id, a.Object, op); err != nil {
			return nil, nil, err
		}
	}
	var s Schedule
	for i, we := range wr.Schedule {
		k, ok := kindByName[we.Kind]
		if !ok {
			return nil, nil, fmt.Errorf("event: schedule[%d]: unknown kind %q", i, we.Kind)
		}
		id := tree.TID(we.T)
		if !id.Valid() {
			return nil, nil, fmt.Errorf("event: schedule[%d]: invalid transaction %q", i, we.T)
		}
		e := Event{Kind: k, T: id, Object: we.Object}
		if len(we.Value) > 0 {
			v, err := adt.DecodeValue(we.Value)
			if err != nil {
				return nil, nil, fmt.Errorf("event: schedule[%d]: %w", i, err)
			}
			e.Value = v
		}
		s = append(s, e)
	}
	return st, s, nil
}
