// Package event defines the operations and schedules of the paper's model.
//
// Systems are compositions of I/O automata; we concentrate analysis on the
// sequence of operations performed — the schedule. The nine operation kinds
// are those of §3 and §5: the five transaction-interface operations
// (CREATE, REQUEST_CREATE, REQUEST_COMMIT, REPORT_COMMIT, REPORT_ABORT),
// the scheduler's internal return operations (COMMIT, ABORT), and the two
// lock-object notifications (INFORM_COMMIT_AT(X), INFORM_ABORT_AT(X)).
//
// The package also implements the paper's derived notions on sequences:
// projections (α|T, α|X), transaction(π), visibility (visible(α,T)),
// orphanhood, the write subsequence and write-equality, and the
// well-formedness conditions for transactions (§3.1), basic objects (§3.2)
// and R/W Locking objects (§5.1).
package event

import (
	"fmt"
	"sort"
	"strings"

	"nestedtx/internal/adt"
	"nestedtx/internal/tree"
)

// Kind enumerates the operation kinds.
type Kind int

// The operation kinds, in the paper's vocabulary.
const (
	// Create wakes up a transaction (input of the transaction, output of a
	// scheduler). For an access transaction it is the invocation of an
	// operation on the object.
	Create Kind = iota
	// RequestCreate is a request by a parent to create a child.
	RequestCreate
	// RequestCommit announces a transaction has finished, with a value.
	// For an access it is the object's response to the invocation.
	RequestCommit
	// Commit is the scheduler's irrevocable decision that a transaction
	// commits.
	Commit
	// Abort is the scheduler's irrevocable decision that a transaction
	// aborts.
	Abort
	// ReportCommit reports a child's commit (with its value) to the parent.
	ReportCommit
	// ReportAbort reports a child's abort to the parent.
	ReportAbort
	// InformCommitAt informs a R/W Locking object of a commit.
	InformCommitAt
	// InformAbortAt informs a R/W Locking object of an abort.
	InformAbortAt
)

var kindNames = [...]string{
	Create:         "CREATE",
	RequestCreate:  "REQUEST_CREATE",
	RequestCommit:  "REQUEST_COMMIT",
	Commit:         "COMMIT",
	Abort:          "ABORT",
	ReportCommit:   "REPORT_COMMIT",
	ReportAbort:    "REPORT_ABORT",
	InformCommitAt: "INFORM_COMMIT_AT",
	InformAbortAt:  "INFORM_ABORT_AT",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Value is a transaction return value; see adt.Value.
type Value = adt.Value

// Event is one operation instance in a schedule.
type Event struct {
	Kind Kind
	// T is the transaction the operation concerns: CREATE(T),
	// REQUEST_CREATE(T), REQUEST_COMMIT(T,v), COMMIT(T), ABORT(T),
	// REPORT_COMMIT(T,v), REPORT_ABORT(T), INFORM_*_AT(X)OF(T).
	T tree.TID
	// Value accompanies RequestCommit and ReportCommit.
	Value Value
	// Object names X for InformCommitAt / InformAbortAt.
	Object string
}

// String renders the event in the paper's notation.
func (e Event) String() string {
	switch e.Kind {
	case RequestCommit, ReportCommit:
		return fmt.Sprintf("%s(%s,%v)", e.Kind, e.T, e.Value)
	case InformCommitAt, InformAbortAt:
		return fmt.Sprintf("%s(%s)OF(%s)", e.Kind, e.Object, e.T)
	default:
		return fmt.Sprintf("%s(%s)", e.Kind, e.T)
	}
}

// TransactionOf returns transaction(π) as defined in §3.4: CREATE(T) and
// REQUEST_COMMIT(T,v) belong to T; REQUEST_CREATE(T'), COMMIT(T'),
// ABORT(T'), REPORT_COMMIT(T',v) and REPORT_ABORT(T') belong to
// parent(T'). INFORM operations belong to no transaction (ok=false).
func TransactionOf(e Event) (tree.TID, bool) {
	switch e.Kind {
	case Create, RequestCommit:
		return e.T, true
	case RequestCreate, Commit, Abort, ReportCommit, ReportAbort:
		return e.T.Parent(), true
	default:
		return "", false
	}
}

// Schedule is a finite sequence of events.
type Schedule []Event

// String renders the schedule one event per line.
func (s Schedule) String() string {
	var b strings.Builder
	for i, e := range s {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(e.String())
	}
	return b.String()
}

// Clone returns a copy of the schedule.
func (s Schedule) Clone() Schedule {
	c := make(Schedule, len(s))
	copy(c, s)
	return c
}

// Filter returns the subsequence of events satisfying keep.
func (s Schedule) Filter(keep func(Event) bool) Schedule {
	var out Schedule
	for _, e := range s {
		if keep(e) {
			out = append(out, e)
		}
	}
	return out
}

// Equal reports whether two schedules are identical event sequences.
func (s Schedule) Equal(t Schedule) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// SystemType fixes the pattern of nesting relevant to a run: which leaf
// names are accesses, which object each access touches and which operation
// it performs, and the initial state of each object. It is the executable
// counterpart of the paper's "system type" (§3); the rest of the infinite
// tree is implicit.
type SystemType struct {
	objects  map[string]adt.State
	accesses map[tree.TID]Access
	// interior holds every proper ancestor of every access, so the
	// accesses-are-leaves invariant is checkable in O(depth) rather than
	// by scanning all accesses (managers define accesses dynamically, one
	// per runtime operation, so this is on the hot path).
	interior map[tree.TID]struct{}
}

// Access describes one access transaction: the object it touches and the
// data-type operation it applies. The access is a read access exactly when
// Op.ReadOnly() is true.
type Access struct {
	Object string
	Op     adt.Op
}

// NewSystemType returns an empty system type.
func NewSystemType() *SystemType {
	return &SystemType{
		objects:  make(map[string]adt.State),
		accesses: make(map[tree.TID]Access),
		interior: make(map[tree.TID]struct{}),
	}
}

// DefineObject declares object x with initial state init.
func (st *SystemType) DefineObject(x string, init adt.State) {
	st.objects[x] = init
}

// DefineAccess declares t as an access to object x applying op. The object
// must already be defined and t must not already be an access or have
// descendants that are accesses (accesses are leaves).
func (st *SystemType) DefineAccess(t tree.TID, x string, op adt.Op) error {
	if _, ok := st.objects[x]; !ok {
		return fmt.Errorf("event: DefineAccess(%s): object %q not defined", t, x)
	}
	if _, ok := st.accesses[t]; ok {
		return fmt.Errorf("event: DefineAccess(%s): already an access", t)
	}
	if _, ok := st.interior[t]; ok {
		return fmt.Errorf("event: DefineAccess(%s): an access lies below it (accesses are leaves)", t)
	}
	anc := t.ProperAncestors()
	for _, u := range anc {
		if _, ok := st.accesses[u]; ok {
			return fmt.Errorf("event: DefineAccess(%s): conflicts with access %s (accesses are leaves)", t, u)
		}
	}
	st.accesses[t] = Access{Object: x, Op: op}
	for _, u := range anc {
		st.interior[u] = struct{}{}
	}
	return nil
}

// MustDefineAccess is DefineAccess, panicking on error (for tests and
// statically-known workloads).
func (st *SystemType) MustDefineAccess(t tree.TID, x string, op adt.Op) {
	if err := st.DefineAccess(t, x, op); err != nil {
		panic(err)
	}
}

// IsAccess reports whether t is an access.
func (st *SystemType) IsAccess(t tree.TID) bool {
	_, ok := st.accesses[t]
	return ok
}

// AccessInfo returns the access description for t.
func (st *SystemType) AccessInfo(t tree.TID) (Access, bool) {
	a, ok := st.accesses[t]
	return a, ok
}

// IsReadAccess reports whether t is an access whose operation is read-only.
func (st *SystemType) IsReadAccess(t tree.TID) bool {
	a, ok := st.accesses[t]
	return ok && a.Op.ReadOnly()
}

// IsWriteAccess reports whether t is an access whose operation may write.
func (st *SystemType) IsWriteAccess(t tree.TID) bool {
	a, ok := st.accesses[t]
	return ok && !a.Op.ReadOnly()
}

// ObjectInitial returns object x's initial state.
func (st *SystemType) ObjectInitial(x string) (adt.State, bool) {
	s, ok := st.objects[x]
	return s, ok
}

// Objects returns the declared object names (unspecified order).
func (st *SystemType) Objects() []string {
	out := make([]string, 0, len(st.objects))
	for x := range st.objects {
		out = append(out, x)
	}
	return out
}

// Accesses returns the declared access names (unspecified order).
func (st *SystemType) Accesses() []tree.TID {
	out := make([]tree.TID, 0, len(st.accesses))
	for t := range st.accesses {
		out = append(out, t)
	}
	return out
}

// AtTransaction returns α|T: the subsequence of events that are operations
// of transaction automaton T — CREATE(T), REQUEST_COMMIT(T,v) and, for
// non-access T, REQUEST_CREATE(T') and report events for children T'.
func (s Schedule) AtTransaction(t tree.TID) Schedule {
	return s.Filter(func(e Event) bool { return isOpOfTransaction(e, t) })
}

func isOpOfTransaction(e Event, t tree.TID) bool {
	switch e.Kind {
	case Create, RequestCommit:
		return e.T == t
	case RequestCreate, ReportCommit, ReportAbort:
		return e.T.Parent() == t
	default:
		return false
	}
}

// AtObject returns α|X for basic object X: CREATE(T) and
// REQUEST_COMMIT(T,v) events for accesses T to X.
func (s Schedule) AtObject(st *SystemType, x string) Schedule {
	return s.Filter(func(e Event) bool {
		if e.Kind != Create && e.Kind != RequestCommit {
			return false
		}
		a, ok := st.accesses[e.T]
		return ok && a.Object == x
	})
}

// AtLockObject returns α|M(X): the basic-object operations of X plus the
// INFORM_COMMIT_AT(X) and INFORM_ABORT_AT(X) events.
func (s Schedule) AtLockObject(st *SystemType, x string) Schedule {
	return s.Filter(func(e Event) bool {
		switch e.Kind {
		case Create, RequestCommit:
			a, ok := st.accesses[e.T]
			return ok && a.Object == x
		case InformCommitAt, InformAbortAt:
			return e.Object == x
		default:
			return false
		}
	})
}

// TouchedObjects returns the sorted names of the objects s has
// operations at: the objects of its access events plus the targets of
// its INFORM events. Checkers iterate touched objects instead of the
// declared universe — a projection at an untouched object is empty,
// hence trivially well-formed, write-equal and replayable — so checking
// cost scales with the schedule's footprint, not with how many objects
// a run registered (the simulator registers 2^20 accounts and touches a
// few thousand).
func (s Schedule) TouchedObjects(st *SystemType) []string {
	seen := make(map[string]struct{})
	for _, e := range s {
		switch e.Kind {
		case InformCommitAt, InformAbortAt:
			seen[e.Object] = struct{}{}
		default:
			if a, ok := st.accesses[e.T]; ok {
				seen[a.Object] = struct{}{}
			}
		}
	}
	out := make([]string, 0, len(seen))
	for x := range seen {
		out = append(out, x)
	}
	sort.Strings(out)
	return out
}

// CommittedTo reports whether t is committed to ancestor anc in s:
// COMMIT(U) occurs for every U that is an ancestor of t and a proper
// descendant of anc (§3.4). Every transaction is trivially committed to
// itself.
func (s Schedule) CommittedTo(t, anc tree.TID) bool {
	if !anc.IsAncestorOf(t) {
		return false
	}
	need := make(map[tree.TID]bool)
	for _, u := range t.Ancestors() {
		if u.IsProperDescendantOf(anc) {
			need[u] = false
		}
	}
	for _, e := range s {
		if e.Kind == Commit {
			if _, ok := need[e.T]; ok {
				need[e.T] = true
			}
		}
	}
	for _, done := range need {
		if !done {
			return false
		}
	}
	return true
}

// VisibleTo reports whether t' is visible to t in s: t' is committed to
// lca(t',t).
func (s Schedule) VisibleTo(tPrime, t tree.TID) bool {
	return s.CommittedTo(tPrime, tree.LCA(tPrime, t))
}

// Visible returns visible(s, t): the subsequence of events π whose
// transaction(π) is visible to t. INFORM events (which belong to no
// transaction) are excluded, matching the paper's definition.
func (s Schedule) Visible(t tree.TID) Schedule {
	// Compute the commit set once, then test visibility per transaction
	// with memoization — visibility queries share ancestor commit checks.
	committed := make(map[tree.TID]bool)
	for _, e := range s {
		if e.Kind == Commit {
			committed[e.T] = true
		}
	}
	memo := make(map[tree.TID]bool)
	var visible func(u tree.TID) bool
	visible = func(u tree.TID) bool {
		if v, ok := memo[u]; ok {
			return v
		}
		l := tree.LCA(u, t)
		ok := true
		for _, a := range u.Ancestors() {
			if a.IsProperDescendantOf(l) && !committed[a] {
				ok = false
				break
			}
		}
		memo[u] = ok
		return ok
	}
	return s.Filter(func(e Event) bool {
		u, ok := TransactionOf(e)
		return ok && visible(u)
	})
}

// IsOrphan reports whether t is an orphan in s: ABORT(U) occurs for some
// ancestor U of t.
func (s Schedule) IsOrphan(t tree.TID) bool {
	anc := t.Ancestors()
	for _, e := range s {
		if e.Kind == Abort {
			for _, u := range anc {
				if e.T == u {
					return true
				}
			}
		}
	}
	return false
}

// IsLive reports whether t is live in s: CREATE(T) occurs but no return
// (COMMIT/ABORT) for T occurs (§3.4).
func (s Schedule) IsLive(t tree.TID) bool {
	created := false
	for _, e := range s {
		if e.T == t {
			switch e.Kind {
			case Create:
				created = true
			case Commit, Abort:
				return false
			}
		}
	}
	return created
}

// Write returns write(s): the subsequence of REQUEST_COMMIT(T,v) events
// for write accesses T (§4.3).
func (s Schedule) Write(st *SystemType) Schedule {
	return s.Filter(func(e Event) bool {
		return e.Kind == RequestCommit && st.IsWriteAccess(e.T)
	})
}

// WriteEqual reports whether s and u are write-equal: write(s) == write(u).
func WriteEqual(st *SystemType, s, u Schedule) bool {
	return s.Write(st).Equal(u.Write(st))
}

// WriteEquivalent reports whether s and u are write-equivalent (§6.1):
// they contain the same events, agree on every transaction projection, and
// are write-equal at every object.
func WriteEquivalent(st *SystemType, s, u Schedule) bool {
	if len(s) != len(u) {
		return false
	}
	if !sameMultiset(s, u) {
		return false
	}
	// Group each schedule once: operations by owning transaction
	// automaton (the AtTransaction projection) and write accesses by
	// object (the AtObject∘Write projection). Comparing the groups is
	// semantically the per-transaction / per-object projection check,
	// but linear in the schedule instead of (transactions + objects) ×
	// |schedule| — WriteEquivalent runs once per Check candidate, which
	// made the quadratic form the checker's hot spot on large histories.
	// A transaction or object grouped in one schedule but not the other
	// compares against the empty projection, exactly as Filter would.
	sTx, sObj := projections(st, s)
	uTx, uObj := projections(st, u)
	for t, p := range sTx {
		if !p.Equal(uTx[t]) {
			return false
		}
	}
	for t := range uTx {
		if _, ok := sTx[t]; !ok {
			return false
		}
	}
	for x, w := range sObj {
		if !w.Equal(uObj[x]) {
			return false
		}
	}
	for x := range uObj {
		if _, ok := sObj[x]; !ok {
			return false
		}
	}
	return true
}

// projections groups s by transaction automaton (isOpOfTransaction) and
// collects the per-object write sequences, in one pass.
func projections(st *SystemType, s Schedule) (map[tree.TID]Schedule, map[string]Schedule) {
	byTx := make(map[tree.TID]Schedule)
	byObj := make(map[string]Schedule)
	for _, e := range s {
		switch e.Kind {
		case Create, RequestCommit:
			byTx[e.T] = append(byTx[e.T], e)
			if e.Kind == RequestCommit {
				if a, ok := st.accesses[e.T]; ok && !a.Op.ReadOnly() {
					byObj[a.Object] = append(byObj[a.Object], e)
				}
			}
		case RequestCreate, ReportCommit, ReportAbort:
			p := e.T.Parent()
			byTx[p] = append(byTx[p], e)
		}
	}
	return byTx, byObj
}

func sameMultiset(s, u Schedule) bool {
	count := make(map[Event]int, len(s))
	for _, e := range s {
		count[e]++
	}
	for _, e := range u {
		count[e]--
		if count[e] < 0 {
			return false
		}
	}
	return true
}
