package event

import (
	"testing"

	"nestedtx/internal/adt"
)

// FuzzUnmarshalRun: arbitrary bytes must never panic; anything that
// decodes must re-encode and decode to the same schedule.
func FuzzUnmarshalRun(f *testing.F) {
	st := NewSystemType()
	st.DefineObject("R", adt.NewRegister(int64(3)))
	st.MustDefineAccess("T0.0.0", "R", adt.RegWrite{V: int64(7)})
	seed, err := MarshalRun(st, Schedule{
		{Kind: Create, T: "T0"},
		{Kind: RequestCreate, T: "T0.0"},
		{Kind: Create, T: "T0.0.0"},
		{Kind: RequestCommit, T: "T0.0.0", Value: int64(7)},
		{Kind: InformCommitAt, T: "T0.0.0", Object: "R"},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte("{}"))
	f.Add([]byte(`{"schedule":[{"kind":"CREATE","t":"T0"}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		st1, s1, err := UnmarshalRun(data)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		re, err := MarshalRun(st1, s1)
		if err != nil {
			t.Fatalf("decoded run failed to re-encode: %v", err)
		}
		st2, s2, err := UnmarshalRun(re)
		if err != nil {
			t.Fatalf("re-encoded run failed to decode: %v", err)
		}
		if !s1.Equal(s2) {
			t.Fatalf("schedule unstable across round-trip")
		}
		if len(st1.Objects()) != len(st2.Objects()) || len(st1.Accesses()) != len(st2.Accesses()) {
			t.Fatalf("system type unstable across round-trip")
		}
	})
}
