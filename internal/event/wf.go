package event

import (
	"fmt"
	"sort"

	"nestedtx/internal/tree"
)

// WFError describes a well-formedness violation: which rule failed, at
// which position, for which component.
type WFError struct {
	Component string // "transaction T", "object X", "lock object M(X)"
	Index     int    // position of the offending event in the sequence
	Event     Event
	Rule      string
}

func (e *WFError) Error() string {
	return fmt.Sprintf("event: %s: event %d %s violates well-formedness: %s",
		e.Component, e.Index, e.Event, e.Rule)
}

// WFTransaction checks the §3.1 well-formedness conditions on a sequence of
// operations of non-access transaction t. The sequence should already be
// the projection at t (use Schedule.AtTransaction).
func WFTransaction(s Schedule, t tree.TID) error {
	created := false
	requestedCommit := false
	requestedChildren := make(map[tree.TID]bool)
	reported := make(map[tree.TID]Event) // child -> first report operation seen
	fail := func(i int, rule string) error {
		return &WFError{Component: "transaction " + string(t), Index: i, Event: s[i], Rule: rule}
	}
	for i, e := range s {
		if !isOpOfTransaction(e, t) {
			return fail(i, "not an operation of this transaction")
		}
		switch e.Kind {
		case Create:
			if created {
				return fail(i, "duplicate CREATE")
			}
			created = true
		case ReportCommit:
			if !requestedChildren[e.T] {
				return fail(i, "REPORT_COMMIT for child whose creation was not requested")
			}
			if prev, ok := reported[e.T]; ok {
				if prev.Kind == ReportAbort {
					return fail(i, "REPORT_COMMIT after REPORT_ABORT for same child")
				}
				if prev.Value != e.Value {
					return fail(i, "REPORT_COMMIT with conflicting value for same child")
				}
			} else {
				reported[e.T] = e
			}
		case ReportAbort:
			if !requestedChildren[e.T] {
				return fail(i, "REPORT_ABORT for child whose creation was not requested")
			}
			if prev, ok := reported[e.T]; ok && prev.Kind == ReportCommit {
				return fail(i, "REPORT_ABORT after REPORT_COMMIT for same child")
			}
			reported[e.T] = e
		case RequestCreate:
			if requestedChildren[e.T] {
				return fail(i, "duplicate REQUEST_CREATE for child")
			}
			if requestedCommit {
				return fail(i, "REQUEST_CREATE after REQUEST_COMMIT")
			}
			if !created {
				return fail(i, "REQUEST_CREATE before CREATE")
			}
			requestedChildren[e.T] = true
		case RequestCommit:
			if requestedCommit {
				return fail(i, "duplicate REQUEST_COMMIT")
			}
			if !created {
				return fail(i, "REQUEST_COMMIT before CREATE")
			}
			requestedCommit = true
		}
	}
	return nil
}

// WFObject checks the §3.2 well-formedness conditions on a sequence of
// operations of basic object x: no access created twice, no access
// responded to twice or before creation. The sequence should already be
// the projection at x (use Schedule.AtObject).
func WFObject(s Schedule, st *SystemType, x string) error {
	created := make(map[tree.TID]bool)
	responded := make(map[tree.TID]bool)
	fail := func(i int, rule string) error {
		return &WFError{Component: "object " + x, Index: i, Event: s[i], Rule: rule}
	}
	for i, e := range s {
		a, ok := st.accesses[e.T]
		if !ok || a.Object != x {
			return fail(i, "not an access to this object")
		}
		switch e.Kind {
		case Create:
			if created[e.T] {
				return fail(i, "duplicate CREATE for access")
			}
			created[e.T] = true
		case RequestCommit:
			if responded[e.T] {
				return fail(i, "duplicate REQUEST_COMMIT for access")
			}
			if !created[e.T] {
				return fail(i, "REQUEST_COMMIT before CREATE")
			}
			responded[e.T] = true
		default:
			return fail(i, "operation kind not of a basic object")
		}
	}
	return nil
}

// Pending returns the accesses to x that are pending in s: created but not
// yet responded to (§3.2). s should be well-formed at x.
func Pending(s Schedule, st *SystemType, x string) []tree.TID {
	created := make(map[tree.TID]bool)
	var order []tree.TID
	for _, e := range s.AtObject(st, x) {
		switch e.Kind {
		case Create:
			created[e.T] = true
			order = append(order, e.T)
		case RequestCommit:
			created[e.T] = false
		}
	}
	var out []tree.TID
	for _, t := range order {
		if created[t] {
			out = append(out, t)
		}
	}
	return out
}

// WFLockObject checks the §5.1 well-formedness conditions on a sequence of
// operations of R/W Locking object M(x). The sequence should already be the
// projection at M(x) (use Schedule.AtLockObject).
func WFLockObject(s Schedule, st *SystemType, x string) error {
	created := make(map[tree.TID]bool)
	responded := make(map[tree.TID]bool)
	informedCommit := make(map[tree.TID]bool)
	informedAbort := make(map[tree.TID]bool)
	fail := func(i int, rule string) error {
		return &WFError{Component: "lock object M(" + x + ")", Index: i, Event: s[i], Rule: rule}
	}
	for i, e := range s {
		switch e.Kind {
		case Create:
			if a, ok := st.accesses[e.T]; !ok || a.Object != x {
				return fail(i, "CREATE for non-access to this object")
			}
			if created[e.T] {
				return fail(i, "duplicate CREATE for access")
			}
			created[e.T] = true
		case RequestCommit:
			if responded[e.T] {
				return fail(i, "duplicate REQUEST_COMMIT for access")
			}
			if !created[e.T] {
				return fail(i, "REQUEST_COMMIT before CREATE")
			}
			responded[e.T] = true
		case InformCommitAt:
			if e.Object != x {
				return fail(i, "INFORM for different object")
			}
			if informedAbort[e.T] {
				return fail(i, "INFORM_COMMIT after INFORM_ABORT for same transaction")
			}
			if st.IsAccess(e.T) {
				a := st.accesses[e.T]
				if a.Object == x && !responded[e.T] {
					return fail(i, "INFORM_COMMIT for access to this object before its REQUEST_COMMIT")
				}
			}
			informedCommit[e.T] = true
		case InformAbortAt:
			if e.Object != x {
				return fail(i, "INFORM for different object")
			}
			if informedCommit[e.T] {
				return fail(i, "INFORM_ABORT after INFORM_COMMIT for same transaction")
			}
			informedAbort[e.T] = true
		default:
			return fail(i, "operation kind not of a lock object")
		}
	}
	return nil
}

// WFSerial checks that a sequence of serial operations is well-formed: its
// projection at every transaction and basic object is well-formed (§3.4).
// Only transactions and objects with events in s are checked (projections
// at untouched components are empty, hence trivially well-formed).
//
// Both WF checks compute every projection in one grouping pass over s
// rather than filtering once per component — the checks run on every
// serial candidate the S9 checker builds, so the (components × events)
// form was a dominant cost on large histories.
func WFSerial(s Schedule, st *SystemType) error {
	if err := wfTransactions(s, st); err != nil {
		return err
	}
	groups, names := groupAtObjects(s, st, false)
	for _, x := range names {
		if err := WFObject(groups[x], st, x); err != nil {
			return err
		}
	}
	return nil
}

// WFConcurrent checks that a sequence of concurrent operations is
// well-formed: its projection at every transaction and R/W Locking object
// is well-formed (§5.3).
func WFConcurrent(s Schedule, st *SystemType) error {
	if err := wfTransactions(s, st); err != nil {
		return err
	}
	groups, names := groupAtObjects(s, st, true)
	for _, x := range names {
		if err := WFLockObject(groups[x], st, x); err != nil {
			return err
		}
	}
	return nil
}

// wfTransactions checks WFTransaction for every non-access transaction
// with operations in s, grouping the per-transaction projections in one
// pass (groups[t] equals s.AtTransaction(t)).
func wfTransactions(s Schedule, st *SystemType) error {
	groups := make(map[tree.TID]Schedule)
	for _, e := range s {
		switch e.Kind {
		case Create, RequestCommit:
			groups[e.T] = append(groups[e.T], e)
		case RequestCreate, ReportCommit, ReportAbort:
			p := e.T.Parent()
			groups[p] = append(groups[p], e)
		}
	}
	for _, t := range transactionsIn(s, st) {
		if err := WFTransaction(groups[t], t); err != nil {
			return err
		}
	}
	return nil
}

// groupAtObjects groups s by object in one pass: with lock false each
// group equals s.AtObject(st, x), with lock true s.AtLockObject(st, x).
// names lists every touched object (including objects touched only by
// INFORM events, whose basic projection is empty), sorted.
func groupAtObjects(s Schedule, st *SystemType, lock bool) (map[string]Schedule, []string) {
	groups := make(map[string]Schedule)
	seen := make(map[string]struct{})
	var names []string
	note := func(x string) {
		if _, dup := seen[x]; !dup {
			seen[x] = struct{}{}
			names = append(names, x)
		}
	}
	for _, e := range s {
		switch e.Kind {
		case Create, RequestCommit:
			if a, ok := st.accesses[e.T]; ok {
				note(a.Object)
				groups[a.Object] = append(groups[a.Object], e)
			}
		case InformCommitAt, InformAbortAt:
			note(e.Object)
			if lock {
				groups[e.Object] = append(groups[e.Object], e)
			}
		}
	}
	sort.Strings(names)
	return groups, names
}

// transactionsIn returns the non-access transactions that have operations
// in s.
func transactionsIn(s Schedule, st *SystemType) []tree.TID {
	seen := make(map[tree.TID]struct{})
	var out []tree.TID
	for _, e := range s {
		t, ok := TransactionOf(e)
		if !ok || st.IsAccess(t) {
			continue
		}
		if _, dup := seen[t]; !dup {
			seen[t] = struct{}{}
			out = append(out, t)
		}
	}
	return out
}
