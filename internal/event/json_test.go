package event

import (
	"math/rand"
	"testing"

	"nestedtx/internal/adt"
)

func TestRunRoundTrip(t *testing.T) {
	st := NewSystemType()
	st.DefineObject("R", adt.NewRegister(int64(3)))
	st.DefineObject("C", adt.Counter{N: 5})
	st.DefineObject("A", adt.Account{Balance: 100})
	st.DefineObject("S", adt.NewIntSet(1, 2, 3))
	st.DefineObject("T", adt.NewTable(map[string]adt.Value{"k": int64(9), "s": "str", "b": true}))
	st.MustDefineAccess("T0.0.0", "R", adt.RegWrite{V: int64(7)})
	st.MustDefineAccess("T0.0.1", "C", adt.CtrAdd{Delta: -2})
	st.MustDefineAccess("T0.0.2", "A", adt.AcctWithdraw{Amount: 30})
	st.MustDefineAccess("T0.0.3", "S", adt.SetContains{X: 2})
	st.MustDefineAccess("T0.0.4", "T", adt.TblPut{K: "k", V: int64(10)})
	st.MustDefineAccess("T0.0.5", "C", adt.CtrTake{N: 1})

	sched := Schedule{
		{Kind: Create, T: "T0"},
		{Kind: RequestCreate, T: "T0.0"},
		{Kind: Create, T: "T0.0"},
		{Kind: RequestCreate, T: "T0.0.0"},
		{Kind: Create, T: "T0.0.0"},
		{Kind: RequestCommit, T: "T0.0.0", Value: int64(7)},
		{Kind: Commit, T: "T0.0.0"},
		{Kind: InformCommitAt, T: "T0.0.0", Object: "R"},
		{Kind: ReportCommit, T: "T0.0.0", Value: int64(7)},
		{Kind: RequestCommit, T: "T0.0.2", Value: adt.AcctResult{OK: true, Balance: 70}},
		{Kind: RequestCommit, T: "T0.0.5", Value: adt.TakeResult{OK: true, N: 4}},
		{Kind: RequestCommit, T: "T0.0.3", Value: true},
		{Kind: Abort, T: "T0.1"},
		{Kind: InformAbortAt, T: "T0.1", Object: "C"},
		{Kind: ReportAbort, T: "T0.1"},
		{Kind: RequestCommit, T: "T0.0.4", Value: nil},
	}

	data, err := MarshalRun(st, sched)
	if err != nil {
		t.Fatal(err)
	}
	st2, sched2, err := UnmarshalRun(data)
	if err != nil {
		t.Fatal(err)
	}
	if !sched2.Equal(sched) {
		t.Fatalf("schedule changed across round-trip:\n%s\nvs\n%s", sched, sched2)
	}
	// System type equivalence: same objects (by rendered initial state)
	// and same accesses (object + op string + classification).
	if len(st2.Objects()) != len(st.Objects()) {
		t.Fatal("object count changed")
	}
	for _, x := range st.Objects() {
		a, _ := st.ObjectInitial(x)
		b, ok := st2.ObjectInitial(x)
		if !ok || a.String() != b.String() {
			t.Fatalf("object %s initial state changed: %v vs %v", x, a, b)
		}
	}
	for _, id := range st.Accesses() {
		a, _ := st.AccessInfo(id)
		b, ok := st2.AccessInfo(id)
		if !ok || a.Object != b.Object || a.Op.String() != b.Op.String() || a.Op.ReadOnly() != b.Op.ReadOnly() {
			t.Fatalf("access %s changed: %+v vs %+v", id, a, b)
		}
	}
}

func TestRunRoundTripAllOps(t *testing.T) {
	ops := []adt.Op{
		adt.RegRead{}, adt.RegWrite{V: "str"}, adt.RegWrite{V: true}, adt.RegWrite{V: nil},
		adt.CtrGet{}, adt.CtrAdd{Delta: 3}, adt.CtrTake{N: 2},
		adt.AcctBalance{}, adt.AcctDeposit{Amount: 1}, adt.AcctWithdraw{Amount: 2},
		adt.SetInsert{X: 1}, adt.SetRemove{X: 2}, adt.SetContains{X: 3}, adt.SetSize{},
		adt.TblGet{K: "a"}, adt.TblPut{K: "b", V: "x"}, adt.TblDelete{K: "c"},
	}
	for _, op := range ops {
		raw, err := adt.EncodeOp(op)
		if err != nil {
			t.Fatalf("%T: %v", op, err)
		}
		back, err := adt.DecodeOp(raw)
		if err != nil {
			t.Fatalf("%T: %v", op, err)
		}
		if back.String() != op.String() || back.ReadOnly() != op.ReadOnly() {
			t.Fatalf("%T: round-trip mismatch: %s vs %s", op, op, back)
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, _, err := UnmarshalRun([]byte("{")); err == nil {
		t.Fatal("truncated JSON must fail")
	}
	if _, _, err := UnmarshalRun([]byte(`{"schedule":[{"kind":"NOPE","t":"T0"}]}`)); err == nil {
		t.Fatal("unknown kind must fail")
	}
	if _, _, err := UnmarshalRun([]byte(`{"schedule":[{"kind":"CREATE","t":"banana"}]}`)); err == nil {
		t.Fatal("invalid TID must fail")
	}
	if _, err := adt.DecodeValue([]byte(`{"t":"???"}`)); err == nil {
		t.Fatal("unknown value tag must fail")
	}
	if _, err := adt.DecodeOp([]byte(`{"t":"???"}`)); err == nil {
		t.Fatal("unknown op tag must fail")
	}
	if _, err := adt.DecodeState([]byte(`{"t":"???"}`)); err == nil {
		t.Fatal("unknown state tag must fail")
	}
}

func TestEncodeRejectsCustomTypes(t *testing.T) {
	if _, err := adt.EncodeValue(struct{ X int }{1}); err == nil {
		t.Fatal("custom value must be rejected")
	}
	if _, err := adt.EncodeOp(customOp{}); err == nil {
		t.Fatal("custom op must be rejected")
	}
	if _, err := adt.EncodeState(customState{}); err == nil {
		t.Fatal("custom state must be rejected")
	}
}

type customOp struct{}

func (customOp) Apply(s adt.State) (adt.State, adt.Value) { return s, nil }
func (customOp) ReadOnly() bool                           { return true }
func (customOp) String() string                           { return "custom" }

type customState struct{}

func (customState) String() string { return "custom" }

// TestRoundTripRandomValues exercises the value codec against the values
// driver schedules actually carry.
func TestRoundTripRandomValues(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		var v adt.Value
		switch rng.Intn(5) {
		case 0:
			v = rng.Int63()
		case 1:
			v = rng.Intn(2) == 0
		case 2:
			v = "s"
		case 3:
			v = adt.AcctResult{OK: rng.Intn(2) == 0, Balance: rng.Int63()}
		default:
			v = adt.TakeResult{OK: true, N: rng.Int63()}
		}
		raw, err := adt.EncodeValue(v)
		if err != nil {
			t.Fatal(err)
		}
		back, err := adt.DecodeValue(raw)
		if err != nil {
			t.Fatal(err)
		}
		if back != v {
			t.Fatalf("round-trip changed %v to %v", v, back)
		}
	}
}
