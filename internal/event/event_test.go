package event

import (
	"strings"
	"testing"

	"nestedtx/internal/adt"
	"nestedtx/internal/tree"
)

func testType(t *testing.T) *SystemType {
	t.Helper()
	st := NewSystemType()
	st.DefineObject("X", adt.NewRegister(int64(0)))
	st.DefineObject("Y", adt.Counter{})
	st.MustDefineAccess("T0.0.0", "X", adt.RegWrite{V: int64(1)})
	st.MustDefineAccess("T0.0.1", "X", adt.RegRead{})
	st.MustDefineAccess("T0.1.0", "Y", adt.CtrAdd{Delta: 2})
	st.MustDefineAccess("T0.1.1", "Y", adt.CtrGet{})
	return st
}

func TestTransactionOf(t *testing.T) {
	cases := []struct {
		e    Event
		want tree.TID
		ok   bool
	}{
		{Event{Kind: Create, T: "T0.1"}, "T0.1", true},
		{Event{Kind: RequestCommit, T: "T0.1", Value: int64(1)}, "T0.1", true},
		{Event{Kind: RequestCreate, T: "T0.1.2"}, "T0.1", true},
		{Event{Kind: Commit, T: "T0.1.2"}, "T0.1", true},
		{Event{Kind: Abort, T: "T0.1.2"}, "T0.1", true},
		{Event{Kind: ReportCommit, T: "T0.1.2"}, "T0.1", true},
		{Event{Kind: ReportAbort, T: "T0.1.2"}, "T0.1", true},
		{Event{Kind: InformCommitAt, T: "T0.1", Object: "X"}, "", false},
		{Event{Kind: InformAbortAt, T: "T0.1", Object: "X"}, "", false},
	}
	for _, c := range cases {
		got, ok := TransactionOf(c.e)
		if got != c.want || ok != c.ok {
			t.Errorf("TransactionOf(%s) = %q,%v want %q,%v", c.e, got, ok, c.want, c.ok)
		}
	}
}

func TestEventString(t *testing.T) {
	cases := []struct {
		e    Event
		want string
	}{
		{Event{Kind: Create, T: "T0.1"}, "CREATE(T0.1)"},
		{Event{Kind: RequestCommit, T: "T0.1", Value: int64(3)}, "REQUEST_COMMIT(T0.1,3)"},
		{Event{Kind: InformCommitAt, T: "T0.1", Object: "X"}, "INFORM_COMMIT_AT(X)OF(T0.1)"},
		{Event{Kind: InformAbortAt, T: "T0.1", Object: "X"}, "INFORM_ABORT_AT(X)OF(T0.1)"},
		{Event{Kind: ReportAbort, T: "T0.2"}, "REPORT_ABORT(T0.2)"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
}

func TestProjections(t *testing.T) {
	st := testType(t)
	s := Schedule{
		{Kind: Create, T: "T0"},
		{Kind: RequestCreate, T: "T0.0"},
		{Kind: Create, T: "T0.0"},
		{Kind: RequestCreate, T: "T0.0.0"},
		{Kind: Create, T: "T0.0.0"},
		{Kind: RequestCommit, T: "T0.0.0", Value: int64(1)},
		{Kind: Commit, T: "T0.0.0"},
		{Kind: InformCommitAt, T: "T0.0.0", Object: "X"},
		{Kind: ReportCommit, T: "T0.0.0", Value: int64(1)},
		{Kind: RequestCommit, T: "T0.0", Value: int64(1)},
	}
	atT00 := s.AtTransaction("T0.0")
	if len(atT00) != 4 {
		t.Fatalf("α|T0.0 = %d events, want 4:\n%s", len(atT00), atT00)
	}
	atX := s.AtObject(st, "X")
	if len(atX) != 2 {
		t.Fatalf("α|X = %d events, want 2", len(atX))
	}
	atMX := s.AtLockObject(st, "X")
	if len(atMX) != 3 {
		t.Fatalf("α|M(X) = %d events, want 3", len(atMX))
	}
	if n := len(s.AtObject(st, "Y")); n != 0 {
		t.Fatalf("α|Y = %d events, want 0", n)
	}
}

func TestCommittedToAndVisibility(t *testing.T) {
	s := Schedule{
		{Kind: Create, T: "T0.0.0"},
		{Kind: Commit, T: "T0.0.0"},
	}
	if !s.CommittedTo("T0.0.0", "T0.0") {
		t.Error("T0.0.0 should be committed to its parent")
	}
	if s.CommittedTo("T0.0.0", "T0") {
		t.Error("T0.0.0 is not committed to the root (T0.0 has not committed)")
	}
	if !s.CommittedTo("T0.0.0", "T0.0.0") {
		t.Error("every transaction is committed to itself")
	}
	if s.CommittedTo("T0.0.0", "T0.1") {
		t.Error("committed-to requires an ancestor")
	}
	// Visibility: T0.0.0 visible to T0.0.1 (lca = T0.0) but not to T0.1.
	if !s.VisibleTo("T0.0.0", "T0.0.1") {
		t.Error("T0.0.0 should be visible to its sibling under T0.0")
	}
	if s.VisibleTo("T0.0.0", "T0.1") {
		t.Error("T0.0.0 must not be visible across an uncommitted boundary")
	}
	// Ancestors are always visible (Lemma 7.1).
	if !s.VisibleTo("T0.0", "T0.0.0") {
		t.Error("an ancestor is visible to its descendant")
	}
}

func TestVisibleSubsequence(t *testing.T) {
	s := Schedule{
		{Kind: Create, T: "T0"},
		{Kind: RequestCreate, T: "T0.0"},
		{Kind: Create, T: "T0.0"},
		{Kind: RequestCreate, T: "T0.1"},
		{Kind: Create, T: "T0.1"},
		{Kind: RequestCommit, T: "T0.1", Value: int64(0)},
		{Kind: Commit, T: "T0.1"},
		{Kind: InformCommitAt, T: "T0.1", Object: "X"},
	}
	vis := s.Visible("T0.0")
	// T0.1's own events are visible only after COMMIT(T0.1)... the commit
	// makes them visible: CREATE(T0.1) and REQUEST_COMMIT(T0.1) have
	// transaction T0.1 which is committed to T0 = lca(T0.1, T0.0).
	for _, e := range vis {
		if e.Kind == InformCommitAt {
			t.Error("INFORM events are never in visible()")
		}
	}
	if len(vis) != 7 {
		t.Fatalf("visible = %d events, want 7:\n%s", len(vis), vis)
	}
	// Without the commit, T0.1's events disappear.
	s2 := s[:6]
	vis2 := s2.Visible("T0.0")
	for _, e := range vis2 {
		if tr, _ := TransactionOf(e); tr == "T0.1" {
			t.Errorf("uncommitted sibling event %s should be invisible", e)
		}
	}
}

func TestOrphanAndLive(t *testing.T) {
	s := Schedule{
		{Kind: Create, T: "T0.0"},
		{Kind: Abort, T: "T0.0"},
	}
	if !s.IsOrphan("T0.0.3.4") {
		t.Error("descendant of aborted transaction is an orphan")
	}
	if !s.IsOrphan("T0.0") {
		t.Error("aborted transaction is its own orphan (self is an ancestor)")
	}
	if s.IsOrphan("T0.1") {
		t.Error("sibling is not an orphan")
	}
	live := Schedule{{Kind: Create, T: "T0.2"}}
	if !live.IsLive("T0.2") {
		t.Error("created, unreturned transaction is live")
	}
	if live.IsLive("T0.3") {
		t.Error("uncreated transaction is not live")
	}
	if s.IsLive("T0.0") {
		t.Error("aborted transaction is not live")
	}
}

func TestWriteAndWriteEqual(t *testing.T) {
	st := testType(t)
	s := Schedule{
		{Kind: Create, T: "T0.0.0"},
		{Kind: RequestCommit, T: "T0.0.0", Value: int64(1)}, // write
		{Kind: Create, T: "T0.0.1"},
		{Kind: RequestCommit, T: "T0.0.1", Value: int64(1)}, // read
	}
	w := s.Write(st)
	if len(w) != 1 || w[0].T != "T0.0.0" {
		t.Fatalf("write(α) = %v", w)
	}
	// Reordering reads preserves write-equality.
	s2 := Schedule{s[2], s[3], s[0], s[1]}
	if !WriteEqual(st, s, s2) {
		t.Error("read reordering must be write-equal")
	}
	// Dropping the write event breaks it.
	if WriteEqual(st, s, s[2:]) {
		t.Error("missing write must break write-equality")
	}
}

func TestWriteEquivalent(t *testing.T) {
	st := testType(t)
	s := Schedule{
		{Kind: Create, T: "T0"},
		{Kind: RequestCreate, T: "T0.0"},
		{Kind: Create, T: "T0.0"},
		{Kind: RequestCreate, T: "T0.0.0"},
		{Kind: Create, T: "T0.0.0"},
		{Kind: RequestCommit, T: "T0.0.0", Value: int64(1)},
		{Kind: RequestCreate, T: "T0.1"},
	}
	// Swapping adjacent events of different transactions (T0.0.0's
	// REQUEST_COMMIT and T0's REQUEST_CREATE) keeps all projections.
	s2 := s.Clone()
	s2[5], s2[6] = s2[6], s2[5]
	if !WriteEquivalent(st, s, s2) {
		t.Fatal("commuting events of different transactions preserves write-equivalence")
	}
	// Swapping events of the SAME transaction breaks it.
	s3 := s.Clone()
	s3[1], s3[6] = s3[6], s3[1] // both are T0's REQUEST_CREATEs
	if WriteEquivalent(st, s, s3) {
		t.Fatal("reordering one transaction's operations must break write-equivalence")
	}
	// Different multisets break it.
	if WriteEquivalent(st, s, s[:6]) {
		t.Fatal("different event sets must break write-equivalence")
	}
}

func TestSystemTypeGuards(t *testing.T) {
	st := NewSystemType()
	st.DefineObject("X", adt.NewRegister(int64(0)))
	if err := st.DefineAccess("T0.0", "missing", adt.RegRead{}); err == nil {
		t.Error("access to undefined object must fail")
	}
	if err := st.DefineAccess("T0.0", "X", adt.RegRead{}); err != nil {
		t.Fatal(err)
	}
	if err := st.DefineAccess("T0.0", "X", adt.RegRead{}); err == nil {
		t.Error("duplicate access must fail")
	}
	if err := st.DefineAccess("T0.0.1", "X", adt.RegRead{}); err == nil {
		t.Error("descendant of an access must fail (accesses are leaves)")
	}
	if err := st.DefineAccess("T0", "X", adt.RegRead{}); err == nil {
		t.Error("ancestor of an access must fail")
	}
	if !st.IsAccess("T0.0") || st.IsAccess("T0.1") {
		t.Error("IsAccess wrong")
	}
	if !st.IsReadAccess("T0.0") || st.IsWriteAccess("T0.0") {
		t.Error("read/write classification wrong")
	}
}

func TestScheduleStringAndClone(t *testing.T) {
	s := Schedule{
		{Kind: Create, T: "T0"},
		{Kind: RequestCreate, T: "T0.0"},
	}
	str := s.String()
	if !strings.Contains(str, "CREATE(T0)") || !strings.Contains(str, "\n") {
		t.Errorf("String = %q", str)
	}
	c := s.Clone()
	c[0].T = "T0.9"
	if s[0].T != "T0" {
		t.Error("Clone must not alias")
	}
}

func TestRecorder(t *testing.T) {
	var nilRec *Recorder
	nilRec.Record(Event{Kind: Create, T: "T0"}) // must not panic
	nilRec.RecordAll(Event{Kind: Create, T: "T0"})
	if nilRec.Snapshot() != nil || nilRec.Len() != 0 {
		t.Error("nil recorder must be inert")
	}
	r := NewRecorder()
	r.Record(Event{Kind: Create, T: "T0"})
	r.RecordAll(Event{Kind: RequestCreate, T: "T0.0"}, Event{Kind: Create, T: "T0.0"})
	if r.Len() != 3 {
		t.Fatalf("Len = %d", r.Len())
	}
	snap := r.Snapshot()
	r.Record(Event{Kind: Abort, T: "T0.0"})
	if len(snap) != 3 {
		t.Error("Snapshot must not alias the live slice")
	}
}
