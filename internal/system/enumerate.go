package system

import (
	"fmt"

	"nestedtx/internal/core"
	"nestedtx/internal/event"
)

// EnumConfig parameterises exhaustive schedule enumeration.
type EnumConfig struct {
	// MaxEvents truncates exploration depth; schedules are visited when no
	// candidate remains or the depth is reached (0 means no cut).
	MaxEvents int
	// IncludeAborts branches over the scheduler's unilateral ABORT choices
	// as well; this enlarges the space dramatically.
	IncludeAborts bool
	// Limit stops after visiting this many schedules (0 = unlimited).
	Limit int
	// Mode selects the lock classification.
	Mode core.Mode
}

// Enumerate explores every reachable concurrent schedule of the system by
// depth-first search over the driver's nondeterministic choices, invoking
// visit for each complete (or depth-truncated) schedule. It returns the
// number of schedules visited and whether the exploration was exhaustive
// (false when Limit cut it short).
//
// Each path is re-executed from the initial state (the composition is
// deterministic given the choice sequence), so memory stays flat at the
// cost of O(depth) replay per visited schedule — exactly the classic
// stateless-model-checking trade. Candidate order is deterministic, making
// the enumeration reproducible.
//
// This is bounded model checking for Theorem 34: on systems small enough
// to exhaust, the theorem is verified on *every* schedule, not a sample.
func (sys *System) Enumerate(cfg EnumConfig, visit func(event.Schedule) bool) (int, bool, error) {
	visited := 0
	stopped := false
	var explore func(path []int) error
	explore = func(path []int) error {
		if stopped {
			return nil
		}
		d, err := newConcurrentDriver(sys, DriverConfig{Mode: cfg.Mode})
		if err != nil {
			return err
		}
		depth := 0
		branch := -1
		sched, err := d.runWith(func(cands, aborts []event.Event) (event.Event, bool) {
			all := cands
			if cfg.IncludeAborts {
				all = append(append([]event.Event(nil), cands...), aborts...)
			} else if len(all) == 0 {
				// Without abort branching a deadlocked composition cannot
				// proceed; resolve deterministically with the first abort
				// so enumeration still terminates with a complete run.
				all = aborts
			}
			if len(all) == 0 {
				return event.Event{}, false
			}
			if depth < len(path) {
				i := path[depth]
				depth++
				if i >= len(all) {
					// Unreachable for well-formed paths: the composition is
					// deterministic, so the branching factor cannot shrink.
					panic(fmt.Sprintf("system: enumerate: path index %d out of %d", i, len(all)))
				}
				return all[i], true
			}
			branch = len(all)
			return event.Event{}, false
		})
		if err != nil {
			return err
		}
		if branch < 0 || (cfg.MaxEvents > 0 && len(path) >= cfg.MaxEvents) {
			visited++
			if !visit(sched) || (cfg.Limit > 0 && visited >= cfg.Limit) {
				stopped = true
			}
			return nil
		}
		for i := 0; i < branch && !stopped; i++ {
			// Clamp capacity so sibling recursions do not share backing
			// arrays.
			next := append(path[:len(path):len(path)], i)
			if err := explore(next); err != nil {
				return err
			}
		}
		return nil
	}
	err := explore(nil)
	return visited, !stopped, err
}
