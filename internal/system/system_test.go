package system

import (
	"math/rand"
	"testing"

	"nestedtx/internal/adt"
	"nestedtx/internal/core"
	"nestedtx/internal/event"
	"nestedtx/internal/tree"
)

func simpleSystem(t testing.TB) *System {
	t.Helper()
	sys, err := New(
		map[string]adt.State{"X": adt.NewRegister(int64(0))},
		[]ChildSpec{
			Sub(&Program{
				Sequential: true,
				Children: []ChildSpec{
					Access("X", adt.RegWrite{V: int64(1)}),
					Access("X", adt.RegRead{}),
				},
			}),
			Sub(&Program{
				Children: []ChildSpec{
					Access("X", adt.RegRead{}),
				},
			}),
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestBuildRegistersAccesses(t *testing.T) {
	sys := simpleSystem(t)
	st := sys.SystemType()
	if !st.IsAccess("T0.0.0") || !st.IsAccess("T0.0.1") || !st.IsAccess("T0.1.0") {
		t.Fatal("accesses not registered")
	}
	if !st.IsWriteAccess("T0.0.0") || !st.IsReadAccess("T0.0.1") {
		t.Fatal("classification wrong")
	}
	if _, ok := sys.Program("T0.0"); !ok {
		t.Fatal("program missing")
	}
	if _, ok := sys.Program("T0.0.0"); ok {
		t.Fatal("access must not have a program")
	}
	txs := sys.Transactions()
	if len(txs) != 3 { // T0, T0.0, T0.1
		t.Fatalf("transactions = %v", txs)
	}
}

func TestBuildRejectsBadSpecs(t *testing.T) {
	if _, err := New(map[string]adt.State{}, []ChildSpec{{}}); err == nil {
		t.Fatal("empty child spec must fail")
	}
	if _, err := New(map[string]adt.State{}, []ChildSpec{Access("nope", adt.RegRead{})}); err == nil {
		t.Fatal("access to unknown object must fail")
	}
	bad := ChildSpec{Sub: &Program{}, Object: "X", Op: adt.RegRead{}}
	if _, err := New(map[string]adt.State{"X": adt.NewRegister(int64(0))}, []ChildSpec{bad}); err == nil {
		t.Fatal("both sub and access must fail")
	}
}

func TestDriverDeterminism(t *testing.T) {
	sys := simpleSystem(t)
	a, err := sys.RunConcurrent(DriverConfig{Seed: 11, AbortProb: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := sys.RunConcurrent(DriverConfig{Seed: 11, AbortProb: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatal("same seed must reproduce the same schedule")
	}
	c, err := sys.RunConcurrent(DriverConfig{Seed: 12, AbortProb: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if a.Equal(c) {
		t.Log("different seeds coincided (possible but suspicious for this system)")
	}
}

func TestDriverSchedulesAreWellFormed(t *testing.T) {
	sys := simpleSystem(t)
	for seed := int64(0); seed < 30; seed++ {
		sched, err := sys.RunConcurrent(DriverConfig{Seed: seed, AbortProb: 0.25})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := event.WFConcurrent(sched, sys.SystemType()); err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, sched)
		}
	}
}

func TestDriverCompletesAllWorkWithoutAborts(t *testing.T) {
	sys := simpleSystem(t)
	sched, err := sys.RunConcurrent(DriverConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// With AbortProb 0 and no deadlock in this system, every top-level
	// commits.
	for _, tl := range []tree.TID{"T0.0", "T0.1"} {
		found := false
		for _, e := range sched {
			if e.Kind == event.Commit && e.T == tl {
				found = true
			}
		}
		if !found {
			t.Fatalf("%s did not commit:\n%s", tl, sched)
		}
	}
}

func TestSerialDriverRunsSequentially(t *testing.T) {
	sys := simpleSystem(t)
	sched, err := sys.RunSerial(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	// No two siblings live at once: check Lemma 6 on every prefix.
	txs := []tree.TID{"T0.0", "T0.1", "T0.0.0", "T0.0.1", "T0.1.0"}
	for n := 0; n <= len(sched); n++ {
		prefix := sched[:n]
		var live []tree.TID
		for _, u := range txs {
			if prefix.IsLive(u) {
				live = append(live, u)
			}
		}
		for i := 0; i < len(live); i++ {
			for j := i + 1; j < len(live); j++ {
				a, b := live[i], live[j]
				if !a.IsAncestorOf(b) && !b.IsAncestorOf(a) {
					t.Fatalf("prefix %d: unrelated %s, %s live in serial schedule", n, a, b)
				}
			}
		}
	}
}

func TestGenerateRespectsConfig(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := GenConfig{Objects: 4, TopLevel: 3, MaxDepth: 2, MaxFanout: 3, ReadFraction: 0.5, SubProb: 0.5, SeqProb: 0.5}
	sys, err := Generate(rng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := sys.SystemType()
	if len(st.Objects()) != 4 {
		t.Fatalf("objects = %d", len(st.Objects()))
	}
	for _, a := range st.Accesses() {
		if a.Level() < 2 {
			t.Fatalf("access %s above top-level", a)
		}
		if a.Level() > 2+cfg.MaxDepth+1 {
			t.Fatalf("access %s too deep", a)
		}
	}
	if _, err := Generate(rng, GenConfig{}); err == nil {
		t.Fatal("zero config must be rejected")
	}
}

func TestExclusiveModeSerializesReads(t *testing.T) {
	// Two concurrent top-level reads of the same object: in exclusive
	// mode the driver still completes (one waits for the other's commit).
	sys, err := New(
		map[string]adt.State{"X": adt.NewRegister(int64(0))},
		[]ChildSpec{
			Sub(&Program{Children: []ChildSpec{Access("X", adt.RegRead{})}}),
			Sub(&Program{Children: []ChildSpec{Access("X", adt.RegRead{})}}),
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := sys.RunConcurrent(DriverConfig{Seed: 1, Mode: core.Exclusive})
	if err != nil {
		t.Fatal(err)
	}
	commits := 0
	for _, e := range sched {
		if e.Kind == event.Commit && (e.T == "T0.0" || e.T == "T0.1") {
			commits++
		}
	}
	if commits != 2 {
		t.Fatalf("both top-levels should commit, got %d", commits)
	}
}
