// Package system composes scripted transaction automata with R/W Locking
// objects and the generic scheduler into a R/W Locking system (§5.3), and
// with basic objects and the serial scheduler into a serial system (§3.4).
//
// Transaction automata in the paper are black boxes constrained only by
// well-formedness. Here they are scripted by Programs: a Program names the
// children a transaction will request (subprograms or accesses) and whether
// it requests them sequentially (awaiting each child's report) or in
// parallel. The seeded Driver resolves all remaining nondeterminism —
// which enabled operation of which component happens next — reproducibly,
// which turns the automaton composition into a generator of concurrent
// (and serial) schedules for the correctness experiments.
package system

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"nestedtx/internal/adt"
	"nestedtx/internal/event"
	"nestedtx/internal/tree"
)

// ChildSpec declares one child of a scripted transaction: either a nested
// subprogram or a leaf access.
type ChildSpec struct {
	Sub    *Program
	Object string
	Op     adt.Op
}

// Access returns a ChildSpec for a leaf access applying op to object x.
func Access(x string, op adt.Op) ChildSpec { return ChildSpec{Object: x, Op: op} }

// Sub returns a ChildSpec for a nested subtransaction running p.
func Sub(p *Program) ChildSpec { return ChildSpec{Sub: p} }

// Program scripts a non-access transaction automaton: the children it
// requests and in what discipline. After every requested child has been
// reported, the transaction requests commit with the number of committed
// children as its value.
type Program struct {
	Children []ChildSpec
	// Sequential requests child i+1 only after child i has been reported;
	// otherwise all children may be requested immediately (concurrent
	// siblings — the behaviour serial systems forbid and R/W Locking
	// systems allow).
	Sequential bool
}

// System is a fully built composition: the system type (objects and access
// classification) plus the program of every non-access transaction.
type System struct {
	st       *event.SystemType
	programs map[tree.TID]*Program
}

// New builds a System from object initial states and the top-level
// programs (the children of the root T0).
func New(objects map[string]adt.State, top []ChildSpec) (*System, error) {
	st := event.NewSystemType()
	for x, init := range objects {
		st.DefineObject(x, init)
	}
	sys := &System{st: st, programs: make(map[tree.TID]*Program)}
	root := &Program{Children: top}
	if err := sys.register(tree.Root, root); err != nil {
		return nil, err
	}
	return sys, nil
}

func (sys *System) register(t tree.TID, p *Program) error {
	sys.programs[t] = p
	for i, c := range p.Children {
		ct := t.Child(i)
		switch {
		case c.Sub != nil && c.Op != nil:
			return fmt.Errorf("system: child %s is both subprogram and access", ct)
		case c.Sub != nil:
			if err := sys.register(ct, c.Sub); err != nil {
				return err
			}
		case c.Op != nil:
			if err := sys.st.DefineAccess(ct, c.Object, c.Op); err != nil {
				return err
			}
		default:
			return fmt.Errorf("system: child %s is neither subprogram nor access", ct)
		}
	}
	return nil
}

// SystemType exposes the built system type.
func (sys *System) SystemType() *event.SystemType { return sys.st }

// Program returns the program of non-access transaction t.
func (sys *System) Program(t tree.TID) (*Program, bool) {
	p, ok := sys.programs[t]
	return p, ok
}

// Transactions returns all scripted (non-access) transactions, sorted.
func (sys *System) Transactions() []tree.TID {
	out := make([]tree.TID, 0, len(sys.programs))
	for t := range sys.programs {
		out = append(out, t)
	}
	sortTIDs(out)
	return out
}

// childIndex extracts the child index of t under its parent.
func childIndex(t tree.TID) int {
	s := string(t)
	i := strings.LastIndex(s, ".")
	n, err := strconv.Atoi(s[i+1:])
	if err != nil {
		panic("system: bad TID " + s)
	}
	return n
}

// txState is the runtime state of one scripted transaction automaton.
type txState struct {
	id   tree.TID
	prog *Program

	created         bool
	requested       []bool // per child index
	reported        []bool
	childCommitted  []bool
	requestedCommit bool
}

func newTxState(id tree.TID, p *Program) *txState {
	n := len(p.Children)
	return &txState{
		id:             id,
		prog:           p,
		requested:      make([]bool, n),
		reported:       make([]bool, n),
		childCommitted: make([]bool, n),
	}
}

// enabledOutputs returns the transaction automaton's currently enabled
// output operations.
func (tx *txState) enabledOutputs() []event.Event {
	if !tx.created || tx.requestedCommit {
		return nil
	}
	var out []event.Event
	allRequested, allReported := true, true
	prefixReported := true
	for i := range tx.prog.Children {
		if !tx.requested[i] {
			allRequested = false
			ok := !tx.prog.Sequential || prefixReported
			if ok {
				out = append(out, event.Event{Kind: event.RequestCreate, T: tx.id.Child(i)})
				if tx.prog.Sequential {
					// Only the first unrequested child may be requested.
					prefixReported = false
				}
			}
		}
		if !tx.reported[i] {
			allReported = false
			prefixReported = false
		}
	}
	if allRequested && allReported && tx.id != tree.Root {
		out = append(out, event.Event{
			Kind:  event.RequestCommit,
			T:     tx.id,
			Value: tx.commitValue(),
		})
	}
	return out
}

// commitValue is the deterministic value the scripted transaction returns:
// the number of its children that committed.
func (tx *txState) commitValue() event.Value {
	n := int64(0)
	for _, c := range tx.childCommitted {
		if c {
			n++
		}
	}
	return n
}

// handleCreate records delivery of CREATE.
func (tx *txState) handleCreate() { tx.created = true }

// handleReport records delivery of a child's report.
func (tx *txState) handleReport(child tree.TID, committed bool) {
	i := childIndex(child)
	if i < len(tx.reported) && !tx.reported[i] {
		tx.reported[i] = true
		tx.childCommitted[i] = committed
	}
}

func sortTIDs(ts []tree.TID) {
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
}
