package system

import (
	"fmt"
	"math/rand"

	"nestedtx/internal/adt"
)

// GenConfig parameterises random system generation for property tests and
// experiments.
type GenConfig struct {
	// Objects is how many shared objects to create (≥1). Object kinds
	// rotate through register, counter, account, set, table.
	Objects int
	// TopLevel is the number of top-level transactions (children of T0).
	TopLevel int
	// MaxDepth bounds nesting below a top-level transaction (0 = accesses
	// only).
	MaxDepth int
	// MaxFanout bounds children per transaction (≥1).
	MaxFanout int
	// ReadFraction is the probability an access is a read.
	ReadFraction float64
	// SubProb is the probability a child is a subtransaction rather than
	// an access (while depth remains).
	SubProb float64
	// SeqProb is the probability a transaction runs its children
	// sequentially.
	SeqProb float64
}

// DefaultGenConfig returns a moderate configuration exercising all ADTs.
func DefaultGenConfig() GenConfig {
	return GenConfig{
		Objects:      3,
		TopLevel:     3,
		MaxDepth:     2,
		MaxFanout:    3,
		ReadFraction: 0.5,
		SubProb:      0.4,
		SeqProb:      0.5,
	}
}

// Generate builds a random System from cfg using rng.
func Generate(rng *rand.Rand, cfg GenConfig) (*System, error) {
	if cfg.Objects < 1 || cfg.TopLevel < 1 || cfg.MaxFanout < 1 {
		return nil, fmt.Errorf("system: Generate: need ≥1 object, top-level and fanout")
	}
	objects := make(map[string]adt.State, cfg.Objects)
	kinds := make(map[string]int, cfg.Objects)
	for i := 0; i < cfg.Objects; i++ {
		name := fmt.Sprintf("obj%d", i)
		kind := i % 5
		kinds[name] = kind
		switch kind {
		case 0:
			objects[name] = adt.NewRegister(int64(rng.Intn(100)))
		case 1:
			objects[name] = adt.Counter{N: int64(rng.Intn(100))}
		case 2:
			objects[name] = adt.Account{Balance: int64(50 + rng.Intn(100))}
		case 3:
			objects[name] = adt.NewIntSet(int64(rng.Intn(5)), int64(rng.Intn(5)))
		default:
			objects[name] = adt.NewTable(map[string]adt.Value{"k0": int64(rng.Intn(10))})
		}
	}
	g := &generator{rng: rng, cfg: cfg, kinds: kinds}
	top := make([]ChildSpec, cfg.TopLevel)
	for i := range top {
		top[i] = Sub(g.program(cfg.MaxDepth))
	}
	return New(objects, top)
}

type generator struct {
	rng   *rand.Rand
	cfg   GenConfig
	kinds map[string]int
}

func (g *generator) program(depth int) *Program {
	n := 1 + g.rng.Intn(g.cfg.MaxFanout)
	p := &Program{Sequential: g.rng.Float64() < g.cfg.SeqProb}
	for i := 0; i < n; i++ {
		if depth > 0 && g.rng.Float64() < g.cfg.SubProb {
			p.Children = append(p.Children, Sub(g.program(depth-1)))
		} else {
			p.Children = append(p.Children, g.access())
		}
	}
	return p
}

func (g *generator) access() ChildSpec {
	x := fmt.Sprintf("obj%d", g.rng.Intn(g.cfg.Objects))
	read := g.rng.Float64() < g.cfg.ReadFraction
	var op adt.Op
	switch g.kinds[x] {
	case 0:
		if read {
			op = adt.RegRead{}
		} else {
			op = adt.RegWrite{V: int64(g.rng.Intn(1000))}
		}
	case 1:
		if read {
			op = adt.CtrGet{}
		} else {
			op = adt.CtrAdd{Delta: int64(g.rng.Intn(21) - 10)}
		}
	case 2:
		if read {
			op = adt.AcctBalance{}
		} else if g.rng.Intn(2) == 0 {
			op = adt.AcctDeposit{Amount: int64(g.rng.Intn(50))}
		} else {
			op = adt.AcctWithdraw{Amount: int64(g.rng.Intn(80))}
		}
	case 3:
		switch {
		case read:
			if g.rng.Intn(2) == 0 {
				op = adt.SetContains{X: int64(g.rng.Intn(8))}
			} else {
				op = adt.SetSize{}
			}
		case g.rng.Intn(2) == 0:
			op = adt.SetInsert{X: int64(g.rng.Intn(8))}
		default:
			op = adt.SetRemove{X: int64(g.rng.Intn(8))}
		}
	default:
		key := fmt.Sprintf("k%d", g.rng.Intn(3))
		switch {
		case read:
			op = adt.TblGet{K: key}
		case g.rng.Intn(2) == 0:
			op = adt.TblPut{K: key, V: int64(g.rng.Intn(100))}
		default:
			op = adt.TblDelete{K: key}
		}
	}
	return Access(x, op)
}
