package system

import (
	"fmt"
	"math/rand"
	"sort"

	"nestedtx/internal/core"
	"nestedtx/internal/event"
	"nestedtx/internal/generic"
	"nestedtx/internal/object"
	"nestedtx/internal/serial"
	"nestedtx/internal/tree"
)

// DriverConfig controls a seeded run of the composed system.
type DriverConfig struct {
	// Seed drives all nondeterministic choices; equal seeds give equal
	// schedules.
	Seed int64
	// AbortProb is the per-step probability that the scheduler chooses to
	// abort some live transaction instead of a normal step.
	AbortProb float64
	// MaxSteps bounds the run (0 means a generous default).
	MaxSteps int
	// Mode selects read/write or exclusive lock classification for the
	// concurrent run.
	Mode core.Mode
	// ContainOrphans makes the scheduler stop delivering work to orphans:
	// no CREATE of, response to, or output from a transaction whose
	// ancestor has aborted. The paper notes (§3.5) that guaranteeing
	// consistent views to orphans "requires a much more intricate
	// scheduler" and defers the algorithms to [HLMW]; this option is the
	// simplest member of that family — orphans are frozen the moment the
	// abort happens, so they never observe post-abort state.
	ContainOrphans bool
}

const defaultMaxSteps = 1 << 20

// RunConcurrent executes the R/W Locking system — scripted transactions,
// M(X) objects, generic scheduler — resolving nondeterminism with the
// seed, and returns the concurrent schedule.
func (sys *System) RunConcurrent(cfg DriverConfig) (event.Schedule, error) {
	d, err := newConcurrentDriver(sys, cfg)
	if err != nil {
		return nil, err
	}
	return d.run()
}

type concurrentDriver struct {
	sys   *System
	cfg   DriverConfig
	rng   *rand.Rand
	sched *generic.Scheduler
	txs   map[tree.TID]*txState
	objs  map[string]*core.LockObject

	// touched[t] is the set of objects some descendant access of t has run
	// at; INFORM candidates are generated only for touched objects (the
	// scheduler may legally inform any object, but only these matter).
	touched map[tree.TID]map[string]struct{}
	// reportsDelivered / informsDelivered avoid repeating deliverable-many-
	// times operations.
	reportsDelivered map[tree.TID]struct{}
	informsDelivered map[informKey]struct{}

	out event.Schedule
}

type informKey struct {
	x string
	t tree.TID
}

func newConcurrentDriver(sys *System, cfg DriverConfig) (*concurrentDriver, error) {
	d := &concurrentDriver{
		sys:              sys,
		cfg:              cfg,
		rng:              rand.New(rand.NewSource(cfg.Seed)),
		sched:            generic.NewScheduler(),
		txs:              make(map[tree.TID]*txState),
		objs:             make(map[string]*core.LockObject),
		touched:          make(map[tree.TID]map[string]struct{}),
		reportsDelivered: make(map[tree.TID]struct{}),
		informsDelivered: make(map[informKey]struct{}),
	}
	for t, p := range sys.programs {
		d.txs[t] = newTxState(t, p)
	}
	for _, x := range sys.st.Objects() {
		m, err := core.NewLockObject(sys.st, x, cfg.Mode)
		if err != nil {
			return nil, err
		}
		d.objs[x] = m
	}
	return d, nil
}

func (d *concurrentDriver) run() (event.Schedule, error) {
	return d.runWith(func(cands, aborts []event.Event) (event.Event, bool) {
		switch {
		case len(cands) == 0 && len(aborts) == 0:
			return event.Event{}, false
		case len(cands) == 0:
			// Stuck: only aborts can make progress (a lock-wait cycle, i.e.
			// deadlock). The generic scheduler resolves it by aborting.
			return aborts[d.rng.Intn(len(aborts))], true
		case len(aborts) > 0 && d.rng.Float64() < d.cfg.AbortProb:
			return aborts[d.rng.Intn(len(aborts))], true
		default:
			return cands[d.rng.Intn(len(cands))], true
		}
	})
}

// runWith drives the composition with an externally supplied choice
// policy: pick receives the enabled non-abort candidates and the enabled
// aborts (both deterministically ordered) and returns the next operation,
// or ok=false to end the run. Used by the seeded policy above and by the
// exhaustive enumerator.
func (d *concurrentDriver) runWith(pick func(cands, aborts []event.Event) (event.Event, bool)) (event.Schedule, error) {
	max := d.cfg.MaxSteps
	if max <= 0 {
		max = defaultMaxSteps
	}
	for len(d.out) < max {
		cands := d.candidates()
		aborts := d.abortCandidates()
		e, ok := pick(cands, aborts)
		if !ok {
			return d.out, nil
		}
		if err := d.apply(e); err != nil {
			return d.out, fmt.Errorf("system: concurrent driver: %w", err)
		}
	}
	return d.out, fmt.Errorf("system: concurrent driver: step budget %d exhausted", max)
}

// isOrphan reports whether some ancestor of t has been aborted.
func (d *concurrentDriver) isOrphan(t tree.TID) bool {
	for _, u := range t.Ancestors() {
		if d.sched.Aborted(u) {
			return true
		}
	}
	return false
}

// candidates gathers every enabled non-abort output operation of every
// component, in a deterministic order.
func (d *concurrentDriver) candidates() []event.Event {
	var out []event.Event
	contained := func(t tree.TID) bool {
		return d.cfg.ContainOrphans && d.isOrphan(t)
	}
	// Transaction outputs (REQUEST_CREATE, REQUEST_COMMIT of non-access).
	for _, t := range d.sortedTxs() {
		if contained(t) {
			continue
		}
		out = append(out, d.txs[t].enabledOutputs()...)
	}
	// Object outputs (REQUEST_COMMIT of accesses). The value is computed
	// at apply time; candidates carry only the identity.
	for _, x := range d.sortedObjects() {
		m := d.objs[x]
		ts := m.EnabledAccesses()
		sortTIDs(ts)
		for _, t := range ts {
			if contained(t) {
				continue
			}
			out = append(out, event.Event{Kind: event.RequestCommit, T: t, Object: x})
		}
	}
	// Scheduler outputs.
	sch := d.sched
	for _, t := range sortedSet(sch.PendingCreates()) {
		if contained(t) {
			continue
		}
		out = append(out, event.Event{Kind: event.Create, T: t})
	}
	for _, t := range sortedSet(sch.CommittableTransactions()) {
		out = append(out, event.Event{Kind: event.Commit, T: t})
	}
	// Reports (each delivered once; an orphaned parent receives none when
	// containment is on).
	for _, t := range d.sortedTxs() {
		if contained(t) {
			continue
		}
		tx := d.txs[t]
		for i := range tx.prog.Children {
			c := t.Child(i)
			if _, done := d.reportsDelivered[c]; done {
				continue
			}
			if sch.Committed(c) {
				if v, ok := sch.CommitRequested(c); ok {
					out = append(out, event.Event{Kind: event.ReportCommit, T: c, Value: v})
				}
			} else if sch.Aborted(c) {
				out = append(out, event.Event{Kind: event.ReportAbort, T: c})
			}
		}
	}
	// Informs (each delivered once, only to touched objects).
	out = append(out, d.informCandidates()...)
	return out
}

func (d *concurrentDriver) informCandidates() []event.Event {
	var out []event.Event
	var ts []tree.TID
	for t := range d.touched {
		ts = append(ts, t)
	}
	sortTIDs(ts)
	for _, t := range ts {
		if t == tree.Root {
			continue
		}
		var kind event.Kind
		switch {
		case d.sched.Committed(t):
			kind = event.InformCommitAt
		case d.sched.Aborted(t):
			kind = event.InformAbortAt
		default:
			continue
		}
		var xs []string
		for x := range d.touched[t] {
			xs = append(xs, x)
		}
		sort.Strings(xs)
		for _, x := range xs {
			if _, done := d.informsDelivered[informKey{x, t}]; !done {
				out = append(out, event.Event{Kind: kind, T: t, Object: x})
			}
		}
	}
	return out
}

// abortCandidates returns the enabled ABORT operations for transactions
// other than the root.
func (d *concurrentDriver) abortCandidates() []event.Event {
	var out []event.Event
	for _, t := range sortedSet(d.sched.AbortableTransactions()) {
		out = append(out, event.Event{Kind: event.Abort, T: t})
	}
	return out
}

// apply performs e at every component that shares it and appends it to the
// schedule.
func (d *concurrentDriver) apply(e event.Event) error {
	switch e.Kind {
	case event.RequestCreate:
		tx := d.txs[e.T.Parent()]
		tx.requested[childIndex(e.T)] = true
		d.sched.Apply(e)
	case event.RequestCommit:
		if a, isAccess := d.sys.st.AccessInfo(e.T); isAccess {
			resp, err := d.objs[a.Object].Respond(e.T)
			if err != nil {
				return err
			}
			e = resp // carries the computed value
			d.markTouched(e.T, a.Object)
		} else {
			d.txs[e.T].requestedCommit = true
		}
		d.sched.Apply(e)
	case event.Create:
		if err := d.sched.Step(e); err != nil {
			return err
		}
		if a, isAccess := d.sys.st.AccessInfo(e.T); isAccess {
			if err := d.objs[a.Object].Create(e.T); err != nil {
				return err
			}
		} else {
			d.txs[e.T].handleCreate()
		}
	case event.Commit, event.Abort:
		if err := d.sched.Step(e); err != nil {
			return err
		}
	case event.ReportCommit, event.ReportAbort:
		if err := d.sched.Step(e); err != nil {
			return err
		}
		d.reportsDelivered[e.T] = struct{}{}
		if parent, ok := d.txs[e.T.Parent()]; ok {
			parent.handleReport(e.T, e.Kind == event.ReportCommit)
		}
	case event.InformCommitAt, event.InformAbortAt:
		if err := d.sched.Step(e); err != nil {
			return err
		}
		d.informsDelivered[informKey{e.Object, e.T}] = struct{}{}
		m := d.objs[e.Object]
		if e.Kind == event.InformCommitAt {
			if err := m.InformCommit(e.T); err != nil {
				return err
			}
			// The lock (and the touch) moves to the parent.
			d.markTouched(e.T.Parent(), e.Object)
		} else if err := m.InformAbort(e.T); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown event %s", e)
	}
	d.out = append(d.out, stripDriverFields(e))
	return nil
}

// markTouched records that t's subtree has activity at object x, for every
// proper ancestor of t as well (their commits must be forwarded to x for
// locks to keep flowing upward).
func (d *concurrentDriver) markTouched(t tree.TID, x string) {
	for _, u := range t.Ancestors() {
		m := d.touched[u]
		if m == nil {
			m = make(map[string]struct{})
			d.touched[u] = m
		}
		m[x] = struct{}{}
	}
}

// stripDriverFields removes bookkeeping fields that are not part of the
// formal operation (the Object tag on access REQUEST_COMMIT candidates).
func stripDriverFields(e event.Event) event.Event {
	if e.Kind == event.RequestCommit {
		e.Object = ""
	}
	return e
}

func (d *concurrentDriver) sortedTxs() []tree.TID {
	out := make([]tree.TID, 0, len(d.txs))
	for t := range d.txs {
		out = append(out, t)
	}
	sortTIDs(out)
	return out
}

func (d *concurrentDriver) sortedObjects() []string {
	out := d.sys.st.Objects()
	sort.Strings(out)
	return out
}

func sortedSet(ts []tree.TID) []tree.TID {
	sortTIDs(ts)
	return ts
}

// LockObjects exposes the driver's final lock objects for invariant checks
// in tests. It is only meaningful after run() returns.
func (d *concurrentDriver) lockObjects() map[string]*core.LockObject { return d.objs }

// RunConcurrentInspect is RunConcurrent but also returns the final M(X)
// automata, so tests can check lock-table invariants and final states.
func (sys *System) RunConcurrentInspect(cfg DriverConfig) (event.Schedule, map[string]*core.LockObject, error) {
	d, err := newConcurrentDriver(sys, cfg)
	if err != nil {
		return nil, nil, err
	}
	sched, err := d.run()
	return sched, d.lockObjects(), err
}

// RunSerial executes the serial system — the same scripted transactions
// with basic objects and the serial scheduler — and returns the serial
// schedule. abortProb gives the probability that a requested-but-uncreated
// transaction is aborted instead of created.
func (sys *System) RunSerial(seed int64, abortProb float64) (event.Schedule, error) {
	rng := rand.New(rand.NewSource(seed))
	sched := serial.NewScheduler()
	txs := make(map[tree.TID]*txState, len(sys.programs))
	for t, p := range sys.programs {
		txs[t] = newTxState(t, p)
	}
	objs := make(map[string]*object.Basic)
	for _, x := range sys.st.Objects() {
		b, err := object.New(sys.st, x)
		if err != nil {
			return nil, err
		}
		objs[x] = b
	}
	var out event.Schedule
	reportsDelivered := make(map[tree.TID]struct{})

	sortedTxs := func() []tree.TID {
		ts := make([]tree.TID, 0, len(txs))
		for t := range txs {
			ts = append(ts, t)
		}
		sortTIDs(ts)
		return ts
	}

	for steps := 0; steps < defaultMaxSteps; steps++ {
		var cands []event.Event
		// Transaction outputs.
		for _, t := range sortedTxs() {
			cands = append(cands, txs[t].enabledOutputs()...)
		}
		// Object outputs: in the serial system at most one access is
		// pending per object at a time; respond to any pending access.
		for _, x := range sys.st.Objects() {
			for _, t := range objs[x].Pending() {
				cands = append(cands, event.Event{Kind: event.RequestCommit, T: t, Object: x})
			}
		}
		// Scheduler outputs, filtered by the serial preconditions.
		var schedCands []event.Event
		var abortCands []event.Event
		for t := range txs {
			schedCands = append(schedCands, event.Event{Kind: event.Create, T: t})
			if t != tree.Root {
				schedCands = append(schedCands, event.Event{Kind: event.Commit, T: t})
				abortCands = append(abortCands, event.Event{Kind: event.Abort, T: t})
			}
		}
		for _, t := range sys.st.Accesses() {
			schedCands = append(schedCands, event.Event{Kind: event.Create, T: t})
			schedCands = append(schedCands, event.Event{Kind: event.Commit, T: t})
			abortCands = append(abortCands, event.Event{Kind: event.Abort, T: t})
		}
		for _, e := range schedCands {
			if sched.Enabled(e) == nil {
				cands = append(cands, e)
			}
		}
		// Reports for returned transactions, once each.
		for t := range txs {
			for i := range txs[t].prog.Children {
				c := t.Child(i)
				if _, done := reportsDelivered[c]; done {
					continue
				}
				if sched.Committed(c) {
					if v, ok := sched.CommitValue(c); ok {
						cands = append(cands, event.Event{Kind: event.ReportCommit, T: c, Value: v})
					}
				} else if sched.Aborted(c) {
					cands = append(cands, event.Event{Kind: event.ReportAbort, T: c})
				}
			}
		}
		sortEvents(cands)
		var abortsEnabled []event.Event
		for _, e := range abortCands {
			if sched.Enabled(e) == nil {
				abortsEnabled = append(abortsEnabled, e)
			}
		}
		sortEvents(abortsEnabled)

		var pick event.Event
		switch {
		case len(cands) == 0:
			return out, nil
		case len(abortsEnabled) > 0 && rng.Float64() < abortProb:
			pick = abortsEnabled[rng.Intn(len(abortsEnabled))]
		default:
			pick = cands[rng.Intn(len(cands))]
		}

		// Apply.
		e := pick
		switch e.Kind {
		case event.RequestCreate:
			txs[e.T.Parent()].requested[childIndex(e.T)] = true
			sched.Apply(e)
		case event.RequestCommit:
			if a, isAccess := sys.st.AccessInfo(e.T); isAccess {
				resp, err := objs[a.Object].Respond(e.T)
				if err != nil {
					return out, err
				}
				e = resp
			} else {
				txs[e.T].requestedCommit = true
			}
			sched.Apply(e)
		case event.Create:
			if err := sched.Step(e); err != nil {
				return out, err
			}
			if a, isAccess := sys.st.AccessInfo(e.T); isAccess {
				if err := objs[a.Object].Create(e.T); err != nil {
					return out, err
				}
			} else {
				txs[e.T].handleCreate()
			}
		case event.Commit, event.Abort:
			if err := sched.Step(e); err != nil {
				return out, err
			}
		case event.ReportCommit, event.ReportAbort:
			if err := sched.Step(e); err != nil {
				return out, err
			}
			reportsDelivered[e.T] = struct{}{}
			if parent, ok := txs[e.T.Parent()]; ok {
				parent.handleReport(e.T, e.Kind == event.ReportCommit)
			}
		}
		out = append(out, stripDriverFields(e))
	}
	return out, fmt.Errorf("system: serial driver: step budget exhausted")
}

func sortEvents(es []event.Event) {
	sort.Slice(es, func(i, j int) bool {
		if es[i].Kind != es[j].Kind {
			return es[i].Kind < es[j].Kind
		}
		if es[i].T != es[j].T {
			return es[i].T < es[j].T
		}
		return es[i].Object < es[j].Object
	})
}
