// Package tree implements the transaction naming tree of Fekete, Lynch,
// Merritt & Weihl (PODS 1987) — the "system type".
//
// The pattern of transaction nesting is a set of transaction names organized
// into a tree by parent(), with T0 as the root. The tree is, in general, an
// infinite structure with infinite branching; it is a predefined naming
// scheme for all transactions that might ever be invoked. Only some names
// take steps in any particular execution, so the tree here is lazy: a TID is
// just a path from the root, and ancestry is computed from the path.
//
// A transaction is its own ancestor and descendant (the paper's convention);
// Proper* variants exclude the transaction itself.
package tree

import (
	"strconv"
	"strings"
)

// TID names a transaction: the root is "T0", and the i'th child of a
// transaction T is named T + "." + i. The empty TID ("") is invalid.
//
// Using the path as the identity makes Parent, LCA and ancestry pure string
// computations, with no shared tree structure to synchronize on.
type TID string

// Root is T0, the "mythical" root transaction modelling the external
// environment. The classical (unnested) transactions of concurrency-control
// theory are the children of Root.
const Root TID = "T0"

// sep separates path components within a TID.
const sep = "."

// Child returns the name of the i'th child of t.
func (t TID) Child(i int) TID {
	return TID(string(t) + sep + strconv.Itoa(i))
}

// IsRoot reports whether t is the root transaction T0.
func (t TID) IsRoot() bool { return t == Root }

// Valid reports whether t is a well-formed transaction name: "T0" followed
// by zero or more ".<number>" components.
func (t TID) Valid() bool {
	s := string(t)
	if !strings.HasPrefix(s, string(Root)) {
		return false
	}
	s = s[len(Root):]
	for s != "" {
		if !strings.HasPrefix(s, sep) {
			return false
		}
		s = s[len(sep):]
		i := 0
		for i < len(s) && s[i] >= '0' && s[i] <= '9' {
			i++
		}
		if i == 0 {
			return false
		}
		s = s[i:]
	}
	return true
}

// Parent returns the parent of t. Parent of the root is the empty TID.
func (t TID) Parent() TID {
	i := strings.LastIndex(string(t), sep)
	if i < 0 {
		return ""
	}
	return t[:i]
}

// Level returns the depth of t in the tree; the root has level 0.
func (t TID) Level() int {
	return strings.Count(string(t), sep)
}

// IsAncestorOf reports whether t is an ancestor of u (inclusive: every
// transaction is an ancestor of itself).
func (t TID) IsAncestorOf(u TID) bool {
	if t == u {
		return true
	}
	return strings.HasPrefix(string(u), string(t)+sep)
}

// IsProperAncestorOf reports whether t is a strict ancestor of u.
func (t TID) IsProperAncestorOf(u TID) bool {
	return t != u && t.IsAncestorOf(u)
}

// IsDescendantOf reports whether t is a descendant of u (inclusive).
func (t TID) IsDescendantOf(u TID) bool { return u.IsAncestorOf(t) }

// IsProperDescendantOf reports whether t is a strict descendant of u.
func (t TID) IsProperDescendantOf(u TID) bool { return u.IsProperAncestorOf(t) }

// AreSiblings reports whether t and u are distinct children of the same
// parent.
func AreSiblings(t, u TID) bool {
	return t != u && !t.IsRoot() && !u.IsRoot() && t.Parent() == u.Parent()
}

// LCA returns the least common ancestor of t and u. Both must be valid
// names in the same tree (rooted at T0), so an LCA always exists.
func LCA(t, u TID) TID {
	if t.IsAncestorOf(u) {
		return t
	}
	if u.IsAncestorOf(t) {
		return u
	}
	tp, up := t.components(), u.components()
	n := 0
	for n < len(tp) && n < len(up) && tp[n] == up[n] {
		n++
	}
	return fromComponents(tp[:n])
}

// ChildToward returns the child of t on the path to descendant u.
// It panics if t is not a proper ancestor of u.
func (t TID) ChildToward(u TID) TID {
	if !t.IsProperAncestorOf(u) {
		panic("tree: ChildToward: " + string(t) + " is not a proper ancestor of " + string(u))
	}
	rest := string(u)[len(t)+len(sep):]
	if i := strings.Index(rest, sep); i >= 0 {
		rest = rest[:i]
	}
	return TID(string(t) + sep + rest)
}

// Ancestors returns t's ancestors from the root down to t itself
// (inclusive, in root-first order).
func (t TID) Ancestors() []TID {
	comps := t.components()
	out := make([]TID, 0, len(comps))
	for i := 1; i <= len(comps); i++ {
		out = append(out, fromComponents(comps[:i]))
	}
	return out
}

// ProperAncestors returns t's ancestors from the root down to t's parent,
// excluding t itself, in root-first order.
func (t TID) ProperAncestors() []TID {
	a := t.Ancestors()
	return a[:len(a)-1]
}

// Compare orders TIDs by their tree paths, comparing path components
// numerically: T0.9 < T0.10, and an ancestor sorts before its
// descendants. It returns -1, 0 or +1. Lexicographic comparison of the
// underlying strings is wrong for sibling order ("T0.9" > "T0.10"); use
// Compare wherever "latest sibling" or any other path order matters
// (e.g. deadlock-victim tie-breaking). Components that are not numbers
// (only possible for invalid names) fall back to string comparison.
func Compare(t, u TID) int {
	if t == u {
		return 0
	}
	tc, uc := t.components(), u.components()
	for i := 0; i < len(tc) && i < len(uc); i++ {
		a, b := tc[i], uc[i]
		if a == b {
			continue
		}
		ai, aerr := strconv.Atoi(a)
		bi, berr := strconv.Atoi(b)
		switch {
		case aerr == nil && berr == nil && ai != bi:
			if ai < bi {
				return -1
			}
			return 1
		case a < b:
			return -1
		default:
			return 1
		}
	}
	if len(tc) < len(uc) {
		return -1
	}
	return 1
}

func (t TID) components() []string {
	return strings.Split(string(t), sep)
}

func fromComponents(c []string) TID {
	return TID(strings.Join(c, sep))
}

// Set is a set of transaction IDs. The zero value is not usable; use
// NewSet. Set is not safe for concurrent use.
type Set map[TID]struct{}

// NewSet returns a set containing the given members.
func NewSet(ts ...TID) Set {
	s := make(Set, len(ts))
	for _, t := range ts {
		s.Add(t)
	}
	return s
}

// Add inserts t into the set.
func (s Set) Add(t TID) { s[t] = struct{}{} }

// Remove deletes t from the set.
func (s Set) Remove(t TID) { delete(s, t) }

// Has reports whether t is a member.
func (s Set) Has(t TID) bool { _, ok := s[t]; return ok }

// Len returns the number of members.
func (s Set) Len() int { return len(s) }

// Clone returns a copy of the set.
func (s Set) Clone() Set {
	c := make(Set, len(s))
	for t := range s {
		c.Add(t)
	}
	return c
}

// Members returns the members in unspecified order.
func (s Set) Members() []TID {
	out := make([]TID, 0, len(s))
	for t := range s {
		out = append(out, t)
	}
	return out
}

// RemoveDescendantsOf deletes every member that is a descendant
// (inclusive) of t.
func (s Set) RemoveDescendantsOf(t TID) {
	for u := range s {
		if u.IsDescendantOf(t) {
			s.Remove(u)
		}
	}
}

// AllSubsetOfAncestors reports whether every member of s is an ancestor of
// t. This is the lock-compatibility test of Moss' algorithm: an access may
// proceed only when every holder of a conflicting lock is an ancestor.
func (s Set) AllSubsetOfAncestors(t TID) bool {
	for u := range s {
		if !u.IsAncestorOf(t) {
			return false
		}
	}
	return true
}

// Least returns the least member under the ancestor order: the member that
// is a descendant of every other member. Moss' lockholder sets always form
// a chain (Lemma 21), so when the set is non-empty and a chain, Least is
// well defined; ok is false if the set is empty. If the set is not a chain
// Least returns the deepest member (maximum level), which coincides with
// the chain minimum whenever the invariant holds.
func (s Set) Least() (TID, bool) {
	var best TID
	found := false
	for u := range s {
		if !found || u.Level() > best.Level() {
			best, found = u, true
		}
	}
	return best, found
}

// IsChain reports whether the members are totally ordered by ancestry —
// the Lemma 21 invariant for write-lockholder sets.
func (s Set) IsChain() bool {
	ms := s.Members()
	for i := 0; i < len(ms); i++ {
		for j := i + 1; j < len(ms); j++ {
			if !ms[i].IsAncestorOf(ms[j]) && !ms[j].IsAncestorOf(ms[i]) {
				return false
			}
		}
	}
	return true
}
