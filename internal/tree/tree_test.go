package tree

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestChildParent(t *testing.T) {
	c := Root.Child(3)
	if c != "T0.3" {
		t.Fatalf("Child = %q, want T0.3", c)
	}
	if c.Parent() != Root {
		t.Fatalf("Parent(%q) = %q, want %q", c, c.Parent(), Root)
	}
	gc := c.Child(0).Child(12)
	if gc != "T0.3.0.12" {
		t.Fatalf("grandchild = %q", gc)
	}
	if gc.Parent() != "T0.3.0" {
		t.Fatalf("Parent(%q) = %q", gc, gc.Parent())
	}
	if Root.Parent() != "" {
		t.Fatalf("Parent(root) = %q, want empty", Root.Parent())
	}
}

func TestValid(t *testing.T) {
	valid := []TID{Root, "T0.0", "T0.1.2.3", "T0.10.200"}
	for _, v := range valid {
		if !v.Valid() {
			t.Errorf("Valid(%q) = false, want true", v)
		}
	}
	invalid := []TID{"", "T1", "T0.", "T0..1", "T0.a", ".T0", "T0.1.", "X0.1"}
	for _, v := range invalid {
		if v.Valid() {
			t.Errorf("Valid(%q) = true, want false", v)
		}
	}
}

func TestLevel(t *testing.T) {
	if Root.Level() != 0 {
		t.Errorf("Level(root) = %d", Root.Level())
	}
	if TID("T0.1.2.3").Level() != 3 {
		t.Errorf("Level(T0.1.2.3) = %d", TID("T0.1.2.3").Level())
	}
}

func TestAncestry(t *testing.T) {
	a := TID("T0.1")
	b := TID("T0.1.2")
	c := TID("T0.12") // shares string prefix "T0.1" but is NOT a descendant of T0.1
	if !a.IsAncestorOf(b) {
		t.Error("T0.1 should be ancestor of T0.1.2")
	}
	if !a.IsAncestorOf(a) {
		t.Error("a transaction is its own ancestor")
	}
	if a.IsProperAncestorOf(a) {
		t.Error("a transaction is not its own proper ancestor")
	}
	if a.IsAncestorOf(c) {
		t.Error("T0.1 must not be ancestor of T0.12 (prefix trap)")
	}
	if !b.IsDescendantOf(Root) {
		t.Error("everything descends from the root")
	}
	if !b.IsProperDescendantOf(a) {
		t.Error("T0.1.2 is a proper descendant of T0.1")
	}
}

func TestSiblings(t *testing.T) {
	if !AreSiblings("T0.1", "T0.2") {
		t.Error("T0.1 and T0.2 are siblings")
	}
	if AreSiblings("T0.1", "T0.1") {
		t.Error("a transaction is not its own sibling")
	}
	if AreSiblings("T0.1", "T0.1.2") {
		t.Error("parent/child are not siblings")
	}
	if AreSiblings(Root, Root) {
		t.Error("root has no siblings")
	}
}

func TestLCA(t *testing.T) {
	cases := []struct{ a, b, want TID }{
		{"T0.1.2", "T0.1.3", "T0.1"},
		{"T0.1", "T0.1.3", "T0.1"},
		{"T0.1.3", "T0.1", "T0.1"},
		{"T0.1", "T0.2", "T0"},
		{"T0", "T0.5.5.5", "T0"},
		{"T0.12.1", "T0.1.1", "T0"}, // prefix trap again
		{"T0.3", "T0.3", "T0.3"},
	}
	for _, c := range cases {
		if got := LCA(c.a, c.b); got != c.want {
			t.Errorf("LCA(%q,%q) = %q, want %q", c.a, c.b, got, c.want)
		}
	}
}

func TestChildToward(t *testing.T) {
	if got := Root.ChildToward("T0.4.2.1"); got != "T0.4" {
		t.Errorf("ChildToward = %q, want T0.4", got)
	}
	if got := TID("T0.4").ChildToward("T0.4.2.1"); got != "T0.4.2" {
		t.Errorf("ChildToward = %q, want T0.4.2", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("ChildToward of non-descendant should panic")
		}
	}()
	Root.ChildToward(Root)
}

func TestAncestors(t *testing.T) {
	got := TID("T0.1.2").Ancestors()
	want := []TID{"T0", "T0.1", "T0.1.2"}
	if len(got) != len(want) {
		t.Fatalf("Ancestors = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ancestors = %v, want %v", got, want)
		}
	}
	pa := TID("T0.1.2").ProperAncestors()
	if len(pa) != 2 || pa[0] != "T0" || pa[1] != "T0.1" {
		t.Fatalf("ProperAncestors = %v", pa)
	}
	if len(Root.ProperAncestors()) != 0 {
		t.Fatal("root has no proper ancestors")
	}
}

func TestSetBasics(t *testing.T) {
	s := NewSet("T0.1", "T0.2")
	if !s.Has("T0.1") || s.Has("T0.3") || s.Len() != 2 {
		t.Fatalf("set basics broken: %v", s)
	}
	c := s.Clone()
	c.Add("T0.3")
	if s.Has("T0.3") {
		t.Error("Clone must not alias")
	}
	s.Remove("T0.1")
	if s.Has("T0.1") || s.Len() != 1 {
		t.Error("Remove failed")
	}
	if len(c.Members()) != 3 {
		t.Error("Members wrong length")
	}
}

func TestSetRemoveDescendantsOf(t *testing.T) {
	s := NewSet("T0.1", "T0.1.2", "T0.1.2.3", "T0.2")
	s.RemoveDescendantsOf("T0.1")
	if s.Len() != 1 || !s.Has("T0.2") {
		t.Fatalf("RemoveDescendantsOf left %v", s.Members())
	}
}

func TestSetAllSubsetOfAncestors(t *testing.T) {
	s := NewSet("T0", "T0.1")
	if !s.AllSubsetOfAncestors("T0.1.2") {
		t.Error("chain of ancestors should pass")
	}
	s.Add("T0.2")
	if s.AllSubsetOfAncestors("T0.1.2") {
		t.Error("sibling holder should fail")
	}
	if !NewSet().AllSubsetOfAncestors("T0.1") {
		t.Error("empty set vacuously passes")
	}
}

func TestSetLeastAndChain(t *testing.T) {
	s := NewSet("T0", "T0.1", "T0.1.2")
	least, ok := s.Least()
	if !ok || least != "T0.1.2" {
		t.Fatalf("Least = %q, %v", least, ok)
	}
	if !s.IsChain() {
		t.Error("ancestor chain should be a chain")
	}
	s.Add("T0.2")
	if s.IsChain() {
		t.Error("set with siblings is not a chain")
	}
	if _, ok := NewSet().Least(); ok {
		t.Error("Least of empty set must report !ok")
	}
}

// randomTID builds an arbitrary valid TID of bounded depth for property
// tests.
func randomTID(r *rand.Rand) TID {
	t := Root
	depth := r.Intn(5)
	for i := 0; i < depth; i++ {
		t = t.Child(r.Intn(4))
	}
	return t
}

func TestQuickLCAProperties(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func() bool {
		a, b := randomTID(r), randomTID(r)
		l := LCA(a, b)
		// The LCA is an ancestor of both, and no child of it toward either
		// side is an ancestor of both.
		if !l.IsAncestorOf(a) || !l.IsAncestorOf(b) {
			return false
		}
		if l != a && l != b {
			ca := l.ChildToward(a)
			if ca.IsAncestorOf(b) {
				return false
			}
		}
		return LCA(a, b) == LCA(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickAncestryTransitivity(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	f := func() bool {
		a := randomTID(r)
		b := a
		for i := 0; i < r.Intn(3); i++ {
			b = b.Child(r.Intn(3))
		}
		c := b
		for i := 0; i < r.Intn(3); i++ {
			c = c.Child(r.Intn(3))
		}
		return a.IsAncestorOf(b) && b.IsAncestorOf(c) && a.IsAncestorOf(c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b TID
		want int
	}{
		{"T0", "T0", 0},
		{"T0", "T0.0", -1},
		{"T0.0", "T0", 1},
		{"T0.1", "T0.2", -1},
		{"T0.9", "T0.10", -1}, // numeric, not lexicographic
		{"T0.10", "T0.9", 1},
		{"T0.2.9", "T0.2.10", -1},
		{"T0.10", "T0.10", 0},
		{"T0.9.5", "T0.10", -1}, // first differing component decides
		{"T0.1.100", "T0.1.99", 1},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
		// Antisymmetry.
		if got := Compare(c.b, c.a); got != -c.want {
			t.Errorf("Compare(%q, %q) = %d, want %d", c.b, c.a, got, -c.want)
		}
	}
}

func TestComparePropertiesQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	randTID := func() TID {
		id := Root
		for d := rng.Intn(4); d > 0; d-- {
			id = id.Child(rng.Intn(20))
		}
		return id
	}
	// Compare is consistent with ancestry: a proper ancestor sorts first.
	if err := quick.Check(func() bool {
		a := randTID()
		b := a.Child(rng.Intn(20))
		return Compare(a, b) < 0 && Compare(b, a) > 0
	}, nil); err != nil {
		t.Error(err)
	}
	// Equality is exactly Compare == 0.
	if err := quick.Check(func() bool {
		a, b := randTID(), randTID()
		return (Compare(a, b) == 0) == (a == b)
	}, nil); err != nil {
		t.Error(err)
	}
}
