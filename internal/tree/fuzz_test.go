package tree

import "testing"

// FuzzTIDOps: arbitrary strings must never panic the name algebra, and
// for valid names the LCA/ancestry laws must hold.
func FuzzTIDOps(f *testing.F) {
	f.Add("T0", "T0.1")
	f.Add("T0.1.2", "T0.12")
	f.Add("", "banana")
	f.Add("T0.0.0.0.0", "T0.0")
	f.Fuzz(func(t *testing.T, a, b string) {
		ta, tb := TID(a), TID(b)
		_ = ta.Valid()
		_ = ta.Parent()
		_ = ta.Level()
		_ = ta.IsAncestorOf(tb)
		if !ta.Valid() || !tb.Valid() {
			return
		}
		l := LCA(ta, tb)
		if !l.Valid() {
			t.Fatalf("LCA(%q,%q) = %q invalid", a, b, l)
		}
		if !l.IsAncestorOf(ta) || !l.IsAncestorOf(tb) {
			t.Fatalf("LCA(%q,%q) = %q not a common ancestor", a, b, l)
		}
		if LCA(ta, tb) != LCA(tb, ta) {
			t.Fatal("LCA not symmetric")
		}
		if ta.IsAncestorOf(tb) && tb.IsAncestorOf(ta) && ta != tb {
			t.Fatal("mutual ancestry of distinct names")
		}
		if l != ta && l != tb {
			ca := l.ChildToward(ta)
			if ca.IsAncestorOf(tb) {
				t.Fatalf("child of LCA toward %q is ancestor of %q", a, b)
			}
		}
	})
}
