package checker

import (
	"math/rand"
	"testing"

	"nestedtx/internal/core"
	"nestedtx/internal/event"
	"nestedtx/internal/serial"
	"nestedtx/internal/system"
)

// TestTheorem34RandomSystems is the headline reproduction: for seeded
// random R/W Locking systems, every generated concurrent schedule is
// serially correct at every non-orphan transaction (experiment E1).
func TestTheorem34RandomSystems(t *testing.T) {
	cfgs := []system.GenConfig{
		{Objects: 1, TopLevel: 2, MaxDepth: 1, MaxFanout: 2, ReadFraction: 0.5, SubProb: 0.5, SeqProb: 0.5},
		{Objects: 2, TopLevel: 3, MaxDepth: 2, MaxFanout: 3, ReadFraction: 0.3, SubProb: 0.4, SeqProb: 0.3},
		{Objects: 3, TopLevel: 3, MaxDepth: 2, MaxFanout: 3, ReadFraction: 0.7, SubProb: 0.5, SeqProb: 0.5},
		{Objects: 5, TopLevel: 4, MaxDepth: 3, MaxFanout: 3, ReadFraction: 0.5, SubProb: 0.5, SeqProb: 0.5},
		{Objects: 1, TopLevel: 4, MaxDepth: 2, MaxFanout: 2, ReadFraction: 0.0, SubProb: 0.5, SeqProb: 0.5}, // all writes
		{Objects: 1, TopLevel: 4, MaxDepth: 2, MaxFanout: 2, ReadFraction: 1.0, SubProb: 0.5, SeqProb: 0.5}, // all reads
	}
	aborts := []float64{0, 0.1, 0.3}
	seeds := 6
	if testing.Short() {
		seeds = 2
	}
	for ci, cfg := range cfgs {
		for _, ap := range aborts {
			for s := 0; s < seeds; s++ {
				seed := int64(ci*1000 + int(ap*100)*10 + s)
				rng := rand.New(rand.NewSource(seed))
				sys, err := system.Generate(rng, cfg)
				if err != nil {
					t.Fatalf("cfg %d: %v", ci, err)
				}
				sched, objs, err := sys.RunConcurrentInspect(system.DriverConfig{Seed: seed, AbortProb: ap})
				if err != nil {
					t.Fatalf("cfg %d seed %d: driver: %v", ci, seed, err)
				}
				st := sys.SystemType()
				if err := event.WFConcurrent(sched, st); err != nil {
					t.Fatalf("cfg %d seed %d: ill-formed: %v", ci, seed, err)
				}
				for x, m := range objs {
					if err := m.CheckLockInvariants(); err != nil {
						t.Fatalf("cfg %d seed %d: object %s: %v", ci, seed, x, err)
					}
				}
				if err := CheckAll(sched, st); err != nil {
					t.Fatalf("cfg %d seed %d (abort %.2f): %v\nschedule:\n%s", ci, seed, ap, err, sched)
				}
			}
		}
	}
}

// TestTheorem34ExclusiveMode re-runs a slice of the matrix in exclusive
// mode: with all accesses treated as writes, schedules must still be
// serially correct (and are exactly the [LM] exclusive-locking system).
func TestTheorem34ExclusiveMode(t *testing.T) {
	cfg := system.GenConfig{Objects: 2, TopLevel: 3, MaxDepth: 2, MaxFanout: 3, ReadFraction: 0.5, SubProb: 0.5, SeqProb: 0.5}
	seeds := 8
	if testing.Short() {
		seeds = 3
	}
	for s := 0; s < seeds; s++ {
		rng := rand.New(rand.NewSource(int64(s)))
		sys, err := system.Generate(rng, cfg)
		if err != nil {
			t.Fatal(err)
		}
		sched, err := sys.RunConcurrent(system.DriverConfig{Seed: int64(s), AbortProb: 0.1, Mode: core.Exclusive})
		if err != nil {
			t.Fatalf("seed %d: %v", s, err)
		}
		if err := CheckAll(sched, sys.SystemType()); err != nil {
			t.Fatalf("seed %d: %v\nschedule:\n%s", s, err, sched)
		}
	}
}

// TestSerialSchedulesAreTriviallyCorrect: schedules produced by the serial
// driver must validate against the serial specification and be serially
// correct for every transaction with the identity rearrangement.
func TestSerialSchedulesAreTriviallyCorrect(t *testing.T) {
	cfg := system.DefaultGenConfig()
	for s := 0; s < 10; s++ {
		rng := rand.New(rand.NewSource(int64(s)))
		sys, err := system.Generate(rng, cfg)
		if err != nil {
			t.Fatal(err)
		}
		sched, err := sys.RunSerial(int64(s), 0.1)
		if err != nil {
			t.Fatalf("seed %d: %v", s, err)
		}
		if err := event.WFSerial(sched, sys.SystemType()); err != nil {
			t.Fatalf("seed %d: %v", s, err)
		}
		if err := serial.Validate(sched, sys.SystemType()); err != nil {
			t.Fatalf("seed %d: serial driver produced a non-serial schedule: %v", s, err)
		}
	}
}
