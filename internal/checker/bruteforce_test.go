package checker

import (
	"math/rand"
	"testing"

	"nestedtx/internal/adt"
	"nestedtx/internal/event"
	"nestedtx/internal/system"
	"nestedtx/internal/tree"
)

// smallSystems yields compact systems whose visible subsequences are small
// enough for exhaustive search.
func smallSystems(t *testing.T) []*system.System {
	t.Helper()
	var out []*system.System
	cfg := system.GenConfig{Objects: 1, TopLevel: 2, MaxDepth: 1, MaxFanout: 2, ReadFraction: 0.5, SubProb: 0.3, SeqProb: 0.5}
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed + 77))
		sys, err := system.Generate(rng, cfg)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, sys)
	}
	return out
}

// TestBruteForceAgreesWithChecker cross-validates the constructive checker
// against the exhaustive oracle: on real schedules both must find a
// witness; the witnesses may differ but both must validate.
func TestBruteForceAgreesWithChecker(t *testing.T) {
	for i, sys := range smallSystems(t) {
		sched, err := sys.RunConcurrent(system.DriverConfig{Seed: int64(i), AbortProb: 0.15})
		if err != nil {
			t.Fatal(err)
		}
		st := sys.SystemType()
		for _, u := range []tree.TID{tree.Root, "T0.0", "T0.1"} {
			if sched.IsOrphan(u) {
				continue
			}
			w, cerr := Check(sched, st, u)
			found, bw, exhausted, berr := BruteForce(sched, st, u, 1<<19)
			if berr != nil {
				t.Fatalf("sys %d at %s: brute force error: %v", i, u, berr)
			}
			if !exhausted && !found {
				continue // budget ran out before a verdict; no information
			}
			if cerr == nil && !found {
				t.Fatalf("sys %d at %s: checker found a witness but exhaustive search did not:\n%s\nwitness:\n%s",
					i, u, sched, w.Serial)
			}
			if cerr != nil && found {
				t.Fatalf("sys %d at %s: exhaustive search found a witness the checker missed (incompleteness):\n%s\noracle witness:\n%s",
					i, u, sched, bw)
			}
		}
	}
}

// TestBruteForceRejectsImpossibleRead: the oracle agrees with the checker
// on a non-serializable input.
func TestBruteForceRejectsImpossibleRead(t *testing.T) {
	st := event.NewSystemType()
	st.DefineObject("X", adt.NewRegister(int64(0)))
	st.MustDefineAccess("T0.0.0", "X", adt.RegWrite{V: int64(7)})
	st.MustDefineAccess("T0.1.0", "X", adt.RegRead{})
	alpha := event.Schedule{
		ev(event.Create, "T0"),
		ev(event.RequestCreate, "T0.0"),
		ev(event.RequestCreate, "T0.1"),
		ev(event.Create, "T0.0"),
		ev(event.Create, "T0.1"),
		ev(event.RequestCreate, "T0.0.0"),
		ev(event.RequestCreate, "T0.1.0"),
		ev(event.Create, "T0.0.0"),
		ev(event.Create, "T0.1.0"),
		ev(event.RequestCommit, "T0.0.0", int64(7)),
		ev(event.RequestCommit, "T0.1.0", int64(3)), // impossible value
		ev(event.Commit, "T0.0.0"),
		ev(event.Commit, "T0.1.0"),
		ev(event.ReportCommit, "T0.0.0", int64(7)),
		ev(event.ReportCommit, "T0.1.0", int64(3)),
		ev(event.RequestCommit, "T0.0", int64(1)),
		ev(event.RequestCommit, "T0.1", int64(1)),
		ev(event.Commit, "T0.0"),
		ev(event.Commit, "T0.1"),
	}
	found, _, exhausted, err := BruteForce(alpha, st, tree.Root, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if found {
		t.Fatal("oracle accepted an impossible read")
	}
	if !exhausted {
		t.Fatal("oracle should exhaust this small space")
	}
	if _, err := Check(alpha, st, tree.Root); err == nil {
		t.Fatal("checker accepted an impossible read")
	}
}

func TestBruteForceTrivialAndOrphan(t *testing.T) {
	st := event.NewSystemType()
	st.DefineObject("X", adt.NewRegister(int64(0)))
	found, w, exhausted, err := BruteForce(nil, st, tree.Root, 0)
	if err != nil || !found || !exhausted || len(w) != 0 {
		t.Fatalf("empty schedule: %v %v %v %v", found, w, exhausted, err)
	}
	alpha := event.Schedule{ev(event.RequestCreate, "T0.0"), ev(event.Abort, "T0.0")}
	if _, _, _, err := BruteForce(alpha, st, "T0.0", 0); err == nil {
		t.Fatal("orphan must be refused")
	}
}

// TestOracleOnEnumeratedSchedules cross-validates the constructive checker
// against the exhaustive oracle on every schedule of the fully enumerable
// one-top-level system and a bounded sample of the writer/reader system.
func TestOracleOnEnumeratedSchedules(t *testing.T) {
	for _, tc := range []struct {
		name  string
		sys   *system.System
		limit int
	}{
		{"one-top-level", oneTopLevel(t), 0},
		{"writer-reader", tinySystem(t), 400},
	} {
		st := tc.sys.SystemType()
		_, _, err := tc.sys.Enumerate(system.EnumConfig{Limit: tc.limit}, func(s event.Schedule) bool {
			_, cerr := Check(s, st, tree.Root)
			found, _, exhausted, berr := BruteForce(s, st, tree.Root, 1<<18)
			if berr != nil {
				t.Fatalf("%s: oracle error: %v", tc.name, berr)
			}
			if !exhausted && !found {
				return true
			}
			if (cerr == nil) != found {
				t.Fatalf("%s: checker (%v) disagrees with oracle (found=%v) on:\n%s", tc.name, cerr, found, s)
			}
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}
