package checker

import (
	"fmt"

	"nestedtx/internal/event"
	"nestedtx/internal/object"
	"nestedtx/internal/serial"
	"nestedtx/internal/tree"
)

// BruteForce decides serial correctness by exhaustive search — the
// ground-truth oracle used to cross-validate the constructive checker on
// small schedules. It searches for ANY serial schedule write-equivalent
// to visible(alpha, t):
//
//   - the candidate uses exactly the events of visible(alpha,t);
//   - each transaction's automaton operations keep their order (projection
//     equality), and each object's write REQUEST_COMMITs keep their order
//     (write-equality); COMMIT/ABORT events are free;
//   - every prefix satisfies the serial scheduler's preconditions and
//     replays on the basic objects.
//
// The search is exponential; budget caps the number of DFS nodes (0 means
// a default of one million). It returns whether a witness exists, the
// witness, and whether the search completed within budget (found=false
// with exhausted=false means "unknown").
func BruteForce(alpha event.Schedule, st *event.SystemType, t tree.TID, budget int) (found bool, witness event.Schedule, exhausted bool, err error) {
	if alpha.IsOrphan(t) {
		return false, nil, true, fmt.Errorf("checker: %s is an orphan", t)
	}
	vis := alpha.Visible(t)
	if len(vis) == 0 {
		return true, nil, true, nil
	}
	if budget <= 0 {
		budget = 1 << 20
	}

	// Build the ordered streams: one per transaction automaton, one per
	// scheduler return event (COMMIT/ABORT are singletons).
	var streams [][]event.Event
	byTx := make(map[tree.TID]int)
	for _, e := range vis {
		if e.Kind == event.Commit || e.Kind == event.Abort {
			streams = append(streams, []event.Event{e})
			continue
		}
		u, ok := event.TransactionOf(e)
		if !ok {
			return false, nil, true, fmt.Errorf("checker: unexpected event %s in visible subsequence", e)
		}
		i, seen := byTx[u]
		if !seen {
			i = len(streams)
			byTx[u] = i
			streams = append(streams, nil)
		}
		streams[i] = append(streams[i], e)
	}
	// Per-object write order (the write-equality constraint), over the
	// objects vis actually touches.
	writeOrder := make(map[string][]event.Event)
	for _, x := range vis.TouchedObjects(st) {
		writeOrder[x] = vis.AtObject(st, x).Write(st)
	}

	nodes := 0
	pos := make([]int, len(streams))
	writePos := make(map[string]int, len(writeOrder))
	var out event.Schedule

	var dfs func(sc *serial.Scheduler, objs map[string]*object.Basic) bool
	dfs = func(sc *serial.Scheduler, objs map[string]*object.Basic) bool {
		if len(out) == len(vis) {
			return true
		}
		if nodes >= budget {
			return false
		}
		nodes++
		for i := range streams {
			if pos[i] >= len(streams[i]) {
				continue
			}
			e := streams[i][pos[i]]
			// Write-order constraint.
			var wobj string
			if e.Kind == event.RequestCommit && st.IsWriteAccess(e.T) {
				a, _ := st.AccessInfo(e.T)
				wobj = a.Object
				wo := writeOrder[wobj]
				if writePos[wobj] >= len(wo) || wo[writePos[wobj]] != e {
					continue
				}
			}
			// Serial-scheduler precondition.
			if sc.Enabled(e) != nil {
				continue
			}
			// Object replay (access events only). Clone the one affected
			// object; scheduler state is cloned wholesale (small sets).
			var touched *object.Basic
			var prevObj *object.Basic
			if a, ok := st.AccessInfo(e.T); ok && (e.Kind == event.Create || e.Kind == event.RequestCommit) {
				prevObj = objs[a.Object]
				touched = prevObj.Clone()
				if touched.Step(e) != nil {
					continue
				}
				objs[a.Object] = touched
			}
			scSnapshot := sc.Clone()
			sc.Apply(e)
			pos[i]++
			if wobj != "" {
				writePos[wobj]++
			}
			out = append(out, e)

			if dfs(sc, objs) {
				return true
			}

			// Undo.
			out = out[:len(out)-1]
			if wobj != "" {
				writePos[wobj]--
			}
			pos[i]--
			*sc = *scSnapshot
			if touched != nil {
				objs[prevObj.Name()] = prevObj
			}
		}
		return false
	}

	sc := serial.NewScheduler()
	objs := make(map[string]*object.Basic, len(writeOrder))
	for _, x := range vis.TouchedObjects(st) {
		b, err := object.New(st, x)
		if err != nil {
			return false, nil, true, err
		}
		objs[x] = b
	}
	ok := dfs(sc, objs)
	if ok {
		w := out.Clone()
		// Defensive: the witness must pass the full validator.
		if err := verify(alpha, w, vis, st, t); err != nil {
			return false, nil, true, fmt.Errorf("checker: brute-force witness failed validation: %w", err)
		}
		return true, w, true, nil
	}
	return false, nil, nodes < budget, nil
}
