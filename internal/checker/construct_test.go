package checker

import (
	"testing"

	"nestedtx/internal/adt"
	"nestedtx/internal/event"
	"nestedtx/internal/serial"
	"nestedtx/internal/tree"
)

func ev(k event.Kind, t tree.TID, v ...event.Value) event.Event {
	e := event.Event{Kind: k, T: t}
	if len(v) > 0 {
		e.Value = v[0]
	}
	return e
}

// handType builds the register system used by the hand-written schedules.
func handType(t testing.TB) *event.SystemType {
	st := event.NewSystemType()
	st.DefineObject("X", adt.NewRegister(int64(0)))
	st.MustDefineAccess("T0.0.0", "X", adt.RegWrite{V: int64(7)})
	st.MustDefineAccess("T0.1.0", "X", adt.RegRead{})
	return st
}

// TestHandInterleaving: a classic concurrent schedule where two top-level
// transactions interleave; the witness must reorder them into sequential
// blocks whose object replay matches the recorded values.
func TestHandInterleaving(t *testing.T) {
	st := handType(t)
	alpha := event.Schedule{
		ev(event.Create, "T0"),
		ev(event.RequestCreate, "T0.0"),
		ev(event.RequestCreate, "T0.1"),
		ev(event.Create, "T0.0"),
		ev(event.Create, "T0.1"),
		ev(event.RequestCreate, "T0.0.0"),
		ev(event.RequestCreate, "T0.1.0"),
		ev(event.Create, "T0.0.0"),
		ev(event.RequestCommit, "T0.0.0", int64(7)), // write 7, lock to T0.0 chain
		ev(event.Commit, "T0.0.0"),
		ev(event.InformCommitAt, "T0.0.0", event.Value(nil)),
	}
	// fix the Inform event (Object field, not value).
	alpha[10] = event.Event{Kind: event.InformCommitAt, T: "T0.0.0", Object: "X"}
	alpha = append(alpha,
		ev(event.ReportCommit, "T0.0.0", int64(7)),
		ev(event.RequestCommit, "T0.0", int64(1)),
		ev(event.Commit, "T0.0"),
		event.Event{Kind: event.InformCommitAt, T: "T0.0", Object: "X"},
		ev(event.Create, "T0.1.0"),
		ev(event.RequestCommit, "T0.1.0", int64(7)), // reads committed 7
		ev(event.Commit, "T0.1.0"),
		ev(event.ReportCommit, "T0.1.0", int64(7)),
		ev(event.RequestCommit, "T0.1", int64(1)),
		ev(event.Commit, "T0.1"),
	)
	if err := event.WFConcurrent(alpha, st); err != nil {
		t.Fatal(err)
	}
	w, err := Check(alpha, st, tree.Root)
	if err != nil {
		t.Fatal(err)
	}
	if err := serial.Validate(w.Serial, st); err != nil {
		t.Fatal(err)
	}
	// The witness must put T0.0 (the writer, which committed first)
	// before T0.1's read so the read's recorded value 7 replays.
	var sawWrite bool
	for _, e := range w.Serial {
		if e.Kind == event.RequestCommit && e.T == "T0.0.0" {
			sawWrite = true
		}
		if e.Kind == event.RequestCommit && e.T == "T0.1.0" && !sawWrite {
			t.Fatal("witness ordered the read before the write it observed")
		}
	}
}

// TestVisibilityHidesUncommittedSibling: T0.1 must not see T0.0's
// uncommitted write; the witness for T0.1 contains no T0.0 events.
func TestVisibilityHidesUncommittedSibling(t *testing.T) {
	st := handType(t)
	alpha := event.Schedule{
		ev(event.Create, "T0"),
		ev(event.RequestCreate, "T0.0"),
		ev(event.RequestCreate, "T0.1"),
		ev(event.Create, "T0.0"),
		ev(event.Create, "T0.1"),
		ev(event.RequestCreate, "T0.0.0"),
		ev(event.Create, "T0.0.0"),
		ev(event.RequestCommit, "T0.0.0", int64(7)), // uncommitted write
		ev(event.RequestCreate, "T0.1.0"),
	}
	w, err := Check(alpha, st, "T0.1")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range w.Serial {
		if tr, ok := event.TransactionOf(e); ok && tree.TID("T0.0").IsAncestorOf(tr) && tr != "T0" {
			t.Fatalf("uncommitted sibling subtree leaked into T0.1's view: %s", e)
		}
	}
}

// TestAbortInvisible: an aborted subtransaction's work is invisible; the
// witness aborts it before creation, serial-scheduler style.
func TestAbortInvisible(t *testing.T) {
	st := handType(t)
	alpha := event.Schedule{
		ev(event.Create, "T0"),
		ev(event.RequestCreate, "T0.0"),
		ev(event.Create, "T0.0"),
		ev(event.RequestCreate, "T0.0.0"),
		ev(event.Create, "T0.0.0"),
		ev(event.RequestCommit, "T0.0.0", int64(7)),
		ev(event.Abort, "T0.0.0"), // abort after work
		event.Event{Kind: event.InformAbortAt, T: "T0.0.0", Object: "X"},
		ev(event.ReportAbort, "T0.0.0"),
		ev(event.RequestCommit, "T0.0", int64(0)),
		ev(event.Commit, "T0.0"),
	}
	w, err := Check(alpha, st, tree.Root)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range w.Serial {
		if e.T == "T0.0.0" && (e.Kind == event.Create || e.Kind == event.RequestCommit) {
			t.Fatalf("aborted access's own events must not appear in the witness: %s", e)
		}
		if e.Kind == event.Abort && e.T != "T0.0.0" {
			t.Fatalf("unexpected abort: %s", e)
		}
	}
	// The witness still carries ABORT(T0.0.0) + REPORT_ABORT for T0.0's
	// projection to match.
	if !w.Serial.AtTransaction("T0.0").Equal(alpha.AtTransaction("T0.0")) {
		t.Fatal("projection at T0.0 changed")
	}
}

// TestNonSerializableRejected: a hand-built ill schedule (a read that
// observed a value no serial order explains) must fail the check — the
// checker is a verifier, not a rubber stamp.
func TestNonSerializableRejected(t *testing.T) {
	st := handType(t)
	alpha := event.Schedule{
		ev(event.Create, "T0"),
		ev(event.RequestCreate, "T0.0"),
		ev(event.RequestCreate, "T0.1"),
		ev(event.Create, "T0.0"),
		ev(event.Create, "T0.1"),
		ev(event.RequestCreate, "T0.0.0"),
		ev(event.RequestCreate, "T0.1.0"),
		ev(event.Create, "T0.0.0"),
		ev(event.Create, "T0.1.0"),
		ev(event.RequestCommit, "T0.0.0", int64(7)), // write 7
		ev(event.RequestCommit, "T0.1.0", int64(3)), // read claims 3: impossible
		ev(event.Commit, "T0.0.0"),
		ev(event.Commit, "T0.1.0"),
		ev(event.ReportCommit, "T0.0.0", int64(7)),
		ev(event.ReportCommit, "T0.1.0", int64(3)),
		ev(event.RequestCommit, "T0.0", int64(1)),
		ev(event.RequestCommit, "T0.1", int64(1)),
		ev(event.Commit, "T0.0"),
		ev(event.Commit, "T0.1"),
	}
	if _, err := Check(alpha, st, tree.Root); err == nil {
		t.Fatal("impossible read value must fail verification")
	}
}

// TestEmptySchedule and trivial cases.
func TestTrivialSchedules(t *testing.T) {
	st := handType(t)
	w, err := Check(nil, st, tree.Root)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Serial) != 0 {
		t.Fatal("empty witness expected")
	}
	one := event.Schedule{ev(event.Create, "T0")}
	if _, err := Check(one, st, tree.Root); err != nil {
		t.Fatal(err)
	}
	if err := CheckAll(one, st); err != nil {
		t.Fatal(err)
	}
}

// TestCheckAtDeepTransaction: serial correctness at an inner transaction,
// not just the root.
func TestCheckAtDeepTransaction(t *testing.T) {
	st := handType(t)
	alpha := event.Schedule{
		ev(event.Create, "T0"),
		ev(event.RequestCreate, "T0.0"),
		ev(event.Create, "T0.0"),
		ev(event.RequestCreate, "T0.0.0"),
		ev(event.Create, "T0.0.0"),
		ev(event.RequestCommit, "T0.0.0", int64(7)),
		ev(event.Commit, "T0.0.0"),
		ev(event.ReportCommit, "T0.0.0", int64(7)),
	}
	w, err := Check(alpha, st, "T0.0")
	if err != nil {
		t.Fatal(err)
	}
	if !w.Serial.AtTransaction("T0.0").Equal(alpha.AtTransaction("T0.0")) {
		t.Fatal("projection at T0.0 must be preserved")
	}
}
