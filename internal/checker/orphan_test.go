package checker

import (
	"testing"

	"nestedtx/internal/adt"
	"nestedtx/internal/event"
	"nestedtx/internal/tree"
)

// TestOrphanRestrictionIsNecessary exhibits why Theorem 34 excludes
// orphans: an orphaned transaction can observe state no serial execution
// explains. T0.0.1 reads X=0; T0.0 aborts (making the whole subtree
// orphans, releasing its locks); T0.1 writes X=1 and commits; the orphan
// then reads X=1. Two reads, different values, no write between them in
// the orphan's world — non-serializable at the orphan, while every
// non-orphan transaction still verifies.
func TestOrphanRestrictionIsNecessary(t *testing.T) {
	st := event.NewSystemType()
	st.DefineObject("X", adt.NewRegister(int64(0)))
	st.MustDefineAccess("T0.0.0", "X", adt.RegRead{})
	st.MustDefineAccess("T0.0.1", "X", adt.RegRead{})
	st.MustDefineAccess("T0.1.0", "X", adt.RegWrite{V: int64(1)})

	alpha := event.Schedule{
		{Kind: event.Create, T: "T0"},
		{Kind: event.RequestCreate, T: "T0.0"},
		{Kind: event.RequestCreate, T: "T0.1"},
		{Kind: event.Create, T: "T0.0"},
		{Kind: event.Create, T: "T0.1"},
		{Kind: event.RequestCreate, T: "T0.0.0"},
		{Kind: event.RequestCreate, T: "T0.0.1"},
		{Kind: event.Create, T: "T0.0.0"},
		{Kind: event.RequestCommit, T: "T0.0.0", Value: int64(0)}, // first read: 0
		{Kind: event.Commit, T: "T0.0.0"},
		{Kind: event.InformCommitAt, T: "T0.0.0", Object: "X"},
		{Kind: event.ReportCommit, T: "T0.0.0", Value: int64(0)},
		// The parent aborts: T0.0's subtree becomes orphans, read lock
		// released.
		{Kind: event.Abort, T: "T0.0"},
		{Kind: event.InformAbortAt, T: "T0.0", Object: "X"},
		// A sibling writes 1 and commits all the way.
		{Kind: event.RequestCreate, T: "T0.1.0"},
		{Kind: event.Create, T: "T0.1.0"},
		{Kind: event.RequestCommit, T: "T0.1.0", Value: int64(1)},
		{Kind: event.Commit, T: "T0.1.0"},
		{Kind: event.InformCommitAt, T: "T0.1.0", Object: "X"},
		{Kind: event.ReportCommit, T: "T0.1.0", Value: int64(1)},
		{Kind: event.RequestCommit, T: "T0.1", Value: int64(1)},
		{Kind: event.Commit, T: "T0.1"},
		{Kind: event.InformCommitAt, T: "T0.1", Object: "X"},
		// The orphan's second access now runs and sees the new value.
		{Kind: event.Create, T: "T0.0.1"},
		{Kind: event.RequestCommit, T: "T0.0.1", Value: int64(1)}, // second read: 1
	}
	// Sanity: this is a well-formed concurrent schedule and M(X) accepts
	// its projection (orphans may run in R/W Locking systems).
	if err := event.WFConcurrent(alpha, st); err != nil {
		t.Fatal(err)
	}

	// The orphan's view is NOT serially correct: Check refuses orphans by
	// definition, and even the raw rearrangement of its visible events
	// cannot replay (read 0 then read 1 with no visible write).
	if !alpha.IsOrphan("T0.0") {
		t.Fatal("T0.0 should be an orphan")
	}
	if _, err := Check(alpha, st, "T0.0"); err == nil {
		t.Fatal("checker must refuse the orphan")
	}

	// Every non-orphan transaction still verifies (Theorem 34).
	if err := CheckAll(alpha, st); err != nil {
		t.Fatal(err)
	}
	for _, u := range []tree.TID{tree.Root, "T0.1"} {
		if _, err := Check(alpha, st, u); err != nil {
			t.Fatalf("non-orphan %s must verify: %v", u, err)
		}
	}
}
