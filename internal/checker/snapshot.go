package checker

import (
	"fmt"
	"reflect"
	"sort"

	"nestedtx/internal/adt"
	"nestedtx/internal/event"
	"nestedtx/internal/snap"
	"nestedtx/internal/tree"
)

// This file extends the Theorem-34 machinery to read-only snapshot
// transactions. A snapshot transaction is not part of the transaction
// tree — it never touches the lock manager — so CheckAll cannot place
// it. Instead, CheckSnapshots proves that the serial order induced by
// the publication sequence numbers is the same order the locking
// history already serializes to, and that every snapshot read is the
// unique value a serial execution of the committed prefix up to the
// reader's pin point would return. A read-only transaction that sees
// one consistent committed prefix is serializable (write skew needs
// writes), so the combined history — locking transactions in conflict
// order, each snapshot transaction inserted at its pin point — is
// serially correct. When it is not, the checker does not just fail: it
// classifies the anomaly it found.

// Snapshot anomaly kinds reported by CheckSnapshots.
const (
	// AnomalyUncommittedPublication: a publication whose top-level
	// transaction never committed — an aborted or live transaction's
	// writes leaked into the snapshot store (the dirty-read class).
	AnomalyUncommittedPublication = "uncommitted-publication"
	// AnomalyUnpublishedCommit: a committed top-level transaction wrote
	// an object but no publication carries those writes — snapshot
	// readers would silently miss a committed update (lost-update class
	// as seen by readers).
	AnomalyUnpublishedCommit = "unpublished-commit"
	// AnomalySpuriousPublication: a publication claims an object its
	// transaction never wrote (committed-to-root) in the locking
	// history.
	AnomalySpuriousPublication = "spurious-publication"
	// AnomalyPublicationOrder: per-object publication order disagrees
	// with the conflict order the lock manager serialized the writers
	// into, or two writers' runs interleave on one object (strict
	// locking forbids it).
	AnomalyPublicationOrder = "publication-order"
	// AnomalyVersionDivergence: a publication's state differs from the
	// state replaying the committed writes produces — a torn or
	// corrupted version.
	AnomalyVersionDivergence = "version-divergence"
	// AnomalyNonReadOnlyOp: a snapshot transaction ran an operation
	// that is not read-only.
	AnomalyNonReadOnlyOp = "non-read-only-op"
	// AnomalyMutatingRead: a read-only operation changed the state it
	// was applied to, breaking the equieffectiveness contract (§4.3)
	// the snapshot path relies on.
	AnomalyMutatingRead = "mutating-read"
	// AnomalyInconsistentRead: a snapshot read returned a value that
	// the committed prefix at its pin point cannot produce — the reader
	// saw a dirty, torn, or future state.
	AnomalyInconsistentRead = "inconsistent-read"
)

// SnapshotAnomaly is a classified violation of snapshot correctness.
type SnapshotAnomaly struct {
	Kind   string // one of the Anomaly* constants
	Tx     string // the offending transaction (top-level or snapshot id)
	Object string // the object involved, when per-object
	Detail string
}

func (a *SnapshotAnomaly) Error() string {
	s := fmt.Sprintf("checker: snapshot anomaly [%s]", a.Kind)
	if a.Tx != "" {
		s += " tx=" + a.Tx
	}
	if a.Object != "" {
		s += " object=" + a.Object
	}
	return s + ": " + a.Detail
}

// SnapRead is one recorded snapshot read: the operation a read-only
// transaction applied and the value it returned.
type SnapRead struct {
	Object string
	Op     adt.Op
	Value  adt.Value
}

// SnapTx is one finished read-only snapshot transaction: the sequence
// number it pinned and the reads it performed.
type SnapTx struct {
	ID    string
	Seq   uint64
	Reads []SnapRead
}

// CheckSnapshots verifies the publication log and the recorded snapshot
// transactions against the locking history alpha:
//
//  1. Per object, the committed-to-root write accesses in alpha form
//     contiguous runs per top-level transaction (strict locking), and
//     the runs' order equals the publication order by sequence number.
//  2. Each publication's state equals the state replaying the run
//     produces — the store holds exactly the committed version chain.
//  3. Each snapshot read returns precisely the value a serial
//     execution of the committed prefix up to its pin point yields,
//     and its operation is read-only and leaves the state unchanged.
//
// Together these place every snapshot transaction at its pin point in
// the serial order of Theorem 34 and prove the combined history
// serially correct; on failure the returned *SnapshotAnomaly names the
// violated guarantee.
func CheckSnapshots(alpha event.Schedule, st *event.SystemType, pubs []snap.PubEntry, txs []SnapTx) error {
	pubs = append([]snap.PubEntry(nil), pubs...)
	sort.Slice(pubs, func(i, j int) bool { return pubs[i].Seq < pubs[j].Seq })
	for i := 1; i < len(pubs); i++ {
		if pubs[i].Seq == pubs[i-1].Seq {
			return &SnapshotAnomaly{Kind: AnomalyPublicationOrder, Tx: pubs[i].Top,
				Detail: fmt.Sprintf("duplicate publication sequence number %d (also %s)", pubs[i].Seq, pubs[i-1].Top)}
		}
	}

	// Committed transactions, for the committed-to-root test.
	committed := make(map[tree.TID]bool)
	for _, e := range alpha {
		if e.Kind == event.Commit {
			committed[e.T] = true
		}
	}
	committedToRoot := func(t tree.TID) bool {
		for ; t != tree.Root; t = t.Parent() {
			if !committed[t] {
				return false
			}
		}
		return true
	}

	// Every publication must belong to a committed top-level transaction.
	for _, p := range pubs {
		top := tree.TID(p.Top)
		if top.Parent() != tree.Root || !committed[top] {
			return &SnapshotAnomaly{Kind: AnomalyUncommittedPublication, Tx: p.Top,
				Detail: fmt.Sprintf("publication %d carries writes of a transaction that never committed to root", p.Seq)}
		}
	}

	// Per-object publication lists, in sequence order.
	type pubVersion struct {
		seq   uint64
		top   string
		state adt.State
	}
	pubsAt := make(map[string][]pubVersion)
	for _, p := range pubs {
		for x, s := range p.Updates {
			pubsAt[x] = append(pubsAt[x], pubVersion{seq: p.Seq, top: p.Top, state: s})
		}
	}

	// Replay the committed-to-root write accesses of each object, in
	// alpha order, grouped into runs per top-level transaction, and
	// reconcile the runs against the publications. Only objects with
	// events or publications need replaying — for any other object both
	// sides are empty.
	relevant := make(map[string]struct{})
	for _, x := range alpha.TouchedObjects(st) {
		relevant[x] = struct{}{}
	}
	for x := range pubsAt {
		relevant[x] = struct{}{}
	}
	objs := make([]string, 0, len(relevant))
	for x := range relevant {
		objs = append(objs, x)
	}
	sort.Strings(objs)
	type run struct {
		top   string
		state adt.State
	}
	for _, x := range objs {
		initial, _ := st.ObjectInitial(x)
		state := initial
		var runs []run
		seen := make(map[string]bool) // tops whose run already closed
		for _, e := range alpha {
			if e.Kind != event.RequestCommit {
				continue
			}
			a, ok := st.AccessInfo(e.T)
			if !ok || a.Object != x || a.Op.ReadOnly() || !committedToRoot(e.T) {
				continue
			}
			top := string(tree.Root.ChildToward(e.T))
			if len(runs) == 0 || runs[len(runs)-1].top != top {
				if seen[top] {
					return &SnapshotAnomaly{Kind: AnomalyPublicationOrder, Tx: top, Object: x,
						Detail: "committed write runs interleave: a second run of the same transaction after another writer's"}
				}
				runs = append(runs, run{top: top})
				seen[top] = true
			}
			next, v := a.Op.Apply(state)
			if v != e.Value {
				return &SnapshotAnomaly{Kind: AnomalyVersionDivergence, Tx: string(e.T), Object: x,
					Detail: fmt.Sprintf("committed write access returned %v but the committed version chain yields %v", e.Value, v)}
			}
			state = next
			runs[len(runs)-1].state = state
		}
		pv := pubsAt[x]
		for i := 0; i < len(runs) || i < len(pv); i++ {
			switch {
			case i >= len(pv):
				return &SnapshotAnomaly{Kind: AnomalyUnpublishedCommit, Tx: runs[i].top, Object: x,
					Detail: "committed writes have no publication; snapshot readers would miss them"}
			case i >= len(runs):
				return &SnapshotAnomaly{Kind: AnomalySpuriousPublication, Tx: pv[i].top, Object: x,
					Detail: fmt.Sprintf("publication %d claims the object but the transaction never wrote it", pv[i].seq)}
			case runs[i].top != pv[i].top:
				return &SnapshotAnomaly{Kind: AnomalyPublicationOrder, Tx: pv[i].top, Object: x,
					Detail: fmt.Sprintf("publication order has %s at position %d where the conflict order has %s", pv[i].top, i, runs[i].top)}
			case !reflect.DeepEqual(runs[i].state, pv[i].state):
				return &SnapshotAnomaly{Kind: AnomalyVersionDivergence, Tx: pv[i].top, Object: x,
					Detail: fmt.Sprintf("published state %v differs from the replayed committed state %v", pv[i].state, runs[i].state)}
			}
		}
	}

	// Check every snapshot read against the committed prefix at its pin
	// point: initial state, then every publication of the object with
	// seq ≤ pin, in order.
	for _, tx := range txs {
		for _, r := range tx.Reads {
			if !r.Op.ReadOnly() {
				return &SnapshotAnomaly{Kind: AnomalyNonReadOnlyOp, Tx: tx.ID, Object: r.Object,
					Detail: fmt.Sprintf("operation %T is not read-only", r.Op)}
			}
			state, ok := st.ObjectInitial(r.Object)
			if !ok {
				return &SnapshotAnomaly{Kind: AnomalyInconsistentRead, Tx: tx.ID, Object: r.Object,
					Detail: "read of an object the system type never defined"}
			}
			for _, v := range pubsAt[r.Object] {
				if v.seq > tx.Seq {
					break
				}
				state = v.state
			}
			next, val := r.Op.Apply(state)
			if !reflect.DeepEqual(next, state) {
				return &SnapshotAnomaly{Kind: AnomalyMutatingRead, Tx: tx.ID, Object: r.Object,
					Detail: fmt.Sprintf("read-only operation %T changed the state it was applied to", r.Op)}
			}
			if val != r.Value {
				return &SnapshotAnomaly{Kind: AnomalyInconsistentRead, Tx: tx.ID, Object: r.Object,
					Detail: fmt.Sprintf("read at pin %d returned %v; the committed prefix yields %v", tx.Seq, r.Value, val)}
			}
		}
	}
	return nil
}
