package checker

// Bounded model checking: on systems small enough to exhaust, Theorem 34
// is verified on EVERY reachable schedule, not a random sample.

import (
	"testing"

	"nestedtx/internal/adt"
	"nestedtx/internal/event"
	"nestedtx/internal/system"
)

// tinySystem: one writer top-level and one reader top-level over a single
// register — the minimal system with a real read/write conflict.
func tinySystem(t testing.TB) *system.System {
	t.Helper()
	sys, err := system.New(
		map[string]adt.State{"X": adt.NewRegister(int64(0))},
		[]system.ChildSpec{
			system.Sub(&system.Program{Children: []system.ChildSpec{
				system.Access("X", adt.RegWrite{V: int64(1)}),
			}}),
			system.Sub(&system.Program{Children: []system.ChildSpec{
				system.Access("X", adt.RegRead{}),
			}}),
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// oneTopLevel: a single top-level with one write access — small enough to
// exhaust completely (12 schedules without abort branching).
func oneTopLevel(t testing.TB) *system.System {
	t.Helper()
	sys, err := system.New(
		map[string]adt.State{"X": adt.NewRegister(int64(0))},
		[]system.ChildSpec{
			system.Sub(&system.Program{Children: []system.ChildSpec{
				system.Access("X", adt.RegWrite{V: int64(1)}),
			}}),
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestExhaustiveTheorem34OneTopLevel(t *testing.T) {
	sys := oneTopLevel(t)
	st := sys.SystemType()
	distinct := make(map[string]struct{})
	visited, exhaustive, err := sys.Enumerate(system.EnumConfig{}, func(s event.Schedule) bool {
		distinct[s.String()] = struct{}{}
		if err := event.WFConcurrent(s, st); err != nil {
			t.Fatalf("ill-formed schedule: %v\n%s", err, s)
		}
		if err := CheckAll(s, st); err != nil {
			t.Fatalf("Theorem 34 violated on enumerated schedule: %v\n%s", err, s)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if !exhaustive {
		t.Fatal("enumeration should be exhaustive without a limit")
	}
	if visited == 0 || len(distinct) != visited {
		t.Fatalf("visited %d, distinct %d", visited, len(distinct))
	}
	t.Logf("exhaustively verified all %d schedules", visited)
}

func TestExhaustiveTheorem34OneTopLevelWithAborts(t *testing.T) {
	sys := oneTopLevel(t)
	st := sys.SystemType()
	visited, exhaustive, err := sys.Enumerate(system.EnumConfig{IncludeAborts: true, Limit: 100000}, func(s event.Schedule) bool {
		if err := CheckAll(s, st); err != nil {
			t.Fatalf("Theorem 34 violated: %v\n%s", err, s)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("verified %d schedules with abort branching (exhaustive=%v)", visited, exhaustive)
}

// TestExhaustiveTheorem34TwoTopLevels samples the (much larger) space of
// the writer/reader system deeply in deterministic DFS order; the full
// space exceeds 200k schedules, so the sample is bounded.
func TestExhaustiveTheorem34TwoTopLevels(t *testing.T) {
	if testing.Short() {
		t.Skip("enumeration sample is slow in -short mode")
	}
	sys := tinySystem(t)
	st := sys.SystemType()
	visited, _, err := sys.Enumerate(system.EnumConfig{Limit: 1500}, func(s event.Schedule) bool {
		if err := CheckAll(s, st); err != nil {
			t.Fatalf("Theorem 34 violated on enumerated schedule: %v\n%s", err, s)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if visited != 1500 {
		t.Fatalf("visited %d", visited)
	}
}

func TestExhaustiveWithAbortsLimited(t *testing.T) {
	sys := tinySystem(t)
	st := sys.SystemType()
	limit := 2000
	visited, exhaustive, err := sys.Enumerate(system.EnumConfig{IncludeAborts: true, Limit: limit}, func(s event.Schedule) bool {
		if err := CheckAll(s, st); err != nil {
			t.Fatalf("Theorem 34 violated: %v\n%s", err, s)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if visited == 0 {
		t.Fatal("nothing visited")
	}
	if visited > limit {
		t.Fatalf("limit not respected: %d > %d", visited, limit)
	}
	_ = exhaustive // with aborts the space is typically larger than the limit
}

func TestEnumerateEarlyStop(t *testing.T) {
	sys := tinySystem(t)
	visited, exhaustive, err := sys.Enumerate(system.EnumConfig{}, func(event.Schedule) bool {
		return false // stop after the first schedule
	})
	if err != nil {
		t.Fatal(err)
	}
	if visited != 1 || exhaustive {
		t.Fatalf("visited=%d exhaustive=%v, want 1,false", visited, exhaustive)
	}
}

func TestEnumerateDepthCut(t *testing.T) {
	sys := tinySystem(t)
	st := sys.SystemType()
	visited, _, err := sys.Enumerate(system.EnumConfig{MaxEvents: 4, Limit: 500}, func(s event.Schedule) bool {
		if len(s) > 4 {
			t.Fatalf("depth cut ignored: %d events", len(s))
		}
		if err := event.WFConcurrent(s, st); err != nil {
			t.Fatalf("prefix ill-formed: %v", err)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if visited == 0 {
		t.Fatal("nothing visited")
	}
}
