package checker

// Tests for the orphan-containment scheduler option (§3.5: guaranteeing
// consistent views to orphans needs a more careful scheduler; the
// simplest member of the [HLMW] family freezes orphans at abort time).

import (
	"math/rand"
	"testing"

	"nestedtx/internal/event"
	"nestedtx/internal/system"
	"nestedtx/internal/tree"
)

// orphanActivity returns the indices of events where a transaction that
// is already an orphan performs work (is created, responds, requests).
func orphanActivity(s event.Schedule) []int {
	var out []int
	for i, e := range s {
		var actor tree.TID
		switch e.Kind {
		case event.Create, event.RequestCommit:
			actor = e.T
		case event.RequestCreate:
			actor = e.T.Parent()
		default:
			continue
		}
		if s[:i].IsOrphan(actor) {
			out = append(out, i)
		}
	}
	return out
}

func TestOrphanContainmentFreezesOrphans(t *testing.T) {
	cfg := system.GenConfig{Objects: 2, TopLevel: 3, MaxDepth: 2, MaxFanout: 3, ReadFraction: 0.5, SubProb: 0.5, SeqProb: 0.5}
	sawUncontainedActivity := false
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed + 900))
		sys, err := system.Generate(rng, cfg)
		if err != nil {
			t.Fatal(err)
		}
		contained, err := sys.RunConcurrent(system.DriverConfig{Seed: seed, AbortProb: 0.3, ContainOrphans: true})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if idx := orphanActivity(contained); len(idx) != 0 {
			t.Fatalf("seed %d: contained run has orphan activity at %v:\n%s", seed, idx, contained)
		}
		// Contained runs are still correct concurrent schedules.
		if err := CheckAll(contained, sys.SystemType()); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// The same seeds *without* containment do exhibit orphan activity
		// somewhere in the batch — otherwise the option tests nothing.
		plain, err := sys.RunConcurrent(system.DriverConfig{Seed: seed, AbortProb: 0.3})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(orphanActivity(plain)) > 0 {
			sawUncontainedActivity = true
		}
	}
	if !sawUncontainedActivity {
		t.Fatal("no uncontained run showed orphan activity; the test is vacuous")
	}
}

// TestContainmentGivesOrphansConsistentViews: with containment, an orphan
// did all its work before the abort, so its projection is identical to
// its projection in the last prefix where it was not yet an orphan — and
// that prefix is serially correct at it.
func TestContainmentGivesOrphansConsistentViews(t *testing.T) {
	cfg := system.GenConfig{Objects: 2, TopLevel: 3, MaxDepth: 2, MaxFanout: 2, ReadFraction: 0.5, SubProb: 0.5, SeqProb: 0.5}
	checkedOrphans := 0
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed + 333))
		sys, err := system.Generate(rng, cfg)
		if err != nil {
			t.Fatal(err)
		}
		alpha, err := sys.RunConcurrent(system.DriverConfig{Seed: seed, AbortProb: 0.3, ContainOrphans: true})
		if err != nil {
			t.Fatal(err)
		}
		st := sys.SystemType()
		for _, u := range transactionsOf(alpha) {
			if st.IsAccess(u) || !alpha.IsOrphan(u) {
				continue
			}
			// Longest prefix where u is not an orphan.
			cut := 0
			for i := range alpha {
				if !alpha[:i+1].IsOrphan(u) {
					cut = i + 1
				}
			}
			prefix := alpha[:cut]
			if !prefix.AtTransaction(u).Equal(alpha.AtTransaction(u)) {
				t.Fatalf("seed %d: contained orphan %s acted after its orphaning", seed, u)
			}
			if _, err := Check(prefix, st, u); err != nil {
				t.Fatalf("seed %d: orphan %s's pre-abort view not serially correct: %v", seed, u, err)
			}
			checkedOrphans++
		}
	}
	if checkedOrphans == 0 {
		t.Fatal("no orphans produced; the test is vacuous")
	}
	t.Logf("verified consistent pre-abort views for %d orphans", checkedOrphans)
}

// TestTheorem34WithContainment re-runs a slice of the random matrix with
// the containment scheduler: Theorem 34 must hold there too (containment
// only removes schedules, never adds them).
func TestTheorem34WithContainment(t *testing.T) {
	cfg := system.GenConfig{Objects: 3, TopLevel: 3, MaxDepth: 2, MaxFanout: 3, ReadFraction: 0.5, SubProb: 0.5, SeqProb: 0.5}
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed + 4242))
		sys, err := system.Generate(rng, cfg)
		if err != nil {
			t.Fatal(err)
		}
		sched, err := sys.RunConcurrent(system.DriverConfig{Seed: seed, AbortProb: 0.25, ContainOrphans: true})
		if err != nil {
			t.Fatal(err)
		}
		if err := event.WFConcurrent(sched, sys.SystemType()); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := CheckAll(sched, sys.SystemType()); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}
