package checker

import (
	"math/rand"
	"testing"

	"nestedtx/internal/core"
	"nestedtx/internal/event"
	"nestedtx/internal/system"
)

// FuzzTheorem34 lets the fuzzer steer system generation and driver
// nondeterminism; every reachable concurrent schedule must verify. Run
// with `go test -fuzz FuzzTheorem34 ./internal/checker` for an open-ended
// search; the seed corpus runs as ordinary tests.
func FuzzTheorem34(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(0), false)
	f.Add(int64(2), uint8(30), uint8(1), false)
	f.Add(int64(3), uint8(60), uint8(2), true)
	f.Add(int64(-9), uint8(255), uint8(9), false)
	f.Fuzz(func(t *testing.T, seed int64, abortPct, shape uint8, exclusive bool) {
		cfg := system.GenConfig{
			Objects:      1 + int(shape%4),
			TopLevel:     1 + int(shape/4%4),
			MaxDepth:     int(shape / 16 % 3),
			MaxFanout:    1 + int(shape/48%3),
			ReadFraction: float64(abortPct%101) / 100,
			SubProb:      0.5,
			SeqProb:      0.5,
		}
		rng := rand.New(rand.NewSource(seed))
		sys, err := system.Generate(rng, cfg)
		if err != nil {
			t.Fatal(err)
		}
		mode := core.ReadWrite
		if exclusive {
			mode = core.Exclusive
		}
		sched, err := sys.RunConcurrent(system.DriverConfig{
			Seed:      seed,
			AbortProb: float64(abortPct%101) / 200, // 0..0.5
			Mode:      mode,
		})
		if err != nil {
			t.Fatal(err)
		}
		st := sys.SystemType()
		if err := event.WFConcurrent(sched, st); err != nil {
			t.Fatalf("ill-formed schedule: %v\n%s", err, sched)
		}
		if err := CheckAll(sched, st); err != nil {
			t.Fatalf("Theorem 34 violated: %v\n%s", err, sched)
		}
	})
}
