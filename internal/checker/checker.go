// Package checker decides serial correctness of concurrent schedules —
// the executable counterpart of the paper's main theorem.
//
// Theorem 34 states that every schedule of a R/W Locking system is
// serially correct for every non-orphan transaction T: its projection on T
// equals the projection on T of some serial schedule. The proof (Lemma 33)
// shows more: there is a serial schedule β *write-equivalent* to
// visible(α,T). The checker constructs such a β and verifies it:
//
//  1. compute vis = visible(α,T);
//  2. for every internal transaction P, order the visible children of P by
//     a precedence graph — conflicting accesses at shared objects order
//     sibling subtrees, and a report of one child before the creation
//     request of another orders their blocks — with ties broken by return
//     order in α and the live child (the one containing T) last;
//  3. emit β by a depth-first traversal: each child subtree becomes a
//     contiguous block closed by its COMMIT, interleaved with P's own
//     operations so that β|P = α|P;
//  4. validate β against the serial-system specification (scheduler
//     preconditions, object replay with value matching) and check
//     write-equivalence with vis.
//
// The lock rules of Moss' algorithm guarantee the precedence graph is
// acyclic on schedules of R/W Locking systems; a cycle or a validation
// failure means the input schedule is *not* serially correct by this
// construction, and Check retries with randomized topological tie-breaks
// before reporting failure. A successful Check is a machine-checked
// witness of the theorem's conclusion for that schedule and transaction.
package checker

import (
	"fmt"
	"math/rand"

	"nestedtx/internal/event"
	"nestedtx/internal/serial"
	"nestedtx/internal/tree"
)

// Witness is the evidence that a schedule is serially correct for a
// transaction.
type Witness struct {
	// T is the transaction checked.
	T tree.TID
	// Visible is visible(α,T).
	Visible event.Schedule
	// Serial is the constructed serial schedule, write-equivalent to
	// Visible.
	Serial event.Schedule
}

// retries is how many randomized tie-break attempts Check makes after the
// deterministic order fails.
const retries = 16

// Check verifies that concurrent schedule alpha is serially correct for
// non-orphan transaction t, returning a witness. It errors if t is an
// orphan in alpha (the theorem excludes orphans) or if no write-equivalent
// serial rearrangement is found.
func Check(alpha event.Schedule, st *event.SystemType, t tree.TID) (*Witness, error) {
	if alpha.IsOrphan(t) {
		return nil, fmt.Errorf("checker: %s is an orphan; serial correctness is only guaranteed for non-orphans", t)
	}
	vis := alpha.Visible(t)
	c := &constructor{alpha: alpha, st: st, target: t, vis: vis}
	c.analyze()

	var lastErr error
	for attempt := 0; attempt <= retries; attempt++ {
		var rng *rand.Rand
		if attempt > 0 {
			rng = rand.New(rand.NewSource(int64(attempt)))
		}
		beta, err := c.build(rng)
		if err != nil {
			lastErr = err
			continue
		}
		if err := verify(alpha, beta, vis, st, t); err != nil {
			lastErr = err
			continue
		}
		return &Witness{T: t, Visible: vis, Serial: beta}, nil
	}
	return nil, fmt.Errorf("checker: no serial rearrangement found for %s: %w", t, lastErr)
}

// verify performs the end-to-end validation of a candidate β.
func verify(alpha, beta, vis event.Schedule, st *event.SystemType, t tree.TID) error {
	if err := serial.Validate(beta, st); err != nil {
		return fmt.Errorf("candidate not a serial schedule: %w", err)
	}
	if !event.WriteEquivalent(st, beta, vis) {
		return fmt.Errorf("candidate not write-equivalent to visible(α,%s)", t)
	}
	if !alpha.AtTransaction(t).Equal(beta.AtTransaction(t)) {
		return fmt.Errorf("candidate changes the projection at %s", t)
	}
	return nil
}

// CheckAll runs Check for the root and every non-orphan non-access
// transaction with events in alpha, returning the first failure.
func CheckAll(alpha event.Schedule, st *event.SystemType) error {
	seen := map[tree.TID]struct{}{tree.Root: {}}
	ts := []tree.TID{tree.Root}
	for _, e := range alpha {
		u, ok := event.TransactionOf(e)
		if !ok || st.IsAccess(u) {
			continue
		}
		if _, dup := seen[u]; !dup {
			seen[u] = struct{}{}
			ts = append(ts, u)
		}
	}
	for _, u := range ts {
		if alpha.IsOrphan(u) {
			continue
		}
		if _, err := Check(alpha, st, u); err != nil {
			return fmt.Errorf("checker: at %s: %w", u, err)
		}
	}
	return nil
}

// constructor holds the per-check analysis shared across retry attempts.
type constructor struct {
	alpha  event.Schedule
	st     *event.SystemType
	target tree.TID
	vis    event.Schedule

	committed  map[tree.TID]bool // COMMIT(U) ∈ vis
	abortedVis map[tree.TID]bool // ABORT(U) ∈ vis
	returnPos  map[tree.TID]int  // position of COMMIT/ABORT in alpha
	fibers     map[tree.TID]event.Schedule
	// children[P] lists the children of P mentioned in vis, in first-
	// appearance order.
	children map[tree.TID][]tree.TID
	// perObject indexes the REQUEST_COMMIT access events of vis by
	// object, in vis order — shared by every childOrder call.
	perObject map[string][]event.Event
}

func (c *constructor) analyze() {
	c.committed = make(map[tree.TID]bool)
	c.abortedVis = make(map[tree.TID]bool)
	c.returnPos = make(map[tree.TID]int)
	c.fibers = make(map[tree.TID]event.Schedule)
	c.children = make(map[tree.TID][]tree.TID)
	c.perObject = make(map[string][]event.Event)
	for _, e := range c.vis {
		if e.Kind != event.RequestCommit {
			continue
		}
		if a, ok := c.st.AccessInfo(e.T); ok {
			c.perObject[a.Object] = append(c.perObject[a.Object], e)
		}
	}
	for i, e := range c.alpha {
		if e.Kind == event.Commit || e.Kind == event.Abort {
			if _, ok := c.returnPos[e.T]; !ok {
				c.returnPos[e.T] = i
			}
		}
	}
	seenChild := make(map[tree.TID]bool)
	noteChild := func(u tree.TID) {
		// Register u and every ancestor link above it so that blocks exist
		// for the whole path down from the root.
		for _, a := range u.Ancestors() {
			if a == tree.Root {
				continue
			}
			if !seenChild[a] {
				seenChild[a] = true
				p := a.Parent()
				c.children[p] = append(c.children[p], a)
			}
		}
	}
	for _, e := range c.vis {
		switch e.Kind {
		case event.Commit:
			c.committed[e.T] = true
			noteChild(e.T)
		case event.Abort:
			c.abortedVis[e.T] = true
			noteChild(e.T)
		default:
			if u, ok := event.TransactionOf(e); ok {
				noteChild(u)
				if e.Kind == event.RequestCreate {
					noteChild(e.T)
				}
			}
		}
		// Fibers hold only the operations of the transaction *automata*
		// (COMMIT/ABORT are scheduler-internal; the constructor places
		// them itself, right after each child's block).
		if e.Kind != event.Commit && e.Kind != event.Abort {
			if u, ok := event.TransactionOf(e); ok {
				c.fibers[u] = append(c.fibers[u], e)
			}
		}
	}
}

// hasBlock reports whether child u gets a contiguous subtree block in β:
// committed children do, and so does the live child on the path to the
// target.
func (c *constructor) hasBlock(u tree.TID) bool {
	if c.committed[u] {
		return true
	}
	return u.IsAncestorOf(c.target) && !c.abortedVis[u]
}

// build constructs a candidate serial schedule. rng, when non-nil,
// randomizes topological tie-breaking.
func (c *constructor) build(rng *rand.Rand) (event.Schedule, error) {
	var out event.Schedule
	if err := c.emit(tree.Root, &out, rng); err != nil {
		return nil, err
	}
	return out, nil
}

// emit appends the block of transaction p (its CREATE through its
// REQUEST_COMMIT, with child blocks inserted) to out.
func (c *constructor) emit(p tree.TID, out *event.Schedule, rng *rand.Rand) error {
	fiber := c.fibers[p]
	if c.st.IsAccess(p) {
		*out = append(*out, fiber...)
		return nil
	}
	order, err := c.childOrder(p, rng)
	if err != nil {
		return err
	}
	emitted := make(map[tree.TID]bool)
	// emitUpTo emits blocks in Γ order until u's block (inclusive) is out.
	// If u's block is already out there is nothing to do — emitting past it
	// could create blocks whose REQUEST_CREATE has not been issued yet.
	emitUpTo := func(u tree.TID) error {
		if u != "" && emitted[u] {
			return nil
		}
		for _, v := range order {
			if emitted[v] {
				continue
			}
			emitted[v] = true
			if err := c.emit(v, out, rng); err != nil {
				return err
			}
			if c.committed[v] {
				*out = append(*out, event.Event{Kind: event.Commit, T: v})
			}
			if v == u {
				return nil
			}
		}
		if u != "" && !emitted[u] {
			return fmt.Errorf("checker: block for %s not in child order of %s", u, p)
		}
		return nil
	}
	for _, e := range fiber {
		switch e.Kind {
		case event.ReportCommit:
			if err := emitUpTo(e.T); err != nil {
				return err
			}
		case event.ReportAbort:
			// ABORT(e.T) was emitted right after REQUEST_CREATE(e.T).
		}
		*out = append(*out, e)
		if e.Kind == event.RequestCreate && c.abortedVis[e.T] && !c.hasBlock(e.T) {
			*out = append(*out, event.Event{Kind: event.Abort, T: e.T})
		}
	}
	// Flush remaining blocks (children committed in α but unreported, and
	// the live child containing the target). Child blocks emitted after
	// REQUEST_COMMIT(p,v) are legal serial behaviour: the scheduler waits
	// for all requested children to return before COMMIT(p), which the
	// caller appends right after this block.
	return emitUpTo("")
}

// childOrder computes Γ: the visible children of p with blocks, ordered by
// the precedence graph with deterministic (or randomized) tie-breaking.
func (c *constructor) childOrder(p tree.TID, rng *rand.Rand) ([]tree.TID, error) {
	var nodes []tree.TID
	for _, u := range c.children[p] {
		if c.hasBlock(u) {
			nodes = append(nodes, u)
		}
	}
	if len(nodes) <= 1 {
		return nodes, nil
	}
	idx := make(map[tree.TID]int, len(nodes))
	for i, u := range nodes {
		idx[u] = i
	}
	succ := make([][]int, len(nodes))
	indeg := make([]int, len(nodes))
	addEdge := func(a, b tree.TID) {
		i, okA := idx[a]
		j, okB := idx[b]
		if !okA || !okB || i == j {
			return
		}
		succ[i] = append(succ[i], j)
		indeg[j]++
	}

	// (a) Conflict edges: REQUEST_COMMIT pairs at a shared object in
	// different sibling subtrees, at least one a write, ordered as in vis.
	// Linear edge construction: chaining each access to the previous write
	// and each write to the reads since then has the same transitive
	// closure as the all-pairs constraint set (read-read pairs impose
	// nothing), without the quadratic blowup on long schedules. The
	// per-object access index is built once per Check (analyze), not per
	// interior transaction.
	perObject := c.perObject
	govern := func(u tree.TID) (tree.TID, bool) {
		if p.IsProperAncestorOf(u) {
			return p.ChildToward(u), true
		}
		return "", false
	}
	type governed struct {
		g    tree.TID
		read bool
	}
	for _, seq := range perObject {
		// Constraints only order accesses governed by children of p, so
		// the segment construction runs on that subsequence (the all-pairs
		// set never mentioned the others).
		var gs []governed
		for _, e := range seq {
			if g, ok := govern(e.T); ok {
				gs = append(gs, governed{g: g, read: c.st.IsReadAccess(e.T)})
			}
		}
		lastWrite := -1
		var reads []int
		for j, ge := range gs {
			if ge.read {
				if lastWrite >= 0 {
					addEdge(gs[lastWrite].g, ge.g)
				}
				reads = append(reads, j)
				continue
			}
			if lastWrite >= 0 {
				addEdge(gs[lastWrite].g, ge.g)
			}
			for _, r := range reads {
				addEdge(gs[r].g, ge.g)
			}
			lastWrite = j
			reads = reads[:0]
		}
	}

	// (b) Fiber-order edges: if p saw the report of u before requesting v,
	// u's block must precede v's.
	reportedAt := make(map[tree.TID]int)
	requestedAt := make(map[tree.TID]int)
	for i, e := range c.fibers[p] {
		switch e.Kind {
		case event.ReportCommit, event.ReportAbort:
			if _, ok := reportedAt[e.T]; !ok {
				reportedAt[e.T] = i
			}
		case event.RequestCreate:
			requestedAt[e.T] = i
		}
	}
	for _, u := range nodes {
		ru, ok := reportedAt[u]
		if !ok {
			continue
		}
		for _, v := range nodes {
			if qv, ok := requestedAt[v]; ok && ru < qv {
				addEdge(u, v)
			}
		}
	}

	// Tie-break priority: return position in α (live child last), or
	// random on retry.
	prio := make([]int64, len(nodes))
	for i, u := range nodes {
		if pos, ok := c.returnPos[u]; ok && c.committed[u] {
			prio[i] = int64(pos)
		} else {
			prio[i] = int64(len(c.alpha)) + 1 // live: after everything
		}
		if rng != nil {
			prio[i] = rng.Int63n(int64(len(nodes)) * 16)
			if !c.committed[u] {
				prio[i] += int64(len(nodes)) * 16 // live child still last
			}
		}
	}

	// Kahn's algorithm with a priority queue (linear scan; sibling counts
	// are small).
	var order []tree.TID
	done := make([]bool, len(nodes))
	for len(order) < len(nodes) {
		best := -1
		for i := range nodes {
			if done[i] || indeg[i] > 0 {
				continue
			}
			if best < 0 || prio[i] < prio[best] {
				best = i
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("checker: precedence cycle among children of %s", p)
		}
		done[best] = true
		order = append(order, nodes[best])
		for _, j := range succ[best] {
			indeg[j]--
		}
	}
	return order, nil
}
