package checker

import (
	"testing"

	"nestedtx/internal/adt"
	"nestedtx/internal/core"
	"nestedtx/internal/event"
	"nestedtx/internal/system"
	"nestedtx/internal/tree"
)

// bankSystem builds a small two-account system with two top-level
// transactions, each transferring via nested subtransactions, plus a
// read-only auditor.
func bankSystem(t *testing.T) *system.System {
	t.Helper()
	transfer := func(from, to string, amt int64) *system.Program {
		return &system.Program{
			Children: []system.ChildSpec{
				system.Access(from, adt.AcctWithdraw{Amount: amt}),
				system.Access(to, adt.AcctDeposit{Amount: amt}),
			},
			Sequential: true,
		}
	}
	audit := &system.Program{
		Children: []system.ChildSpec{
			system.Access("A", adt.AcctBalance{}),
			system.Access("B", adt.AcctBalance{}),
		},
	}
	sys, err := system.New(
		map[string]adt.State{
			"A": adt.Account{Balance: 100},
			"B": adt.Account{Balance: 50},
		},
		[]system.ChildSpec{
			system.Sub(transfer("A", "B", 30)),
			system.Sub(transfer("B", "A", 10)),
			system.Sub(audit),
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestCheckBankNoAborts(t *testing.T) {
	sys := bankSystem(t)
	for seed := int64(0); seed < 20; seed++ {
		sched, err := sys.RunConcurrent(system.DriverConfig{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: driver: %v", seed, err)
		}
		if err := event.WFConcurrent(sched, sys.SystemType()); err != nil {
			t.Fatalf("seed %d: concurrent schedule ill-formed: %v", seed, err)
		}
		if err := CheckAll(sched, sys.SystemType()); err != nil {
			t.Fatalf("seed %d: %v\nschedule:\n%s", seed, err, sched)
		}
	}
}

func TestCheckBankWithAborts(t *testing.T) {
	sys := bankSystem(t)
	for seed := int64(0); seed < 20; seed++ {
		sched, err := sys.RunConcurrent(system.DriverConfig{Seed: seed, AbortProb: 0.15})
		if err != nil {
			t.Fatalf("seed %d: driver: %v", seed, err)
		}
		if err := CheckAll(sched, sys.SystemType()); err != nil {
			t.Fatalf("seed %d: %v\nschedule:\n%s", seed, err, sched)
		}
	}
}

func TestCheckExclusiveMode(t *testing.T) {
	sys := bankSystem(t)
	for seed := int64(0); seed < 10; seed++ {
		sched, err := sys.RunConcurrent(system.DriverConfig{Seed: seed, Mode: core.Exclusive, AbortProb: 0.1})
		if err != nil {
			t.Fatalf("seed %d: driver: %v", seed, err)
		}
		if err := CheckAll(sched, sys.SystemType()); err != nil {
			t.Fatalf("seed %d: %v\nschedule:\n%s", seed, err, sched)
		}
	}
}

func TestCheckRejectsOrphan(t *testing.T) {
	st := event.NewSystemType()
	st.DefineObject("X", adt.NewRegister(int64(0)))
	st.MustDefineAccess("T0.0.0", "X", adt.RegWrite{V: int64(1)})
	alpha := event.Schedule{
		{Kind: event.RequestCreate, T: "T0.0"},
		{Kind: event.Create, T: "T0.0"},
		{Kind: event.Abort, T: "T0.0"},
	}
	if _, err := Check(alpha, st, "T0.0"); err == nil {
		t.Fatal("Check must refuse orphans")
	}
}

func TestWitnessFieldsConsistent(t *testing.T) {
	sys := bankSystem(t)
	sched, err := sys.RunConcurrent(system.DriverConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	w, err := Check(sched, sys.SystemType(), tree.Root)
	if err != nil {
		t.Fatal(err)
	}
	if !event.WriteEquivalent(sys.SystemType(), w.Serial, w.Visible) {
		t.Fatal("witness serial schedule not write-equivalent to visible subsequence")
	}
	if !w.Serial.AtTransaction(tree.Root).Equal(sched.AtTransaction(tree.Root)) {
		t.Fatal("witness changes root projection")
	}
}
