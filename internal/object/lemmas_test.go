package object

// Executable versions of the §4.1 equieffectiveness algebra (Lemmas 15,
// 16, 17), tested on register object schedules with systematic probes.

import (
	"testing"

	"nestedtx/internal/event"
	"nestedtx/internal/tree"
)

// registerWorld builds a register object with nW writes and nR reads under
// T0.0, plus a canonical probe set exercising reads and writes with both
// correct and incorrect values.
func registerWorld(t *testing.T) (*event.SystemType, []tree.TID, []tree.TID, func(cur int64) []event.Schedule) {
	t.Helper()
	st, ws, rs := regType(t, 6, 6)
	probes := func(cur int64) []event.Schedule {
		return []event.Schedule{
			{{Kind: event.Create, T: rs[4]}, {Kind: event.RequestCommit, T: rs[4], Value: cur}},
			{{Kind: event.Create, T: rs[5]}, {Kind: event.RequestCommit, T: rs[5], Value: cur + 111}}, // wrong value
			{{Kind: event.Create, T: ws[4]}, {Kind: event.RequestCommit, T: ws[4], Value: int64(5)},
				{Kind: event.Create, T: rs[4]}, {Kind: event.RequestCommit, T: rs[4], Value: int64(5)}},
			{{Kind: event.Create, T: ws[5]}},
		}
	}
	return st, ws, rs, probes
}

// acc builds the (CREATE, REQUEST_COMMIT) pair of an access.
func acc(id tree.TID, v int64) event.Schedule {
	return event.Schedule{
		{Kind: event.Create, T: id},
		{Kind: event.RequestCommit, T: id, Value: v},
	}
}

// TestLemma15RestrictedTransitivity — if β's events ⊆ α's and γ's ⊆ β's,
// α ≡ β and β ≡ γ imply α ≡ γ.
func TestLemma15RestrictedTransitivity(t *testing.T) {
	st, ws, rs, probes := registerWorld(t)
	// α: write(1), read, read ; β: α minus one read ; γ: writes only.
	var alpha event.Schedule
	alpha = append(alpha, acc(ws[0], 1)...)
	alpha = append(alpha, acc(rs[0], 1)...)
	alpha = append(alpha, acc(rs[1], 1)...)
	beta := alpha.Filter(func(e event.Event) bool { return e.T != rs[1] })
	gamma := beta.Filter(func(e event.Event) bool { return e.T != rs[0] })
	ps := probes(1)
	if !Equieffective(st, "X", alpha, beta, ps) || !Equieffective(st, "X", beta, gamma, ps) {
		t.Fatal("setup: pairs should be equieffective (reads are transparent)")
	}
	if !Equieffective(st, "X", alpha, gamma, ps) {
		t.Fatal("Lemma 15: transitivity failed")
	}
}

// TestLemma16Extension — if α ≡ β with the same events and αφ is a
// well-formed schedule, then βφ is a schedule equieffective to αφ.
func TestLemma16Extension(t *testing.T) {
	st, ws, rs, probes := registerWorld(t)
	// Same events, different order: read before/after an unrelated CREATE.
	var alpha event.Schedule
	alpha = append(alpha, acc(ws[0], 1)...)
	alpha = append(alpha, event.Event{Kind: event.Create, T: rs[0]})
	alpha = append(alpha, event.Event{Kind: event.RequestCommit, T: rs[0], Value: int64(1)})
	beta := event.Schedule{
		{Kind: event.Create, T: rs[0]}, // created earlier
		alpha[0], alpha[1],
		{Kind: event.RequestCommit, T: rs[0], Value: int64(1)},
	}
	ps := probes(1)
	if !Equieffective(st, "X", alpha, beta, ps) {
		t.Fatal("setup: CREATE placement must be undetectable (semantic condition 2)")
	}
	phi := acc(ws[1], 2)
	alphaPhi := append(alpha.Clone(), phi...)
	betaPhi := append(beta.Clone(), phi...)
	if !IsSchedule(st, "X", alphaPhi) {
		t.Fatal("setup: αφ should be a schedule")
	}
	if !IsSchedule(st, "X", betaPhi) {
		t.Fatal("Lemma 16: βφ should be a schedule")
	}
	if !Equieffective(st, "X", alphaPhi, betaPhi, probes(2)) {
		t.Fatal("Lemma 16: αφ and βφ should be equieffective")
	}
}

// TestLemma17RemovingTransparentOps — deleting all operations of a set of
// transparent accesses yields a well-formed schedule equieffective to the
// original.
func TestLemma17RemovingTransparentOps(t *testing.T) {
	st, ws, rs, probes := registerWorld(t)
	var alpha event.Schedule
	alpha = append(alpha, acc(rs[0], 0)...)
	alpha = append(alpha, acc(ws[0], 1)...)
	alpha = append(alpha, acc(rs[1], 1)...)
	alpha = append(alpha, acc(ws[1], 2)...)
	alpha = append(alpha, acc(rs[2], 2)...)
	if !IsSchedule(st, "X", alpha) {
		t.Fatal("setup: alpha should be a schedule")
	}
	// Remove every read access's operations (CREATEs and read
	// REQUEST_COMMITs are transparent by the semantic conditions).
	beta := alpha.Filter(func(e event.Event) bool { return st.IsWriteAccess(e.T) })
	if err := event.WFObject(beta, st, "X"); err != nil {
		t.Fatalf("Lemma 17: filtered schedule ill-formed: %v", err)
	}
	if !IsSchedule(st, "X", beta) {
		t.Fatal("Lemma 17: filtered sequence should be a schedule")
	}
	if !Equieffective(st, "X", alpha, beta, probes(2)) {
		t.Fatal("Lemma 17: filtered schedule should be equieffective")
	}
}
