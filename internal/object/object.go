// Package object implements basic object automata (§3.2) and the
// equieffectiveness/transparency test harness (§4).
//
// A basic object follows the paper's §4.3 example: its state is a set of
// pending accesses plus an instance of an abstract data type. CREATE(T)
// adds T to pending; at any time a pending T may be chosen, its operation
// applied to the instance (atomically yielding the return value), and
// REQUEST_COMMIT(T,v) output.
//
// Because the data types in internal/adt are deterministic, whether a
// sequence is a schedule of the object — and which values responses carry —
// is decidable by replay, which is what Replay does. The equieffectiveness
// of two schedules (§4.1: indistinguishable by any later well-formed
// continuation) is tested by probing with continuations.
package object

import (
	"fmt"

	"nestedtx/internal/adt"
	"nestedtx/internal/event"
	"nestedtx/internal/tree"
)

// Basic is a basic object automaton for object x of system type st.
type Basic struct {
	st    *event.SystemType
	x     string
	state adt.State
	// pending holds created-but-unresponded accesses in creation order.
	pending []tree.TID
	// done records accesses that have been responded to.
	done map[tree.TID]bool
	// created records accesses that have been created.
	created map[tree.TID]bool
}

// New returns a basic object automaton for x in its initial state.
func New(st *event.SystemType, x string) (*Basic, error) {
	init, ok := st.ObjectInitial(x)
	if !ok {
		return nil, fmt.Errorf("object: %q not defined in system type", x)
	}
	return &Basic{
		st:      st,
		x:       x,
		state:   init,
		done:    make(map[tree.TID]bool),
		created: make(map[tree.TID]bool),
	}, nil
}

// Name returns the object's name.
func (b *Basic) Name() string { return b.x }

// State returns the current data-type instance.
func (b *Basic) State() adt.State { return b.state }

// Pending returns the pending accesses in creation order.
func (b *Basic) Pending() []tree.TID {
	out := make([]tree.TID, len(b.pending))
	copy(out, b.pending)
	return out
}

// Create handles the input operation CREATE(t). Inputs are always enabled
// (the Input Condition); Create returns an error only when t is not an
// access to this object or the input violates well-formedness, which the
// environment is required to preserve.
func (b *Basic) Create(t tree.TID) error {
	a, ok := b.st.AccessInfo(t)
	if !ok || a.Object != b.x {
		return fmt.Errorf("object %s: CREATE(%s): not an access to this object", b.x, t)
	}
	if b.created[t] {
		return fmt.Errorf("object %s: CREATE(%s): duplicate create (ill-formed input)", b.x, t)
	}
	b.created[t] = true
	b.pending = append(b.pending, t)
	return nil
}

// Respond performs the output REQUEST_COMMIT(t,v) for a pending access t:
// it applies t's operation to the instance and returns the response event.
func (b *Basic) Respond(t tree.TID) (event.Event, error) {
	if !b.created[t] || b.done[t] {
		return event.Event{}, fmt.Errorf("object %s: REQUEST_COMMIT for %s not enabled (pending required)", b.x, t)
	}
	a, _ := b.st.AccessInfo(t)
	next, v := a.Op.Apply(b.state)
	b.state = next
	b.done[t] = true
	for i, p := range b.pending {
		if p == t {
			b.pending = append(b.pending[:i], b.pending[i+1:]...)
			break
		}
	}
	return event.Event{Kind: event.RequestCommit, T: t, Value: v}, nil
}

// Step applies one event of the object's signature, checking that it is a
// legal step: CREATE is applied as an input; REQUEST_COMMIT(t,v) is legal
// only if t is pending and replaying t's operation yields exactly v.
func (b *Basic) Step(e event.Event) error {
	switch e.Kind {
	case event.Create:
		return b.Create(e.T)
	case event.RequestCommit:
		if !b.created[e.T] || b.done[e.T] {
			return fmt.Errorf("object %s: %s: access not pending", b.x, e)
		}
		a, ok := b.st.AccessInfo(e.T)
		if !ok || a.Object != b.x {
			return fmt.Errorf("object %s: %s: not an access to this object", b.x, e)
		}
		next, v := a.Op.Apply(b.state)
		if v != e.Value {
			return fmt.Errorf("object %s: %s: value mismatch (object would return %v)", b.x, e, v)
		}
		b.state = next
		b.done[e.T] = true
		for i, p := range b.pending {
			if p == e.T {
				b.pending = append(b.pending[:i], b.pending[i+1:]...)
				break
			}
		}
		return nil
	default:
		return fmt.Errorf("object %s: %s: not an operation of a basic object", b.x, e)
	}
}

// Replay checks whether s is a schedule of object x (s should be the
// projection at x). It returns the automaton state reached, or an error
// describing the first illegal step.
func Replay(st *event.SystemType, x string, s event.Schedule) (*Basic, error) {
	b, err := New(st, x)
	if err != nil {
		return nil, err
	}
	for i, e := range s {
		if err := b.Step(e); err != nil {
			return nil, fmt.Errorf("object: replay step %d: %w", i, err)
		}
	}
	return b, nil
}

// IsSchedule reports whether s is a schedule of object x.
func IsSchedule(st *event.SystemType, x string, s event.Schedule) bool {
	_, err := Replay(st, x, s)
	return err == nil
}

// Equieffective tests whether schedules alpha and beta of object x are
// equieffective (§4.1) with respect to the given probe continuations: for
// every probe φ such that both αφ and βφ are well-formed, αφ is a schedule
// iff βφ is. Probes that would make either side ill-formed are skipped, per
// the definition. The test is sound but (like any testing of a universally
// quantified property) complete only relative to the probe set.
func Equieffective(st *event.SystemType, x string, alpha, beta event.Schedule, probes []event.Schedule) bool {
	for _, phi := range probes {
		ac := append(alpha.Clone(), phi...)
		bc := append(beta.Clone(), phi...)
		if event.WFObject(ac, st, x) != nil || event.WFObject(bc, st, x) != nil {
			continue
		}
		if IsSchedule(st, x, ac) != IsSchedule(st, x, bc) {
			return false
		}
	}
	return true
}

// Transparent tests whether the final event π of schedule alphaPi is
// transparent after its prefix (§4.1): απ must be equieffective to α, with
// respect to the probes — later operations cannot detect whether π
// happened. alphaPi must be a well-formed schedule of x.
func Transparent(st *event.SystemType, x string, alphaPi event.Schedule, probes []event.Schedule) bool {
	if len(alphaPi) == 0 {
		return true
	}
	alpha := alphaPi[:len(alphaPi)-1]
	return Equieffective(st, x, alphaPi, alpha, probes)
}

// Clone returns a deep copy of the automaton, for search algorithms that
// need to backtrack. States are immutable, so only the bookkeeping is
// copied.
func (b *Basic) Clone() *Basic {
	c := &Basic{
		st:      b.st,
		x:       b.x,
		state:   b.state,
		pending: append([]tree.TID(nil), b.pending...),
		done:    make(map[tree.TID]bool, len(b.done)),
		created: make(map[tree.TID]bool, len(b.created)),
	}
	for k, v := range b.done {
		c.done[k] = v
	}
	for k, v := range b.created {
		c.created[k] = v
	}
	return c
}
