package object

import (
	"math/rand"
	"testing"
	"testing/quick"

	"nestedtx/internal/adt"
	"nestedtx/internal/event"
	"nestedtx/internal/tree"
)

// regType builds a register object X with nW write accesses and nR read
// accesses, all children of T0.0.
func regType(t testing.TB, nW, nR int) (*event.SystemType, []tree.TID, []tree.TID) {
	t.Helper()
	st := event.NewSystemType()
	st.DefineObject("X", adt.NewRegister(int64(0)))
	var ws, rs []tree.TID
	parent := tree.TID("T0.0")
	for i := 0; i < nW; i++ {
		id := parent.Child(i)
		st.MustDefineAccess(id, "X", adt.RegWrite{V: int64(i + 1)})
		ws = append(ws, id)
	}
	for i := 0; i < nR; i++ {
		id := parent.Child(nW + i)
		st.MustDefineAccess(id, "X", adt.RegRead{})
		rs = append(rs, id)
	}
	return st, ws, rs
}

func TestBasicLifecycle(t *testing.T) {
	st, ws, _ := regType(t, 2, 0)
	b, err := New(st, "X")
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Create(ws[0]); err != nil {
		t.Fatal(err)
	}
	if err := b.Create(ws[0]); err == nil {
		t.Fatal("duplicate create must fail")
	}
	if len(b.Pending()) != 1 {
		t.Fatal("one pending access expected")
	}
	e, err := b.Respond(ws[0])
	if err != nil {
		t.Fatal(err)
	}
	if e.Kind != event.RequestCommit || e.Value != int64(1) {
		t.Fatalf("response %s", e)
	}
	if _, err := b.Respond(ws[0]); err == nil {
		t.Fatal("double respond must fail")
	}
	if _, err := b.Respond(ws[1]); err == nil {
		t.Fatal("respond without create must fail")
	}
	if b.State().(adt.Register).V != int64(1) {
		t.Fatal("state not advanced")
	}
	if b.Name() != "X" {
		t.Fatal("name")
	}
}

func TestReplayValueChecking(t *testing.T) {
	st, ws, _ := regType(t, 1, 0)
	good := event.Schedule{
		{Kind: event.Create, T: ws[0]},
		{Kind: event.RequestCommit, T: ws[0], Value: int64(1)},
	}
	if !IsSchedule(st, "X", good) {
		t.Fatal("good schedule rejected")
	}
	bad := event.Schedule{
		{Kind: event.Create, T: ws[0]},
		{Kind: event.RequestCommit, T: ws[0], Value: int64(999)},
	}
	if IsSchedule(st, "X", bad) {
		t.Fatal("wrong value accepted")
	}
}

// probesFor builds probe continuations from the accesses not yet used.
func probesFor(st *event.SystemType, ids []tree.TID) []event.Schedule {
	var probes []event.Schedule
	for _, id := range ids {
		a, _ := st.AccessInfo(id)
		_, v := a.Op.Apply(adt.NewRegister(int64(0)))
		_ = v
		probes = append(probes, event.Schedule{
			{Kind: event.Create, T: id},
			{Kind: event.RequestCommit, T: id, Value: int64(0)},
		})
		probes = append(probes, event.Schedule{
			{Kind: event.Create, T: id},
		})
	}
	return probes
}

// TestSemanticCondition3 — REQUEST_COMMITs of read accesses are
// transparent: appending a read response leaves the object equieffective.
func TestSemanticCondition3(t *testing.T) {
	st, ws, rs := regType(t, 3, 3)
	alpha := event.Schedule{
		{Kind: event.Create, T: ws[0]},
		{Kind: event.RequestCommit, T: ws[0], Value: int64(1)},
		{Kind: event.Create, T: rs[0]},
		{Kind: event.RequestCommit, T: rs[0], Value: int64(1)},
	}
	// Probes read and write through the remaining accesses.
	var probes []event.Schedule
	probes = append(probes, event.Schedule{
		{Kind: event.Create, T: rs[1]},
		{Kind: event.RequestCommit, T: rs[1], Value: int64(1)},
	})
	probes = append(probes, event.Schedule{
		{Kind: event.Create, T: ws[1]},
		{Kind: event.RequestCommit, T: ws[1], Value: int64(2)},
		{Kind: event.Create, T: rs[2]},
		{Kind: event.RequestCommit, T: rs[2], Value: int64(2)},
	})
	if !Transparent(st, "X", alpha, probes) {
		t.Fatal("read REQUEST_COMMIT must be transparent")
	}
	// A write REQUEST_COMMIT is NOT transparent: later reads see it.
	alphaW := event.Schedule{
		{Kind: event.Create, T: rs[0]},
		{Kind: event.RequestCommit, T: rs[0], Value: int64(0)},
		{Kind: event.Create, T: ws[0]},
		{Kind: event.RequestCommit, T: ws[0], Value: int64(1)},
	}
	probesW := []event.Schedule{{
		{Kind: event.Create, T: rs[1]},
		{Kind: event.RequestCommit, T: rs[1], Value: int64(0)}, // pre-write value
	}}
	if Transparent(st, "X", alphaW, probesW) {
		t.Fatal("write REQUEST_COMMIT must not be transparent (reads can detect it)")
	}
}

// TestSemanticConditions1and2 — CREATE operations are transparent, and
// when an access was created is not detectable.
func TestSemanticConditions1and2(t *testing.T) {
	st, ws, rs := regType(t, 2, 2)
	// Condition 1: appending CREATE(T) is equieffective to not appending.
	alpha := event.Schedule{
		{Kind: event.Create, T: ws[0]},
		{Kind: event.RequestCommit, T: ws[0], Value: int64(1)},
		{Kind: event.Create, T: rs[0]},
	}
	probes := []event.Schedule{{
		{Kind: event.Create, T: rs[1]},
		{Kind: event.RequestCommit, T: rs[1], Value: int64(1)},
	}}
	if !Transparent(st, "X", alpha, probes) {
		t.Fatal("CREATE must be transparent")
	}
	// Condition 2: α1 CREATE(T) α2 equieffective to α1 α2 CREATE(T).
	early := event.Schedule{
		{Kind: event.Create, T: rs[0]},
		{Kind: event.Create, T: ws[0]},
		{Kind: event.RequestCommit, T: ws[0], Value: int64(1)},
	}
	late := event.Schedule{
		{Kind: event.Create, T: ws[0]},
		{Kind: event.RequestCommit, T: ws[0], Value: int64(1)},
		{Kind: event.Create, T: rs[0]},
	}
	probes2 := []event.Schedule{
		{{Kind: event.RequestCommit, T: rs[0], Value: int64(1)}},
		{{Kind: event.Create, T: rs[1]}, {Kind: event.RequestCommit, T: rs[1], Value: int64(1)}},
	}
	if !Equieffective(st, "X", early, late, probes2) {
		t.Fatal("CREATE placement must be undetectable")
	}
}

// TestLemma20 — write-equal well-formed schedules are equieffective
// (property-tested over random interleavings of a register object).
func TestLemma20WriteEqualImpliesEquieffective(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	st, ws, rs := regType(t, 4, 4)
	f := func() bool {
		// Build a random schedule: writes in fixed order, reads sprinkled.
		var alpha event.Schedule
		reads := append([]tree.TID(nil), rs[:2]...)
		writes := append([]tree.TID(nil), ws[:2]...)
		cur := int64(0)
		for len(reads) > 0 || len(writes) > 0 {
			if len(writes) == 0 || (len(reads) > 0 && r.Intn(2) == 0) {
				id := reads[0]
				reads = reads[1:]
				alpha = append(alpha,
					event.Event{Kind: event.Create, T: id},
					event.Event{Kind: event.RequestCommit, T: id, Value: cur})
			} else {
				id := writes[0]
				writes = writes[1:]
				a, _ := st.AccessInfo(id)
				_, v := a.Op.Apply(adt.NewRegister(cur))
				cur = v.(int64)
				alpha = append(alpha,
					event.Event{Kind: event.Create, T: id},
					event.Event{Kind: event.RequestCommit, T: id, Value: v})
			}
		}
		// beta: same writes, reads removed entirely (write-equal).
		beta := alpha.Filter(func(e event.Event) bool {
			return st.IsWriteAccess(e.T)
		})
		if !event.WriteEqual(st, alpha, beta) {
			return false
		}
		probes := []event.Schedule{
			{{Kind: event.Create, T: rs[2]}, {Kind: event.RequestCommit, T: rs[2], Value: cur}},
			{{Kind: event.Create, T: ws[2]}, {Kind: event.RequestCommit, T: ws[2], Value: int64(3)}},
			{{Kind: event.Create, T: rs[3]}, {Kind: event.RequestCommit, T: rs[3], Value: cur + 100}}, // wrong value probe
		}
		return Equieffective(st, "X", alpha, beta, probes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEquieffectiveDetectsDifference(t *testing.T) {
	st, ws, rs := regType(t, 2, 1)
	a := event.Schedule{
		{Kind: event.Create, T: ws[0]},
		{Kind: event.RequestCommit, T: ws[0], Value: int64(1)},
	}
	b := event.Schedule{
		{Kind: event.Create, T: ws[1]},
		{Kind: event.RequestCommit, T: ws[1], Value: int64(2)},
	}
	probes := []event.Schedule{{
		{Kind: event.Create, T: rs[0]},
		{Kind: event.RequestCommit, T: rs[0], Value: int64(1)},
	}}
	if Equieffective(st, "X", a, b, probes) {
		t.Fatal("different final values must be detected")
	}
}

func TestNewUnknownObject(t *testing.T) {
	st := event.NewSystemType()
	if _, err := New(st, "nope"); err == nil {
		t.Fatal("unknown object must fail")
	}
	if _, err := Replay(st, "nope", nil); err == nil {
		t.Fatal("replay of unknown object must fail")
	}
}
