// Package snap is the committed-version store behind read-only snapshot
// transactions: a multi-version map from object name to the chain of
// committed-to-root states the object has passed through, each tagged
// with the monotone sequence number of the top-level commit that
// installed it.
//
// The store is fed from inside the runtime's top-level commit sequence,
// *before* the lock manager releases the committing transaction's locks.
// Under strict locking any conflicting successor is granted — and so
// published — strictly after us, which makes publication order agree
// with the per-object conflict order (and, on a durable manager, with
// WAL order). A reader that pins sequence number s therefore observes
// exactly the committed prefix of the serial history up to s: all of a
// transaction's updates or none of them, never a tentative version, and
// never a write that later aborts (aborted transactions are not
// published).
//
// Readers never touch the lock manager: Acquire pins the current
// sequence number under the store's read-write mutex and every read is
// a binary search over one object's version chain. Chains are trimmed
// on publication down to the oldest version still reachable from a live
// pin, so retained history is bounded by reader lifetimes, not run
// length.
package snap

import (
	"fmt"
	"sort"
	"sync"

	"nestedtx/internal/adt"
)

// PubEntry is one recorded publication: the versions a committing
// top-level transaction installed and the sequence number it was
// assigned. The log (enabled via New's record argument) is consumed by
// the snapshot extension of the Theorem-34 checker.
type PubEntry struct {
	Seq     uint64
	Top     string
	Updates map[string]adt.State
}

// version is one committed state of an object, visible to pins ≥ Seq.
type version struct {
	seq uint64
	st  adt.State
}

// Store is the committed-version store. It is safe for concurrent use.
type Store struct {
	mu   sync.RWMutex
	seq  uint64 // sequence number of the latest publication
	objs map[string][]version
	pins map[uint64]int // live pin refcounts by pinned seq
	rec  bool
	log  []PubEntry
}

// New returns an empty store. With record set, every publication is
// appended to a log retrievable via Log — unbounded, like the event
// recorder, so meant for verification runs, not production.
func New(record bool) *Store {
	return &Store{
		objs: make(map[string][]version),
		pins: make(map[uint64]int),
		rec:  record,
	}
}

// Base registers object x with its initial committed state, visible to
// pins at or above the current sequence number — a pin taken before the
// registration correctly fails to read x.
func (s *Store) Base(x string, st adt.State) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.objs[x]; dup {
		panic("snap: object " + x + " re-based")
	}
	s.objs[x] = []version{{seq: s.seq, st: st}}
}

// Publish atomically installs the new committed states of one top-level
// transaction and returns the sequence number it was assigned. All of
// the transaction's versions become visible at once: a pin either sees
// the whole transaction or none of it.
func (s *Store) Publish(top string, updates map[string]adt.State) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	floor := s.minPinLocked()
	for x, st := range updates {
		chain := append(s.objs[x], version{seq: s.seq, st: st})
		s.objs[x] = trim(chain, floor)
	}
	if s.rec {
		cp := make(map[string]adt.State, len(updates))
		for x, st := range updates {
			cp[x] = st
		}
		s.log = append(s.log, PubEntry{Seq: s.seq, Top: top, Updates: cp})
	}
	return s.seq
}

// minPinLocked returns the lowest live pinned sequence number, or the
// current seq when no pins are live. Caller holds s.mu.
func (s *Store) minPinLocked() uint64 {
	min := s.seq
	for p := range s.pins {
		if p < min {
			min = p
		}
	}
	return min
}

// trim drops versions no pin can reach: everything strictly below the
// latest version at or below floor (which stays, as the floor pin's
// view of the object).
func trim(chain []version, floor uint64) []version {
	keep := 0
	for i, v := range chain {
		if v.seq <= floor {
			keep = i
		}
	}
	if keep == 0 {
		return chain
	}
	return append(chain[:0], chain[keep:]...)
}

// Seq returns the sequence number of the latest publication.
func (s *Store) Seq() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.seq
}

// Pin is a live reference to one sequence number; reads through it see
// the committed prefix up to that publication. Release it when done so
// the store can trim history.
type Pin struct {
	s    *Store
	seq  uint64
	once sync.Once
}

// Acquire pins the current sequence number.
func (s *Store) Acquire() *Pin {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pins[s.seq]++
	return &Pin{s: s, seq: s.seq}
}

// Seq returns the pinned sequence number.
func (p *Pin) Seq() uint64 { return p.seq }

// Read returns object x's latest committed state at or below the pinned
// sequence number. It fails when x was not registered at the pin point.
func (p *Pin) Read(x string) (adt.State, error) {
	p.s.mu.RLock()
	defer p.s.mu.RUnlock()
	chain := p.s.objs[x]
	// Latest version with seq ≤ p.seq.
	i := sort.Search(len(chain), func(i int) bool { return chain[i].seq > p.seq }) - 1
	if i < 0 {
		return nil, fmt.Errorf("snap: object %q has no version at snapshot %d", x, p.seq)
	}
	return chain[i].st, nil
}

// Release drops the pin. Idempotent.
func (p *Pin) Release() {
	p.once.Do(func() {
		p.s.mu.Lock()
		defer p.s.mu.Unlock()
		if p.s.pins[p.seq]--; p.s.pins[p.seq] <= 0 {
			delete(p.s.pins, p.seq)
		}
	})
}

// Pinned returns the number of live pins.
func (s *Store) Pinned() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, c := range s.pins {
		n += c
	}
	return n
}

// Versions returns the total number of retained versions across all
// objects — what chain trimming is bounding. For tests and stats.
func (s *Store) Versions() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, chain := range s.objs {
		n += len(chain)
	}
	return n
}

// Log returns a snapshot of the publication log (nil unless the store
// was created with record set).
func (s *Store) Log() []PubEntry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]PubEntry(nil), s.log...)
}
