package snap

import (
	"fmt"
	"sync"
	"testing"

	"nestedtx/internal/adt"
)

func ctr(n int64) adt.State { return adt.Counter{N: n} }

func TestPublishAndRead(t *testing.T) {
	s := New(false)
	s.Base("x", ctr(0))
	s.Base("y", ctr(100))

	p0 := s.Acquire()
	seq1 := s.Publish("T1", map[string]adt.State{"x": ctr(1)})
	if seq1 != 1 {
		t.Fatalf("first publication got seq %d, want 1", seq1)
	}
	p1 := s.Acquire()
	s.Publish("T2", map[string]adt.State{"x": ctr(2), "y": ctr(200)})
	p2 := s.Acquire()

	cases := []struct {
		pin  *Pin
		x, y int64
	}{
		{p0, 0, 100},
		{p1, 1, 100},
		{p2, 2, 200},
	}
	for i, c := range cases {
		for obj, want := range map[string]int64{"x": c.x, "y": c.y} {
			st, err := c.pin.Read(obj)
			if err != nil {
				t.Fatalf("pin %d read %s: %v", i, obj, err)
			}
			if got := st.(adt.Counter).N; got != want {
				t.Errorf("pin %d (seq %d) read %s = %d, want %d", i, c.pin.Seq(), obj, got, want)
			}
		}
	}
	p0.Release()
	p1.Release()
	p2.Release()
}

func TestPinIsolatedFromLaterPublishes(t *testing.T) {
	s := New(false)
	s.Base("x", ctr(0))
	p := s.Acquire()
	for i := 1; i <= 10; i++ {
		s.Publish("T", map[string]adt.State{"x": ctr(int64(i))})
	}
	st, err := p.Read("x")
	if err != nil {
		t.Fatal(err)
	}
	if got := st.(adt.Counter).N; got != 0 {
		t.Fatalf("pinned read moved: got %d, want 0", got)
	}
	p.Release()
}

func TestLateRegistrationInvisibleToOlderPins(t *testing.T) {
	s := New(false)
	s.Base("x", ctr(0))
	p := s.Acquire()
	s.Publish("T1", map[string]adt.State{"x": ctr(1)})
	s.Base("late", ctr(7))
	if _, err := p.Read("late"); err == nil {
		t.Fatal("pin taken before registration read the late object")
	}
	q := s.Acquire()
	st, err := q.Read("late")
	if err != nil {
		t.Fatal(err)
	}
	if got := st.(adt.Counter).N; got != 7 {
		t.Fatalf("late object read %d, want 7", got)
	}
	p.Release()
	q.Release()
}

func TestTrimBoundedByLivePin(t *testing.T) {
	s := New(false)
	s.Base("x", ctr(0))
	p := s.Acquire() // pins seq 0 forever (until released)
	for i := 1; i <= 100; i++ {
		s.Publish("T", map[string]adt.State{"x": ctr(int64(i))})
	}
	if got := s.Versions(); got != 101 {
		t.Fatalf("with a seq-0 pin live, %d versions retained, want all 101", got)
	}
	p.Release()
	// Next publish trims everything below the (now unpinned) floor.
	s.Publish("T", map[string]adt.State{"x": ctr(101)})
	if got := s.Versions(); got > 2 {
		t.Fatalf("after release, %d versions retained, want ≤ 2", got)
	}
	// The latest state survives the trim.
	q := s.Acquire()
	st, err := q.Read("x")
	if err != nil {
		t.Fatal(err)
	}
	if got := st.(adt.Counter).N; got != 101 {
		t.Fatalf("post-trim read %d, want 101", got)
	}
	q.Release()
}

func TestReleaseIdempotent(t *testing.T) {
	s := New(false)
	s.Base("x", ctr(0))
	p := s.Acquire()
	q := s.Acquire()
	p.Release()
	p.Release()
	if got := s.Pinned(); got != 1 {
		t.Fatalf("double release corrupted the pin count: %d live, want 1", got)
	}
	q.Release()
	if got := s.Pinned(); got != 0 {
		t.Fatalf("%d pins live after releasing all, want 0", got)
	}
}

func TestPublicationLog(t *testing.T) {
	s := New(true)
	s.Base("x", ctr(0))
	s.Publish("T1", map[string]adt.State{"x": ctr(1)})
	s.Publish("T2", map[string]adt.State{"x": ctr(2)})
	log := s.Log()
	if len(log) != 2 {
		t.Fatalf("log has %d entries, want 2", len(log))
	}
	for i, e := range log {
		if e.Seq != uint64(i+1) {
			t.Errorf("log[%d].Seq = %d, want %d", i, e.Seq, i+1)
		}
	}
	if log[0].Top != "T1" || log[1].Top != "T2" {
		t.Errorf("log tops = %s, %s; want T1, T2", log[0].Top, log[1].Top)
	}
	if got := log[1].Updates["x"].(adt.Counter).N; got != 2 {
		t.Errorf("log[1] update = %d, want 2", got)
	}
}

func TestConcurrentPublishRead(t *testing.T) {
	s := New(false)
	const objs = 8
	for i := 0; i < objs; i++ {
		s.Base(fmt.Sprintf("x%d", i), ctr(0))
	}
	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	// Writer: each publication bumps every object to the same value, so
	// any pinned read must see one consistent cut (all objects equal).
	writers.Add(1)
	go func() {
		defer writers.Done()
		for v := int64(1); ; v++ {
			select {
			case <-stop:
				return
			default:
			}
			up := make(map[string]adt.State, objs)
			for i := 0; i < objs; i++ {
				up[fmt.Sprintf("x%d", i)] = ctr(v)
			}
			s.Publish("T", up)
		}
	}()
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for k := 0; k < 200; k++ {
				p := s.Acquire()
				var first int64 = -1
				for i := 0; i < objs; i++ {
					st, err := p.Read(fmt.Sprintf("x%d", i))
					if err != nil {
						t.Error(err)
						break
					}
					n := st.(adt.Counter).N
					if first == -1 {
						first = n
					} else if n != first {
						t.Errorf("torn snapshot at seq %d: x0=%d x%d=%d", p.Seq(), first, i, n)
						break
					}
				}
				p.Release()
			}
		}()
	}
	readers.Wait()
	close(stop)
	writers.Wait()
	if got := s.Pinned(); got != 0 {
		t.Fatalf("%d pins leaked", got)
	}
}
