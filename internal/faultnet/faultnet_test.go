package faultnet

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strings"
	"testing"
	"time"
)

// echoServer accepts connections and echoes lines back, newline for
// newline — enough structure for the proxy's frame counting (two lines
// per frame, like the wire protocol).
func echoServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				r := bufio.NewReader(conn)
				for {
					line, err := r.ReadString('\n')
					if err != nil {
						return
					}
					if _, err := io.WriteString(conn, line); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return ln.Addr().String()
}

func dialProxy(t *testing.T, p *Proxy) net.Conn {
	t.Helper()
	conn, err := net.DialTimeout("tcp", p.Addr(), 5*time.Second)
	if err != nil {
		t.Fatalf("dial proxy: %v", err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

// sendFrame writes one two-line "frame" and reads the echo of both
// lines back.
func sendFrame(conn net.Conn, i int) error {
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	msg := fmt.Sprintf("hdr%d\npayload%d\n", i, i)
	if _, err := io.WriteString(conn, msg); err != nil {
		return err
	}
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(conn, buf); err != nil {
		return err
	}
	if string(buf) != msg {
		return fmt.Errorf("echo mismatch: sent %q got %q", msg, buf)
	}
	return nil
}

func TestTransparentForwarding(t *testing.T) {
	addr := echoServer(t)
	p, err := New(addr, Faults{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	conn := dialProxy(t, p)
	for i := 0; i < 10; i++ {
		if err := sendFrame(conn, i); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
	}
	if acc, cut := p.Stats(); acc != 1 || cut != 0 {
		t.Fatalf("stats accepted=%d cut=%d, want 1/0", acc, cut)
	}
}

func TestLatencyAndChunking(t *testing.T) {
	addr := echoServer(t)
	// 5ms per chunk, 4-byte chunks: a ~14-byte frame takes >= 4 chunks
	// each way, so a round trip costs well over 20ms.
	p, err := New(addr, Faults{Latency: 5 * time.Millisecond, Jitter: time.Millisecond, ByteChunk: 4}, 42)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	conn := dialProxy(t, p)
	start := time.Now()
	if err := sendFrame(conn, 0); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("round trip took %v; chunked latency not applied", elapsed)
	}
}

func TestCutAfterFrames(t *testing.T) {
	addr := echoServer(t)
	p, err := New(addr, Faults{CutAfterFrames: 3}, 7)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	conn := dialProxy(t, p)
	// First three frames pass (the cut fires after the 3rd is forwarded;
	// its echo may or may not make it back, so stop asserting at 2).
	for i := 0; i < 2; i++ {
		if err := sendFrame(conn, i); err != nil {
			t.Fatalf("frame %d before cut: %v", i, err)
		}
	}
	// Keep sending: the connection must die quickly.
	var failed error
	for i := 2; i < 50 && failed == nil; i++ {
		failed = sendFrame(conn, i)
	}
	if failed == nil {
		t.Fatal("connection survived past CutAfterFrames")
	}
	if _, cut := p.Stats(); cut == 0 {
		t.Fatal("proxy did not count the cut")
	}
}

func TestPartitionAndHeal(t *testing.T) {
	addr := echoServer(t)
	p, err := New(addr, Faults{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	conn := dialProxy(t, p)
	if err := sendFrame(conn, 0); err != nil {
		t.Fatal(err)
	}

	p.Partition()
	// The live connection is severed...
	if err := sendFrame(conn, 1); err == nil {
		// The first write after a cut can be buffered; retry once.
		if err := sendFrame(conn, 2); err == nil {
			t.Fatal("live connection survived the partition")
		}
	}
	// ...and a new one is refused (accepted then reset, so reads fail).
	c2 := dialProxy(t, p)
	if err := sendFrame(c2, 0); err == nil {
		t.Fatal("new connection crossed the partition")
	}

	p.Heal()
	c3 := dialProxy(t, p)
	if err := sendFrame(c3, 0); err != nil {
		t.Fatalf("connection after heal: %v", err)
	}
	if p.Conns() == 0 {
		t.Fatal("healed connection not tracked")
	}
}

func TestStallAfterFrames(t *testing.T) {
	addr := echoServer(t)
	p, err := New(addr, Faults{StallAfterFrames: 1, StallFor: 60 * time.Millisecond}, 9)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	conn := dialProxy(t, p)
	if err := sendFrame(conn, 0); err != nil {
		t.Fatal(err)
	}
	// The client→server direction has now forwarded 1 frame: the next
	// frame is delayed by the stall (the stall happens after forwarding
	// frame 1, before frame 2's bytes move).
	start := time.Now()
	if err := sendFrame(conn, 1); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond {
		t.Fatalf("second frame took only %v; stall not applied", elapsed)
	}
}

func TestCloseSeversEverything(t *testing.T) {
	addr := echoServer(t)
	p, err := New(addr, Faults{}, 5)
	if err != nil {
		t.Fatal(err)
	}
	conn := dialProxy(t, p)
	if err := sendFrame(conn, 0); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := sendFrame(conn, 1); err == nil {
		if err := sendFrame(conn, 2); err == nil {
			t.Fatal("connection survived proxy Close")
		}
	}
	if err := p.Close(); err != nil {
		t.Fatalf("second close not idempotent: %v", err)
	}
	if !strings.Contains(p.Addr(), "127.0.0.1") {
		t.Fatalf("unexpected addr %q", p.Addr())
	}
}
