// Package faultnet is an in-process TCP fault-injection proxy for
// testing the network transaction stack under connection failures.
//
// A [Proxy] listens on a loopback address and forwards every accepted
// connection to a target address, applying a scripted [Faults] schedule
// to the forwarded byte stream: added per-frame latency with seeded
// jitter, byte-level chunking (so a frame arrives in dribbles), stalls
// after N frames, hard connection cuts (RST) after N client→server
// frames, and whole-proxy partitions that sever every live connection
// and refuse new ones until healed.
//
// The paper's model has no crashes ("our model does not yet include
// crashes", §1), but its Theorem 34 is proved for every non-orphan
// transaction — an abandoned network client is exactly the orphan
// scenario, so the server must reclaim a cut connection's locks and the
// surviving schedule must still verify. faultnet exists to drive that
// property under deterministic, reproducible failure schedules: all
// randomness (jitter) flows from the seed given to [New], and frame
// counting is derived from the wire framing itself (every frame is a
// header line plus a payload line, so two newlines delimit one frame).
//
// faultnet is test infrastructure: it lives under internal/ and is used
// by the server's fault-injection suite, the network soak test and
// txserver's -chaos self-test.
package faultnet

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"nestedtx/internal/dst/clock"
)

// Faults scripts the failure behaviour applied to each proxied
// connection. The zero value forwards faithfully (a transparent proxy).
type Faults struct {
	// Latency is added before each forwarded write, in both directions.
	Latency time.Duration
	// Jitter adds a seeded-random extra delay in [0, Jitter) on top of
	// Latency, so concurrent connections desynchronise reproducibly.
	Jitter time.Duration
	// ByteChunk > 0 forwards at most ByteChunk bytes per write, applying
	// Latency+Jitter per chunk — a byte-level stall that makes frames
	// arrive in dribbles and exercises partial-read handling.
	ByteChunk int
	// StallAfterFrames > 0 pauses a direction for StallFor once it has
	// forwarded that many frames, then resumes.
	StallAfterFrames int
	StallFor         time.Duration
	// CutAfterFrames > 0 hard-closes (RST where the platform allows) the
	// connection once the client→server direction has forwarded that
	// many frames — the mid-transaction "connection died" scenario.
	CutAfterFrames int
}

// Proxy is one listening fault-injection proxy. Create with [New].
type Proxy struct {
	target string
	faults Faults
	clk    clock.Clock
	ln     net.Listener
	done   chan struct{} // closed by Close; interrupts sleeps

	mu          sync.Mutex
	rng         *rand.Rand // seeded; guarded by mu
	conns       map[*proxyConn]struct{}
	partitioned bool
	closed      bool

	accepted uint64 // total connections accepted
	cut      uint64 // connections reset by fault script, CutAll or Partition
	wg       sync.WaitGroup
}

// New starts a proxy on a loopback address forwarding to target. All
// jitter randomness is derived from seed, so a failure schedule replays
// identically across runs.
func New(target string, faults Faults, seed int64) (*Proxy, error) {
	return NewWithClock(target, faults, seed, nil)
}

// NewWithClock is New with an injected time source for the proxy's fault
// delays (latency, jitter, stalls). nil means the wall clock; the
// deterministic simulator passes its virtual clock so injected latency
// is event-queue time.
func NewWithClock(target string, faults Faults, seed int64, clk clock.Clock) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("faultnet: listen: %w", err)
	}
	p := &Proxy{
		target: target,
		faults: faults,
		clk:    clock.Or(clk),
		ln:     ln,
		done:   make(chan struct{}),
		rng:    rand.New(rand.NewSource(seed)),
		conns:  make(map[*proxyConn]struct{}),
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's dial address.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Stats reports how many connections the proxy accepted and how many it
// reset (by script, CutAll or Partition).
func (p *Proxy) Stats() (accepted, cut uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.accepted, p.cut
}

// Conns returns the number of currently live proxied connections.
func (p *Proxy) Conns() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.conns)
}

// Close stops the proxy: the listener closes, every live connection is
// severed, and all forwarding goroutines are awaited.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	close(p.done)
	p.mu.Unlock()
	err := p.ln.Close()
	p.CutAll()
	p.wg.Wait()
	return err
}

// Partition severs every live connection and makes the proxy refuse new
// ones (accepted, then immediately reset) until [Proxy.Heal] — a full
// network partition between all clients and the server.
func (p *Proxy) Partition() {
	p.mu.Lock()
	p.partitioned = true
	p.mu.Unlock()
	p.CutAll()
}

// Heal ends a partition: new connections forward normally again.
// (Connections cut by the partition stay dead; clients must redial.)
func (p *Proxy) Heal() {
	p.mu.Lock()
	p.partitioned = false
	p.mu.Unlock()
}

// CutAll resets every currently live proxied connection once — the
// "switch rebooted" event. New connections are unaffected.
func (p *Proxy) CutAll() {
	p.mu.Lock()
	live := make([]*proxyConn, 0, len(p.conns))
	for c := range p.conns {
		live = append(live, c)
	}
	p.cut += uint64(len(live))
	p.mu.Unlock()
	for _, c := range live {
		c.reset()
	}
}

func (p *Proxy) isPartitioned() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.partitioned
}

// jitter draws a seeded random extra delay in [0, Jitter).
func (p *Proxy) jitter() time.Duration {
	if p.faults.Jitter <= 0 {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return time.Duration(p.rng.Int63n(int64(p.faults.Jitter)))
}

// sleep waits for d on the proxy clock, cut short if the proxy closes.
func (p *Proxy) sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	t := p.clk.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C():
	case <-p.done:
	}
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		p.mu.Lock()
		p.accepted++
		refuse := p.partitioned || p.closed
		if refuse {
			p.cut++
		}
		p.mu.Unlock()
		if refuse {
			hardClose(conn)
			continue
		}
		p.wg.Add(1)
		go p.serve(conn)
	}
}

// proxyConn is one proxied client↔server connection pair.
type proxyConn struct {
	client net.Conn
	server net.Conn
	once   sync.Once
}

// reset severs both halves abruptly (RST towards the client where the
// platform supports SO_LINGER 0).
func (c *proxyConn) reset() {
	c.once.Do(func() {
		hardClose(c.client)
		hardClose(c.server)
	})
}

// hardClose closes conn, asking TCP to send RST rather than FIN so the
// peer sees a genuine connection failure, not a clean shutdown.
func hardClose(conn net.Conn) {
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
	conn.Close()
}

func (p *Proxy) serve(client net.Conn) {
	defer p.wg.Done()
	server, err := net.DialTimeout("tcp", p.target, 10*time.Second)
	if err != nil {
		hardClose(client)
		return
	}
	c := &proxyConn{client: client, server: server}
	p.mu.Lock()
	if p.closed || p.partitioned {
		p.mu.Unlock()
		c.reset()
		return
	}
	p.conns[c] = struct{}{}
	p.mu.Unlock()
	defer func() {
		c.reset()
		p.mu.Lock()
		delete(p.conns, c)
		p.mu.Unlock()
	}()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		p.pipe(c, c.server, c.client, false) // server → client
	}()
	p.pipe(c, c.client, c.server, true) // client → server (counts for cuts)
	c.reset()                           // one direction died: sever the pair
	wg.Wait()
}

// pipe forwards src → dst applying the fault script. clientToServer
// marks the direction whose frame count drives CutAfterFrames. A frame
// is two newline-terminated lines (length header + payload), so
// frames = newlines/2.
func (p *Proxy) pipe(c *proxyConn, src, dst net.Conn, clientToServer bool) {
	f := p.faults
	buf := make([]byte, 32<<10)
	newlines := 0
	stalled := false
	for {
		if p.isPartitioned() {
			p.countCut()
			c.reset()
			return
		}
		n, err := src.Read(buf)
		if n > 0 {
			data := buf[:n]
			for len(data) > 0 {
				chunk := data
				if f.ByteChunk > 0 && len(chunk) > f.ByteChunk {
					chunk = chunk[:f.ByteChunk]
				}
				p.sleep(f.Latency + p.jitter())
				if _, werr := dst.Write(chunk); werr != nil {
					return
				}
				for _, b := range chunk {
					if b == '\n' {
						newlines++
					}
				}
				frames := newlines / 2
				if clientToServer && f.CutAfterFrames > 0 && frames >= f.CutAfterFrames {
					p.countCut()
					c.reset()
					return
				}
				if f.StallAfterFrames > 0 && f.StallFor > 0 && !stalled && frames >= f.StallAfterFrames {
					stalled = true
					p.sleep(f.StallFor)
				}
				data = data[len(chunk):]
			}
		}
		if err != nil {
			return
		}
	}
}

func (p *Proxy) countCut() {
	p.mu.Lock()
	p.cut++
	p.mu.Unlock()
}
