// Package wire defines the network protocol spoken between the nestedtx
// transaction server (internal/server) and its clients (package client).
//
// The protocol is a length-prefixed newline-JSON framing: every frame is
//
//	<decimal byte length of payload> '\n' <payload JSON> '\n'
//
// and every payload is a single JSON object — a [Request] on the
// client→server direction, a [Response] on the way back. The explicit
// length prefix bounds reads (see [MaxFrameSize]) and lets either end
// skip a frame it cannot parse; the trailing newline keeps captures
// greppable and makes the stream self-synchronising for humans.
//
// Requests and responses are matched by sequence number. The server
// answers every request with exactly one response; requests on one
// connection are processed in order. Operations, values and object
// states cross the wire in the tagged encoding of internal/adt's codec,
// so only the library's abstract data types are remotely accessible —
// the same restriction the schedule-persistence tools have.
package wire

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"nestedtx/internal/adt"
)

// MaxFrameSize bounds a single request frame's payload; frames
// advertising more are rejected without reading them.
const MaxFrameSize = 1 << 20

// MaxResponseSize bounds a single response frame's payload. Responses get
// a higher ceiling than requests because a STATE snapshot of a large
// object (a Table with many keys, say) can legitimately exceed the
// request limit; the server answers anything bigger still with a
// [CodeTooLarge] error instead of killing the session, and clients read
// response frames with this limit.
const MaxResponseSize = 8 << 20

// Request types. Each carries the fields noted; unused fields are
// omitted from the JSON.
const (
	TBegin   = "BEGIN"   // open a top-level transaction → Tx handle
	TSub     = "SUB"     // Tx: open a subtransaction of handle Tx → new handle
	TRead    = "READ"    // Tx, Obj, Op: read-only access
	TWrite   = "WRITE"   // Tx, Obj, Op: mutating access
	TCommit  = "COMMIT"  // Tx: commit the handle
	TAbort   = "ABORT"   // Tx: abort the handle
	TState   = "STATE"   // Obj: committed-to-root state snapshot
	TStats   = "STATS"   // server + lock-manager counters
	TMetrics = "METRICS" // latency quantiles, victim breakdown, gauges; Dump adds the trace ring
	TPing    = "PING"    // liveness / round-trip probe

	// Replication verbs (internal/repl). REPL_HELLO switches the
	// connection out of request/response into a push stream: the leader
	// answers with a hello [Repl] payload, then pushes snapshot/batch
	// frames while reading REPL_ACK requests (which get no responses).
	TReplHello  = "REPL_HELLO"  // Lsn: follower's resume point (its log's NextLSN)
	TReplAck    = "REPL_ACK"    // Lsn: follower's durable position (streaming mode only)
	TReplStatus = "REPL_STATUS" // replication positions and lag, role-dependent
	TPromote    = "PROMOTE"     // follower only: stop following, recover, verify, accept writes
)

// Response error codes (Response.Code when OK is false).
const (
	CodeDeadlock   = "deadlock"    // the transaction was a deadlock victim; abort and retry
	CodeAborted    = "aborted"     // the transaction is (already) aborted
	CodeTimeout    = "timeout"     // the per-request deadline expired; the transaction was aborted
	CodeBusy       = "busy"        // connection limit reached; try another server or later
	CodeShutdown   = "shutdown"    // the server is draining
	CodeUnknownTx  = "unknown_tx"  // no such transaction handle on this session
	CodeBadRequest = "bad_request" // malformed or ill-sequenced request
	CodeTooLarge   = "too_large"   // the response would exceed MaxResponseSize; session stays usable
	CodeInternal   = "internal"    // server-side failure
	CodeReadOnly   = "read_only"   // this server is a replication follower; writes go to its leader
	// CodeNotConfigured answers a request for a subsystem this server
	// does not run (e.g. REPL_STATUS on a volatile, non-replicating
	// manager). Distinct from CodeBadRequest so clients probing for a
	// capability can tell "well-formed but absent here" from "you sent
	// garbage".
	CodeNotConfigured = "not_configured"
)

// Request is one client→server frame.
type Request struct {
	Seq  uint64          `json:"seq"`
	Type string          `json:"type"`
	Tx   uint64          `json:"tx,omitempty"`   // transaction handle (SUB/READ/WRITE/COMMIT/ABORT)
	Obj  string          `json:"obj,omitempty"`  // object name (READ/WRITE/STATE)
	Op   json.RawMessage `json:"op,omitempty"`   // adt-encoded operation (READ/WRITE)
	Dump bool            `json:"dump,omitempty"` // METRICS: include the event trace ring
	Lsn  uint64          `json:"lsn,omitempty"`  // REPL_HELLO: resume point; REPL_ACK: durable position
	// ReadOnly on BEGIN opens a read-only snapshot transaction instead
	// of a locking one: it pins the server's current commit sequence
	// number and serves READs from committed versions without taking
	// locks. Followers accept it too (their snapshot store is fed by
	// the replication apply loop). WRITE and SUB on such a handle fail.
	ReadOnly bool `json:"read_only,omitempty"`
}

// Response is one server→client frame.
type Response struct {
	Seq        uint64          `json:"seq"`
	OK         bool            `json:"ok"`
	Code       string          `json:"code,omitempty"`
	Err        string          `json:"err,omitempty"`
	Tx         uint64          `json:"tx,omitempty"`          // new handle (BEGIN/SUB)
	TxID       string          `json:"txid,omitempty"`        // paper-tree name, e.g. "T0.3.1" (BEGIN/SUB); "S<n>" for snapshots
	Snap       uint64          `json:"snap,omitempty"`        // pinned commit seqno (read-only BEGIN)
	Value      json.RawMessage `json:"value,omitempty"`       // adt-encoded access result (READ/WRITE)
	State      json.RawMessage `json:"state,omitempty"`       // adt-encoded object state (STATE)
	Stats      *Stats          `json:"stats,omitempty"`       // STATS
	Metrics    *Metrics        `json:"metrics,omitempty"`     // METRICS
	Repl       *Repl           `json:"repl,omitempty"`        // REPL_HELLO reply and pushed stream frames
	ReplStatus *ReplStatus     `json:"repl_status,omitempty"` // REPL_STATUS
}

// Repl stream-frame kinds (Repl.Kind).
const (
	ReplHello    = "hello"    // REPL_HELLO reply: the negotiated resume point
	ReplSnapshot = "snapshot" // full-state install: the follower is below the leader's low-water mark
	ReplBatch    = "batch"    // a run of checksummed log records (Count 0 = heartbeat)
)

// Repl is one leader→follower replication stream frame, carried in a
// Response on a connection adopted via REPL_HELLO. Record payloads cross
// the wire in the WAL's own CRC32C framing (Frames holds concatenated
// frames, base64-coded by JSON), so the follower re-verifies every
// checksum before appending — a bit flipped in transit is caught exactly
// like a bit flipped on disk.
type Repl struct {
	Kind       string `json:"kind"`
	NextLSN    uint64 `json:"next_lsn,omitempty"`    // hello: resume point; snapshot: checkpoint LSN
	DurableLSN uint64 `json:"durable_lsn,omitempty"` // leader's durable mark at send time
	FirstLSN   uint64 `json:"first_lsn,omitempty"`   // batch: LSN of the first record in Frames
	Count      int    `json:"count,omitempty"`       // batch: records in Frames (0 = heartbeat)
	SentUnixNS int64  `json:"sent_unix_ns,omitempty"`
	Frames     []byte `json:"frames,omitempty"` // batch: concatenated CRC-framed records
	// States is the snapshot payload: every object's committed state in
	// the adt codec encoding, as of NextLSN.
	States map[string]json.RawMessage `json:"states,omitempty"`
}

// ReplFollower is one follower's position as the leader sees it.
type ReplFollower struct {
	Remote     string  `json:"remote"`
	AckLSN     uint64  `json:"ack_lsn"`     // all records below this are durable on the follower
	LagRecords uint64  `json:"lag_records"` // leader durable LSN − AckLSN
	LagSeconds float64 `json:"lag_seconds"` // time since the follower last made progress (0 when caught up)
}

// ReplStatus is the REPL_STATUS payload. Role decides which half is
// meaningful: a leader reports its log marks and per-follower lag, a
// follower reports its own applied position against the leader's durable
// mark.
type ReplStatus struct {
	Role          string `json:"role"` // "leader" | "follower"
	NextLSN       uint64 `json:"next_lsn"`
	DurableLSN    uint64 `json:"durable_lsn"`
	CheckpointLSN uint64 `json:"checkpoint_lsn"`

	Followers []ReplFollower `json:"followers,omitempty"` // leader

	Leader           string  `json:"leader,omitempty"` // follower: leader address
	LeaderDurableLSN uint64  `json:"leader_durable_lsn,omitempty"`
	LagRecords       uint64  `json:"lag_records,omitempty"`
	LagSeconds       float64 `json:"lag_seconds,omitempty"`
	Connected        bool    `json:"connected,omitempty"` // follower: stream currently up
}

// Stats is the STATS payload: the server's own counters plus the
// underlying lock manager's.
//
// Consistency contract: the server-side fields (sessions through
// deadlock_victims) form one atomic snapshot — they are captured under a
// single lock, so cross-counter invariants hold within a frame: every
// finished transaction was begun (commits + aborts <= tx_begun) and
// every begun transaction was requested (tx_begun <= requests). The
// lock-manager block is a separate snapshot taken immediately after and
// is internally consistent but may run slightly ahead of the server
// block.
type Stats struct {
	ActiveSessions  int64  `json:"active_sessions"`
	TotalSessions   uint64 `json:"total_sessions"`
	ReapedSessions  uint64 `json:"reaped_sessions"`
	RejectedConns   uint64 `json:"rejected_conns"`
	Requests        uint64 `json:"requests"`
	TxBegun         uint64 `json:"tx_begun"`
	Commits         uint64 `json:"commits"`
	Aborts          uint64 `json:"aborts"`
	DeadlockVictims uint64 `json:"deadlock_victims"`

	Acquires      uint64 `json:"lock_acquires"`
	Waits         uint64 `json:"lock_waits"`
	Deadlocks     uint64 `json:"lock_deadlocks"`
	CommitMoves   uint64 `json:"lock_commit_moves"`
	AbortReleases uint64 `json:"lock_abort_releases"`

	Wakeups         uint64 `json:"lock_wakeups"`
	SpuriousWakeups uint64 `json:"lock_spurious_wakeups"`
	MaxQueueDepth   uint64 `json:"lock_max_queue_depth"`

	LockShards      uint64 `json:"lock_shards"`                // shard count (configuration)
	LockEscalations uint64 `json:"lock_escalations,omitempty"` // all-shard deadlock walks

	// SnapshotTxs counts read-only snapshot transactions begun. They are
	// deliberately not folded into TxBegun/Commits: snapshot handles
	// never enter the lock manager, so keeping them separate preserves
	// the Commits + Aborts <= TxBegun accounting invariant.
	SnapshotTxs uint64 `json:"snapshot_txs,omitempty"`
}

// HistQ is one latency histogram summarised for the wire: totals plus
// quantile estimates. Quantiles are conservative upper bounds from the
// histogram's log-scale buckets, clamped to the observed maximum.
type HistQ struct {
	Count uint64 `json:"count"`
	SumNS int64  `json:"sum_ns"`
	P50NS int64  `json:"p50_ns"`
	P90NS int64  `json:"p90_ns"`
	P99NS int64  `json:"p99_ns"`
	MaxNS int64  `json:"max_ns"`
}

// TraceEntry is one ring-buffer trace event (METRICS with Dump).
type TraceEntry struct {
	Seq    uint64 `json:"seq"`
	AtUnix int64  `json:"at_unix_ns"`
	Kind   string `json:"kind"`
	T      string `json:"t"`
	Object string `json:"obj,omitempty"`
	DurNS  int64  `json:"dur_ns,omitempty"`
}

// Metrics is the METRICS payload: latency distributions, transaction
// outcomes, the victim breakdown by cause, instantaneous contention
// gauges and — when the request set Dump — the most recent trace
// entries (oldest first, capped so the frame stays under MaxFrameSize).
type Metrics struct {
	OpLatency HistQ `json:"op_latency"`
	TxLatency HistQ `json:"tx_latency"`
	LockWait  HistQ `json:"lock_wait"`

	TxCommits        uint64 `json:"tx_commits"`
	TxAborts         uint64 `json:"tx_aborts"`
	VictimsDeadlock  uint64 `json:"victims_deadlock"`
	VictimsCancelled uint64 `json:"victims_cancelled"`
	Victims          uint64 `json:"victims"`

	QueuedWaiters    int64 `json:"queued_waiters"`
	ContendedObjects int64 `json:"contended_objects"`
	// ShardQueued splits QueuedWaiters by lock shard (index == shard id).
	ShardQueued []int64 `json:"lock_shard_queued,omitempty"`

	// Durability block; all-zero on a non-durable server.
	FsyncLatency     HistQ  `json:"fsync_latency,omitzero"`
	WalAppends       uint64 `json:"wal_appends,omitempty"`
	WalFsyncs        uint64 `json:"wal_fsyncs,omitempty"`
	WalMaxBatch      uint64 `json:"wal_max_batch,omitempty"`
	WalCheckpoints   uint64 `json:"wal_checkpoints,omitempty"`
	WalCheckpointLSN uint64 `json:"wal_checkpoint_lsn,omitempty"`

	// Replication block; all-zero off replication. ShipLatency is the
	// leader-side batch→covering-ack round trip. The lag pair is the
	// leader's worst follower (or the follower's own position): records
	// behind the durable mark, and seconds since progress was last made.
	ShipLatency        HistQ   `json:"ship_latency,omitzero"`
	ReplBatches        uint64  `json:"repl_batches,omitempty"`
	ReplRecordsShipped uint64  `json:"repl_records_shipped,omitempty"`
	ReplAcks           uint64  `json:"repl_acks,omitempty"`
	ReplBatchesApplied uint64  `json:"repl_batches_applied,omitempty"`
	ReplRecordsApplied uint64  `json:"repl_records_applied,omitempty"`
	ReplFollowers      int64   `json:"repl_followers,omitempty"`
	ReplLagRecords     int64   `json:"repl_lag_records,omitempty"`
	ReplLagSeconds     float64 `json:"repl_lag_seconds,omitempty"`

	// Snapshot block; all-zero when no read-only snapshot transactions
	// ran. SnapPinned is the number of currently live snapshot pins.
	SnapReadLatency HistQ  `json:"snap_read_latency,omitzero"`
	SnapTxs         uint64 `json:"snap_txs,omitempty"`
	SnapReads       uint64 `json:"snap_reads,omitempty"`
	SnapPublishes   uint64 `json:"snap_publishes,omitempty"`
	SnapPinned      int64  `json:"snap_pinned,omitempty"`

	TraceDropped uint64       `json:"trace_dropped,omitempty"` // ring overwrites since start
	Trace        []TraceEntry `json:"trace,omitempty"`
}

// EncodeOp wraps the adt codec for request building.
func EncodeOp(op adt.Op) (json.RawMessage, error) { return adt.EncodeOp(op) }

// DecodeOp reverses EncodeOp.
func DecodeOp(raw json.RawMessage) (adt.Op, error) { return adt.DecodeOp(raw) }

// EncodeValue wraps the adt codec for response building.
func EncodeValue(v adt.Value) (json.RawMessage, error) { return adt.EncodeValue(v) }

// DecodeValue reverses EncodeValue.
func DecodeValue(raw json.RawMessage) (adt.Value, error) { return adt.DecodeValue(raw) }

// EncodeState wraps the adt codec for STATE responses.
func EncodeState(s adt.State) (json.RawMessage, error) { return adt.EncodeState(s) }

// DecodeState reverses EncodeState.
func DecodeState(raw json.RawMessage) (adt.State, error) { return adt.DecodeState(raw) }

// WriteFrame writes v as one length-prefixed frame and flushes, applying
// the request-side limit. Servers writing responses use [WriteFrameMax]
// with [MaxResponseSize].
func WriteFrame(w *bufio.Writer, v any) error {
	return WriteFrameMax(w, v, MaxFrameSize)
}

// WriteFrameMax writes v as one length-prefixed frame and flushes,
// rejecting payloads over max bytes.
func WriteFrameMax(w *bufio.Writer, v any, max int) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("wire: marshal frame: %w", err)
	}
	if len(payload) > max {
		return fmt.Errorf("wire: frame of %d bytes exceeds limit %d", len(payload), max)
	}
	if _, err := fmt.Fprintf(w, "%d\n", len(payload)); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	if err := w.WriteByte('\n'); err != nil {
		return err
	}
	return w.Flush()
}

// ReadFrame reads one frame's payload into v, applying the request-side
// limit. It returns io.EOF (exactly) on a clean end of stream before any
// byte of a frame. Clients reading responses use [ReadFrameMax] with
// [MaxResponseSize].
func ReadFrame(r *bufio.Reader, v any) error {
	return ReadFrameMax(r, v, MaxFrameSize)
}

// ReadFrameMax reads one frame's payload into v, rejecting frames that
// advertise more than max bytes without reading their body.
func ReadFrameMax(r *bufio.Reader, v any, max int) error {
	header, err := r.ReadString('\n')
	if err != nil {
		if err == io.EOF && header == "" {
			return io.EOF
		}
		return fmt.Errorf("wire: read frame header: %w", err)
	}
	n, err := strconv.Atoi(strings.TrimSpace(header))
	if err != nil || n < 0 {
		return fmt.Errorf("wire: bad frame length %q", strings.TrimSpace(header))
	}
	if n > max {
		return fmt.Errorf("wire: frame of %d bytes exceeds limit %d", n, max)
	}
	buf := make([]byte, n+1) // payload + trailing newline
	if _, err := io.ReadFull(r, buf); err != nil {
		return fmt.Errorf("wire: read frame payload: %w", err)
	}
	if buf[n] != '\n' {
		return fmt.Errorf("wire: frame missing trailing newline")
	}
	if err := json.Unmarshal(buf[:n], v); err != nil {
		return fmt.Errorf("wire: unmarshal frame: %w", err)
	}
	return nil
}

// ReadRequest reads one Request frame.
func ReadRequest(r *bufio.Reader) (*Request, error) {
	var req Request
	if err := ReadFrame(r, &req); err != nil {
		return nil, err
	}
	return &req, nil
}

// ReadResponse reads one Response frame (response-side size limit).
func ReadResponse(r *bufio.Reader) (*Response, error) {
	var resp Response
	if err := ReadFrameMax(r, &resp, MaxResponseSize); err != nil {
		return nil, err
	}
	return &resp, nil
}
