package wire

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"nestedtx/internal/adt"
)

func roundTripReq(t *testing.T, req *Request) *Request {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteFrame(bufio.NewWriter(&buf), req); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	got, err := ReadRequest(bufio.NewReader(&buf))
	if err != nil {
		t.Fatalf("ReadRequest: %v", err)
	}
	return got
}

func TestRequestRoundTrip(t *testing.T) {
	op, err := EncodeOp(adt.CtrAdd{Delta: -3})
	if err != nil {
		t.Fatal(err)
	}
	req := &Request{Seq: 7, Type: TWrite, Tx: 2, Obj: "ctr", Op: op}
	got := roundTripReq(t, req)
	if got.Seq != 7 || got.Type != TWrite || got.Tx != 2 || got.Obj != "ctr" {
		t.Fatalf("round trip mangled request: %+v", got)
	}
	dop, err := DecodeOp(got.Op)
	if err != nil {
		t.Fatal(err)
	}
	if dop.(adt.CtrAdd).Delta != -3 {
		t.Fatalf("op mangled: %+v", dop)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	val, err := EncodeValue(adt.AcctResult{OK: true, Balance: 41})
	if err != nil {
		t.Fatal(err)
	}
	st, err := EncodeState(adt.Account{Balance: 41})
	if err != nil {
		t.Fatal(err)
	}
	resp := &Response{Seq: 9, OK: true, Tx: 3, TxID: "T0.1.2", Value: val, State: st,
		Stats: &Stats{Requests: 12, Deadlocks: 1}}
	var buf bytes.Buffer
	if err := WriteFrame(bufio.NewWriter(&buf), resp); err != nil {
		t.Fatal(err)
	}
	got, err := ReadResponse(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if !got.OK || got.Seq != 9 || got.TxID != "T0.1.2" || got.Stats.Requests != 12 {
		t.Fatalf("round trip mangled response: %+v", got)
	}
	v, err := DecodeValue(got.Value)
	if err != nil {
		t.Fatal(err)
	}
	if v.(adt.AcctResult).Balance != 41 {
		t.Fatalf("value mangled: %+v", v)
	}
	s, err := DecodeState(got.State)
	if err != nil {
		t.Fatal(err)
	}
	if s.(adt.Account).Balance != 41 {
		t.Fatalf("state mangled: %+v", s)
	}
}

func TestFrameStreaming(t *testing.T) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	for i := uint64(1); i <= 5; i++ {
		if err := WriteFrame(w, &Request{Seq: i, Type: TPing}); err != nil {
			t.Fatal(err)
		}
	}
	r := bufio.NewReader(&buf)
	for i := uint64(1); i <= 5; i++ {
		req, err := ReadRequest(r)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if req.Seq != i {
			t.Fatalf("frame %d: got seq %d", i, req.Seq)
		}
	}
	if _, err := ReadRequest(r); !errors.Is(err, io.EOF) {
		t.Fatalf("want clean EOF after last frame, got %v", err)
	}
}

func TestFrameRejectsOversizeAndGarbage(t *testing.T) {
	var req Request
	if err := ReadFrame(bufio.NewReader(strings.NewReader("99999999\n")), &req); err == nil ||
		!strings.Contains(err.Error(), "limit") {
		t.Fatalf("oversize frame not rejected: %v", err)
	}
	if err := ReadFrame(bufio.NewReader(strings.NewReader("nope\n")), &req); err == nil {
		t.Fatal("garbage length accepted")
	}
	if err := ReadFrame(bufio.NewReader(strings.NewReader("2\n{}X")), &req); err == nil ||
		!strings.Contains(err.Error(), "newline") {
		t.Fatalf("missing trailing newline accepted: %v", err)
	}
	if err := ReadFrame(bufio.NewReader(strings.NewReader("4\n{}\n")), &req); err == nil {
		t.Fatal("truncated payload accepted")
	}
}
