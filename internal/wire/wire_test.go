package wire

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"nestedtx/internal/adt"
)

func roundTripReq(t *testing.T, req *Request) *Request {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteFrame(bufio.NewWriter(&buf), req); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	got, err := ReadRequest(bufio.NewReader(&buf))
	if err != nil {
		t.Fatalf("ReadRequest: %v", err)
	}
	return got
}

func TestRequestRoundTrip(t *testing.T) {
	op, err := EncodeOp(adt.CtrAdd{Delta: -3})
	if err != nil {
		t.Fatal(err)
	}
	req := &Request{Seq: 7, Type: TWrite, Tx: 2, Obj: "ctr", Op: op}
	got := roundTripReq(t, req)
	if got.Seq != 7 || got.Type != TWrite || got.Tx != 2 || got.Obj != "ctr" {
		t.Fatalf("round trip mangled request: %+v", got)
	}
	dop, err := DecodeOp(got.Op)
	if err != nil {
		t.Fatal(err)
	}
	if dop.(adt.CtrAdd).Delta != -3 {
		t.Fatalf("op mangled: %+v", dop)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	val, err := EncodeValue(adt.AcctResult{OK: true, Balance: 41})
	if err != nil {
		t.Fatal(err)
	}
	st, err := EncodeState(adt.Account{Balance: 41})
	if err != nil {
		t.Fatal(err)
	}
	resp := &Response{Seq: 9, OK: true, Tx: 3, TxID: "T0.1.2", Value: val, State: st,
		Stats: &Stats{Requests: 12, Deadlocks: 1}}
	var buf bytes.Buffer
	if err := WriteFrame(bufio.NewWriter(&buf), resp); err != nil {
		t.Fatal(err)
	}
	got, err := ReadResponse(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if !got.OK || got.Seq != 9 || got.TxID != "T0.1.2" || got.Stats.Requests != 12 {
		t.Fatalf("round trip mangled response: %+v", got)
	}
	v, err := DecodeValue(got.Value)
	if err != nil {
		t.Fatal(err)
	}
	if v.(adt.AcctResult).Balance != 41 {
		t.Fatalf("value mangled: %+v", v)
	}
	s, err := DecodeState(got.State)
	if err != nil {
		t.Fatal(err)
	}
	if s.(adt.Account).Balance != 41 {
		t.Fatalf("state mangled: %+v", s)
	}
}

func TestFrameStreaming(t *testing.T) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	for i := uint64(1); i <= 5; i++ {
		if err := WriteFrame(w, &Request{Seq: i, Type: TPing}); err != nil {
			t.Fatal(err)
		}
	}
	r := bufio.NewReader(&buf)
	for i := uint64(1); i <= 5; i++ {
		req, err := ReadRequest(r)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if req.Seq != i {
			t.Fatalf("frame %d: got seq %d", i, req.Seq)
		}
	}
	if _, err := ReadRequest(r); !errors.Is(err, io.EOF) {
		t.Fatalf("want clean EOF after last frame, got %v", err)
	}
}

func TestFrameRejectsOversizeAndGarbage(t *testing.T) {
	var req Request
	if err := ReadFrame(bufio.NewReader(strings.NewReader("99999999\n")), &req); err == nil ||
		!strings.Contains(err.Error(), "limit") {
		t.Fatalf("oversize frame not rejected: %v", err)
	}
	if err := ReadFrame(bufio.NewReader(strings.NewReader("nope\n")), &req); err == nil {
		t.Fatal("garbage length accepted")
	}
	if err := ReadFrame(bufio.NewReader(strings.NewReader("2\n{}X")), &req); err == nil ||
		!strings.Contains(err.Error(), "newline") {
		t.Fatalf("missing trailing newline accepted: %v", err)
	}
	if err := ReadFrame(bufio.NewReader(strings.NewReader("4\n{}\n")), &req); err == nil {
		t.Fatal("truncated payload accepted")
	}
}

// TestFrameTruncationAndGarbage covers the exact mid-frame failure
// shapes a cut or corrupted connection produces; none may be mistaken
// for a clean EOF (only a stream ending *before any byte of a frame*
// is io.EOF — everything else must surface as an error, so the client
// can poison the connection rather than resynchronise on garbage).
func TestFrameTruncationAndGarbage(t *testing.T) {
	cases := []struct {
		name  string
		raw   string
		frag  string // expected error substring; "" = any non-nil, non-EOF error
		isEOF bool
	}{
		{"clean EOF before any byte", "", "", true},
		{"EOF mid-header", "12", "read frame header", false},
		{"negative length", "-5\nhello\n", "bad frame length", false},
		{"non-numeric header", "twelve\n", "bad frame length", false},
		{"header garbage binary", "\x00\x01\x02\n", "bad frame length", false},
		{"short payload then EOF", "50\n{\"seq\":1}", "read frame payload", false},
		{"payload missing trailing newline", "9\n{\"seq\":1}X", "trailing newline", false},
		{"valid length, unparsable json", "3\n{\"s\n", "unmarshal", false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var resp Response
			err := ReadFrame(bufio.NewReader(strings.NewReader(tc.raw)), &resp)
			if tc.isEOF {
				if err != io.EOF {
					t.Fatalf("got %v, want exactly io.EOF", err)
				}
				return
			}
			if err == nil {
				t.Fatal("corrupt frame accepted")
			}
			if errors.Is(err, io.EOF) && err == io.EOF {
				t.Fatalf("mid-frame failure reported as clean EOF: %v", err)
			}
			if tc.frag != "" && !strings.Contains(err.Error(), tc.frag) {
				t.Fatalf("error %q does not mention %q", err, tc.frag)
			}
		})
	}
}
