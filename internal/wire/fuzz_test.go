package wire

import (
	"bufio"
	"bytes"
	"testing"

	"nestedtx/internal/adt"
)

// FuzzReadFrame throws adversarial bytes at the framing and payload
// decoders: whatever a client sends, the server-side read path must
// return an error or a frame — never panic, and never allocate
// proportionally to a length prefix it hasn't validated.
func FuzzReadFrame(f *testing.F) {
	seeds := [][]byte{
		[]byte(""),                           // clean EOF
		[]byte("2\n{}\n"),                    // minimal valid frame
		[]byte("2\n{}"),                      // truncated: missing newline
		[]byte("2\n{"),                       // truncated payload
		[]byte("99999999\n"),                 // giant length, no body
		[]byte("999999999999999999999999\n"), // length overflows int
		[]byte("-3\n{}\n"),                   // negative length
		[]byte("nope\n{}\n"),                 // non-numeric length
		[]byte("4\n{}\nX"),                   // wrong terminator position
		[]byte("15\n{\"seq\":1,bad}\nx"),     // bad JSON of advertised size
		[]byte("44\n{\"seq\":1,\"type\":\"WRITE\",\"op\":{\"t\":\"zzz\"}}\n"), // unknown op tag
		[]byte("2\n{}\n2\n{}\n2\n{}\n"),                                       // several frames back to back
	}
	// A genuine frame as produced by the writer, so the fuzzer starts
	// from the happy path too.
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	op, _ := EncodeOp(adt.CtrAdd{Delta: 1})
	_ = WriteFrame(w, &Request{Seq: 7, Type: TWrite, Tx: 1, Obj: "ctr", Op: op})
	seeds = append(seeds, buf.Bytes())
	for _, s := range seeds {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bufio.NewReader(bytes.NewReader(data))
		for i := 0; i < 64; i++ { // bound work per input
			var req Request
			if err := ReadFrame(r, &req); err != nil {
				break
			}
			// Whatever parsed as a frame must also survive payload
			// decoding without panicking.
			if len(req.Op) > 0 {
				_, _ = DecodeOp(req.Op)
			}
		}
		r = bufio.NewReader(bytes.NewReader(data))
		for i := 0; i < 64; i++ {
			var resp Response
			if err := ReadFrameMax(r, &resp, MaxResponseSize); err != nil {
				break
			}
			if len(resp.Value) > 0 {
				_, _ = DecodeValue(resp.Value)
			}
			if len(resp.State) > 0 {
				_, _ = DecodeState(resp.State)
			}
		}
	})
}
