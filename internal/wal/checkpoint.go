package wal

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"nestedtx/internal/adt"
)

// A checkpoint is one framed JSON document holding the committed-to-root
// state of every object as of an LSN: redoing records [0, NextLSN) from
// the initial states yields exactly these states. It is written to a
// temporary file, fsynced, renamed into place and the directory synced —
// a crash at any point leaves either the old checkpoint or the new one,
// never a half of either. Only after the new checkpoint is durable are
// the segments below its LSN removed (low-water truncation), so the redo
// information for the current states is never lost.

type jsonCheckpoint struct {
	NextLSN uint64         `json:"next_lsn"`
	Objects []jsonObjState `json:"objects"`
}

type jsonObjState struct {
	Name string          `json:"x"`
	St   json.RawMessage `json:"st"`
}

func marshalCheckpoint(nextLSN uint64, states map[string]adt.State) ([]byte, error) {
	ck := jsonCheckpoint{NextLSN: nextLSN, Objects: make([]jsonObjState, 0, len(states))}
	names := make([]string, 0, len(states))
	for x := range states {
		names = append(names, x)
	}
	sort.Strings(names)
	for _, x := range names {
		raw, err := adt.EncodeState(states[x])
		if err != nil {
			return nil, fmt.Errorf("wal: checkpoint %q: %w", x, err)
		}
		ck.Objects = append(ck.Objects, jsonObjState{Name: x, St: raw})
	}
	return json.Marshal(ck)
}

func unmarshalCheckpoint(payload []byte) (uint64, map[string]adt.State, error) {
	var ck jsonCheckpoint
	if err := json.Unmarshal(payload, &ck); err != nil {
		return 0, nil, fmt.Errorf("wal: decode checkpoint: %w", err)
	}
	states := make(map[string]adt.State, len(ck.Objects))
	for _, o := range ck.Objects {
		st, err := adt.DecodeState(o.St)
		if err != nil {
			return 0, nil, fmt.Errorf("wal: checkpoint %q: %w", o.Name, err)
		}
		states[o.Name] = st
	}
	return ck.NextLSN, states, nil
}

// Checkpoint snapshots the states returned by capture and truncates the
// log below them. capture runs with the log quiesced: the checkpoint
// gate excludes in-flight commits, so every record already appended has
// been applied and nothing is mid-commit — the captured states are
// exactly the redo of records [0, NextLSN). capture should return the
// committed-to-root states (Manager.Checkpoint wires this to the lock
// manager's root versions).
func (l *Log) Checkpoint(capture func() map[string]adt.State) error {
	l.gate.Lock()
	defer l.gate.Unlock()
	// The gate excludes appenders entirely, so the write and sync paths
	// are quiescent once acquired; wmu/smu are still taken (in lock
	// order) so the handle swap cannot race the syncer's fsync.
	l.wmu.Lock()
	defer l.wmu.Unlock()
	l.smu.Lock()
	defer l.smu.Unlock()
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return fmt.Errorf("wal: log closed")
	}
	if lerr := l.err; lerr != nil {
		l.mu.Unlock()
		return fmt.Errorf("wal: log failed: %w", lerr)
	}
	nextLSN := l.nextLSN
	l.mu.Unlock()
	// Encode before touching any file, so an unencodable state aborts
	// the checkpoint without harming the log.
	payload, err := marshalCheckpoint(nextLSN, capture())
	if err != nil {
		return err
	}

	name := checkpointName(nextLSN)
	tmp := name + ".tmp"
	if err := l.writeFileAtomic(tmp, name, appendFrame(nil, payload)); err != nil {
		l.latch(err)
		return err
	}
	if err := l.cutover(name, nextLSN); err != nil {
		return err
	}
	l.met.ObserveCheckpoint(nextLSN)
	return nil
}

// InstallSnapshot replaces the log's entire contents with a checkpoint
// at nextLSN holding states — the follower bootstrap path when its
// position has fallen below the leader's low-water mark: the records the
// follower is missing were truncated by the leader's checkpoints, so the
// follower adopts the leader's checkpoint wholesale and resumes
// streaming from nextLSN. Installing a snapshot behind the log's current
// position is refused (the log would have to forget durable records).
func (l *Log) InstallSnapshot(nextLSN uint64, states map[string]adt.State) error {
	l.gate.Lock()
	defer l.gate.Unlock()
	l.wmu.Lock()
	defer l.wmu.Unlock()
	l.smu.Lock()
	defer l.smu.Unlock()
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return fmt.Errorf("wal: log closed")
	}
	if lerr := l.err; lerr != nil {
		l.mu.Unlock()
		return fmt.Errorf("wal: log failed: %w", lerr)
	}
	if nextLSN < l.nextLSN {
		pos := l.nextLSN
		l.mu.Unlock()
		return fmt.Errorf("wal: snapshot at %d behind log position %d", nextLSN, pos)
	}
	l.mu.Unlock()
	payload, err := marshalCheckpoint(nextLSN, states)
	if err != nil {
		return err
	}
	name := checkpointName(nextLSN)
	if err := l.writeFileAtomic(name+".tmp", name, appendFrame(nil, payload)); err != nil {
		l.latch(err)
		return err
	}
	l.mu.Lock()
	l.nextLSN = nextLSN
	l.mu.Unlock()
	l.writeSeq = nextLSN // wmu held: the next write ticket continues here
	if err := l.cutover(name, nextLSN); err != nil {
		return err
	}
	l.met.ObserveCheckpoint(nextLSN)
	return nil
}

// cutover finishes a checkpoint (or snapshot install) whose file keep is
// already durable: it seals and retires every other log file and opens a
// fresh active segment at lsn. Called with gate, wmu and smu held — the
// log is quiescent (no appender holds the gate, so there are no parked
// waiters and no in-flight writes).
func (l *Log) cutover(keep string, lsn uint64) error {
	fail := func(err error) error {
		l.latch(err)
		return err
	}
	// Everything below the checkpoint LSN is now redundant. Seal the
	// active segment (the quiesced write path cannot hold staged frames —
	// every append was acked before the gate closed — but drain
	// defensively), drop old files, start fresh.
	if len(l.wbuf) > 0 {
		if _, err := l.f.Write(l.wbuf); err != nil {
			return fail(fmt.Errorf("wal: checkpoint drain: %w", err))
		}
		l.wbuf = nil
	}
	if err := l.f.Sync(); err != nil {
		return fail(fmt.Errorf("wal: checkpoint seal: %w", err))
	}
	if err := l.f.Close(); err != nil {
		return fail(fmt.Errorf("wal: checkpoint close: %w", err))
	}
	names, err := l.fs.ReadDir(l.dir)
	if err != nil {
		return fail(fmt.Errorf("wal: checkpoint readdir: %w", err))
	}
	for _, n := range names {
		if n == keep {
			continue
		}
		if strings.HasPrefix(n, "wal-") || strings.HasPrefix(n, "ckpt-") {
			// Best-effort: a leftover file is ignored by recovery anyway
			// (its records are below the checkpoint LSN).
			l.fs.Remove(filepath.Join(l.dir, n))
		}
	}
	segName := segmentName(lsn)
	f, err := l.fs.OpenFile(filepath.Join(l.dir, segName), os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return fail(fmt.Errorf("wal: checkpoint segment: %w", err))
	}
	if err := l.fs.SyncDir(l.dir); err != nil {
		f.Close()
		return fail(fmt.Errorf("wal: checkpoint sync dir: %w", err))
	}
	l.f, l.segName, l.segBytes = f, segName, 0
	l.mu.Lock()
	l.ckptLSN = lsn
	l.statSegName, l.statSegBytes = segName, 0
	l.written = lsn
	if lsn > l.durable {
		l.durable = lsn
		for _, ch := range l.watchers {
			select {
			case ch <- struct{}{}:
			default:
			}
		}
	}
	l.mu.Unlock()
	return nil
}

// writeFileAtomic writes data to tmp, fsyncs it, renames it to name and
// fsyncs the directory.
func (l *Log) writeFileAtomic(tmp, name string, data []byte) error {
	tmpPath := filepath.Join(l.dir, tmp)
	f, err := l.fs.OpenFile(tmpPath, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: checkpoint create: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("wal: checkpoint write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: checkpoint sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: checkpoint close: %w", err)
	}
	if err := l.fs.Rename(tmpPath, filepath.Join(l.dir, name)); err != nil {
		return fmt.Errorf("wal: checkpoint rename: %w", err)
	}
	if err := l.fs.SyncDir(l.dir); err != nil {
		return fmt.Errorf("wal: checkpoint sync dir: %w", err)
	}
	return nil
}
