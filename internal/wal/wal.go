// Package wal is the durability subsystem: a segmented, CRC32C-checked,
// append-only redo log of committed top-level transactions, with group
// commit, checkpoints, and a crash-recovery path whose result is not
// merely plausible but machine-checked — the recovered history is
// reconstructed as a formal schedule and replayed through the Theorem-34
// serial-correctness checker (internal/checker).
//
// The protocol is strict write-ahead logging at the top level of the
// transaction tree: a top-level commit appends its redo record and waits
// for an fsync to cover it *before* the lock manager releases its locks.
// Under Moss locking that ordering has a crucial consequence: any later
// transaction that conflicts with the committer can only be granted its
// lock after the release, hence after the append — so for every object,
// log order agrees with the runtime conflict order. The log is therefore
// a serial history, and replaying its prefix after a crash yields a state
// the checker can certify (Theorem 34 across a crash).
//
// Group commit: appenders write their record into the active segment and
// then park; a single syncer goroutine retires all parked appenders with
// one Fsync, optionally waiting a configurable window first so concurrent
// commits share the flush. Checkpoints snapshot the committed-to-root
// object states behind a writer lock that drains in-flight appends, so a
// checkpoint is exactly equivalent to the redo of every record below its
// LSN.
package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"nestedtx/internal/obs"
)

// Options configures a Log.
type Options struct {
	// SyncWindow is the group-commit window: after the first commit of a
	// batch parks, the syncer waits this long for more commits to join
	// before issuing the shared fsync. Zero syncs each batch immediately
	// (batching still happens while a previous fsync is in flight).
	SyncWindow time.Duration
	// SegmentBytes rotates the active segment once it exceeds this many
	// bytes. Zero means the 4 MiB default.
	SegmentBytes int64
	// FS is the backing file system; nil means the real one (OSFS).
	FS FS
	// Metrics, when non-nil, receives fsync latencies, append/fsync/
	// checkpoint counts and the batching high-water mark.
	Metrics *obs.Metrics
}

const defaultSegmentBytes = 4 << 20

// Log is an open write-ahead log. All methods are safe for concurrent
// use.
type Log struct {
	dir string
	fs  FS
	met *obs.Metrics

	window   time.Duration
	segLimit int64

	// gate orders appends against checkpoints: every append holds a read
	// lock from its write through its apply callback; Checkpoint takes
	// the write lock, so when it runs every appended record has been
	// applied and no commit is mid-flight.
	gate sync.RWMutex

	mu       sync.Mutex
	f        File   // active segment
	segName  string // file name of the active segment
	segBytes int64  // bytes written to the active segment
	nextLSN  uint64
	ckptLSN  uint64 // next LSN after the newest checkpoint (redo low-water)
	durable  uint64 // every LSN below this is covered by an fsync
	watchers []chan struct{}
	waiters  []chan error
	err      error // latched fatal error: log is read-only from here on
	closed   bool

	kick chan struct{}
	stop chan struct{}
	done chan struct{}
}

func segmentName(lsn uint64) string    { return fmt.Sprintf("wal-%016d.seg", lsn) }
func checkpointName(lsn uint64) string { return fmt.Sprintf("ckpt-%016d.ckpt", lsn) }

// Open opens (creating if needed) the log in dir, recovering whatever a
// previous process left behind: it loads the newest valid checkpoint,
// redoes every intact record past it, truncates a torn tail at the first
// bad frame, and returns the resulting Recovery alongside the ready-to-
// append Log. New appends continue the LSN sequence where the recovered
// prefix ends.
func Open(dir string, opts Options) (*Log, *Recovery, error) {
	fs := opts.FS
	if fs == nil {
		fs = OSFS{}
	}
	// Reject impossible options at the boundary, not mid-commit: a
	// negative group-commit window would park appenders forever, and a
	// directory we cannot write to would surface as a failed append on
	// the first commit.
	if opts.SyncWindow < 0 {
		return nil, nil, fmt.Errorf("wal: negative SyncWindow %v", opts.SyncWindow)
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = defaultSegmentBytes
	}
	if err := fs.MkdirAll(dir); err != nil {
		return nil, nil, fmt.Errorf("wal: mkdir %s: %w", dir, err)
	}
	if err := probeWritable(fs, dir); err != nil {
		return nil, nil, fmt.Errorf("wal: data dir %s not writable: %w", dir, err)
	}
	rec, err := scanDir(fs, dir, true)
	if err != nil {
		return nil, nil, err
	}

	l := &Log{
		dir:      dir,
		fs:       fs,
		met:      opts.Metrics,
		window:   opts.SyncWindow,
		segLimit: opts.SegmentBytes,
		nextLSN:  rec.NextLSN,
		ckptLSN:  rec.CheckpointLSN,
		durable:  rec.NextLSN, // the recovered prefix is on stable storage
		kick:     make(chan struct{}, 1),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	// Continue the last surviving segment, or start a fresh one.
	name := rec.tailSegment
	flag := os.O_WRONLY | os.O_APPEND
	if name == "" {
		name = segmentName(l.nextLSN)
		flag |= os.O_CREATE
	}
	f, err := fs.OpenFile(filepath.Join(dir, name), flag, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: open segment: %w", err)
	}
	l.f, l.segName = f, name
	if size, err := fs.Size(filepath.Join(dir, name)); err == nil {
		l.segBytes = size
	}
	if err := fs.SyncDir(dir); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("wal: sync dir: %w", err)
	}
	l.met.SetCheckpointLSN(l.ckptLSN)
	go l.syncer()
	return l, rec, nil
}

// Append writes one record, waits until it is durable, and returns its
// LSN. The record's LSN field is assigned by the log.
func (l *Log) Append(r Record) (uint64, error) {
	l.gate.RLock()
	defer l.gate.RUnlock()
	return l.appendDurable(r)
}

// AppendApply writes one record, waits until it is durable, then runs
// apply — all while holding the checkpoint gate, so a concurrent
// Checkpoint can never observe a state whose last commit is not yet in
// the log (or vice versa). apply's error is returned as-is.
func (l *Log) AppendApply(r Record, apply func() error) error {
	l.gate.RLock()
	defer l.gate.RUnlock()
	if _, err := l.appendDurable(r); err != nil {
		return err
	}
	if apply != nil {
		return apply()
	}
	return nil
}

func (l *Log) appendDurable(r Record) (uint64, error) {
	ch, lsn, err := l.enqueue(r, false)
	if err != nil {
		return 0, err
	}
	if err := <-ch; err != nil {
		return 0, err
	}
	return lsn, nil
}

// AppendBatch writes a contiguous run of already-numbered records (a
// replication batch) and waits for one fsync to cover them all. Unlike
// Append, the records keep the LSNs they carry — they continue the
// leader's numbering — and a record whose LSN does not equal the log's
// next LSN is refused, so a follower's log is always an exact LSN prefix
// of its leader's. On an error partway, the already-enqueued prefix
// remains valid (it is contiguous); the caller resynchronises by asking
// the leader to resume from Stats().NextLSN.
func (l *Log) AppendBatch(recs []Record) error {
	if len(recs) == 0 {
		return nil
	}
	l.gate.RLock()
	defer l.gate.RUnlock()
	var last chan error
	for i := range recs {
		ch, _, err := l.enqueue(recs[i], true)
		if err != nil {
			return err
		}
		last = ch
	}
	return <-last
}

// enqueue assigns the record its LSN (or, with strict set, verifies the
// LSN it carries continues the sequence), writes its frame into the
// active segment and parks a waiter for the next fsync.
func (l *Log) enqueue(r Record, strict bool) (chan error, uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, 0, fmt.Errorf("wal: log closed")
	}
	if l.err != nil {
		return nil, 0, fmt.Errorf("wal: log failed: %w", l.err)
	}
	if strict && r.LSN != l.nextLSN {
		return nil, 0, fmt.Errorf("wal: batch LSN gap: got %d, want %d", r.LSN, l.nextLSN)
	}
	r.LSN = l.nextLSN
	payload, err := marshalRecord(r)
	if err != nil {
		return nil, 0, err
	}
	frame := appendFrame(nil, payload)
	if l.segBytes > 0 && l.segBytes+int64(len(frame)) > l.segLimit {
		if err := l.rotateLocked(); err != nil {
			l.err = err
			return nil, 0, err
		}
	}
	if _, err := l.f.Write(frame); err != nil {
		// The segment may now hold a torn frame; recovery will cut it.
		l.err = fmt.Errorf("wal: write: %w", err)
		return nil, 0, l.err
	}
	l.nextLSN++
	l.segBytes += int64(len(frame))
	l.met.ObserveAppend()
	ch := make(chan error, 1)
	l.waiters = append(l.waiters, ch)
	select {
	case l.kick <- struct{}{}:
	default:
	}
	return ch, r.LSN, nil
}

// rotateLocked seals the active segment (fsync, retire its waiters,
// close) and opens a fresh one named after the next LSN. Called with
// l.mu held.
func (l *Log) rotateLocked() error {
	start := time.Now()
	err := l.f.Sync()
	if len(l.waiters) > 0 {
		l.met.ObserveFsync(time.Since(start), len(l.waiters))
		for _, ch := range l.waiters {
			ch <- err
		}
		l.waiters = nil
	}
	if err != nil {
		return fmt.Errorf("wal: rotate sync: %w", err)
	}
	l.advanceDurableLocked()
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: rotate close: %w", err)
	}
	name := segmentName(l.nextLSN)
	f, err := l.fs.OpenFile(filepath.Join(l.dir, name), os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: rotate open: %w", err)
	}
	if err := l.fs.SyncDir(l.dir); err != nil {
		f.Close()
		return fmt.Errorf("wal: rotate sync dir: %w", err)
	}
	l.f, l.segName, l.segBytes = f, name, 0
	return nil
}

// syncer is the single goroutine that retires parked appenders: one
// fsync per batch, optionally after the group-commit window.
func (l *Log) syncer() {
	defer close(l.done)
	for {
		select {
		case <-l.kick:
			if l.window > 0 {
				t := time.NewTimer(l.window)
				select {
				case <-t.C:
				case <-l.stop:
					t.Stop()
				}
			}
			l.flushBatch()
		case <-l.stop:
			l.flushBatch()
			return
		}
	}
}

// flushBatch fsyncs the active segment and releases every parked waiter.
// Holding l.mu across the Sync is deliberate: appenders arriving during
// the fsync park behind the mutex and form the next batch — that queue
// IS the group commit.
func (l *Log) flushBatch() {
	l.mu.Lock()
	if len(l.waiters) == 0 {
		l.mu.Unlock()
		return
	}
	start := time.Now()
	err := l.f.Sync()
	l.met.ObserveFsync(time.Since(start), len(l.waiters))
	if err != nil && l.err == nil {
		l.err = fmt.Errorf("wal: fsync: %w", err)
	}
	if err == nil {
		l.advanceDurableLocked()
	}
	batch := l.waiters
	l.waiters = nil
	l.mu.Unlock()
	for _, ch := range batch {
		ch <- err
	}
}

// Sync forces any buffered records to stable storage now, regardless of
// the group-commit window.
func (l *Log) Sync() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return fmt.Errorf("wal: log closed")
	}
	start := time.Now()
	err := l.f.Sync()
	if len(l.waiters) > 0 {
		l.met.ObserveFsync(time.Since(start), len(l.waiters))
	}
	batch := l.waiters
	l.waiters = nil
	if err != nil && l.err == nil {
		l.err = fmt.Errorf("wal: fsync: %w", err)
	}
	if err == nil {
		l.advanceDurableLocked()
	}
	l.mu.Unlock()
	for _, ch := range batch {
		ch <- err
	}
	return err
}

// Close flushes outstanding records, stops the syncer and closes the
// active segment. The log is unusable afterwards.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	close(l.stop)
	<-l.done
	l.mu.Lock()
	defer l.mu.Unlock()
	err := l.f.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Stats reports the log's position.
type Stats struct {
	NextLSN       uint64 // LSN the next append will get
	DurableLSN    uint64 // every LSN below this is covered by an fsync
	CheckpointLSN uint64 // redo low-water mark (0 = no checkpoint)
	Segment       string // active segment file name
	SegmentBytes  int64  // bytes in the active segment
}

// Stats returns the current log position.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{
		NextLSN:       l.nextLSN,
		DurableLSN:    l.durable,
		CheckpointLSN: l.ckptLSN,
		Segment:       l.segName,
		SegmentBytes:  l.segBytes,
	}
}

// Dir returns the log directory.
func (l *Log) Dir() string { return l.dir }

// FS returns the backing file system (the replication shipper tails the
// directory through the same FS the log writes it with).
func (l *Log) FS() FS { return l.fs }

// DurableLSN returns the stable-storage high-water mark: every record
// with a smaller LSN has been covered by a successful fsync. A
// replication leader ships only records below this mark, so a follower
// can never hold a record its leader might lose in a crash.
func (l *Log) DurableLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.durable
}

// Watch registers a coalescing notification channel: it receives (at
// least) one send whenever the durable LSN advances. Pair with Unwatch.
func (l *Log) Watch() <-chan struct{} {
	ch := make(chan struct{}, 1)
	l.mu.Lock()
	l.watchers = append(l.watchers, ch)
	l.mu.Unlock()
	return ch
}

// Unwatch deregisters a channel returned by Watch.
func (l *Log) Unwatch(ch <-chan struct{}) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for i, w := range l.watchers {
		if w == ch {
			l.watchers = append(l.watchers[:i], l.watchers[i+1:]...)
			return
		}
	}
}

// advanceDurableLocked publishes the current nextLSN as durable (called
// with l.mu held, immediately after a successful fsync of the active
// segment) and pokes every watcher.
func (l *Log) advanceDurableLocked() {
	if l.nextLSN == l.durable {
		return
	}
	l.durable = l.nextLSN
	for _, ch := range l.watchers {
		select {
		case ch <- struct{}{}:
		default: // already pending; the watcher will see the new mark
		}
	}
}

// probeWritable creates, writes and removes a scratch file so an
// unwritable data directory fails Open with an explicit error instead of
// failing the first commit.
func probeWritable(fs FS, dir string) error {
	path := filepath.Join(dir, ".wal-probe.tmp")
	f, err := fs.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, werr := f.Write([]byte("probe\n")); werr != nil {
		f.Close()
		fs.Remove(path)
		return werr
	}
	if cerr := f.Close(); cerr != nil {
		fs.Remove(path)
		return cerr
	}
	return fs.Remove(path)
}
