// Package wal is the durability subsystem: a segmented, CRC32C-checked,
// append-only redo log of committed top-level transactions, with group
// commit, checkpoints, and a crash-recovery path whose result is not
// merely plausible but machine-checked — the recovered history is
// reconstructed as a formal schedule and replayed through the Theorem-34
// serial-correctness checker (internal/checker).
//
// The protocol is strict write-ahead logging at the top level of the
// transaction tree: a top-level commit appends its redo record and waits
// for an fsync to cover it *before* the lock manager releases its locks.
// Under Moss locking that ordering has a crucial consequence: any later
// transaction that conflicts with the committer can only be granted its
// lock after the release, hence after the append — so for every object,
// log order agrees with the runtime conflict order. The log is therefore
// a serial history, and replaying its prefix after a crash yields a state
// the checker can certify (Theorem 34 across a crash).
//
// The commit path is pipelined: correctness needs fsync-before-lock-
// release, not a serial append path, so the log splits three concerns
// that each serialize only against themselves:
//
//   - LSN reservation is a short critical section under the state mutex;
//     record encoding happens outside every lock.
//   - Frames are staged in LSN order under a dedicated write mutex (a
//     ticket per reserved LSN) that is never held across a batch fsync —
//     appenders keep staging while a flush is in flight, and a whole
//     staged batch reaches the segment as one write syscall.
//   - The sync path (the syncer goroutine, Sync, and rotation seals)
//     drains the staged batch and issues one shared fsync for it. The
//     durable watermark published after each completed flush is the
//     highest LSN staged when that flush was *issued* — frames that land
//     mid-flush wait for the next one.
//
// Group commit falls out of the split: every appender parks a per-LSN
// waiter after its write, and one fsync retires all waiters below the
// watermark it covers, optionally after a configurable window so
// concurrent commits share the flush. Checkpoints snapshot the
// committed-to-root object states behind a writer lock that drains
// in-flight appends, so a checkpoint is exactly equivalent to the redo of
// every record below its LSN.
package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"nestedtx/internal/dst/clock"
	"nestedtx/internal/obs"
)

// Options configures a Log.
type Options struct {
	// SyncWindow is the group-commit window: before issuing a shared
	// fsync the syncer waits this long so more commits can join the
	// batch. Zero syncs each batch immediately. Batching happens while a
	// previous fsync is in flight regardless: appends are never blocked
	// by a flush — they write their frames and park, and the next flush
	// retires them all with one fsync.
	SyncWindow time.Duration
	// SegmentBytes rotates the active segment once it exceeds this many
	// bytes. Zero means the 4 MiB default.
	SegmentBytes int64
	// FS is the backing file system; nil means the real one (OSFS).
	FS FS
	// Metrics, when non-nil, receives fsync latencies, append/fsync/
	// checkpoint counts and the batching high-water mark.
	Metrics *obs.Metrics
	// Clock is the time source for the group-commit machinery (the sync
	// window wait and the batch-gather budget). nil means the wall
	// clock; the deterministic simulator injects its virtual clock so a
	// seeded run's batching schedule is event-queue time.
	Clock clock.Clock
}

const defaultSegmentBytes = 4 << 20

// waiter is one parked appender: ch receives the fsync verdict for lsn.
type waiter struct {
	lsn uint64
	ch  chan error
}

// Log is an open write-ahead log. All methods are safe for concurrent
// use.
type Log struct {
	dir string
	fs  FS
	met *obs.Metrics
	clk clock.Clock

	window   time.Duration
	segLimit int64

	// gate orders appends against checkpoints: every append holds a read
	// lock from its write through its apply callback; Checkpoint takes
	// the write lock, so when it runs every appended record has been
	// applied and no commit is mid-flight.
	gate sync.RWMutex

	// wmu is the write path: it serializes frame staging and rotations.
	// Appenders take it per frame, in LSN order (writeSeq is the ticket),
	// stage their frame into wbuf and return — the segment write itself
	// happens on the sync path, which drains the whole staged batch with
	// one write immediately before each fsync. wmu is never held across a
	// batch fsync — only rotation's seal fsync runs under it.
	wmu      sync.Mutex
	wcond    *sync.Cond // broadcast when writeSeq advances
	writeSeq uint64     // LSN whose frame may be staged next
	wbuf     []byte     // frames staged but not yet written to the segment
	f        File       // active segment
	segName  string     // file name of the active segment
	segBytes int64      // bytes staged+written to the active segment

	// smu is the sync path: it serializes batch drains, fsyncs and
	// file-handle swaps (rotation, checkpoint cutover) against each
	// other. Appenders never take it, so frame staging proceeds while a
	// flush is in flight. Lock order: gate → wmu → smu → mu.
	smu sync.Mutex

	// mu guards the logical state below. Critical sections are short:
	// mu is never held across an encode, a write, or an fsync.
	mu           sync.Mutex
	nextLSN      uint64 // next LSN to reserve
	written      uint64 // every LSN below this is staged or written in its segment
	durable      uint64 // every LSN below this is covered by an fsync
	ckptLSN      uint64 // next LSN after the newest checkpoint (redo low-water)
	statSegName  string // mirror of segName for lock-free-ish Stats
	statSegBytes int64  // mirror of segBytes for Stats
	waiters      []waiter // parked appenders, ascending LSN
	watchers     []chan struct{}
	err          error // latched fatal error: log is read-only from here on
	closed       bool

	// lastSync is the duration of the most recent batch fsync, in
	// nanoseconds, and lastBatch the number of waiters it retired: the
	// adaptive gather (see gatherBatch) budgets by the former and exits
	// early on the latter.
	lastSync  atomic.Int64
	lastBatch atomic.Int64

	kick chan struct{}
	stop chan struct{}
	done chan struct{}
}

func segmentName(lsn uint64) string    { return fmt.Sprintf("wal-%016d.seg", lsn) }
func checkpointName(lsn uint64) string { return fmt.Sprintf("ckpt-%016d.ckpt", lsn) }

// Open opens (creating if needed) the log in dir, recovering whatever a
// previous process left behind: it loads the newest valid checkpoint,
// redoes every intact record past it, truncates a torn tail at the first
// bad frame, and returns the resulting Recovery alongside the ready-to-
// append Log. New appends continue the LSN sequence where the recovered
// prefix ends.
func Open(dir string, opts Options) (*Log, *Recovery, error) {
	fs := opts.FS
	if fs == nil {
		fs = OSFS{}
	}
	// Reject impossible options at the boundary, not mid-commit: a
	// negative group-commit window would park appenders forever, and a
	// directory we cannot write to would surface as a failed append on
	// the first commit.
	if opts.SyncWindow < 0 {
		return nil, nil, fmt.Errorf("wal: negative SyncWindow %v", opts.SyncWindow)
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = defaultSegmentBytes
	}
	if err := fs.MkdirAll(dir); err != nil {
		return nil, nil, fmt.Errorf("wal: mkdir %s: %w", dir, err)
	}
	if err := probeWritable(fs, dir); err != nil {
		return nil, nil, fmt.Errorf("wal: data dir %s not writable: %w", dir, err)
	}
	rec, err := scanDir(fs, dir, true)
	if err != nil {
		return nil, nil, err
	}

	l := &Log{
		dir:      dir,
		fs:       fs,
		met:      opts.Metrics,
		clk:      clock.Or(opts.Clock),
		window:   opts.SyncWindow,
		segLimit: opts.SegmentBytes,
		writeSeq: rec.NextLSN,
		nextLSN:  rec.NextLSN,
		written:  rec.NextLSN,
		ckptLSN:  rec.CheckpointLSN,
		durable:  rec.NextLSN, // the recovered prefix is on stable storage
		kick:     make(chan struct{}, 1),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	l.wcond = sync.NewCond(&l.wmu)
	// Continue the last surviving segment, or start a fresh one.
	name := rec.tailSegment
	flag := os.O_WRONLY | os.O_APPEND
	if name == "" {
		name = segmentName(l.nextLSN)
		flag |= os.O_CREATE
	}
	f, err := fs.OpenFile(filepath.Join(dir, name), flag, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: open segment: %w", err)
	}
	l.f, l.segName = f, name
	size, err := fs.Size(filepath.Join(dir, name))
	if err != nil {
		// A continued tail segment whose size we cannot read would leave
		// segBytes at zero and misaccount the rotation threshold for the
		// whole recovered segment — fail Open instead.
		f.Close()
		return nil, nil, fmt.Errorf("wal: size %s: %w", name, err)
	}
	l.segBytes = size
	l.statSegName, l.statSegBytes = l.segName, l.segBytes
	if err := fs.SyncDir(dir); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("wal: sync dir: %w", err)
	}
	l.met.SetCheckpointLSN(l.ckptLSN)
	go l.syncer()
	return l, rec, nil
}

// Append writes one record, waits until it is durable, and returns its
// LSN. The record's LSN field is assigned by the log.
func (l *Log) Append(r Record) (uint64, error) {
	l.gate.RLock()
	defer l.gate.RUnlock()
	return l.appendDurable(r)
}

// AppendApply writes one record, waits until it is durable, then runs
// apply — all while holding the checkpoint gate, so a concurrent
// Checkpoint can never observe a state whose last commit is not yet in
// the log (or vice versa). apply's error is returned as-is.
//
// The gate is shared (appenders hold read locks): once a shared fsync
// retires a batch, every committer's apply runs on its own goroutine —
// disjoint commits release their locks and record their events in
// parallel, nothing downstream of the flush re-serializes them.
func (l *Log) AppendApply(r Record, apply func() error) error {
	l.gate.RLock()
	defer l.gate.RUnlock()
	if _, err := l.appendDurable(r); err != nil {
		return err
	}
	if apply != nil {
		return apply()
	}
	return nil
}

func (l *Log) appendDurable(r Record) (uint64, error) {
	ch, lsn, err := l.enqueue(r, false)
	if err != nil {
		return 0, err
	}
	if err := <-ch; err != nil {
		return 0, err
	}
	return lsn, nil
}

// AppendBatch writes a contiguous run of already-numbered records (a
// replication batch) and waits for one fsync to cover them all. Unlike
// Append, the records keep the LSNs they carry — they continue the
// leader's numbering — and a record whose LSN does not equal the log's
// next LSN is refused, so a follower's log is always an exact LSN prefix
// of its leader's. On an error partway, the already-enqueued prefix
// remains valid (it is contiguous); the caller resynchronises by asking
// the leader to resume from Stats().NextLSN.
func (l *Log) AppendBatch(recs []Record) error {
	if len(recs) == 0 {
		return nil
	}
	l.gate.RLock()
	defer l.gate.RUnlock()
	var last chan error
	for i := range recs {
		ch, _, err := l.enqueue(recs[i], true)
		if err != nil {
			return err
		}
		last = ch
	}
	// Per-LSN retirement means the last record's ack covers the whole
	// contiguous run.
	return <-last
}

// enqueue assigns the record its LSN (or, with strict set, verifies the
// LSN it carries continues the sequence), writes its frame into the
// active segment in LSN order and parks a waiter for a covering fsync.
//
// The expensive work — JSON encoding and CRC framing — happens outside
// every lock: the record is encoded with a placeholder LSN before the
// reservation (so an unencodable record fails without leaving a hole in
// the sequence) and the reserved LSN is patched in afterwards.
func (l *Log) enqueue(r Record, strict bool) (chan error, uint64, error) {
	if !strict {
		r.LSN = 0 // the log assigns LSNs; encode with the placeholder
	}
	payload, err := marshalRecord(r)
	if err != nil {
		return nil, 0, err
	}

	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil, 0, fmt.Errorf("wal: log closed")
	}
	if lerr := l.err; lerr != nil {
		l.mu.Unlock()
		return nil, 0, fmt.Errorf("wal: log failed: %w", lerr)
	}
	if strict && r.LSN != l.nextLSN {
		want := l.nextLSN
		l.mu.Unlock()
		return nil, 0, fmt.Errorf("wal: batch LSN gap: got %d, want %d", r.LSN, want)
	}
	lsn := l.nextLSN
	l.nextLSN++
	l.mu.Unlock()

	if !strict {
		payload = patchLSN(payload, r, lsn)
	}
	frame := appendFrame(nil, payload)

	ch := make(chan error, 1)
	if err := l.writeFrame(lsn, frame, ch); err != nil {
		return nil, 0, err
	}
	return ch, lsn, nil
}

// writeFrame stages frame as record lsn of the log. Frames enter the
// write path in LSN order — writeSeq is the ticket — but the segment
// write itself is deferred: frames accumulate in wbuf and the sync path
// drains the staged batch with a single write immediately before each
// fsync, so a batch of n commits costs one write syscall plus one fsync
// no matter how large n is, and nothing here ever blocks on the file.
// On success the caller's waiter is parked and retired — or failed, if
// the batch write or its fsync fails — by the covering flush.
func (l *Log) writeFrame(lsn uint64, frame []byte, ch chan error) error {
	l.wmu.Lock()
	for l.writeSeq != lsn {
		l.wcond.Wait()
	}
	// The sequence must advance even on failure, or every later ticket
	// would wait forever; they fail fast on the latched error instead.
	defer func() {
		l.writeSeq = lsn + 1
		l.wcond.Broadcast()
		l.wmu.Unlock()
	}()
	l.mu.Lock()
	lerr := l.err
	l.mu.Unlock()
	if lerr != nil {
		// A predecessor's batch failed: never stage a frame after a hole.
		return fmt.Errorf("wal: log failed: %w", lerr)
	}
	if l.segBytes > 0 && l.segBytes+int64(len(frame)) > l.segLimit {
		if err := l.rotate(); err != nil {
			return err
		}
	}
	l.wbuf = append(l.wbuf, frame...)
	l.segBytes += int64(len(frame))
	l.met.ObserveAppend()
	l.mu.Lock()
	l.written = lsn + 1
	l.statSegBytes = l.segBytes
	l.waiters = append(l.waiters, waiter{lsn: lsn, ch: ch})
	l.mu.Unlock()
	select {
	case l.kick <- struct{}{}:
	default:
	}
	return nil
}

// latch records the first fatal error; the log is read-only from here on.
func (l *Log) latch(err error) {
	l.mu.Lock()
	if l.err == nil {
		l.err = err
	}
	l.mu.Unlock()
}

// rotate seals the active segment (drain the staged frames, fsync —
// which also publishes the durable mark and retires the covered
// waiters — then close) and opens a fresh one named after the next LSN.
// Called with wmu held; takes smu so the handle swap cannot race an
// in-flight batch fsync.
func (l *Log) rotate() error {
	l.smu.Lock()
	defer l.smu.Unlock()
	buf := l.wbuf
	l.wbuf = nil
	l.mu.Lock()
	target := l.written
	l.mu.Unlock()
	start := time.Now()
	var err error
	if len(buf) > 0 {
		if _, werr := l.f.Write(buf); werr != nil {
			err = fmt.Errorf("wal: rotate write: %w", werr)
		}
	}
	if err == nil {
		if serr := l.f.Sync(); serr != nil {
			err = fmt.Errorf("wal: rotate sync: %w", serr)
		}
	}
	if err != nil {
		l.latch(err)
		l.finishFlush(target, time.Since(start), err)
		return err
	}
	l.finishFlush(target, time.Since(start), nil)
	if err := l.f.Close(); err != nil {
		err = fmt.Errorf("wal: rotate close: %w", err)
		l.latch(err)
		return err
	}
	name := segmentName(l.writeSeq)
	f, err := l.fs.OpenFile(filepath.Join(l.dir, name), os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		err = fmt.Errorf("wal: rotate open: %w", err)
		l.latch(err)
		return err
	}
	if err := l.fs.SyncDir(l.dir); err != nil {
		f.Close()
		err = fmt.Errorf("wal: rotate sync dir: %w", err)
		l.latch(err)
		return err
	}
	l.f, l.segName, l.segBytes = f, name, 0
	l.mu.Lock()
	l.statSegName, l.statSegBytes = name, 0
	l.mu.Unlock()
	return nil
}

// syncer is the goroutine that retires parked appenders: one fsync per
// batch, optionally after the group-commit window. Waiters that park
// while a flush is in flight form the next batch and are retired without
// waiting for another kick.
func (l *Log) syncer() {
	defer close(l.done)
	for {
		select {
		case <-l.kick:
			l.waitWindow()
			for l.flushOnce() {
				l.waitWindow()
			}
		case <-l.stop:
			l.flushOnce()
			return
		}
	}
}

// waitWindow sleeps the group-commit window on the log's clock
// (interruptible by stop).
func (l *Log) waitWindow() {
	if l.window <= 0 {
		return
	}
	t := l.clk.NewTimer(l.window)
	select {
	case <-t.C():
	case <-l.stop:
		t.Stop()
	}
}

// flushOnce retires one batch: it moves every frame staged at sample
// time into the active segment with a single write, issues one shared
// fsync, and retires the covered waiters. It reports whether any waiter
// was parked (false means the log is drained and the syncer can block).
// The write path is released before the file I/O starts — lock order is
// wmu → smu, so the staged batch is swapped out under wmu and then
// written+fsynced under smu alone: appenders stage the next batch (and
// may even rotate, serialized behind smu) while this one flushes.
func (l *Log) flushOnce() bool {
	l.gatherBatch()
	l.wmu.Lock()
	l.smu.Lock()
	buf := l.wbuf
	l.wbuf = nil
	f := l.f
	l.mu.Lock()
	target := l.written
	n := len(l.waiters)
	lerr := l.err
	l.mu.Unlock()
	l.wmu.Unlock()
	if n == 0 && len(buf) == 0 {
		l.smu.Unlock()
		return false
	}
	start := time.Now()
	err := l.writeAndSync(f, buf, lerr)
	d := time.Since(start)
	if err == nil {
		l.lastSync.Store(int64(d))
	}
	l.finishFlush(target, d, err)
	l.smu.Unlock()
	return true
}

// writeAndSync writes a drained batch and fsyncs the segment, latching
// any failure. Called with smu held. A latched prior error fails the
// flush without touching the file: the segment ends at the last batch
// before the hole, and recovery adjudicates whatever is on disk.
func (l *Log) writeAndSync(f File, buf []byte, lerr error) error {
	if lerr != nil {
		return fmt.Errorf("wal: log failed: %w", lerr)
	}
	if len(buf) > 0 {
		if _, err := f.Write(buf); err != nil {
			// The segment may now hold a torn frame; recovery will cut it.
			err = fmt.Errorf("wal: write: %w", err)
			l.latch(err)
			return err
		}
	}
	if err := f.Sync(); err != nil {
		err = fmt.Errorf("wal: fsync: %w", err)
		l.latch(err)
		return err
	}
	return nil
}

// gatherBatch gives committers acked by the previous flush a moment to
// re-append before this flush samples its target. One scheduler yield is
// always granted; beyond that the budget is a small fraction of the
// observed fsync latency (capped), so slow storage — where a commit that
// misses the batch pays a full extra flush — buys a slightly longer
// gather, while fast storage pays nearly nothing. Under steady load the
// loop exits well before the deadline: as soon as the batch is as large
// as the previous one (the acked committers are all back) or the waiter
// count stops growing.
func (l *Log) gatherBatch() {
	budget := time.Duration(l.lastSync.Load()) / 8
	if budget > 200*time.Microsecond {
		budget = 200 * time.Microsecond
	}
	deadline := l.clk.Now().Add(budget)
	full := l.lastBatch.Load()
	prev := -1
	for {
		runtime.Gosched()
		l.mu.Lock()
		n := len(l.waiters)
		l.mu.Unlock()
		if int64(n) >= full || n == prev || budget <= 0 || l.clk.Now().After(deadline) {
			return
		}
		prev = n
	}
}

// finishFlush publishes the outcome of one fsync issued when the written
// mark was target: on success the durable watermark advances to target
// (never past it — frames written mid-flush wait for the next one) and
// the covered waiters are retired; on failure every parked waiter fails,
// since the log is poisoned and no later fsync will cover them.
func (l *Log) finishFlush(target uint64, d time.Duration, err error) {
	l.mu.Lock()
	var batch []waiter
	if err != nil {
		batch, l.waiters = l.waiters, nil
	} else {
		if target > l.durable {
			l.durable = target
			for _, ch := range l.watchers {
				select {
				case ch <- struct{}{}:
				default: // already pending; the watcher will see the new mark
				}
			}
		}
		i := 0
		for i < len(l.waiters) && l.waiters[i].lsn < l.durable {
			i++
		}
		batch, l.waiters = l.waiters[:i:i], l.waiters[i:]
	}
	l.mu.Unlock()
	if len(batch) > 0 {
		if err == nil {
			l.lastBatch.Store(int64(len(batch)))
		}
		l.met.ObserveFsync(d, len(batch))
	}
	for _, w := range batch {
		w.ch <- err
	}
}

// syncNow drains the staged frames and fsyncs the active segment
// immediately, regardless of the group-commit window, and retires the
// covered waiters.
func (l *Log) syncNow() error {
	l.wmu.Lock()
	l.smu.Lock()
	buf := l.wbuf
	l.wbuf = nil
	f := l.f
	l.mu.Lock()
	target := l.written
	lerr := l.err
	l.mu.Unlock()
	l.wmu.Unlock()
	start := time.Now()
	err := l.writeAndSync(f, buf, lerr)
	l.finishFlush(target, time.Since(start), err)
	l.smu.Unlock()
	return err
}

// Sync forces any buffered records to stable storage now, regardless of
// the group-commit window. If the log has latched a fatal error — a
// failed append poisoned it — Sync reports that error even when this
// flush itself succeeds: state past the torn frame is gone, and a drain
// that relied on it must fail loudly, not report a clean shutdown.
func (l *Log) Sync() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return fmt.Errorf("wal: log closed")
	}
	l.mu.Unlock()
	err := l.syncNow()
	l.mu.Lock()
	if l.err != nil {
		err = fmt.Errorf("wal: log failed: %w", l.err)
	}
	l.mu.Unlock()
	return err
}

// Close flushes outstanding records, stops the syncer and closes the
// active segment. The log is unusable afterwards. Like Sync, Close
// reports a previously latched fatal error rather than a clean shutdown.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	reserved := l.nextLSN
	l.mu.Unlock()
	// Drain the write path: every LSN reserved before closed was set has
	// passed through writeFrame once writeSeq reaches the mark.
	l.wmu.Lock()
	for l.writeSeq != reserved {
		l.wcond.Wait()
	}
	l.wmu.Unlock()
	close(l.stop)
	<-l.done
	err := l.syncNow()
	l.smu.Lock()
	cerr := l.f.Close()
	l.smu.Unlock()
	if err == nil {
		err = cerr
	}
	l.mu.Lock()
	if l.err != nil {
		err = fmt.Errorf("wal: log failed: %w", l.err)
	}
	l.mu.Unlock()
	return err
}

// Stats reports the log's position.
type Stats struct {
	NextLSN       uint64 // LSN the next append will get
	WrittenLSN    uint64 // every LSN below this has passed the write path (staged or written)
	DurableLSN    uint64 // every LSN below this is covered by an fsync
	CheckpointLSN uint64 // redo low-water mark (0 = no checkpoint)
	Segment       string // active segment file name
	SegmentBytes  int64  // bytes in the active segment
}

// Stats returns the current log position. It takes only the state mutex,
// so it never blocks behind an in-flight write or fsync.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{
		NextLSN:       l.nextLSN,
		WrittenLSN:    l.written,
		DurableLSN:    l.durable,
		CheckpointLSN: l.ckptLSN,
		Segment:       l.statSegName,
		SegmentBytes:  l.statSegBytes,
	}
}

// Dir returns the log directory.
func (l *Log) Dir() string { return l.dir }

// FS returns the backing file system (the replication shipper tails the
// directory through the same FS the log writes it with).
func (l *Log) FS() FS { return l.fs }

// DurableLSN returns the stable-storage high-water mark: every record
// with a smaller LSN has been covered by a successful fsync. A
// replication leader ships only records below this mark, so a follower
// can never hold a record its leader might lose in a crash.
func (l *Log) DurableLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.durable
}

// Watch registers a coalescing notification channel: it receives (at
// least) one send whenever the durable LSN advances. Pair with Unwatch.
func (l *Log) Watch() <-chan struct{} {
	ch := make(chan struct{}, 1)
	l.mu.Lock()
	l.watchers = append(l.watchers, ch)
	l.mu.Unlock()
	return ch
}

// Unwatch deregisters a channel returned by Watch.
func (l *Log) Unwatch(ch <-chan struct{}) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for i, w := range l.watchers {
		if w == ch {
			l.watchers = append(l.watchers[:i], l.watchers[i+1:]...)
			return
		}
	}
}

// probeWritable creates, writes and removes a scratch file so an
// unwritable data directory fails Open with an explicit error instead of
// failing the first commit.
func probeWritable(fs FS, dir string) error {
	path := filepath.Join(dir, ".wal-probe.tmp")
	f, err := fs.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, werr := f.Write([]byte("probe\n")); werr != nil {
		f.Close()
		fs.Remove(path)
		return werr
	}
	if cerr := f.Close(); cerr != nil {
		fs.Remove(path)
		return cerr
	}
	return fs.Remove(path)
}
