package wal

import (
	"reflect"
	"strings"
	"testing"

	"nestedtx/internal/adt"
)

// Cold-boot edge cases: the states a follower's data directory can be in
// when it (re)joins a leader — empty, checkpoint-only, or with its
// newest segment set aside as corrupt — must all recover cleanly.

func TestColdBootEmptyDir(t *testing.T) {
	fs := NewMemFS()
	lg, rec := mustOpen(t, fs, "cold", Options{})
	if rec.NextLSN != 0 || len(rec.Records) != 0 || len(rec.States()) != 0 {
		t.Fatalf("empty-dir recovery = %+v, want pristine", rec)
	}
	h := newHarness(t, lg)
	h.register("ctr", adt.Counter{})
	h.commit("ctr", adt.CtrAdd{Delta: 3})
	if err := lg.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	_, rec2 := mustOpen(t, fs, "cold", Options{})
	if rec2.NextLSN != 2 || !reflect.DeepEqual(rec2.States(), h.states) {
		t.Fatalf("reopen after empty-dir boot: NextLSN %d states %v", rec2.NextLSN, rec2.States())
	}
	if err := rec2.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestColdBootCheckpointWithZeroSegments(t *testing.T) {
	fs := NewMemFS()
	lg, _ := mustOpen(t, fs, "cold", Options{})
	h := newHarness(t, lg)
	h.register("ctr", adt.Counter{})
	for i := 0; i < 5; i++ {
		h.commit("ctr", adt.CtrAdd{Delta: 1})
	}
	if err := lg.Checkpoint(func() map[string]adt.State { return h.states }); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	ckpt := lg.Stats().CheckpointLSN
	if err := lg.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Remove the empty post-checkpoint segment: the dir now holds only
	// the checkpoint file, as after a crash between the checkpoint's
	// rename and its segment creation reaching the directory.
	if err := fs.Remove("cold/" + segmentName(ckpt)); err != nil {
		t.Fatalf("remove segment: %v", err)
	}

	lg2, rec := mustOpen(t, fs, "cold", Options{})
	if rec.NextLSN != ckpt || rec.CheckpointLSN != ckpt {
		t.Fatalf("checkpoint-only recovery: NextLSN %d CheckpointLSN %d, want %d", rec.NextLSN, rec.CheckpointLSN, ckpt)
	}
	if !reflect.DeepEqual(rec.States(), h.states) {
		t.Fatalf("checkpoint-only states = %v, want %v", rec.States(), h.states)
	}
	if err := rec.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	// The log is usable: a fresh segment was created at the checkpoint LSN.
	h2 := &harness{t: t, lg: lg2, states: rec.States()}
	h2.commit("ctr", adt.CtrAdd{Delta: 10})
	if err := lg2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	_, rec2 := mustOpen(t, fs, "cold", Options{})
	if rec2.NextLSN != ckpt+1 || !reflect.DeepEqual(rec2.States(), h2.states) {
		t.Fatalf("post-boot append lost: NextLSN %d states %v", rec2.NextLSN, rec2.States())
	}
}

func TestColdBootNewestSegmentCorrupt(t *testing.T) {
	fs := NewMemFS()
	lg, _ := mustOpen(t, fs, "cold", Options{SegmentBytes: 256})
	h := newHarness(t, lg)
	h.register("ctr", adt.Counter{})
	for i := 0; i < 30; i++ {
		h.commit("ctr", adt.CtrAdd{Delta: 1})
	}
	if err := lg.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	names, err := fs.ReadDir("cold")
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	var newest string
	var newestLSN uint64
	for _, n := range names {
		if lsn, ok := parseLSN(n, "wal-", ".seg"); ok && (newest == "" || lsn > newestLSN) {
			newest, newestLSN = n, lsn
		}
	}
	if newestLSN == 0 {
		t.Fatalf("workload produced a single segment; cannot stage the corruption (%v)", names)
	}
	// The whole newest segment was set aside by an earlier recovery (or an
	// operator): its records are gone, and boot must serve the surviving
	// prefix — never half of the corrupt file.
	if err := fs.Rename("cold/"+newest, "cold/"+newest+".corrupt"); err != nil {
		t.Fatalf("rename: %v", err)
	}

	lg2, rec := mustOpen(t, fs, "cold", Options{SegmentBytes: 256})
	if rec.NextLSN != newestLSN {
		t.Fatalf("recovery past a .corrupt segment: NextLSN %d, want %d", rec.NextLSN, newestLSN)
	}
	if err := rec.Verify(); err != nil {
		t.Fatalf("Verify of surviving prefix: %v", err)
	}
	for _, n := range rec.Dropped {
		if strings.HasSuffix(n, ".corrupt") {
			t.Fatalf("recovery re-adjudicated the .corrupt file %q", n)
		}
	}
	// Appends continue the surviving sequence.
	h2 := &harness{t: t, lg: lg2, states: rec.States()}
	h2.commit("ctr", adt.CtrAdd{Delta: 1})
	if got := lg2.Stats().NextLSN; got != newestLSN+1 {
		t.Fatalf("append after corrupt-segment boot got NextLSN %d, want %d", got, newestLSN+1)
	}
	lg2.Close()
}
