//go:build !linux

package wal

import "os"

// fdatasync falls back to full fsync on platforms without a distinct
// data-sync syscall.
func fdatasync(f *os.File) error { return f.Sync() }
