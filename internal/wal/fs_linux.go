//go:build linux

package wal

import (
	"os"
	"syscall"
)

// fdatasync flushes a file's data and the metadata needed to read it
// back (its size) to stable storage, skipping the timestamp-only
// metadata journal commit that full fsync pays per flush.
func fdatasync(f *os.File) error {
	if err := syscall.Fdatasync(int(f.Fd())); err != nil {
		return &os.PathError{Op: "fdatasync", Path: f.Name(), Err: err}
	}
	return nil
}
