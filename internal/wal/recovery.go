package wal

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strconv"
	"strings"

	"nestedtx/internal/adt"
	"nestedtx/internal/checker"
	"nestedtx/internal/core"
	"nestedtx/internal/event"
	"nestedtx/internal/tree"
)

// Recovery is the result of scanning a log directory: the newest valid
// checkpoint, every intact record past it, and the object states their
// redo produces. Verify goes further than redo: it reconstructs the
// recovered history as a formal schedule and replays it through the
// serial-correctness checker, certifying that Theorem 34 holds for the
// state the recovered Manager will serve.
type Recovery struct {
	// CheckpointLSN is the redo low-water mark: the first LSN redone.
	// Zero means no checkpoint was found and redo starts from empty.
	CheckpointLSN uint64
	// Checkpoint holds the base states from the newest valid checkpoint
	// (nil when CheckpointLSN is zero).
	Checkpoint map[string]adt.State
	// Records are the intact records with LSN >= CheckpointLSN, in LSN
	// order: a contiguous, durable prefix of the pre-crash history.
	Records []Record
	// NextLSN is the LSN the next append will receive.
	NextLSN uint64
	// TornBytes counts bytes cut from the first corrupt frame onward in
	// the segment where scanning stopped.
	TornBytes int64
	// Dropped lists files set aside (renamed *.corrupt) or ignored
	// because they follow a corrupt frame or failed to parse.
	Dropped []string

	tailSegment string
	states      map[string]adt.State
	segments    []SegmentInfo
}

// SegmentInfo describes one scanned segment file.
type SegmentInfo struct {
	Name     string
	Size     int64
	FirstLSN uint64 // valid when Records > 0
	LastLSN  uint64 // valid when Records > 0
	Records  int
	Torn     bool // scanning stopped inside this segment
}

// States returns the recovered object states: checkpoint base plus the
// redo of every recovered record. The caller takes ownership.
func (r *Recovery) States() map[string]adt.State { return r.states }

// Segments returns per-segment scan details, in scan order.
func (r *Recovery) Segments() []SegmentInfo { return r.segments }

// Inspect scans dir read-only: like the recovery pass of Open, but it
// neither truncates torn tails nor renames corrupt files, so it is safe
// to point at a live or post-mortem log directory (cmd/txwal uses it).
func Inspect(dir string, fs FS) (*Recovery, error) {
	if fs == nil {
		fs = OSFS{}
	}
	return scanDir(fs, dir, false)
}

// parseLSN extracts the LSN from a file name of form prefix-%016d.suffix.
func parseLSN(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	mid := name[len(prefix) : len(name)-len(suffix)]
	n, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// scanDir performs the recovery scan. With mutate set (the Open path) it
// physically truncates the torn tail and renames undecodable files to
// *.corrupt so they are never scanned again; without it (Inspect) the
// directory is left untouched.
func scanDir(fs FS, dir string, mutate bool) (*Recovery, error) {
	names, err := fs.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: read dir %s: %w", dir, err)
	}
	var segLSNs []uint64
	segByLSN := make(map[uint64]string)
	var ckptLSNs []uint64
	ckptByLSN := make(map[uint64]string)
	rec := &Recovery{states: make(map[string]adt.State)}
	for _, n := range names {
		if lsn, ok := parseLSN(n, "wal-", ".seg"); ok {
			segLSNs = append(segLSNs, lsn)
			segByLSN[lsn] = n
			continue
		}
		if lsn, ok := parseLSN(n, "ckpt-", ".ckpt"); ok {
			ckptLSNs = append(ckptLSNs, lsn)
			ckptByLSN[lsn] = n
			continue
		}
		if strings.HasSuffix(n, ".tmp") && mutate {
			// A checkpoint that never reached its rename.
			fs.Remove(filepath.Join(dir, n))
		}
	}
	sort.Slice(segLSNs, func(i, j int) bool { return segLSNs[i] < segLSNs[j] })
	sort.Slice(ckptLSNs, func(i, j int) bool { return ckptLSNs[i] > ckptLSNs[j] })

	// Newest valid checkpoint wins; invalid ones are set aside.
	for _, lsn := range ckptLSNs {
		name := ckptByLSN[lsn]
		buf, err := readWhole(fs, filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("wal: read checkpoint %s: %w", name, err)
		}
		payload, frameLen, ferr := scanFrame(buf)
		if ferr != nil || payload == nil || frameLen != len(buf) {
			rec.discard(fs, dir, name, mutate)
			continue
		}
		next, states, cerr := unmarshalCheckpoint(payload)
		if cerr != nil || next != lsn {
			rec.discard(fs, dir, name, mutate)
			continue
		}
		rec.CheckpointLSN = next
		rec.Checkpoint = states
		break
	}
	for x, st := range rec.Checkpoint {
		rec.states[x] = st
	}
	rec.NextLSN = rec.CheckpointLSN

	// Scan segments in LSN order; the first corrupt frame ends the
	// durable prefix — it is truncated (mutate) and every later segment
	// is set aside, never replayed.
	corrupted := false
	for _, lsn := range segLSNs {
		name := segByLSN[lsn]
		if corrupted {
			rec.discard(fs, dir, name, mutate)
			continue
		}
		path := filepath.Join(dir, name)
		buf, err := readWhole(fs, path)
		if err != nil {
			return nil, fmt.Errorf("wal: read segment %s: %w", name, err)
		}
		info := SegmentInfo{Name: name, Size: int64(len(buf))}
		offset := 0
		for {
			payload, frameLen, ferr := scanFrame(buf[offset:])
			if ferr == nil && payload == nil {
				break // clean end of segment
			}
			var r Record
			if ferr == nil {
				r, ferr = unmarshalRecord(payload)
			}
			if ferr == nil && r.LSN >= rec.NextLSN && r.LSN != rec.NextLSN {
				ferr = fmt.Errorf("wal: LSN gap: got %d, want %d", r.LSN, rec.NextLSN)
			}
			if ferr != nil {
				// Torn or corrupt: cut here, drop everything after.
				info.Torn = true
				corrupted = true
				rec.TornBytes = int64(len(buf) - offset)
				if mutate {
					if terr := truncateAt(fs, path, int64(offset)); terr != nil {
						return nil, fmt.Errorf("wal: truncate %s: %w", name, terr)
					}
				}
				break
			}
			if r.LSN >= rec.NextLSN {
				rec.Records = append(rec.Records, r)
				rec.NextLSN = r.LSN + 1
				if info.Records == 0 {
					info.FirstLSN = r.LSN
				}
				info.LastLSN = r.LSN
				info.Records++
			}
			offset += frameLen
		}
		rec.segments = append(rec.segments, info)
		rec.tailSegment = name
	}

	if err := rec.redo(); err != nil {
		return nil, err
	}
	return rec, nil
}

// discard sets a file aside: renamed to *.corrupt when mutating, just
// recorded otherwise.
func (r *Recovery) discard(fs FS, dir, name string, mutate bool) {
	r.Dropped = append(r.Dropped, name)
	if mutate {
		fs.Rename(filepath.Join(dir, name), filepath.Join(dir, name+".corrupt"))
	}
}

func readWhole(fs FS, path string) ([]byte, error) {
	f, err := fs.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}

func truncateAt(fs FS, path string, size int64) error {
	f, err := fs.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := f.Truncate(size); err != nil {
		return err
	}
	return f.Sync()
}

// redo applies the recovered records to the checkpoint base, verifying
// each logged value against what the operation actually returns — a
// mismatch means the log or checkpoint is inconsistent and recovery must
// not trust it.
func (r *Recovery) redo() error {
	for _, rec := range r.Records {
		switch {
		case rec.Register != nil:
			// A re-registration of an existing object is a no-op (the
			// live path refuses the duplicate after logging it).
			if _, ok := r.states[rec.Register.Name]; !ok {
				r.states[rec.Register.Name] = rec.Register.Initial
			}
		case rec.Commit != nil:
			for i, e := range rec.Commit.Effects {
				st, ok := r.states[e.Obj]
				if !ok {
					return fmt.Errorf("wal: record %d effect %d: unknown object %q", rec.LSN, i, e.Obj)
				}
				next, v := e.Op.Apply(st)
				if v != e.Val {
					return fmt.Errorf("wal: record %d effect %d on %q: logged value %v, redo produced %v",
						rec.LSN, i, e.Obj, e.Val, v)
				}
				r.states[e.Obj] = next
			}
		}
	}
	return nil
}

// Schedule reconstructs the recovered history as a formal concurrent
// schedule over a fresh system type. Each recovered commit becomes one
// top-level transaction under T0 (numbered in LSN order) whose accesses
// are its logged effects, emitted in exactly the event pattern the live
// runtime records: because the WAL append happens before the committer's
// locks are released, log order agrees with the per-object conflict
// order, and this serial rendering is a faithful account of what the
// pre-crash system did.
func (r *Recovery) Schedule() (event.Schedule, *event.SystemType, error) {
	st := event.NewSystemType()
	for x, s := range r.Checkpoint {
		st.DefineObject(x, s)
	}
	sched := event.Schedule{{Kind: event.Create, T: tree.Root}}
	k := 0
	for _, rec := range r.Records {
		if rec.Register != nil {
			if _, ok := st.ObjectInitial(rec.Register.Name); !ok {
				st.DefineObject(rec.Register.Name, rec.Register.Initial)
			}
			continue
		}
		c := rec.Commit
		t := tree.Root.Child(k)
		k++
		sched = append(sched,
			event.Event{Kind: event.RequestCreate, T: t},
			event.Event{Kind: event.Create, T: t},
		)
		var touched []string
		seen := make(map[string]bool)
		for j, e := range c.Effects {
			a := t.Child(j)
			if err := st.DefineAccess(a, e.Obj, e.Op); err != nil {
				return nil, nil, fmt.Errorf("wal: record %d: %w", rec.LSN, err)
			}
			sched = append(sched,
				event.Event{Kind: event.RequestCreate, T: a},
				event.Event{Kind: event.Create, T: a},
				event.Event{Kind: event.RequestCommit, T: a, Value: e.Val},
				event.Event{Kind: event.Commit, T: a},
				event.Event{Kind: event.InformCommitAt, T: a, Object: e.Obj},
				event.Event{Kind: event.ReportCommit, T: a, Value: e.Val},
			)
			if !seen[e.Obj] {
				seen[e.Obj] = true
				touched = append(touched, e.Obj)
			}
		}
		sched = append(sched,
			event.Event{Kind: event.RequestCommit, T: t, Value: c.Value},
			event.Event{Kind: event.Commit, T: t},
		)
		for _, x := range touched {
			sched = append(sched, event.Event{Kind: event.InformCommitAt, T: t, Object: x})
		}
		sched = append(sched, event.Event{Kind: event.ReportCommit, T: t, Value: c.Value})
	}
	return sched, st, nil
}

// Verify machine-checks the recovered history: the reconstructed
// schedule must be well-formed, replayable by every R/W Locking object
// automaton (which re-validates every logged value against the data
// type), accepted by the Theorem-34 serial-correctness checker, and the
// automata's final states must equal the redo states the recovered
// Manager will serve. This is the property "Theorem 34 holds across a
// crash".
func (r *Recovery) Verify() error {
	sched, st, err := r.Schedule()
	if err != nil {
		return err
	}
	if err := event.WFConcurrent(sched, st); err != nil {
		return fmt.Errorf("wal: recovered schedule not well-formed: %w", err)
	}
	for _, x := range st.Objects() {
		lo, err := core.Replay(st, x, core.ReadWrite, sched.AtLockObject(st, x))
		if err != nil {
			return fmt.Errorf("wal: recovered schedule rejected at M(%s): %w", x, err)
		}
		if got := lo.CurrentState(); !reflect.DeepEqual(got, r.states[x]) {
			return fmt.Errorf("wal: %s: replay state %v != redo state %v", x, got, r.states[x])
		}
	}
	if err := checker.CheckAll(sched, st); err != nil {
		return fmt.Errorf("wal: recovered schedule fails serial correctness: %w", err)
	}
	return nil
}
