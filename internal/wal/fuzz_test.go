package wal

import (
	"testing"
)

// FuzzSegmentScan feeds arbitrary bytes through the segment frame
// scanner and record decoder: recovery runs this code over whatever a
// crash left on disk, so it must classify any input as frames or
// corruption — never panic and never allocate off an unvalidated length.
func FuzzSegmentScan(f *testing.F) {
	valid, _ := marshalRecord(Record{LSN: 0, Commit: &CommitRecord{TID: "T0.1"}})
	f.Add(appendFrame(nil, valid))
	f.Add([]byte(""))
	f.Add([]byte("12 deadbeef\n{}"))      // bad CRC
	f.Add([]byte("999999999 00000000\n")) // giant length
	f.Add([]byte("-5 00000000\n{}\n"))    // negative length
	f.Add([]byte("2 99999999\n{}\n"))     // wrong checksum for {}
	f.Add(append(appendFrame(nil, valid), appendFrame(nil, valid)...))
	torn := appendFrame(nil, valid)
	f.Add(torn[:len(torn)/2]) // torn tail

	f.Fuzz(func(t *testing.T, data []byte) {
		buf := data
		for i := 0; i < 64 && len(buf) > 0; i++ {
			payload, n, err := scanFrame(buf)
			if err != nil || payload == nil {
				break
			}
			_, _ = unmarshalRecord(payload)
			buf = buf[n:]
		}
	})
}
