package wal

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"strconv"

	"nestedtx/internal/adt"
)

// The log stores two kinds of records. A register record introduces an
// object with its initial state; a commit record is the redo image of one
// committed top-level transaction: its surviving accesses in effect
// order, each op and its returned value in the adt codec encoding (the
// same tagged JSON the wire protocol and schedule-persistence tools use).
// Logging the returned values as well as the ops is what lets recovery do
// more than replay blindly: the reconstructed schedule carries the values
// the live run actually returned, and the Theorem-34 checker verifies
// them against the object automata.

// Effect is one surviving access of a committed top-level transaction:
// op applied to obj returned val.
type Effect struct {
	Obj string
	Op  adt.Op
	Val adt.Value
}

// CommitRecord is the redo image of one committed top-level transaction.
type CommitRecord struct {
	TID     string // runtime TID at commit time (informational; recovery renumbers)
	Value   adt.Value
	Effects []Effect
}

// RegisterRecord introduces an object and its initial state.
type RegisterRecord struct {
	Name    string
	Initial adt.State
}

// Record is one decoded log record. Exactly one of Commit and Register
// is non-nil.
type Record struct {
	LSN      uint64
	Commit   *CommitRecord
	Register *RegisterRecord
}

// ---- JSON forms ----

type jsonEffect struct {
	Obj string          `json:"x"`
	Op  json.RawMessage `json:"op"`
	Val json.RawMessage `json:"v"`
}

type jsonRecord struct {
	LSN  uint64          `json:"lsn"`
	Kind string          `json:"k"` // "commit" | "register"
	TID  string          `json:"tid,omitempty"`
	Val  json.RawMessage `json:"v,omitempty"`
	Ops  []jsonEffect    `json:"ops,omitempty"`
	Obj  string          `json:"obj,omitempty"`
	St   json.RawMessage `json:"st,omitempty"`
}

// encodeValueOrNil encodes v, falling back to nil for values outside the
// library vocabulary: a top-level Return value may be any comparable
// type, and the checker never inspects top-level commit values, so an
// unencodable one degrades to nil in the log rather than failing the
// commit. Access values are always library values and never hit the
// fallback.
func encodeValueOrNil(v adt.Value) json.RawMessage {
	raw, err := adt.EncodeValue(v)
	if err != nil {
		raw, _ = adt.EncodeValue(nil)
	}
	return raw
}

func marshalRecord(r Record) ([]byte, error) {
	jr := jsonRecord{LSN: r.LSN}
	switch {
	case r.Commit != nil:
		jr.Kind = "commit"
		jr.TID = r.Commit.TID
		jr.Val = encodeValueOrNil(r.Commit.Value)
		jr.Ops = make([]jsonEffect, len(r.Commit.Effects))
		for i, e := range r.Commit.Effects {
			op, err := adt.EncodeOp(e.Op)
			if err != nil {
				return nil, fmt.Errorf("wal: %s op %d on %q: %w", r.Commit.TID, i, e.Obj, err)
			}
			val, err := adt.EncodeValue(e.Val)
			if err != nil {
				return nil, fmt.Errorf("wal: %s value %d on %q: %w", r.Commit.TID, i, e.Obj, err)
			}
			jr.Ops[i] = jsonEffect{Obj: e.Obj, Op: op, Val: val}
		}
	case r.Register != nil:
		jr.Kind = "register"
		jr.Obj = r.Register.Name
		st, err := adt.EncodeState(r.Register.Initial)
		if err != nil {
			return nil, fmt.Errorf("wal: register %q: %w", r.Register.Name, err)
		}
		jr.St = st
	default:
		return nil, fmt.Errorf("wal: empty record")
	}
	return json.Marshal(jr)
}

// lsnZeroPrefix is how marshalRecord opens a payload encoded with the
// placeholder LSN: jsonRecord declares LSN first, and encoding/json
// emits struct fields in declaration order.
var lsnZeroPrefix = []byte(`{"lsn":0,`)

// patchLSN splices the reserved LSN into a payload that was marshalled
// with r.LSN == 0 — the appender encodes before its LSN exists so the
// expensive JSON encoding stays outside the log's critical sections. If
// the encoder's shape ever stops matching the expected prefix, it falls
// back to a full re-marshal (which cannot fail: the placeholder marshal
// of the same record already succeeded).
func patchLSN(payload []byte, r Record, lsn uint64) []byte {
	if lsn == 0 {
		return payload
	}
	if bytes.HasPrefix(payload, lsnZeroPrefix) {
		out := make([]byte, 0, len(payload)+20)
		out = append(out, lsnZeroPrefix[:len(lsnZeroPrefix)-2]...) // `{"lsn":`
		out = strconv.AppendUint(out, lsn, 10)
		out = append(out, payload[len(lsnZeroPrefix)-1:]...) // from the comma on
		return out
	}
	r.LSN = lsn
	if p, err := marshalRecord(r); err == nil {
		return p
	}
	return payload
}

func unmarshalRecord(data []byte) (Record, error) {
	var jr jsonRecord
	if err := json.Unmarshal(data, &jr); err != nil {
		return Record{}, fmt.Errorf("wal: decode record: %w", err)
	}
	r := Record{LSN: jr.LSN}
	switch jr.Kind {
	case "commit":
		c := &CommitRecord{TID: jr.TID}
		if len(jr.Val) > 0 {
			v, err := adt.DecodeValue(jr.Val)
			if err != nil {
				return Record{}, fmt.Errorf("wal: record %d: %w", jr.LSN, err)
			}
			c.Value = v
		}
		c.Effects = make([]Effect, len(jr.Ops))
		for i, je := range jr.Ops {
			op, err := adt.DecodeOp(je.Op)
			if err != nil {
				return Record{}, fmt.Errorf("wal: record %d op %d: %w", jr.LSN, i, err)
			}
			val, err := adt.DecodeValue(je.Val)
			if err != nil {
				return Record{}, fmt.Errorf("wal: record %d value %d: %w", jr.LSN, i, err)
			}
			c.Effects[i] = Effect{Obj: je.Obj, Op: op, Val: val}
		}
		r.Commit = c
	case "register":
		st, err := adt.DecodeState(jr.St)
		if err != nil {
			return Record{}, fmt.Errorf("wal: record %d register %q: %w", jr.LSN, jr.Obj, err)
		}
		r.Register = &RegisterRecord{Name: jr.Obj, Initial: st}
	default:
		return Record{}, fmt.Errorf("wal: record %d: unknown kind %q", jr.LSN, jr.Kind)
	}
	return r, nil
}

// ---- framing ----

// Frames mirror the wire protocol's shape with an added checksum:
//
//	<payload-len> <crc32c-hex>\n
//	<payload JSON>\n
//
// The CRC (Castagnoli) covers the payload bytes only. Anything that does
// not parse — short header, short payload, checksum mismatch, bad JSON,
// non-contiguous LSN — marks the torn point: recovery truncates there
// and never replays a byte past it.

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// maxRecordSize bounds a single record frame; a header claiming more is
// corruption, not a big record.
const maxRecordSize = 64 << 20

// appendFrame appends the framed encoding of payload to dst.
func appendFrame(dst, payload []byte) []byte {
	dst = strconv.AppendInt(dst, int64(len(payload)), 10)
	dst = append(dst, ' ')
	dst = strconv.AppendUint(dst, uint64(crc32.Checksum(payload, castagnoli)), 16)
	dst = append(dst, '\n')
	dst = append(dst, payload...)
	dst = append(dst, '\n')
	return dst
}

// scanFrame parses one frame at the start of buf. It returns the payload
// and the total frame length. A nil payload with err == nil means buf is
// empty (clean end). Any malformation returns an error; the caller
// treats the frame start as the torn point.
func scanFrame(buf []byte) (payload []byte, frameLen int, err error) {
	if len(buf) == 0 {
		return nil, 0, nil
	}
	nl := bytes.IndexByte(buf, '\n')
	if nl < 0 {
		return nil, 0, fmt.Errorf("wal: torn frame header")
	}
	header := buf[:nl]
	sp := bytes.IndexByte(header, ' ')
	if sp < 0 {
		return nil, 0, fmt.Errorf("wal: malformed frame header %q", header)
	}
	size, err := strconv.ParseInt(string(header[:sp]), 10, 64)
	if err != nil || size < 0 || size > maxRecordSize {
		return nil, 0, fmt.Errorf("wal: bad frame length %q", header[:sp])
	}
	sum, err := strconv.ParseUint(string(header[sp+1:]), 16, 32)
	if err != nil {
		return nil, 0, fmt.Errorf("wal: bad frame checksum %q", header[sp+1:])
	}
	end := nl + 1 + int(size) + 1
	if end > len(buf) {
		return nil, 0, fmt.Errorf("wal: torn frame payload (%d of %d bytes)", len(buf)-nl-1, size+1)
	}
	payload = buf[nl+1 : nl+1+int(size)]
	if buf[end-1] != '\n' {
		return nil, 0, fmt.Errorf("wal: missing frame terminator")
	}
	if got := crc32.Checksum(payload, castagnoli); uint32(sum) != got {
		return nil, 0, fmt.Errorf("wal: checksum mismatch: header %08x, payload %08x", sum, got)
	}
	return payload, end, nil
}

// ---- replication framing ----

// EncodeFrame appends the CRC-framed encoding of r to dst — byte-
// identical to what the log writes to a segment, so a shipped
// replication batch is re-checked against the same checksums on the
// follower.
func EncodeFrame(dst []byte, r Record) ([]byte, error) {
	payload, err := marshalRecord(r)
	if err != nil {
		return nil, err
	}
	return appendFrame(dst, payload), nil
}

// DecodeFrames strictly parses a buffer of complete frames (a shipped
// replication batch): every frame must be intact, checksum and all, and
// the buffer must end exactly at a frame boundary — a batch is never
// torn, so any malformation is corruption, not a partial write.
func DecodeFrames(buf []byte) ([]Record, error) {
	var out []Record
	for len(buf) > 0 {
		payload, n, err := scanFrame(buf)
		if err != nil {
			return nil, err
		}
		r, err := unmarshalRecord(payload)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
		buf = buf[n:]
	}
	return out, nil
}
