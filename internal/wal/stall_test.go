package wal

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nestedtx/internal/adt"
)

// TestStalledFsyncDoesNotBlockAppends pins the pipelined write/sync
// split: while one fsync is held in flight (a blocking FaultFS sync
// hook), appenders must still complete their segment writes — the
// written mark advances — while the durable mark stays exactly where the
// stalled fsync left it: it may never cover an LSN no completed fsync
// has seen. Releasing the stall retires everything, and the resulting
// log passes full recovery verification.
func TestStalledFsyncDoesNotBlockAppends(t *testing.T) {
	mem := NewMemFS()
	ffs := NewFaultFS(mem)
	var once sync.Once
	entered := make(chan struct{})
	release := make(chan struct{})
	ffs.SetSyncHook(func() {
		once.Do(func() { close(entered) })
		<-release
	})

	lg, _ := mustOpen(t, ffs, "d", Options{})
	defer lg.Close()

	var acked atomic.Int64
	var wg sync.WaitGroup
	appendAsync := func(r Record) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := lg.Append(r); err != nil {
				t.Errorf("append: %v", err)
				return
			}
			acked.Add(1)
		}()
	}

	// First append: its flush enters the hook and stalls there.
	appendAsync(Record{Register: &RegisterRecord{Name: "reg", Initial: adt.NewRegister(int64(0))}})
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("fsync never issued")
	}

	// With the flush in flight, more appends must finish their writes.
	const extra = 8
	for i := 0; i < extra; i++ {
		v := int64(i)
		appendAsync(Record{Commit: &CommitRecord{TID: "T0.1", Value: v,
			Effects: []Effect{{Obj: "reg", Op: adt.RegWrite{V: v}, Val: v}}}})
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := lg.Stats()
		// The stalled fsync has not completed: the durable mark must not
		// move, no matter how many frames have been written past it.
		if st.DurableLSN != 0 {
			t.Fatalf("durable mark %d advanced past a stalled fsync", st.DurableLSN)
		}
		if st.WrittenLSN == extra+1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("writes stuck behind the stalled fsync: written=%d, want %d",
				st.WrittenLSN, extra+1)
		}
		time.Sleep(time.Millisecond)
	}
	if got := acked.Load(); got != 0 {
		t.Fatalf("%d commits acked before any fsync completed", got)
	}

	close(release)
	wg.Wait()
	if st := lg.Stats(); st.DurableLSN != extra+1 {
		t.Fatalf("durable mark %d after all acks, want %d", st.DurableLSN, extra+1)
	}
	if err := lg.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	_, rec := mustOpen(t, mem, "d", Options{})
	if len(rec.Records) != extra+1 {
		t.Fatalf("recovered %d records, want %d", len(rec.Records), extra+1)
	}
	if err := rec.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

// TestPoisonedLogDrainFailsLoudly is the regression test for the drain
// bug: a failed append latches a fatal error, and a later Sync or Close
// must report it even when their own fsync succeeds (the disk "healed"),
// because acknowledged state past the torn frame is gone. Before the
// fix, both returned nil and a server drain reported a clean shutdown
// over a poisoned log.
func TestPoisonedLogDrainFailsLoudly(t *testing.T) {
	mem := NewMemFS()
	ffs := NewFaultFS(mem)
	lg, _ := mustOpen(t, ffs, "d", Options{})
	h := newHarness(t, lg)
	h.register("ctr", adt.Counter{})
	h.commit("ctr", adt.CtrAdd{Delta: 1})

	ffs.FailAfter(0)
	_, err := lg.Append(Record{Commit: &CommitRecord{TID: "T0.9", Value: int64(1),
		Effects: []Effect{{Obj: "ctr", Op: adt.CtrAdd{Delta: 1}, Val: int64(2)}}}})
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("append past fault: err = %v, want ErrInjected", err)
	}

	// The disk heals: raw fsyncs succeed again. The log must still be
	// poisoned — its tail holds a torn frame.
	ffs.CrashAfter(-1)
	if err := lg.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("Sync on a poisoned log: err = %v, want the latched ErrInjected", err)
	}
	if err := lg.Close(); !errors.Is(err, ErrInjected) {
		t.Fatalf("Close on a poisoned log: err = %v, want the latched ErrInjected", err)
	}
}
