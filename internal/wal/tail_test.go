package wal

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"nestedtx/internal/adt"
)

func mustNext(t *testing.T, tail *Tailer, maxRecords, maxBytes int) []Record {
	t.Helper()
	recs, err := tail.Next(maxRecords, maxBytes)
	if err != nil {
		t.Fatalf("tail.Next: %v", err)
	}
	return recs
}

func TestTailerFollowsLiveAppends(t *testing.T) {
	fs := NewMemFS()
	lg, _ := mustOpen(t, fs, "d", Options{})
	defer lg.Close()
	h := newHarness(t, lg)
	h.register("ctr", adt.Counter{})

	tail := NewTailer("d", fs, 0)
	recs := mustNext(t, tail, 0, 0)
	if len(recs) != 1 || recs[0].Register == nil || recs[0].LSN != 0 {
		t.Fatalf("first read = %+v, want the register record at LSN 0", recs)
	}

	for i := 0; i < 5; i++ {
		h.commit("ctr", adt.CtrAdd{Delta: 1})
	}
	recs = mustNext(t, tail, 0, 0)
	if len(recs) != 5 {
		t.Fatalf("tail read %d records, want 5", len(recs))
	}
	for i, r := range recs {
		if r.LSN != uint64(i+1) || r.Commit == nil {
			t.Fatalf("record %d = %+v, want commit at LSN %d", i, r, i+1)
		}
	}
	if recs = mustNext(t, tail, 0, 0); len(recs) != 0 {
		t.Fatalf("caught-up tail returned %d records", len(recs))
	}
	if got := tail.NextLSN(); got != 6 {
		t.Fatalf("NextLSN = %d, want 6", got)
	}
}

func TestTailerFollowsRotation(t *testing.T) {
	fs := NewMemFS()
	lg, _ := mustOpen(t, fs, "d", Options{SegmentBytes: 256})
	defer lg.Close()
	h := newHarness(t, lg)
	h.register("ctr", adt.Counter{})
	for i := 0; i < 30; i++ {
		h.commit("ctr", adt.CtrAdd{Delta: 1})
	}
	if segs, _ := fs.ReadDir("d"); len(segs) < 2 {
		t.Fatalf("expected multiple segments, have %v", segs)
	}

	tail := NewTailer("d", fs, 0)
	var got []Record
	for {
		recs := mustNext(t, tail, 7, 0) // small batches so reads straddle segments
		if len(recs) == 0 {
			break
		}
		got = append(got, recs...)
	}
	if len(got) != 31 {
		t.Fatalf("tailed %d records across rotations, want 31", len(got))
	}
	for i, r := range got {
		if r.LSN != uint64(i) {
			t.Fatalf("record %d has LSN %d", i, r.LSN)
		}
	}
}

func TestTailerStartsMidSegment(t *testing.T) {
	fs := NewMemFS()
	lg, _ := mustOpen(t, fs, "d", Options{})
	defer lg.Close()
	h := newHarness(t, lg)
	h.register("ctr", adt.Counter{})
	for i := 0; i < 9; i++ {
		h.commit("ctr", adt.CtrAdd{Delta: 1})
	}
	tail := NewTailer("d", fs, 5)
	recs := mustNext(t, tail, 0, 0)
	if len(recs) != 5 || recs[0].LSN != 5 || recs[4].LSN != 9 {
		t.Fatalf("mid-segment tail from 5 read %d records starting %d", len(recs), recs[0].LSN)
	}
}

func TestTailerTruncatedByCheckpoint(t *testing.T) {
	fs := NewMemFS()
	lg, _ := mustOpen(t, fs, "d", Options{})
	defer lg.Close()
	h := newHarness(t, lg)
	h.register("ctr", adt.Counter{})
	for i := 0; i < 9; i++ {
		h.commit("ctr", adt.CtrAdd{Delta: 1})
	}
	// A caught-up tailer rides through the truncation: its position equals
	// the checkpoint LSN, so re-resolving lands on the fresh segment.
	tail := NewTailer("d", fs, 0)
	if recs := mustNext(t, tail, 0, 0); len(recs) != 10 {
		t.Fatalf("pre-checkpoint tail read %d records, want 10", len(recs))
	}
	if err := lg.Checkpoint(func() map[string]adt.State { return h.states }); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if recs := mustNext(t, tail, 0, 0); len(recs) != 0 {
		t.Fatalf("caught-up tail read %d records across the checkpoint", len(recs))
	}

	// A tailer behind the low-water mark must be told to resync.
	if _, err := NewTailer("d", fs, 3).Next(0, 0); !errors.Is(err, ErrTruncated) {
		t.Fatalf("tail below low-water: err = %v, want ErrTruncated", err)
	}
	// From the checkpoint LSN onward, tailing resumes.
	resumed := NewTailer("d", fs, lg.Stats().CheckpointLSN)
	if recs := mustNext(t, resumed, 0, 0); len(recs) != 0 {
		t.Fatalf("resumed tail read %d records from empty post-checkpoint segment", len(recs))
	}
	h.commit("ctr", adt.CtrAdd{Delta: 1})
	recs := mustNext(t, resumed, 0, 0)
	if len(recs) != 1 || recs[0].LSN != 10 {
		t.Fatalf("post-checkpoint tail = %+v, want one record at LSN 10", recs)
	}
}

func TestAppendBatchMirrorsLeader(t *testing.T) {
	fs := NewMemFS()
	leader, _ := mustOpen(t, fs, "leader", Options{})
	h := newHarness(t, leader)
	h.register("ctr", adt.Counter{})
	h.register("reg", adt.NewRegister(int64(0)))
	for i := 0; i < 10; i++ {
		h.commit("ctr", adt.CtrAdd{Delta: 2})
		h.commit("reg", adt.RegWrite{V: int64(i)})
	}

	follower, _ := mustOpen(t, fs, "follower", Options{})
	tail := NewTailer("leader", fs, 0)
	for {
		recs := mustNext(t, tail, 4, 0)
		if len(recs) == 0 {
			break
		}
		if err := follower.AppendBatch(recs); err != nil {
			t.Fatalf("AppendBatch: %v", err)
		}
	}
	// A non-contiguous batch is refused.
	gap := Record{LSN: follower.Stats().NextLSN + 1,
		Register: &RegisterRecord{Name: "x", Initial: adt.Counter{}}}
	if err := follower.AppendBatch([]Record{gap}); err == nil {
		t.Fatal("AppendBatch accepted an LSN gap")
	}
	if err := leader.Close(); err != nil {
		t.Fatalf("close leader: %v", err)
	}
	if err := follower.Close(); err != nil {
		t.Fatalf("close follower: %v", err)
	}

	lrec, err := Inspect("leader", fs)
	if err != nil {
		t.Fatalf("inspect leader: %v", err)
	}
	frec, err := Inspect("follower", fs)
	if err != nil {
		t.Fatalf("inspect follower: %v", err)
	}
	if lrec.NextLSN != frec.NextLSN {
		t.Fatalf("follower NextLSN %d != leader %d", frec.NextLSN, lrec.NextLSN)
	}
	if !reflect.DeepEqual(lrec.States(), frec.States()) {
		t.Fatalf("follower states %v != leader states %v", frec.States(), lrec.States())
	}
	if err := frec.Verify(); err != nil {
		t.Fatalf("follower history fails Verify: %v", err)
	}
}

func TestInstallSnapshot(t *testing.T) {
	fs := NewMemFS()
	leader, _ := mustOpen(t, fs, "leader", Options{})
	h := newHarness(t, leader)
	h.register("ctr", adt.Counter{})
	for i := 0; i < 7; i++ {
		h.commit("ctr", adt.CtrAdd{Delta: 1})
	}
	if err := leader.Checkpoint(func() map[string]adt.State { return h.states }); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	ckpt := leader.Stats().CheckpointLSN

	follower, _ := mustOpen(t, fs, "follower", Options{})
	if err := follower.InstallSnapshot(ckpt, h.states); err != nil {
		t.Fatalf("InstallSnapshot: %v", err)
	}
	if got := follower.Stats(); got.NextLSN != ckpt || got.CheckpointLSN != ckpt || got.DurableLSN != ckpt {
		t.Fatalf("post-install stats = %+v, want all marks at %d", got, ckpt)
	}
	// Going backwards is refused.
	if err := follower.InstallSnapshot(ckpt-1, h.states); err == nil {
		t.Fatal("InstallSnapshot accepted a position behind the log")
	}
	// Streaming resumes at the snapshot LSN.
	h2 := &harness{t: t, lg: leader, states: h.states}
	h2.commit("ctr", adt.CtrAdd{Delta: 5})
	recs := mustNext(t, NewTailer("leader", fs, ckpt), 0, 0)
	if len(recs) != 1 || recs[0].LSN != ckpt {
		t.Fatalf("post-snapshot tail = %+v, want one record at LSN %d", recs, ckpt)
	}
	if err := follower.AppendBatch(recs); err != nil {
		t.Fatalf("AppendBatch after snapshot: %v", err)
	}
	follower.Close()
	leader.Close()

	frec, err := Inspect("follower", fs)
	if err != nil {
		t.Fatalf("inspect follower: %v", err)
	}
	if frec.NextLSN != ckpt+1 || !reflect.DeepEqual(frec.States(), h.states) {
		t.Fatalf("recovered follower: NextLSN %d states %v, want %d %v",
			frec.NextLSN, frec.States(), ckpt+1, h.states)
	}
}

func TestDurableLSNAndWatch(t *testing.T) {
	fs := NewMemFS()
	lg, _ := mustOpen(t, fs, "d", Options{})
	defer lg.Close()
	ch := lg.Watch()
	h := newHarness(t, lg)
	h.register("ctr", adt.Counter{})
	if got := lg.DurableLSN(); got != 1 {
		t.Fatalf("DurableLSN after acked append = %d, want 1", got)
	}
	select {
	case <-ch:
	case <-time.After(2 * time.Second):
		t.Fatal("Watch channel not signalled by a durable append")
	}
	lg.Unwatch(ch)
	h.commit("ctr", adt.CtrAdd{Delta: 1})
	select {
	case <-ch:
		t.Fatal("Unwatched channel still signalled")
	default:
	}
}

func TestEncodeDecodeFrames(t *testing.T) {
	recs := []Record{
		{LSN: 4, Register: &RegisterRecord{Name: "r", Initial: adt.NewRegister(int64(1))}},
		{LSN: 5, Commit: &CommitRecord{TID: "T0.1", Value: int64(1),
			Effects: []Effect{{Obj: "r", Op: adt.RegWrite{V: int64(2)}, Val: int64(1)}}}},
	}
	var buf []byte
	for _, r := range recs {
		var err error
		if buf, err = EncodeFrame(buf, r); err != nil {
			t.Fatalf("EncodeFrame: %v", err)
		}
	}
	got, err := DecodeFrames(buf)
	if err != nil {
		t.Fatalf("DecodeFrames: %v", err)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("round trip = %+v, want %+v", got, recs)
	}
	// A flipped payload byte fails the checksum; a truncated buffer is
	// torn — both are corruption for a batch, not a tail.
	bad := append([]byte(nil), buf...)
	bad[len(bad)/2] ^= 0x40
	if _, err := DecodeFrames(bad); err == nil {
		t.Fatal("DecodeFrames accepted a corrupt frame")
	}
	if _, err := DecodeFrames(buf[:len(buf)-3]); err == nil {
		t.Fatal("DecodeFrames accepted a torn buffer")
	}
}
