package wal

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"nestedtx/internal/dst/clock"
)

// File is the slice of *os.File the log needs. The indirection exists so
// crash tests can substitute torn-write and error-injecting files: the
// recovery property suite kills a run at an arbitrary byte of the stream
// and proves the recovered prefix still satisfies Theorem 34.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Sync flushes the file to stable storage (fsync). Append only
	// acknowledges a commit after Sync has covered its record.
	Sync() error
	// Truncate cuts the file to size bytes — used by recovery to remove a
	// torn tail so it is never scanned again.
	Truncate(size int64) error
}

// FS is the directory-level file system the log runs on. The production
// implementation is [OSFS]; [MemFS] backs fast deterministic tests and
// [FaultFS] wraps either with crash injection.
type FS interface {
	// OpenFile opens name with os.OpenFile semantics for the given flags.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// ReadDir lists the file names (not paths) in dir, sorted.
	ReadDir(dir string) ([]string, error)
	Remove(name string) error
	Rename(oldname, newname string) error
	MkdirAll(dir string) error
	// SyncDir fsyncs a directory so renames and creations within it are
	// durable. Implementations without directory sync return nil.
	SyncDir(dir string) error
	// Size returns the byte size of name.
	Size(name string) (int64, error)
}

// ---- OS implementation ----

// OSFS is the real file system.
type OSFS struct{}

func (OSFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

// osFile narrows a log file's Sync to fdatasync where the platform has
// it: a WAL append only needs the data and the metadata required to
// retrieve it (the file size) on stable storage, which fdatasync
// guarantees — what it skips is the journal commit for timestamp-only
// metadata that fsync pays on every flush.
type osFile struct{ *os.File }

func (f osFile) Sync() error { return fdatasync(f.File) }

func (OSFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

func (OSFS) Remove(name string) error             { return os.Remove(name) }
func (OSFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }
func (OSFS) MkdirAll(dir string) error            { return os.MkdirAll(dir, 0o755) }

func (OSFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

func (OSFS) Size(name string) (int64, error) {
	fi, err := os.Stat(name)
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

// ---- in-memory implementation ----

// MemFS is an in-memory file system with real-file semantics (append,
// truncate, rename, remove). It models kill -9 exactly: a killed process
// loses nothing already written (the page cache survives a process
// death), so combined with [FaultFS] — which models the bytes that never
// made it out of the dying process — it gives deterministic, seedable
// crash points without disk I/O.
type MemFS struct {
	mu    sync.Mutex
	files map[string][]byte
}

// NewMemFS returns an empty in-memory file system.
func NewMemFS() *MemFS { return &MemFS{files: make(map[string][]byte)} }

type memFile struct {
	fs   *MemFS
	name string
	pos  int64 // read position
}

func (m *MemFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.files[name]
	if !ok {
		if flag&os.O_CREATE == 0 {
			return nil, &os.PathError{Op: "open", Path: name, Err: os.ErrNotExist}
		}
		m.files[name] = nil
	} else if flag&os.O_TRUNC != 0 {
		m.files[name] = nil
	}
	return &memFile{fs: m, name: name}, nil
}

func (f *memFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	buf, ok := f.fs.files[f.name]
	if !ok {
		return 0, &os.PathError{Op: "write", Path: f.name, Err: os.ErrNotExist}
	}
	f.fs.files[f.name] = append(buf, p...)
	return len(p), nil
}

func (f *memFile) Read(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	buf, ok := f.fs.files[f.name]
	if !ok {
		return 0, &os.PathError{Op: "read", Path: f.name, Err: os.ErrNotExist}
	}
	if f.pos >= int64(len(buf)) {
		return 0, io.EOF
	}
	n := copy(p, buf[f.pos:])
	f.pos += int64(n)
	return n, nil
}

func (f *memFile) Sync() error  { return nil }
func (f *memFile) Close() error { return nil }

func (f *memFile) Truncate(size int64) error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	buf, ok := f.fs.files[f.name]
	if !ok {
		return &os.PathError{Op: "truncate", Path: f.name, Err: os.ErrNotExist}
	}
	if size < int64(len(buf)) {
		f.fs.files[f.name] = buf[:size:size]
	}
	return nil
}

func (m *MemFS) ReadDir(dir string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	prefix := filepath.Clean(dir) + string(filepath.Separator)
	var names []string
	for name := range m.files {
		if filepath.Dir(name) == filepath.Clean(dir) {
			names = append(names, filepath.Base(name))
		} else if len(name) > len(prefix) && name[:len(prefix)] == prefix {
			names = append(names, name[len(prefix):])
		}
	}
	sort.Strings(names)
	return names, nil
}

func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; !ok {
		return &os.PathError{Op: "remove", Path: name, Err: os.ErrNotExist}
	}
	delete(m.files, name)
	return nil
}

func (m *MemFS) Rename(oldname, newname string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	buf, ok := m.files[oldname]
	if !ok {
		return &os.PathError{Op: "rename", Path: oldname, Err: os.ErrNotExist}
	}
	m.files[newname] = buf
	delete(m.files, oldname)
	return nil
}

func (m *MemFS) MkdirAll(dir string) error { return nil }
func (m *MemFS) SyncDir(dir string) error  { return nil }

func (m *MemFS) Size(name string) (int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	buf, ok := m.files[name]
	if !ok {
		return 0, &os.PathError{Op: "stat", Path: name, Err: os.ErrNotExist}
	}
	return int64(len(buf)), nil
}

// Corrupt flips one byte of name at offset, for bad-CRC recovery tests.
func (m *MemFS) Corrupt(name string, offset int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	buf, ok := m.files[name]
	if !ok {
		return &os.PathError{Op: "corrupt", Path: name, Err: os.ErrNotExist}
	}
	if offset < 0 || offset >= int64(len(buf)) {
		return fmt.Errorf("wal: corrupt %s: offset %d out of range %d", name, offset, len(buf))
	}
	buf[offset] ^= 0xff
	return nil
}

// ---- fault injection ----

// FaultFS wraps an FS with a crash point: after Budget bytes have been
// written through it, every later write is silently dropped (the torn
// half of the final write included) while still reporting success — the
// exact shape of a process killed mid-stream: it believed its writes
// happened, but only a byte prefix reached stable storage. Metadata
// operations (create, rename, remove) past the crash point are dropped
// the same way. With FailClosed set, exhausted operations instead return
// ErrInjected, exercising the error path: a commit whose WAL append
// fails must abort, not ack.
type FaultFS struct {
	inner FS

	mu         sync.Mutex
	budget     int64 // remaining writable bytes; < 0 means unlimited
	failClosed bool
	syncHook   func()        // runs at the start of every file Sync
	syncDelay  time.Duration // added to every file Sync, after the underlying sync
	clk        clock.Clock   // time source for syncDelay; nil = wall clock
}

// ErrInjected is returned by FaultFS operations past the crash point in
// FailClosed mode.
var ErrInjected = fmt.Errorf("wal: injected fault")

// NewFaultFS wraps inner with an unlimited budget (no fault until
// CrashAfter or FailAfter is called).
func NewFaultFS(inner FS) *FaultFS { return &FaultFS{inner: inner, budget: -1} }

// CrashAfter arms torn-write mode: after n more bytes, writes and
// metadata ops silently vanish.
func (fs *FaultFS) CrashAfter(n int64) {
	fs.mu.Lock()
	fs.budget, fs.failClosed = n, false
	fs.mu.Unlock()
}

// FailAfter arms error mode: after n more bytes, writes and syncs return
// ErrInjected.
func (fs *FaultFS) FailAfter(n int64) {
	fs.mu.Lock()
	fs.budget, fs.failClosed = n, true
	fs.mu.Unlock()
}

// SetSyncHook installs fn to run at the start of every file Sync (fsync)
// issued through this FS, before the underlying sync. A blocking fn models
// a stalled disk; the concurrency tests use it to hold an fsync in flight
// while asserting appenders still make progress. nil removes the hook.
// The hook does not run for directory syncs.
func (fs *FaultFS) SetSyncHook(fn func()) {
	fs.mu.Lock()
	fs.syncHook = fn
	fs.mu.Unlock()
}

// SetSyncDelay makes every file Sync take d longer — a slow disk, for
// fsync-latency sweeps. The delay lands after the underlying sync
// completes: the modeled device wrote durably but is slow to
// acknowledge, so the injected latency composes with (rather than
// perturbs) the real cost of the sync itself. d <= 0 removes the delay.
func (fs *FaultFS) SetSyncDelay(d time.Duration) {
	fs.mu.Lock()
	fs.syncDelay = d
	fs.mu.Unlock()
}

// SetClock injects the time source the injected sync delay sleeps on
// (nil = wall clock). The simulator sets its virtual clock so a modeled
// slow disk costs event-queue time, not wall time.
func (fs *FaultFS) SetClock(c clock.Clock) {
	fs.mu.Lock()
	fs.clk = c
	fs.mu.Unlock()
}

// Crashed reports whether the crash point has been reached.
func (fs *FaultFS) Crashed() bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.budget == 0
}

// consume takes up to n bytes of budget, returning how many may really
// be written and whether the rest should error (vs vanish).
func (fs *FaultFS) consume(n int64) (allowed int64, failClosed bool) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.budget < 0 {
		return n, false
	}
	allowed = fs.budget
	if allowed > n {
		allowed = n
	}
	fs.budget -= allowed
	return allowed, fs.failClosed
}

// alive reports whether metadata ops may still proceed.
func (fs *FaultFS) alive() (bool, bool) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.budget != 0, fs.failClosed
}

type faultFile struct {
	fs *FaultFS
	f  File
}

func (fs *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if ok, failClosed := fs.alive(); !ok {
		if failClosed {
			return nil, ErrInjected
		}
		// The process died before creating this file; hand back a sink so
		// the oblivious writer can keep "succeeding".
		if flag&os.O_CREATE != 0 {
			return devNull{}, nil
		}
	}
	f, err := fs.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: fs, f: f}, nil
}

func (f *faultFile) Write(p []byte) (int, error) {
	allowed, failClosed := f.fs.consume(int64(len(p)))
	if allowed > 0 {
		if _, err := f.f.Write(p[:allowed]); err != nil {
			return 0, err
		}
	}
	if allowed < int64(len(p)) && failClosed {
		return int(allowed), ErrInjected
	}
	return len(p), nil
}

func (f *faultFile) Read(p []byte) (int, error) { return f.f.Read(p) }

func (f *faultFile) Sync() error {
	f.fs.mu.Lock()
	hook := f.fs.syncHook
	delay := f.fs.syncDelay
	clk := f.fs.clk
	f.fs.mu.Unlock()
	if hook != nil {
		hook()
	}
	if ok, failClosed := f.fs.alive(); !ok && failClosed {
		return ErrInjected
	}
	err := f.f.Sync()
	if delay > 0 {
		clock.Or(clk).Sleep(delay)
	}
	return err
}

func (f *faultFile) Close() error { return f.f.Close() }

func (f *faultFile) Truncate(size int64) error {
	if ok, failClosed := f.fs.alive(); !ok {
		if failClosed {
			return ErrInjected
		}
		return nil
	}
	return f.f.Truncate(size)
}

func (fs *FaultFS) ReadDir(dir string) ([]string, error) { return fs.inner.ReadDir(dir) }

func (fs *FaultFS) Remove(name string) error {
	if ok, failClosed := fs.alive(); !ok {
		if failClosed {
			return ErrInjected
		}
		return nil
	}
	return fs.inner.Remove(name)
}

func (fs *FaultFS) Rename(oldname, newname string) error {
	if ok, failClosed := fs.alive(); !ok {
		if failClosed {
			return ErrInjected
		}
		return nil
	}
	return fs.inner.Rename(oldname, newname)
}

func (fs *FaultFS) MkdirAll(dir string) error { return fs.inner.MkdirAll(dir) }

func (fs *FaultFS) SyncDir(dir string) error {
	if ok, failClosed := fs.alive(); !ok {
		if failClosed {
			return ErrInjected
		}
		return nil
	}
	return fs.inner.SyncDir(dir)
}

func (fs *FaultFS) Size(name string) (int64, error) { return fs.inner.Size(name) }

// devNull swallows writes from a process that is already past its crash
// point but does not know it.
type devNull struct{}

func (devNull) Write(p []byte) (int, error) { return len(p), nil }
func (devNull) Read(p []byte) (int, error)  { return 0, io.EOF }
func (devNull) Sync() error                 { return nil }
func (devNull) Close() error                { return nil }
func (devNull) Truncate(int64) error        { return nil }
