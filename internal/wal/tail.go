package wal

import (
	"errors"
	"fmt"
	"path/filepath"
	"sort"
)

// ErrTruncated is returned by Tailer.Next when the position it wants has
// been truncated away by a checkpoint: the low-water mark moved past it
// and the records are gone. The reader must restart from a snapshot —
// re-resolve the floor via Inspect, or (a replication follower) ask the
// leader for its checkpoint.
var ErrTruncated = errors.New("wal: tail position below the log's low-water mark")

// Tailer incrementally reads records from a live log directory, in LSN
// order, without coordinating with the writer: it re-reads the active
// segment from its last offset on each call, stops cleanly at a frame
// that is still being written, and follows segment rotations and
// checkpoint truncations by re-resolving the directory. The leader-side
// replication shipper (internal/repl) and txwal tail are the two users.
//
// The contract with the writer is purely convention: segments are named
// after their first LSN, a rotation or checkpoint opens the segment
// named after the next record, and a checkpoint removes everything below
// its LSN. A frame that does not parse at the live tail is treated as
// "mid-write, try again later", never as corruption — torn-tail
// adjudication belongs to recovery, not to a tailer racing the writer.
//
// With the pipelined write path, frames land in the segment in batches
// (the sync path drains the staged batch just before each fsync), so the
// file may momentarily end short of the log's written mark and may hold
// frames beyond its durable mark. Callers that must not read past what a
// crash could lose — the replication shipper — gate on DurableLSN; the
// tailer itself only promises LSN order and clean stops at the live end.
//
// A Tailer is not safe for concurrent use.
type Tailer struct {
	dir  string
	fs   FS
	next uint64 // LSN of the next record wanted
	seg  string // resolved segment holding (or about to hold) next; "" = unresolved
	off  int64  // byte offset of the first unread frame in seg
}

// NewTailer positions a tailer so its first Next returns the record with
// LSN from (records below it in the same segment are skipped). A nil fs
// means the real file system.
func NewTailer(dir string, fs FS, from uint64) *Tailer {
	if fs == nil {
		fs = OSFS{}
	}
	return &Tailer{dir: dir, fs: fs, next: from}
}

// NextLSN returns the LSN the next returned record will carry.
func (t *Tailer) NextLSN() uint64 { return t.next }

// Next returns the next run of records, bounded by maxRecords and (the
// sum of encoded frame sizes) maxBytes; a bound <= 0 means unbounded.
// An empty result with a nil error means the tail is caught up — poll
// again later, or wait on the writer's Log.Watch. ErrTruncated means the
// wanted position was checkpointed away (see above).
func (t *Tailer) Next(maxRecords, maxBytes int) ([]Record, error) {
	var out []Record
	bytes := 0
	full := func() bool {
		return (maxRecords > 0 && len(out) >= maxRecords) || (maxBytes > 0 && bytes >= maxBytes)
	}
	for resets := 0; resets < 8; resets++ {
		if full() {
			return out, nil
		}
		if t.seg == "" {
			ok, err := t.resolve()
			if err != nil || !ok {
				if len(out) > 0 {
					return out, nil // deliver; the condition resurfaces next call
				}
				return nil, err
			}
		}
		buf, err := readWhole(t.fs, filepath.Join(t.dir, t.seg))
		if err != nil {
			// The segment vanished under a checkpoint truncation (or was
			// never created): re-resolve from the directory.
			t.seg, t.off = "", 0
			if len(out) > 0 {
				return out, nil
			}
			continue
		}
		if int64(len(buf)) < t.off {
			// The segment shrank under us (a recovery scan truncated a torn
			// tail): our offset is meaningless, start the segment over.
			t.seg, t.off = "", 0
			continue
		}
		clean := false
		for !full() {
			payload, n, ferr := scanFrame(buf[t.off:])
			if ferr == nil && payload == nil {
				clean = true // end of what this segment has
				break
			}
			var r Record
			if ferr == nil {
				r, ferr = unmarshalRecord(payload)
			}
			if ferr != nil {
				// A frame mid-write at the live tail: stop here, retry later.
				break
			}
			t.off += int64(n)
			if r.LSN < t.next {
				continue // skipping toward the start position
			}
			if r.LSN != t.next {
				return out, fmt.Errorf("wal: tail LSN gap in %s: got %d, want %d", t.seg, r.LSN, t.next)
			}
			out = append(out, r)
			bytes += n
			t.next++
		}
		// On a clean end, follow a rotation: the writer opens the next
		// segment under exactly the name of the next record's LSN.
		if nextSeg := segmentName(t.next); clean && nextSeg != t.seg && t.exists(nextSeg) {
			t.seg, t.off = nextSeg, 0
			continue
		}
		return out, nil
	}
	return out, nil
}

// resolve locates the segment that holds (or will hold) t.next: the one
// with the greatest name-LSN not above it. ok is false when no segment
// covers the position yet (nothing to read); ErrTruncated reports that
// the low-water mark has moved past it.
func (t *Tailer) resolve() (bool, error) {
	names, err := t.fs.ReadDir(t.dir)
	if err != nil {
		return false, fmt.Errorf("wal: tail readdir: %w", err)
	}
	var segs []uint64
	var ckptFloor uint64
	haveCkpt := false
	for _, n := range names {
		if lsn, ok := parseLSN(n, "wal-", ".seg"); ok {
			segs = append(segs, lsn)
			continue
		}
		if lsn, ok := parseLSN(n, "ckpt-", ".ckpt"); ok && (!haveCkpt || lsn > ckptFloor) {
			ckptFloor, haveCkpt = lsn, true
		}
	}
	if len(segs) == 0 {
		if haveCkpt && ckptFloor > t.next {
			return false, ErrTruncated
		}
		return false, nil
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	if t.next < segs[0] {
		return false, ErrTruncated
	}
	pick := segs[0]
	for _, lsn := range segs {
		if lsn > t.next {
			break
		}
		pick = lsn
	}
	t.seg, t.off = segmentName(pick), 0
	return true, nil
}

func (t *Tailer) exists(name string) bool {
	_, err := t.fs.Size(filepath.Join(t.dir, name))
	return err == nil
}
