package wal

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"nestedtx/internal/adt"
	"nestedtx/internal/obs"
)

// BenchmarkGroupCommit measures the effect of the group-commit window on
// fsync amortisation: W concurrent writers append durable commit records
// to a log on the real file system, and the reported "fsyncs/commit"
// metric is the number of physical fsyncs divided by the number of
// acknowledged commits. With one writer every commit pays a full fsync
// (≈1.0); with concurrent writers the batch shares it (≪1.0).
//
// The delay dimension injects extra fsync latency through FaultFS: a
// slow disk makes the cost of serializing appends behind a flush visible
// even on one core — with the pipelined write path, appenders keep
// writing the active segment while the fsync is in flight, so throughput
// approaches batch-size × per-fsync rate instead of collapsing toward
// one commit per flush.
func BenchmarkGroupCommit(b *testing.B) {
	type cfg struct {
		delay   time.Duration
		window  time.Duration
		writers int
	}
	var cfgs []cfg
	for _, window := range []time.Duration{0, 100 * time.Microsecond, time.Millisecond} {
		for _, writers := range []int{1, 4, 16} {
			cfgs = append(cfgs, cfg{0, window, writers})
		}
	}
	// The slow-fsync sweep: 1 ms injected per fsync (the acceptance
	// configuration is delay=1ms/window=0/writers=16).
	for _, window := range []time.Duration{0, 100 * time.Microsecond} {
		for _, writers := range []int{4, 16} {
			cfgs = append(cfgs, cfg{time.Millisecond, window, writers})
		}
	}

	for _, c := range cfgs {
		name := fmt.Sprintf("delay=%v/window=%v/writers=%d", c.delay, c.window, c.writers)
		b.Run(name, func(b *testing.B) {
			met := &obs.Metrics{}
			ffs := NewFaultFS(OSFS{})
			ffs.SetSyncDelay(c.delay)
			lg, _, err := Open(b.TempDir(), Options{SyncWindow: c.window, FS: ffs, Metrics: met})
			if err != nil {
				b.Fatalf("Open: %v", err)
			}
			defer lg.Close()

			b.ResetTimer()
			var wg sync.WaitGroup
			for w := 0; w < c.writers; w++ {
				n := b.N / c.writers
				if w < b.N%c.writers {
					n++
				}
				wg.Add(1)
				go func(w, n int) {
					defer wg.Done()
					for i := 0; i < n; i++ {
						r := Record{Commit: &CommitRecord{
							TID: fmt.Sprintf("T0.%d", w),
							Effects: []Effect{
								{Obj: "ctr", Op: adt.CtrAdd{Delta: 1}, Val: int64(i)},
							},
						}}
						if _, err := lg.Append(r); err != nil {
							b.Errorf("Append: %v", err)
							return
						}
					}
				}(w, n)
			}
			wg.Wait()
			b.StopTimer()

			s := met.Snapshot()
			if s.WalAppends > 0 {
				b.ReportMetric(float64(s.WalFsyncs)/float64(s.WalAppends), "fsyncs/commit")
				b.ReportMetric(float64(s.WalMaxBatch), "max-batch")
			}
			if s.WalFsyncs > 0 {
				b.ReportMetric(float64(s.FsyncLatency.Sum.Microseconds())/float64(s.WalFsyncs), "µs/fsync")
			}
		})
	}
}
