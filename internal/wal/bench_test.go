package wal

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"nestedtx/internal/adt"
	"nestedtx/internal/obs"
)

// BenchmarkGroupCommit measures the effect of the group-commit window on
// fsync amortisation: W concurrent writers append durable commit records
// to a log on the real file system, and the reported "fsyncs/commit"
// metric is the number of physical fsyncs divided by the number of
// acknowledged commits. With one writer every commit pays a full fsync
// (≈1.0); with concurrent writers and a nonzero window the batch shares
// it (≪1.0).
func BenchmarkGroupCommit(b *testing.B) {
	for _, window := range []time.Duration{0, 100 * time.Microsecond, time.Millisecond} {
		for _, writers := range []int{1, 4, 16} {
			name := fmt.Sprintf("window=%v/writers=%d", window, writers)
			b.Run(name, func(b *testing.B) {
				met := &obs.Metrics{}
				lg, _, err := Open(b.TempDir(), Options{SyncWindow: window, Metrics: met})
				if err != nil {
					b.Fatalf("Open: %v", err)
				}
				defer lg.Close()

				b.ResetTimer()
				var wg sync.WaitGroup
				for w := 0; w < writers; w++ {
					n := b.N / writers
					if w < b.N%writers {
						n++
					}
					wg.Add(1)
					go func(w, n int) {
						defer wg.Done()
						for i := 0; i < n; i++ {
							r := Record{Commit: &CommitRecord{
								TID: fmt.Sprintf("T0.%d", w),
								Effects: []Effect{
									{Obj: "ctr", Op: adt.CtrAdd{Delta: 1}, Val: int64(i)},
								},
							}}
							if _, err := lg.Append(r); err != nil {
								b.Errorf("Append: %v", err)
								return
							}
						}
					}(w, n)
				}
				wg.Wait()
				b.StopTimer()

				s := met.Snapshot()
				if s.WalAppends > 0 {
					b.ReportMetric(float64(s.WalFsyncs)/float64(s.WalAppends), "fsyncs/commit")
					b.ReportMetric(float64(s.WalMaxBatch), "max-batch")
				}
			})
		}
	}
}
