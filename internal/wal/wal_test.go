package wal

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"nestedtx/internal/adt"
	"nestedtx/internal/obs"
)

// harness appends commit records against a shadow state so logged values
// always match what redo will produce.
type harness struct {
	t      *testing.T
	lg     *Log
	states map[string]adt.State
	n      int64
}

func newHarness(t *testing.T, lg *Log) *harness {
	return &harness{t: t, lg: lg, states: make(map[string]adt.State)}
}

func (h *harness) register(name string, init adt.State) {
	h.t.Helper()
	if _, err := h.lg.Append(Record{Register: &RegisterRecord{Name: name, Initial: init}}); err != nil {
		h.t.Fatalf("register %s: %v", name, err)
	}
	h.states[name] = init
}

// commit appends one single-effect commit record applying op to obj.
func (h *harness) commit(obj string, op adt.Op) {
	h.t.Helper()
	next, v := op.Apply(h.states[obj])
	h.states[obj] = next
	h.n++
	rec := Record{Commit: &CommitRecord{
		TID:     "T0.0",
		Value:   int64(1),
		Effects: []Effect{{Obj: obj, Op: op, Val: v}},
	}}
	if _, err := h.lg.Append(rec); err != nil {
		h.t.Fatalf("commit %d: %v", h.n, err)
	}
}

func mustOpen(t *testing.T, fs FS, dir string, opts Options) (*Log, *Recovery) {
	t.Helper()
	opts.FS = fs
	lg, rec, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return lg, rec
}

func TestAppendRecoverRoundTrip(t *testing.T) {
	fs := NewMemFS()
	lg, rec := mustOpen(t, fs, "d", Options{})
	if got := len(rec.Records); got != 0 {
		t.Fatalf("fresh dir recovered %d records", got)
	}
	h := newHarness(t, lg)
	h.register("ctr", adt.Counter{})
	h.register("reg", adt.NewRegister(int64(0)))
	for i := 0; i < 10; i++ {
		h.commit("ctr", adt.CtrAdd{Delta: 1})
		h.commit("reg", adt.RegWrite{V: int64(i)})
	}
	if err := lg.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	lg2, rec2 := mustOpen(t, fs, "d", Options{})
	defer lg2.Close()
	if got := len(rec2.Records); got != 22 {
		t.Fatalf("recovered %d records, want 22", got)
	}
	if rec2.NextLSN != 22 {
		t.Fatalf("NextLSN = %d, want 22", rec2.NextLSN)
	}
	if !reflect.DeepEqual(rec2.States(), h.states) {
		t.Fatalf("states = %v, want %v", rec2.States(), h.states)
	}
	if err := rec2.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestTornTailTruncated(t *testing.T) {
	fs := NewMemFS()
	lg, _ := mustOpen(t, fs, "d", Options{})
	h := newHarness(t, lg)
	h.register("ctr", adt.Counter{})
	for i := 0; i < 5; i++ {
		h.commit("ctr", adt.CtrAdd{Delta: 2})
	}
	stats := lg.Stats()
	lg.Close()

	// Simulate a torn final write: half a frame of garbage on the tail.
	f, err := fs.OpenFile(filepath.Join("d", stats.Segment), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("137 deadbeef\n{\"lsn\":6,\"k\":\"com"))
	f.Close()

	lg2, rec := mustOpen(t, fs, "d", Options{})
	if len(rec.Records) != 6 {
		t.Fatalf("recovered %d records, want 6", len(rec.Records))
	}
	if rec.TornBytes == 0 {
		t.Fatalf("TornBytes = 0, want > 0")
	}
	if err := rec.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	// The truncation is physical: a third scan sees a clean log.
	lg2.Close()
	_, rec3 := mustOpen(t, fs, "d", Options{})
	if rec3.TornBytes != 0 || len(rec3.Records) != 6 {
		t.Fatalf("after truncation: torn=%d records=%d, want 0/6", rec3.TornBytes, len(rec3.Records))
	}
}

func TestBadCRCTruncatesAndDropsLaterSegments(t *testing.T) {
	fs := NewMemFS()
	lg, _ := mustOpen(t, fs, "d", Options{SegmentBytes: 256})
	h := newHarness(t, lg)
	h.register("ctr", adt.Counter{})
	for i := 0; i < 20; i++ {
		h.commit("ctr", adt.CtrAdd{Delta: 1})
	}
	lg.Close()

	segs, _ := fs.ReadDir("d")
	if len(segs) < 3 {
		t.Fatalf("want >= 3 segments, got %v", segs)
	}
	// Flip a byte mid-way through the second segment.
	second := segs[1]
	size, _ := fs.Size(filepath.Join("d", second))
	if err := fs.Corrupt(filepath.Join("d", second), size/2); err != nil {
		t.Fatal(err)
	}

	_, rec := mustOpen(t, fs, "d", Options{SegmentBytes: 256})
	if len(rec.Records) >= 21 {
		t.Fatalf("corruption not detected: %d records", len(rec.Records))
	}
	if len(rec.Dropped) == 0 {
		t.Fatalf("later segments not dropped")
	}
	// The surviving prefix still verifies, and its redo matches a counter
	// incremented once per surviving commit.
	if err := rec.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	commits := 0
	for _, r := range rec.Records {
		if r.Commit != nil {
			commits++
		}
	}
	if got := rec.States()["ctr"].(adt.Counter).N; got != int64(commits) {
		t.Fatalf("ctr = %d, want %d", got, commits)
	}
}

func TestCheckpointTruncatesSegments(t *testing.T) {
	fs := NewMemFS()
	met := &obs.Metrics{}
	lg, _ := mustOpen(t, fs, "d", Options{Metrics: met})
	h := newHarness(t, lg)
	h.register("ctr", adt.Counter{})
	for i := 0; i < 8; i++ {
		h.commit("ctr", adt.CtrAdd{Delta: 1})
	}
	if err := lg.Checkpoint(func() map[string]adt.State {
		return map[string]adt.State{"ctr": h.states["ctr"]}
	}); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	for i := 0; i < 3; i++ {
		h.commit("ctr", adt.CtrAdd{Delta: 1})
	}
	lg.Close()

	if got := met.WalCheckpoints.Load(); got != 1 {
		t.Fatalf("checkpoint counter = %d, want 1", got)
	}
	if got := met.WalCheckpointLSN.Load(); got != 9 {
		t.Fatalf("checkpoint LSN gauge = %d, want 9", got)
	}

	_, rec := mustOpen(t, fs, "d", Options{})
	if rec.CheckpointLSN != 9 {
		t.Fatalf("CheckpointLSN = %d, want 9", rec.CheckpointLSN)
	}
	if len(rec.Records) != 3 {
		t.Fatalf("recovered %d post-checkpoint records, want 3", len(rec.Records))
	}
	if got := rec.States()["ctr"].(adt.Counter).N; got != 11 {
		t.Fatalf("ctr = %d, want 11", got)
	}
	if err := rec.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestSegmentRotationRecoversAll(t *testing.T) {
	fs := NewMemFS()
	lg, _ := mustOpen(t, fs, "d", Options{SegmentBytes: 200})
	h := newHarness(t, lg)
	h.register("ctr", adt.Counter{})
	for i := 0; i < 30; i++ {
		h.commit("ctr", adt.CtrAdd{Delta: 1})
	}
	lg.Close()
	segs, _ := fs.ReadDir("d")
	if len(segs) < 4 {
		t.Fatalf("rotation produced only %d files: %v", len(segs), segs)
	}
	_, rec := mustOpen(t, fs, "d", Options{SegmentBytes: 200})
	if len(rec.Records) != 31 {
		t.Fatalf("recovered %d records, want 31", len(rec.Records))
	}
	if got := rec.States()["ctr"].(adt.Counter).N; got != 30 {
		t.Fatalf("ctr = %d, want 30", got)
	}
}

func TestAppendErrorFailsNotAcks(t *testing.T) {
	mem := NewMemFS()
	ffs := NewFaultFS(mem)
	lg, _ := mustOpen(t, ffs, "d", Options{})
	h := newHarness(t, lg)
	h.register("ctr", adt.Counter{})
	h.commit("ctr", adt.CtrAdd{Delta: 1})

	ffs.FailAfter(0)
	_, err := lg.Append(Record{Commit: &CommitRecord{TID: "T0.9", Value: int64(1),
		Effects: []Effect{{Obj: "ctr", Op: adt.CtrAdd{Delta: 1}, Val: int64(2)}}}})
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("append past fault: err = %v, want ErrInjected", err)
	}
	// The log is latched broken: later appends fail fast too.
	if _, err := lg.Append(Record{Register: &RegisterRecord{Name: "x", Initial: adt.Counter{}}}); err == nil {
		t.Fatalf("append after latched failure succeeded")
	}
	lg.Close()

	// Recovery sees only the acknowledged prefix.
	_, rec := mustOpen(t, mem, "d", Options{})
	if got := rec.States()["ctr"].(adt.Counter).N; got != 1 {
		t.Fatalf("ctr = %d, want 1 (unacked append must not replay)", got)
	}
	if err := rec.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestGroupCommitBatchesFsyncs(t *testing.T) {
	fs := NewMemFS()
	met := &obs.Metrics{}
	lg, _ := mustOpen(t, fs, "d", Options{SyncWindow: 2 * time.Millisecond, Metrics: met})
	if _, err := lg.Append(Record{Register: &RegisterRecord{Name: "reg", Initial: adt.NewRegister(int64(0))}}); err != nil {
		t.Fatal(err)
	}
	const writers, per = 8, 20
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				// Value intentionally unchecked by redo here? No — redo
				// verifies values, so use a blind write whose value is
				// its own operand.
				v := int64(w*per + i)
				rec := Record{Commit: &CommitRecord{TID: "T0.1", Value: v,
					Effects: []Effect{{Obj: "reg", Op: adt.RegWrite{V: v}, Val: v}}}}
				if _, err := lg.Append(rec); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	lg.Close()
	appends, fsyncs := met.WalAppends.Load(), met.WalFsyncs.Load()
	if appends != writers*per+1 {
		t.Fatalf("appends = %d, want %d", appends, writers*per+1)
	}
	if fsyncs >= appends {
		t.Fatalf("no batching: %d fsyncs for %d appends", fsyncs, appends)
	}
	if met.WalMaxBatch.Load() < 2 {
		t.Fatalf("max batch = %d, want >= 2", met.WalMaxBatch.Load())
	}
	// Concurrent blind writes commute on the automaton only in log
	// order; recovery must accept whatever order the log serialised.
	_, rec := mustOpen(t, fs, "d", Options{})
	if err := rec.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestInspectIsReadOnly(t *testing.T) {
	fs := NewMemFS()
	lg, _ := mustOpen(t, fs, "d", Options{})
	h := newHarness(t, lg)
	h.register("ctr", adt.Counter{})
	h.commit("ctr", adt.CtrAdd{Delta: 1})
	stats := lg.Stats()
	lg.Close()

	f, _ := fs.OpenFile(filepath.Join("d", stats.Segment), os.O_WRONLY|os.O_APPEND, 0o644)
	f.Write([]byte("torn"))
	f.Close()
	before, _ := fs.Size(filepath.Join("d", stats.Segment))

	rec, err := Inspect("d", fs)
	if err != nil {
		t.Fatalf("Inspect: %v", err)
	}
	if rec.TornBytes == 0 || len(rec.Records) != 2 {
		t.Fatalf("inspect: torn=%d records=%d", rec.TornBytes, len(rec.Records))
	}
	after, _ := fs.Size(filepath.Join("d", stats.Segment))
	if before != after {
		t.Fatalf("Inspect mutated the segment: %d -> %d bytes", before, after)
	}
	if err := rec.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}
