// Package obs is the runtime observability layer: allocation-free atomic
// counters and gauges, lock-free latency histograms with fixed log-scale
// buckets, and a bounded ring-buffer event tracer keyed by the formal
// event vocabulary of internal/event.
//
// Where Manager.Verify machine-checks a *recorded* schedule after the
// fact (Theorem 34 replayed offline), this package makes the same events
// visible *live*: per-operation and per-transaction latencies, lock-wait
// durations, deadlock-victim counts by cause, and a dumpable trace of the
// most recent CREATE/REQUEST_COMMIT/COMMIT/ABORT/lock-acquire/lock-wait
// events — so a production incident can be read off a running server and
// correlated against the formal replay.
//
// Everything here is stdlib-only and cheap enough to leave on: counters
// and histograms are single atomic adds, gauges are atomic int64s, and
// the tracer is a fixed-capacity ring behind one short mutex (and is
// entirely optional — a nil *Tracer records nothing). All recording
// entry points are nil-receiver safe, mirroring event.Recorder, so
// benchmarks and tests can run with observability absent at zero cost.
package obs

import (
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// ---- counters and gauges ----

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an atomic instantaneous level (e.g. queue depth): it goes up
// and down.
type Gauge struct{ v atomic.Int64 }

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Set overwrites the gauge.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Load returns the current level.
func (g *Gauge) Load() int64 { return g.v.Load() }

// ---- histograms ----

// NumBuckets is the fixed bucket count of every Histogram. Bucket 0
// holds non-positive durations; bucket i (1 ≤ i < NumBuckets-1) holds
// durations in [2^(i-1), 2^i) nanoseconds; the last bucket holds
// everything from 2^(NumBuckets-2) ns (≈ 4.6 min) up. The log-2 scale
// gives ~±50% resolution over eleven decades with 40 fixed slots and an
// index computable with one bit-length instruction.
const NumBuckets = 40

// Histogram is a lock-free latency histogram: fixed log-scale buckets,
// running sum, and a high-water mark, all maintained with single atomic
// operations so concurrent observers never contend on a lock. The zero
// value is ready to use.
type Histogram struct {
	sum     atomic.Int64 // total observed nanoseconds
	max     atomic.Int64 // largest single observation, ns
	buckets [NumBuckets]atomic.Uint64
}

// bucketOf returns the bucket index for a duration of ns nanoseconds.
func bucketOf(ns int64) int {
	if ns <= 0 {
		return 0
	}
	b := bits.Len64(uint64(ns)) // 2^(b-1) <= ns < 2^b
	if b > NumBuckets-1 {
		b = NumBuckets - 1
	}
	return b
}

// bucketUpper returns the inclusive upper bound (ns) of bucket i; the
// overflow bucket reports the largest representable duration.
func bucketUpper(i int) int64 {
	if i <= 0 {
		return 0
	}
	if i >= NumBuckets-1 {
		return int64(^uint64(0) >> 1)
	}
	return 1<<uint(i) - 1
}

// Observe records one duration. Nil-safe; safe for concurrent use.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	ns := int64(d)
	h.sum.Add(ns)
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			break
		}
	}
	h.buckets[bucketOf(ns)].Add(1)
}

// Count returns the number of observations (the sum of all buckets).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var n uint64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// Snapshot captures the histogram. Bucket reads are individually atomic;
// a snapshot taken while observers run may be mid-flight by a few
// observations, but at quiescence it is exact — which is what the
// reconciliation tests rely on.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	s.Sum = time.Duration(h.sum.Load())
	s.Max = time.Duration(h.max.Load())
	for i := range h.buckets {
		b := h.buckets[i].Load()
		s.Buckets[i] = b
		s.Count += b
	}
	return s
}

// HistSnapshot is a point-in-time copy of a Histogram, with quantile
// estimation.
type HistSnapshot struct {
	Count   uint64
	Sum     time.Duration
	Max     time.Duration
	Buckets [NumBuckets]uint64
}

// Quantile estimates the p'th percentile (p in [0,100]) as the upper
// bound of the bucket containing that rank, clamped to the observed
// maximum — so the estimate is conservative (never below the true value
// by more than the bucket width) and Quantile(100) == Max. Returns 0
// when the histogram is empty.
func (s HistSnapshot) Quantile(p float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	rank := uint64(p / 100 * float64(s.Count))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, b := range s.Buckets {
		cum += b
		if cum >= rank {
			q := time.Duration(bucketUpper(i))
			if q > s.Max {
				q = s.Max
			}
			return q
		}
	}
	return s.Max
}

// Mean returns the arithmetic mean observation, or 0 when empty.
func (s HistSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// ---- ring-buffer event tracer ----

// Trace kinds beyond the formal vocabulary: lock acquisition outcomes of
// the runtime lock manager. All other entries use the exact strings of
// internal/event's Kind (CREATE, REQUEST_COMMIT, COMMIT, ABORT, ...) so
// a dumped trace lines up 1:1 with a recorded schedule's notation.
const (
	KindLockWait    = "LOCK_WAIT"    // an acquisition blocked (Dur = 0 at entry)
	KindLockAcquire = "LOCK_ACQUIRE" // a blocked acquisition was granted (Dur = wait time)
)

// TraceEntry is one ring-buffer record.
type TraceEntry struct {
	Seq    uint64        // global sequence number (monotonic, never reused)
	At     time.Time     // wall-clock time of the event
	Kind   string        // event.Kind string or KindLock*
	T      string        // transaction name in the paper's tree notation
	Object string        // object name for access/lock events, else ""
	Dur    time.Duration // latency attached to the event (op, tx, or wait time)
}

// Tracer is a fixed-capacity ring buffer of the most recent trace
// entries. Writes overwrite the oldest entry once the ring is full, so
// memory is bounded regardless of run length; Dump returns the surviving
// window oldest-first. A nil *Tracer records nothing and dumps empty —
// tracing is opt-in.
type Tracer struct {
	mu   sync.Mutex
	seq  uint64
	buf  []TraceEntry
	next int
	full bool
}

// NewTracer returns a Tracer keeping the last capacity entries
// (minimum 1).
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{buf: make([]TraceEntry, capacity)}
}

// Trace appends one entry, evicting the oldest when full. Nil-safe.
func (tr *Tracer) Trace(kind, t, object string, dur time.Duration) {
	if tr == nil {
		return
	}
	now := time.Now()
	tr.mu.Lock()
	tr.seq++
	tr.buf[tr.next] = TraceEntry{Seq: tr.seq, At: now, Kind: kind, T: t, Object: object, Dur: dur}
	tr.next++
	if tr.next == len(tr.buf) {
		tr.next, tr.full = 0, true
	}
	tr.mu.Unlock()
}

// Dump returns a copy of the retained entries, oldest first. Nil tracers
// dump nil.
func (tr *Tracer) Dump() []TraceEntry {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if !tr.full {
		return append([]TraceEntry(nil), tr.buf[:tr.next]...)
	}
	out := make([]TraceEntry, 0, len(tr.buf))
	out = append(out, tr.buf[tr.next:]...)
	return append(out, tr.buf[:tr.next]...)
}

// Len returns the number of retained entries; Seq the total ever traced.
func (tr *Tracer) Len() int {
	if tr == nil {
		return 0
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if tr.full {
		return len(tr.buf)
	}
	return tr.next
}

// Seq returns the total number of entries ever traced (including
// evicted ones).
func (tr *Tracer) Seq() uint64 {
	if tr == nil {
		return 0
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.seq
}

// ---- the aggregate metric set ----

// Metrics is the metric set threaded through the nestedtx stack: the
// runtime (Manager/Tx) records operation and transaction latencies and
// outcomes, the lock manager records waiting and victim selection, and
// the server snapshots everything for the METRICS wire verb. All
// recording methods are nil-receiver safe.
type Metrics struct {
	// OpLatency is the latency of each successful access (Tx.Do):
	// lock acquisition (including any wait) plus operation application.
	OpLatency Histogram
	// TxLatency is the end-to-end latency of each finished top-level
	// transaction, commit or abort.
	TxLatency Histogram
	// LockWait is the duration of each blocked lock acquisition, from
	// first block to grant, victimhood or cancellation. Acquisitions
	// granted without waiting are not observed, so
	//   LockWait.Count == Stats.Waits + VictimsDeadlock + VictimsCancelled
	// at quiescence.
	LockWait Histogram

	TxCommits Counter // finished top-level transactions that committed
	TxAborts  Counter // finished top-level transactions that aborted

	// Victim counts by cause: a waiter that left its wait queue without
	// being granted, split by why. Their sum is the total victim count.
	VictimsDeadlock  Counter // chosen as deadlock victim (== Stats.Deadlocks)
	VictimsCancelled Counter // cancelled while blocked (enclosing abort)

	QueuedWaiters    Gauge // currently blocked lock acquisitions
	ContendedObjects Gauge // objects with a non-empty wait queue

	// ShardQueued splits QueuedWaiters by lock shard, sized by
	// InitShards at manager construction (nil until then). The per-shard
	// gauges expose contention skew — a hot shard shows up as one
	// outlier entry while the aggregate gauge looks calm.
	ShardQueued []Gauge

	// FsyncLatency is the duration of each WAL fsync (group commit
	// flushes a batch of appended records with one Sync).
	FsyncLatency Histogram

	WalAppends Counter // records appended to the WAL
	WalFsyncs  Counter // fsyncs issued by the WAL syncer
	// WalCheckpoints counts completed checkpoints; WalCheckpointLSN is
	// the next LSN after the newest checkpoint (the redo low-water mark).
	WalCheckpoints   Counter
	WalCheckpointLSN Gauge
	// WalMaxBatch is the largest number of records retired by a single
	// fsync — the group-commit batching high-water mark. At quiescence
	//   WalAppends == Σ batch sizes over WalFsyncs
	// so fsyncs/commit == WalFsyncs / WalAppends.
	WalMaxBatch Gauge

	// ShipLatency is the replication leader's batch round trip: from
	// writing a batch frame to receiving the ack that covers its last
	// record — the time an acked-on-leader commit needs to become
	// durable on a follower.
	ShipLatency Histogram

	// Leader-side replication counters: batches and records pushed
	// (heartbeats excluded), acks read back, connected followers.
	ReplBatches        Counter
	ReplRecordsShipped Counter
	ReplAcks           Counter
	ReplFollowers      Gauge

	// Follower-side replication counters: batches and records appended
	// to the local WAL and applied to the served states.
	ReplBatchesApplied Counter
	ReplRecordsApplied Counter

	// Replication lag, in both the records and the seconds dimension: on
	// a leader the worst connected follower (records behind the durable
	// mark / seconds since that follower last made progress), on a
	// follower its own position against the leader's durable mark.
	ReplLagRecords Gauge
	ReplLagNS      Gauge

	// SnapReadLatency is the latency of each snapshot read: version
	// lookup plus operation application, never a lock wait.
	SnapReadLatency Histogram

	// Snapshot-transaction counters: read-only transactions begun,
	// reads served from pinned versions, and top-level commits published
	// into the snapshot store. SnapPinned is the number of currently
	// live snapshot pins (what bounds version-chain trimming).
	SnapTxs       Counter
	SnapReads     Counter
	SnapPublishes Counter
	SnapPinned    Gauge

	// Tracer, when non-nil, receives one entry per transaction
	// lifecycle event and lock wait/acquire.
	Tracer *Tracer
}

// Trace records one tracer entry if tracing is enabled. Nil-safe.
func (m *Metrics) Trace(kind, t, object string, dur time.Duration) {
	if m == nil {
		return
	}
	m.Tracer.Trace(kind, t, object, dur)
}

// ObserveOp records one successful access latency.
func (m *Metrics) ObserveOp(d time.Duration) {
	if m == nil {
		return
	}
	m.OpLatency.Observe(d)
}

// ObserveTx records one finished top-level transaction.
func (m *Metrics) ObserveTx(d time.Duration, committed bool) {
	if m == nil {
		return
	}
	m.TxLatency.Observe(d)
	if committed {
		m.TxCommits.Inc()
	} else {
		m.TxAborts.Inc()
	}
}

// ObserveLockWait records one finished blocked acquisition.
func (m *Metrics) ObserveLockWait(d time.Duration) {
	if m == nil {
		return
	}
	m.LockWait.Observe(d)
}

// VictimDeadlock counts one waiter evicted as a deadlock victim.
func (m *Metrics) VictimDeadlock() {
	if m == nil {
		return
	}
	m.VictimsDeadlock.Inc()
}

// VictimCancelled counts one waiter evicted by cancellation.
func (m *Metrics) VictimCancelled() {
	if m == nil {
		return
	}
	m.VictimsCancelled.Inc()
}

// AddQueued moves the queued-waiters gauge.
func (m *Metrics) AddQueued(delta int64) {
	if m == nil {
		return
	}
	m.QueuedWaiters.Add(delta)
}

// AddContended moves the contended-objects gauge.
func (m *Metrics) AddContended(delta int64) {
	if m == nil {
		return
	}
	m.ContendedObjects.Add(delta)
}

// InitShards sizes the per-shard queued-waiters gauges. Called once by
// the lock manager at construction, before any concurrent use.
func (m *Metrics) InitShards(n int) {
	if m == nil {
		return
	}
	m.ShardQueued = make([]Gauge, n)
}

// AddShardQueued moves shard's queued-waiters gauge.
func (m *Metrics) AddShardQueued(shard int, delta int64) {
	if m == nil || shard < 0 || shard >= len(m.ShardQueued) {
		return
	}
	m.ShardQueued[shard].Add(delta)
}

// ObserveAppend counts one WAL record append.
func (m *Metrics) ObserveAppend() {
	if m == nil {
		return
	}
	m.WalAppends.Inc()
}

// ObserveFsync records one WAL fsync retiring batch records.
func (m *Metrics) ObserveFsync(d time.Duration, batch int) {
	if m == nil {
		return
	}
	m.FsyncLatency.Observe(d)
	m.WalFsyncs.Inc()
	// Only the single syncer goroutine observes fsyncs, so a plain
	// read-compare-write keeps the high-water mark exact.
	if int64(batch) > m.WalMaxBatch.Load() {
		m.WalMaxBatch.Set(int64(batch))
	}
}

// ObserveCheckpoint records one completed checkpoint with its next LSN.
func (m *Metrics) ObserveCheckpoint(nextLSN uint64) {
	if m == nil {
		return
	}
	m.WalCheckpoints.Inc()
	m.WalCheckpointLSN.Set(int64(nextLSN))
}

// SetCheckpointLSN publishes the recovered checkpoint position without
// counting a new checkpoint (the boot path).
func (m *Metrics) SetCheckpointLSN(nextLSN uint64) {
	if m == nil {
		return
	}
	m.WalCheckpointLSN.Set(int64(nextLSN))
}

// ObserveReplBatch counts one shipped replication batch of n records.
func (m *Metrics) ObserveReplBatch(n int) {
	if m == nil {
		return
	}
	m.ReplBatches.Inc()
	m.ReplRecordsShipped.Add(uint64(n))
}

// ObserveReplAck counts one received ack; d, when positive, is the
// round trip of the batch the ack covers.
func (m *Metrics) ObserveReplAck(d time.Duration) {
	if m == nil {
		return
	}
	m.ReplAcks.Inc()
	if d > 0 {
		m.ShipLatency.Observe(d)
	}
}

// ObserveReplApply counts one applied replication batch of n records.
func (m *Metrics) ObserveReplApply(n int) {
	if m == nil {
		return
	}
	m.ReplBatchesApplied.Inc()
	m.ReplRecordsApplied.Add(uint64(n))
}

// AddReplFollowers moves the connected-followers gauge.
func (m *Metrics) AddReplFollowers(delta int64) {
	if m == nil {
		return
	}
	m.ReplFollowers.Add(delta)
}

// SetReplLag publishes the current replication lag in both dimensions.
func (m *Metrics) SetReplLag(records uint64, behind time.Duration) {
	if m == nil {
		return
	}
	m.ReplLagRecords.Set(int64(records))
	m.ReplLagNS.Set(int64(behind))
}

// ObserveSnapRead records one snapshot read.
func (m *Metrics) ObserveSnapRead(d time.Duration) {
	if m == nil {
		return
	}
	m.SnapReadLatency.Observe(d)
	m.SnapReads.Inc()
}

// SnapBegin records a read-only snapshot transaction starting; SnapEnd
// records it releasing its pin.
func (m *Metrics) SnapBegin() {
	if m == nil {
		return
	}
	m.SnapTxs.Inc()
	m.SnapPinned.Add(1)
}

// SnapEnd undoes SnapBegin's pin count.
func (m *Metrics) SnapEnd() {
	if m == nil {
		return
	}
	m.SnapPinned.Add(-1)
}

// ObserveSnapPublish records one top-level commit published into the
// snapshot store.
func (m *Metrics) ObserveSnapPublish() {
	if m == nil {
		return
	}
	m.SnapPublishes.Inc()
}

// Snapshot is a point-in-time copy of a Metrics set (histograms as
// HistSnapshots, counters and gauges as plain numbers). The trace ring
// is not included — dump it separately via Tracer.Dump.
type Snapshot struct {
	OpLatency    HistSnapshot
	TxLatency    HistSnapshot
	LockWait     HistSnapshot
	FsyncLatency HistSnapshot

	TxCommits uint64
	TxAborts  uint64

	VictimsDeadlock  uint64
	VictimsCancelled uint64

	QueuedWaiters    int64
	ContendedObjects int64
	ShardQueued      []int64 // QueuedWaiters split by lock shard

	WalAppends       uint64
	WalFsyncs        uint64
	WalCheckpoints   uint64
	WalCheckpointLSN int64
	WalMaxBatch      int64

	ShipLatency        HistSnapshot
	ReplBatches        uint64
	ReplRecordsShipped uint64
	ReplAcks           uint64
	ReplBatchesApplied uint64
	ReplRecordsApplied uint64
	ReplFollowers      int64
	ReplLagRecords     int64
	ReplLag            time.Duration

	SnapReadLatency HistSnapshot
	SnapTxs         uint64
	SnapReads       uint64
	SnapPublishes   uint64
	SnapPinned      int64
}

// Victims returns the total victim count across causes.
func (s Snapshot) Victims() uint64 { return s.VictimsDeadlock + s.VictimsCancelled }

// Snapshot captures the metric set. Nil-safe (returns zeros).
func (m *Metrics) Snapshot() Snapshot {
	if m == nil {
		return Snapshot{}
	}
	var shardQueued []int64
	if len(m.ShardQueued) > 0 {
		shardQueued = make([]int64, len(m.ShardQueued))
		for i := range m.ShardQueued {
			shardQueued[i] = m.ShardQueued[i].Load()
		}
	}
	return Snapshot{
		OpLatency:        m.OpLatency.Snapshot(),
		TxLatency:        m.TxLatency.Snapshot(),
		LockWait:         m.LockWait.Snapshot(),
		FsyncLatency:     m.FsyncLatency.Snapshot(),
		TxCommits:        m.TxCommits.Load(),
		TxAborts:         m.TxAborts.Load(),
		VictimsDeadlock:  m.VictimsDeadlock.Load(),
		VictimsCancelled: m.VictimsCancelled.Load(),
		QueuedWaiters:    m.QueuedWaiters.Load(),
		ContendedObjects: m.ContendedObjects.Load(),
		ShardQueued:      shardQueued,
		WalAppends:       m.WalAppends.Load(),
		WalFsyncs:        m.WalFsyncs.Load(),
		WalCheckpoints:   m.WalCheckpoints.Load(),
		WalCheckpointLSN: m.WalCheckpointLSN.Load(),
		WalMaxBatch:      m.WalMaxBatch.Load(),

		ShipLatency:        m.ShipLatency.Snapshot(),
		ReplBatches:        m.ReplBatches.Load(),
		ReplRecordsShipped: m.ReplRecordsShipped.Load(),
		ReplAcks:           m.ReplAcks.Load(),
		ReplBatchesApplied: m.ReplBatchesApplied.Load(),
		ReplRecordsApplied: m.ReplRecordsApplied.Load(),
		ReplFollowers:      m.ReplFollowers.Load(),
		ReplLagRecords:     m.ReplLagRecords.Load(),
		ReplLag:            time.Duration(m.ReplLagNS.Load()),

		SnapReadLatency: m.SnapReadLatency.Snapshot(),
		SnapTxs:         m.SnapTxs.Load(),
		SnapReads:       m.SnapReads.Load(),
		SnapPublishes:   m.SnapPublishes.Load(),
		SnapPinned:      m.SnapPinned.Load(),
	}
}
