package obs

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"
)

func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		ns   int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {1023, 10}, {1024, 11},
		{1 << 38, NumBuckets - 1}, {1 << 45, NumBuckets - 1}, {int64(^uint64(0) >> 1), NumBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketOf(c.ns); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
	// Bucket bounds partition the axis: upper(i-1) < 2^(i-1) <= upper(i).
	for i := 1; i < NumBuckets-1; i++ {
		lo := int64(1) << uint(i-1)
		if bucketUpper(i-1) >= lo || bucketUpper(i) < lo {
			t.Errorf("bucket %d bounds wrong: upper(i-1)=%d lower=%d upper=%d",
				i, bucketUpper(i-1), lo, bucketUpper(i))
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	if got := h.Snapshot().Quantile(50); got != 0 {
		t.Fatalf("empty histogram p50 = %v, want 0", got)
	}
	// 100 observations of 1µs, one of 1ms: p50 and p90 sit in the 1µs
	// bucket, p99.5+ and Max see the outlier.
	for i := 0; i < 100; i++ {
		h.Observe(time.Microsecond)
	}
	h.Observe(time.Millisecond)
	s := h.Snapshot()
	if s.Count != 101 {
		t.Fatalf("count = %d, want 101", s.Count)
	}
	if s.Max != time.Millisecond {
		t.Fatalf("max = %v, want 1ms", s.Max)
	}
	p50, p90, p99, max := s.Quantile(50), s.Quantile(90), s.Quantile(99), s.Quantile(100)
	if p50 < time.Microsecond || p50 >= 2*time.Microsecond {
		t.Errorf("p50 = %v, want within the 1µs bucket", p50)
	}
	if p50 > p90 || p90 > p99 || p99 > max {
		t.Errorf("quantiles not monotone: p50=%v p90=%v p99=%v max=%v", p50, p90, p99, max)
	}
	if max != time.Millisecond {
		t.Errorf("Quantile(100) = %v, want observed max 1ms", max)
	}
	if got := s.Mean(); got < time.Microsecond || got > 12*time.Microsecond {
		t.Errorf("mean = %v, want ~10.9µs", got)
	}
	// Quantile estimates are clamped to the observed max (never invent
	// latencies above what happened).
	var one Histogram
	one.Observe(3 * time.Nanosecond)
	if got := one.Snapshot().Quantile(99); got != 3*time.Nanosecond {
		t.Errorf("single-sample p99 = %v, want clamped to max 3ns", got)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(w*1000+i) * time.Nanosecond)
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("count = %d, want %d (lost updates)", s.Count, workers*per)
	}
	if s.Max != time.Duration(7999)*time.Nanosecond {
		t.Fatalf("max = %v, want 7999ns", s.Max)
	}
	if h.Count() != workers*per {
		t.Fatalf("Count() = %d, want %d", h.Count(), workers*per)
	}
}

func TestTracerRingWrapAround(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Trace("COMMIT", fmt.Sprintf("T0.%d", i), "", 0)
	}
	got := tr.Dump()
	if len(got) != 4 {
		t.Fatalf("dump length = %d, want capacity 4", len(got))
	}
	for i, e := range got {
		wantSeq := uint64(7 + i) // entries 7..10 survive
		if e.Seq != wantSeq {
			t.Errorf("entry %d seq = %d, want %d (oldest-first order)", i, e.Seq, wantSeq)
		}
		if want := fmt.Sprintf("T0.%d", 6+i); e.T != want {
			t.Errorf("entry %d T = %q, want %q", i, e.T, want)
		}
	}
	if tr.Len() != 4 || tr.Seq() != 10 {
		t.Fatalf("Len=%d Seq=%d, want 4 and 10", tr.Len(), tr.Seq())
	}
}

func TestTracerPartialAndConcurrent(t *testing.T) {
	tr := NewTracer(1024)
	tr.Trace(KindLockWait, "T0.1", "x", 0)
	tr.Trace(KindLockAcquire, "T0.1", "x", 5*time.Millisecond)
	got := tr.Dump()
	if len(got) != 2 || got[0].Kind != KindLockWait || got[1].Kind != KindLockAcquire {
		t.Fatalf("partial dump wrong: %+v", got)
	}
	if got[1].Dur != 5*time.Millisecond || got[1].Object != "x" {
		t.Fatalf("entry fields lost: %+v", got[1])
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.Trace("CREATE", "T0.9", "", 0)
			}
		}()
	}
	wg.Wait()
	d := tr.Dump()
	if len(d) != 1024 {
		t.Fatalf("full ring dump = %d entries, want 1024", len(d))
	}
	for i := 1; i < len(d); i++ {
		if d[i].Seq != d[i-1].Seq+1 {
			t.Fatalf("dump not in sequence order at %d: %d then %d", i, d[i-1].Seq, d[i].Seq)
		}
	}
}

func TestNilSafety(t *testing.T) {
	var m *Metrics
	m.ObserveOp(time.Second)
	m.ObserveTx(time.Second, true)
	m.ObserveLockWait(time.Second)
	m.Trace("CREATE", "T0.1", "", 0)
	if s := m.Snapshot(); !reflect.DeepEqual(s, Snapshot{}) {
		t.Fatalf("nil Metrics snapshot = %+v, want zero", s)
	}
	m.InitShards(4)
	m.AddShardQueued(0, 1)
	var tr *Tracer
	tr.Trace("CREATE", "T0.1", "", 0)
	if tr.Dump() != nil || tr.Len() != 0 || tr.Seq() != 0 {
		t.Fatal("nil Tracer not inert")
	}
	var h *Histogram
	h.Observe(time.Second)
	if h.Count() != 0 {
		t.Fatal("nil Histogram not inert")
	}
	// A Metrics with no tracer silently drops traces but keeps metrics.
	var real Metrics
	real.Trace("CREATE", "T0.1", "", 0)
	real.ObserveTx(time.Millisecond, false)
	if s := real.Snapshot(); s.TxAborts != 1 || s.TxLatency.Count != 1 {
		t.Fatalf("tracerless Metrics lost observations: %+v", s)
	}
}

func TestMetricsSnapshotVictims(t *testing.T) {
	var m Metrics
	m.VictimsDeadlock.Add(3)
	m.VictimsCancelled.Add(2)
	m.QueuedWaiters.Add(5)
	m.QueuedWaiters.Add(-1)
	m.ContendedObjects.Set(2)
	s := m.Snapshot()
	if s.Victims() != 5 || s.VictimsDeadlock != 3 || s.VictimsCancelled != 2 {
		t.Fatalf("victim accounting wrong: %+v", s)
	}
	if s.QueuedWaiters != 4 || s.ContendedObjects != 2 {
		t.Fatalf("gauges wrong: %+v", s)
	}
}
