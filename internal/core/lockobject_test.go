package core

import (
	"testing"

	"nestedtx/internal/adt"
	"nestedtx/internal/event"
	"nestedtx/internal/tree"
)

// lockType: register X with a write and a read access under each of
// T0.0 and T0.1.
func lockType(t testing.TB) *event.SystemType {
	st := event.NewSystemType()
	st.DefineObject("X", adt.NewRegister(int64(0)))
	st.MustDefineAccess("T0.0.0", "X", adt.RegWrite{V: int64(7)})
	st.MustDefineAccess("T0.0.1", "X", adt.RegRead{})
	st.MustDefineAccess("T0.1.0", "X", adt.RegWrite{V: int64(9)})
	st.MustDefineAccess("T0.1.1", "X", adt.RegRead{})
	return st
}

func newM(t testing.TB, mode Mode) *LockObject {
	m, err := NewLockObject(lockType(t), "X", mode)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestInitialState(t *testing.T) {
	m := newM(t, ReadWrite)
	if !m.WriteLockholders().Has(tree.Root) || m.WriteLockholders().Len() != 1 {
		t.Fatal("root must hold the initial write lock")
	}
	if m.CurrentState().(adt.Register).V != int64(0) {
		t.Fatal("initial version wrong")
	}
	if err := m.CheckLockInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteGrantStoresVersion(t *testing.T) {
	m := newM(t, ReadWrite)
	if err := m.Create("T0.0.0"); err != nil {
		t.Fatal(err)
	}
	e, err := m.Respond("T0.0.0")
	if err != nil {
		t.Fatal(err)
	}
	if e.Value != int64(7) {
		t.Fatalf("value %v", e.Value)
	}
	if !m.WriteLockholders().Has("T0.0.0") {
		t.Fatal("access must hold write lock")
	}
	if v, ok := m.Version("T0.0.0"); !ok || v.(adt.Register).V != int64(7) {
		t.Fatal("version not stored")
	}
	// The root's version is unchanged (recoverable).
	if v, _ := m.Version(tree.Root); v.(adt.Register).V != int64(0) {
		t.Fatal("root version must be untouched")
	}
	if err := m.CheckLockInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestConflictBlocksNonAncestor(t *testing.T) {
	m := newM(t, ReadWrite)
	m.Create("T0.0.0")
	if _, err := m.Respond("T0.0.0"); err != nil {
		t.Fatal(err)
	}
	// Sibling subtree's write is blocked.
	m.Create("T0.1.0")
	if err := m.RespondEnabled("T0.1.0"); err == nil {
		t.Fatal("conflicting write must be blocked")
	}
	// Sibling subtree's read is blocked by the write lock.
	m.Create("T0.1.1")
	if err := m.RespondEnabled("T0.1.1"); err == nil {
		t.Fatal("read must be blocked by non-ancestor write lock")
	}
	// The same subtree's read: holder T0.0.0 is not an ancestor of
	// T0.0.1 (they are siblings), so it is blocked too.
	m.Create("T0.0.1")
	if err := m.RespondEnabled("T0.0.1"); err == nil {
		t.Fatal("sibling access must be blocked until commit")
	}
	// After INFORM_COMMIT of the access, the lock is at T0.0 — an
	// ancestor of T0.0.1 — so the read proceeds and sees 7.
	if err := m.InformCommit("T0.0.0"); err != nil {
		t.Fatal(err)
	}
	e, err := m.Respond("T0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	if e.Value != int64(7) {
		t.Fatalf("read %v, want 7 (the subtree's own write)", e.Value)
	}
	if err := m.CheckLockInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReadReadConcurrency(t *testing.T) {
	m := newM(t, ReadWrite)
	m.Create("T0.0.1")
	m.Create("T0.1.1")
	if _, err := m.Respond("T0.0.1"); err != nil {
		t.Fatal(err)
	}
	// A read lock held by a non-ancestor does not block another read.
	if _, err := m.Respond("T0.1.1"); err != nil {
		t.Fatalf("read-read must be concurrent: %v", err)
	}
	if err := m.CheckLockInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestExclusiveModeBlocksReadRead(t *testing.T) {
	m := newM(t, Exclusive)
	m.Create("T0.0.1")
	m.Create("T0.1.1")
	if _, err := m.Respond("T0.0.1"); err != nil {
		t.Fatal(err)
	}
	if err := m.RespondEnabled("T0.1.1"); err == nil {
		t.Fatal("exclusive mode must block read-read across subtrees")
	}
}

func TestInformAbortRestoresVersion(t *testing.T) {
	m := newM(t, ReadWrite)
	m.Create("T0.0.0")
	if _, err := m.Respond("T0.0.0"); err != nil {
		t.Fatal(err)
	}
	// Abort T0.0: the write lock and the version are discarded; the
	// current state reverts to the root's version.
	if err := m.InformAbort("T0.0"); err != nil {
		t.Fatal(err)
	}
	if m.CurrentState().(adt.Register).V != int64(0) {
		t.Fatal("abort must restore the prior version")
	}
	if m.WriteLockholders().Len() != 1 {
		t.Fatal("descendant locks must be discarded")
	}
	// Now the sibling subtree can write.
	m.Create("T0.1.0")
	e, err := m.Respond("T0.1.0")
	if err != nil {
		t.Fatal(err)
	}
	if e.Value != int64(9) {
		t.Fatalf("value %v", e.Value)
	}
	if err := m.CheckLockInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCommitChainInheritance(t *testing.T) {
	m := newM(t, ReadWrite)
	m.Create("T0.0.0")
	if _, err := m.Respond("T0.0.0"); err != nil {
		t.Fatal(err)
	}
	// Commit the access, then T0.0: lock walks up to T0.
	if err := m.InformCommit("T0.0.0"); err != nil {
		t.Fatal(err)
	}
	if !m.WriteLockholders().Has("T0.0") {
		t.Fatal("lock must pass to parent")
	}
	if err := m.InformCommit("T0.0"); err != nil {
		t.Fatal(err)
	}
	if !m.WriteLockholders().Has("T0") || m.WriteLockholders().Len() != 1 {
		t.Fatalf("lock must merge at the root: %v", m.WriteLockholders().Members())
	}
	if m.CurrentState().(adt.Register).V != int64(7) {
		t.Fatal("committed version must survive inheritance")
	}
	// Everyone can now see the committed value.
	m.Create("T0.1.1")
	e, err := m.Respond("T0.1.1")
	if err != nil {
		t.Fatal(err)
	}
	if e.Value != int64(7) {
		t.Fatalf("read %v, want committed 7", e.Value)
	}
}

func TestStepValueMismatchLeavesStateIntact(t *testing.T) {
	m := newM(t, ReadWrite)
	if err := m.Step(event.Event{Kind: event.Create, T: "T0.0.0"}); err != nil {
		t.Fatal(err)
	}
	err := m.Step(event.Event{Kind: event.RequestCommit, T: "T0.0.0", Value: int64(999)})
	if err == nil {
		t.Fatal("wrong value must be rejected")
	}
	// State untouched: the correct response still works.
	if err := m.Step(event.Event{Kind: event.RequestCommit, T: "T0.0.0", Value: int64(7)}); err != nil {
		t.Fatal(err)
	}
}

func TestReplayAndGuards(t *testing.T) {
	st := lockType(t)
	s := event.Schedule{
		{Kind: event.Create, T: "T0.0.0"},
		{Kind: event.RequestCommit, T: "T0.0.0", Value: int64(7)},
		{Kind: event.InformCommitAt, T: "T0.0.0", Object: "X"},
		{Kind: event.InformCommitAt, T: "T0.0", Object: "X"},
	}
	m, err := Replay(st, "X", ReadWrite, s)
	if err != nil {
		t.Fatal(err)
	}
	if m.CurrentState().(adt.Register).V != int64(7) {
		t.Fatal("replay state wrong")
	}
	if _, err := Replay(st, "X", ReadWrite, event.Schedule{{Kind: event.Commit, T: "T0.0"}}); err == nil {
		t.Fatal("foreign operation must be rejected")
	}
	if err := m.InformCommit(tree.Root); err == nil {
		t.Fatal("INFORM_COMMIT for root must be rejected")
	}
	if err := m.InformAbort(tree.Root); err == nil {
		t.Fatal("INFORM_ABORT for root must be rejected")
	}
	if err := m.Create("T0.9"); err == nil {
		t.Fatal("CREATE of non-access must be rejected")
	}
	if _, err := NewLockObject(st, "missing", ReadWrite); err == nil {
		t.Fatal("unknown object must be rejected")
	}
}

func TestEnabledAndPendingAccessors(t *testing.T) {
	m := newM(t, ReadWrite)
	m.Create("T0.0.0")
	m.Create("T0.1.0")
	if n := len(m.PendingAccesses()); n != 2 {
		t.Fatalf("pending = %d", n)
	}
	if n := len(m.EnabledAccesses()); n != 2 {
		t.Fatalf("enabled = %d (nothing blocks yet)", n)
	}
	if _, err := m.Respond("T0.0.0"); err != nil {
		t.Fatal(err)
	}
	if n := len(m.EnabledAccesses()); n != 0 {
		t.Fatalf("enabled = %d after conflicting grant", n)
	}
	if n := len(m.PendingAccesses()); n != 1 {
		t.Fatalf("pending = %d", n)
	}
}

func TestModeString(t *testing.T) {
	if ReadWrite.String() != "read-write" || Exclusive.String() != "exclusive" {
		t.Fatal("mode strings")
	}
	if newM(t, Exclusive).Mode() != Exclusive {
		t.Fatal("mode accessor")
	}
}

func TestCommittedAtXOrderMatters(t *testing.T) {
	// committed-at-X requires INFORMs in ascending order.
	ascending := event.Schedule{
		{Kind: event.InformCommitAt, T: "T0.0.0", Object: "X"},
		{Kind: event.InformCommitAt, T: "T0.0", Object: "X"},
	}
	descending := event.Schedule{
		{Kind: event.InformCommitAt, T: "T0.0", Object: "X"},
		{Kind: event.InformCommitAt, T: "T0.0.0", Object: "X"},
	}
	if !CommittedAtX(ascending, "X", "T0.0.0", "T0") {
		t.Fatal("ascending informs must establish committed-at-X")
	}
	if CommittedAtX(descending, "X", "T0.0.0", "T0") {
		t.Fatal("descending informs must not establish committed-at-X")
	}
	if !CommittedAtX(nil, "X", "T0.0", "T0.0") {
		t.Fatal("trivially committed to itself")
	}
	if CommittedAtX(nil, "X", "T0.0", "T0.1") {
		t.Fatal("non-ancestor")
	}
}

func TestVisibleXAndOrphanAtX(t *testing.T) {
	st := lockType(t)
	s := event.Schedule{
		{Kind: event.Create, T: "T0.0.0"},
		{Kind: event.RequestCommit, T: "T0.0.0", Value: int64(7)},
		{Kind: event.InformCommitAt, T: "T0.0.0", Object: "X"},
		{Kind: event.Create, T: "T0.1.0"},
	}
	// T0.0.0 visible at X to T0.0 (committed at X to it), but not to T0.1.
	vis := VisibleX(s, st, "X", "T0.0")
	if len(vis) != 2 {
		t.Fatalf("visible_X to T0.0 = %d events, want 2", len(vis))
	}
	vis2 := VisibleX(s, st, "X", "T0.1")
	// T0.1.0's CREATE is visible to T0.1 (it is its own descendant's
	// ancestor... T0.1.0 trivially committed to itself? lca(T0.1.0, T0.1)
	// = T0.1, so T0.1.0 must be committed at X to T0.1 — it is not).
	for _, e := range vis2 {
		if e.T == "T0.0.0" {
			t.Fatal("uncommitted-at-X sibling must be invisible")
		}
	}
	abort := append(s.Clone(), event.Event{Kind: event.InformAbortAt, T: "T0.0", Object: "X"})
	if !OrphanAtX(abort, "X", "T0.0.1") {
		t.Fatal("descendant of informed abort is an orphan at X")
	}
	if OrphanAtX(abort, "X", "T0.1.0") {
		t.Fatal("sibling subtree is not an orphan at X")
	}
}

func TestEssence(t *testing.T) {
	st := lockType(t)
	s := event.Schedule{
		{Kind: event.Create, T: "T0.0.1"},
		{Kind: event.RequestCommit, T: "T0.0.1", Value: int64(0)}, // read
		{Kind: event.Create, T: "T0.0.0"},
		{Kind: event.RequestCommit, T: "T0.0.0", Value: int64(7)}, // write
	}
	ess := Essence(s, st)
	if len(ess) != 2 {
		t.Fatalf("essence = %d events, want 2 (CREATE+REQUEST_COMMIT of the write)", len(ess))
	}
	if ess[0].Kind != event.Create || ess[0].T != "T0.0.0" {
		t.Fatalf("essence[0] = %s", ess[0])
	}
	if ess[1].Kind != event.RequestCommit || ess[1].Value != int64(7) {
		t.Fatalf("essence[1] = %s", ess[1])
	}
	if !event.WriteEqual(st, s, ess) {
		t.Fatal("essence must be write-equal to the original")
	}
}
