// Package core implements the paper's primary contribution: the R/W
// Locking object M(X) of §5.1, Moss' read/write locking algorithm extended
// with the state-restoration data needed to recover from aborts.
//
// M(X) is a resilient, lock-managing variant of basic object X. It keeps
// two lock tables (read-lockholders and write-lockholders), and a map from
// write-lockholders to versions of X's state. A response to an access T is
// enabled only when every holder of a conflicting lock is an ancestor of T;
// the value is computed against the version of the least (deepest)
// write-lockholder. INFORM_COMMIT passes locks — and the stored version —
// to the parent; INFORM_ABORT discards the locks and versions of the
// aborted transaction's descendants.
//
// Designating every access a write access degenerates the algorithm into
// exclusive locking (the system of [LM]); Mode selects this behaviour for
// the baseline used in the experiments.
package core

import (
	"fmt"

	"nestedtx/internal/adt"
	"nestedtx/internal/event"
	"nestedtx/internal/tree"
)

// Mode selects how accesses are classified.
type Mode int

const (
	// ReadWrite follows the access classification of the system type: ops
	// with ReadOnly()==true take read locks.
	ReadWrite Mode = iota
	// Exclusive treats every access as a write access. Per §4.3, Moss'
	// algorithm then degenerates into exclusive locking.
	Exclusive
)

func (m Mode) String() string {
	if m == Exclusive {
		return "exclusive"
	}
	return "read-write"
}

// LockObject is the automaton M(X).
type LockObject struct {
	st   *event.SystemType
	x    string
	mode Mode

	writeLockholders tree.Set
	readLockholders  tree.Set
	createRequested  tree.Set
	run              tree.Set
	// versions is the paper's "map": a function from write-lockholders to
	// states of basic object X (here: the data-type instance).
	versions map[tree.TID]adt.State
}

// NewLockObject returns M(x) in its initial state: write-lockholders =
// {T0} with map(T0) an initial state of X, all other components empty.
func NewLockObject(st *event.SystemType, x string, mode Mode) (*LockObject, error) {
	init, ok := st.ObjectInitial(x)
	if !ok {
		return nil, fmt.Errorf("core: object %q not defined in system type", x)
	}
	return &LockObject{
		st:               st,
		x:                x,
		mode:             mode,
		writeLockholders: tree.NewSet(tree.Root),
		readLockholders:  tree.NewSet(),
		createRequested:  tree.NewSet(),
		run:              tree.NewSet(),
		versions:         map[tree.TID]adt.State{tree.Root: init},
	}, nil
}

// Name returns X's name.
func (m *LockObject) Name() string { return m.x }

// Mode returns the classification mode.
func (m *LockObject) Mode() Mode { return m.mode }

// WriteLockholders returns a copy of the write-lock table.
func (m *LockObject) WriteLockholders() tree.Set { return m.writeLockholders.Clone() }

// ReadLockholders returns a copy of the read-lock table.
func (m *LockObject) ReadLockholders() tree.Set { return m.readLockholders.Clone() }

// Version returns the stored version for write-lockholder t.
func (m *LockObject) Version(t tree.TID) (adt.State, bool) {
	s, ok := m.versions[t]
	return s, ok
}

// CurrentState returns what Moss calls "the current state of X": the
// version stored for the least write-lockholder.
func (m *LockObject) CurrentState() adt.State {
	least, ok := m.writeLockholders.Least()
	if !ok {
		// Unreachable when the automaton is used through its operations:
		// the root's lock is never removed (INFORMs are for T != T0).
		panic("core: no write-lockholders")
	}
	return m.versions[least]
}

// isWrite reports whether access t takes a write lock under the mode.
func (m *LockObject) isWrite(t tree.TID) bool {
	if m.mode == Exclusive {
		return true
	}
	return m.st.IsWriteAccess(t)
}

// Create handles the input CREATE(t) for an access t to X.
func (m *LockObject) Create(t tree.TID) error {
	a, ok := m.st.AccessInfo(t)
	if !ok || a.Object != m.x {
		return fmt.Errorf("core: M(%s): CREATE(%s): not an access to this object", m.x, t)
	}
	m.createRequested.Add(t)
	return nil
}

// InformCommit handles INFORM_COMMIT_AT(X)OF(t): locks held by t (and its
// stored version, if a write lock) pass to parent(t).
func (m *LockObject) InformCommit(t tree.TID) error {
	if t == tree.Root {
		return fmt.Errorf("core: M(%s): INFORM_COMMIT for the root", m.x)
	}
	if m.writeLockholders.Has(t) {
		p := t.Parent()
		m.writeLockholders.Remove(t)
		m.writeLockholders.Add(p)
		m.versions[p] = m.versions[t]
		delete(m.versions, t)
	}
	if m.readLockholders.Has(t) {
		m.readLockholders.Remove(t)
		m.readLockholders.Add(t.Parent())
	}
	return nil
}

// InformAbort handles INFORM_ABORT_AT(X)OF(t): all locks (and versions)
// held by descendants of t are discarded.
func (m *LockObject) InformAbort(t tree.TID) error {
	if t == tree.Root {
		return fmt.Errorf("core: M(%s): INFORM_ABORT for the root", m.x)
	}
	for u := range m.writeLockholders {
		if u.IsDescendantOf(t) {
			m.writeLockholders.Remove(u)
			delete(m.versions, u)
		}
	}
	m.readLockholders.RemoveDescendantsOf(t)
	return nil
}

// RespondEnabled checks the precondition of REQUEST_COMMIT(t,·): t must be
// created but not run, and every holder of a conflicting lock must be an
// ancestor of t. The returned error explains the blocking holder.
func (m *LockObject) RespondEnabled(t tree.TID) error {
	if !m.createRequested.Has(t) || m.run.Has(t) {
		return fmt.Errorf("core: M(%s): %s not in create-requested minus run", m.x, t)
	}
	if m.isWrite(t) {
		// Write access: all lockholders (read and write) must be ancestors.
		for u := range m.writeLockholders {
			if !u.IsAncestorOf(t) {
				return fmt.Errorf("core: M(%s): write lock held by non-ancestor %s", m.x, u)
			}
		}
		for u := range m.readLockholders {
			if !u.IsAncestorOf(t) {
				return fmt.Errorf("core: M(%s): read lock held by non-ancestor %s", m.x, u)
			}
		}
		return nil
	}
	// Read access: only write-lockholders conflict.
	for u := range m.writeLockholders {
		if !u.IsAncestorOf(t) {
			return fmt.Errorf("core: M(%s): write lock held by non-ancestor %s", m.x, u)
		}
	}
	return nil
}

// Respond performs the output REQUEST_COMMIT(t,v): it computes v against
// the current state, grants t its lock, and (for writes) stores the
// resulting version as map(t).
func (m *LockObject) Respond(t tree.TID) (event.Event, error) {
	if err := m.RespondEnabled(t); err != nil {
		return event.Event{}, err
	}
	a, _ := m.st.AccessInfo(t)
	next, v := a.Op.Apply(m.CurrentState())
	m.run.Add(t)
	if m.isWrite(t) {
		m.writeLockholders.Add(t)
		m.versions[t] = next
	} else {
		m.readLockholders.Add(t)
		// Read accesses leave the stored state untouched; the semantic
		// conditions (§4.3) make next == current, but we deliberately do
		// not store it, exactly as the paper's postcondition specifies.
	}
	return event.Event{Kind: event.RequestCommit, T: t, Value: v}, nil
}

// EnabledAccesses returns the created-but-unresponded accesses whose
// REQUEST_COMMIT is currently enabled.
func (m *LockObject) EnabledAccesses() []tree.TID {
	var out []tree.TID
	for t := range m.createRequested {
		if !m.run.Has(t) && m.RespondEnabled(t) == nil {
			out = append(out, t)
		}
	}
	return out
}

// PendingAccesses returns the created-but-unresponded accesses (enabled or
// not).
func (m *LockObject) PendingAccesses() []tree.TID {
	var out []tree.TID
	for t := range m.createRequested {
		if !m.run.Has(t) {
			out = append(out, t)
		}
	}
	return out
}

// Step applies one event of M(X)'s signature, checking legality. For
// REQUEST_COMMIT(t,v) the value must equal what the automaton would output.
func (m *LockObject) Step(e event.Event) error {
	switch e.Kind {
	case event.Create:
		return m.Create(e.T)
	case event.InformCommitAt:
		if e.Object != m.x {
			return fmt.Errorf("core: M(%s): %s: wrong object", m.x, e)
		}
		return m.InformCommit(e.T)
	case event.InformAbortAt:
		if e.Object != m.x {
			return fmt.Errorf("core: M(%s): %s: wrong object", m.x, e)
		}
		return m.InformAbort(e.T)
	case event.RequestCommit:
		if err := m.RespondEnabled(e.T); err != nil {
			return err
		}
		// Peek at the value before mutating, so a mismatch leaves the
		// automaton state untouched.
		a, _ := m.st.AccessInfo(e.T)
		if _, v := a.Op.Apply(m.CurrentState()); v != e.Value {
			return fmt.Errorf("core: M(%s): %s: value mismatch (automaton outputs %v)", m.x, e, v)
		}
		_, err := m.Respond(e.T)
		return err
	default:
		return fmt.Errorf("core: M(%s): %s: not an operation of a R/W Locking object", m.x, e)
	}
}

// Replay checks whether s is a schedule of M(x) (s should be the
// projection at M(x)); it returns the automaton reached.
func Replay(st *event.SystemType, x string, mode Mode, s event.Schedule) (*LockObject, error) {
	m, err := NewLockObject(st, x, mode)
	if err != nil {
		return nil, err
	}
	for i, e := range s {
		if err := m.Step(e); err != nil {
			return nil, fmt.Errorf("core: replay step %d: %w", i, err)
		}
	}
	return m, nil
}

// CheckLockInvariants verifies the structural invariants of the lock
// tables: Lemma 21 (every write-lockholder is related by ancestry to every
// other lockholder — in particular the write table is a chain), and that
// versions is defined exactly on the write table.
func (m *LockObject) CheckLockInvariants() error {
	if !m.writeLockholders.IsChain() {
		return fmt.Errorf("core: M(%s): write-lockholders %v not a chain (Lemma 21 violated)",
			m.x, m.writeLockholders.Members())
	}
	for w := range m.writeLockholders {
		for r := range m.readLockholders {
			if !w.IsAncestorOf(r) && !r.IsAncestorOf(w) {
				return fmt.Errorf("core: M(%s): write-lockholder %s unrelated to read-lockholder %s (Lemma 21 violated)",
					m.x, w, r)
			}
		}
	}
	if len(m.versions) != m.writeLockholders.Len() {
		return fmt.Errorf("core: M(%s): versions defined on %d names, %d write-lockholders",
			m.x, len(m.versions), m.writeLockholders.Len())
	}
	for w := range m.writeLockholders {
		if _, ok := m.versions[w]; !ok {
			return fmt.Errorf("core: M(%s): write-lockholder %s has no version", m.x, w)
		}
	}
	return nil
}
