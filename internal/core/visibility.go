package core

import (
	"nestedtx/internal/event"
	"nestedtx/internal/tree"
)

// CommittedAtX reports whether access t is committed at X to ancestor anc
// in sequence s of M(X)-operations (§5.1): s contains a subsequence of
// INFORM_COMMIT_AT(X)OF(U) events for every U that is an ancestor of t and
// a proper descendant of anc, arranged in ascending order (the INFORM for
// parent(U) preceded by the one for U).
func CommittedAtX(s event.Schedule, x string, t, anc tree.TID) bool {
	if !anc.IsAncestorOf(t) {
		return false
	}
	// The required ancestors of t, deepest first: t, parent(t), ... up to
	// (but excluding) anc.
	var need []tree.TID
	for u := t; u != anc; u = u.Parent() {
		need = append(need, u)
	}
	// Scan s looking for the INFORM_COMMITs in that (ascending) order.
	i := 0
	for _, e := range s {
		if i == len(need) {
			break
		}
		if e.Kind == event.InformCommitAt && e.Object == x && e.T == need[i] {
			i++
		}
	}
	return i == len(need)
}

// VisibleAtX reports whether access t is visible at X to t' in s: t is
// committed at X to lca(t,t').
func VisibleAtX(s event.Schedule, x string, t, tPrime tree.TID) bool {
	return CommittedAtX(s, x, t, tree.LCA(t, tPrime))
}

// VisibleX returns visible_X(s,t): the subsequence of operations of M(X)
// in s whose transactions are visible at X to t. Access operations
// (CREATE/REQUEST_COMMIT of an access U) are kept when U is visible at X
// to t; INFORM events are not access operations and are dropped, so the
// result is a sequence of basic-object operations, as in Lemma 24.
func VisibleX(s event.Schedule, st *event.SystemType, x string, t tree.TID) event.Schedule {
	return s.Filter(func(e event.Event) bool {
		if e.Kind != event.Create && e.Kind != event.RequestCommit {
			return false
		}
		a, ok := st.AccessInfo(e.T)
		if !ok || a.Object != x {
			return false
		}
		return VisibleAtX(s, x, e.T, t)
	})
}

// OrphanAtX reports whether t is an orphan at X in s:
// INFORM_ABORT_AT(X)OF(U) occurs for some ancestor U of t.
func OrphanAtX(s event.Schedule, x string, t tree.TID) bool {
	for _, e := range s {
		if e.Kind == event.InformAbortAt && e.Object == x && e.T.IsAncestorOf(t) {
			return true
		}
	}
	return false
}

// Essence returns essence(β) (§5.1): the sequence obtained from write(β)
// by placing a CREATE(U) event immediately before each
// REQUEST_COMMIT(U,u) event. essence(β) is write-equal to β and, by the
// semantic conditions, equieffective to it.
func Essence(s event.Schedule, st *event.SystemType) event.Schedule {
	w := s.Write(st)
	out := make(event.Schedule, 0, 2*len(w))
	for _, e := range w {
		out = append(out, event.Event{Kind: event.Create, T: e.T})
		out = append(out, e)
	}
	return out
}
