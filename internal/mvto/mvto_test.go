package mvto

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"nestedtx/internal/adt"
)

func newMgr(t testing.TB) *Manager {
	t.Helper()
	m := New()
	if err := m.Register("X", adt.NewRegister(int64(0))); err != nil {
		t.Fatal(err)
	}
	if err := m.Register("Y", adt.Counter{}); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRegisterGuards(t *testing.T) {
	m := newMgr(t)
	if err := m.Register("X", adt.NewRegister(int64(0))); err == nil {
		t.Fatal("duplicate registration must fail")
	}
	if _, err := m.CurrentState("zzz"); err == nil {
		t.Fatal("unknown object must fail")
	}
	tx := m.Begin()
	if _, err := tx.Do("zzz", adt.RegRead{}); err == nil {
		t.Fatal("access to unknown object must fail")
	}
	tx.Abort()
}

func TestCommitMakesVisible(t *testing.T) {
	m := newMgr(t)
	t1 := m.Begin()
	if _, err := t1.Write("X", adt.RegWrite{V: int64(7)}); err != nil {
		t.Fatal(err)
	}
	// Own read sees own write.
	v, err := t1.Read("X", adt.RegRead{})
	if err != nil || v != int64(7) {
		t.Fatalf("read own write: %v %v", v, err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	t2 := m.Begin()
	v, err = t2.Read("X", adt.RegRead{})
	if err != nil || v != int64(7) {
		t.Fatalf("committed value: %v %v", v, err)
	}
	t2.Abort()
	s, _ := m.CurrentState("X")
	if s.(adt.Register).V != int64(7) {
		t.Fatal("current state")
	}
	if err := m.VerifySerializable(map[string]adt.State{"X": adt.NewRegister(int64(0)), "Y": adt.Counter{}}); err != nil {
		t.Fatal(err)
	}
}

func TestAbortDiscards(t *testing.T) {
	m := newMgr(t)
	t1 := m.Begin()
	if _, err := t1.Write("X", adt.RegWrite{V: int64(9)}); err != nil {
		t.Fatal(err)
	}
	t1.Abort()
	s, _ := m.CurrentState("X")
	if s.(adt.Register).V != int64(0) {
		t.Fatal("abort must discard the tentative version")
	}
	if _, err := t1.Do("X", adt.RegRead{}); !errors.Is(err, ErrTxDone) {
		t.Fatal("operations after abort must fail")
	}
	if err := t1.Commit(); !errors.Is(err, ErrTxDone) {
		t.Fatal("commit after abort must fail")
	}
}

func TestTooLateWrite(t *testing.T) {
	m := newMgr(t)
	early := m.Begin() // ts = 1
	late := m.Begin()  // ts = 2
	// The later transaction reads X (records read of the initial version).
	if _, err := late.Read("X", adt.RegRead{}); err != nil {
		t.Fatal(err)
	}
	// The earlier transaction now tries to write X: rejected.
	_, err := early.Write("X", adt.RegWrite{V: int64(1)})
	if !errors.Is(err, ErrTooLate) {
		t.Fatalf("err = %v, want ErrTooLate", err)
	}
	early.Abort()
	if err := late.Commit(); err != nil {
		t.Fatal(err)
	}
	if m.Stats().TooLates != 1 {
		t.Fatal("stats")
	}
}

func TestReadersDoNotBlockReaders(t *testing.T) {
	m := newMgr(t)
	t1, t2 := m.Begin(), m.Begin()
	if _, err := t1.Read("X", adt.RegRead{}); err != nil {
		t.Fatal(err)
	}
	if _, err := t2.Read("X", adt.RegRead{}); err != nil {
		t.Fatal(err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	if m.Stats().Waits != 0 {
		t.Fatal("reads must not wait on each other")
	}
}

func TestReaderWaitsForEarlierTentative(t *testing.T) {
	m := newMgr(t)
	writer := m.Begin() // ts 1
	if _, err := writer.Write("X", adt.RegWrite{V: int64(5)}); err != nil {
		t.Fatal(err)
	}
	reader := m.Begin() // ts 2
	got := make(chan adt.Value, 1)
	go func() {
		v, err := reader.Read("X", adt.RegRead{})
		if err != nil {
			got <- err.Error()
			return
		}
		got <- v
	}()
	select {
	case v := <-got:
		t.Fatalf("reader should wait for the earlier tentative write; got %v", v)
	case <-time.After(30 * time.Millisecond):
	}
	if err := writer.Commit(); err != nil {
		t.Fatal(err)
	}
	select {
	case v := <-got:
		if v != int64(5) {
			t.Fatalf("reader saw %v, want 5", v)
		}
	case <-time.After(time.Second):
		t.Fatal("reader did not wake")
	}
	if err := reader.Commit(); err != nil {
		t.Fatal(err)
	}
	if m.Stats().Waits == 0 {
		t.Fatal("the wait should be counted")
	}
}

func TestReaderSkipsLaterTentative(t *testing.T) {
	m := newMgr(t)
	reader := m.Begin() // ts 1
	writer := m.Begin() // ts 2
	if _, err := writer.Write("X", adt.RegWrite{V: int64(5)}); err != nil {
		t.Fatal(err)
	}
	// The earlier reader must NOT wait for a later tentative version.
	v, err := reader.Read("X", adt.RegRead{})
	if err != nil || v != int64(0) {
		t.Fatalf("reader got %v %v, want initial 0 without waiting", v, err)
	}
	if err := reader.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := writer.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := m.VerifySerializable(map[string]adt.State{"X": adt.NewRegister(int64(0)), "Y": adt.Counter{}}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRetriesTooLate(t *testing.T) {
	m := newMgr(t)
	// Force one ErrTooLate, then succeed on retry with a later timestamp.
	victim := m.Begin() // ts 1
	blocker := m.Begin()
	if _, err := blocker.Read("X", adt.RegRead{}); err != nil {
		t.Fatal(err)
	}
	if err := blocker.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := victim.Write("X", adt.RegWrite{V: int64(1)}); !errors.Is(err, ErrTooLate) {
		t.Fatal("setup: expected too-late")
	}
	victim.Abort()
	err := m.Run(5, func(tx *Tx) error {
		_, err := tx.Write("X", adt.RegWrite{V: int64(2)})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	s, _ := m.CurrentState("X")
	if s.(adt.Register).V != int64(2) {
		t.Fatal("retry should have landed the write")
	}
}

func TestConcurrentStressSerializable(t *testing.T) {
	m := New()
	const objects = 4
	initial := make(map[string]adt.State, objects)
	for i := 0; i < objects; i++ {
		name := fmt.Sprintf("o%d", i)
		initial[name] = adt.Counter{}
		if err := m.Register(name, adt.Counter{}); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	var gaveUp int64
	var mu sync.Mutex
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 30; i++ {
				err := m.Run(50, func(tx *Tx) error {
					for j := 0; j < 3; j++ {
						obj := fmt.Sprintf("o%d", rng.Intn(objects))
						if rng.Intn(2) == 0 {
							if _, err := tx.Read(obj, adt.CtrGet{}); err != nil {
								return err
							}
						} else if _, err := tx.Write(obj, adt.CtrAdd{Delta: 1}); err != nil {
							return err
						}
					}
					return nil
				})
				if err != nil {
					mu.Lock()
					gaveUp++
					mu.Unlock()
				}
			}
		}(int64(w))
	}
	wg.Wait()
	if err := m.VerifySerializable(initial); err != nil {
		t.Fatalf("MVTO run not serializable: %v (gave up: %d)", err, gaveUp)
	}
}

func TestVerifyDetectsTampering(t *testing.T) {
	m := newMgr(t)
	if err := m.Run(3, func(tx *Tx) error {
		_, err := tx.Write("Y", adt.CtrAdd{Delta: 1}) // value depends on prior state
		return err
	}); err != nil {
		t.Fatal(err)
	}
	// Verifying against the wrong initial state must fail: the recorded
	// return value (1) cannot be reproduced from a counter starting at 99.
	err := m.VerifySerializable(map[string]adt.State{"X": adt.NewRegister(int64(0)), "Y": adt.Counter{N: 99}})
	if err == nil {
		t.Fatal("verifier must detect a bogus initial state")
	}
}

func TestTimestampsIncrease(t *testing.T) {
	m := newMgr(t)
	a, b := m.Begin(), m.Begin()
	if a.Timestamp() >= b.Timestamp() {
		t.Fatal("timestamps must increase")
	}
	a.Abort()
	b.Abort()
	if s := m.Stats(); s.Begun != 2 || s.Aborts != 2 {
		t.Fatalf("stats %+v", s)
	}
}
