// Package mvto implements multi-version timestamp-ordering concurrency
// control in the style of Reed — the alternative nested-transaction data
// management the paper cites (§1: "The work of Reed [R] extended
// multi-version timestamp concurrency control to provide nested
// transaction data management").
//
// It serves as a comparison baseline for the locking engine (experiment
// E9): transactions draw pseudo-times at start; objects keep version
// lists; reads select the latest version no newer than the reader and
// *wait* when that version is still tentative (waits always point at
// smaller timestamps, so there are no deadlocks); writes that arrive after
// a later-stamped read has already passed them abort with ErrTooLate.
//
// Scope note (documented substitution, see DESIGN.md): this baseline
// implements Reed's scheme at top-level-transaction granularity — the
// classical MVTO rules — rather than his full hierarchical pseudo-time
// ranges for subtransactions. The E9 comparison therefore runs flat
// transactions on both engines; nesting is exercised against the locking
// engine everywhere else.
package mvto

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"nestedtx/internal/adt"
)

// ErrTooLate is returned by a write whose pseudo-time has already been
// passed by a later-stamped committed read; the transaction must abort
// (and may retry with a fresh, later timestamp).
var ErrTooLate = errors.New("mvto: write too late (later read exists)")

// ErrTxDone is returned by operations on a finished transaction.
var ErrTxDone = errors.New("mvto: transaction already finished")

// Stats counts engine activity.
type Stats struct {
	Begun    uint64
	Commits  uint64
	Aborts   uint64 // explicit aborts (including after ErrTooLate)
	TooLates uint64 // writes rejected by the timestamp rule
	Waits    uint64 // reads/writes that waited on a tentative version
}

// Manager owns the versioned objects and the pseudo-time clock.
type Manager struct {
	mu      sync.Mutex
	cond    *sync.Cond
	clock   int64
	objects map[string]*object
	stats   Stats
	// committedLog records (ts, object, op, value) for every committed
	// transaction, for independent serializability verification.
	committedLog []logEntry
}

type logEntry struct {
	ts    int64
	obj   string
	op    adt.Op
	value adt.Value
}

// version is one entry in an object's version list.
type version struct {
	ts        int64
	state     adt.State
	committed bool
	maxRead   int64 // largest timestamp that has read this version
}

type object struct {
	name     string
	versions []version // sorted by ts ascending; versions[0] is initial
}

// New returns an empty Manager.
func New() *Manager {
	m := &Manager{objects: make(map[string]*object)}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// Register declares object x with initial state init (a committed version
// at pseudo-time 0).
func (m *Manager) Register(x string, init adt.State) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.objects[x]; dup {
		return fmt.Errorf("mvto: object %q already registered", x)
	}
	m.objects[x] = &object{
		name:     x,
		versions: []version{{ts: 0, state: init, committed: true}},
	}
	return nil
}

// Stats returns a copy of the counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// CurrentState returns the latest committed state of x.
func (m *Manager) CurrentState(x string) (adt.State, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	o, ok := m.objects[x]
	if !ok {
		return nil, fmt.Errorf("mvto: object %q not registered", x)
	}
	for i := len(o.versions) - 1; i >= 0; i-- {
		if o.versions[i].committed {
			return o.versions[i].state, nil
		}
	}
	return nil, fmt.Errorf("mvto: object %q has no committed version", x)
}

// Tx is one timestamped transaction.
type Tx struct {
	m    *Manager
	ts   int64
	done bool
	log  []logEntry // this transaction's operations, for the verifier
}

// Begin starts a transaction at the next pseudo-time.
func (m *Manager) Begin() *Tx {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.clock++
	m.stats.Begun++
	return &Tx{m: m, ts: m.clock}
}

// Timestamp returns the transaction's pseudo-time.
func (tx *Tx) Timestamp() int64 { return tx.ts }

// latestAtMost returns the index of the version with the largest ts ≤ t,
// tentative or committed. The initial version guarantees existence.
func (o *object) latestAtMost(t int64) int {
	// versions is sorted by ts; binary search for the last index with
	// ts <= t.
	i := sort.Search(len(o.versions), func(i int) bool { return o.versions[i].ts > t })
	return i - 1
}

// Do applies op to object x on behalf of tx. Reads may wait for an
// earlier tentative version to resolve; writes fail fast with ErrTooLate
// when the timestamp rule rejects them (the transaction should then
// Abort).
func (tx *Tx) Do(x string, op adt.Op) (adt.Value, error) {
	m := tx.m
	m.mu.Lock()
	defer m.mu.Unlock()
	if tx.done {
		return nil, ErrTxDone
	}
	o, ok := m.objects[x]
	if !ok {
		return nil, fmt.Errorf("mvto: object %q not registered", x)
	}
	waited := false
	for {
		i := o.latestAtMost(tx.ts)
		v := &o.versions[i]
		if !v.committed && v.ts != tx.ts {
			// A tentative version from an earlier transaction: its fate
			// decides what we read. Waits always target strictly smaller
			// timestamps (v.ts < tx.ts since timestamps are unique), so
			// the wait graph is acyclic — MVTO cannot deadlock.
			if !waited {
				m.stats.Waits++
				waited = true
			}
			m.cond.Wait()
			if tx.done {
				return nil, ErrTxDone
			}
			continue
		}
		if op.ReadOnly() {
			var state adt.State
			if v.ts == tx.ts {
				state = v.state // read own write
			} else {
				state = v.state
				if tx.ts > v.maxRead {
					v.maxRead = tx.ts
				}
			}
			_, val := op.Apply(state)
			tx.log = append(tx.log, logEntry{ts: tx.ts, obj: x, op: op, value: val})
			return val, nil
		}
		// Write: the version we would supersede is v (largest ts ≤ tx.ts).
		if v.ts == tx.ts {
			// Updating our own tentative version is always allowed.
			next, val := op.Apply(v.state)
			v.state = next
			tx.log = append(tx.log, logEntry{ts: tx.ts, obj: x, op: op, value: val})
			return val, nil
		}
		if v.maxRead > tx.ts {
			// A later-stamped transaction already read v; installing a
			// version between v and that read would invalidate it.
			m.stats.TooLates++
			return nil, ErrTooLate
		}
		// A write is a read-modify-write: its value is computed from v, so
		// it also *reads* v. Recording that read makes any earlier-stamped
		// writer that would slide between v and us abort as too late —
		// without it, two adds based on the same version could both
		// commit. (Blind writes pay a little conservatism here.)
		if tx.ts > v.maxRead {
			v.maxRead = tx.ts
		}
		next, val := op.Apply(v.state)
		// Insert a tentative version at tx.ts, after index i.
		o.versions = append(o.versions, version{})
		copy(o.versions[i+2:], o.versions[i+1:])
		o.versions[i+1] = version{ts: tx.ts, state: next, committed: false}
		tx.log = append(tx.log, logEntry{ts: tx.ts, obj: x, op: op, value: val})
		return val, nil
	}
}

// Read is Do restricted to read-only ops.
func (tx *Tx) Read(x string, op adt.Op) (adt.Value, error) {
	if !op.ReadOnly() {
		return nil, fmt.Errorf("mvto: Read with non-read-only op %s", op)
	}
	return tx.Do(x, op)
}

// Write is Do restricted to mutating ops.
func (tx *Tx) Write(x string, op adt.Op) (adt.Value, error) {
	if op.ReadOnly() {
		return nil, fmt.Errorf("mvto: Write with read-only op %s", op)
	}
	return tx.Do(x, op)
}

// Commit makes the transaction's tentative versions committed and wakes
// waiters.
func (tx *Tx) Commit() error {
	m := tx.m
	m.mu.Lock()
	defer m.mu.Unlock()
	if tx.done {
		return ErrTxDone
	}
	tx.done = true
	for _, o := range m.objects {
		for i := range o.versions {
			if o.versions[i].ts == tx.ts {
				o.versions[i].committed = true
			}
		}
	}
	m.committedLog = append(m.committedLog, tx.log...)
	m.stats.Commits++
	m.cond.Broadcast()
	return nil
}

// Abort discards the transaction's tentative versions and wakes waiters.
func (tx *Tx) Abort() {
	m := tx.m
	m.mu.Lock()
	defer m.mu.Unlock()
	if tx.done {
		return
	}
	tx.done = true
	for _, o := range m.objects {
		keep := o.versions[:0]
		for _, v := range o.versions {
			if v.ts != tx.ts {
				keep = append(keep, v)
			}
		}
		o.versions = keep
	}
	m.stats.Aborts++
	m.cond.Broadcast()
}

// Run executes fn as one transaction, committing on nil and aborting on
// error; ErrTooLate aborts are retried with a fresh (later) timestamp up
// to attempts times.
func (m *Manager) Run(attempts int, fn func(*Tx) error) error {
	var err error
	for i := 0; i < attempts; i++ {
		tx := m.Begin()
		err = fn(tx)
		if err == nil {
			return tx.Commit()
		}
		tx.Abort()
		if !errors.Is(err, ErrTooLate) {
			return err
		}
	}
	return err
}

// VerifySerializable independently checks the run: replaying every
// committed operation in pseudo-time order against fresh objects must
// reproduce each operation's recorded value and the final committed
// states. Call when no transactions are in flight.
func (m *Manager) VerifySerializable(initial map[string]adt.State) error {
	m.mu.Lock()
	log := make([]logEntry, len(m.committedLog))
	copy(log, m.committedLog)
	m.mu.Unlock()
	sort.SliceStable(log, func(i, j int) bool { return log[i].ts < log[j].ts })
	states := make(map[string]adt.State, len(initial))
	for x, s := range initial {
		states[x] = s
	}
	for i, e := range log {
		s, ok := states[e.obj]
		if !ok {
			return fmt.Errorf("mvto: verify: unknown object %q", e.obj)
		}
		next, val := e.op.Apply(s)
		if val != e.value {
			return fmt.Errorf("mvto: verify: entry %d (ts %d, %s on %s) returned %v live but %v in serial replay",
				i, e.ts, e.op, e.obj, e.value, val)
		}
		states[e.obj] = next
	}
	for x, s := range states {
		live, err := m.CurrentState(x)
		if err != nil {
			return err
		}
		if live.String() != s.String() {
			return fmt.Errorf("mvto: verify: final state of %s is %s live but %s in serial replay", x, live, s)
		}
	}
	return nil
}
