// Package trace renders schedules for humans: per-transaction fates, the
// transaction tree, and side-by-side views of a concurrent schedule and
// its serial witness. It backs cmd/txtrace and is handy in test failure
// output.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"text/tabwriter"

	"nestedtx/internal/event"
	"nestedtx/internal/tree"
)

// Fate summarises what happened to one transaction in a schedule.
type Fate struct {
	T         tree.TID
	IsAccess  bool
	Object    string // for accesses
	Op        string // for accesses
	Requested bool
	Created   bool
	Committed bool
	Aborted   bool
	Orphan    bool
	Value     event.Value // commit-request value, if any
	HasValue  bool
}

// State renders the fate as one word.
func (f Fate) State() string {
	switch {
	case f.Committed:
		return "committed"
	case f.Aborted:
		return "aborted"
	case f.Created:
		return "live"
	case f.Requested:
		return "requested"
	default:
		return "unborn"
	}
}

// Fates computes the fate of every transaction mentioned in s, sorted by
// name.
func Fates(s event.Schedule, st *event.SystemType) []Fate {
	m := make(map[tree.TID]*Fate)
	get := func(t tree.TID) *Fate {
		f := m[t]
		if f == nil {
			f = &Fate{T: t}
			if a, ok := st.AccessInfo(t); ok {
				f.IsAccess = true
				f.Object = a.Object
				f.Op = a.Op.String()
			}
			m[t] = f
		}
		return f
	}
	for _, e := range s {
		switch e.Kind {
		case event.RequestCreate:
			get(e.T).Requested = true
		case event.Create:
			f := get(e.T)
			f.Requested = f.Requested || e.T == tree.Root
			f.Created = true
		case event.RequestCommit:
			f := get(e.T)
			f.Value = e.Value
			f.HasValue = true
		case event.Commit:
			get(e.T).Committed = true
		case event.Abort:
			get(e.T).Aborted = true
		}
	}
	out := make([]Fate, 0, len(m))
	for t, f := range m {
		f.Orphan = s.IsOrphan(t)
		out = append(out, *f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].T < out[j].T })
	return out
}

// WriteFates renders the fate table.
func WriteFates(w io.Writer, s event.Schedule, st *event.SystemType) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "transaction\tkind\tfate\tvalue\torphan")
	for _, f := range Fates(s, st) {
		kind := "tx"
		if f.IsAccess {
			kind = fmt.Sprintf("access %s %s", f.Object, f.Op)
		}
		val := ""
		if f.HasValue {
			val = fmt.Sprintf("%v", f.Value)
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%v\n", f.T, kind, f.State(), val, f.Orphan)
	}
	return tw.Flush()
}

// WriteTree renders the transaction tree with fates, indented by depth.
func WriteTree(w io.Writer, s event.Schedule, st *event.SystemType) error {
	fates := Fates(s, st)
	byID := make(map[tree.TID]Fate, len(fates))
	for _, f := range fates {
		byID[f.T] = f
	}
	// Ensure ancestors appear even if they had no events.
	all := make(map[tree.TID]struct{})
	for _, f := range fates {
		for _, a := range f.T.Ancestors() {
			all[a] = struct{}{}
		}
	}
	ids := make([]tree.TID, 0, len(all))
	for t := range all {
		ids = append(ids, t)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, t := range ids {
		f, ok := byID[t]
		state := "(no events)"
		if ok {
			state = f.State()
			if f.IsAccess {
				state += fmt.Sprintf(" [%s %s]", f.Object, f.Op)
			}
			if f.Orphan {
				state += " orphan"
			}
		}
		if _, err := fmt.Fprintf(w, "%s%s  %s\n", strings.Repeat("  ", t.Level()), t, state); err != nil {
			return err
		}
	}
	return nil
}

// WriteNumbered prints a schedule one numbered event per line.
func WriteNumbered(w io.Writer, s event.Schedule) error {
	for i, e := range s {
		if _, err := fmt.Fprintf(w, "%4d  %s\n", i, e); err != nil {
			return err
		}
	}
	return nil
}

// Summary returns one line of counts: events, transactions by fate.
func Summary(s event.Schedule, st *event.SystemType) string {
	var committed, aborted, live, accesses int
	for _, f := range Fates(s, st) {
		if f.IsAccess {
			accesses++
		}
		switch {
		case f.Committed:
			committed++
		case f.Aborted:
			aborted++
		case f.Created:
			live++
		}
	}
	return fmt.Sprintf("%d events, %d committed, %d aborted, %d live, %d accesses",
		len(s), committed, aborted, live, accesses)
}
