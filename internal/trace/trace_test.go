package trace

import (
	"strings"
	"testing"

	"nestedtx/internal/adt"
	"nestedtx/internal/event"
)

func sample(t *testing.T) (event.Schedule, *event.SystemType) {
	t.Helper()
	st := event.NewSystemType()
	st.DefineObject("X", adt.NewRegister(int64(0)))
	st.MustDefineAccess("T0.0.0", "X", adt.RegWrite{V: int64(1)})
	s := event.Schedule{
		{Kind: event.Create, T: "T0"},
		{Kind: event.RequestCreate, T: "T0.0"},
		{Kind: event.Create, T: "T0.0"},
		{Kind: event.RequestCreate, T: "T0.0.0"},
		{Kind: event.Create, T: "T0.0.0"},
		{Kind: event.RequestCommit, T: "T0.0.0", Value: int64(1)},
		{Kind: event.Commit, T: "T0.0.0"},
		{Kind: event.RequestCreate, T: "T0.1"},
		{Kind: event.Abort, T: "T0.1"},
	}
	return s, st
}

func TestFates(t *testing.T) {
	s, st := sample(t)
	fates := Fates(s, st)
	byID := map[string]Fate{}
	for _, f := range fates {
		byID[string(f.T)] = f
	}
	if f := byID["T0.0.0"]; !f.Committed || !f.IsAccess || f.Object != "X" || f.State() != "committed" {
		t.Fatalf("access fate wrong: %+v", f)
	}
	if f := byID["T0.0"]; !f.Created || f.Committed || f.State() != "live" {
		t.Fatalf("T0.0 fate wrong: %+v", f)
	}
	if f := byID["T0.1"]; !f.Aborted || !f.Orphan || f.State() != "aborted" {
		t.Fatalf("T0.1 fate wrong: %+v", f)
	}
	if f := byID["T0"]; f.State() != "live" {
		t.Fatalf("root fate wrong: %+v", f)
	}
	// Sorted by name.
	for i := 1; i < len(fates); i++ {
		if fates[i-1].T >= fates[i].T {
			t.Fatal("fates not sorted")
		}
	}
}

func TestWriteFatesAndTree(t *testing.T) {
	s, st := sample(t)
	var sb strings.Builder
	if err := WriteFates(&sb, s, st); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"T0.0.0", "committed", "access X write(1)", "aborted"} {
		if !strings.Contains(out, want) {
			t.Errorf("fate table missing %q:\n%s", want, out)
		}
	}
	sb.Reset()
	if err := WriteTree(&sb, s, st); err != nil {
		t.Fatal(err)
	}
	tree := sb.String()
	if !strings.Contains(tree, "  T0.0  live") || !strings.Contains(tree, "    T0.0.0  committed") {
		t.Errorf("tree rendering wrong:\n%s", tree)
	}
	if !strings.Contains(tree, "orphan") {
		t.Errorf("orphan flag missing:\n%s", tree)
	}
}

func TestWriteNumberedAndSummary(t *testing.T) {
	s, st := sample(t)
	var sb strings.Builder
	if err := WriteNumbered(&sb, s); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "   0  CREATE(T0)") {
		t.Errorf("numbered output wrong:\n%s", sb.String())
	}
	sum := Summary(s, st)
	for _, want := range []string{"9 events", "1 committed", "1 aborted", "2 live", "1 accesses"} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary %q missing %q", sum, want)
		}
	}
}
