package repl

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"nestedtx/internal/adt"
	"nestedtx/internal/dst/clock"
	"nestedtx/internal/obs"
	"nestedtx/internal/snap"
	"nestedtx/internal/wal"
	"nestedtx/internal/wire"
)

// ErrDiverged reports that a shipped record did not replay cleanly
// against the follower's states: the logged value of some effect
// differs from what the operation returns here. That means the two
// histories are not the same history — the follower refuses to
// continue rather than serve states the leader never had.
var ErrDiverged = errors.New("repl: follower diverged from leader history")

var errStopped = errors.New("repl: follower stopped")

// replReadTimeout bounds how long a follower waits for the next frame;
// the leader heartbeats every second, so a silent link is dead.
const replReadTimeout = 15 * time.Second

// Follower is a read replica: it maintains its own WAL as a prefix of
// the leader's durable history, applies committed effects to in-memory
// states, and serves reads from them. It carries everything a
// promotion needs: Dir/WalOptions hand the data directory to
// nestedtx.OpenDurable, whose recovery re-verifies the inherited
// history before the promoted node accepts writes.
type Follower struct {
	dir  string
	opts wal.Options
	log  *wal.Log
	met  *obs.Metrics
	clk  clock.Clock // reconnect-backoff time source (wal.Options.Clock)

	mu            sync.Mutex
	states        map[string]adt.State
	snap          *snap.Store // committed-version store behind BeginSnapshot
	snapID        uint64
	leader        string
	leaderDurable uint64
	progress      time.Time // last time the local log advanced
	connected     bool
	lastErr       error

	stopOnce sync.Once
	stop     chan struct{}
}

// OpenFollower opens (or recovers) the data directory as a replica.
// The recovered prefix is kept: streaming resumes from its NextLSN, so
// a restarted follower re-fetches only what it missed.
func OpenFollower(dir string, opts wal.Options) (*Follower, error) {
	if opts.Metrics == nil {
		opts.Metrics = &obs.Metrics{}
	}
	lg, rec, err := wal.Open(dir, opts)
	if err != nil {
		return nil, err
	}
	states := rec.States()
	sn := snap.New(false)
	for x, st := range states {
		sn.Base(x, st)
	}
	return &Follower{
		dir:      dir,
		opts:     opts,
		log:      lg,
		met:      opts.Metrics,
		clk:      clock.Or(opts.Clock),
		states:   states,
		snap:     sn,
		progress: time.Now(),
		stop:     make(chan struct{}),
	}, nil
}

// Run streams from the leader until Stop (or Close) is called,
// reconnecting with backoff across leader restarts and partitions. It
// returns nil on Stop and ErrDiverged (wrapped) if replay ever
// contradicts the local states — the one condition reconnecting cannot
// fix.
func (f *Follower) Run(leader string) error {
	f.mu.Lock()
	f.leader = leader
	f.mu.Unlock()
	attempt := 0
	for {
		select {
		case <-f.stop:
			return nil
		default:
		}
		start := time.Now()
		err := f.stream(leader)
		f.setDisconnected(err)
		if errors.Is(err, errStopped) {
			return nil
		}
		if errors.Is(err, ErrDiverged) {
			return err
		}
		if time.Since(start) > 5*time.Second {
			attempt = 0 // the link worked for a while; start backoff over
		}
		attempt++
		select {
		case <-f.stop:
			return nil
		case <-f.clk.After(backoff(attempt)):
		}
	}
}

func backoff(attempt int) time.Duration {
	d := 50 * time.Millisecond << uint(attempt-1)
	if attempt > 6 || d > 2*time.Second {
		return 2 * time.Second
	}
	return d
}

// stream runs one connection's worth of replication: dial, HELLO at the
// local NextLSN, then apply pushed frames and ack until something
// breaks.
func (f *Follower) stream(leader string) error {
	conn, err := net.DialTimeout("tcp", leader, 5*time.Second)
	if err != nil {
		return err
	}
	defer conn.Close()
	// Unblock the read loop when Stop is called mid-stream.
	streamDone := make(chan struct{})
	defer close(streamDone)
	go func() {
		select {
		case <-f.stop:
			conn.Close()
		case <-streamDone:
		}
	}()

	br := bufio.NewReaderSize(conn, 64<<10)
	bw := bufio.NewWriterSize(conn, 64<<10)
	seq := uint64(1)
	if err := wire.WriteFrame(bw, &wire.Request{
		Seq: seq, Type: wire.TReplHello, Lsn: f.log.Stats().NextLSN,
	}); err != nil {
		return err
	}
	conn.SetReadDeadline(time.Now().Add(replReadTimeout))
	resp, err := wire.ReadResponse(br)
	if err != nil {
		return err
	}
	if !resp.OK {
		return fmt.Errorf("repl: leader refused stream: %s (%s)", resp.Err, resp.Code)
	}
	if resp.Repl == nil || resp.Repl.Kind != wire.ReplHello {
		return fmt.Errorf("repl: unexpected hello reply")
	}
	f.noteConnected(leader, resp.Repl.DurableLSN)

	for {
		conn.SetReadDeadline(time.Now().Add(replReadTimeout))
		resp, err := wire.ReadResponse(br)
		if err != nil {
			select {
			case <-f.stop:
				return errStopped
			default:
			}
			return err
		}
		if resp.Repl == nil {
			continue
		}
		switch resp.Repl.Kind {
		case wire.ReplSnapshot:
			err = f.installSnapshot(resp.Repl)
		case wire.ReplBatch:
			err = f.applyBatch(resp.Repl)
		default:
			err = fmt.Errorf("repl: unknown stream frame kind %q", resp.Repl.Kind)
		}
		if err != nil {
			return err
		}
		seq++
		if err := wire.WriteFrame(bw, &wire.Request{
			Seq: seq, Type: wire.TReplAck, Lsn: f.log.Stats().NextLSN,
		}); err != nil {
			return err
		}
	}
}

// applyBatch makes a shipped batch durable locally and then visible:
// decode (re-verifying each record's CRC), append to the local WAL in
// strict LSN order, then apply the effects to the served states with
// the same value re-validation recovery's redo performs — divergence
// here is fatal, not retryable.
func (f *Follower) applyBatch(r *wire.Repl) error {
	f.noteLeaderDurable(r.DurableLSN)
	if r.Count == 0 {
		f.publishLag()
		return nil // heartbeat
	}
	recs, err := wal.DecodeFrames(r.Frames)
	if err != nil {
		return fmt.Errorf("repl: batch at %d: %w", r.FirstLSN, err)
	}
	next := f.log.Stats().NextLSN
	// Drop any prefix we already hold (a resend race around reconnect).
	for len(recs) > 0 && recs[0].LSN < next {
		recs = recs[1:]
	}
	if len(recs) == 0 {
		f.publishLag()
		return nil
	}
	if recs[0].LSN != next {
		return fmt.Errorf("repl: batch gap: got LSN %d, want %d", recs[0].LSN, next)
	}
	if err := f.log.AppendBatch(recs); err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, rec := range recs {
		switch {
		case rec.Register != nil:
			if _, ok := f.states[rec.Register.Name]; !ok {
				f.states[rec.Register.Name] = rec.Register.Initial
				f.snap.Base(rec.Register.Name, rec.Register.Initial)
			}
		case rec.Commit != nil:
			var updates map[string]adt.State
			for i, e := range rec.Commit.Effects {
				st, ok := f.states[e.Obj]
				if !ok {
					return fmt.Errorf("%w: record %d effect %d: unknown object %q",
						ErrDiverged, rec.LSN, i, e.Obj)
				}
				nextSt, v := e.Op.Apply(st)
				if v != e.Val {
					return fmt.Errorf("%w: record %d effect %d on %q: logged value %v, apply produced %v",
						ErrDiverged, rec.LSN, i, e.Obj, e.Val, v)
				}
				f.states[e.Obj] = nextSt
				if !e.Op.ReadOnly() {
					if updates == nil {
						updates = make(map[string]adt.State)
					}
					updates[e.Obj] = nextSt
				}
			}
			// Publish the record's writes as one atomic snapshot step:
			// replay order is WAL order is the leader's conflict order,
			// so follower snapshots pin the same serial prefixes leader
			// snapshots do (just possibly a little behind).
			if len(updates) > 0 {
				f.snap.Publish(rec.Commit.TID, updates)
				f.met.ObserveSnapPublish()
			}
		}
	}
	f.progress = time.Now()
	f.met.ObserveReplApply(len(recs))
	f.publishLagLocked()
	return nil
}

// installSnapshot replaces the local log and states with the leader's
// checkpoint — the catch-up path for a follower below the leader's
// low-water mark.
func (f *Follower) installSnapshot(r *wire.Repl) error {
	f.noteLeaderDurable(r.DurableLSN)
	states := make(map[string]adt.State, len(r.States))
	for x, raw := range r.States {
		st, err := adt.DecodeState(raw)
		if err != nil {
			return fmt.Errorf("repl: snapshot state %q: %w", x, err)
		}
		states[x] = st
	}
	if err := f.log.InstallSnapshot(r.NextLSN, states); err != nil {
		return err
	}
	// The old version chains describe a history this checkpoint replaces;
	// swap in a fresh store. Pins already taken keep reading the old
	// store's (still valid, just pre-checkpoint) prefix until released.
	sn := snap.New(false)
	for x, st := range states {
		sn.Base(x, st)
	}
	f.mu.Lock()
	f.states = states
	f.snap = sn
	f.progress = time.Now()
	f.mu.Unlock()
	f.publishLag()
	return nil
}

func (f *Follower) noteConnected(leader string, leaderDurable uint64) {
	f.mu.Lock()
	f.connected = true
	f.lastErr = nil
	if leaderDurable > f.leaderDurable {
		f.leaderDurable = leaderDurable
	}
	f.mu.Unlock()
	f.publishLag()
}

func (f *Follower) setDisconnected(err error) {
	f.mu.Lock()
	f.connected = false
	if err != nil && !errors.Is(err, errStopped) {
		f.lastErr = err
	}
	f.mu.Unlock()
}

func (f *Follower) noteLeaderDurable(lsn uint64) {
	f.mu.Lock()
	if lsn > f.leaderDurable {
		f.leaderDurable = lsn
	}
	f.mu.Unlock()
}

func (f *Follower) publishLag() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.publishLagLocked()
}

func (f *Follower) publishLagLocked() {
	applied := f.log.Stats().NextLSN
	if f.leaderDurable <= applied {
		f.met.SetReplLag(0, 0)
		return
	}
	f.met.SetReplLag(f.leaderDurable-applied, time.Since(f.progress))
}

// State returns the replicated (committed-to-root) state of an object.
func (f *Follower) State(name string) (adt.State, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	st, ok := f.states[name]
	if !ok {
		return nil, fmt.Errorf("repl: unknown object %q", name)
	}
	return st, nil
}

// States returns a copy of all replicated object states.
func (f *Follower) States() map[string]adt.State {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string]adt.State, len(f.states))
	for k, v := range f.states {
		out[k] = v
	}
	return out
}

// Status reports the follower-side replication view.
func (f *Follower) Status() *wire.ReplStatus {
	st := f.log.Stats()
	f.mu.Lock()
	defer f.mu.Unlock()
	out := &wire.ReplStatus{
		Role:             "follower",
		NextLSN:          st.NextLSN,
		DurableLSN:       st.DurableLSN,
		CheckpointLSN:    st.CheckpointLSN,
		Leader:           f.leader,
		LeaderDurableLSN: f.leaderDurable,
		Connected:        f.connected,
	}
	if f.leaderDurable > st.NextLSN {
		out.LagRecords = f.leaderDurable - st.NextLSN
		out.LagSeconds = time.Since(f.progress).Seconds()
	}
	return out
}

// Err returns the last stream error (nil while healthy or stopped).
func (f *Follower) Err() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.lastErr
}

// Dir returns the data directory, for promotion.
func (f *Follower) Dir() string { return f.dir }

// WalOptions returns the options the log was opened with, for
// promotion (nestedtx.OpenDurable reopens the directory with them).
func (f *Follower) WalOptions() wal.Options { return f.opts }

// Metrics returns the follower's metrics registry.
func (f *Follower) Metrics() *obs.Metrics { return f.met }

// Leader returns the address Run was pointed at ("" before Run).
func (f *Follower) Leader() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.leader
}

// Stop ends streaming (Run returns) but leaves the log open and the
// states serveable.
func (f *Follower) Stop() {
	f.stopOnce.Do(func() { close(f.stop) })
}

// Close stops streaming and closes the local log. The in-memory states
// remain readable; the data directory is ready for OpenDurable.
func (f *Follower) Close() error {
	f.Stop()
	return f.log.Close()
}
