// Package repl is WAL log-shipping replication. The central fact it
// leans on: because a committing top-level transaction appends (and
// fsyncs) its redo record BEFORE releasing its locks, log order agrees
// with the per-object conflict order — the WAL is not merely a redo aid
// but a serial history of the system (the same fact wal.Recovery.Verify
// exploits). Shipping that history, byte-checked, to a follower and
// replaying it there therefore reproduces the leader's committed states
// exactly, and a promoted follower can re-certify the whole inherited
// history against the Theorem-34 checker before accepting writes.
//
// The leader side is the Shipper: one Serve call per follower
// connection, tailing the live log with wal.Tailer, shipping only
// records at or below the durable LSN (unsynced bytes are visible in
// segment files, but shipping them could diverge follower from leader
// if the leader crashes before the fsync). The follower side is the
// Follower: it appends shipped batches to its own WAL (re-verifying the
// per-record CRCs, which cross the wire intact), applies the effects to
// its served states with the same value re-validation recovery uses,
// and acks its durable position.
//
// Replication is asynchronous: a leader ack to a client does NOT mean
// the commit reached a follower. Failover that must not lose acked
// commits has to fence the leader and drain the follower to zero lag
// first — see the controlled-failover test in internal/server.
package repl

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"nestedtx/internal/adt"
	"nestedtx/internal/obs"
	"nestedtx/internal/wal"
	"nestedtx/internal/wire"
)

const (
	// maxBatchRecords and maxBatchBytes bound one REPL_BATCH frame. The
	// byte bound is on encoded record frames; with JSON/base64 overhead
	// the wire frame stays well under wire.MaxResponseSize.
	maxBatchRecords = 512
	maxBatchBytes   = 256 << 10

	// heartbeatEvery is the idle cadence of empty batch frames carrying
	// the leader's durable LSN (lag signal + liveness probe in both
	// directions).
	heartbeatEvery = time.Second
)

// Shipper streams a log's records to replication followers. One Shipper
// serves all followers of a log; each follower connection runs one
// Serve call.
type Shipper struct {
	log *wal.Log
	met *obs.Metrics

	mu        sync.Mutex
	followers map[*followerConn]struct{}
}

// followerConn is the leader-side view of one connected follower.
type followerConn struct {
	remote string

	mu       sync.Mutex
	ack      uint64    // next LSN the follower wants (all below are durable there)
	progress time.Time // last time ack advanced
	// Oldest unacked batch, for ship latency: set when a batch is sent
	// and no older one is outstanding, cleared by the covering ack.
	pendingLSN uint64 // LSN the covering ack must reach (last record + 1)
	pendingAt  time.Time
}

// NewShipper wraps a live log. met may be nil.
func NewShipper(lg *wal.Log, met *obs.Metrics) *Shipper {
	return &Shipper{log: lg, met: met, followers: make(map[*followerConn]struct{})}
}

// Serve runs the push stream for one follower connection until done is
// closed, the peer disconnects, or an error. req is the REPL_HELLO that
// opened the stream (req.Lsn = the follower's next wanted LSN); br/bw
// wrap the connection. Serve owns both directions: it pushes Response
// frames and consumes the follower's REPL_ACK requests.
func (sh *Shipper) Serve(done <-chan struct{}, remote string, req *wire.Request, br *bufio.Reader, bw *bufio.Writer) error {
	st := sh.log.Stats()
	if req.Lsn > st.NextLSN {
		err := fmt.Errorf("repl: follower at LSN %d is ahead of this leader at %d (split brain?)", req.Lsn, st.NextLSN)
		wire.WriteFrameMax(bw, &wire.Response{Seq: req.Seq, OK: false,
			Code: wire.CodeBadRequest, Err: err.Error()}, wire.MaxResponseSize)
		return err
	}
	f := &followerConn{remote: remote, ack: req.Lsn, progress: time.Now()}
	sh.mu.Lock()
	sh.followers[f] = struct{}{}
	sh.mu.Unlock()
	sh.met.AddReplFollowers(1)
	defer func() {
		sh.mu.Lock()
		delete(sh.followers, f)
		sh.mu.Unlock()
		sh.met.AddReplFollowers(-1)
		sh.publishLag()
	}()

	if err := wire.WriteFrameMax(bw, &wire.Response{Seq: req.Seq, OK: true, Repl: &wire.Repl{
		Kind: wire.ReplHello, NextLSN: req.Lsn, DurableLSN: sh.log.DurableLSN(),
	}}, wire.MaxResponseSize); err != nil {
		return err
	}

	// Acks arrive interleaved with our pushes; a dedicated reader keeps
	// them flowing while the ship loop is blocked writing.
	ackCh := make(chan uint64, 64)
	ackErr := make(chan error, 1)
	go func() {
		for {
			areq, err := wire.ReadRequest(br)
			if err != nil {
				ackErr <- err
				return
			}
			if areq.Type != wire.TReplAck {
				continue
			}
			select {
			case ackCh <- areq.Lsn:
			case <-done:
				return
			}
		}
	}()

	tail := wal.NewTailer(sh.log.Dir(), sh.log.FS(), req.Lsn)
	watch := sh.log.Watch()
	defer sh.log.Unwatch(watch)
	heartbeat := time.NewTicker(heartbeatEvery)
	defer heartbeat.Stop()

	for {
		// Drain acks and check for shutdown without blocking.
		for drained := false; !drained; {
			select {
			case lsn := <-ackCh:
				sh.noteAck(f, lsn)
			case err := <-ackErr:
				return err
			case <-done:
				return nil
			default:
				drained = true
			}
		}
		// Ship only durable records: the tailer can see bytes the syncer
		// has not fsynced yet, and those must never leave the leader.
		if durable := sh.log.DurableLSN(); tail.NextLSN() < durable {
			n := maxBatchRecords
			if behind := durable - tail.NextLSN(); behind < uint64(n) {
				n = int(behind)
			}
			recs, err := tail.Next(n, maxBatchBytes)
			if errors.Is(err, wal.ErrTruncated) {
				// The position was checkpointed away (slow follower, or a
				// fresh one below the low-water mark): send the newest
				// on-disk checkpoint as a snapshot and retail from there.
				lsn, serr := sh.sendSnapshot(bw)
				if serr != nil {
					return serr
				}
				tail = wal.NewTailer(sh.log.Dir(), sh.log.FS(), lsn)
				continue
			}
			if err != nil {
				return err
			}
			if len(recs) > 0 {
				if err := sh.sendBatch(bw, f, recs); err != nil {
					return err
				}
				continue
			}
		}
		// Caught up: wait for new durable records, an ack, or the
		// heartbeat tick.
		select {
		case <-done:
			return nil
		case err := <-ackErr:
			return err
		case lsn := <-ackCh:
			sh.noteAck(f, lsn)
		case <-watch:
		case <-heartbeat.C:
			if err := sh.sendHeartbeat(bw); err != nil {
				return err
			}
		}
	}
}

func (sh *Shipper) sendBatch(bw *bufio.Writer, f *followerConn, recs []wal.Record) error {
	var frames []byte
	var err error
	for _, r := range recs {
		if frames, err = wal.EncodeFrame(frames, r); err != nil {
			return err
		}
	}
	now := time.Now()
	if err := wire.WriteFrameMax(bw, &wire.Response{OK: true, Repl: &wire.Repl{
		Kind:       wire.ReplBatch,
		FirstLSN:   recs[0].LSN,
		Count:      len(recs),
		DurableLSN: sh.log.DurableLSN(),
		SentUnixNS: now.UnixNano(),
		Frames:     frames,
	}}, wire.MaxResponseSize); err != nil {
		return err
	}
	f.mu.Lock()
	if f.pendingLSN == 0 {
		f.pendingLSN = recs[len(recs)-1].LSN + 1
		f.pendingAt = now
	}
	f.mu.Unlock()
	sh.met.ObserveReplBatch(len(recs))
	return nil
}

func (sh *Shipper) sendHeartbeat(bw *bufio.Writer) error {
	return wire.WriteFrameMax(bw, &wire.Response{OK: true, Repl: &wire.Repl{
		Kind:       wire.ReplBatch,
		DurableLSN: sh.log.DurableLSN(),
		SentUnixNS: time.Now().UnixNano(),
	}}, wire.MaxResponseSize)
}

// sendSnapshot ships the newest on-disk checkpoint and returns its LSN
// (the position tailing resumes from). It needs no coordination with
// the writer: Inspect reads the directory the same way recovery would.
func (sh *Shipper) sendSnapshot(bw *bufio.Writer) (uint64, error) {
	rec, err := wal.Inspect(sh.log.Dir(), sh.log.FS())
	if err != nil {
		return 0, err
	}
	if rec.CheckpointLSN == 0 {
		// A truncated tail position with no checkpoint on disk cannot
		// happen (truncation is what checkpoints do); treat defensively.
		return 0, fmt.Errorf("repl: tail truncated but no checkpoint on disk")
	}
	states := make(map[string]json.RawMessage, len(rec.Checkpoint))
	for x, st := range rec.Checkpoint {
		raw, err := adt.EncodeState(st)
		if err != nil {
			return 0, fmt.Errorf("repl: snapshot state %q: %w", x, err)
		}
		states[x] = raw
	}
	if err := wire.WriteFrameMax(bw, &wire.Response{OK: true, Repl: &wire.Repl{
		Kind:       wire.ReplSnapshot,
		NextLSN:    rec.CheckpointLSN,
		DurableLSN: sh.log.DurableLSN(),
		SentUnixNS: time.Now().UnixNano(),
		States:     states,
	}}, wire.MaxResponseSize); err != nil {
		return 0, err
	}
	return rec.CheckpointLSN, nil
}

func (sh *Shipper) noteAck(f *followerConn, lsn uint64) {
	var rtt time.Duration
	f.mu.Lock()
	if lsn > f.ack {
		f.ack = lsn
		f.progress = time.Now()
	}
	if f.pendingLSN != 0 && lsn >= f.pendingLSN {
		rtt = time.Since(f.pendingAt)
		f.pendingLSN = 0
	}
	f.mu.Unlock()
	sh.met.ObserveReplAck(rtt)
	sh.publishLag()
}

// publishLag exports the worst lag across connected followers.
func (sh *Shipper) publishLag() {
	durable := sh.log.DurableLSN()
	now := time.Now()
	var worstRec uint64
	var worstLag time.Duration
	sh.mu.Lock()
	for f := range sh.followers {
		rec, lag := f.lag(durable, now)
		if rec > worstRec {
			worstRec = rec
		}
		if lag > worstLag {
			worstLag = lag
		}
	}
	sh.mu.Unlock()
	sh.met.SetReplLag(worstRec, worstLag)
}

func (f *followerConn) lag(durable uint64, now time.Time) (uint64, time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if durable <= f.ack {
		return 0, 0
	}
	return durable - f.ack, now.Sub(f.progress)
}

// Status reports the leader-side replication view.
func (sh *Shipper) Status() *wire.ReplStatus {
	st := sh.log.Stats()
	now := time.Now()
	out := &wire.ReplStatus{
		Role:          "leader",
		NextLSN:       st.NextLSN,
		DurableLSN:    st.DurableLSN,
		CheckpointLSN: st.CheckpointLSN,
	}
	sh.mu.Lock()
	for f := range sh.followers {
		rec, lag := f.lag(st.DurableLSN, now)
		f.mu.Lock()
		ack := f.ack
		f.mu.Unlock()
		out.Followers = append(out.Followers, wire.ReplFollower{
			Remote: f.remote, AckLSN: ack,
			LagRecords: rec, LagSeconds: lag.Seconds(),
		})
	}
	sh.mu.Unlock()
	sort.Slice(out.Followers, func(i, j int) bool {
		return out.Followers[i].Remote < out.Followers[j].Remote
	})
	return out
}
