package repl

import (
	"bufio"
	"errors"
	"net"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"nestedtx/internal/adt"
	"nestedtx/internal/obs"
	"nestedtx/internal/wal"
	"nestedtx/internal/wire"
)

// leaderLog is a test-side stand-in for a committing Manager: it
// appends register/commit records to a real log, maintaining shadow
// states the way commitTop does.
type leaderLog struct {
	tb     testing.TB
	lg     *wal.Log
	states map[string]adt.State
	n      int
}

func newLeaderLog(tb testing.TB, fs wal.FS, dir string, opts wal.Options) *leaderLog {
	tb.Helper()
	opts.FS = fs
	lg, rec, err := wal.Open(dir, opts)
	if err != nil {
		tb.Fatalf("wal.Open(%s): %v", dir, err)
	}
	states := rec.States()
	if states == nil {
		states = make(map[string]adt.State)
	}
	return &leaderLog{tb: tb, lg: lg, states: states}
}

func (l *leaderLog) register(name string, init adt.State) {
	l.tb.Helper()
	if _, err := l.lg.Append(wal.Record{Register: &wal.RegisterRecord{Name: name, Initial: init}}); err != nil {
		l.tb.Fatalf("append register %s: %v", name, err)
	}
	l.states[name] = init
}

func (l *leaderLog) commit(obj string, op adt.Op) {
	l.tb.Helper()
	next, v := op.Apply(l.states[obj])
	l.n++
	rec := wal.Record{Commit: &wal.CommitRecord{
		TID: "T0." + string(rune('0'+l.n%10)), Value: int64(1),
		Effects: []wal.Effect{{Obj: obj, Op: op, Val: v}},
	}}
	if _, err := l.lg.Append(rec); err != nil {
		l.tb.Fatalf("append commit on %s: %v", obj, err)
	}
	l.states[obj] = next
}

// serveShipper runs a minimal leader accept loop: each connection's
// first request must be a REPL_HELLO, which hands the connection to
// sh.Serve — the same wiring internal/server does.
func serveShipper(tb testing.TB, sh *Shipper) (addr string, stop func()) {
	tb.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tb.Fatalf("listen: %v", err)
	}
	done := make(chan struct{})
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				br := bufio.NewReaderSize(c, 64<<10)
				bw := bufio.NewWriterSize(c, 64<<10)
				req, err := wire.ReadRequest(br)
				if err != nil || req.Type != wire.TReplHello {
					return
				}
				sh.Serve(done, c.RemoteAddr().String(), req, br, bw)
			}(conn)
		}
	}()
	var once sync.Once
	return ln.Addr().String(), func() {
		once.Do(func() {
			close(done)
			ln.Close()
		})
	}
}

func waitFor(tb testing.TB, what string, cond func() bool) {
	tb.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	tb.Fatalf("timed out waiting for %s", what)
}

func TestShipAndCatchUp(t *testing.T) {
	fs := wal.NewMemFS()
	leader := newLeaderLog(t, fs, "leader", wal.Options{})
	defer leader.lg.Close()
	leader.register("ctr", adt.Counter{})
	for i := 0; i < 20; i++ {
		leader.commit("ctr", adt.CtrAdd{Delta: 1})
	}

	met := &obs.Metrics{}
	sh := NewShipper(leader.lg, met)
	addr, stop := serveShipper(t, sh)
	defer stop()

	f, err := OpenFollower("follower", wal.Options{FS: fs})
	if err != nil {
		t.Fatalf("OpenFollower: %v", err)
	}
	defer f.Close()
	go f.Run(addr)

	// Catch-up: the backlog written before the follower existed arrives.
	waitFor(t, "initial catch-up", func() bool {
		return f.Status().NextLSN == leader.lg.DurableLSN()
	})
	if !reflect.DeepEqual(f.States(), leader.states) {
		t.Fatalf("follower states %v != leader states %v", f.States(), leader.states)
	}

	// Steady state: live commits flow through.
	for i := 0; i < 10; i++ {
		leader.commit("ctr", adt.CtrAdd{Delta: 2})
	}
	waitFor(t, "steady-state ship", func() bool {
		return f.Status().NextLSN == leader.lg.DurableLSN()
	})
	if st, err := f.State("ctr"); err != nil || st != (adt.Counter{N: 40}) {
		t.Fatalf("follower ctr = %v (%v), want Counter{N: 40}", st, err)
	}

	// The leader saw acks covering everything, and its lag gauge is flat.
	waitFor(t, "leader ack bookkeeping", func() bool {
		rs := sh.Status()
		return len(rs.Followers) == 1 && rs.Followers[0].AckLSN == leader.lg.DurableLSN()
	})
	snap := met.Snapshot()
	if snap.ReplBatches == 0 || snap.ReplRecordsShipped < 31 || snap.ReplAcks == 0 {
		t.Fatalf("leader repl counters not advancing: %+v", snap)
	}
	if snap.ReplLagRecords != 0 {
		t.Fatalf("caught-up lag gauge = %d, want 0", snap.ReplLagRecords)
	}

	// The follower's WAL is byte-verifiable on its own.
	rec, err := wal.Inspect("follower", fs)
	if err != nil {
		t.Fatalf("inspect follower: %v", err)
	}
	if err := rec.Verify(); err != nil {
		t.Fatalf("follower history fails Verify: %v", err)
	}
}

func TestSnapshotCatchUp(t *testing.T) {
	fs := wal.NewMemFS()
	leader := newLeaderLog(t, fs, "leader", wal.Options{})
	defer leader.lg.Close()
	leader.register("ctr", adt.Counter{})
	leader.register("reg", adt.NewRegister(int64(0)))
	for i := 0; i < 15; i++ {
		leader.commit("ctr", adt.CtrAdd{Delta: 1})
		leader.commit("reg", adt.RegWrite{V: int64(i)})
	}
	// Checkpoint truncates the log: LSN 0 is below the low-water mark,
	// so a fresh follower can only catch up via snapshot.
	if err := leader.lg.Checkpoint(func() map[string]adt.State { return leader.states }); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	leader.commit("ctr", adt.CtrAdd{Delta: 100})

	sh := NewShipper(leader.lg, nil)
	addr, stop := serveShipper(t, sh)
	defer stop()

	f, err := OpenFollower("follower", wal.Options{FS: fs})
	if err != nil {
		t.Fatalf("OpenFollower: %v", err)
	}
	defer f.Close()
	go f.Run(addr)

	waitFor(t, "snapshot catch-up", func() bool {
		return f.Status().NextLSN == leader.lg.DurableLSN()
	})
	if !reflect.DeepEqual(f.States(), leader.states) {
		t.Fatalf("follower states %v != leader states %v", f.States(), leader.states)
	}
	st := f.Status()
	if st.CheckpointLSN != leader.lg.Stats().CheckpointLSN {
		t.Fatalf("follower checkpoint %d, want the installed snapshot at %d",
			st.CheckpointLSN, leader.lg.Stats().CheckpointLSN)
	}
}

func TestFollowerRestartResumes(t *testing.T) {
	fs := wal.NewMemFS()
	leader := newLeaderLog(t, fs, "leader", wal.Options{})
	defer leader.lg.Close()
	leader.register("ctr", adt.Counter{})
	for i := 0; i < 5; i++ {
		leader.commit("ctr", adt.CtrAdd{Delta: 1})
	}

	sh := NewShipper(leader.lg, nil)
	addr, stop := serveShipper(t, sh)
	defer stop()

	f, err := OpenFollower("follower", wal.Options{FS: fs})
	if err != nil {
		t.Fatalf("OpenFollower: %v", err)
	}
	go f.Run(addr)
	waitFor(t, "first catch-up", func() bool {
		return f.Status().NextLSN == leader.lg.DurableLSN()
	})
	if err := f.Close(); err != nil {
		t.Fatalf("close follower: %v", err)
	}

	// Leader keeps committing while the follower is down.
	for i := 0; i < 7; i++ {
		leader.commit("ctr", adt.CtrAdd{Delta: 3})
	}

	// A reopened follower recovers its prefix and fetches only the rest.
	f2, err := OpenFollower("follower", wal.Options{FS: fs})
	if err != nil {
		t.Fatalf("reopen follower: %v", err)
	}
	defer f2.Close()
	if got, want := f2.Status().NextLSN, uint64(6); got != want {
		t.Fatalf("recovered follower NextLSN %d, want %d", got, want)
	}
	go f2.Run(addr)
	waitFor(t, "resume catch-up", func() bool {
		return f2.Status().NextLSN == leader.lg.DurableLSN()
	})
	if !reflect.DeepEqual(f2.States(), leader.states) {
		t.Fatalf("follower states %v != leader states %v", f2.States(), leader.states)
	}
}

func TestHelloRefusesAheadFollower(t *testing.T) {
	fs := wal.NewMemFS()
	leader := newLeaderLog(t, fs, "leader", wal.Options{})
	defer leader.lg.Close()
	leader.register("ctr", adt.Counter{})

	sh := NewShipper(leader.lg, nil)
	addr, stop := serveShipper(t, sh)
	defer stop()

	// A follower whose log is longer than the leader's is not a replica
	// of this history; streaming must be refused, not "fixed".
	ahead := newLeaderLog(t, fs, "ahead", wal.Options{})
	ahead.register("ctr", adt.Counter{})
	for i := 0; i < 9; i++ {
		ahead.commit("ctr", adt.CtrAdd{Delta: 1})
	}
	ahead.lg.Close()

	f, err := OpenFollower("ahead", wal.Options{FS: fs})
	if err != nil {
		t.Fatalf("OpenFollower: %v", err)
	}
	defer f.Close()
	err = f.stream(addr)
	if err == nil || !strings.Contains(err.Error(), "ahead") {
		t.Fatalf("stream from ahead follower: err = %v, want split-brain refusal", err)
	}
}

func TestDivergenceIsFatal(t *testing.T) {
	fs := wal.NewMemFS()
	f, err := OpenFollower("follower", wal.Options{FS: fs})
	if err != nil {
		t.Fatalf("OpenFollower: %v", err)
	}
	defer f.Close()

	// A batch whose logged value contradicts the op's actual return on
	// the follower's state must be rejected with ErrDiverged.
	var frames []byte
	for i, rec := range []wal.Record{
		{LSN: 0, Register: &wal.RegisterRecord{Name: "ctr", Initial: adt.Counter{}}},
		{LSN: 1, Commit: &wal.CommitRecord{TID: "T0.1", Value: int64(1),
			Effects: []wal.Effect{{Obj: "ctr", Op: adt.CtrAdd{Delta: 1}, Val: int64(999)}}}},
	} {
		if frames, err = wal.EncodeFrame(frames, rec); err != nil {
			t.Fatalf("EncodeFrame %d: %v", i, err)
		}
	}
	err = f.applyBatch(&wire.Repl{Kind: wire.ReplBatch, FirstLSN: 0, Count: 2, Frames: frames})
	if !errors.Is(err, ErrDiverged) {
		t.Fatalf("applyBatch with bad logged value: err = %v, want ErrDiverged", err)
	}
}
