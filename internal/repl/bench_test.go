package repl

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nestedtx/internal/adt"
	"nestedtx/internal/obs"
	"nestedtx/internal/wal"
)

// BenchmarkReplCatchup measures bulk catch-up throughput: a leader log
// pre-populated with b.N single-effect commit records is streamed to a
// cold follower whose own WAL lives on the real file system, so each
// reported op is one record shipped over TCP, CRC-checked, appended
// durably (one fsync per batch) and applied. records/s is the headline
// catch-up rate.
func BenchmarkReplCatchup(b *testing.B) {
	fs := wal.NewMemFS()
	leader := newLeaderLog(b, fs, "leader", wal.Options{})
	defer leader.lg.Close()
	leader.register("ctr", adt.Counter{})
	for i := 0; i < b.N; i++ {
		leader.commit("ctr", adt.CtrAdd{Delta: 1})
	}
	target := leader.lg.Stats().NextLSN
	sh := NewShipper(leader.lg, &obs.Metrics{})
	addr, stop := serveShipper(b, sh)
	defer stop()

	b.ResetTimer()
	f, err := OpenFollower(b.TempDir(), wal.Options{})
	if err != nil {
		b.Fatalf("OpenFollower: %v", err)
	}
	go f.Run(addr)
	for f.Status().NextLSN < target {
		time.Sleep(time.Millisecond)
	}
	b.StopTimer()
	elapsed := b.Elapsed()
	if elapsed > 0 {
		b.ReportMetric(float64(b.N)/elapsed.Seconds(), "records/s")
	}
	f.Close()
}

// BenchmarkReplSteadyState measures live-stream lag under write load: W
// concurrent writers append durable commits to the leader (the same
// append pattern W committing server sessions produce) while a connected
// follower streams them, and the follower's reported lag is sampled
// throughout. lag-records-mean/max say how far an asynchronous replica
// trails a busy leader in the steady state.
func BenchmarkReplSteadyState(b *testing.B) {
	for _, writers := range []int{16} {
		b.Run(fmt.Sprintf("writers=%d", writers), func(b *testing.B) {
			leader := newLeaderLog(b, nil, b.TempDir(), wal.Options{SyncWindow: 100 * time.Microsecond})
			defer leader.lg.Close()
			leader.register("ctr", adt.Counter{})
			sh := NewShipper(leader.lg, &obs.Metrics{})
			addr, stop := serveShipper(b, sh)
			defer stop()
			f, err := OpenFollower(b.TempDir(), wal.Options{})
			if err != nil {
				b.Fatalf("OpenFollower: %v", err)
			}
			defer f.Close()
			go f.Run(addr)
			waitFor(b, "connect", func() bool { return f.Status().Connected })

			// Lag sampler: every 2ms while the writers run. Lag is taken
			// from the leader's ledger (durable position minus the
			// follower's last ack) — the follower's own view undercounts,
			// since it cannot know about records it has not yet heard of.
			var lagSum, lagMax, samples int64
			sampleDone := make(chan struct{})
			var sampling sync.WaitGroup
			sampling.Add(1)
			go func() {
				defer sampling.Done()
				tick := time.NewTicker(2 * time.Millisecond)
				defer tick.Stop()
				for {
					select {
					case <-sampleDone:
						return
					case <-tick.C:
						var lag int64
						if st := sh.Status(); len(st.Followers) > 0 {
							lag = int64(st.Followers[0].LagRecords)
						}
						atomic.AddInt64(&lagSum, lag)
						atomic.AddInt64(&samples, 1)
						for {
							m := atomic.LoadInt64(&lagMax)
							if lag <= m || atomic.CompareAndSwapInt64(&lagMax, m, lag) {
								break
							}
						}
					}
				}
			}()

			b.ResetTimer()
			var wg sync.WaitGroup
			var seq atomic.Int64
			for w := 0; w < writers; w++ {
				n := b.N / writers
				if w < b.N%writers {
					n++
				}
				wg.Add(1)
				go func(n int) {
					defer wg.Done()
					for i := 0; i < n; i++ {
						rec := wal.Record{Commit: &wal.CommitRecord{
							TID: fmt.Sprintf("T0.%d", seq.Add(1)), Value: int64(1),
							Effects: []wal.Effect{{Obj: "ctr", Op: adt.CtrAdd{Delta: 1}, Val: int64(1)}},
						}}
						if _, err := leader.lg.Append(rec); err != nil {
							b.Errorf("Append: %v", err)
							return
						}
					}
				}(n)
			}
			wg.Wait()
			b.StopTimer()
			close(sampleDone)
			sampling.Wait()

			// Drain so the run ends in a clean, comparable state.
			target := leader.lg.Stats().NextLSN
			deadline := time.Now().Add(30 * time.Second)
			for f.Status().NextLSN < target && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}
			if n := atomic.LoadInt64(&samples); n > 0 {
				b.ReportMetric(float64(atomic.LoadInt64(&lagSum))/float64(n), "lag-records-mean")
				b.ReportMetric(float64(atomic.LoadInt64(&lagMax)), "lag-records-max")
			}
		})
	}
}
