package repl

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"nestedtx/internal/adt"
	"nestedtx/internal/snap"
)

// Snapshot is a read-only snapshot transaction served by a follower: it
// pins the sequence number of the latest replayed top-level commit and
// answers every read from the committed version chain at or below that
// point. The view is the same consistent-cut guarantee a leader-side
// snapshot gives — replay order is WAL order is the leader's conflict
// order — just possibly lagging the leader by the replication delay.
// Safe for concurrent use; Close releases the pin so chains can trim.
type Snapshot struct {
	f   *Follower
	pin *snap.Pin
	id  string

	mu   sync.Mutex
	done bool
}

// BeginSnapshot starts a read-only snapshot transaction over the
// follower's replicated states. The caller must Close it.
func (f *Follower) BeginSnapshot() *Snapshot {
	n := atomic.AddUint64(&f.snapID, 1) - 1
	f.mu.Lock()
	pin := f.snap.Acquire()
	f.mu.Unlock()
	f.met.SnapBegin()
	return &Snapshot{f: f, pin: pin, id: fmt.Sprintf("S%d", n)}
}

// ID returns the snapshot transaction's identifier (S0, S1, …).
func (s *Snapshot) ID() string { return s.id }

// Seq returns the pinned commit sequence number: the count of commit
// records this follower had replayed when the snapshot began.
func (s *Snapshot) Seq() uint64 { return s.pin.Seq() }

// Read applies a read-only operation to obj's state as of the pinned
// sequence number and returns its value.
func (s *Snapshot) Read(obj string, op adt.Op) (adt.Value, error) {
	if !op.ReadOnly() {
		return nil, fmt.Errorf("repl: %s: operation %T is not read-only", s.id, op)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done {
		return nil, fmt.Errorf("repl: %s: snapshot is closed", s.id)
	}
	start := time.Now()
	st, err := s.pin.Read(obj)
	if err != nil {
		return nil, fmt.Errorf("repl: %s: %w", s.id, err)
	}
	_, v := op.Apply(st)
	s.f.met.ObserveSnapRead(time.Since(start))
	return v, nil
}

// Close ends the snapshot transaction and releases its pin. Idempotent.
func (s *Snapshot) Close() error {
	s.mu.Lock()
	if s.done {
		s.mu.Unlock()
		return nil
	}
	s.done = true
	s.mu.Unlock()
	s.pin.Release()
	s.f.met.SnapEnd()
	return nil
}
