package lockmgr

import (
	"fmt"
	"sync"

	"nestedtx/internal/adt"
	"nestedtx/internal/event"
	"nestedtx/internal/tree"
)

// shard owns the lock tables, version maps, and wait queues of the
// objects hashing to it. Everything inside is guarded by mu; nothing in a
// shard is ever touched under another shard's mutex alone. When a path
// needs several shard mutexes at once (the escalated deadlock walk,
// CheckInvariants), it takes them in ascending id order — the global
// shard-lock order that makes multi-shard sections deadlock-free.
type shard struct {
	id int
	m  *Manager

	mu      sync.Mutex
	objects map[string]*lockState
	// held is the held-locks index: for every transaction holding at
	// least one lock in this shard, the set of its objects the
	// transaction holds a (read or write) lock on. Commit and Abort walk
	// this index instead of the whole universe.
	held map[tree.TID]map[*lockState]struct{}
	// contended is the set of objects with a non-empty wait queue, so
	// invariant checks walk only the queues that exist.
	contended map[*lockState]struct{}
	// waiting indexes the queued waiters by their transaction, for
	// demand-driven wait-for-graph exploration and victim selection.
	waiting map[tree.TID][]*waiter
	// topWaiting groups the waiting transactions by their top-level
	// ancestor. Structural wait-for edges (ancestor → waiting descendant)
	// never cross a top-level boundary, so successor enumeration scans
	// only the waiting transactions of one tree.
	topWaiting map[tree.TID]map[tree.TID]struct{}
	stats      Stats
}

// lockState is the M(X) state for one object: the two lock tables, the
// version map (defined exactly on the write-lockholders), and the queue
// of acquisitions blocked on this object.
type lockState struct {
	name     string
	read     tree.Set
	write    tree.Set
	versions map[tree.TID]adt.State
	// dirty marks the write-lockholders that actually mutated the object
	// (applied a non-read-only op, directly or via a committed
	// descendant). Under exclusive locking read-only accesses take write
	// locks too; publication to the snapshot store keys off dirty, not
	// the write table, so pure readers never publish.
	dirty tree.Set
	queue []*waiter
}

type waiter struct {
	tx     tree.TID // the live transaction performing the access
	access tree.TID
	ls     *lockState // the object the waiter is queued on
	sh     *shard     // the shard ls lives in
	write  bool       // whether the access needs a write lock
	wake   chan struct{}
	victim bool
}

func (ls *lockState) current() adt.State {
	least, ok := ls.write.Least()
	if !ok {
		panic("lockmgr: no write-lockholders (root lock lost)")
	}
	return ls.versions[least]
}

// blocked returns a conflicting lockholder that is not an ancestor of t,
// or "" when the acquisition can proceed.
func (ls *lockState) blocked(t tree.TID, write bool) (tree.TID, bool) {
	for u := range ls.write {
		if !u.IsAncestorOf(t) {
			return u, true
		}
	}
	if write {
		for u := range ls.read {
			if !u.IsAncestorOf(t) {
				return u, true
			}
		}
	}
	return "", false
}

// ---- held-locks index ----

// indexAddLocked records that t holds a lock on ls. Caller holds sh.mu.
func (sh *shard) indexAddLocked(t tree.TID, ls *lockState) {
	s := sh.held[t]
	if s == nil {
		s = make(map[*lockState]struct{})
		sh.held[t] = s
	}
	s[ls] = struct{}{}
}

// ---- wait queues ----

// enqueueLocked appends w to its object's wait queue, the per-tx waiting
// index, and the cross-shard waiter counts. Caller holds sh.mu.
func (sh *shard) enqueueLocked(w *waiter) {
	ls := w.ls
	ls.queue = append(ls.queue, w)
	if len(ls.queue) == 1 {
		sh.m.met.AddContended(1)
	}
	sh.m.met.AddQueued(1)
	sh.m.met.AddShardQueued(sh.id, 1)
	sh.contended[ls] = struct{}{}
	if len(sh.waiting[w.tx]) == 0 {
		top := topOf(w.tx)
		s := sh.topWaiting[top]
		if s == nil {
			s = make(map[tree.TID]struct{})
			sh.topWaiting[top] = s
		}
		s[w.tx] = struct{}{}
	}
	sh.waiting[w.tx] = append(sh.waiting[w.tx], w)
	sh.m.waitAdd(w.tx, sh.id)
	if d := uint64(len(ls.queue)); d > sh.stats.MaxQueueDepth {
		sh.stats.MaxQueueDepth = d
	}
}

// dequeueLocked removes w from its object's wait queue if still present,
// and from the waiting index. Caller holds sh.mu.
func (sh *shard) dequeueLocked(w *waiter) {
	ls := w.ls
	for i, q := range ls.queue {
		if q == w {
			ls.queue = append(ls.queue[:i], ls.queue[i+1:]...)
			sh.m.met.AddQueued(-1)
			sh.m.met.AddShardQueued(sh.id, -1)
			if len(ls.queue) == 0 {
				sh.m.met.AddContended(-1)
			}
			break
		}
	}
	if len(ls.queue) == 0 {
		delete(sh.contended, ls)
	}
	sh.unindexWaiterLocked(w)
}

// unindexWaiterLocked drops w from the per-tx waiting index and the
// cross-shard waiter counts. Caller holds sh.mu.
func (sh *shard) unindexWaiterLocked(w *waiter) {
	ws := sh.waiting[w.tx]
	for i, q := range ws {
		if q == w {
			ws = append(ws[:i], ws[i+1:]...)
			break
		}
	}
	if len(ws) == 0 {
		delete(sh.waiting, w.tx)
		top := topOf(w.tx)
		if s := sh.topWaiting[top]; s != nil {
			delete(s, w.tx)
			if len(s) == 0 {
				delete(sh.topWaiting, top)
			}
		}
	} else {
		sh.waiting[w.tx] = ws
	}
	sh.m.waitRemove(w.tx, sh.id)
}

// wakeQueuedLocked wakes every waiter queued on ls — the targeted wakeup
// issued when ls's lock tables changed. Woken waiters rescan and requeue
// if still blocked. Caller holds sh.mu.
func (sh *shard) wakeQueuedLocked(ls *lockState) {
	for _, w := range ls.queue {
		close(w.wake)
		sh.stats.Wakeups++
		sh.unindexWaiterLocked(w)
	}
	if n := len(ls.queue); n > 0 {
		sh.m.met.AddQueued(-int64(n))
		sh.m.met.AddShardQueued(sh.id, -int64(n))
		sh.m.met.AddContended(-1)
	}
	ls.queue = nil
	delete(sh.contended, ls)
}

// grantLocked applies op, grants the access its lock, and immediately
// commits the access so the lock is inherited by tx. Caller holds sh.mu.
func (sh *shard) grantLocked(ls *lockState, tx, access tree.TID, op adt.Op, write bool) adt.Value {
	next, v := op.Apply(ls.current())
	if write {
		ls.write.Add(tx)
		ls.versions[tx] = next
		if !op.ReadOnly() {
			ls.dirty.Add(tx)
		}
	} else {
		ls.read.Add(tx)
	}
	sh.indexAddLocked(tx, ls)
	sh.m.fpAdd(tx, sh.id)
	sh.m.rec.RecordAll(
		event.Event{Kind: event.RequestCommit, T: access, Value: v},
		event.Event{Kind: event.Commit, T: access},
		event.Event{Kind: event.InformCommitAt, T: access, Object: ls.name},
		event.Event{Kind: event.ReportCommit, T: access, Value: v},
	)
	return v
}

// checkLocked runs the single-shard invariants (the old single-table
// checks, scoped to this shard) and accumulates the shard's queued-waiter
// counts per tree into seenWaits for the caller's cross-shard
// reconciliation. Caller holds sh.mu.
func (sh *shard) checkLocked(seenWaits map[tree.TID]map[int]int) error {
	for x, ls := range sh.objects {
		if ShardOf(x, len(sh.m.shards)) != sh.id {
			return fmt.Errorf("lockmgr: object %q stored in shard %d but hashes to %d", x, sh.id, ShardOf(x, len(sh.m.shards)))
		}
		if !ls.write.IsChain() {
			return fmt.Errorf("lockmgr: %s: write-lockholders %v not a chain", x, ls.write.Members())
		}
		for w := range ls.write {
			for r := range ls.read {
				if !w.IsAncestorOf(r) && !r.IsAncestorOf(w) {
					return fmt.Errorf("lockmgr: %s: write holder %s unrelated to read holder %s", x, w, r)
				}
			}
		}
		if len(ls.versions) != ls.write.Len() {
			return fmt.Errorf("lockmgr: %s: %d versions for %d write holders", x, len(ls.versions), ls.write.Len())
		}
		// Every lockholder must appear in the held-locks index.
		for _, s := range []tree.Set{ls.read, ls.write} {
			for t := range s {
				if _, ok := sh.held[t][ls]; !ok {
					return fmt.Errorf("lockmgr: %s: holder %s missing from held-locks index", x, t)
				}
			}
		}
	}
	// Every index entry must be backed by a lock.
	for t, objs := range sh.held {
		if len(objs) == 0 {
			return fmt.Errorf("lockmgr: empty held-locks index entry for %s", t)
		}
		for ls := range objs {
			if !ls.read.Has(t) && !ls.write.Has(t) {
				return fmt.Errorf("lockmgr: held-locks index lists %s on %s without a lock", t, ls.name)
			}
		}
	}
	// Queue bookkeeping: contended is exactly the non-empty queues, and
	// the waiting index lists exactly the queued waiters.
	for ls := range sh.contended {
		if len(ls.queue) == 0 {
			return fmt.Errorf("lockmgr: %s marked contended with empty queue", ls.name)
		}
	}
	queued := 0
	for _, ls := range sh.objects {
		queued += len(ls.queue)
		if len(ls.queue) > 0 {
			if _, ok := sh.contended[ls]; !ok {
				return fmt.Errorf("lockmgr: %s has %d queued waiters but is not marked contended", ls.name, len(ls.queue))
			}
		}
		for _, w := range ls.queue {
			if w.sh != sh {
				return fmt.Errorf("lockmgr: waiter of %s on %s carries wrong shard", w.tx, ls.name)
			}
			found := false
			for _, q := range sh.waiting[w.tx] {
				if q == w {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("lockmgr: waiter of %s on %s missing from waiting index", w.tx, ls.name)
			}
		}
	}
	indexed := 0
	for t, ws := range sh.waiting {
		if len(ws) == 0 {
			return fmt.Errorf("lockmgr: empty waiting-index entry for %s", t)
		}
		indexed += len(ws)
		if _, ok := sh.topWaiting[topOf(t)][t]; !ok {
			return fmt.Errorf("lockmgr: waiting transaction %s missing from top-level grouping", t)
		}
		top := topOf(t)
		if seenWaits[top] == nil {
			seenWaits[top] = make(map[int]int)
		}
		seenWaits[top][sh.id] += len(ws)
	}
	if queued != indexed {
		return fmt.Errorf("lockmgr: %d queued waiters but %d indexed", queued, indexed)
	}
	for top, s := range sh.topWaiting {
		if len(s) == 0 {
			return fmt.Errorf("lockmgr: empty top-level grouping for %s", top)
		}
		for t := range s {
			if len(sh.waiting[t]) == 0 {
				return fmt.Errorf("lockmgr: top-level grouping lists %s with no waiters", t)
			}
		}
	}
	return nil
}
