package lockmgr

import (
	"errors"
	"sync"
	"testing"
	"time"

	"nestedtx/internal/adt"
	"nestedtx/internal/core"
	"nestedtx/internal/event"
	"nestedtx/internal/tree"
)

func newMgr(t testing.TB) *Manager {
	t.Helper()
	m := New(nil, core.ReadWrite)
	if err := m.Register("X", adt.NewRegister(int64(0))); err != nil {
		t.Fatal(err)
	}
	if err := m.Register("Y", adt.NewRegister(int64(0))); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRegisterDuplicate(t *testing.T) {
	m := newMgr(t)
	if err := m.Register("X", adt.NewRegister(int64(0))); err == nil {
		t.Fatal("duplicate registration must fail")
	}
	if len(m.Objects()) != 2 {
		t.Fatal("objects")
	}
	if _, err := m.CurrentState("zzz"); err == nil {
		t.Fatal("unknown object must fail")
	}
}

func TestAcquireImmediate(t *testing.T) {
	m := newMgr(t)
	v, err := m.Acquire("T0.0", "T0.0.0", "X", adt.RegWrite{V: int64(5)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v != int64(5) {
		t.Fatalf("value %v", v)
	}
	// The same transaction reads its own write.
	v, err = m.Acquire("T0.0", "T0.0.1", "X", adt.RegRead{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v != int64(5) {
		t.Fatalf("read-own-write %v", v)
	}
	// An unrelated transaction is NOT blocked after commit.
	m.Commit("T0.0", int64(1))
	v, err = m.Acquire("T0.1", "T0.1.0", "X", adt.RegRead{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v != int64(5) {
		t.Fatalf("committed value %v", v)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBlockUntilCommit(t *testing.T) {
	m := newMgr(t)
	if _, err := m.Acquire("T0.0", "T0.0.0", "X", adt.RegWrite{V: int64(1)}, nil); err != nil {
		t.Fatal(err)
	}
	got := make(chan adt.Value, 1)
	go func() {
		v, err := m.Acquire("T0.1", "T0.1.0", "X", adt.RegRead{}, nil)
		if err != nil {
			got <- err.Error()
			return
		}
		got <- v
	}()
	select {
	case v := <-got:
		t.Fatalf("read should block while write lock held; got %v", v)
	case <-time.After(30 * time.Millisecond):
	}
	m.Commit("T0.0", int64(0))
	select {
	case v := <-got:
		if v != int64(1) {
			t.Fatalf("value %v, want 1", v)
		}
	case <-time.After(time.Second):
		t.Fatal("reader did not wake after commit")
	}
	if st := m.Stats(); st.Waits != 1 || st.Acquires != 2 {
		t.Fatalf("stats %+v", st)
	}
}

func TestAbortRestoresAndWakes(t *testing.T) {
	m := newMgr(t)
	if _, err := m.Acquire("T0.0", "T0.0.0", "X", adt.RegWrite{V: int64(9)}, nil); err != nil {
		t.Fatal(err)
	}
	got := make(chan adt.Value, 1)
	go func() {
		v, _ := m.Acquire("T0.1", "T0.1.0", "X", adt.RegRead{}, nil)
		got <- v
	}()
	time.Sleep(10 * time.Millisecond)
	m.Abort("T0.0")
	select {
	case v := <-got:
		if v != int64(0) {
			t.Fatalf("reader saw %v, want rolled-back 0", v)
		}
	case <-time.After(time.Second):
		t.Fatal("reader did not wake after abort")
	}
	s, _ := m.CurrentState("X")
	if s.(adt.Register).V != int64(0) {
		t.Fatal("state must roll back")
	}
}

func TestCancelUnblocks(t *testing.T) {
	m := newMgr(t)
	if _, err := m.Acquire("T0.0", "T0.0.0", "X", adt.RegWrite{V: int64(1)}, nil); err != nil {
		t.Fatal(err)
	}
	cancel := make(chan struct{})
	errCh := make(chan error, 1)
	go func() {
		_, err := m.Acquire("T0.1", "T0.1.0", "X", adt.RegWrite{V: int64(2)}, cancel)
		errCh <- err
	}()
	time.Sleep(10 * time.Millisecond)
	close(cancel)
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrCancelled) {
			t.Fatalf("err = %v, want ErrCancelled", err)
		}
	case <-time.After(time.Second):
		t.Fatal("cancel did not unblock")
	}
}

func TestSimpleDeadlockVictim(t *testing.T) {
	m := newMgr(t)
	if _, err := m.Acquire("T0.0", "T0.0.0", "X", adt.RegWrite{V: int64(1)}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Acquire("T0.1", "T0.1.0", "Y", adt.RegWrite{V: int64(1)}, nil); err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, 2)
	go func() {
		_, err := m.Acquire("T0.0", "T0.0.1", "Y", adt.RegWrite{V: int64(2)}, nil)
		errs <- err
	}()
	go func() {
		_, err := m.Acquire("T0.1", "T0.1.1", "X", adt.RegWrite{V: int64(2)}, nil)
		errs <- err
	}()
	var victim, ok int
	for i := 0; i < 2; i++ {
		select {
		case err := <-errs:
			if errors.Is(err, ErrDeadlock) {
				victim++
				// The victim's transaction aborts, releasing its locks.
				if victim == 1 {
					m.Abort("T0.1")
					m.Abort("T0.0") // harmless for the non-victim? No —
					// only abort the actual victim in real usage; here we
					// cannot know which, so this test aborts whichever is
					// safe: see below.
				}
			} else if err == nil {
				ok++
			} else {
				t.Fatalf("unexpected error %v", err)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("deadlock not resolved")
		}
	}
	if victim < 1 {
		t.Fatalf("deadlock victim expected (victims=%d ok=%d)", victim, ok)
	}
	if m.Stats().Deadlocks == 0 {
		t.Fatal("deadlock counter")
	}
}

// TestAncestryDeadlock reproduces the subtle case: locks held by
// *top-level* transactions (after inheritance) block each other's
// *subtransactions* — the cycle exists only when the graph includes
// structural parent→descendant edges.
func TestAncestryDeadlock(t *testing.T) {
	m := newMgr(t)
	// T0.0's child committed a write on X; the lock is inherited by T0.0.
	if _, err := m.Acquire("T0.0", "T0.0.0", "X", adt.RegWrite{V: int64(1)}, nil); err != nil {
		t.Fatal(err)
	}
	// T0.1's child committed a write on Y; inherited by T0.1.
	if _, err := m.Acquire("T0.1", "T0.1.0", "Y", adt.RegWrite{V: int64(1)}, nil); err != nil {
		t.Fatal(err)
	}
	// Now T0.0's *subtransaction* T0.0.1 wants Y, and T0.1's
	// subtransaction T0.1.1 wants X.
	errs := make(chan error, 2)
	go func() {
		_, err := m.Acquire("T0.0.1", "T0.0.1.0", "Y", adt.RegWrite{V: int64(2)}, nil)
		errs <- err
	}()
	go func() {
		_, err := m.Acquire("T0.1.1", "T0.1.1.0", "X", adt.RegWrite{V: int64(2)}, nil)
		errs <- err
	}()
	deadlocks := 0
	for i := 0; i < 2; i++ {
		select {
		case err := <-errs:
			if errors.Is(err, ErrDeadlock) {
				deadlocks++
				// Abort the victim subtransaction's top-level so the other
				// side can proceed.
				m.Abort("T0.0")
				m.Abort("T0.1")
			}
		case <-time.After(2 * time.Second):
			t.Fatal("ancestry deadlock not detected (graph missing structural edges)")
		}
	}
	if deadlocks < 1 {
		t.Fatal("expected a deadlock victim")
	}
}

// TestGrantCompletesCycle: a compatible read grant forms the last edge of
// a cycle without any new waiter registering.
func TestGrantCompletesCycle(t *testing.T) {
	m := newMgr(t)
	// C holds a read lock on X.
	if _, err := m.Acquire("T0.2", "T0.2.0", "X", adt.RegRead{}, nil); err != nil {
		t.Fatal(err)
	}
	// B waits for a write lock on X (blocked by C's read lock).
	bErr := make(chan error, 1)
	go func() {
		_, err := m.Acquire("T0.1", "T0.1.0", "X", adt.RegWrite{V: int64(1)}, nil)
		bErr <- err
	}()
	time.Sleep(10 * time.Millisecond)
	// B also holds a write lock on Y.
	// (Simulate via a sibling acquire for the same transaction T0.1 from
	// another goroutine — T0.1 is the holder.)
	if _, err := m.Acquire("T0.1", "T0.1.1", "Y", adt.RegWrite{V: int64(1)}, nil); err != nil {
		t.Fatal(err)
	}
	// C now waits for Y (blocked by B): edge C→B exists, B→C existed
	// since B's wait. The cycle completed at C's registration here, OR at
	// a later grant — both paths are exercised across this suite.
	cErr := make(chan error, 1)
	go func() {
		_, err := m.Acquire("T0.2", "T0.2.1", "Y", adt.RegWrite{V: int64(2)}, nil)
		cErr <- err
	}()
	gotVictim := false
	for i := 0; i < 2 && !gotVictim; i++ {
		select {
		case err := <-bErr:
			if errors.Is(err, ErrDeadlock) {
				gotVictim = true
			}
		case err := <-cErr:
			if errors.Is(err, ErrDeadlock) {
				gotVictim = true
			}
		case <-time.After(2 * time.Second):
			t.Fatal("cycle not detected")
		}
	}
	if !gotVictim {
		t.Fatal("no deadlock victim")
	}
}

func TestRecordingProducesLegalSchedule(t *testing.T) {
	rec := event.NewRecorder()
	m := New(rec, core.ReadWrite)
	if err := m.Register("X", adt.NewRegister(int64(0))); err != nil {
		t.Fatal(err)
	}
	rec.Record(event.Event{Kind: event.Create, T: tree.Root})
	rec.RecordAll(
		event.Event{Kind: event.RequestCreate, T: "T0.0"},
		event.Event{Kind: event.Create, T: "T0.0"},
	)
	rec.RecordAll(
		event.Event{Kind: event.RequestCreate, T: "T0.0.0"},
		event.Event{Kind: event.Create, T: "T0.0.0"},
	)
	if _, err := m.Acquire("T0.0", "T0.0.0", "X", adt.RegWrite{V: int64(3)}, nil); err != nil {
		t.Fatal(err)
	}
	rec.Record(event.Event{Kind: event.RequestCommit, T: "T0.0", Value: int64(1)})
	m.Commit("T0.0", int64(1))
	// The recorded schedule replays on the formal M(X) automaton.
	st := event.NewSystemType()
	st.DefineObject("X", adt.NewRegister(int64(0)))
	st.MustDefineAccess("T0.0.0", "X", adt.RegWrite{V: int64(3)})
	sched := rec.Snapshot()
	if err := event.WFConcurrent(sched, st); err != nil {
		t.Fatalf("recorded schedule ill-formed: %v\n%s", err, sched)
	}
	if _, err := core.Replay(st, "X", core.ReadWrite, sched.AtLockObject(st, "X")); err != nil {
		t.Fatalf("recorded schedule does not replay on M(X): %v\n%s", err, sched)
	}
}

func TestConcurrentStress(t *testing.T) {
	m := newMgr(t)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tx := tree.Root.Child(i + 10)
			for j := 0; j < 50; j++ {
				obj := "X"
				if j%2 == 0 {
					obj = "Y"
				}
				var op adt.Op = adt.RegRead{}
				if j%3 == 0 {
					op = adt.RegWrite{V: int64(j)}
				}
				if _, err := m.Acquire(tx, tx.Child(j), obj, op, nil); err != nil {
					if errors.Is(err, ErrDeadlock) {
						m.Abort(tx)
						return
					}
					t.Error(err)
					return
				}
			}
			if err := m.CheckInvariants(); err != nil {
				t.Error(err)
			}
			m.Commit(tx, int64(0))
		}(i)
	}
	wg.Wait()
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
