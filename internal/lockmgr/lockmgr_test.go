package lockmgr

import (
	"errors"
	"sync"
	"testing"
	"time"

	"nestedtx/internal/adt"
	"nestedtx/internal/core"
	"nestedtx/internal/event"
	"nestedtx/internal/tree"
)

func newMgr(t testing.TB) *Manager {
	t.Helper()
	m := New(nil, core.ReadWrite, nil)
	if err := m.Register("X", adt.NewRegister(int64(0))); err != nil {
		t.Fatal(err)
	}
	if err := m.Register("Y", adt.NewRegister(int64(0))); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRegisterDuplicate(t *testing.T) {
	m := newMgr(t)
	if err := m.Register("X", adt.NewRegister(int64(0))); err == nil {
		t.Fatal("duplicate registration must fail")
	}
	if len(m.Objects()) != 2 {
		t.Fatal("objects")
	}
	if _, err := m.CurrentState("zzz"); err == nil {
		t.Fatal("unknown object must fail")
	}
}

func TestAcquireImmediate(t *testing.T) {
	m := newMgr(t)
	v, err := m.Acquire("T0.0", "T0.0.0", "X", adt.RegWrite{V: int64(5)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v != int64(5) {
		t.Fatalf("value %v", v)
	}
	// The same transaction reads its own write.
	v, err = m.Acquire("T0.0", "T0.0.1", "X", adt.RegRead{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v != int64(5) {
		t.Fatalf("read-own-write %v", v)
	}
	// An unrelated transaction is NOT blocked after commit.
	m.Commit("T0.0", int64(1))
	v, err = m.Acquire("T0.1", "T0.1.0", "X", adt.RegRead{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v != int64(5) {
		t.Fatalf("committed value %v", v)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBlockUntilCommit(t *testing.T) {
	m := newMgr(t)
	if _, err := m.Acquire("T0.0", "T0.0.0", "X", adt.RegWrite{V: int64(1)}, nil); err != nil {
		t.Fatal(err)
	}
	got := make(chan adt.Value, 1)
	go func() {
		v, err := m.Acquire("T0.1", "T0.1.0", "X", adt.RegRead{}, nil)
		if err != nil {
			got <- err.Error()
			return
		}
		got <- v
	}()
	select {
	case v := <-got:
		t.Fatalf("read should block while write lock held; got %v", v)
	case <-time.After(30 * time.Millisecond):
	}
	m.Commit("T0.0", int64(0))
	select {
	case v := <-got:
		if v != int64(1) {
			t.Fatalf("value %v, want 1", v)
		}
	case <-time.After(time.Second):
		t.Fatal("reader did not wake after commit")
	}
	if st := m.Stats(); st.Waits != 1 || st.Acquires != 2 {
		t.Fatalf("stats %+v", st)
	}
}

func TestAbortRestoresAndWakes(t *testing.T) {
	m := newMgr(t)
	if _, err := m.Acquire("T0.0", "T0.0.0", "X", adt.RegWrite{V: int64(9)}, nil); err != nil {
		t.Fatal(err)
	}
	got := make(chan adt.Value, 1)
	go func() {
		v, _ := m.Acquire("T0.1", "T0.1.0", "X", adt.RegRead{}, nil)
		got <- v
	}()
	time.Sleep(10 * time.Millisecond)
	m.Abort("T0.0")
	select {
	case v := <-got:
		if v != int64(0) {
			t.Fatalf("reader saw %v, want rolled-back 0", v)
		}
	case <-time.After(time.Second):
		t.Fatal("reader did not wake after abort")
	}
	s, _ := m.CurrentState("X")
	if s.(adt.Register).V != int64(0) {
		t.Fatal("state must roll back")
	}
}

func TestCancelUnblocks(t *testing.T) {
	m := newMgr(t)
	if _, err := m.Acquire("T0.0", "T0.0.0", "X", adt.RegWrite{V: int64(1)}, nil); err != nil {
		t.Fatal(err)
	}
	cancel := make(chan struct{})
	errCh := make(chan error, 1)
	go func() {
		_, err := m.Acquire("T0.1", "T0.1.0", "X", adt.RegWrite{V: int64(2)}, cancel)
		errCh <- err
	}()
	time.Sleep(10 * time.Millisecond)
	close(cancel)
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrCancelled) {
			t.Fatalf("err = %v, want ErrCancelled", err)
		}
	case <-time.After(time.Second):
		t.Fatal("cancel did not unblock")
	}
}

func TestSimpleDeadlockVictim(t *testing.T) {
	m := newMgr(t)
	if _, err := m.Acquire("T0.0", "T0.0.0", "X", adt.RegWrite{V: int64(1)}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Acquire("T0.1", "T0.1.0", "Y", adt.RegWrite{V: int64(1)}, nil); err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, 2)
	go func() {
		_, err := m.Acquire("T0.0", "T0.0.1", "Y", adt.RegWrite{V: int64(2)}, nil)
		errs <- err
	}()
	go func() {
		_, err := m.Acquire("T0.1", "T0.1.1", "X", adt.RegWrite{V: int64(2)}, nil)
		errs <- err
	}()
	var victim, ok int
	for i := 0; i < 2; i++ {
		select {
		case err := <-errs:
			if errors.Is(err, ErrDeadlock) {
				victim++
				// The victim's transaction aborts, releasing its locks.
				if victim == 1 {
					m.Abort("T0.1")
					m.Abort("T0.0") // harmless for the non-victim? No —
					// only abort the actual victim in real usage; here we
					// cannot know which, so this test aborts whichever is
					// safe: see below.
				}
			} else if err == nil {
				ok++
			} else {
				t.Fatalf("unexpected error %v", err)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("deadlock not resolved")
		}
	}
	if victim < 1 {
		t.Fatalf("deadlock victim expected (victims=%d ok=%d)", victim, ok)
	}
	if m.Stats().Deadlocks == 0 {
		t.Fatal("deadlock counter")
	}
}

// TestAncestryDeadlock reproduces the subtle case: locks held by
// *top-level* transactions (after inheritance) block each other's
// *subtransactions* — the cycle exists only when the graph includes
// structural parent→descendant edges.
func TestAncestryDeadlock(t *testing.T) {
	m := newMgr(t)
	// T0.0's child committed a write on X; the lock is inherited by T0.0.
	if _, err := m.Acquire("T0.0", "T0.0.0", "X", adt.RegWrite{V: int64(1)}, nil); err != nil {
		t.Fatal(err)
	}
	// T0.1's child committed a write on Y; inherited by T0.1.
	if _, err := m.Acquire("T0.1", "T0.1.0", "Y", adt.RegWrite{V: int64(1)}, nil); err != nil {
		t.Fatal(err)
	}
	// Now T0.0's *subtransaction* T0.0.1 wants Y, and T0.1's
	// subtransaction T0.1.1 wants X.
	errs := make(chan error, 2)
	go func() {
		_, err := m.Acquire("T0.0.1", "T0.0.1.0", "Y", adt.RegWrite{V: int64(2)}, nil)
		errs <- err
	}()
	go func() {
		_, err := m.Acquire("T0.1.1", "T0.1.1.0", "X", adt.RegWrite{V: int64(2)}, nil)
		errs <- err
	}()
	deadlocks := 0
	for i := 0; i < 2; i++ {
		select {
		case err := <-errs:
			if errors.Is(err, ErrDeadlock) {
				deadlocks++
				// Abort the victim subtransaction's top-level so the other
				// side can proceed.
				m.Abort("T0.0")
				m.Abort("T0.1")
			}
		case <-time.After(2 * time.Second):
			t.Fatal("ancestry deadlock not detected (graph missing structural edges)")
		}
	}
	if deadlocks < 1 {
		t.Fatal("expected a deadlock victim")
	}
}

// TestGrantCompletesCycle: a compatible read grant forms the last edge of
// a cycle without any new waiter registering.
func TestGrantCompletesCycle(t *testing.T) {
	m := newMgr(t)
	// C holds a read lock on X.
	if _, err := m.Acquire("T0.2", "T0.2.0", "X", adt.RegRead{}, nil); err != nil {
		t.Fatal(err)
	}
	// B waits for a write lock on X (blocked by C's read lock).
	bErr := make(chan error, 1)
	go func() {
		_, err := m.Acquire("T0.1", "T0.1.0", "X", adt.RegWrite{V: int64(1)}, nil)
		bErr <- err
	}()
	time.Sleep(10 * time.Millisecond)
	// B also holds a write lock on Y.
	// (Simulate via a sibling acquire for the same transaction T0.1 from
	// another goroutine — T0.1 is the holder.)
	if _, err := m.Acquire("T0.1", "T0.1.1", "Y", adt.RegWrite{V: int64(1)}, nil); err != nil {
		t.Fatal(err)
	}
	// C now waits for Y (blocked by B): edge C→B exists, B→C existed
	// since B's wait. The cycle completed at C's registration here, OR at
	// a later grant — both paths are exercised across this suite.
	cErr := make(chan error, 1)
	go func() {
		_, err := m.Acquire("T0.2", "T0.2.1", "Y", adt.RegWrite{V: int64(2)}, nil)
		cErr <- err
	}()
	gotVictim := false
	for i := 0; i < 2 && !gotVictim; i++ {
		select {
		case err := <-bErr:
			if errors.Is(err, ErrDeadlock) {
				gotVictim = true
			}
		case err := <-cErr:
			if errors.Is(err, ErrDeadlock) {
				gotVictim = true
			}
		case <-time.After(2 * time.Second):
			t.Fatal("cycle not detected")
		}
	}
	if !gotVictim {
		t.Fatal("no deadlock victim")
	}
}

// TestVictimTieBreakNumeric pins the "latest sibling" victim choice: in a
// level-tied cycle between T0.9 and T0.10 the victim must be T0.10. A
// lexicographic tie-break gets this backwards ("T0.9" > "T0.10" as
// strings), so this test fails against string comparison.
func TestVictimTieBreakNumeric(t *testing.T) {
	m := New(nil, core.ReadWrite, nil)
	for _, x := range []string{"X", "Y"} {
		if err := m.Register(x, adt.NewRegister(int64(0))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Acquire("T0.9", "T0.9.0", "X", adt.RegWrite{V: int64(1)}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Acquire("T0.10", "T0.10.0", "Y", adt.RegWrite{V: int64(1)}, nil); err != nil {
		t.Fatal(err)
	}
	type res struct {
		tx  tree.TID
		err error
	}
	results := make(chan res, 2)
	go func() {
		_, err := m.Acquire("T0.9", "T0.9.1", "Y", adt.RegWrite{V: int64(2)}, nil)
		results <- res{"T0.9", err}
	}()
	time.Sleep(10 * time.Millisecond)
	go func() {
		_, err := m.Acquire("T0.10", "T0.10.1", "X", adt.RegWrite{V: int64(2)}, nil)
		results <- res{"T0.10", err}
	}()
	// Exactly one side is the victim, and it must be T0.10 (the latest
	// sibling under numeric path order).
	var victims, grants []tree.TID
	for i := 0; i < 2; i++ {
		select {
		case r := <-results:
			if errors.Is(r.err, ErrDeadlock) {
				victims = append(victims, r.tx)
				m.Abort(r.tx) // release the victim's locks so the other side proceeds
			} else if r.err == nil {
				grants = append(grants, r.tx)
			} else {
				t.Fatalf("%s: unexpected error %v", r.tx, r.err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("deadlock not resolved (victims=%v grants=%v)", victims, grants)
		}
	}
	if len(victims) != 1 || victims[0] != "T0.10" {
		t.Fatalf("victim = %v, want [T0.10]", victims)
	}
}

// TestCancelVictimRace pins the Acquire contract when a deadlock-victim
// choice races an external cancel: the victim outcome — already counted
// in Stats.Deadlocks — must win, so retry loops keyed on ErrDeadlock
// observe it. The victim's wake channel and the cancel channel are both
// ready when the waiter's select runs; either branch must report
// ErrDeadlock.
func TestCancelVictimRace(t *testing.T) {
	// The select between wake and cancel picks pseudo-randomly when both
	// are ready; iterate so each branch is exercised with overwhelming
	// probability.
	for iter := 0; iter < 25; iter++ {
		m := newMgr(t)
		// T0.2 read-holds X; T0.5 write-holds Y.
		if _, err := m.Acquire("T0.2", "T0.2.0", "X", adt.RegRead{}, nil); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Acquire("T0.5", "T0.5.0", "Y", adt.RegWrite{V: int64(1)}, nil); err != nil {
			t.Fatal(err)
		}
		// T0.5 blocks writing X (conflicts with T0.2's read lock).
		cancel := make(chan struct{})
		errCh := make(chan error, 1)
		go func() {
			_, err := m.Acquire("T0.5", "T0.5.1", "X", adt.RegWrite{V: int64(2)}, cancel)
			errCh <- err
		}()
		time.Sleep(5 * time.Millisecond)
		// T0.2 requesting Y completes the cycle; the victim (deepest,
		// latest sibling: T0.5) is chosen while its waiter sleeps.
		otherErr := make(chan error, 1)
		go func() {
			_, err := m.Acquire("T0.2", "T0.2.1", "Y", adt.RegWrite{V: int64(3)}, nil)
			otherErr <- err
		}()
		deadline := time.Now().Add(5 * time.Second)
		for m.Stats().Deadlocks == 0 {
			if time.Now().After(deadline) {
				t.Fatal("victim never chosen")
			}
			time.Sleep(100 * time.Microsecond)
		}
		// The waiter is a chosen victim; now the cancel also fires. Both
		// select branches are ready — the result must still be the
		// deadlock, not ErrCancelled.
		close(cancel)
		select {
		case err := <-errCh:
			if !errors.Is(err, ErrDeadlock) {
				t.Fatalf("iter %d: victim+cancel returned %v, want ErrDeadlock", iter, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("victim waiter did not return")
		}
		// Clean up: abort the victim so T0.2's pending acquire completes.
		m.Abort("T0.5")
		select {
		case err := <-otherErr:
			if err != nil && !errors.Is(err, ErrDeadlock) {
				t.Fatalf("survivor error %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("survivor did not proceed after victim abort")
		}
		if err := m.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestTargetedWakeupStats pins the wakeup discipline: a commit wakes only
// the waiters queued on objects whose lock tables it changed — a commit
// on an unrelated object disturbs nobody — and the new Stats counters
// observe it.
func TestTargetedWakeupStats(t *testing.T) {
	m := newMgr(t)
	if _, err := m.Acquire("T0.0", "T0.0.0", "X", adt.RegWrite{V: int64(1)}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Acquire("T0.1", "T0.1.0", "Y", adt.RegWrite{V: int64(1)}, nil); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() {
		_, err := m.Acquire("T0.2", "T0.2.0", "X", adt.RegRead{}, nil)
		got <- err
	}()
	time.Sleep(10 * time.Millisecond)
	if d := m.Stats().MaxQueueDepth; d != 1 {
		t.Fatalf("MaxQueueDepth = %d, want 1", d)
	}
	// Committing T0.1 changes only Y's lock table: the waiter on X must
	// not be woken.
	m.Commit("T0.1", int64(0))
	select {
	case err := <-got:
		t.Fatalf("waiter on X woke after unrelated commit on Y (err=%v)", err)
	case <-time.After(30 * time.Millisecond):
	}
	if w := m.Stats().Wakeups; w != 0 {
		t.Fatalf("Wakeups = %d after unrelated commit, want 0", w)
	}
	// Committing T0.0 releases X: exactly one targeted wakeup, and the
	// woken waiter is admitted (no spurious re-block).
	m.Commit("T0.0", int64(0))
	select {
	case err := <-got:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("waiter on X did not wake after commit on X")
	}
	st := m.Stats()
	if st.Wakeups != 1 {
		t.Fatalf("Wakeups = %d, want 1", st.Wakeups)
	}
	if st.SpuriousWakeups != 0 {
		t.Fatalf("SpuriousWakeups = %d, want 0", st.SpuriousWakeups)
	}
	m.Commit("T0.2", int64(0))
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestHeldIndexTracksInheritance walks a lock through a commit chain and
// an abort and checks (via CheckInvariants' index⇄table cross-check) that
// the held-locks index follows the lock at every step.
func TestHeldIndexTracksInheritance(t *testing.T) {
	m := newMgr(t)
	check := func(step string) {
		t.Helper()
		if err := m.CheckInvariants(); err != nil {
			t.Fatalf("%s: %v", step, err)
		}
	}
	if _, err := m.Acquire("T0.0.0", "T0.0.0.0", "X", adt.RegWrite{V: int64(7)}, nil); err != nil {
		t.Fatal(err)
	}
	check("after grant to T0.0.0")
	m.Commit("T0.0.0", int64(0)) // lock inherited by T0.0
	check("after commit of T0.0.0")
	if _, err := m.Acquire("T0.0.1", "T0.0.1.0", "Y", adt.RegRead{}, nil); err != nil {
		t.Fatal(err)
	}
	check("after read grant to T0.0.1")
	m.Abort("T0.0") // discards the whole subtree's locks and index entries
	check("after abort of T0.0")
	// Everything is released: an unrelated writer proceeds immediately and
	// sees the rolled-back state.
	v, err := m.Acquire("T0.1", "T0.1.0", "X", adt.RegRead{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v != int64(0) {
		t.Fatalf("X = %v after abort, want rolled-back 0", v)
	}
	if st := m.Stats(); st.Waits != 0 {
		t.Fatalf("Waits = %d, want 0 (nothing should have blocked)", st.Waits)
	}
}

func TestRecordingProducesLegalSchedule(t *testing.T) {
	rec := event.NewRecorder()
	m := New(rec, core.ReadWrite, nil)
	if err := m.Register("X", adt.NewRegister(int64(0))); err != nil {
		t.Fatal(err)
	}
	rec.Record(event.Event{Kind: event.Create, T: tree.Root})
	rec.RecordAll(
		event.Event{Kind: event.RequestCreate, T: "T0.0"},
		event.Event{Kind: event.Create, T: "T0.0"},
	)
	rec.RecordAll(
		event.Event{Kind: event.RequestCreate, T: "T0.0.0"},
		event.Event{Kind: event.Create, T: "T0.0.0"},
	)
	if _, err := m.Acquire("T0.0", "T0.0.0", "X", adt.RegWrite{V: int64(3)}, nil); err != nil {
		t.Fatal(err)
	}
	rec.Record(event.Event{Kind: event.RequestCommit, T: "T0.0", Value: int64(1)})
	m.Commit("T0.0", int64(1))
	// The recorded schedule replays on the formal M(X) automaton.
	st := event.NewSystemType()
	st.DefineObject("X", adt.NewRegister(int64(0)))
	st.MustDefineAccess("T0.0.0", "X", adt.RegWrite{V: int64(3)})
	sched := rec.Snapshot()
	if err := event.WFConcurrent(sched, st); err != nil {
		t.Fatalf("recorded schedule ill-formed: %v\n%s", err, sched)
	}
	if _, err := core.Replay(st, "X", core.ReadWrite, sched.AtLockObject(st, "X")); err != nil {
		t.Fatalf("recorded schedule does not replay on M(X): %v\n%s", err, sched)
	}
}

func TestConcurrentStress(t *testing.T) {
	m := newMgr(t)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tx := tree.Root.Child(i + 10)
			for j := 0; j < 50; j++ {
				obj := "X"
				if j%2 == 0 {
					obj = "Y"
				}
				var op adt.Op = adt.RegRead{}
				if j%3 == 0 {
					op = adt.RegWrite{V: int64(j)}
				}
				if _, err := m.Acquire(tx, tx.Child(j), obj, op, nil); err != nil {
					if errors.Is(err, ErrDeadlock) {
						m.Abort(tx)
						return
					}
					t.Error(err)
					return
				}
			}
			if err := m.CheckInvariants(); err != nil {
				t.Error(err)
			}
			m.Commit(tx, int64(0))
		}(i)
	}
	wg.Wait()
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
