// Package lockmgr is the production engine behind the nestedtx runtime: a
// blocking implementation of Moss' read/write locking for nested
// transactions (the algorithm of §5.1), with version management for abort
// recovery and wait-for-graph deadlock detection.
//
// Where internal/core models M(X) as an I/O automaton whose responses are
// chosen by a driver, this package services real goroutines: an Acquire
// blocks until every holder of a conflicting lock is an ancestor of the
// requesting access, or until the caller is cancelled or chosen as a
// deadlock victim.
//
// Per-transaction cost tracks the transaction's footprint, not the size
// of the registered universe: a held-locks index (TID → locked objects)
// lets Commit and Abort visit only the objects the transaction actually
// locked, and waiters queue on the object they are blocked on, so a
// commit or abort wakes only the waiters whose lock tables it changed.
//
// All lock-table transitions happen under one manager mutex and are
// recorded in the formal event vocabulary, so the schedule of a live run
// can be machine-checked against Theorem 34 by internal/checker.
package lockmgr

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"nestedtx/internal/adt"
	"nestedtx/internal/core"
	"nestedtx/internal/event"
	"nestedtx/internal/obs"
	"nestedtx/internal/tree"
)

// ErrDeadlock is returned by Acquire when the caller was chosen as the
// victim of a deadlock cycle. The enclosing transaction should abort (the
// nestedtx runtime does this automatically and may retry).
var ErrDeadlock = errors.New("lockmgr: deadlock victim")

// ErrCancelled is returned by Acquire when the caller's cancel channel
// closed while waiting.
var ErrCancelled = errors.New("lockmgr: acquire cancelled")

// Stats counts manager activity. Read a consistent copy via
// Manager.Stats.
type Stats struct {
	Acquires      uint64 // granted lock acquisitions
	Waits         uint64 // acquisitions that blocked at least once
	Deadlocks     uint64 // deadlock cycles broken
	CommitMoves   uint64 // lock inheritances on commit
	AbortReleases uint64 // lock discards on abort

	Wakeups         uint64 // waiter wakeups issued by commits/aborts
	SpuriousWakeups uint64 // wakeups after which the waiter was still blocked
	MaxQueueDepth   uint64 // high-water mark of any per-object wait queue
}

// Manager owns the lock tables and version maps of every registered object
// and the wait queues of every blocked acquisition.
type Manager struct {
	mode core.Mode
	rec  *event.Recorder
	met  *obs.Metrics // nil disables observability

	mu      sync.Mutex
	objects map[string]*lockState
	// held is the held-locks index: for every transaction holding at
	// least one lock, the set of objects it holds a (read or write) lock
	// on. Commit and Abort walk this index instead of the whole universe.
	held map[tree.TID]map[*lockState]struct{}
	// contended is the set of objects with a non-empty wait queue, so
	// invariant checks walk only the queues that exist.
	contended map[*lockState]struct{}
	// waiting indexes the queued waiters by their transaction, for
	// demand-driven wait-for-graph exploration and victim selection.
	waiting map[tree.TID][]*waiter
	// topWaiting groups the waiting transactions by their top-level
	// ancestor. Structural wait-for edges (ancestor → waiting descendant)
	// never cross a top-level boundary, so successor enumeration scans
	// only the waiting transactions of one tree.
	topWaiting map[tree.TID]map[tree.TID]struct{}
	stats      Stats
}

// lockState is the M(X) state for one object: the two lock tables, the
// version map (defined exactly on the write-lockholders), and the queue
// of acquisitions blocked on this object.
type lockState struct {
	name     string
	read     tree.Set
	write    tree.Set
	versions map[tree.TID]adt.State
	queue    []*waiter
}

type waiter struct {
	tx     tree.TID // the live transaction performing the access
	access tree.TID
	ls     *lockState // the object the waiter is queued on
	write  bool       // whether the access needs a write lock
	wake   chan struct{}
	victim bool
}

// New returns a Manager recording to rec (nil disables recording) with the
// given lock classification mode. met, when non-nil, receives lock-wait
// latencies, victim counts by cause, and queue-depth gauges.
func New(rec *event.Recorder, mode core.Mode, met *obs.Metrics) *Manager {
	return &Manager{
		mode:       mode,
		rec:        rec,
		met:        met,
		objects:    make(map[string]*lockState),
		held:       make(map[tree.TID]map[*lockState]struct{}),
		contended:  make(map[*lockState]struct{}),
		waiting:    make(map[tree.TID][]*waiter),
		topWaiting: make(map[tree.TID]map[tree.TID]struct{}),
	}
}

// Register declares object x with initial state init; the root holds the
// initial write lock, exactly as in M(X)'s initial state.
func (m *Manager) Register(x string, init adt.State) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.objects[x]; dup {
		return fmt.Errorf("lockmgr: object %q already registered", x)
	}
	ls := &lockState{
		name:     x,
		read:     tree.NewSet(),
		write:    tree.NewSet(tree.Root),
		versions: map[tree.TID]adt.State{tree.Root: init},
	}
	m.objects[x] = ls
	m.indexAddLocked(tree.Root, ls)
	return nil
}

// Stats returns a copy of the counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// Objects returns the registered object names.
func (m *Manager) Objects() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.objects))
	for x := range m.objects {
		out = append(out, x)
	}
	return out
}

// CurrentState returns the current (least write-lockholder) state of x,
// for inspection after a run.
func (m *Manager) CurrentState(x string) (adt.State, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ls, ok := m.objects[x]
	if !ok {
		return nil, fmt.Errorf("lockmgr: object %q not registered", x)
	}
	return ls.current(), nil
}

// Registered reports whether object x has been registered.
func (m *Manager) Registered(x string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.objects[x]
	return ok
}

// RootStates returns the committed-to-root state of every registered
// object — the root's version, excluding every version still held by a
// live transaction. This is the durable snapshot a checkpoint persists:
// with the WAL's commit gate held, it equals the redo of all logged
// records.
func (m *Manager) RootStates() map[string]adt.State {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]adt.State, len(m.objects))
	for x, ls := range m.objects {
		v, ok := ls.versions[tree.Root]
		if !ok {
			panic("lockmgr: root version lost for " + x)
		}
		out[x] = v
	}
	return out
}

func (ls *lockState) current() adt.State {
	least, ok := ls.write.Least()
	if !ok {
		panic("lockmgr: no write-lockholders (root lock lost)")
	}
	return ls.versions[least]
}

// isWrite reports whether op takes a write lock under the manager's mode.
func (m *Manager) isWrite(op adt.Op) bool {
	return m.mode == core.Exclusive || !op.ReadOnly()
}

// blocked returns a conflicting lockholder that is not an ancestor of t,
// or "" when the acquisition can proceed.
func (ls *lockState) blocked(t tree.TID, write bool) (tree.TID, bool) {
	for u := range ls.write {
		if !u.IsAncestorOf(t) {
			return u, true
		}
	}
	if write {
		for u := range ls.read {
			if !u.IsAncestorOf(t) {
				return u, true
			}
		}
	}
	return "", false
}

// ---- held-locks index ----

// indexAddLocked records that t holds a lock on ls. Caller holds m.mu.
func (m *Manager) indexAddLocked(t tree.TID, ls *lockState) {
	s := m.held[t]
	if s == nil {
		s = make(map[*lockState]struct{})
		m.held[t] = s
	}
	s[ls] = struct{}{}
}

// ---- wait queues ----

// enqueueLocked appends w to its object's wait queue and the per-tx
// waiting index. Caller holds m.mu.
func (m *Manager) enqueueLocked(w *waiter) {
	ls := w.ls
	ls.queue = append(ls.queue, w)
	if len(ls.queue) == 1 {
		m.met.AddContended(1)
	}
	m.met.AddQueued(1)
	m.contended[ls] = struct{}{}
	if len(m.waiting[w.tx]) == 0 {
		top := tree.Root.ChildToward(w.tx)
		s := m.topWaiting[top]
		if s == nil {
			s = make(map[tree.TID]struct{})
			m.topWaiting[top] = s
		}
		s[w.tx] = struct{}{}
	}
	m.waiting[w.tx] = append(m.waiting[w.tx], w)
	if d := uint64(len(ls.queue)); d > m.stats.MaxQueueDepth {
		m.stats.MaxQueueDepth = d
	}
}

// dequeueLocked removes w from its object's wait queue if still present,
// and from the waiting index. Caller holds m.mu.
func (m *Manager) dequeueLocked(w *waiter) {
	ls := w.ls
	for i, q := range ls.queue {
		if q == w {
			ls.queue = append(ls.queue[:i], ls.queue[i+1:]...)
			m.met.AddQueued(-1)
			if len(ls.queue) == 0 {
				m.met.AddContended(-1)
			}
			break
		}
	}
	if len(ls.queue) == 0 {
		delete(m.contended, ls)
	}
	m.unindexWaiterLocked(w)
}

// unindexWaiterLocked drops w from the per-tx waiting index. Caller holds
// m.mu.
func (m *Manager) unindexWaiterLocked(w *waiter) {
	ws := m.waiting[w.tx]
	for i, q := range ws {
		if q == w {
			ws = append(ws[:i], ws[i+1:]...)
			break
		}
	}
	if len(ws) == 0 {
		delete(m.waiting, w.tx)
		top := tree.Root.ChildToward(w.tx)
		if s := m.topWaiting[top]; s != nil {
			delete(s, w.tx)
			if len(s) == 0 {
				delete(m.topWaiting, top)
			}
		}
	} else {
		m.waiting[w.tx] = ws
	}
}

// wakeQueuedLocked wakes every waiter queued on ls — the targeted wakeup
// issued when ls's lock tables changed. Woken waiters rescan and requeue
// if still blocked. Caller holds m.mu.
func (m *Manager) wakeQueuedLocked(ls *lockState) {
	for _, w := range ls.queue {
		close(w.wake)
		m.stats.Wakeups++
		m.unindexWaiterLocked(w)
	}
	if n := len(ls.queue); n > 0 {
		m.met.AddQueued(-int64(n))
		m.met.AddContended(-1)
	}
	ls.queue = nil
	delete(m.contended, ls)
}

// Acquire runs access `access` (a child of live transaction tx) applying
// op to object x, blocking until the Moss locking rule admits it. On
// success it returns the operation's value; the lock ends up held by tx
// (the access is granted its lock, commits, and the lock passes to its
// parent — the corresponding five formal events are recorded atomically).
//
// cancel, when closed, unblocks the wait with ErrCancelled (used when the
// enclosing transaction is aborted externally). ErrDeadlock is returned
// when the wait was chosen as a deadlock victim, even when the victim
// choice races an external cancel — the deadlock outcome wins, so retry
// loops keyed on ErrDeadlock observe it.
func (m *Manager) Acquire(tx, access tree.TID, x string, op adt.Op, cancel <-chan struct{}) (adt.Value, error) {
	write := m.isWrite(op)
	waited := false
	var waitStart time.Time // set when the acquisition first blocks
	m.mu.Lock()
	for {
		ls, ok := m.objects[x]
		if !ok {
			m.mu.Unlock()
			return nil, fmt.Errorf("lockmgr: object %q not registered", x)
		}
		if _, isBlocked := ls.blocked(access, write); !isBlocked {
			v := m.grantLocked(ls, tx, access, op, write)
			m.stats.Acquires++
			if waited {
				m.stats.Waits++
				d := time.Since(waitStart)
				m.met.ObserveLockWait(d)
				m.met.Trace(obs.KindLockAcquire, string(tx), x, d)
			}
			// A grant can complete a wait-for cycle (a newly compatible
			// read lock blocks an older write waiter) without any new
			// waiter registering, so detection must run here too. Every
			// edge the grant adds sources from a waiter already queued on
			// this object, so those transactions are the only roots a new
			// cycle can be found from.
			if len(ls.queue) > 0 {
				starts := make([]tree.TID, 0, len(ls.queue))
				for _, qw := range ls.queue {
					starts = append(starts, qw.tx)
				}
				m.breakCyclesLocked(starts)
			}
			m.mu.Unlock()
			return v, nil
		}
		if waited {
			// Woken by a commit/abort on this object but still blocked.
			m.stats.SpuriousWakeups++
		}
		// Conflicting lock held by a non-ancestor: wait for the holder's
		// chain to commit (lock inheritance) or abort (lock release).
		if !waited {
			waitStart = time.Now()
			m.met.Trace(obs.KindLockWait, string(tx), x, 0)
		}
		w := &waiter{tx: tx, access: access, ls: ls, write: write, wake: make(chan struct{})}
		m.enqueueLocked(w)
		// Every edge this wait adds either sources from tx (lock edges) or
		// targets tx (structural edges from its ancestors), so any cycle
		// completed by the registration is reachable from tx.
		m.breakCyclesLocked([]tree.TID{tx})
		if w.victim {
			// breakCyclesLocked already dequeued w.
			m.victimExitLocked(waitStart, true)
			m.mu.Unlock()
			return nil, ErrDeadlock
		}
		m.mu.Unlock()
		waited = true
		select {
		case <-w.wake:
			m.mu.Lock()
			if w.victim {
				m.victimExitLocked(waitStart, true)
				m.mu.Unlock()
				return nil, ErrDeadlock
			}
			// The waker dequeued w; loop and rescan.
		case <-cancel:
			m.mu.Lock()
			if w.victim {
				// Deadlock victim chosen concurrently with the cancel: the
				// victim outcome is already counted in stats.Deadlocks and
				// must be reported so the caller's retry logic sees it.
				m.victimExitLocked(waitStart, true)
				m.mu.Unlock()
				return nil, ErrDeadlock
			}
			m.dequeueLocked(w)
			m.victimExitLocked(waitStart, false)
			m.mu.Unlock()
			return nil, ErrCancelled
		}
	}
}

// victimExitLocked records the metrics of a wait that ended without a
// grant: the wait duration and the victim cause (deadlock vs external
// cancellation). Every blocked acquisition therefore lands in the
// lock-wait histogram exactly once — granted, victimised, or cancelled —
// so LockWait.Count reconciles with Waits + victims-by-cause. Caller
// holds m.mu.
func (m *Manager) victimExitLocked(waitStart time.Time, deadlock bool) {
	m.met.ObserveLockWait(time.Since(waitStart))
	if deadlock {
		m.met.VictimDeadlock()
	} else {
		m.met.VictimCancelled()
	}
}

// grantLocked applies op, grants the access its lock, and immediately
// commits the access so the lock is inherited by tx. Caller holds m.mu.
func (m *Manager) grantLocked(ls *lockState, tx, access tree.TID, op adt.Op, write bool) adt.Value {
	next, v := op.Apply(ls.current())
	if write {
		ls.write.Add(tx)
		ls.versions[tx] = next
	} else {
		ls.read.Add(tx)
	}
	m.indexAddLocked(tx, ls)
	m.rec.RecordAll(
		event.Event{Kind: event.RequestCommit, T: access, Value: v},
		event.Event{Kind: event.Commit, T: access},
		event.Event{Kind: event.InformCommitAt, T: access, Object: ls.name},
		event.Event{Kind: event.ReportCommit, T: access, Value: v},
	)
	return v
}

// Commit moves every lock held by t up to parent(t) (with its version, for
// write locks), recording COMMIT(t) and the INFORM_COMMIT events, then
// wakes the waiters queued on the objects whose lock tables changed. It
// visits only the objects in t's held-locks index — cost is proportional
// to the transaction's footprint, not the registered universe. It must be
// called exactly once per committing transaction, after all of t's
// children have returned.
func (m *Manager) Commit(t tree.TID, value event.Value) {
	p := t.Parent()
	m.mu.Lock()
	m.rec.Record(event.Event{Kind: event.Commit, T: t})
	for ls := range m.held[t] {
		touched := false
		if ls.write.Has(t) {
			ls.write.Remove(t)
			ls.write.Add(p)
			ls.versions[p] = ls.versions[t]
			delete(ls.versions, t)
			touched = true
		}
		if ls.read.Has(t) {
			ls.read.Remove(t)
			ls.read.Add(p)
			touched = true
		}
		if touched {
			m.indexAddLocked(p, ls)
			m.stats.CommitMoves++
			m.rec.Record(event.Event{Kind: event.InformCommitAt, T: t, Object: ls.name})
			m.wakeQueuedLocked(ls)
		}
	}
	delete(m.held, t)
	m.rec.Record(event.Event{Kind: event.ReportCommit, T: t, Value: value})
	m.mu.Unlock()
}

// Abort discards every lock and version held by t or its descendants,
// recording ABORT(t) and the INFORM_ABORT events, then wakes the waiters
// queued on the objects whose lock tables changed. The affected objects
// are found through the held-locks index of t's descendants, so cost is
// proportional to the aborted subtree's footprint.
func (m *Manager) Abort(t tree.TID) {
	m.mu.Lock()
	m.rec.Record(event.Event{Kind: event.Abort, T: t})
	affected := make(map[*lockState]struct{})
	for u, objs := range m.held {
		if u.IsDescendantOf(t) {
			for ls := range objs {
				affected[ls] = struct{}{}
			}
			delete(m.held, u)
		}
	}
	for ls := range affected {
		touched := false
		for u := range ls.write {
			if u.IsDescendantOf(t) {
				ls.write.Remove(u)
				delete(ls.versions, u)
				touched = true
			}
		}
		for u := range ls.read {
			if u.IsDescendantOf(t) {
				ls.read.Remove(u)
				touched = true
			}
		}
		if touched {
			m.stats.AbortReleases++
			m.rec.Record(event.Event{Kind: event.InformAbortAt, T: t, Object: ls.name})
			m.wakeQueuedLocked(ls)
		}
	}
	m.rec.Record(event.Event{Kind: event.ReportAbort, T: t})
	m.mu.Unlock()
}

// The wait-for graph needs two kinds of edges. A waiter blocked by holder
// H is really waiting for every transaction from H up to (but excluding)
// lca(H, access) to commit — only then has the lock been inherited high
// enough to become an ancestor's — so a lock edge goes from the waiting
// transaction to each member of that chain. And a transaction cannot
// commit before its descendants return, so a structural edge goes from
// every proper ancestor of a waiting transaction down to it. Cycles in
// this combined graph are exactly the executions that cannot progress
// without an abort.
//
// The graph is never materialised: successors are enumerated on demand
// from the per-object queues (via the waiting index), and the search
// starts only from the transactions whose outgoing edges the triggering
// event changed — a new cycle must pass through one of them. Detection
// cost therefore scales with the reachable component of the change, not
// with the total number of waiters in the system.

// breakCyclesLocked finds wait-for cycles reachable from the given start
// transactions and aborts one victim per cycle found. Caller holds m.mu.
func (m *Manager) breakCyclesLocked(starts []tree.TID) {
	for {
		victim := m.detectLocked(starts)
		if victim == nil {
			return
		}
		victim.victim = true
		close(victim.wake)
		m.dequeueLocked(victim)
		m.stats.Deadlocks++
	}
}

// succLocked appends t's wait-for successors to buf and returns it.
// Caller holds m.mu.
func (m *Manager) succLocked(t tree.TID, buf []tree.TID) []tree.TID {
	// Lock edges: for each of t's waits, the holder chains that must
	// commit before the wait can be granted.
	for _, wt := range m.waiting[t] {
		ls := wt.ls
		addChain := func(holder tree.TID) {
			lca := tree.LCA(holder, wt.access)
			for u := holder; u != lca && u != tree.Root; u = u.Parent() {
				if u != t {
					buf = append(buf, u)
				}
			}
		}
		for u := range ls.write {
			if !u.IsAncestorOf(wt.access) {
				addChain(u)
			}
		}
		if wt.write {
			for u := range ls.read {
				if !u.IsAncestorOf(wt.access) {
					addChain(u)
				}
			}
		}
	}
	// Structural edges: t is gated on every waiting proper descendant.
	// Descendants share t's top-level ancestor, so only that tree's
	// waiting transactions are scanned.
	for u := range m.topWaiting[tree.Root.ChildToward(t)] {
		if t.IsProperAncestorOf(u) {
			buf = append(buf, u)
		}
	}
	return buf
}

// detectLocked looks for a wait-for cycle reachable from the start
// transactions and returns the chosen victim's waiter, or nil. Caller
// holds m.mu.
func (m *Manager) detectLocked(starts []tree.TID) *waiter {
	visited := map[tree.TID]bool{}
	onPath := map[tree.TID]bool{}
	var path []tree.TID
	var dfs func(t tree.TID) []tree.TID
	dfs = func(t tree.TID) []tree.TID {
		if onPath[t] {
			// Extract the cycle suffix.
			for i, u := range path {
				if u == t {
					return append([]tree.TID(nil), path[i:]...)
				}
			}
			return append([]tree.TID(nil), path...)
		}
		if visited[t] {
			return nil
		}
		visited[t] = true
		onPath[t] = true
		path = append(path, t)
		for _, u := range m.succLocked(t, nil) {
			if u == tree.Root {
				continue
			}
			if c := dfs(u); c != nil {
				return c
			}
		}
		onPath[t] = false
		path = path[:len(path)-1]
		return nil
	}
	var cycle []tree.TID
	for _, s := range starts {
		if cycle = dfs(s); cycle != nil {
			break
		}
	}
	if cycle == nil {
		return nil
	}
	// Victim: the deepest transaction in the cycle that is actually
	// waiting, breaking level ties in favour of the latest sibling —
	// path components compare numerically, so T0.10 outranks T0.9.
	var victim *waiter
	for _, t := range cycle {
		for _, cand := range m.waiting[t] {
			if victim == nil || cand.tx.Level() > victim.tx.Level() ||
				(cand.tx.Level() == victim.tx.Level() && tree.Compare(cand.tx, victim.tx) > 0) {
				victim = cand
			}
		}
	}
	return victim
}

// CheckInvariants verifies Lemma 21 (lockholders of each object are
// pairwise ancestry-related where one holds a write lock, and the write
// table is a chain), version-map consistency, and that the held-locks
// index agrees exactly with the lock tables, for tests and stress runs.
func (m *Manager) CheckInvariants() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for x, ls := range m.objects {
		if !ls.write.IsChain() {
			return fmt.Errorf("lockmgr: %s: write-lockholders %v not a chain", x, ls.write.Members())
		}
		for w := range ls.write {
			for r := range ls.read {
				if !w.IsAncestorOf(r) && !r.IsAncestorOf(w) {
					return fmt.Errorf("lockmgr: %s: write holder %s unrelated to read holder %s", x, w, r)
				}
			}
		}
		if len(ls.versions) != ls.write.Len() {
			return fmt.Errorf("lockmgr: %s: %d versions for %d write holders", x, len(ls.versions), ls.write.Len())
		}
		// Every lockholder must appear in the held-locks index.
		for _, s := range []tree.Set{ls.read, ls.write} {
			for t := range s {
				if _, ok := m.held[t][ls]; !ok {
					return fmt.Errorf("lockmgr: %s: holder %s missing from held-locks index", x, t)
				}
			}
		}
	}
	// Every index entry must be backed by a lock.
	for t, objs := range m.held {
		if len(objs) == 0 {
			return fmt.Errorf("lockmgr: empty held-locks index entry for %s", t)
		}
		for ls := range objs {
			if !ls.read.Has(t) && !ls.write.Has(t) {
				return fmt.Errorf("lockmgr: held-locks index lists %s on %s without a lock", t, ls.name)
			}
		}
	}
	// Queue bookkeeping: contended is exactly the non-empty queues, and
	// the waiting index lists exactly the queued waiters.
	for ls := range m.contended {
		if len(ls.queue) == 0 {
			return fmt.Errorf("lockmgr: %s marked contended with empty queue", ls.name)
		}
	}
	queued := 0
	for _, ls := range m.objects {
		queued += len(ls.queue)
		if len(ls.queue) > 0 {
			if _, ok := m.contended[ls]; !ok {
				return fmt.Errorf("lockmgr: %s has %d queued waiters but is not marked contended", ls.name, len(ls.queue))
			}
		}
		for _, w := range ls.queue {
			found := false
			for _, q := range m.waiting[w.tx] {
				if q == w {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("lockmgr: waiter of %s on %s missing from waiting index", w.tx, ls.name)
			}
		}
	}
	indexed := 0
	for t, ws := range m.waiting {
		if len(ws) == 0 {
			return fmt.Errorf("lockmgr: empty waiting-index entry for %s", t)
		}
		indexed += len(ws)
		if _, ok := m.topWaiting[tree.Root.ChildToward(t)][t]; !ok {
			return fmt.Errorf("lockmgr: waiting transaction %s missing from top-level grouping", t)
		}
	}
	if queued != indexed {
		return fmt.Errorf("lockmgr: %d queued waiters but %d indexed", queued, indexed)
	}
	for top, s := range m.topWaiting {
		if len(s) == 0 {
			return fmt.Errorf("lockmgr: empty top-level grouping for %s", top)
		}
		for t := range s {
			if len(m.waiting[t]) == 0 {
				return fmt.Errorf("lockmgr: top-level grouping lists %s with no waiters", t)
			}
		}
	}
	return nil
}
