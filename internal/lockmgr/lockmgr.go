// Package lockmgr is the production engine behind the nestedtx runtime: a
// blocking implementation of Moss' read/write locking for nested
// transactions (the algorithm of §5.1), with version management for abort
// recovery and wait-for-graph deadlock detection.
//
// Where internal/core models M(X) as an I/O automaton whose responses are
// chosen by a driver, this package services real goroutines: an Acquire
// blocks until every holder of a conflicting lock is an ancestor of the
// requesting access, or until the caller is cancelled or chosen as a
// deadlock victim.
//
// All lock-table transitions happen under one manager mutex and are
// recorded in the formal event vocabulary, so the schedule of a live run
// can be machine-checked against Theorem 34 by internal/checker.
package lockmgr

import (
	"errors"
	"fmt"
	"sync"

	"nestedtx/internal/adt"
	"nestedtx/internal/core"
	"nestedtx/internal/event"
	"nestedtx/internal/tree"
)

// ErrDeadlock is returned by Acquire when the caller was chosen as the
// victim of a deadlock cycle. The enclosing transaction should abort (the
// nestedtx runtime does this automatically and may retry).
var ErrDeadlock = errors.New("lockmgr: deadlock victim")

// ErrCancelled is returned by Acquire when the caller's cancel channel
// closed while waiting.
var ErrCancelled = errors.New("lockmgr: acquire cancelled")

// Stats counts manager activity. Read a consistent copy via
// Manager.Stats.
type Stats struct {
	Acquires      uint64 // granted lock acquisitions
	Waits         uint64 // acquisitions that blocked at least once
	Deadlocks     uint64 // deadlock cycles broken
	CommitMoves   uint64 // lock inheritances on commit
	AbortReleases uint64 // lock discards on abort
}

// Manager owns the lock tables and version maps of every registered object
// and the global wait-for graph.
type Manager struct {
	mode core.Mode
	rec  *event.Recorder

	mu      sync.Mutex
	objects map[string]*lockState
	waiters map[*waiter]struct{}
	stats   Stats
}

// lockState is the M(X) state for one object: the two lock tables and the
// version map (defined exactly on the write-lockholders).
type lockState struct {
	name     string
	read     tree.Set
	write    tree.Set
	versions map[tree.TID]adt.State
}

type waiter struct {
	tx     tree.TID // the live transaction performing the access
	access tree.TID
	object string
	write  bool // whether the access needs a write lock
	wake   chan struct{}
	victim bool
}

// New returns a Manager recording to rec (nil disables recording) with the
// given lock classification mode.
func New(rec *event.Recorder, mode core.Mode) *Manager {
	return &Manager{
		mode:    mode,
		rec:     rec,
		objects: make(map[string]*lockState),
		waiters: make(map[*waiter]struct{}),
	}
}

// Register declares object x with initial state init; the root holds the
// initial write lock, exactly as in M(X)'s initial state.
func (m *Manager) Register(x string, init adt.State) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.objects[x]; dup {
		return fmt.Errorf("lockmgr: object %q already registered", x)
	}
	m.objects[x] = &lockState{
		name:     x,
		read:     tree.NewSet(),
		write:    tree.NewSet(tree.Root),
		versions: map[tree.TID]adt.State{tree.Root: init},
	}
	return nil
}

// Stats returns a copy of the counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// Objects returns the registered object names.
func (m *Manager) Objects() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.objects))
	for x := range m.objects {
		out = append(out, x)
	}
	return out
}

// CurrentState returns the current (least write-lockholder) state of x,
// for inspection after a run.
func (m *Manager) CurrentState(x string) (adt.State, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ls, ok := m.objects[x]
	if !ok {
		return nil, fmt.Errorf("lockmgr: object %q not registered", x)
	}
	return ls.current(), nil
}

func (ls *lockState) current() adt.State {
	least, ok := ls.write.Least()
	if !ok {
		panic("lockmgr: no write-lockholders (root lock lost)")
	}
	return ls.versions[least]
}

// isWrite reports whether op takes a write lock under the manager's mode.
func (m *Manager) isWrite(op adt.Op) bool {
	return m.mode == core.Exclusive || !op.ReadOnly()
}

// blocked returns a conflicting lockholder that is not an ancestor of t,
// or "" when the acquisition can proceed.
func (ls *lockState) blocked(t tree.TID, write bool) (tree.TID, bool) {
	for u := range ls.write {
		if !u.IsAncestorOf(t) {
			return u, true
		}
	}
	if write {
		for u := range ls.read {
			if !u.IsAncestorOf(t) {
				return u, true
			}
		}
	}
	return "", false
}

// Acquire runs access `access` (a child of live transaction tx) applying
// op to object x, blocking until the Moss locking rule admits it. On
// success it returns the operation's value; the lock ends up held by tx
// (the access is granted its lock, commits, and the lock passes to its
// parent — the corresponding five formal events are recorded atomically).
//
// cancel, when closed, unblocks the wait with ErrCancelled (used when the
// enclosing transaction is aborted externally). ErrDeadlock is returned
// when the wait was chosen as a deadlock victim.
func (m *Manager) Acquire(tx, access tree.TID, x string, op adt.Op, cancel <-chan struct{}) (adt.Value, error) {
	write := m.isWrite(op)
	waited := false
	m.mu.Lock()
	for {
		ls, ok := m.objects[x]
		if !ok {
			m.mu.Unlock()
			return nil, fmt.Errorf("lockmgr: object %q not registered", x)
		}
		if _, isBlocked := ls.blocked(access, write); !isBlocked {
			v := m.grantLocked(ls, tx, access, op, write)
			m.stats.Acquires++
			if waited {
				m.stats.Waits++
			}
			// A grant can complete a wait-for cycle (a newly compatible
			// read lock blocks an older write waiter) without any new
			// waiter registering, so detection must run here too.
			m.breakCyclesLocked()
			m.mu.Unlock()
			return v, nil
		}
		// Conflicting lock held by a non-ancestor: wait for the holder's
		// chain to commit (lock inheritance) or abort (lock release).
		w := &waiter{tx: tx, access: access, object: x, write: write, wake: make(chan struct{})}
		m.waiters[w] = struct{}{}
		m.breakCyclesLocked()
		if w.victim {
			delete(m.waiters, w)
			m.mu.Unlock()
			return nil, ErrDeadlock
		}
		m.mu.Unlock()
		waited = true
		select {
		case <-w.wake:
			m.mu.Lock()
			if w.victim {
				delete(m.waiters, w)
				m.mu.Unlock()
				return nil, ErrDeadlock
			}
			delete(m.waiters, w)
		case <-cancel:
			m.mu.Lock()
			delete(m.waiters, w)
			m.mu.Unlock()
			return nil, ErrCancelled
		}
	}
}

// grantLocked applies op, grants the access its lock, and immediately
// commits the access so the lock is inherited by tx. Caller holds m.mu.
func (m *Manager) grantLocked(ls *lockState, tx, access tree.TID, op adt.Op, write bool) adt.Value {
	next, v := op.Apply(ls.current())
	if write {
		ls.write.Add(tx)
		ls.versions[tx] = next
	} else {
		ls.read.Add(tx)
	}
	m.rec.RecordAll(
		event.Event{Kind: event.RequestCommit, T: access, Value: v},
		event.Event{Kind: event.Commit, T: access},
		event.Event{Kind: event.InformCommitAt, T: access, Object: ls.name},
		event.Event{Kind: event.ReportCommit, T: access, Value: v},
	)
	return v
}

// Commit moves every lock held by t up to parent(t) (with its version, for
// write locks), recording COMMIT(t) and the INFORM_COMMIT events, then
// wakes waiters. It must be called exactly once per committing
// transaction, after all of t's children have returned.
func (m *Manager) Commit(t tree.TID, value event.Value) {
	p := t.Parent()
	m.mu.Lock()
	m.rec.Record(event.Event{Kind: event.Commit, T: t})
	for _, ls := range m.objects {
		touched := false
		if ls.write.Has(t) {
			ls.write.Remove(t)
			ls.write.Add(p)
			ls.versions[p] = ls.versions[t]
			delete(ls.versions, t)
			touched = true
		}
		if ls.read.Has(t) {
			ls.read.Remove(t)
			ls.read.Add(p)
			touched = true
		}
		if touched {
			m.stats.CommitMoves++
			m.rec.Record(event.Event{Kind: event.InformCommitAt, T: t, Object: ls.name})
		}
	}
	m.rec.Record(event.Event{Kind: event.ReportCommit, T: t, Value: value})
	m.wakeAllLocked()
	m.mu.Unlock()
}

// Abort discards every lock and version held by t or its descendants,
// recording ABORT(t) and the INFORM_ABORT events, then wakes waiters.
func (m *Manager) Abort(t tree.TID) {
	m.mu.Lock()
	m.rec.Record(event.Event{Kind: event.Abort, T: t})
	for _, ls := range m.objects {
		touched := false
		for u := range ls.write {
			if u.IsDescendantOf(t) {
				ls.write.Remove(u)
				delete(ls.versions, u)
				touched = true
			}
		}
		for u := range ls.read {
			if u.IsDescendantOf(t) {
				ls.read.Remove(u)
				touched = true
			}
		}
		if touched {
			m.stats.AbortReleases++
			m.rec.Record(event.Event{Kind: event.InformAbortAt, T: t, Object: ls.name})
		}
	}
	m.rec.Record(event.Event{Kind: event.ReportAbort, T: t})
	m.wakeAllLocked()
	m.mu.Unlock()
}

func (m *Manager) wakeAllLocked() {
	for w := range m.waiters {
		select {
		case <-w.wake:
		default:
			close(w.wake)
		}
	}
	// Woken waiters remove themselves on resume; clear the registry so
	// detection never chases stale entries.
	m.waiters = make(map[*waiter]struct{})
}

// detectLocked looks for a wait-for cycle through the newly registered
// waiter w and returns the chosen victim's waiter, or nil. Caller holds
// m.mu.
//
// The graph needs two kinds of edges. A waiter blocked by holder H is
// really waiting for every transaction from H up to (but excluding)
// lca(H, access) to commit — only then has the lock been inherited high
// enough to become an ancestor's — so a lock edge goes from the waiting
// transaction to each member of that chain. And a transaction cannot
// commit before its descendants return, so a structural edge goes from
// every proper ancestor of a waiting transaction down to it. Cycles in
// this combined graph are exactly the executions that cannot progress
// without an abort.
// breakCyclesLocked finds wait-for cycles among the registered waiters and
// aborts one victim per cycle found. Caller holds m.mu.
func (m *Manager) breakCyclesLocked() {
	for {
		victim := m.detectLocked()
		if victim == nil {
			return
		}
		victim.victim = true
		select {
		case <-victim.wake:
		default:
			close(victim.wake)
		}
		delete(m.waiters, victim)
		m.stats.Deadlocks++
	}
}

func (m *Manager) detectLocked() *waiter {
	edges := make(map[tree.TID]map[tree.TID]struct{})
	byTx := make(map[tree.TID][]*waiter)
	for wt := range m.waiters {
		byTx[wt.tx] = append(byTx[wt.tx], wt)
		ls, ok := m.objects[wt.object]
		if !ok {
			continue
		}
		addChain := func(holder tree.TID) {
			lca := tree.LCA(holder, wt.access)
			for u := holder; u != lca && u != tree.Root; u = u.Parent() {
				addEdge(edges, wt.tx, u)
			}
		}
		for u := range ls.write {
			if !u.IsAncestorOf(wt.access) {
				addChain(u)
			}
		}
		if wt.write {
			for u := range ls.read {
				if !u.IsAncestorOf(wt.access) {
					addChain(u)
				}
			}
		}
		// Structural edges: ancestors are gated on this waiter returning.
		for _, anc := range wt.tx.ProperAncestors() {
			if anc != tree.Root {
				addEdge(edges, anc, wt.tx)
			}
		}
	}
	// Find a cycle reachable from any waiting transaction.
	var cycle []tree.TID
	for wt := range m.waiters {
		if cycle = findCycle(edges, wt.tx); cycle != nil {
			break
		}
	}
	if cycle == nil {
		return nil
	}
	// Victim: the deepest transaction in the cycle that is actually
	// waiting, breaking level ties by the lexicographically larger name.
	var victim *waiter
	for _, t := range cycle {
		for _, cand := range byTx[t] {
			if victim == nil || cand.tx.Level() > victim.tx.Level() ||
				(cand.tx.Level() == victim.tx.Level() && cand.tx > victim.tx) {
				victim = cand
			}
		}
	}
	return victim
}

func addEdge(edges map[tree.TID]map[tree.TID]struct{}, a, b tree.TID) {
	if a == b || b == tree.Root {
		return
	}
	s := edges[a]
	if s == nil {
		s = make(map[tree.TID]struct{})
		edges[a] = s
	}
	s[b] = struct{}{}
}

// findCycle returns some cycle containing start, or nil.
func findCycle(edges map[tree.TID]map[tree.TID]struct{}, start tree.TID) []tree.TID {
	onPath := map[tree.TID]bool{}
	var path []tree.TID
	visited := map[tree.TID]bool{}
	var dfs func(t tree.TID) []tree.TID
	dfs = func(t tree.TID) []tree.TID {
		if onPath[t] {
			// Extract the cycle suffix.
			for i, u := range path {
				if u == t {
					return append([]tree.TID(nil), path[i:]...)
				}
			}
			return append([]tree.TID(nil), path...)
		}
		if visited[t] {
			return nil
		}
		visited[t] = true
		onPath[t] = true
		path = append(path, t)
		for u := range edges[t] {
			if c := dfs(u); c != nil {
				return c
			}
		}
		onPath[t] = false
		path = path[:len(path)-1]
		return nil
	}
	return dfs(start)
}

// CheckInvariants verifies Lemma 21 (lockholders of each object are
// pairwise ancestry-related where one holds a write lock, and the write
// table is a chain) and version-map consistency, for tests and stress
// runs.
func (m *Manager) CheckInvariants() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for x, ls := range m.objects {
		if !ls.write.IsChain() {
			return fmt.Errorf("lockmgr: %s: write-lockholders %v not a chain", x, ls.write.Members())
		}
		for w := range ls.write {
			for r := range ls.read {
				if !w.IsAncestorOf(r) && !r.IsAncestorOf(w) {
					return fmt.Errorf("lockmgr: %s: write holder %s unrelated to read holder %s", x, w, r)
				}
			}
		}
		if len(ls.versions) != ls.write.Len() {
			return fmt.Errorf("lockmgr: %s: %d versions for %d write holders", x, len(ls.versions), ls.write.Len())
		}
	}
	return nil
}
