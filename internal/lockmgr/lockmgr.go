// Package lockmgr is the production engine behind the nestedtx runtime: a
// blocking implementation of Moss' read/write locking for nested
// transactions (the algorithm of §5.1), with version management for abort
// recovery and wait-for-graph deadlock detection.
//
// Where internal/core models M(X) as an I/O automaton whose responses are
// chosen by a driver, this package services real goroutines: an Acquire
// blocks until every holder of a conflicting lock is an ancestor of the
// requesting access, or until the caller is cancelled or chosen as a
// deadlock victim.
//
// Per-transaction cost tracks the transaction's footprint, not the size
// of the registered universe: a held-locks index (TID → locked objects)
// lets Commit and Abort visit only the objects the transaction actually
// locked, and waiters queue on the object they are blocked on, so a
// commit or abort wakes only the waiters whose lock tables it changed.
//
// The lock tables are partitioned into N independent shards keyed by
// hash(object name) % N. The paper's locking rules are per-object — a
// lock's holders, waiters, and M(X)'s version map are all keyed by X — so
// the partition preserves the formal model exactly: each object's
// transitions still happen atomically under its shard's mutex and are
// recorded in the formal event vocabulary, so the schedule of a live run
// can be machine-checked against Theorem 34 by internal/checker.
// Cross-shard concerns (Commit/Abort footprints, deadlock cycles that
// span shards) go through a striped per-tree index; see shard.go and
// deadlock.go for the protocols.
package lockmgr

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"nestedtx/internal/adt"
	"nestedtx/internal/core"
	"nestedtx/internal/event"
	"nestedtx/internal/obs"
	"nestedtx/internal/tree"
)

// ErrDeadlock is returned by Acquire when the caller was chosen as the
// victim of a deadlock cycle. The enclosing transaction should abort (the
// nestedtx runtime does this automatically and may retry).
var ErrDeadlock = errors.New("lockmgr: deadlock victim")

// ErrCancelled is returned by Acquire when the caller's cancel channel
// closed while waiting.
var ErrCancelled = errors.New("lockmgr: acquire cancelled")

// Stats counts manager activity, aggregated across shards. Read a
// consistent copy via Manager.Stats.
type Stats struct {
	Acquires      uint64 // granted lock acquisitions
	Waits         uint64 // acquisitions that blocked at least once
	Deadlocks     uint64 // deadlock cycles broken
	CommitMoves   uint64 // lock inheritances on commit
	AbortReleases uint64 // lock discards on abort

	Wakeups         uint64 // waiter wakeups issued by commits/aborts
	SpuriousWakeups uint64 // wakeups after which the waiter was still blocked
	MaxQueueDepth   uint64 // high-water mark of any per-object wait queue

	Shards      uint64 // number of lock shards (configuration, not a counter)
	Escalations uint64 // deadlock walks that had to snapshot every shard
}

// Manager owns the lock tables and version maps of every registered object
// and the wait queues of every blocked acquisition, partitioned into
// shards by object name.
type Manager struct {
	mode core.Mode
	rec  *event.Recorder
	met  *obs.Metrics // nil disables observability

	shards      []*shard
	stripes     []indexStripe
	escalations atomic.Uint64
}

// indexStripe holds the cross-shard per-tree indexes for a slice of the
// top-level TID space. Two maps, both keyed by top-level transaction:
//
//   - held: the set of shard ids where the tree holds (or ever held, until
//     it ends) at least one lock — the footprint Commit and Abort visit.
//     Entries are deleted when the top-level transaction commits or
//     aborts; over-approximation in between is harmless (a visited shard
//     with nothing to move is a no-op).
//   - waits: per-shard count of the tree's queued waiters — the
//     confinement test deadlock detection uses to decide whether a local
//     walk is sound or must escalate.
//
// Lock order: a stripe mutex is only ever taken while holding at most the
// shard mutexes already held by the caller, and no shard mutex is ever
// taken while holding a stripe mutex.
type indexStripe struct {
	mu    sync.Mutex
	held  map[tree.TID]map[int]struct{}
	waits map[tree.TID]map[int]int
}

const numStripes = 64

// fnv32 is FNV-1a, inlined to keep the shard lookup allocation-free.
func fnv32(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// ShardOf returns the shard index object x maps to in a manager with the
// given shard count. Exported so tests and tools can construct object
// names with known shard placement.
func ShardOf(x string, shards int) int {
	return int(fnv32(x) % uint32(shards))
}

// New returns a Manager recording to rec (nil disables recording) with the
// given lock classification mode and runtime.GOMAXPROCS(0) shards. met,
// when non-nil, receives lock-wait latencies, victim counts by cause, and
// queue-depth gauges.
func New(rec *event.Recorder, mode core.Mode, met *obs.Metrics) *Manager {
	return NewSharded(rec, mode, met, 0)
}

// NewSharded is New with an explicit shard count; n < 1 selects
// runtime.GOMAXPROCS(0).
func NewSharded(rec *event.Recorder, mode core.Mode, met *obs.Metrics, n int) *Manager {
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	m := &Manager{
		mode:    mode,
		rec:     rec,
		met:     met,
		shards:  make([]*shard, n),
		stripes: make([]indexStripe, numStripes),
	}
	met.InitShards(n)
	for i := range m.shards {
		m.shards[i] = &shard{
			id:         i,
			m:          m,
			objects:    make(map[string]*lockState),
			held:       make(map[tree.TID]map[*lockState]struct{}),
			contended:  make(map[*lockState]struct{}),
			waiting:    make(map[tree.TID][]*waiter),
			topWaiting: make(map[tree.TID]map[tree.TID]struct{}),
		}
	}
	for i := range m.stripes {
		m.stripes[i].held = make(map[tree.TID]map[int]struct{})
		m.stripes[i].waits = make(map[tree.TID]map[int]int)
	}
	return m
}

// ShardCount returns the number of lock shards.
func (m *Manager) ShardCount() int { return len(m.shards) }

func (m *Manager) shardFor(x string) *shard {
	return m.shards[ShardOf(x, len(m.shards))]
}

// stripeFor returns the index stripe for top-level transaction top.
func (m *Manager) stripeFor(top tree.TID) *indexStripe {
	return &m.stripes[fnv32(string(top))%numStripes]
}

// topOf returns t's top-level ancestor (t itself when t is top-level).
// t must not be the root.
func topOf(t tree.TID) tree.TID { return tree.Root.ChildToward(t) }

// ---- cross-shard per-tree indexes ----

// fpAdd records that t's tree holds at least one lock in shard sid.
// The root's locks are not tracked (the root never commits or aborts).
func (m *Manager) fpAdd(t tree.TID, sid int) {
	if t == tree.Root {
		return
	}
	top := topOf(t)
	st := m.stripeFor(top)
	st.mu.Lock()
	s := st.held[top]
	if s == nil {
		s = make(map[int]struct{})
		st.held[top] = s
	}
	s[sid] = struct{}{}
	st.mu.Unlock()
}

// fpShards returns the shards (ascending id) where top's tree may hold
// locks.
func (m *Manager) fpShards(top tree.TID) []*shard {
	if len(m.shards) == 1 {
		return m.shards
	}
	st := m.stripeFor(top)
	st.mu.Lock()
	ids := make([]int, 0, len(st.held[top]))
	for sid := range st.held[top] {
		ids = append(ids, sid)
	}
	st.mu.Unlock()
	sort.Ints(ids)
	out := make([]*shard, len(ids))
	for i, sid := range ids {
		out[i] = m.shards[sid]
	}
	return out
}

// fpForget drops top's footprint entry; called when the top-level
// transaction commits or aborts (all descendants have returned by then,
// so no grant can race the deletion).
func (m *Manager) fpForget(top tree.TID) {
	st := m.stripeFor(top)
	st.mu.Lock()
	delete(st.held, top)
	st.mu.Unlock()
}

// waitAdd counts one queued waiter of t's tree in shard sid.
func (m *Manager) waitAdd(t tree.TID, sid int) {
	top := topOf(t)
	st := m.stripeFor(top)
	st.mu.Lock()
	s := st.waits[top]
	if s == nil {
		s = make(map[int]int)
		st.waits[top] = s
	}
	s[sid]++
	st.mu.Unlock()
}

// waitRemove undoes one waitAdd.
func (m *Manager) waitRemove(t tree.TID, sid int) {
	top := topOf(t)
	st := m.stripeFor(top)
	st.mu.Lock()
	if s := st.waits[top]; s != nil {
		if s[sid]--; s[sid] <= 0 {
			delete(s, sid)
			if len(s) == 0 {
				delete(st.waits, top)
			}
		}
	}
	st.mu.Unlock()
}

// treeConfined reports whether every queued waiter of top's tree sits in
// shard sid — the condition under which a deadlock walk that only sees
// sid's wait edges is complete for that tree.
func (m *Manager) treeConfined(top tree.TID, sid int) bool {
	if len(m.shards) == 1 {
		return true
	}
	st := m.stripeFor(top)
	st.mu.Lock()
	defer st.mu.Unlock()
	s := st.waits[top]
	for other := range s {
		if other != sid {
			return false
		}
	}
	return true
}

// ---- public API ----

// Register declares object x with initial state init; the root holds the
// initial write lock, exactly as in M(X)'s initial state.
func (m *Manager) Register(x string, init adt.State) error {
	sh := m.shardFor(x)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, dup := sh.objects[x]; dup {
		return fmt.Errorf("lockmgr: object %q already registered", x)
	}
	ls := &lockState{
		name:     x,
		read:     tree.NewSet(),
		write:    tree.NewSet(tree.Root),
		versions: map[tree.TID]adt.State{tree.Root: init},
		dirty:    tree.NewSet(),
	}
	sh.objects[x] = ls
	sh.indexAddLocked(tree.Root, ls)
	return nil
}

// Stats returns a copy of the counters, aggregated across shards.
func (m *Manager) Stats() Stats {
	var out Stats
	for _, sh := range m.shards {
		sh.mu.Lock()
		s := sh.stats
		sh.mu.Unlock()
		out.Acquires += s.Acquires
		out.Waits += s.Waits
		out.Deadlocks += s.Deadlocks
		out.CommitMoves += s.CommitMoves
		out.AbortReleases += s.AbortReleases
		out.Wakeups += s.Wakeups
		out.SpuriousWakeups += s.SpuriousWakeups
		if s.MaxQueueDepth > out.MaxQueueDepth {
			out.MaxQueueDepth = s.MaxQueueDepth
		}
	}
	out.Shards = uint64(len(m.shards))
	out.Escalations = m.escalations.Load()
	return out
}

// Objects returns the registered object names.
func (m *Manager) Objects() []string {
	var out []string
	for _, sh := range m.shards {
		sh.mu.Lock()
		for x := range sh.objects {
			out = append(out, x)
		}
		sh.mu.Unlock()
	}
	return out
}

// CurrentState returns the current (least write-lockholder) state of x,
// for inspection after a run.
func (m *Manager) CurrentState(x string) (adt.State, error) {
	sh := m.shardFor(x)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	ls, ok := sh.objects[x]
	if !ok {
		return nil, fmt.Errorf("lockmgr: object %q not registered", x)
	}
	return ls.current(), nil
}

// CommittedState returns the committed-to-root state of x: the root's
// version in M(X)'s version map, which reflects exactly the top-level
// transactions whose commits have reached x — never a live writer's
// tentative version. This is the safe read path for observers outside
// any transaction; CurrentState by contrast answers the *least*
// write-lockholder's version and may expose uncommitted state.
func (m *Manager) CommittedState(x string) (adt.State, error) {
	sh := m.shardFor(x)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	ls, ok := sh.objects[x]
	if !ok {
		return nil, fmt.Errorf("lockmgr: object %q not registered", x)
	}
	v, ok := ls.versions[tree.Root]
	if !ok {
		// The root's version exists from Register until the object dies
		// with the manager; Commit only ever moves versions toward it.
		panic("lockmgr: root version lost for " + x)
	}
	return v, nil
}

// TopVersions returns the new root versions a committing top-level
// transaction is about to install: for every object top holds a write
// lock on, the version top holds. The runtime calls it inside the
// top-level commit sequence — after every descendant has committed into
// top, before Commit(top) releases the locks — to publish the commit
// into the snapshot store. Aborted descendants' versions were already
// discarded, so the result contains only effects that commit to root.
func (m *Manager) TopVersions(top tree.TID) map[string]adt.State {
	var out map[string]adt.State
	for _, sh := range m.fpShards(top) {
		sh.mu.Lock()
		for ls := range sh.held[top] {
			// dirty, not just write-locked: under exclusive locking pure
			// readers hold write locks too, but their (unchanged) versions
			// are not publications — the conflict order the checker
			// rebuilds only contains actual mutations.
			if ls.write.Has(top) && ls.dirty.Has(top) {
				if out == nil {
					out = make(map[string]adt.State)
				}
				out[ls.name] = ls.versions[top]
			}
		}
		sh.mu.Unlock()
	}
	return out
}

// Registered reports whether object x has been registered.
func (m *Manager) Registered(x string) bool {
	sh := m.shardFor(x)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	_, ok := sh.objects[x]
	return ok
}

// RootStates returns the committed-to-root state of every registered
// object — the root's version, excluding every version still held by a
// live transaction. This is the durable snapshot a checkpoint persists:
// with the WAL's commit gate held no top-level commit is in flight, so
// the shard-by-shard walk reads one consistent cut that equals the redo
// of all logged records.
func (m *Manager) RootStates() map[string]adt.State {
	out := make(map[string]adt.State)
	for _, sh := range m.shards {
		sh.mu.Lock()
		for x, ls := range sh.objects {
			v, ok := ls.versions[tree.Root]
			if !ok {
				sh.mu.Unlock()
				panic("lockmgr: root version lost for " + x)
			}
			out[x] = v
		}
		sh.mu.Unlock()
	}
	return out
}

// isWrite reports whether op takes a write lock under the manager's mode.
func (m *Manager) isWrite(op adt.Op) bool {
	return m.mode == core.Exclusive || !op.ReadOnly()
}

// Acquire runs access `access` (a child of live transaction tx) applying
// op to object x, blocking until the Moss locking rule admits it. On
// success it returns the operation's value; the lock ends up held by tx
// (the access is granted its lock, commits, and the lock passes to its
// parent — the corresponding five formal events are recorded atomically).
//
// cancel, when closed, unblocks the wait with ErrCancelled (used when the
// enclosing transaction is aborted externally). ErrDeadlock is returned
// when the wait was chosen as a deadlock victim, even when the victim
// choice races an external cancel — the deadlock outcome wins, so retry
// loops keyed on ErrDeadlock observe it.
func (m *Manager) Acquire(tx, access tree.TID, x string, op adt.Op, cancel <-chan struct{}) (adt.Value, error) {
	sh := m.shardFor(x)
	write := m.isWrite(op)
	waited := false
	var waitStart time.Time // set when the acquisition first blocks
	sh.mu.Lock()
	for {
		ls, ok := sh.objects[x]
		if !ok {
			sh.mu.Unlock()
			return nil, fmt.Errorf("lockmgr: object %q not registered", x)
		}
		if _, isBlocked := ls.blocked(access, write); !isBlocked {
			v := sh.grantLocked(ls, tx, access, op, write)
			sh.stats.Acquires++
			if waited {
				sh.stats.Waits++
				d := time.Since(waitStart)
				m.met.ObserveLockWait(d)
				m.met.Trace(obs.KindLockAcquire, string(tx), x, d)
			}
			// A grant can complete a wait-for cycle (a newly compatible
			// read lock blocks an older write waiter) without any new
			// waiter registering, so detection must run here too. Every
			// edge the grant adds sources from a waiter already queued on
			// this object, so those transactions are the only roots a new
			// cycle can be found from.
			var starts []tree.TID
			if len(ls.queue) > 0 {
				starts = make([]tree.TID, 0, len(ls.queue))
				for _, qw := range ls.queue {
					starts = append(starts, qw.tx)
				}
			}
			escalate := len(starts) > 0 && sh.breakCyclesLocked(starts)
			sh.mu.Unlock()
			if escalate {
				m.breakCyclesGlobal(starts)
			}
			return v, nil
		}
		if waited {
			// Woken by a commit/abort on this object but still blocked.
			sh.stats.SpuriousWakeups++
		}
		// Conflicting lock held by a non-ancestor: wait for the holder's
		// chain to commit (lock inheritance) or abort (lock release).
		if !waited {
			waitStart = time.Now()
			m.met.Trace(obs.KindLockWait, string(tx), x, 0)
		}
		w := &waiter{tx: tx, access: access, ls: ls, sh: sh, write: write, wake: make(chan struct{})}
		sh.enqueueLocked(w)
		// Every edge this wait adds either sources from tx (lock edges) or
		// targets tx (structural edges from its ancestors), so any cycle
		// completed by the registration is reachable from tx.
		if sh.breakCyclesLocked([]tree.TID{tx}) {
			// The cycle (if any) leaves this shard: drop the shard lock and
			// run the walk over a consistent all-shard snapshot, then
			// re-check our own fate — the global walk (or a concurrent
			// waker) may have victimised or woken w in the gap.
			sh.mu.Unlock()
			m.breakCyclesGlobal([]tree.TID{tx})
			sh.mu.Lock()
		}
		if w.victim {
			// The detector already dequeued w.
			m.victimExit(waitStart, true)
			sh.mu.Unlock()
			return nil, ErrDeadlock
		}
		sh.mu.Unlock()
		waited = true
		select {
		case <-w.wake:
			sh.mu.Lock()
			if w.victim {
				m.victimExit(waitStart, true)
				sh.mu.Unlock()
				return nil, ErrDeadlock
			}
			// The waker dequeued w; loop and rescan.
		case <-cancel:
			sh.mu.Lock()
			if w.victim {
				// Deadlock victim chosen concurrently with the cancel: the
				// victim outcome is already counted in stats.Deadlocks and
				// must be reported so the caller's retry logic sees it.
				m.victimExit(waitStart, true)
				sh.mu.Unlock()
				return nil, ErrDeadlock
			}
			sh.dequeueLocked(w)
			m.victimExit(waitStart, false)
			sh.mu.Unlock()
			return nil, ErrCancelled
		}
	}
}

// victimExit records the metrics of a wait that ended without a grant:
// the wait duration and the victim cause (deadlock vs external
// cancellation). Every blocked acquisition therefore lands in the
// lock-wait histogram exactly once — granted, victimised, or cancelled —
// so LockWait.Count reconciles with Waits + victims-by-cause.
func (m *Manager) victimExit(waitStart time.Time, deadlock bool) {
	m.met.ObserveLockWait(time.Since(waitStart))
	if deadlock {
		m.met.VictimDeadlock()
	} else {
		m.met.VictimCancelled()
	}
}

// Commit moves every lock held by t up to parent(t) (with its version, for
// write locks), recording COMMIT(t) and the INFORM_COMMIT events, then
// wakes the waiters queued on the objects whose lock tables changed. It
// visits only the shards in t's tree's footprint index — cost is
// proportional to the transaction's footprint, not the registered
// universe. It must be called exactly once per committing transaction,
// after all of t's children have returned.
//
// The shards are visited one at a time, so a concurrent observer can see
// some of t's locks already inherited and others not yet — exactly the
// asynchronous propagation the paper's per-object INFORM_COMMIT_AT(t,X)
// events model. The recorder orders COMMIT(t) before every INFORM, so the
// replayed schedule is well-formed regardless of interleaving.
func (m *Manager) Commit(t tree.TID, value event.Value) {
	p := t.Parent()
	top := topOf(t)
	m.rec.Record(event.Event{Kind: event.Commit, T: t})
	for _, sh := range m.fpShards(top) {
		sh.mu.Lock()
		for ls := range sh.held[t] {
			touched := false
			if ls.write.Has(t) {
				ls.write.Remove(t)
				ls.write.Add(p)
				ls.versions[p] = ls.versions[t]
				delete(ls.versions, t)
				if ls.dirty.Has(t) {
					ls.dirty.Remove(t)
					ls.dirty.Add(p)
				}
				touched = true
			}
			if ls.read.Has(t) {
				ls.read.Remove(t)
				ls.read.Add(p)
				touched = true
			}
			if touched {
				sh.indexAddLocked(p, ls)
				sh.stats.CommitMoves++
				m.rec.Record(event.Event{Kind: event.InformCommitAt, T: t, Object: ls.name})
				sh.wakeQueuedLocked(ls)
			}
		}
		delete(sh.held, t)
		sh.mu.Unlock()
	}
	if p == tree.Root {
		m.fpForget(top)
	}
	m.rec.Record(event.Event{Kind: event.ReportCommit, T: t, Value: value})
}

// Abort discards every lock and version held by t or its descendants,
// recording ABORT(t) and the INFORM_ABORT events, then wakes the waiters
// queued on the objects whose lock tables changed. The affected objects
// are found through the held-locks indexes of the shards in t's tree's
// footprint, so cost is proportional to the aborted subtree's footprint.
func (m *Manager) Abort(t tree.TID) {
	top := topOf(t)
	m.rec.Record(event.Event{Kind: event.Abort, T: t})
	for _, sh := range m.fpShards(top) {
		sh.mu.Lock()
		affected := make(map[*lockState]struct{})
		for u, objs := range sh.held {
			if u.IsDescendantOf(t) {
				for ls := range objs {
					affected[ls] = struct{}{}
				}
				delete(sh.held, u)
			}
		}
		for ls := range affected {
			touched := false
			for u := range ls.write {
				if u.IsDescendantOf(t) {
					ls.write.Remove(u)
					delete(ls.versions, u)
					ls.dirty.Remove(u)
					touched = true
				}
			}
			for u := range ls.read {
				if u.IsDescendantOf(t) {
					ls.read.Remove(u)
					touched = true
				}
			}
			if touched {
				sh.stats.AbortReleases++
				m.rec.Record(event.Event{Kind: event.InformAbortAt, T: t, Object: ls.name})
				sh.wakeQueuedLocked(ls)
			}
		}
		sh.mu.Unlock()
	}
	if t.Parent() == tree.Root {
		m.fpForget(top)
	}
	m.rec.Record(event.Event{Kind: event.ReportAbort, T: t})
}

// CheckInvariants verifies Lemma 21 (lockholders of each object are
// pairwise ancestry-related where one holds a write lock, and the write
// table is a chain), version-map consistency, that the held-locks index
// agrees exactly with the lock tables, and that the shard partition is
// clean: every object lives in exactly the shard its hash names, every
// held lock is covered by the cross-shard footprint index, and the
// striped waiter counts match the queues exactly. It locks every shard
// (ascending, the global order), so the snapshot is as consistent as the
// old single-mutex check. For tests and stress runs.
func (m *Manager) CheckInvariants() error {
	for _, sh := range m.shards {
		sh.mu.Lock()
	}
	defer func() {
		for i := len(m.shards) - 1; i >= 0; i-- {
			m.shards[i].mu.Unlock()
		}
	}()
	// waits[top][shard] as the queues say; compared against the stripes.
	seenWaits := make(map[tree.TID]map[int]int)
	for _, sh := range m.shards {
		if err := sh.checkLocked(seenWaits); err != nil {
			return err
		}
	}
	// Every held lock (other than the root's) must be covered by the
	// footprint index, and the striped waiter counts must match the
	// queues exactly. Stripe mutations happen only while holding some
	// shard mutex — all held here — except fpForget, which runs strictly
	// after the tree's last lock left every shard, so "footprint ⊇ held"
	// still holds on any interleaving.
	for _, sh := range m.shards {
		for t := range sh.held {
			if t == tree.Root {
				continue
			}
			top := topOf(t)
			st := m.stripeFor(top)
			st.mu.Lock()
			_, ok := st.held[top][sh.id]
			st.mu.Unlock()
			if !ok {
				return fmt.Errorf("lockmgr: %s holds locks in shard %d but footprint index misses it", t, sh.id)
			}
		}
	}
	striped := make(map[tree.TID]map[int]int)
	for i := range m.stripes {
		st := &m.stripes[i]
		st.mu.Lock()
		for top, s := range st.waits {
			for sid, n := range s {
				if striped[top] == nil {
					striped[top] = make(map[int]int)
				}
				striped[top][sid] += n
			}
		}
		st.mu.Unlock()
	}
	for top, s := range seenWaits {
		for sid, n := range s {
			if striped[top][sid] != n {
				return fmt.Errorf("lockmgr: tree %s has %d waiters queued in shard %d but stripe counts %d", top, n, sid, striped[top][sid])
			}
		}
	}
	for top, s := range striped {
		for sid, n := range s {
			if seenWaits[top][sid] != n {
				return fmt.Errorf("lockmgr: stripe counts %d waiters for tree %s in shard %d but %d are queued", n, top, sid, seenWaits[top][sid])
			}
		}
	}
	return nil
}
