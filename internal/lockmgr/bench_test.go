// Benchmarks for the lock-manager hot paths: commit/abort cost as a
// function of the registered-object universe (BenchmarkCommitFootprint)
// and wakeup fan-out under contention (BenchmarkContendedWakeup).
//
// Run with:
//
//	go test -bench 'CommitFootprint|ContendedWakeup' -benchtime 100x ./internal/lockmgr
//
// Results are tracked across revisions in BENCH_lockmgr.json at the repo
// root: commit/abort cost must stay flat as the universe grows 16→4096,
// and wakeups per commit must be bounded by the number of *conflicting*
// waiters, not the total number of waiters in the system.
package lockmgr

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"nestedtx/internal/adt"
	"nestedtx/internal/core"
	"nestedtx/internal/tree"
)

// queueDepth reports how many waiters are currently blocked on x, so the
// benchmark can hold a commit until the contending reader has parked.
func (m *Manager) queueDepth(x string) int {
	sh := m.shardFor(x)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return len(sh.objects[x].queue)
}

// reportWakeups reports wakeup fan-out per measured iteration.
func reportWakeups(b *testing.B, before, after Stats) {
	if b.N == 0 {
		return
	}
	b.ReportMetric(float64(after.Wakeups-before.Wakeups)/float64(b.N), "wakeups/op")
	b.ReportMetric(float64(after.SpuriousWakeups-before.SpuriousWakeups)/float64(b.N), "spurious/op")
}

// objName names the i'th benchmark object.
func objName(i int) string { return fmt.Sprintf("o%d", i) }

// newBenchMgr returns a manager with n registered register-objects.
func newBenchMgr(b *testing.B, n int) *Manager {
	b.Helper()
	m := New(nil, core.ReadWrite, nil)
	for i := 0; i < n; i++ {
		if err := m.Register(objName(i), adt.NewRegister(int64(0))); err != nil {
			b.Fatal(err)
		}
	}
	return m
}

// BenchmarkCommitFootprint measures the cost of Commit and Abort for a
// transaction touching a fixed footprint (4 objects) as the registered
// universe grows 16 → 4096. With the held-locks index the cost tracks the
// footprint; a commit that iterates every registered object degrades
// linearly in the universe size.
func BenchmarkCommitFootprint(b *testing.B) {
	const footprint = 4
	for _, universe := range []int{16, 256, 4096} {
		b.Run(fmt.Sprintf("commit/objects=%d", universe), func(b *testing.B) {
			m := newBenchMgr(b, universe)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tx := tree.Root.Child(i)
				for k := 0; k < footprint; k++ {
					x := objName((i*footprint + k) % universe)
					if _, err := m.Acquire(tx, tx.Child(k), x, adt.RegWrite{V: int64(i)}, nil); err != nil {
						b.Fatal(err)
					}
				}
				m.Commit(tx, int64(0))
			}
		})
		b.Run(fmt.Sprintf("abort/objects=%d", universe), func(b *testing.B) {
			m := newBenchMgr(b, universe)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tx := tree.Root.Child(i)
				for k := 0; k < footprint; k++ {
					x := objName((i*footprint + k) % universe)
					if _, err := m.Acquire(tx, tx.Child(k), x, adt.RegWrite{V: int64(i)}, nil); err != nil {
						b.Fatal(err)
					}
				}
				m.Abort(tx)
			}
		})
	}
}

// BenchmarkShardScaling sweeps GOMAXPROCS × shard-count over a workload
// of disjoint-footprint transactions: each worker owns 4 private objects
// and runs acquire×4 → commit in a loop, so transactions never conflict
// and the only serialisation left is the lock-table mutex itself. With
// shards=1 every commit funnels through one mutex (the pre-shard
// design); with shards=procs the footprints hash across independent
// shards and commits proceed in parallel. Results are tracked in
// BENCH_shard.json at the repo root (see EXPERIMENTS.md E15 for the
// caveat about measuring on a 1-core container).
func BenchmarkShardScaling(b *testing.B) {
	const footprint = 4
	// maxWorkers bounds the worker IDs RunParallel can hand out; each
	// worker's objects are registered up front for every case.
	const maxWorkers = 32
	for _, procs := range []int{1, 4, 16} {
		for _, shards := range []int{1, 16} {
			b.Run(fmt.Sprintf("procs=%d/shards=%d", procs, shards), func(b *testing.B) {
				defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
				m := NewSharded(nil, core.ReadWrite, nil, shards)
				for w := 0; w < maxWorkers; w++ {
					for k := 0; k < footprint; k++ {
						if err := m.Register(fmt.Sprintf("w%d_o%d", w, k), adt.NewRegister(int64(0))); err != nil {
							b.Fatal(err)
						}
					}
				}
				var widCtr atomic.Int64
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					w := int(widCtr.Add(1)-1) % maxWorkers
					names := make([]string, footprint)
					for k := range names {
						names[k] = fmt.Sprintf("w%d_o%d", w, k)
					}
					for i := 0; pb.Next(); i++ {
						tx := tree.Root.Child(w*10_000_000 + i)
						for k, x := range names {
							if _, err := m.Acquire(tx, tx.Child(k), x, adt.RegWrite{V: int64(i)}, nil); err != nil {
								b.Fatal(err)
							}
						}
						m.Commit(tx, int64(0))
					}
				})
			})
		}
	}
}

// BenchmarkContendedWakeup measures the cost of one contended
// write→commit→wake cycle on a hot object while `bystanders` unrelated
// waiters are blocked on other objects. A global wake-all disturbs every
// bystander on every commit (each rescans under the manager mutex); with
// per-object queues the commit wakes only the one conflicting waiter, so
// the cost is independent of the bystander count.
func BenchmarkContendedWakeup(b *testing.B) {
	for _, bystanders := range []int{0, 16, 256} {
		b.Run(fmt.Sprintf("bystanders=%d", bystanders), func(b *testing.B) {
			m := newBenchMgr(b, bystanders+1)
			hot := objName(bystanders)
			// Park `bystanders` waiters, each blocked on its own object whose
			// write lock is held by an unrelated transaction. They stay
			// blocked for the whole measured run.
			var parked sync.WaitGroup
			for i := 0; i < bystanders; i++ {
				holder := tree.Root.Child(1_000_000 + i)
				if _, err := m.Acquire(holder, holder.Child(0), objName(i), adt.RegWrite{V: int64(1)}, nil); err != nil {
					b.Fatal(err)
				}
				parked.Add(1)
				go func(i int) {
					defer parked.Done()
					blocked := tree.Root.Child(2_000_000 + i)
					if _, err := m.Acquire(blocked, blocked.Child(0), objName(i), adt.RegWrite{V: int64(2)}, nil); err != nil {
						b.Error(err)
					}
					m.Commit(blocked, int64(0))
				}(i)
			}
			statsBefore := m.Stats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				writer := tree.Root.Child(3_000_000 + 2*i)
				reader := tree.Root.Child(3_000_000 + 2*i + 1)
				if _, err := m.Acquire(writer, writer.Child(0), hot, adt.RegWrite{V: int64(i)}, nil); err != nil {
					b.Fatal(err)
				}
				done := make(chan error, 1)
				go func() {
					_, err := m.Acquire(reader, reader.Child(0), hot, adt.RegRead{}, nil)
					done <- err
				}()
				// Hold the commit until the reader has parked, so every
				// iteration measures a real block→commit→wake cycle.
				for m.queueDepth(hot) == 0 {
					runtime.Gosched()
				}
				m.Commit(writer, int64(0))
				if err := <-done; err != nil {
					b.Fatal(err)
				}
				m.Commit(reader, int64(0))
			}
			b.StopTimer()
			statsAfter := m.Stats()
			reportWakeups(b, statsBefore, statsAfter)
			// Release the parked waiters so goroutines do not leak into the
			// next sub-benchmark.
			for i := 0; i < bystanders; i++ {
				m.Commit(tree.Root.Child(1_000_000+i), int64(0))
			}
			parked.Wait()
		})
	}
}
