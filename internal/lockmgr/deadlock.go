package lockmgr

import "nestedtx/internal/tree"

// The wait-for graph needs two kinds of edges. A waiter blocked by holder
// H is really waiting for every transaction from H up to (but excluding)
// lca(H, access) to commit — only then has the lock been inherited high
// enough to become an ancestor's — so a lock edge goes from the waiting
// transaction to each member of that chain. And a transaction cannot
// commit before its descendants return, so a structural edge goes from
// every proper ancestor of a waiting transaction down to it. Cycles in
// this combined graph are exactly the executions that cannot progress
// without an abort.
//
// The graph is never materialised: successors are enumerated on demand
// from the per-object queues (via the waiting index), and the search
// starts only from the transactions whose outgoing edges the triggering
// event changed — a new cycle must pass through one of them. Detection
// cost therefore scales with the reachable component of the change, not
// with the total number of waiters in the system.
//
// Under sharding the graph is partitioned too: a shard's waiting index
// only knows the wait edges of its own queues. The walk therefore runs in
// one of two modes. The local mode holds a single shard mutex and is
// sound only while every transaction it visits has all its tree's
// waiters in that shard — the striped waiter counts answer that in O(1)
// per node (treeConfined). The first unconfined node aborts the local
// walk before any of its possibly-missing edges could be followed, and
// the caller escalates: drop the shard mutex, take every shard mutex in
// ascending id order (the global shard-lock order), and rerun the same
// DFS over the union of all shards' indexes. Holding all shard mutexes
// makes the snapshot exactly as consistent as the old single-mutex walk,
// and serialises escalated walks against each other and against every
// local walk, so each cycle still elects exactly one victim: two local
// walks in different shards can never see the same cycle (a cycle
// visible to a local walk has every member tree confined to that shard).

// graphView enumerates wait-for edges from either one shard's indexes
// (local, the shard's mutex held) or every shard's (escalated, all
// mutexes held).
type graphView struct {
	m     *Manager
	local *shard // nil in escalated mode
}

func (g graphView) eachWaiter(t tree.TID, f func(*waiter)) {
	if g.local != nil {
		for _, w := range g.local.waiting[t] {
			f(w)
		}
		return
	}
	for _, sh := range g.m.shards {
		for _, w := range sh.waiting[t] {
			f(w)
		}
	}
}

func (g graphView) eachTopWaiting(top tree.TID, f func(tree.TID)) {
	if g.local != nil {
		for u := range g.local.topWaiting[top] {
			f(u)
		}
		return
	}
	for _, sh := range g.m.shards {
		for u := range sh.topWaiting[top] {
			f(u)
		}
	}
}

// succ appends t's wait-for successors to buf and returns it.
func (g graphView) succ(t tree.TID, buf []tree.TID) []tree.TID {
	// Lock edges: for each of t's waits, the holder chains that must
	// commit before the wait can be granted.
	g.eachWaiter(t, func(wt *waiter) {
		ls := wt.ls
		addChain := func(holder tree.TID) {
			lca := tree.LCA(holder, wt.access)
			for u := holder; u != lca && u != tree.Root; u = u.Parent() {
				if u != t {
					buf = append(buf, u)
				}
			}
		}
		for u := range ls.write {
			if !u.IsAncestorOf(wt.access) {
				addChain(u)
			}
		}
		if wt.write {
			for u := range ls.read {
				if !u.IsAncestorOf(wt.access) {
					addChain(u)
				}
			}
		}
	})
	// Structural edges: t is gated on every waiting proper descendant.
	// Descendants share t's top-level ancestor, so only that tree's
	// waiting transactions are scanned.
	g.eachTopWaiting(topOf(t), func(u tree.TID) {
		if t.IsProperAncestorOf(u) {
			buf = append(buf, u)
		}
	})
	return buf
}

// detect looks for a wait-for cycle reachable from the start transactions
// and returns the chosen victim's waiter, or nil. In local mode it
// additionally returns escalate=true (and no victim) the moment it
// reaches a transaction whose tree has waiters outside the local shard —
// the local view might be missing edges of that node, so only the
// all-shard walk can decide.
func (g graphView) detect(starts []tree.TID) (victim *waiter, escalate bool) {
	visited := map[tree.TID]bool{}
	onPath := map[tree.TID]bool{}
	var path []tree.TID
	escalated := false
	var dfs func(t tree.TID) []tree.TID
	dfs = func(t tree.TID) []tree.TID {
		if onPath[t] {
			// Extract the cycle suffix.
			for i, u := range path {
				if u == t {
					return append([]tree.TID(nil), path[i:]...)
				}
			}
			return append([]tree.TID(nil), path...)
		}
		if visited[t] {
			return nil
		}
		if g.local != nil && !g.m.treeConfined(topOf(t), g.local.id) {
			escalated = true
			return nil
		}
		visited[t] = true
		onPath[t] = true
		path = append(path, t)
		for _, u := range g.succ(t, nil) {
			if u == tree.Root {
				continue
			}
			if c := dfs(u); c != nil || escalated {
				return c
			}
		}
		onPath[t] = false
		path = path[:len(path)-1]
		return nil
	}
	var cycle []tree.TID
	for _, s := range starts {
		if cycle = dfs(s); cycle != nil || escalated {
			break
		}
	}
	if escalated {
		return nil, true
	}
	if cycle == nil {
		return nil, false
	}
	// Victim: the deepest transaction in the cycle that is actually
	// waiting, breaking level ties in favour of the latest sibling —
	// path components compare numerically, so T0.10 outranks T0.9.
	for _, t := range cycle {
		g.eachWaiter(t, func(cand *waiter) {
			if victim == nil || cand.tx.Level() > victim.tx.Level() ||
				(cand.tx.Level() == victim.tx.Level() && tree.Compare(cand.tx, victim.tx) > 0) {
				victim = cand
			}
		})
	}
	return victim, false
}

// breakCyclesLocked finds wait-for cycles reachable from the given start
// transactions within this shard and aborts one victim per cycle found.
// It returns true when the walk reached a transaction whose wait edges
// may leave the shard — the caller must then drop sh.mu and run
// breakCyclesGlobal with the same starts. Caller holds sh.mu.
func (sh *shard) breakCyclesLocked(starts []tree.TID) (escalate bool) {
	g := graphView{m: sh.m, local: sh}
	for {
		victim, esc := g.detect(starts)
		if esc {
			return true
		}
		if victim == nil {
			return false
		}
		victim.victim = true
		close(victim.wake)
		sh.dequeueLocked(victim)
		sh.stats.Deadlocks++
	}
}

// breakCyclesGlobal is the escalated walk: it takes every shard mutex in
// ascending id order and runs detection over the union of all shards'
// wait indexes. Callers must hold no shard mutex.
func (m *Manager) breakCyclesGlobal(starts []tree.TID) {
	m.escalations.Add(1)
	for _, sh := range m.shards {
		sh.mu.Lock()
	}
	g := graphView{m: m}
	for {
		victim, _ := g.detect(starts)
		if victim == nil {
			break
		}
		victim.victim = true
		close(victim.wake)
		victim.sh.dequeueLocked(victim)
		victim.sh.stats.Deadlocks++
	}
	for i := len(m.shards) - 1; i >= 0; i-- {
		m.shards[i].mu.Unlock()
	}
}
