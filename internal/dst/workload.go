package dst

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"nestedtx"
	"nestedtx/internal/adt"
)

// SpecKind enumerates the workload generators.
type SpecKind int

const (
	KZipf SpecKind = iota // zipfian-hotspot read/write tree
	KNest                 // deep nesting, sequential + concurrent children
	KTree                 // long-lived mixed tree with virtual think time
	KScan                 // read-only snapshot scan
	KBank                 // transfer between two accounts
)

func (k SpecKind) String() string {
	switch k {
	case KZipf:
		return "zipf"
	case KNest:
		return "nest"
	case KTree:
		return "tree"
	case KScan:
		return "scan"
	case KBank:
		return "bank"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// TxSpec is one planned top-level transaction. Everything the executor
// randomises inside the transaction is drawn from a rand.Rand seeded
// with Seed, so the spec fully determines the transaction's intent (the
// interleaving against other specs is the system under test, and is
// adjudicated by the checker, not by replay equality).
type TxSpec struct {
	Kind   SpecKind
	Seed   int64
	Depth  int
	Fanout int
	Ops    int
	From   int   // bank: source account
	To     int   // bank: destination account
	Amount int64 // bank: transfer amount
}

// Generator plans transactions of one kind. Implementations must be
// pure functions of (rng, scenario): same draws, same specs.
type Generator interface {
	Kind() SpecKind
	Gen(rng *rand.Rand, scn *Scenario) TxSpec
}

// Generators is the registry the planner draws from, indexed by kind.
var Generators = map[SpecKind]Generator{
	KZipf: zipfGen{},
	KNest: nestGen{},
	KTree: treeGen{},
	KScan: scanGen{},
	KBank: bankGen{},
}

type zipfGen struct{}

func (zipfGen) Kind() SpecKind { return KZipf }
func (zipfGen) Gen(rng *rand.Rand, scn *Scenario) TxSpec {
	return TxSpec{
		Kind:   KZipf,
		Seed:   rng.Int63(),
		Depth:  1 + rng.Intn(max(1, scn.MaxDepth)),
		Fanout: max(1, scn.Fanout),
		Ops:    max(1, scn.Ops),
	}
}

type nestGen struct{}

func (nestGen) Kind() SpecKind { return KNest }
func (nestGen) Gen(rng *rand.Rand, scn *Scenario) TxSpec {
	// Deep by construction: at least 3/4 of MaxDepth, up to MaxDepth.
	lo := max(1, scn.MaxDepth*3/4)
	return TxSpec{
		Kind:   KNest,
		Seed:   rng.Int63(),
		Depth:  lo + rng.Intn(scn.MaxDepth-lo+1),
		Fanout: max(1, scn.Fanout),
		Ops:    max(1, scn.Ops),
	}
}

type treeGen struct{}

func (treeGen) Kind() SpecKind { return KTree }
func (treeGen) Gen(rng *rand.Rand, scn *Scenario) TxSpec {
	return TxSpec{
		Kind:   KTree,
		Seed:   rng.Int63(),
		Depth:  2 + rng.Intn(max(1, scn.MaxDepth-1)),
		Fanout: max(1, scn.Fanout),
		Ops:    max(1, scn.Ops),
	}
}

type scanGen struct{}

func (scanGen) Kind() SpecKind { return KScan }
func (scanGen) Gen(rng *rand.Rand, scn *Scenario) TxSpec {
	return TxSpec{Kind: KScan, Seed: rng.Int63(), Ops: max(1, scn.Ops)}
}

type bankGen struct{}

func (bankGen) Kind() SpecKind { return KBank }
func (bankGen) Gen(rng *rand.Rand, scn *Scenario) TxSpec {
	pick := accountPicker(rng, scn)
	from := pick()
	to := pick()
	for to == from {
		to = pick()
	}
	return TxSpec{
		Kind:   KBank,
		Seed:   rng.Int63(),
		From:   from,
		To:     to,
		Amount: 1 + rng.Int63n(10),
	}
}

// accountPicker draws account indices — zipfian when the scenario is
// skewed, uniform otherwise.
func accountPicker(rng *rand.Rand, scn *Scenario) func() int {
	if scn.ZipfS > 1 {
		z := rand.NewZipf(rng, scn.ZipfS, 1, uint64(scn.Accounts-1))
		return func() int { return int(z.Uint64()) }
	}
	return func() int { return rng.Intn(scn.Accounts) }
}

// Plan is the deterministic workload plan: the main-phase specs, the
// post-phase specs (run after recovery or promotion), and the FNV-1a
// digest over both that the event log records.
type Plan struct {
	Specs  []TxSpec
	Post   []TxSpec
	Digest uint64
	Kinds  map[SpecKind]int
}

// buildPlan draws the whole workload from rng. The plan — not the
// execution — is the deterministic artifact: two runs with the same
// seed build byte-identical plans.
func buildPlan(scn *Scenario, rng *rand.Rand) *Plan {
	p := &Plan{Kinds: make(map[SpecKind]int)}
	draw := func() TxSpec {
		r := rng.Intn(100)
		var k SpecKind
		switch m := scn.Mix; {
		case r < m.Zipf:
			k = KZipf
		case r < m.Zipf+m.Nest:
			k = KNest
		case r < m.Zipf+m.Nest+m.Tree:
			k = KTree
		case r < m.Zipf+m.Nest+m.Tree+m.Scan:
			k = KScan
		default:
			k = KBank
		}
		return Generators[k].Gen(rng, scn)
	}
	for i := 0; i < scn.Txs; i++ {
		s := draw()
		p.Kinds[s.Kind]++
		p.Specs = append(p.Specs, s)
	}
	for i := 0; i < scn.PostTxs; i++ {
		p.Post = append(p.Post, draw())
	}
	p.Digest = digest(p.Specs, p.Post)
	return p
}

func digest(lists ...[]TxSpec) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	for _, specs := range lists {
		for _, s := range specs {
			put(int64(s.Kind))
			put(s.Seed)
			put(int64(s.Depth))
			put(int64(s.Fanout))
			put(int64(s.Ops))
			put(int64(s.From))
			put(int64(s.To))
			put(s.Amount)
		}
	}
	return h.Sum64()
}

// execStats counts what the executor observed. These are outcomes of
// the race being tested, so they appear in the Result but never in the
// deterministic event log.
type execStats struct {
	Committed int64 // top-level locking transactions committed
	Aborted   int64 // top-level transactions that gave up after retries
	Scans     int64 // read-only snapshot transactions completed
	Writes    int64 // committed specs that performed writes (acked)
}

// runSpecs drives the plan through an embedded manager with
// scn.Workers goroutines. Spec-to-worker assignment is racy on
// purpose — the interleaving is the input the checker adjudicates.
// A non-nil invariant error (bank conservation broken inside a
// snapshot) aborts the run.
func runSpecs(env *simEnv, m *nestedtx.Manager, specs []TxSpec) (execStats, error) {
	var st execStats
	var firstErr atomic.Value
	jobs := make(chan TxSpec)
	var wg sync.WaitGroup
	for w := 0; w < env.scn.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for spec := range jobs {
				if err := runSpec(env, m, spec, &st); err != nil {
					firstErr.CompareAndSwap(nil, err) //nolint:errcheck
				}
				if env.scn.ThinkMax > 0 {
					env.clk.Sleep(time.Duration(rand.New(rand.NewSource(spec.Seed ^ 0x5eed)).Int63n(int64(env.scn.ThinkMax))))
				}
			}
		}()
	}
	for _, s := range specs {
		jobs <- s
	}
	close(jobs)
	wg.Wait()
	if err, ok := firstErr.Load().(error); ok && err != nil {
		return st, err
	}
	return st, nil
}

// runSpec executes one planned transaction. Commit/abort losses from
// contention or an armed crash are expected outcomes and counted, not
// errors; only invariant violations surface as errors.
func runSpec(env *simEnv, m *nestedtx.Manager, spec TxSpec, st *execStats) error {
	rng := rand.New(rand.NewSource(spec.Seed))
	scn := env.scn
	switch spec.Kind {
	case KScan:
		if err := runScan(env, m, spec, rng); err != nil {
			return err
		}
		atomic.AddInt64(&st.Scans, 1)
		return nil
	case KBank:
		err := m.RunRetry(scn.Retries, func(tx *nestedtx.Tx) error {
			return execBank(tx, spec)
		})
		countOutcome(st, err, false)
		return nil
	default:
		err := m.RunRetry(scn.Retries, func(tx *nestedtx.Tx) error {
			if scn.Crash {
				// Durable accounting: every write transaction bumps the
				// global commit counter so recovery can cross-check the
				// surviving prefix.
				if _, err := tx.Write("txctr", adt.CtrAdd{Delta: 1}); err != nil {
					return err
				}
			}
			return execTree(env, tx, spec, rng, 1)
		})
		// Writes counts transactions that bumped txctr — the acked set
		// the crash-recovery prefix check compares against.
		countOutcome(st, err, scn.Crash)
		return nil
	}
}

func countOutcome(st *execStats, err error, writes bool) {
	if err != nil {
		atomic.AddInt64(&st.Aborted, 1)
		return
	}
	atomic.AddInt64(&st.Committed, 1)
	if writes {
		atomic.AddInt64(&st.Writes, 1)
	}
}

// execTree runs one level of a read/write tree: Ops accesses at this
// level, then Fanout children (sequential or concurrent, with voluntary
// aborts) down to spec.Depth.
func execTree(env *simEnv, tx *nestedtx.Tx, spec TxSpec, rng *rand.Rand, level int) error {
	scn := env.scn
	pick := objectPicker(rng, scn, spec)
	for i := 0; i < spec.Ops; i++ {
		obj := pick()
		var err error
		if rng.Intn(100) < scn.ReadPct {
			_, err = tx.Read(obj, adt.CtrGet{})
		} else {
			_, err = tx.Write(obj, adt.CtrAdd{Delta: 1})
		}
		if err != nil {
			return err
		}
	}
	if level >= spec.Depth {
		return nil
	}
	if spec.Kind == KTree && scn.ThinkMax > 0 {
		// Long-lived tree: hold locks across a virtual pause.
		env.clk.Sleep(time.Duration(rng.Int63n(int64(scn.ThinkMax))))
	}
	concurrent := spec.Kind == KNest && rng.Intn(2) == 0
	if concurrent {
		handles := make([]*nestedtx.Handle, 0, spec.Fanout)
		for c := 0; c < spec.Fanout; c++ {
			crng := rand.New(rand.NewSource(rng.Int63()))
			handles = append(handles, tx.Go(func(s *nestedtx.Tx) error {
				return execChild(env, s, spec, crng, level+1)
			}))
		}
		for _, h := range handles {
			if err := h.Wait(); err != nil && !wantAbort(err) {
				return err
			}
		}
		return nil
	}
	for c := 0; c < spec.Fanout; c++ {
		crng := rand.New(rand.NewSource(rng.Int63()))
		if err := tx.Sub(func(s *nestedtx.Tx) error {
			return execChild(env, s, spec, crng, level+1)
		}); err != nil && !wantAbort(err) {
			return err
		}
	}
	return nil
}

// errVoluntaryAbort marks a planned subtransaction abort — the paper's
// "aborted descendant leaves no trace" case, absorbed by the parent.
var errVoluntaryAbort = fmt.Errorf("dst: voluntary subtransaction abort")

func wantAbort(err error) bool {
	return errors.Is(err, errVoluntaryAbort) || errors.Is(err, nestedtx.ErrDeadlock)
}

func execChild(env *simEnv, tx *nestedtx.Tx, spec TxSpec, rng *rand.Rand, level int) error {
	if env.scn.AbortPct > 0 && rng.Intn(100) < env.scn.AbortPct {
		// Do some work first so the abort has something to undo.
		if _, err := tx.Write(objectPicker(rng, env.scn, spec)(), adt.CtrAdd{Delta: 1}); err != nil {
			return err
		}
		return errVoluntaryAbort
	}
	return execTree(env, tx, spec, rng, level)
}

// objectPicker draws counter names — zipfian for hotspot specs on a
// skewed scenario, uniform otherwise.
func objectPicker(rng *rand.Rand, scn *Scenario, spec TxSpec) func() string {
	if spec.Kind == KZipf && scn.ZipfS > 1 && scn.Objects > 1 {
		z := rand.NewZipf(rng, scn.ZipfS, 1, uint64(scn.Objects-1))
		return func() string { return objName(int(z.Uint64())) }
	}
	return func() string { return objName(rng.Intn(max(1, scn.Objects))) }
}

func objName(i int) string  { return fmt.Sprintf("obj%d", i) }
func acctName(i int) string { return fmt.Sprintf("acct%d", i) }

// execBank transfers spec.Amount from one account to another,
// depositing only when the withdrawal succeeded — conservation of the
// total balance is the scenario invariant.
func execBank(tx *nestedtx.Tx, spec TxSpec) error {
	v, err := tx.Write(acctName(spec.From), adt.AcctWithdraw{Amount: spec.Amount})
	if err != nil {
		return err
	}
	if !v.(adt.AcctResult).OK {
		return nil // refused: insufficient funds, balance untouched
	}
	_, err = tx.Write(acctName(spec.To), adt.AcctDeposit{Amount: spec.Amount})
	return err
}

// runScan is the read-only snapshot transaction. On a small bank it
// audits conservation across every account inside one snapshot — the
// strongest use of snapshot isolation the system offers. On large
// banks and counter universes it samples reads.
func runScan(env *simEnv, m *nestedtx.Manager, spec TxSpec, rng *rand.Rand) error {
	scn := env.scn
	return m.RunReadOnly(func(s *nestedtx.Snapshot) error {
		if scn.Accounts >= 2 && scn.Accounts <= 1024 {
			var sum int64
			for i := 0; i < scn.Accounts; i++ {
				v, err := s.Read(acctName(i), adt.AcctBalance{})
				if err != nil {
					return err
				}
				sum += v.(int64)
			}
			if want := int64(scn.Accounts) * scn.Balance; sum != want {
				return fmt.Errorf("dst: conservation broken inside snapshot %s: sum %d, want %d", s.ID(), sum, want)
			}
			return nil
		}
		n := spec.Ops * 8
		for i := 0; i < n; i++ {
			var err error
			if scn.Accounts > 0 {
				_, err = s.Read(acctName(rng.Intn(scn.Accounts)), adt.AcctBalance{})
			} else {
				_, err = s.Read(objName(rng.Intn(max(1, scn.Objects))), adt.CtrGet{})
			}
			if err != nil {
				return err
			}
		}
		return nil
	})
}

// newSpecRNG derives the transaction-local random stream from a spec's
// planned seed.
func newSpecRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
