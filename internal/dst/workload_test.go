package dst

import (
	"math/rand"
	"testing"
)

// TestZipfSkew: the zipfian object picker must actually skew — the
// hottest object takes a large multiple of the uniform share, and a
// small head of the universe absorbs most accesses.
func TestZipfSkew(t *testing.T) {
	scn, ok := Lookup("hotspot")
	if !ok {
		t.Fatal("hotspot scenario missing")
	}
	rng := rand.New(rand.NewSource(42))
	pick := objectPicker(rng, &scn, TxSpec{Kind: KZipf})
	const draws = 100000
	counts := make(map[string]int)
	for i := 0; i < draws; i++ {
		counts[pick()]++
	}
	uniform := float64(draws) / float64(scn.Objects)
	hottest := counts[objName(0)]
	if float64(hottest) < 4*uniform {
		t.Fatalf("zipf s=%.2f: hottest object got %d of %d draws, want > 4x the uniform share %.0f",
			scn.ZipfS, hottest, draws, uniform)
	}
	head := 0
	for i := 0; i < 8; i++ {
		head += counts[objName(i)]
	}
	if float64(head) < 0.5*draws {
		t.Fatalf("zipf head too flat: top 8 of %d objects got %d/%d draws, want >= 50%%",
			scn.Objects, head, draws)
	}
}

// TestUniformPickerCoversUniverse: with no skew every object should see
// roughly its share.
func TestUniformPickerCoversUniverse(t *testing.T) {
	scn := Scenario{Objects: 16}
	rng := rand.New(rand.NewSource(7))
	pick := objectPicker(rng, &scn, TxSpec{Kind: KTree})
	const draws = 32000
	counts := make(map[string]int)
	for i := 0; i < draws; i++ {
		counts[pick()]++
	}
	want := draws / scn.Objects
	for i := 0; i < scn.Objects; i++ {
		got := counts[objName(i)]
		if got < want/2 || got > want*2 {
			t.Fatalf("uniform picker: obj%d got %d draws, want about %d", i, got, want)
		}
	}
}

// TestNestingDepthHistogram: the deep-nesting generator must reach the
// configured maximum depth and never plan shallow trees.
func TestNestingDepthHistogram(t *testing.T) {
	scn, ok := Lookup("deep-nesting")
	if !ok {
		t.Fatal("deep-nesting scenario missing")
	}
	rng := rand.New(rand.NewSource(3))
	hist := make(map[int]int)
	for i := 0; i < 2000; i++ {
		s := Generators[KNest].Gen(rng, &scn)
		hist[s.Depth]++
	}
	if hist[scn.MaxDepth] == 0 {
		t.Fatalf("no generated tree reaches MaxDepth=%d; histogram %v", scn.MaxDepth, hist)
	}
	lo := scn.MaxDepth * 3 / 4
	for d, n := range hist {
		if d < lo || d > scn.MaxDepth {
			t.Fatalf("depth %d (x%d) outside [%d,%d]; histogram %v", d, n, lo, scn.MaxDepth, hist)
		}
	}
	if scn.MaxDepth < 10 {
		t.Fatalf("deep-nesting MaxDepth=%d, issue requires 10+ levels", scn.MaxDepth)
	}
}

// TestBankGenerator: transfers must have distinct in-range endpoints and
// positive amounts — the preconditions of the conservation invariant.
func TestBankGenerator(t *testing.T) {
	scn, ok := Lookup("bank")
	if !ok {
		t.Fatal("bank scenario missing")
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 5000; i++ {
		s := Generators[KBank].Gen(rng, &scn)
		if s.From == s.To {
			t.Fatalf("transfer %d: From == To == %d", i, s.From)
		}
		if s.From < 0 || s.From >= scn.Accounts || s.To < 0 || s.To >= scn.Accounts {
			t.Fatalf("transfer %d: endpoints %d->%d outside [0,%d)", i, s.From, s.To, scn.Accounts)
		}
		if s.Amount <= 0 {
			t.Fatalf("transfer %d: non-positive amount %d", i, s.Amount)
		}
	}
}

// TestPlanDeterministicAndMixed: same seed, same plan (digest equality);
// the drawn kind counts follow the scenario mix; different seeds
// diverge.
func TestPlanDeterministicAndMixed(t *testing.T) {
	for _, scn := range Scenarios() {
		scn := scn
		p1 := buildPlan(&scn, rand.New(rand.NewSource(5)))
		p2 := buildPlan(&scn, rand.New(rand.NewSource(5)))
		if p1.Digest != p2.Digest {
			t.Fatalf("%s: same seed, different plans: %016x vs %016x", scn.Name, p1.Digest, p2.Digest)
		}
		p3 := buildPlan(&scn, rand.New(rand.NewSource(6)))
		if p1.Digest == p3.Digest {
			t.Fatalf("%s: different seeds produced identical plans", scn.Name)
		}
		total := 0
		for _, n := range p1.Kinds {
			total += n
		}
		if total != scn.Txs {
			t.Fatalf("%s: kind counts sum to %d, want %d", scn.Name, total, scn.Txs)
		}
		check := func(kind SpecKind, pct int) {
			got := float64(p1.Kinds[kind]) / float64(scn.Txs) * 100
			want := float64(pct)
			if want == 0 {
				if got != 0 {
					t.Fatalf("%s: mix excludes %v but plan has %d", scn.Name, kind, p1.Kinds[kind])
				}
				return
			}
			if got < want-15 || got > want+15 {
				t.Fatalf("%s: kind %v is %.0f%% of the plan, mix says %d%%", scn.Name, kind, got, pct)
			}
		}
		check(KZipf, scn.Mix.Zipf)
		check(KNest, scn.Mix.Nest)
		check(KTree, scn.Mix.Tree)
		check(KScan, scn.Mix.Scan)
		check(KBank, scn.Mix.Bank)
	}
}

// TestScenarioMatrixValid: every checked-in scenario validates and is
// findable by name.
func TestScenarioMatrixValid(t *testing.T) {
	names := Names()
	if len(names) < 5 {
		t.Fatalf("matrix has %d scenarios, issue requires >= 5", len(names))
	}
	for _, scn := range Scenarios() {
		if err := scn.validate(); err != nil {
			t.Errorf("%s: %v", scn.Name, err)
		}
		if _, ok := Lookup(scn.Name); !ok {
			t.Errorf("%s: Lookup cannot find it", scn.Name)
		}
	}
	if _, ok := Lookup("no-such-scenario"); ok {
		t.Error("Lookup invented a scenario")
	}
}
