package dst

import (
	"fmt"
	"sort"
	"time"
)

// Mix is the percentage composition of a scenario's transaction plan.
// Fields must sum to 100; buildPlan draws each transaction's kind from
// this distribution with the plan RNG.
type Mix struct {
	Zipf int // zipfian-hotspot read/write trees
	Nest int // deep sequential/concurrent nesting (MaxDepth levels)
	Tree int // long-lived mixed read/write trees with virtual think time
	Scan int // read-only snapshot scans (RunReadOnly)
	Bank int // bank transfers between two accounts
}

func (m Mix) total() int { return m.Zipf + m.Nest + m.Tree + m.Scan + m.Bank }

// Scenario is one named cell of the simulation matrix: a workload
// shape, an environment (embedded, durable, or replicated-networked)
// and a fault plan. All randomness inside a run is derived from the
// Sim seed; the Scenario itself is pure configuration.
type Scenario struct {
	Name string
	Doc  string

	// Workload plane.
	Objects  int   // counter universe obj0..objN-1
	Accounts int   // bank accounts acct0..acctN-1
	Balance  int64 // initial balance per account
	Txs      int   // top-level transactions in the plan
	Workers  int   // executor goroutines
	Retries  int   // RunRetry attempts per transaction
	Mix      Mix
	MaxDepth int     // nesting depth for Nest specs (paper trees)
	Fanout   int     // children per interior transaction
	Ops      int     // accesses per transaction level
	ReadPct  int     // read fraction of tree accesses
	AbortPct int     // voluntary subtransaction abort rate
	ZipfS    float64 // zipf skew (>1); 0 means uniform object picks
	ThinkMax time.Duration // max virtual think time between a worker's txs

	// Environment.
	Durable      bool          // write-ahead logged manager over a MemFS
	SyncWindow   time.Duration // WAL group-commit window (virtual time)
	SegmentBytes int64         // WAL segment size; 0 = draw a small one
	Net          bool          // leader + replica + faultnet proxy + client pool

	// Fault plane.
	Crash       bool // arm FaultFS kill-at-byte during the workload
	BitRot      bool // flip one byte of a surviving segment before recovery
	Checkpoints int  // checkpoint fault events at drawn virtual times
	Partitions  int  // partition/heal cycles on the replication link (Net)
	NetLatency  time.Duration
	NetJitter   time.Duration

	// Post-phase: transactions run after recovery (Crash) or after
	// promotion (Net) — includes snapshot scans across the crash.
	PostTxs int
}

// Scale returns a copy of the scenario with its object universe and
// transaction count multiplied by f (at least 1 each) — used to run the
// shape of a large scenario at test size.
func (s Scenario) Scale(f float64) Scenario {
	mul := func(n int) int {
		if n <= 0 {
			return n
		}
		if m := int(float64(n) * f); m > 0 {
			return m
		}
		return 1
	}
	s.Objects = mul(s.Objects)
	s.Accounts = mul(s.Accounts)
	s.Txs = mul(s.Txs)
	s.PostTxs = mul(s.PostTxs)
	return s
}

// validate rejects configurations the planner cannot honour.
func (s Scenario) validate() error {
	if s.Txs <= 0 || s.Workers <= 0 {
		return fmt.Errorf("dst: scenario %s: Txs and Workers must be positive", s.Name)
	}
	if s.Mix.total() != 100 {
		return fmt.Errorf("dst: scenario %s: mix sums to %d, want 100", s.Name, s.Mix.total())
	}
	if s.Mix.Bank > 0 && s.Accounts < 2 {
		return fmt.Errorf("dst: scenario %s: bank mix needs >= 2 accounts", s.Name)
	}
	if (s.Mix.Zipf+s.Mix.Nest+s.Mix.Tree > 0) && s.Objects <= 0 {
		return fmt.Errorf("dst: scenario %s: tree mixes need objects", s.Name)
	}
	if s.Net && !s.Durable {
		return fmt.Errorf("dst: scenario %s: Net implies Durable", s.Name)
	}
	if s.Crash && !s.Durable {
		return fmt.Errorf("dst: scenario %s: Crash needs Durable", s.Name)
	}
	return nil
}

// Scenarios returns the scenario matrix in a stable order.
func Scenarios() []Scenario {
	m := make([]Scenario, len(matrix))
	copy(m, matrix)
	return m
}

// Names returns the sorted scenario names.
func Names() []string {
	names := make([]string, 0, len(matrix))
	for _, s := range matrix {
		names = append(names, s.Name)
	}
	sort.Strings(names)
	return names
}

// Lookup finds a scenario by name.
func Lookup(name string) (Scenario, bool) {
	for _, s := range matrix {
		if s.Name == name {
			return s, true
		}
	}
	return Scenario{}, false
}

var matrix = []Scenario{
	{
		Name:    "hotspot",
		Doc:     "zipfian contention on a small counter universe, 25% snapshot scans",
		Objects: 64, Txs: 200, Workers: 8, Retries: 6,
		Mix:      Mix{Zipf: 75, Scan: 25},
		MaxDepth: 2, Fanout: 2, Ops: 4, ReadPct: 50, AbortPct: 5,
		ZipfS: 1.2, ThinkMax: 200 * time.Microsecond,
	},
	{
		Name:    "deep-nesting",
		Doc:     "chains 12 levels deep, sequential and concurrent children, voluntary aborts",
		Objects: 128, Txs: 40, Workers: 6, Retries: 6,
		Mix:      Mix{Nest: 80, Scan: 20},
		MaxDepth: 12, Fanout: 1, Ops: 2, ReadPct: 60, AbortPct: 10,
	},
	{
		Name:    "mixed-trees",
		Doc:     "long-lived mixed read/write trees with virtual think time, plus hotspots and scans",
		Objects: 96, Txs: 80, Workers: 8, Retries: 6,
		Mix:      Mix{Zipf: 30, Nest: 20, Tree: 30, Scan: 20},
		MaxDepth: 4, Fanout: 2, Ops: 3, ReadPct: 50, AbortPct: 5,
		ZipfS: 1.1, ThinkMax: 500 * time.Microsecond,
	},
	{
		Name:     "bank",
		Doc:      "transfers between 256 accounts; full-scan conservation audits inside snapshots",
		Accounts: 256, Balance: 1000, Txs: 300, Workers: 8, Retries: 6,
		Mix: Mix{Bank: 80, Scan: 20},
	},
	{
		Name:     "bank-xl",
		Doc:      "conservation at scale: 1M+ accounts, zipfian transfer endpoints, sampled scans",
		Accounts: 1 << 20, Balance: 100, Txs: 250, Workers: 8, Retries: 6,
		Mix:   Mix{Bank: 90, Scan: 10},
		ZipfS: 1.1,
	},
	{
		Name:    "crash-recovery",
		Doc:     "kill-at-byte during the workload; recover, Recovery.Verify, snapshot scans across the crash",
		Objects: 32, Txs: 200, Workers: 4, Retries: 4,
		Mix:      Mix{Zipf: 60, Nest: 20, Scan: 20},
		MaxDepth: 4, Fanout: 2, Ops: 3, ReadPct: 50, AbortPct: 5,
		ZipfS:   1.2,
		Durable: true, Crash: true, Checkpoints: 1, PostTxs: 60,
	},
	{
		Name:    "crash-bitrot-checkpoint",
		Doc:     "crash + one flipped byte + checkpoints racing commits; recovery serves the surviving prefix",
		Objects: 32, Txs: 200, Workers: 4, Retries: 4,
		Mix:      Mix{Zipf: 60, Nest: 20, Scan: 20},
		MaxDepth: 4, Fanout: 2, Ops: 3, ReadPct: 50, AbortPct: 5,
		ZipfS:   1.2,
		Durable: true, Crash: true, BitRot: true, Checkpoints: 3, PostTxs: 60,
	},
	{
		Name:    "failover-chaos",
		Doc:     "leader + replica; partitions on the replication link, leader death, verified promotion",
		Objects: 16, Txs: 300, Workers: 6, Retries: 8,
		Mix:      Mix{Zipf: 80, Scan: 20},
		MaxDepth: 2, Fanout: 1, Ops: 2, ReadPct: 40,
		ZipfS: 1.3, ThinkMax: 300 * time.Microsecond,
		Durable: true, Net: true, Partitions: 3,
		NetLatency: 200 * time.Microsecond, NetJitter: 300 * time.Microsecond,
		PostTxs: 40,
	},
	{
		Name:    "failover-rot",
		Doc:     "partitioned replication plus a flipped byte in the replica's log; promotion serves the verified prefix",
		Objects: 16, Txs: 250, Workers: 6, Retries: 8,
		Mix:      Mix{Zipf: 80, Scan: 20},
		MaxDepth: 2, Fanout: 1, Ops: 2, ReadPct: 40,
		ZipfS: 1.3, ThinkMax: 300 * time.Microsecond,
		Durable: true, Net: true, BitRot: true, Partitions: 2,
		NetLatency: 200 * time.Microsecond, NetJitter: 300 * time.Microsecond,
		PostTxs: 40,
	},
}
