// Package dst is the deterministic whole-system simulator: one seed
// drives a virtual clock, a planned fault schedule and a planned
// workload over the full stack — embedded managers, durable managers
// over an in-memory fault-injecting file system, and a replicated
// leader/follower pair behind a faultnet proxy.
//
// # What "deterministic" means here
//
// The simulator determinizes every *decision plane*: the workload plan
// (which transactions, touching which objects, nested how deep), the
// fault plan (checkpoint times, partition windows, the kill-at-byte
// budget, the bit-rot draws) and virtual time (sleeps, backoffs and
// group-commit windows park on a deadline heap instead of the wall
// clock). Two runs with the same seed therefore plan byte-identical
// work and byte-identical faults, and the event log — which records
// exactly the decision planes plus the final verdict — is
// byte-identical across runs.
//
// What is *not* replayed bit-for-bit is the goroutine interleaving of
// the execution itself: the Go scheduler still chooses which planned
// transaction wins each lock race. That residual nondeterminism is the
// system under test, and it is adjudicated the way the paper
// adjudicates it — every run ends by machine-checking the observed
// history against the S9 serial-correctness checker (Manager.Verify /
// Recovery.Verify), so any interleaving the locking discipline should
// have prevented fails the run regardless of which seed produced it.
//
// Every failing run prints a one-line reproduction:
//
//	txdst -scenario crash-bitrot-checkpoint -seed 17
package dst

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"nestedtx"
	"nestedtx/internal/adt"
	"nestedtx/internal/dst/clock"
	"nestedtx/internal/wal"
)

// Sim is one simulation run: a scenario plus the seed that decides
// everything else.
type Sim struct {
	Scenario Scenario
	Seed     int64
	// Grain is the real-time poll interval of the virtual clock's
	// auto-advance loop; it controls only how fast simulated time moves,
	// never which virtual timestamps are assigned. Zero means 100µs.
	Grain time.Duration
}

// Result is the outcome of a run. Log is the deterministic event log
// (identical across runs with the same scenario and seed); the
// execution counters are outcomes of the scheduling race and are
// reported here, outside the log.
type Result struct {
	Scenario string
	Seed     int64
	Stats    execStats
	Post     execStats // post-recovery / post-promotion phase
	Err      error
	Log      []byte
	Repro    string // one-line reproduction command
}

// Pass reports whether the run verified cleanly.
func (r *Result) Pass() bool { return r.Err == nil }

// simEnv is the per-run context threaded through the planes.
type simEnv struct {
	scn *Scenario
	clk *clock.Virtual
	rng *rand.Rand // master; used only to derive plane seeds
	log bytes.Buffer
}

func (e *simEnv) logf(format string, args ...any) {
	fmt.Fprintf(&e.log, format+"\n", args...)
}

// New returns a Sim for the named scenario.
func New(scn Scenario, seed int64) *Sim { return &Sim{Scenario: scn, Seed: seed} }

// Run executes the simulation: plan, fault-schedule, execute, verify.
func (s *Sim) Run() *Result {
	res := &Result{
		Scenario: s.Scenario.Name,
		Seed:     s.Seed,
		Repro:    fmt.Sprintf("txdst -scenario %s -seed %d", s.Scenario.Name, s.Seed),
	}
	scn := s.Scenario
	if err := scn.validate(); err != nil {
		res.Err = err
		return res
	}

	env := &simEnv{
		scn: &scn,
		clk: clock.NewVirtual(time.Time{}),
		rng: rand.New(rand.NewSource(s.Seed)),
	}
	defer env.clk.Stop()
	grain := s.Grain
	if grain <= 0 {
		grain = 100 * time.Microsecond
	}
	env.clk.AutoAdvance(grain)

	// Derive one RNG per decision plane from the master seed, so adding
	// draws to one plane never perturbs another.
	planRNG := rand.New(rand.NewSource(env.rng.Int63()))
	faultRNG := rand.New(rand.NewSource(env.rng.Int63()))

	plan := buildPlan(&scn, planRNG)
	faults := planFaults(&scn, faultRNG)

	// The event log records the decision planes up front, the verdict at
	// the end, and nothing execution-order-dependent in between.
	env.logf("dst scenario=%s seed=%d", scn.Name, s.Seed)
	env.logf("universe objects=%d accounts=%d balance=%d", scn.Objects, scn.Accounts, scn.Balance)
	env.logf("plan txs=%d post=%d workers=%d digest=%016x", len(plan.Specs), len(plan.Post), scn.Workers, plan.Digest)
	env.logf("plan kinds zipf=%d nest=%d tree=%d scan=%d bank=%d",
		plan.Kinds[KZipf], plan.Kinds[KNest], plan.Kinds[KTree], plan.Kinds[KScan], plan.Kinds[KBank])
	if scn.Durable {
		env.logf("wal window=%s segbytes=%d", faults.SyncWindow, faults.SegmentBytes)
	}
	if scn.Net {
		env.logf("net latency=%s jitter=%s seed=%d", scn.NetLatency, scn.NetJitter, faults.NetSeed)
	}
	for _, ev := range faults.Events {
		env.logf("fault t=%s %s", ev.At, ev.Kind)
	}
	if scn.Crash {
		mode := "torn"
		if faults.FailClosed {
			mode = "fail-closed"
		}
		env.logf("fault crash after=%dB mode=%s", faults.CrashAfter, mode)
	}
	if scn.BitRot {
		env.logf("fault bitrot seg-draw=%d off-draw=%d", faults.RotSeg, faults.RotOff)
	}

	var err error
	switch {
	case scn.Net:
		err = runNet(env, plan, faults, res)
	case scn.Durable:
		err = runDurable(env, plan, faults, res)
	default:
		err = runMem(env, plan, res)
	}
	if err != nil {
		env.logf("verdict fail")
		res.Err = fmt.Errorf("%w\nreproduce: %s", err, res.Repro)
	} else {
		env.logf("verdict pass")
	}
	res.Log = append([]byte(nil), env.log.Bytes()...)
	return res
}

// registerUniverse defines the scenario's objects on a manager.
func registerUniverse(m *nestedtx.Manager, scn *Scenario) error {
	for i := 0; i < scn.Objects; i++ {
		if err := m.Register(objName(i), adt.Counter{}); err != nil {
			return err
		}
	}
	for i := 0; i < scn.Accounts; i++ {
		if err := m.Register(acctName(i), adt.Account{Balance: scn.Balance}); err != nil {
			return err
		}
	}
	if scn.Crash {
		if err := m.Register("txctr", adt.Counter{}); err != nil {
			return err
		}
	}
	return nil
}

// auditConservation sums every account outside the formal history (so
// the audit itself does not bloat the checker's schedule) and compares
// against the invariant total.
func auditConservation(m *nestedtx.Manager, scn *Scenario) error {
	if scn.Accounts < 2 {
		return nil
	}
	var sum int64
	for i := 0; i < scn.Accounts; i++ {
		st, err := m.State(acctName(i))
		if err != nil {
			return fmt.Errorf("dst: audit: %w", err)
		}
		sum += st.(adt.Account).Balance
	}
	if want := int64(scn.Accounts) * scn.Balance; sum != want {
		return fmt.Errorf("dst: conservation broken: accounts sum to %d, want %d", sum, want)
	}
	return nil
}

// runMem is the embedded environment: a recording manager, the full
// workload, then the complete machine check.
func runMem(env *simEnv, plan *Plan, res *Result) error {
	m := nestedtx.NewManager(nestedtx.WithRecording(), nestedtx.WithClock(env.clk))
	if err := registerUniverse(m, env.scn); err != nil {
		return err
	}
	st, err := runSpecs(env, m, plan.Specs)
	res.Stats = st
	if err != nil {
		return err
	}
	if err := auditConservation(m, env.scn); err != nil {
		return err
	}
	if err := m.CheckInvariants(); err != nil {
		return fmt.Errorf("dst: lock-table invariants: %w", err)
	}
	if err := m.Verify(); err != nil {
		return fmt.Errorf("dst: history rejected: %w", err)
	}
	return nil
}

// runDurable is the crash environment: a durable manager over a
// FaultFS that dies at a planned byte of the write stream, optional
// bit rot on the survivors, recovery, Recovery.Verify, prefix checks,
// and a recorded post-recovery phase with snapshot scans.
func runDurable(env *simEnv, plan *Plan, faults *faultPlan, res *Result) error {
	scn := env.scn
	mem := wal.NewMemFS()
	ffs := wal.NewFaultFS(mem)
	ffs.SetClock(env.clk)
	const dir = "sim"

	m, _, err := nestedtx.OpenDurable(dir, nestedtx.DurableOptions{
		FS:           ffs,
		SyncWindow:   faults.SyncWindow,
		SegmentBytes: faults.SegmentBytes,
		Clock:        env.clk,
	}, nestedtx.WithClock(env.clk))
	if err != nil {
		return fmt.Errorf("dst: open durable: %w", err)
	}
	if err := registerUniverse(m, scn); err != nil {
		return fmt.Errorf("dst: register: %w", err)
	}
	// Arm the crash only after registration so the recovered universe is
	// always complete; the budget still lands crashes before, inside and
	// after checkpoint writes.
	if scn.Crash {
		if faults.FailClosed {
			ffs.FailAfter(faults.CrashAfter)
		} else {
			ffs.CrashAfter(faults.CrashAfter)
		}
	}

	wait := driveFaults(env, faults, faultActions{
		Checkpoint: func() { _ = m.Checkpoint() },
	})
	st, err := runSpecs(env, m, plan.Specs)
	res.Stats = st
	wait()
	if err != nil {
		return err
	}
	_ = m.CloseWAL() // expected to fail once the fault latched

	if scn.BitRot {
		applyBitRot(mem, dir, faults)
	}

	// Recover from the surviving bytes — the fault injector died with
	// the process — and machine-check the recovered history (Theorem 34
	// across the crash).
	m2, rec, err := nestedtx.OpenDurable(dir, nestedtx.DurableOptions{FS: mem},
		nestedtx.WithRecording(), nestedtx.WithClock(env.clk))
	if err != nil {
		return fmt.Errorf("dst: recovery: %w", err)
	}
	defer m2.CloseWAL()
	if err := rec.Verify(); err != nil {
		return fmt.Errorf("dst: recovered history rejected: %w", err)
	}
	if err := checkCommitPrefix(rec, st, scn); err != nil {
		return err
	}

	// Post-crash phase: the recovered manager keeps serving — snapshot
	// scans across the crash boundary plus fresh commits, then the full
	// machine check of the new epoch.
	post, err := runSpecs(env, m2, plan.Post)
	res.Post = post
	if err != nil {
		return err
	}
	if err := m2.CheckInvariants(); err != nil {
		return fmt.Errorf("dst: post-recovery invariants: %w", err)
	}
	if err := m2.Verify(); err != nil {
		return fmt.Errorf("dst: post-recovery history rejected: %w", err)
	}
	return nil
}

// checkCommitPrefix cross-checks the recovered commit counter against
// the log: the recovered value must equal the checkpoint base plus the
// surviving records that bumped it (redo consistency), and — unless
// bit rot may have truncated durable records — must cover every commit
// the workload saw acknowledged.
func checkCommitPrefix(rec *nestedtx.Recovery, st execStats, scn *Scenario) error {
	state, ok := rec.States()["txctr"]
	if !ok {
		return errors.New("dst: recovery lost txctr registration")
	}
	got := state.(adt.Counter).N
	var base int64
	if ck, ok := rec.Checkpoint["txctr"]; ok {
		base = ck.(adt.Counter).N
	}
	var bumps int64
	for _, r := range rec.Records {
		if r.Commit == nil {
			continue
		}
		for _, e := range r.Commit.Effects {
			if e.Obj == "txctr" {
				bumps++
			}
		}
	}
	if got != base+bumps {
		return fmt.Errorf("dst: txctr %d != checkpoint %d + %d surviving bumps", got, base, bumps)
	}
	if !scn.BitRot && got < st.Writes {
		return fmt.Errorf("dst: durability hole: %d acknowledged commits, only %d recovered", st.Writes, got)
	}
	return nil
}
