package dst

import (
	"math/rand"
	"path/filepath"
	"sync"
	"time"

	"nestedtx/internal/wal"
)

// faultKind enumerates the time-driven fault events.
type faultKind int

const (
	fCheckpoint faultKind = iota
	fPartition
	fHeal
)

func (k faultKind) String() string {
	switch k {
	case fCheckpoint:
		return "checkpoint"
	case fPartition:
		return "partition"
	case fHeal:
		return "heal"
	}
	return "fault(?)"
}

// faultEvent is one scheduled fault at a virtual-time offset from the
// start of the run.
type faultEvent struct {
	At   time.Duration
	Kind faultKind
}

// faultPlan is everything the fault plane will do, drawn up front from
// the fault RNG so the event log can record it before execution starts.
type faultPlan struct {
	Events []faultEvent

	// Crash: kill-at-byte budget for FaultFS, armed after registration.
	// Byte budgets are inherently deterministic — they trigger on the
	// write stream, not on time.
	CrashAfter int64
	FailClosed bool // every few seeds: fail loudly instead of torn writes

	// WAL shape, drawn so crashes land at interesting segment offsets.
	SyncWindow   time.Duration
	SegmentBytes int64

	// BitRot draws: raw random values recorded in the log; application
	// maps them onto the surviving segment list by modulo after the run.
	RotSeg int64
	RotOff int64

	// NetSeed seeds the faultnet proxy's jitter stream (Net scenarios).
	NetSeed int64
}

// horizon is the virtual-time span fault events are scheduled across.
// Workloads that finish earlier still see the full schedule (the driver
// always runs it to completion, so the log never depends on execution
// speed); workloads that run longer simply see no further faults.
const horizon = 200 * time.Millisecond

// planFaults draws the complete fault schedule for a run.
func planFaults(scn *Scenario, rng *rand.Rand) *faultPlan {
	p := &faultPlan{}
	if scn.Durable {
		p.SyncWindow = scn.SyncWindow
		p.SegmentBytes = scn.SegmentBytes
		if p.SegmentBytes == 0 {
			p.SegmentBytes = int64(512 + rng.Intn(4096))
		}
	}
	for i := 0; i < scn.Checkpoints; i++ {
		p.Events = append(p.Events, faultEvent{
			At:   time.Duration(rng.Int63n(int64(horizon))),
			Kind: fCheckpoint,
		})
	}
	for i := 0; i < scn.Partitions; i++ {
		at := time.Duration(rng.Int63n(int64(horizon * 3 / 4)))
		dur := time.Duration(rng.Int63n(int64(horizon/8))) + time.Millisecond
		p.Events = append(p.Events,
			faultEvent{At: at, Kind: fPartition},
			faultEvent{At: at + dur, Kind: fHeal},
		)
	}
	sortEvents(p.Events)
	if scn.Crash {
		p.CrashAfter = rng.Int63n(16_000) + 500
		p.FailClosed = rng.Intn(5) == 0
	}
	if scn.BitRot {
		p.RotSeg = rng.Int63()
		p.RotOff = rng.Int63()
	}
	if scn.Net {
		p.NetSeed = rng.Int63()
	}
	return p
}

func sortEvents(evs []faultEvent) {
	// Insertion sort: schedules are tiny and the sort must be stable so
	// equal offsets keep their draw order (log determinism).
	for i := 1; i < len(evs); i++ {
		for j := i; j > 0 && evs[j].At < evs[j-1].At; j-- {
			evs[j], evs[j-1] = evs[j-1], evs[j]
		}
	}
}

// faultActions binds fault kinds to the run's environment: checkpoint
// on the durable manager, partition/heal on the replication proxy. Nil
// actions are skipped (a mem run has no checkpointer).
type faultActions struct {
	Checkpoint func()
	Partition  func()
	Heal       func()
}

// driveFaults replays the planned schedule on the virtual clock. It
// always walks the whole schedule — even if the workload finished long
// ago — so a run's observable fault sequence is a function of the plan
// alone. Returns a wait function; call it after the workload drains.
func driveFaults(env *simEnv, plan *faultPlan, act faultActions) (wait func()) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		start := env.clk.Now()
		for _, ev := range plan.Events {
			if d := ev.At - env.clk.Since(start); d > 0 {
				env.clk.Sleep(d)
			}
			switch ev.Kind {
			case fCheckpoint:
				if act.Checkpoint != nil {
					act.Checkpoint()
				}
			case fPartition:
				if act.Partition != nil {
					act.Partition()
				}
			case fHeal:
				if act.Heal != nil {
					act.Heal()
				}
			}
		}
	}()
	return wg.Wait
}

// applyBitRot flips one byte of a surviving .seg file in dir, mapping
// the plan's raw draws onto whatever segments the run left behind.
// Returns the chosen file and offset ("", -1 when nothing to rot).
func applyBitRot(mem *wal.MemFS, dir string, plan *faultPlan) (string, int64) {
	names, _ := mem.ReadDir(dir)
	var segs []string
	for _, n := range names {
		if filepath.Ext(n) == ".seg" {
			segs = append(segs, n)
		}
	}
	if len(segs) == 0 {
		return "", -1
	}
	name := filepath.Join(dir, segs[plan.RotSeg%int64(len(segs))])
	size, err := mem.Size(name)
	if err != nil || size == 0 {
		return "", -1
	}
	off := plan.RotOff % size
	if mem.Corrupt(name, off) != nil {
		return "", -1
	}
	return name, off
}
