package dst

import (
	"bytes"
	"fmt"
	"testing"
)

// small returns the scenario scaled down for test runtime; the full
// matrix runs at full size through the checked-in corpus (make sim).
func small(t *testing.T, name string, f float64) Scenario {
	t.Helper()
	scn, ok := Lookup(name)
	if !ok {
		t.Fatalf("scenario %s missing", name)
	}
	return scn.Scale(f)
}

// TestDeterministicEventLog is the core determinism contract: two
// in-process runs with the same seed produce byte-identical event logs
// and the same verdict — across every environment (embedded, durable
// crash, replicated failover).
func TestDeterministicEventLog(t *testing.T) {
	for _, name := range []string{"hotspot", "crash-bitrot-checkpoint", "failover-chaos"} {
		name := name
		t.Run(name, func(t *testing.T) {
			scn := small(t, name, 0.2)
			a := New(scn, 99).Run()
			b := New(scn, 99).Run()
			if a.Pass() != b.Pass() {
				t.Fatalf("same seed, different verdicts: %v vs %v", a.Err, b.Err)
			}
			if !bytes.Equal(a.Log, b.Log) {
				t.Fatalf("same seed, different event logs:\n--- run 1 ---\n%s--- run 2 ---\n%s", a.Log, b.Log)
			}
			if !a.Pass() {
				t.Fatalf("seed 99 fails: %v", a.Err)
			}
			if len(a.Log) == 0 {
				t.Fatal("empty event log")
			}
			c := New(scn, 100).Run()
			if bytes.Equal(a.Log, c.Log) {
				t.Fatal("different seeds produced identical event logs")
			}
		})
	}
}

// TestReproLine: every result carries the one-line reproduction, and a
// failing run embeds it in the error text.
func TestReproLine(t *testing.T) {
	scn := small(t, "hotspot", 0.1)
	res := New(scn, 3).Run()
	want := fmt.Sprintf("txdst -scenario hotspot -seed %d", 3)
	if res.Repro != want {
		t.Fatalf("repro = %q, want %q", res.Repro, want)
	}

	// An invalid scenario is the cheapest guaranteed failure; the error
	// path for execution failures shares the same wrapping.
	bad := scn
	bad.Mix = Mix{Zipf: 100, Bank: 100}
	if r := New(bad, 3).Run(); r.Pass() {
		t.Fatal("invalid scenario passed")
	}
}

// TestScenarioMatrixScaled runs every scenario end-to-end at reduced
// size: plan, faults, execution, and the full S9 machine check (plus
// Recovery.Verify in the crash and failover cells).
func TestScenarioMatrixScaled(t *testing.T) {
	if testing.Short() {
		t.Skip("full-stack simulation")
	}
	for _, scn := range Scenarios() {
		scn := scn
		t.Run(scn.Name, func(t *testing.T) {
			t.Parallel()
			f := 0.2
			if scn.Name == "bank-xl" {
				f = 0.02 // keep the 1M-account registration out of unit tests
			}
			res := New(scn.Scale(f), 1).Run()
			if !res.Pass() {
				t.Fatalf("%v", res.Err)
			}
			if res.Stats.Committed == 0 {
				t.Fatal("scenario committed nothing")
			}
			t.Logf("committed=%d aborted=%d scans=%d post={committed=%d scans=%d}",
				res.Stats.Committed, res.Stats.Aborted, res.Stats.Scans,
				res.Post.Committed, res.Post.Scans)
		})
	}
}
