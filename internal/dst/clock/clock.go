// Package clock abstracts time for the deterministic simulator.
//
// Every sleep, timeout and backoff in the runtime that can influence a
// schedule routes through a [Clock]: production code uses [Real] (the
// wall clock, zero overhead beyond an interface call), while the
// whole-system simulator (internal/dst) substitutes a [Virtual] clock —
// event-queue time, where sleepers park on a deadline heap and time
// jumps from deadline to deadline instead of passing. Two consequences:
// a seeded simulation run no longer depends on wall-clock scheduling
// accidents (a 100ms backoff is a number, not a real delay), and
// simulated runs are much faster than real time.
//
// The package sits at the bottom of the dependency graph (stdlib only)
// so the root nestedtx package, internal/sim, internal/faultnet,
// internal/wal, internal/repl and internal/server can all accept an
// injected Clock without import cycles.
package clock

import (
	"container/heap"
	"sync"
	"time"
)

// Clock is the time source the runtime's sleeps and timeouts draw from.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// Since returns Now().Sub(t).
	Since(t time.Time) time.Duration
	// After returns a channel that delivers the clock's time once d has
	// elapsed. d <= 0 fires immediately.
	After(d time.Duration) <-chan time.Time
	// Sleep blocks for d; d <= 0 returns immediately. On a Virtual clock
	// the block ends when virtual time reaches the deadline, regardless
	// of wall time.
	Sleep(d time.Duration)
	// NewTimer returns a stoppable timer that fires once after d.
	NewTimer(d time.Duration) Timer
}

// Timer is a stoppable single-shot timer (the subset of *time.Timer the
// runtime needs, so a Virtual clock can provide its own).
type Timer interface {
	// C returns the channel the firing is delivered on.
	C() <-chan time.Time
	// Stop cancels the timer; it reports whether the firing was averted.
	Stop() bool
}

// Or returns c, or the real clock when c is nil — the idiom for
// "injected clock, defaulting to production time".
func Or(c Clock) Clock {
	if c == nil {
		return Real{}
	}
	return c
}

// ---- real clock ----

// Real is the production clock: the wall clock, delegating to the time
// package.
type Real struct{}

func (Real) Now() time.Time                         { return time.Now() }
func (Real) Since(t time.Time) time.Duration        { return time.Since(t) }
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }
func (Real) Sleep(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}

func (Real) NewTimer(d time.Duration) Timer { return realTimer{time.NewTimer(d)} }

type realTimer struct{ t *time.Timer }

func (t realTimer) C() <-chan time.Time { return t.t.C }
func (t realTimer) Stop() bool          { return t.t.Stop() }

// ---- virtual clock ----

// Virtual is event-queue time: sleepers park on a min-heap of absolute
// deadlines, and time advances only by [Virtual.Advance] jumps — either
// explicit ones from a test, or the auto-advance loop a simulation runs
// ([Virtual.AutoAdvance]), which repeatedly jumps to the earliest parked
// deadline whenever the system has sleepers but no wall-clock progress.
// Virtual timestamps delivered to sleepers are therefore functions of
// the requested durations alone, never of wall-time scheduling.
type Virtual struct {
	mu      sync.Mutex
	now     time.Time
	waiters waiterHeap
	stop    chan struct{}
	stopped bool
	wakes   uint64 // total waiters fired; monotone
}

// NewVirtual returns a Virtual clock starting at start (a fixed epoch
// keeps simulated timestamps reproducible; the zero time is replaced by
// a fixed non-zero epoch so durations stay positive).
func NewVirtual(start time.Time) *Virtual {
	if start.IsZero() {
		start = time.Unix(1_000_000_000, 0) // 2001-09-09, arbitrary fixed epoch
	}
	return &Virtual{now: start, stop: make(chan struct{})}
}

type vwaiter struct {
	deadline time.Time
	ch       chan time.Time
	index    int
	stopped  bool
}

type waiterHeap []*vwaiter

func (h waiterHeap) Len() int           { return len(h) }
func (h waiterHeap) Less(i, j int) bool { return h[i].deadline.Before(h[j].deadline) }
func (h waiterHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index, h[j].index = i, j
}
func (h *waiterHeap) Push(x any) {
	w := x.(*vwaiter)
	w.index = len(*h)
	*h = append(*h, w)
}
func (h *waiterHeap) Pop() any {
	old := *h
	n := len(old)
	w := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return w
}

// Now returns the current virtual time.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Since returns the virtual time elapsed since t.
func (v *Virtual) Since(t time.Time) time.Duration { return v.Now().Sub(t) }

// After returns a channel delivering the virtual timestamp once virtual
// time reaches now+d. d <= 0 fires immediately.
func (v *Virtual) After(d time.Duration) <-chan time.Time {
	_, ch := v.addWaiter(d)
	return ch
}

func (v *Virtual) addWaiter(d time.Duration) (*vwaiter, chan time.Time) {
	ch := make(chan time.Time, 1)
	v.mu.Lock()
	w := &vwaiter{deadline: v.now.Add(d), ch: ch, index: -1}
	if d <= 0 || v.stopped {
		now := v.now
		v.mu.Unlock()
		ch <- now
		return w, ch
	}
	heap.Push(&v.waiters, w)
	v.mu.Unlock()
	return w, ch
}

// Sleep blocks until virtual time reaches now+d (or the clock is
// stopped, which releases every sleeper — a simulation teardown must
// not leave goroutines parked forever).
func (v *Virtual) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	_, ch := v.addWaiter(d)
	select {
	case <-ch:
	case <-v.stop:
	}
}

// NewTimer returns a timer firing once virtual time reaches now+d.
func (v *Virtual) NewTimer(d time.Duration) Timer {
	w, ch := v.addWaiter(d)
	return &virtTimer{v: v, w: w, ch: ch}
}

type virtTimer struct {
	v  *Virtual
	w  *vwaiter
	ch chan time.Time
}

func (t *virtTimer) C() <-chan time.Time { return t.ch }

func (t *virtTimer) Stop() bool {
	t.v.mu.Lock()
	defer t.v.mu.Unlock()
	if t.w.stopped || t.w.index < 0 {
		return false
	}
	t.w.stopped = true
	if t.w.index < len(t.v.waiters) {
		heap.Remove(&t.v.waiters, t.w.index)
	}
	t.w.index = -1
	return true
}

// Pending returns the number of parked sleepers.
func (v *Virtual) Pending() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.waiters)
}

// Wakes returns the total number of waiters fired so far (monotone); the
// auto-advance loop uses it to detect quiescence.
func (v *Virtual) Wakes() uint64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.wakes
}

// Advance moves virtual time forward by d, firing every waiter whose
// deadline is reached, and returns how many fired.
func (v *Virtual) Advance(d time.Duration) int {
	v.mu.Lock()
	target := v.now.Add(d)
	return v.advanceToLocked(target)
}

// AdvanceToNext jumps virtual time to the earliest parked deadline and
// fires everything due there. It returns the number of waiters fired (0
// when nothing is parked).
func (v *Virtual) AdvanceToNext() int {
	v.mu.Lock()
	if len(v.waiters) == 0 {
		v.mu.Unlock()
		return 0
	}
	target := v.waiters[0].deadline
	if target.Before(v.now) {
		target = v.now
	}
	return v.advanceToLocked(target)
}

// advanceToLocked advances to target and fires due waiters. Called with
// mu held; releases it.
func (v *Virtual) advanceToLocked(target time.Time) int {
	if target.After(v.now) {
		v.now = target
	}
	var due []*vwaiter
	for len(v.waiters) > 0 && !v.waiters[0].deadline.After(v.now) {
		w := heap.Pop(&v.waiters).(*vwaiter)
		w.index = -1
		due = append(due, w)
	}
	now := v.now
	v.wakes += uint64(len(due))
	v.mu.Unlock()
	for _, w := range due {
		w.ch <- now // cap-1 channel: never blocks
	}
	return len(due)
}

// AutoAdvance starts the simulation's time driver: a background loop
// that polls every (real) grain and, when sleepers are parked, jumps
// virtual time to the earliest deadline. The real grain only controls
// how promptly virtual time advances — the virtual timestamps assigned
// are the deadlines themselves, so they are independent of wall-clock
// scheduling. Call Stop to end the loop and release all sleepers.
func (v *Virtual) AutoAdvance(grain time.Duration) {
	if grain <= 0 {
		grain = 100 * time.Microsecond
	}
	go func() {
		for {
			select {
			case <-v.stop:
				return
			default:
			}
			time.Sleep(grain)
			v.AdvanceToNext()
		}
	}()
}

// Stop ends auto-advance and releases every current and future sleeper
// immediately (their channels fire at the current virtual time). Safe to
// call more than once.
func (v *Virtual) Stop() {
	v.mu.Lock()
	if v.stopped {
		v.mu.Unlock()
		return
	}
	v.stopped = true
	close(v.stop)
	var due []*vwaiter
	for len(v.waiters) > 0 {
		w := heap.Pop(&v.waiters).(*vwaiter)
		w.index = -1
		due = append(due, w)
	}
	now := v.now
	v.wakes += uint64(len(due))
	v.mu.Unlock()
	for _, w := range due {
		w.ch <- now
	}
}
