package clock

import (
	"sync"
	"testing"
	"time"
)

// TestVirtualDeadlineOrder: waiters fire in deadline order as time is
// advanced manually, and the timestamps delivered are the deadlines
// themselves, not wall time.
func TestVirtualDeadlineOrder(t *testing.T) {
	v := NewVirtual(time.Time{})
	t0 := v.Now()
	c50 := v.After(50 * time.Millisecond)
	c10 := v.After(10 * time.Millisecond)
	c20 := v.After(20 * time.Millisecond)

	if n := v.AdvanceToNext(); n != 1 {
		t.Fatalf("first advance fired %d, want 1", n)
	}
	select {
	case ts := <-c10:
		if got := ts.Sub(t0); got != 10*time.Millisecond {
			t.Fatalf("10ms waiter fired at +%v", got)
		}
	default:
		t.Fatal("10ms waiter did not fire first")
	}
	select {
	case <-c20:
		t.Fatal("20ms waiter fired early")
	case <-c50:
		t.Fatal("50ms waiter fired early")
	default:
	}

	if n := v.Advance(40 * time.Millisecond); n != 2 {
		t.Fatalf("advance(40ms) fired %d, want 2", n)
	}
	if ts := <-c20; ts.Sub(t0) != 50*time.Millisecond {
		// Advance jumps straight to +50ms; the 20ms waiter observes the
		// clock at fire time.
		t.Fatalf("20ms waiter saw +%v, want +50ms", ts.Sub(t0))
	}
	<-c50
	if v.Pending() != 0 {
		t.Fatalf("pending = %d, want 0", v.Pending())
	}
}

// TestVirtualSleepAutoAdvance: with the auto-advance driver running, a
// long virtual sleep returns promptly in wall time and virtual time has
// moved exactly to the deadline.
func TestVirtualSleepAutoAdvance(t *testing.T) {
	v := NewVirtual(time.Time{})
	defer v.Stop()
	v.AutoAdvance(50 * time.Microsecond)
	t0 := v.Now()
	start := time.Now()
	const d = 10 * time.Second // ten virtual seconds
	v.Sleep(d)
	if wall := time.Since(start); wall > 5*time.Second {
		t.Fatalf("virtual sleep of %v took %v wall time", d, wall)
	}
	if got := v.Since(t0); got < d {
		t.Fatalf("virtual time advanced %v, want >= %v", got, d)
	}
}

// TestVirtualTimerStop: a stopped timer neither fires nor corrupts the
// heap for its neighbours.
func TestVirtualTimerStop(t *testing.T) {
	v := NewVirtual(time.Time{})
	tm := v.NewTimer(10 * time.Millisecond)
	keep := v.After(20 * time.Millisecond)
	if !tm.Stop() {
		t.Fatal("Stop reported already fired")
	}
	if tm.Stop() {
		t.Fatal("second Stop reported success")
	}
	v.Advance(30 * time.Millisecond)
	select {
	case <-tm.C():
		t.Fatal("stopped timer fired")
	default:
	}
	select {
	case <-keep:
	default:
		t.Fatal("surviving waiter did not fire")
	}
}

// TestVirtualStopReleasesSleepers: Stop unblocks every parked sleeper —
// simulation teardown must not strand goroutines.
func TestVirtualStopReleasesSleepers(t *testing.T) {
	v := NewVirtual(time.Time{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v.Sleep(time.Hour)
		}()
	}
	for v.Pending() < 8 {
		time.Sleep(100 * time.Microsecond)
	}
	v.Stop()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("sleepers still parked after Stop")
	}
	// After Stop, new sleeps return immediately instead of parking.
	v.Sleep(time.Hour)
}

// TestRealClockBasics: the production clock delegates to package time.
func TestRealClockBasics(t *testing.T) {
	var c Clock = Real{}
	t0 := c.Now()
	c.Sleep(time.Millisecond)
	if c.Since(t0) <= 0 {
		t.Fatal("real clock did not advance")
	}
	tm := c.NewTimer(time.Hour)
	if !tm.Stop() {
		t.Fatal("real timer Stop failed")
	}
	select {
	case <-c.After(0):
	case <-time.After(time.Second):
		t.Fatal("After(0) did not fire promptly")
	}
	if Or(nil) == nil {
		t.Fatal("Or(nil) returned nil")
	}
}
