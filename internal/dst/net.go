package dst

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"nestedtx"
	"nestedtx/client"
	"nestedtx/internal/adt"
	"nestedtx/internal/faultnet"
	"nestedtx/internal/repl"
	"nestedtx/internal/server"
	"nestedtx/internal/wal"
)

// runNet is the replicated environment: a durable leader served over
// TCP, a follower streaming the leader's WAL through a faultnet proxy,
// a client pool driving the planned workload, partitions on the
// replication link at planned virtual times, then leader death,
// bit rot (when planned), verified promotion and a post-promotion
// phase against the new leader.
//
// Injected latency, group-commit windows and every retry backoff run
// on the virtual clock; the server's watchdog request timers stay on
// the wall clock (a watchdog firing because simulated time jumped
// would inject timeouts the plan never asked for).
func runNet(env *simEnv, plan *Plan, faults *faultPlan, res *Result) error {
	scn := env.scn
	mem := wal.NewMemFS()

	// Leader: durable manager + server (the server attaches a shipper to
	// any durable manager).
	mgr, _, err := nestedtx.OpenDurable("leader", nestedtx.DurableOptions{
		FS:           mem,
		SyncWindow:   faults.SyncWindow,
		SegmentBytes: faults.SegmentBytes,
		Clock:        env.clk,
	}, nestedtx.WithClock(env.clk))
	if err != nil {
		return fmt.Errorf("dst: open leader: %w", err)
	}
	if err := mgr.Register("ctr", adt.Counter{}); err != nil {
		return fmt.Errorf("dst: register ctr: %w", err)
	}
	if err := registerUniverse(mgr, scn); err != nil {
		return fmt.Errorf("dst: register: %w", err)
	}
	leaderSrv := server.New(mgr, server.Config{})
	leaderLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("dst: listen: %w", err)
	}
	go leaderSrv.Serve(leaderLn)
	leaderAddr := leaderLn.Addr().String()

	// Replication link through the fault proxy: partitions planned at
	// virtual times sever it; the follower's reconnect backoff parks on
	// the virtual clock too.
	proxy, err := faultnet.NewWithClock(leaderAddr, faultnet.Faults{
		Latency: scn.NetLatency,
		Jitter:  scn.NetJitter,
	}, faults.NetSeed, env.clk)
	if err != nil {
		return fmt.Errorf("dst: proxy: %w", err)
	}
	defer proxy.Close()

	f, err := repl.OpenFollower("follower", wal.Options{FS: mem, Clock: env.clk})
	if err != nil {
		return fmt.Errorf("dst: open follower: %w", err)
	}
	fsrv := server.New(nil, server.Config{Follower: f})
	fLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("dst: follower listen: %w", err)
	}
	go fsrv.Serve(fLn)
	go f.Run(proxy.Addr())
	followerAddr := fLn.Addr().String()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = fsrv.Shutdown(ctx)
	}()

	wait := driveFaults(env, faults, faultActions{
		Checkpoint: func() { _ = mgr.Checkpoint() },
		Partition:  proxy.Partition,
		Heal:       proxy.Heal,
	})

	pool, err := client.NewPool(leaderAddr, scn.Workers, client.WithTimeout(20*time.Second))
	if err != nil {
		return fmt.Errorf("dst: pool: %w", err)
	}
	st, werr := runNetSpecs(env, pool, plan.Specs)
	res.Stats = st
	wait()
	proxy.Heal() // the driver always ran the full schedule; make sure we end healed
	if werr != nil {
		pool.Close()
		return werr
	}

	// Drain: the follower must catch up to the leader's durable log.
	if err := waitFor(30*time.Second, func() bool {
		ws, ok := mgr.WalStats()
		return ok && f.Status().NextLSN == ws.DurableLSN
	}); err != nil {
		pool.Close()
		return fmt.Errorf("dst: follower never caught up: %w", err)
	}
	leaderCtr, err := counterState(mgr.State("ctr"))
	if err != nil {
		pool.Close()
		return err
	}
	if leaderCtr < st.Writes {
		pool.Close()
		return fmt.Errorf("dst: leader lost commits: ctr %d < %d acknowledged", leaderCtr, st.Writes)
	}
	if err := waitFor(15*time.Second, func() bool {
		fs, err := f.State("ctr")
		return err == nil && fs.(adt.Counter).N == leaderCtr
	}); err != nil {
		pool.Close()
		return fmt.Errorf("dst: follower state never converged to ctr=%d: %w", leaderCtr, err)
	}
	pool.Close()

	// Leader dies (its durable log is the artifact it leaves behind).
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	err = leaderSrv.Shutdown(ctx)
	cancel()
	if err != nil {
		return fmt.Errorf("dst: leader shutdown: %w", err)
	}

	// Planned disk rot on the replica's own log, then promotion —
	// which re-runs recovery and Recovery.Verify on the (possibly
	// truncated) surviving prefix before serving writes.
	if scn.BitRot {
		applyBitRot(mem, "follower", faults)
	}
	fc, err := client.Dial(followerAddr, client.WithTimeout(20*time.Second))
	if err != nil {
		return fmt.Errorf("dst: dial follower: %w", err)
	}
	if err := fc.Promote(); err != nil {
		fc.Close()
		return fmt.Errorf("dst: promote: %w", err)
	}
	promoted, err := fc.State("ctr")
	fc.Close()
	switch {
	case err != nil && scn.BitRot:
		// Rot can truncate arbitrarily far back, even past ctr's
		// registration; the promotion verdict above already proved the
		// surviving prefix. Nothing further to drive.
	case err != nil:
		return fmt.Errorf("dst: promoted state: %w", err)
	case !scn.BitRot && promoted.(nestedtx.Counter).N != leaderCtr:
		return fmt.Errorf("dst: promoted ctr %d != leader ctr %d", promoted.(nestedtx.Counter).N, leaderCtr)
	case scn.BitRot && promoted.(nestedtx.Counter).N > leaderCtr:
		return fmt.Errorf("dst: promoted ctr %d exceeds leader ctr %d", promoted.(nestedtx.Counter).N, leaderCtr)
	default:
		// Post-promotion phase: the planned post specs run against the
		// new leader.
		pool2, err := client.NewPool(followerAddr, scn.Workers, client.WithTimeout(20*time.Second))
		if err != nil {
			return fmt.Errorf("dst: post-promotion pool: %w", err)
		}
		post, perr := runNetSpecs(env, pool2, plan.Post)
		pool2.Close()
		res.Post = post
		if perr != nil {
			return perr
		}
		if !scn.BitRot && len(plan.Post) > 0 && post.Committed+post.Scans == 0 {
			return fmt.Errorf("dst: promoted leader accepted none of %d post transactions", len(plan.Post))
		}
	}

	// Final verdict on the promoted node's log: shut its server down and
	// machine-check the full inherited-plus-new history from the bytes.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Second)
	err = fsrv.Shutdown(ctx2)
	cancel2()
	if err != nil {
		return fmt.Errorf("dst: promoted shutdown: %w", err)
	}
	rec, err := wal.Inspect("follower", mem)
	if err != nil {
		return fmt.Errorf("dst: inspect promoted log: %w", err)
	}
	if err := rec.Verify(); err != nil {
		return fmt.Errorf("dst: promoted history rejected: %w", err)
	}
	return nil
}

func counterState(st nestedtx.State, err error) (int64, error) {
	if err != nil {
		return 0, fmt.Errorf("dst: leader state: %w", err)
	}
	return st.(adt.Counter).N, nil
}

// runNetSpecs drives planned specs through a client pool. Write specs
// bump the shared counter (the acked set the failover assertions track)
// and touch planned objects, optionally one subtransaction deep; scan
// specs run remote read-only snapshots.
func runNetSpecs(env *simEnv, pool *client.Pool, specs []TxSpec) (execStats, error) {
	var st execStats
	var wg sync.WaitGroup
	jobs := make(chan TxSpec)
	for w := 0; w < env.scn.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for spec := range jobs {
				runNetSpec(env, pool, spec, &st)
				if env.scn.ThinkMax > 0 {
					env.clk.Sleep(time.Duration(spec.Seed % int64(env.scn.ThinkMax)))
				}
			}
		}()
	}
	for _, s := range specs {
		jobs <- s
	}
	close(jobs)
	wg.Wait()
	return st, nil
}

func runNetSpec(env *simEnv, pool *client.Pool, spec TxSpec, st *execStats) {
	rng := newSpecRNG(spec.Seed)
	scn := env.scn
	if spec.Kind == KScan {
		c, err := pool.Get()
		if err != nil {
			atomic.AddInt64(&st.Aborted, 1)
			return
		}
		err = c.RunReadOnly(func(s *client.Snapshot) error {
			if _, err := s.Read("ctr", adt.CtrGet{}); err != nil {
				return err
			}
			for i := 0; i < spec.Ops; i++ {
				if _, err := s.Read(objName(rng.Intn(max(1, scn.Objects))), adt.CtrGet{}); err != nil {
					return err
				}
			}
			return nil
		})
		pool.Put(c)
		if err != nil {
			atomic.AddInt64(&st.Aborted, 1)
			return
		}
		atomic.AddInt64(&st.Scans, 1)
		return
	}
	pick := objectPicker(rng, scn, spec)
	err := pool.RunRetry(scn.Retries, func(t *client.Tx) error {
		if _, err := t.Write("ctr", adt.CtrAdd{Delta: 1}); err != nil {
			return err
		}
		for i := 0; i < min(spec.Ops, 2); i++ {
			if _, err := t.Write(pick(), adt.CtrAdd{Delta: 1}); err != nil {
				return err
			}
		}
		if spec.Depth > 1 {
			if err := t.Sub(func(s *client.Tx) error {
				_, err := s.Read(pick(), adt.CtrGet{})
				return err
			}); err != nil {
				return err
			}
		}
		return nil
	})
	countOutcome(st, err, true)
}

// waitFor polls cond on the wall clock — the verification drain is not
// part of the simulated history.
func waitFor(limit time.Duration, cond func() bool) error {
	deadline := time.Now().Add(limit)
	for time.Now().Before(deadline) {
		if cond() {
			return nil
		}
		time.Sleep(2 * time.Millisecond)
	}
	return fmt.Errorf("timed out after %s", limit)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
