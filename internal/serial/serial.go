// Package serial implements the serial scheduler (§3.3) and the serial
// system validator (§3.4).
//
// The serial scheduler is the one fully specified automaton of the serial
// system: it runs the children of each transaction sequentially (no
// concurrency between siblings) according to a depth-first traversal of the
// transaction tree, and may abort a transaction only before it is created.
// Serial schedules are the correctness specification: a concurrent system
// is correct if its schedules look like serial schedules to each (non-
// orphan) transaction.
package serial

import (
	"fmt"

	"nestedtx/internal/event"
	"nestedtx/internal/object"
	"nestedtx/internal/tree"
)

// Scheduler is the serial scheduler automaton's state: six sets, exactly
// as in §3.3. commitRequested maps each transaction to its requested value.
type Scheduler struct {
	createRequested tree.Set
	created         tree.Set
	commitRequested map[tree.TID]event.Value
	committed       tree.Set
	aborted         tree.Set
	returned        tree.Set
	// Derived per-parent counters for O(1) precondition checks on long
	// schedules (the set scans are kept for error messages only).
	createdOpen   map[tree.TID]int // children created but not returned
	requestedOpen map[tree.TID]int // children create-requested but not returned
}

// NewScheduler returns the scheduler in its initial state: create-requested
// = {T0}, all other sets empty.
func NewScheduler() *Scheduler {
	return &Scheduler{
		createRequested: tree.NewSet(tree.Root),
		created:         tree.NewSet(),
		commitRequested: make(map[tree.TID]event.Value),
		committed:       tree.NewSet(),
		aborted:         tree.NewSet(),
		returned:        tree.NewSet(),
		createdOpen:     make(map[tree.TID]int),
		requestedOpen:   make(map[tree.TID]int),
	}
}

// Committed reports whether COMMIT(t) has occurred.
func (s *Scheduler) Committed(t tree.TID) bool { return s.committed.Has(t) }

// Aborted reports whether ABORT(t) has occurred.
func (s *Scheduler) Aborted(t tree.TID) bool { return s.aborted.Has(t) }

// Created reports whether CREATE(t) has occurred.
func (s *Scheduler) Created(t tree.TID) bool { return s.created.Has(t) }

// CommitValue returns the value with which t requested commit.
func (s *Scheduler) CommitValue(t tree.TID) (event.Value, bool) {
	v, ok := s.commitRequested[t]
	return v, ok
}

// Enabled checks the precondition of e in the current state. Input
// operations (REQUEST_CREATE, REQUEST_COMMIT) are always enabled; for
// output operations the error explains which precondition fails.
func (s *Scheduler) Enabled(e event.Event) error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("serial scheduler: %s: %s", e, fmt.Sprintf(format, args...))
	}
	switch e.Kind {
	case event.RequestCreate, event.RequestCommit:
		return nil // inputs are always enabled
	case event.Create:
		t := e.T
		if !s.createRequested.Has(t) {
			return fail("creation not requested")
		}
		if s.created.Has(t) {
			return fail("already created")
		}
		if s.aborted.Has(t) {
			return fail("already aborted")
		}
		// siblings(T) ∩ created ⊆ returned: siblings are run sequentially.
		if sib, ok := s.createdSiblingNotReturned(t); ok {
			return fail("sibling %s created but not returned", sib)
		}
		return nil
	case event.Commit:
		t := e.T
		if t == tree.Root {
			return fail("the root does not commit")
		}
		if _, ok := s.commitRequested[t]; !ok {
			return fail("commit not requested")
		}
		if s.returned.Has(t) {
			return fail("already returned")
		}
		// children(T) ∩ create-requested ⊆ returned.
		if c, ok := s.requestedChildNotReturned(t); ok {
			return fail("child %s requested but not returned", c)
		}
		return nil
	case event.Abort:
		t := e.T
		if t == tree.Root {
			return fail("the root does not abort")
		}
		if !s.createRequested.Has(t) {
			return fail("creation not requested")
		}
		if s.created.Has(t) {
			return fail("serial scheduler aborts only transactions that were never created")
		}
		if s.aborted.Has(t) {
			return fail("already aborted")
		}
		if sib, ok := s.createdSiblingNotReturned(t); ok {
			return fail("sibling %s created but not returned", sib)
		}
		return nil
	case event.ReportCommit:
		t := e.T
		if t == tree.Root {
			return fail("no reports for the root")
		}
		if !s.committed.Has(t) {
			return fail("not committed")
		}
		if v, ok := s.commitRequested[t]; !ok || v != e.Value {
			return fail("value %v was not the requested commit value", e.Value)
		}
		return nil
	case event.ReportAbort:
		if e.T == tree.Root {
			return fail("no reports for the root")
		}
		if !s.aborted.Has(e.T) {
			return fail("not aborted")
		}
		return nil
	default:
		return fail("not an operation of the serial scheduler")
	}
}

func (s *Scheduler) createdSiblingNotReturned(t tree.TID) (tree.TID, bool) {
	p := t.Parent()
	open := s.createdOpen[p]
	if s.created.Has(t) && !s.returned.Has(t) {
		open-- // t itself does not block its own operation
	}
	if open <= 0 {
		return "", false
	}
	for u := range s.created {
		if u != t && u.Parent() == p && !s.returned.Has(u) {
			return u, true
		}
	}
	return "", false
}

func (s *Scheduler) requestedChildNotReturned(t tree.TID) (tree.TID, bool) {
	if s.requestedOpen[t] <= 0 {
		return "", false
	}
	for u := range s.createRequested {
		if u.Parent() == t && !s.returned.Has(u) {
			return u, true
		}
	}
	return "", false
}

// Apply performs the state change of e (the postcondition). It does not
// check preconditions; callers should call Enabled first for output
// operations.
func (s *Scheduler) Apply(e event.Event) {
	switch e.Kind {
	case event.RequestCreate:
		if !s.createRequested.Has(e.T) {
			s.createRequested.Add(e.T)
			if !s.returned.Has(e.T) {
				s.requestedOpen[e.T.Parent()]++
			}
		}
	case event.RequestCommit:
		if _, ok := s.commitRequested[e.T]; !ok {
			s.commitRequested[e.T] = e.Value
		}
	case event.Create:
		if !s.created.Has(e.T) {
			s.created.Add(e.T)
			if !s.returned.Has(e.T) {
				s.createdOpen[e.T.Parent()]++
			}
		}
	case event.Commit:
		s.markReturned(e.T)
		s.committed.Add(e.T)
	case event.Abort:
		s.markReturned(e.T)
		s.aborted.Add(e.T)
	}
	// Report operations have no postcondition (no state change).
}

func (s *Scheduler) markReturned(t tree.TID) {
	if s.returned.Has(t) {
		return
	}
	s.returned.Add(t)
	p := t.Parent()
	if s.created.Has(t) {
		s.createdOpen[p]--
	}
	if s.createRequested.Has(t) {
		s.requestedOpen[p]--
	}
}

// Step checks e's precondition and applies it.
func (s *Scheduler) Step(e event.Event) error {
	if err := s.Enabled(e); err != nil {
		return err
	}
	s.Apply(e)
	return nil
}

// Validate checks that s is a serial schedule of the given system type:
//
//   - every event is a serial operation (no INFORM events),
//   - the serial scheduler's preconditions hold at each output step,
//   - the projection at each basic object is a schedule of the object
//     (responses carry exactly the values the data type yields), and
//   - the whole sequence is well-formed (Lemma 5 says this is implied, so a
//     violation indicates the sequence is not a serial schedule).
//
// Transactions are otherwise black boxes, so any well-formed transaction
// behaviour is admissible.
func Validate(sched event.Schedule, st *event.SystemType) error {
	sc := NewScheduler()
	objs := make(map[string]*object.Basic)
	for _, x := range sched.TouchedObjects(st) {
		b, err := object.New(st, x)
		if err != nil {
			return err
		}
		objs[x] = b
	}
	for i, e := range sched {
		if e.Kind == event.InformCommitAt || e.Kind == event.InformAbortAt {
			return fmt.Errorf("serial: event %d %s: not a serial operation", i, e)
		}
		if err := sc.Step(e); err != nil {
			return fmt.Errorf("serial: event %d: %w", i, err)
		}
		// Access CREATE / REQUEST_COMMIT also step the object automaton.
		if a, ok := st.AccessInfo(e.T); ok && (e.Kind == event.Create || e.Kind == event.RequestCommit) {
			if err := objs[a.Object].Step(e); err != nil {
				return fmt.Errorf("serial: event %d: %w", i, err)
			}
		}
	}
	if err := event.WFSerial(sched, st); err != nil {
		return fmt.Errorf("serial: %w", err)
	}
	return nil
}

// IsSerial reports whether sched is a serial schedule.
func IsSerial(sched event.Schedule, st *event.SystemType) bool {
	return Validate(sched, st) == nil
}

// SeriallyCorrectFor reports whether concurrent schedule alpha is serially
// correct for transaction t given a candidate serial schedule beta (§3.5):
// beta must be a serial schedule and alpha|t == beta|t.
func SeriallyCorrectFor(alpha, beta event.Schedule, st *event.SystemType, t tree.TID) error {
	if err := Validate(beta, st); err != nil {
		return fmt.Errorf("serial: candidate is not a serial schedule: %w", err)
	}
	if !alpha.AtTransaction(t).Equal(beta.AtTransaction(t)) {
		return fmt.Errorf("serial: projections at %s differ", t)
	}
	return nil
}

// Clone returns a deep copy of the scheduler state, for search algorithms
// that need to backtrack.
func (s *Scheduler) Clone() *Scheduler {
	cr := make(map[tree.TID]event.Value, len(s.commitRequested))
	for k, v := range s.commitRequested {
		cr[k] = v
	}
	co := make(map[tree.TID]int, len(s.createdOpen))
	for k, v := range s.createdOpen {
		co[k] = v
	}
	ro := make(map[tree.TID]int, len(s.requestedOpen))
	for k, v := range s.requestedOpen {
		ro[k] = v
	}
	return &Scheduler{
		createRequested: s.createRequested.Clone(),
		created:         s.created.Clone(),
		commitRequested: cr,
		committed:       s.committed.Clone(),
		aborted:         s.aborted.Clone(),
		returned:        s.returned.Clone(),
		createdOpen:     co,
		requestedOpen:   ro,
	}
}
