package serial

import (
	"strings"
	"testing"

	"nestedtx/internal/adt"
	"nestedtx/internal/event"
	"nestedtx/internal/tree"
)

func ev(k event.Kind, t tree.TID, v ...event.Value) event.Event {
	e := event.Event{Kind: k, T: t}
	if len(v) > 0 {
		e.Value = v[0]
	}
	return e
}

func testType(t *testing.T) *event.SystemType {
	t.Helper()
	st := event.NewSystemType()
	st.DefineObject("X", adt.NewRegister(int64(0)))
	st.MustDefineAccess("T0.0.0", "X", adt.RegWrite{V: int64(5)})
	st.MustDefineAccess("T0.0.1", "X", adt.RegRead{})
	st.MustDefineAccess("T0.1.0", "X", adt.RegRead{})
	return st
}

// goodSerial is a complete, legal serial schedule of the test type.
func goodSerial() event.Schedule {
	return event.Schedule{
		ev(event.Create, "T0"),
		ev(event.RequestCreate, "T0.0"),
		ev(event.Create, "T0.0"),
		ev(event.RequestCreate, "T0.0.0"),
		ev(event.Create, "T0.0.0"),
		ev(event.RequestCommit, "T0.0.0", int64(5)),
		ev(event.Commit, "T0.0.0"),
		ev(event.ReportCommit, "T0.0.0", int64(5)),
		ev(event.RequestCreate, "T0.0.1"),
		ev(event.Create, "T0.0.1"),
		ev(event.RequestCommit, "T0.0.1", int64(5)),
		ev(event.Commit, "T0.0.1"),
		ev(event.ReportCommit, "T0.0.1", int64(5)),
		ev(event.RequestCommit, "T0.0", int64(2)),
		ev(event.Commit, "T0.0"),
		ev(event.ReportCommit, "T0.0", int64(2)),
		ev(event.RequestCreate, "T0.1"),
		ev(event.Create, "T0.1"),
		ev(event.RequestCreate, "T0.1.0"),
		ev(event.Create, "T0.1.0"),
		ev(event.RequestCommit, "T0.1.0", int64(5)),
		ev(event.Commit, "T0.1.0"),
		ev(event.ReportCommit, "T0.1.0", int64(5)),
		ev(event.RequestCommit, "T0.1", int64(1)),
		ev(event.Commit, "T0.1"),
	}
}

func TestValidateAcceptsSerial(t *testing.T) {
	if err := Validate(goodSerial(), testType(t)); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejections(t *testing.T) {
	st := testType(t)
	base := goodSerial()
	mutate := func(f func(event.Schedule) event.Schedule) error {
		return Validate(f(base.Clone()), st)
	}
	cases := []struct {
		name string
		f    func(event.Schedule) event.Schedule
		want string
	}{
		{"concurrent siblings", func(s event.Schedule) event.Schedule {
			// CREATE(T0.1) before T0.0 returns.
			out := s[:3].Clone()
			out = append(out, ev(event.RequestCreate, "T0.1"), ev(event.Create, "T0.1"))
			return out
		}, "sibling"},
		{"create without request", func(s event.Schedule) event.Schedule {
			return event.Schedule{ev(event.Create, "T0"), ev(event.Create, "T0.3")}
		}, "not requested"},
		{"commit without request", func(s event.Schedule) event.Schedule {
			return append(s[:5].Clone(), ev(event.Commit, "T0.0.0"))
		}, "commit not requested"},
		{"abort after create", func(s event.Schedule) event.Schedule {
			return append(s[:3].Clone(), ev(event.Abort, "T0.0"))
		}, "never created"},
		{"wrong object value", func(s event.Schedule) event.Schedule {
			s[5].Value = int64(99)
			s[7].Value = int64(99)
			return s
		}, "value mismatch"},
		{"inform event", func(s event.Schedule) event.Schedule {
			return append(s.Clone(), event.Event{Kind: event.InformCommitAt, T: "T0.0", Object: "X"})
		}, "not a serial operation"},
		{"commit before children return", func(s event.Schedule) event.Schedule {
			return append(s[:6].Clone(), ev(event.RequestCommit, "T0.0", int64(0)), ev(event.Commit, "T0.0"))
		}, "not returned"},
		{"report wrong value", func(s event.Schedule) event.Schedule {
			s[7].Value = int64(6)
			return s
		}, "not the requested commit value"},
		{"root commit", func(s event.Schedule) event.Schedule {
			return append(s.Clone(), ev(event.RequestCommit, "T0", int64(0)), ev(event.Commit, "T0"))
		}, "root does not commit"},
	}
	for _, c := range cases {
		err := mutate(c.f)
		if err == nil {
			t.Errorf("%s: accepted, want rejection", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestSerialAbortBeforeCreate(t *testing.T) {
	st := testType(t)
	s := event.Schedule{
		ev(event.Create, "T0"),
		ev(event.RequestCreate, "T0.0"),
		ev(event.Abort, "T0.0"),
		ev(event.ReportAbort, "T0.0"),
		ev(event.RequestCreate, "T0.1"),
		ev(event.Create, "T0.1"),
	}
	if err := Validate(s, st); err != nil {
		t.Fatal(err)
	}
}

func TestSeriallyCorrectFor(t *testing.T) {
	st := testType(t)
	beta := goodSerial()
	// alpha: a "concurrent" schedule whose projection at T0.0 matches.
	alpha := beta.Clone()
	if err := SeriallyCorrectFor(alpha, beta, st, "T0.0"); err != nil {
		t.Fatal(err)
	}
	// Mutating alpha's projection at T0.0 must be caught.
	alpha2 := beta.Clone()
	alpha2[13].Value = int64(7) // REQUEST_COMMIT(T0.0, ·)
	if err := SeriallyCorrectFor(alpha2, beta, st, "T0.0"); err == nil {
		t.Fatal("projection mismatch must be detected")
	}
	// A non-serial beta must be rejected.
	bad := beta.Clone()
	bad[6], bad[7] = bad[7], bad[6] // report before commit
	if err := SeriallyCorrectFor(alpha, bad, st, "T0.0"); err == nil {
		t.Fatal("non-serial candidate must be rejected")
	}
}

func TestSchedulerStateQueries(t *testing.T) {
	sc := NewScheduler()
	steps := event.Schedule{
		ev(event.RequestCreate, "T0.0"),
		ev(event.Create, "T0.0"),
		ev(event.RequestCommit, "T0.0", int64(3)),
		ev(event.Commit, "T0.0"),
	}
	for _, e := range steps {
		if err := sc.Step(e); err != nil {
			t.Fatal(err)
		}
	}
	if !sc.Created("T0.0") || !sc.Committed("T0.0") || sc.Aborted("T0.0") {
		t.Fatal("state queries wrong")
	}
	if v, ok := sc.CommitValue("T0.0"); !ok || v != int64(3) {
		t.Fatalf("CommitValue = %v,%v", v, ok)
	}
	if _, ok := sc.CommitValue("T0.9"); ok {
		t.Fatal("CommitValue for unknown transaction")
	}
}

// Lemma 6: only related transactions are live concurrently in a serial
// schedule — checked over every prefix of a known serial schedule.
func TestLemma6OnlyRelatedLive(t *testing.T) {
	s := goodSerial()
	txs := []tree.TID{"T0", "T0.0", "T0.1", "T0.0.0", "T0.0.1", "T0.1.0"}
	for n := 0; n <= len(s); n++ {
		prefix := s[:n]
		var live []tree.TID
		for _, u := range txs {
			if prefix.IsLive(u) {
				live = append(live, u)
			}
		}
		for i := 0; i < len(live); i++ {
			for j := i + 1; j < len(live); j++ {
				a, b := live[i], live[j]
				if !a.IsAncestorOf(b) && !b.IsAncestorOf(a) {
					t.Fatalf("prefix %d: unrelated %s and %s both live", n, a, b)
				}
			}
		}
	}
}
