package generic

import (
	"strings"
	"testing"

	"nestedtx/internal/event"
	"nestedtx/internal/tree"
)

func step(t *testing.T, s *Scheduler, evs ...event.Event) {
	t.Helper()
	for _, e := range evs {
		if err := s.Step(e); err != nil {
			t.Fatalf("step %s: %v", e, err)
		}
	}
}

func TestConcurrentSiblingsAllowed(t *testing.T) {
	s := NewScheduler()
	// Unlike the serial scheduler, siblings may be live simultaneously.
	step(t, s,
		event.Event{Kind: event.RequestCreate, T: "T0.0"},
		event.Event{Kind: event.RequestCreate, T: "T0.1"},
		event.Event{Kind: event.Create, T: "T0.0"},
		event.Event{Kind: event.Create, T: "T0.1"},
	)
	if !s.Created("T0.0") || !s.Created("T0.1") {
		t.Fatal("both siblings should be created")
	}
}

func TestAbortAfterWork(t *testing.T) {
	s := NewScheduler()
	step(t, s,
		event.Event{Kind: event.RequestCreate, T: "T0.0"},
		event.Event{Kind: event.Create, T: "T0.0"},
		event.Event{Kind: event.Abort, T: "T0.0"}, // created transactions may abort
		event.Event{Kind: event.ReportAbort, T: "T0.0"},
	)
	if !s.Aborted("T0.0") || !s.Returned("T0.0") {
		t.Fatal("abort state wrong")
	}
	// But not twice.
	if err := s.Step(event.Event{Kind: event.Abort, T: "T0.0"}); err == nil {
		t.Fatal("double abort must be rejected")
	}
}

func TestCommitRequiresChildrenReturned(t *testing.T) {
	s := NewScheduler()
	step(t, s,
		event.Event{Kind: event.RequestCreate, T: "T0.0"},
		event.Event{Kind: event.Create, T: "T0.0"},
		event.Event{Kind: event.RequestCreate, T: "T0.0.0"},
		event.Event{Kind: event.RequestCommit, T: "T0.0", Value: int64(1)},
	)
	err := s.Step(event.Event{Kind: event.Commit, T: "T0.0"})
	if err == nil || !strings.Contains(err.Error(), "not returned") {
		t.Fatalf("commit with outstanding child: %v", err)
	}
	step(t, s, event.Event{Kind: event.Abort, T: "T0.0.0"})
	step(t, s, event.Event{Kind: event.Commit, T: "T0.0"})
	if !s.Committed("T0.0") {
		t.Fatal("commit should now succeed")
	}
}

func TestInformPreconditions(t *testing.T) {
	s := NewScheduler()
	if err := s.Step(event.Event{Kind: event.InformCommitAt, T: "T0.0", Object: "X"}); err == nil {
		t.Fatal("inform-commit before commit must be rejected")
	}
	if err := s.Step(event.Event{Kind: event.InformAbortAt, T: "T0.0", Object: "X"}); err == nil {
		t.Fatal("inform-abort before abort must be rejected")
	}
	step(t, s,
		event.Event{Kind: event.RequestCreate, T: "T0.0"},
		event.Event{Kind: event.RequestCommit, T: "T0.0", Value: int64(0)},
		event.Event{Kind: event.Commit, T: "T0.0"},
		event.Event{Kind: event.InformCommitAt, T: "T0.0", Object: "X"},
		event.Event{Kind: event.InformCommitAt, T: "T0.0", Object: "Y"}, // repeatable
		event.Event{Kind: event.InformCommitAt, T: "T0.0", Object: "X"}, // repeatable
	)
}

func TestReportPreconditions(t *testing.T) {
	s := NewScheduler()
	step(t, s,
		event.Event{Kind: event.RequestCreate, T: "T0.0"},
		event.Event{Kind: event.RequestCommit, T: "T0.0", Value: int64(5)},
		event.Event{Kind: event.Commit, T: "T0.0"},
	)
	if err := s.Step(event.Event{Kind: event.ReportCommit, T: "T0.0", Value: int64(6)}); err == nil {
		t.Fatal("report with wrong value must be rejected")
	}
	step(t, s, event.Event{Kind: event.ReportCommit, T: "T0.0", Value: int64(5)})
	if err := s.Step(event.Event{Kind: event.ReportAbort, T: "T0.0"}); err == nil {
		t.Fatal("report-abort of committed transaction must be rejected")
	}
}

func TestRootGuards(t *testing.T) {
	s := NewScheduler()
	if err := s.Step(event.Event{Kind: event.Commit, T: tree.Root}); err == nil {
		t.Fatal("root commit must be rejected")
	}
	if err := s.Step(event.Event{Kind: event.Abort, T: tree.Root}); err == nil {
		t.Fatal("root abort must be rejected")
	}
	// The root is create-requested initially.
	step(t, s, event.Event{Kind: event.Create, T: tree.Root})
}

func TestQueries(t *testing.T) {
	s := NewScheduler()
	step(t, s,
		event.Event{Kind: event.RequestCreate, T: "T0.0"},
		event.Event{Kind: event.RequestCreate, T: "T0.1"},
		event.Event{Kind: event.Create, T: "T0.0"},
		event.Event{Kind: event.RequestCommit, T: "T0.0", Value: int64(1)},
	)
	pc := s.PendingCreates()
	// T0 and T0.1 are pending creates; T0.0 is created.
	if len(pc) != 2 {
		t.Fatalf("pending creates = %v", pc)
	}
	if n := len(s.CommittableTransactions()); n != 1 {
		t.Fatalf("committable = %d", n)
	}
	if n := len(s.AbortableTransactions()); n != 2 {
		t.Fatalf("abortable = %d", n) // T0.0 and T0.1 (not the root)
	}
	if v, ok := s.CommitRequested("T0.0"); !ok || v != int64(1) {
		t.Fatal("CommitRequested")
	}
	if !s.CreateRequested("T0.1") || s.CreateRequested("T0.7") {
		t.Fatal("CreateRequested")
	}
}
