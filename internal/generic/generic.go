// Package generic implements the generic scheduler of §5.2.
//
// The generic scheduler is highly nondeterministic: it passes creation
// requests and responses between transactions and objects with arbitrary
// delay, may unilaterally abort any requested transaction that has not
// returned, and informs R/W Locking objects of transaction fates. Unlike
// the serial scheduler it lets siblings run concurrently and lets
// transactions abort after performing work.
package generic

import (
	"fmt"

	"nestedtx/internal/event"
	"nestedtx/internal/tree"
)

// Scheduler is the generic scheduler automaton's state: the same six sets
// as the serial scheduler, but with the §5.2 (weaker) preconditions.
type Scheduler struct {
	createRequested tree.Set
	created         tree.Set
	commitRequested map[tree.TID]event.Value
	committed       tree.Set
	aborted         tree.Set
	returned        tree.Set
}

// NewScheduler returns the scheduler in its initial state.
func NewScheduler() *Scheduler {
	return &Scheduler{
		createRequested: tree.NewSet(tree.Root),
		created:         tree.NewSet(),
		commitRequested: make(map[tree.TID]event.Value),
		committed:       tree.NewSet(),
		aborted:         tree.NewSet(),
		returned:        tree.NewSet(),
	}
}

// Committed reports whether COMMIT(t) has occurred.
func (s *Scheduler) Committed(t tree.TID) bool { return s.committed.Has(t) }

// Aborted reports whether ABORT(t) has occurred.
func (s *Scheduler) Aborted(t tree.TID) bool { return s.aborted.Has(t) }

// Created reports whether CREATE(t) has occurred.
func (s *Scheduler) Created(t tree.TID) bool { return s.created.Has(t) }

// Returned reports whether t has returned (committed or aborted).
func (s *Scheduler) Returned(t tree.TID) bool { return s.returned.Has(t) }

// CreateRequested reports whether REQUEST_CREATE(t) has occurred (or t is
// the root).
func (s *Scheduler) CreateRequested(t tree.TID) bool { return s.createRequested.Has(t) }

// CommitRequested returns the requested commit value for t.
func (s *Scheduler) CommitRequested(t tree.TID) (event.Value, bool) {
	v, ok := s.commitRequested[t]
	return v, ok
}

// Enabled checks the §5.2 precondition of e in the current state.
func (s *Scheduler) Enabled(e event.Event) error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("generic scheduler: %s: %s", e, fmt.Sprintf(format, args...))
	}
	switch e.Kind {
	case event.RequestCreate, event.RequestCommit:
		return nil // inputs always enabled
	case event.Create:
		if !s.createRequested.Has(e.T) {
			return fail("creation not requested")
		}
		if s.created.Has(e.T) {
			return fail("already created")
		}
		return nil
	case event.Commit:
		t := e.T
		if t == tree.Root {
			return fail("the root does not commit")
		}
		if _, ok := s.commitRequested[t]; !ok {
			return fail("commit not requested")
		}
		if s.returned.Has(t) {
			return fail("already returned")
		}
		if c, ok := s.requestedChildNotReturned(t); ok {
			return fail("child %s requested but not returned", c)
		}
		return nil
	case event.Abort:
		t := e.T
		if t == tree.Root {
			return fail("the root does not abort")
		}
		if !s.createRequested.Has(t) {
			return fail("creation not requested")
		}
		if s.returned.Has(t) {
			return fail("already returned")
		}
		return nil
	case event.ReportCommit:
		if !s.committed.Has(e.T) {
			return fail("not committed")
		}
		if v, ok := s.commitRequested[e.T]; !ok || v != e.Value {
			return fail("value %v was not the requested commit value", e.Value)
		}
		return nil
	case event.ReportAbort:
		if !s.aborted.Has(e.T) {
			return fail("not aborted")
		}
		return nil
	case event.InformCommitAt:
		if !s.committed.Has(e.T) {
			return fail("not committed")
		}
		return nil
	case event.InformAbortAt:
		if !s.aborted.Has(e.T) {
			return fail("not aborted")
		}
		return nil
	default:
		return fail("unknown operation kind")
	}
}

func (s *Scheduler) requestedChildNotReturned(t tree.TID) (tree.TID, bool) {
	for u := range s.createRequested {
		if u.Parent() == t && !s.returned.Has(u) {
			return u, true
		}
	}
	return "", false
}

// Apply performs the state change of e. Callers should check Enabled first
// for output operations.
func (s *Scheduler) Apply(e event.Event) {
	switch e.Kind {
	case event.RequestCreate:
		s.createRequested.Add(e.T)
	case event.RequestCommit:
		if _, ok := s.commitRequested[e.T]; !ok {
			s.commitRequested[e.T] = e.Value
		}
	case event.Create:
		s.created.Add(e.T)
	case event.Commit:
		s.committed.Add(e.T)
		s.returned.Add(e.T)
	case event.Abort:
		s.aborted.Add(e.T)
		s.returned.Add(e.T)
	}
}

// Step checks e's precondition and applies it.
func (s *Scheduler) Step(e event.Event) error {
	if err := s.Enabled(e); err != nil {
		return err
	}
	s.Apply(e)
	return nil
}

// PendingCreates returns transactions whose creation is requested but which
// have neither been created nor returned.
func (s *Scheduler) PendingCreates() []tree.TID {
	var out []tree.TID
	for t := range s.createRequested {
		if !s.created.Has(t) && !s.returned.Has(t) {
			out = append(out, t)
		}
	}
	return out
}

// CommittableTransactions returns transactions whose COMMIT is enabled.
func (s *Scheduler) CommittableTransactions() []tree.TID {
	var out []tree.TID
	for t := range s.commitRequested {
		if s.Enabled(event.Event{Kind: event.Commit, T: t}) == nil {
			out = append(out, t)
		}
	}
	return out
}

// AbortableTransactions returns transactions whose ABORT is enabled.
func (s *Scheduler) AbortableTransactions() []tree.TID {
	var out []tree.TID
	for t := range s.createRequested {
		if t != tree.Root && !s.returned.Has(t) {
			out = append(out, t)
		}
	}
	return out
}
