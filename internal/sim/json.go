package sim

import (
	"encoding/json"
	"io"
)

// The JSON emitters mirror WriteTable/WriteEngineTable for machines: one
// JSON object per experiment row, newline-delimited, so benchmark
// trajectories can be tracked across PRs (BENCH_*.json) without parsing
// aligned tables.

// resultJSON is the machine-readable projection of one engine's Result.
type resultJSON struct {
	TxPerSec  float64 `json:"tx_s"`
	OpsPerSec float64 `json:"ops_s"`
	P50Micros int64   `json:"p50_us"`
	P90Micros int64   `json:"p90_us"`
	P95Micros int64   `json:"p95_us"`
	P99Micros int64   `json:"p99_us"`
	MaxMicros int64   `json:"max_us"`
	Committed int     `json:"committed"`
	Aborted   int     `json:"aborted"`
	Retried   int     `json:"retried"`
	Waits     uint64  `json:"waits"`
	Deadlocks uint64  `json:"deadlocks"`
	Wakeups   uint64  `json:"wakeups"`
	Spurious  uint64  `json:"spurious_wakeups"`
}

func toResultJSON(r Result) resultJSON {
	return resultJSON{
		TxPerSec:  r.Throughput(),
		OpsPerSec: r.OpsPerSec(),
		P50Micros: r.Percentile(50).Microseconds(),
		P90Micros: r.Percentile(90).Microseconds(),
		P95Micros: r.Percentile(95).Microseconds(),
		P99Micros: r.Percentile(99).Microseconds(),
		MaxMicros: r.Percentile(100).Microseconds(),
		Committed: r.Committed,
		Aborted:   r.Aborted,
		Retried:   r.Retried,
		Waits:     r.Stats.Waits,
		Deadlocks: r.Stats.Deadlocks,
		Wakeups:   r.Stats.Wakeups,
		Spurious:  r.Stats.SpuriousWakeups,
	}
}

// rowJSON is one sweep row: the R/W engine always, baselines when run.
type rowJSON struct {
	Exp    string      `json:"exp"`
	Label  string      `json:"label"`
	Seed   int64       `json:"seed"`
	RW     resultJSON  `json:"rw"`
	Excl   *resultJSON `json:"excl,omitempty"`
	Serial *resultJSON `json:"serial,omitempty"`
}

// WriteJSON emits one JSON object per sweep point, newline-delimited.
func WriteJSON(w io.Writer, exp string, points []SweepPoint) error {
	enc := json.NewEncoder(w)
	for _, p := range points {
		row := rowJSON{Exp: exp, Label: p.Label, Seed: p.RW.Workload.Seed, RW: toResultJSON(p.RW)}
		if p.HasBase {
			if p.Excl.Duration > 0 {
				excl := toResultJSON(p.Excl)
				row.Excl = &excl
			}
			if p.Serial.Duration > 0 {
				serial := toResultJSON(p.Serial)
				row.Serial = &serial
			}
		}
		if err := enc.Encode(row); err != nil {
			return err
		}
	}
	return nil
}

// engineRowJSON is one E9 engine-comparison row.
type engineRowJSON struct {
	Exp     string     `json:"exp"`
	Label   string     `json:"label"`
	Seed    int64      `json:"seed"`
	Locking resultJSON `json:"locking"`
	MVTO    struct {
		TxPerSec  float64 `json:"tx_s"`
		Committed int     `json:"committed"`
		Aborted   int     `json:"aborted"`
		Waits     uint64  `json:"waits"`
		TooLates  uint64  `json:"too_late"`
	} `json:"mvto"`
}

// WriteEngineJSON emits one JSON object per E9 point, newline-delimited.
func WriteEngineJSON(w io.Writer, exp string, points []EnginePoint) error {
	enc := json.NewEncoder(w)
	for _, p := range points {
		row := engineRowJSON{Exp: exp, Label: p.Label, Seed: p.Locking.Workload.Seed,
			Locking: toResultJSON(p.Locking)}
		row.MVTO.TxPerSec = p.MVTO.Throughput()
		row.MVTO.Committed = p.MVTO.Committed
		row.MVTO.Aborted = p.MVTO.Aborted
		row.MVTO.Waits = p.MVTO.Stats.Waits
		row.MVTO.TooLates = p.MVTO.Stats.TooLates
		if err := enc.Encode(row); err != nil {
			return err
		}
	}
	return nil
}
