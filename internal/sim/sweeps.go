package sim

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"
)

// newTabWriter adapts any writer into the standard table layout.
func newTabWriter(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
}

// SweepPoint is one measured configuration in a sweep.
type SweepPoint struct {
	Label   string
	RW      Result // read/write locking (Moss)
	Excl    Result // exclusive locking baseline
	Serial  Result // serial execution baseline
	HasBase bool   // whether Excl/Serial were run
}

// baseWorkload returns the common workload shape used by the standard
// experiments; sweeps override individual fields.
func baseWorkload(seed int64) Workload {
	return Workload{
		Objects:      8,
		Transactions: 200,
		Concurrency:  8,
		Depth:        1,
		Fanout:       2,
		OpsPerLeaf:   4,
		ReadFraction: 0.5,
		ThinkNs:      20000,
		Seed:         seed,
	}
}

// ReadFractionSweep is experiment E3: throughput of R/W locking vs the
// exclusive and serial baselines as the share of read-only transactions
// rises. The paper's claim: R/W Locking allows more concurrency than a
// serial system, and read locks are exactly what separates Moss' algorithm
// from exclusive locking (with no read accesses they coincide).
// Transactions are classified whole (read-only auditors vs write-only
// updaters) so the sweep isolates read concurrency from upgrade-deadlock
// effects.
func ReadFractionSweep(seed int64, fractions []float64) ([]SweepPoint, error) {
	var out []SweepPoint
	for _, f := range fractions {
		w := baseWorkload(seed)
		w.Depth = 0 // accesses directly in the top-level transaction
		w.OpsPerLeaf = 4
		w.WriterOps = 1 // single-object updates: no writer-writer cycles
		w.ThinkNs = 300000
		w.ReadTxFraction = f
		if f == 0 {
			w.ReadTxFraction = -1 // all writes, explicit
			w.ReadFraction = 0
			w.OpsPerLeaf = 1
		}
		w.HotspotFraction = 0.5 // contention makes the lock discipline visible
		rw, err := Run(w)
		if err != nil {
			return nil, err
		}
		we := w
		we.Exclusive = true
		excl, err := Run(we)
		if err != nil {
			return nil, err
		}
		ws := w
		ws.Sequential = true
		ws.Concurrency = 1
		serial, err := Run(ws)
		if err != nil {
			return nil, err
		}
		out = append(out, SweepPoint{
			Label:   fmt.Sprintf("read=%.0f%%", f*100),
			RW:      rw,
			Excl:    excl,
			Serial:  serial,
			HasBase: true,
		})
	}
	return out, nil
}

// DepthSweep is experiment E4: nesting depth 0..maxDepth, R/W locking vs
// serial execution of the same trees. Leaf work is mostly reads over many
// objects so the depth axis measures intra-transaction concurrency (the
// serial system forbids concurrent siblings; the R/W Locking system
// exploits them), not write-deadlock churn.
func DepthSweep(seed int64, maxDepth int) ([]SweepPoint, error) {
	var out []SweepPoint
	for d := 0; d <= maxDepth; d++ {
		w := baseWorkload(seed)
		w.Depth = d
		w.Fanout = 2
		w.Transactions = 120
		w.Objects = 16
		w.OpsPerLeaf = 2
		w.ReadFraction = 1 // pure-read trees: depth measures sibling concurrency
		w.ThinkNs = 300000
		rw, err := Run(w)
		if err != nil {
			return nil, err
		}
		ws := w
		ws.Sequential = true
		ws.Concurrency = 1
		serial, err := Run(ws)
		if err != nil {
			return nil, err
		}
		out = append(out, SweepPoint{
			Label:   fmt.Sprintf("depth=%d", d),
			RW:      rw,
			Serial:  serial,
			HasBase: true,
		})
	}
	return out, nil
}

// AbortSweep is experiment E5: throughput and recovery as the voluntary
// abort rate of subtransactions rises. Transactions are classified whole
// (reader/updater) and updaters touch one object per leaf, so the abort
// axis is not confounded by upgrade-deadlock churn.
func AbortSweep(seed int64, probs []float64) ([]SweepPoint, error) {
	var out []SweepPoint
	for _, p := range probs {
		w := baseWorkload(seed)
		w.AbortProb = p
		w.Depth = 2
		w.ReadTxFraction = 0.5
		w.WriterOps = 1
		w.Objects = 16
		w.ThinkNs = 50000
		rw, err := Run(w)
		if err != nil {
			return nil, err
		}
		out = append(out, SweepPoint{Label: fmt.Sprintf("abort=%.0f%%", p*100), RW: rw})
	}
	return out, nil
}

// InheritanceSweep is experiment E7: the same leaf work structured flat
// (depth 0, all accesses in the top-level transaction) versus nested
// (depth d, lock inheritance at each commit), isolating the cost of
// passing locks up the tree.
func InheritanceSweep(seed int64, depths []int) ([]SweepPoint, error) {
	var out []SweepPoint
	for _, d := range depths {
		w := baseWorkload(seed)
		w.Depth = d
		w.Fanout = 1 // single chain: same work, deeper inheritance
		w.Transactions = 300
		w.ThinkNs = 0
		rw, err := Run(w)
		if err != nil {
			return nil, err
		}
		out = append(out, SweepPoint{Label: fmt.Sprintf("chain=%d", d), RW: rw})
	}
	return out, nil
}

// WriteTable renders sweep points as an aligned table.
func WriteTable(w io.Writer, title string, points []SweepPoint) error {
	tw := newTabWriter(w)
	fmt.Fprintf(tw, "%s\n", title)
	fmt.Fprintf(tw, "point\trw tx/s\texcl tx/s\tserial tx/s\trw/serial\tops/s\tp50\tp95\twaits\tdeadlocks\tretries\taborted\n")
	for _, p := range points {
		excl, serial, ratio := "-", "-", "-"
		if p.HasBase {
			if p.Excl.Duration > 0 {
				excl = fmt.Sprintf("%.0f", p.Excl.Throughput())
			}
			if p.Serial.Duration > 0 {
				serial = fmt.Sprintf("%.0f", p.Serial.Throughput())
				if p.Serial.Throughput() > 0 {
					ratio = fmt.Sprintf("%.2fx", p.RW.Throughput()/p.Serial.Throughput())
				}
			}
		}
		fmt.Fprintf(tw, "%s\t%.0f\t%s\t%s\t%s\t%.0f\t%s\t%s\t%d\t%d\t%d\t%d\n",
			p.Label, p.RW.Throughput(), excl, serial, ratio, p.RW.OpsPerSec(),
			p.RW.Percentile(50).Round(10*time.Microsecond),
			p.RW.Percentile(95).Round(10*time.Microsecond),
			p.RW.Stats.Waits, p.RW.Stats.Deadlocks, p.RW.Retried, p.RW.Aborted)
	}
	return tw.Flush()
}
