// Package sim generates parameterised workloads for the nestedtx runtime
// and measures them — the experiment harness behind EXPERIMENTS.md and the
// benchmark suite.
//
// A workload is a population of top-level transactions, each a tree of
// concurrent subtransactions bottoming out in read/write accesses against
// a shared set of objects. Knobs cover the axes the paper's qualitative
// claims speak to: read fraction (read/write vs exclusive locking),
// nesting depth and fanout (intra-transaction concurrency), abort rate
// (recovery), and contention (hotspots).
package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"nestedtx"
	"nestedtx/internal/dst/clock"
)

// Workload parameterises one experiment run.
type Workload struct {
	// Objects is the number of shared counters.
	Objects int
	// Transactions is the number of top-level transactions to run.
	Transactions int
	// Concurrency is how many worker goroutines submit transactions.
	Concurrency int
	// Depth is the nesting depth: 0 means accesses directly in the
	// top-level transaction; d>0 adds d levels of subtransactions.
	Depth int
	// Fanout is the number of concurrent subtransactions per level.
	Fanout int
	// OpsPerLeaf is the number of accesses each leaf transaction performs.
	OpsPerLeaf int
	// WriterOps, when positive, overrides OpsPerLeaf for write-classified
	// transactions (only meaningful with ReadTxFraction): update
	// transactions touching a single object cannot deadlock with each
	// other, which isolates the read-concurrency effect in E3.
	WriterOps int
	// ReadFraction is the probability an access is a read (per-access
	// classification; mixing reads and writes of the same object inside
	// one transaction invites lock-upgrade deadlocks, which is itself an
	// effect worth measuring).
	ReadFraction float64
	// ReadTxFraction, when positive, classifies whole top-level
	// transactions instead: this fraction are read-only (every access a
	// read), the rest write-only. This is the clean design for the
	// read-concurrency experiment (E3) — no upgrade deadlocks.
	ReadTxFraction float64
	// ReadOnlyTxFraction routes this share of submitted transactions
	// through Manager.RunReadOnly — snapshot scans over the committed
	// version store (OpsPerLeaf CtrGet reads each) instead of locking
	// transactions. Unlike ReadTxFraction's read-locked transactions,
	// these take no locks at all; E17 compares the two regimes.
	ReadOnlyTxFraction float64
	// HotspotFraction routes this share of accesses to object 0.
	HotspotFraction float64
	// AbortProb is the probability a leaf subtransaction voluntarily
	// aborts after doing its work.
	AbortProb float64
	// ThinkNs sleeps this many nanoseconds after each access — latency
	// (I/O, downstream calls) incurred while holding locks. Sleeping
	// rather than spinning lets transactions overlap regardless of core
	// count, which is what the lock discipline governs.
	ThinkNs int
	// Exclusive selects the exclusive-locking baseline (all accesses
	// treated as writes).
	Exclusive bool
	// Sequential runs subtransactions sequentially instead of
	// concurrently (the serial-execution baseline when combined with
	// Concurrency=1).
	Sequential bool
	// Record enables formal event recording (for post-run verification).
	Record bool
	// Retries bounds deadlock-retry attempts per transaction.
	Retries int
	// Seed drives the workload's randomness.
	Seed int64
	// LockShards sets the lock-manager shard count; 0 falls back to
	// DefaultLockShards, then to the manager default (GOMAXPROCS).
	LockShards int
	// Clock is the time source for every sleep the workload performs —
	// think time and deadlock-retry backoff — and is passed through to
	// the manager's own retry backoffs. nil means the wall clock; the
	// deterministic simulator injects a virtual clock so identical seeds
	// produce identical schedules regardless of wall-clock scheduling.
	Clock clock.Clock `json:"-"`
}

// clock returns the workload's time source, defaulting to the wall
// clock.
func (w *Workload) clock() clock.Clock { return clock.Or(w.Clock) }

// DefaultLockShards, when non-zero, applies to every workload whose
// LockShards is unset — the txsim -shards flag sets it so one invocation
// sweeps all experiments at a chosen shard count.
var DefaultLockShards int

// DefaultReadOnlyFraction, when non-zero, applies to every workload
// whose ReadOnlyTxFraction is unset — the txsim -readonly-frac flag
// sets it so one invocation reroutes that share of every experiment's
// transactions through snapshot reads.
var DefaultReadOnlyFraction float64

// Validate fills defaults and rejects nonsense.
func (w *Workload) Validate() error {
	if w.Objects <= 0 || w.Transactions <= 0 {
		return errors.New("sim: need positive Objects and Transactions")
	}
	if w.Concurrency <= 0 {
		w.Concurrency = 1
	}
	if w.Fanout <= 0 {
		w.Fanout = 1
	}
	if w.OpsPerLeaf <= 0 {
		w.OpsPerLeaf = 1
	}
	if w.Retries <= 0 {
		w.Retries = 20
	}
	if w.ReadFraction < 0 || w.ReadFraction > 1 {
		return errors.New("sim: ReadFraction out of [0,1]")
	}
	if w.ReadOnlyTxFraction == 0 {
		w.ReadOnlyTxFraction = DefaultReadOnlyFraction
	}
	if w.ReadOnlyTxFraction < 0 || w.ReadOnlyTxFraction > 1 {
		return errors.New("sim: ReadOnlyTxFraction out of [0,1]")
	}
	return nil
}

// Result summarises a run.
type Result struct {
	Workload  Workload
	Duration  time.Duration
	Committed int
	Aborted   int // transactions that gave up (after retries)
	Retried   int // deadlock retries performed
	Ops       int64
	Stats     nestedtx.Stats
	Manager   *nestedtx.Manager // for verification / state inspection
	// Latencies holds one end-to-end latency sample per submitted
	// transaction (including deadlock retries).
	Latencies []time.Duration
}

// Percentile returns the p'th percentile latency (p in [0,100]) over the
// collected samples, or 0 when none were collected.
func (r Result) Percentile(p float64) time.Duration {
	if len(r.Latencies) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(r.Latencies))
	copy(sorted, r.Latencies)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p / 100 * float64(len(sorted)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Throughput returns committed transactions per second.
func (r Result) Throughput() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.Committed) / r.Duration.Seconds()
}

// OpsPerSec returns accesses per second.
func (r Result) OpsPerSec() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Duration.Seconds()
}

// Run executes the workload and returns its measurements.
func Run(w Workload) (Result, error) {
	if err := w.Validate(); err != nil {
		return Result{}, err
	}
	var opts []nestedtx.Option
	if w.Record {
		opts = append(opts, nestedtx.WithRecording())
	}
	if w.Exclusive {
		opts = append(opts, nestedtx.WithExclusiveLocking())
	}
	shards := w.LockShards
	if shards == 0 {
		shards = DefaultLockShards
	}
	if shards > 0 {
		opts = append(opts, nestedtx.WithLockShards(shards))
	}
	if w.Clock != nil {
		opts = append(opts, nestedtx.WithClock(w.Clock))
	}
	m := nestedtx.NewManager(opts...)
	for i := 0; i < w.Objects; i++ {
		if err := m.Register(objName(i), nestedtx.Counter{}); err != nil {
			return Result{}, err
		}
	}

	var ops, committed, aborted, retried int64
	var latMu sync.Mutex
	latencies := make([]time.Duration, 0, w.Transactions)
	jobs := make(chan int64)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < w.Concurrency; c++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(w.Seed ^ int64(worker)*0x9e3779b9))
			for range jobs {
				t0 := time.Now()
				err := runOne(m, &w, rng, &ops, &retried)
				lat := time.Since(t0)
				latMu.Lock()
				latencies = append(latencies, lat)
				latMu.Unlock()
				if err != nil {
					atomic.AddInt64(&aborted, 1)
				} else {
					atomic.AddInt64(&committed, 1)
				}
			}
		}(c)
	}
	for i := int64(0); i < int64(w.Transactions); i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	dur := time.Since(start)

	// Every run ends with the lock-table invariant check: a workload that
	// leaves residual locks or a corrupted table is a checker failure, not
	// a measurement. (Full S9 history verification needs WithRecording and
	// stays opt-in — see the test suite and the dst simulator.)
	if err := m.CheckInvariants(); err != nil {
		return Result{}, fmt.Errorf("sim: post-run lock-table invariants: %w", err)
	}

	return Result{
		Workload:  w,
		Duration:  dur,
		Committed: int(committed),
		Aborted:   int(aborted),
		Retried:   int(retried),
		Ops:       atomic.LoadInt64(&ops),
		Stats:     m.Stats(),
		Manager:   m,
		Latencies: latencies,
	}, nil
}

// runOne submits one top-level transaction, retrying deadlock victims
// with jittered backoff so competing victims restart out of phase.
func runOne(m *nestedtx.Manager, w *Workload, rng *rand.Rand, ops, retried *int64) error {
	if w.ReadOnlyTxFraction > 0 && rng.Float64() < w.ReadOnlyTxFraction {
		return snapshotScan(m, w, rng, ops)
	}
	var err error
	mode := opMix
	if w.ReadTxFraction > 0 {
		if rng.Float64() < w.ReadTxFraction {
			mode = allReads
		} else {
			mode = allWrites
		}
	}
	for attempt := 0; attempt < w.Retries; attempt++ {
		err = m.Run(func(tx *nestedtx.Tx) error {
			return body(tx, w, rng, w.Depth, mode, ops)
		})
		if !errors.Is(err, nestedtx.ErrDeadlock) {
			return err
		}
		atomic.AddInt64(retried, 1)
		shift := attempt
		if shift > 6 {
			shift = 6
		}
		// Route through the workload clock: under a wall clock this is
		// the old jittered backoff; under the simulator's virtual clock
		// the delay is event-queue time, so a "seeded" run no longer
		// depends on wall-clock scheduling.
		w.clock().Sleep(time.Duration(rng.Int63n(int64(100<<shift))) * time.Microsecond)
	}
	return err
}

// snapshotScan runs one read-only snapshot transaction: OpsPerLeaf
// CtrGet reads against the pinned committed prefix. It takes no locks,
// so it needs no deadlock-retry loop.
func snapshotScan(m *nestedtx.Manager, w *Workload, rng *rand.Rand, ops *int64) error {
	return m.RunReadOnly(func(s *nestedtx.Snapshot) error {
		for i := 0; i < w.OpsPerLeaf; i++ {
			if _, err := s.Read(objName(pickObject(w, rng)), nestedtx.CtrGet{}); err != nil {
				return err
			}
			atomic.AddInt64(ops, 1)
			w.think()
		}
		return nil
	})
}

// accessMode says how a transaction's accesses are classified.
type accessMode int

const (
	opMix     accessMode = iota // per-access coin flip (Workload.ReadFraction)
	allReads                    // read-only transaction
	allWrites                   // write-only transaction
)

// body is the recursive transaction shape: at depth>0 spawn Fanout
// subtransactions; at depth 0 perform the leaf accesses.
func body(tx *nestedtx.Tx, w *Workload, rng *rand.Rand, depth int, mode accessMode, ops *int64) error {
	if depth <= 0 {
		return leaf(tx, w, rng, mode, ops)
	}
	// Pre-draw child seeds so concurrent children don't share rng.
	seeds := make([]int64, w.Fanout)
	for i := range seeds {
		seeds[i] = rng.Int63()
	}
	if w.Sequential {
		for _, s := range seeds {
			childRng := rand.New(rand.NewSource(s))
			if err := tx.SubRetry(w.Retries, func(tx *nestedtx.Tx) error {
				return childBody(tx, w, childRng, depth-1, mode, ops)
			}); err != nil && !isVoluntary(err) {
				return err
			}
		}
		return nil
	}
	handles := make([]*nestedtx.Handle, 0, w.Fanout)
	for _, s := range seeds {
		childRng := rand.New(rand.NewSource(s))
		handles = append(handles, tx.Go(func(tx *nestedtx.Tx) error {
			return childBody(tx, w, childRng, depth-1, mode, ops)
		}))
	}
	for _, h := range handles {
		if err := h.Wait(); err != nil && !isVoluntary(err) {
			return err
		}
	}
	return nil
}

func childBody(tx *nestedtx.Tx, w *Workload, rng *rand.Rand, depth int, mode accessMode, ops *int64) error {
	if err := body(tx, w, rng, depth, mode, ops); err != nil {
		return err
	}
	if w.AbortProb > 0 && rng.Float64() < w.AbortProb {
		return errVoluntaryAbort
	}
	return nil
}

var errVoluntaryAbort = errors.New("sim: voluntary abort")

func isVoluntary(err error) bool { return errors.Is(err, errVoluntaryAbort) }

func leaf(tx *nestedtx.Tx, w *Workload, rng *rand.Rand, mode accessMode, ops *int64) error {
	n := w.OpsPerLeaf
	if mode == allWrites && w.WriterOps > 0 {
		n = w.WriterOps
	}
	for i := 0; i < n; i++ {
		obj := objName(pickObject(w, rng))
		read := false
		switch mode {
		case allReads:
			read = true
		case allWrites:
			read = false
		default:
			read = rng.Float64() < w.ReadFraction
		}
		var err error
		if read {
			_, err = tx.Read(obj, nestedtx.CtrGet{})
		} else {
			_, err = tx.Write(obj, nestedtx.CtrAdd{Delta: 1})
		}
		if err != nil {
			return err
		}
		atomic.AddInt64(ops, 1)
		w.think()
	}
	return nil
}

func pickObject(w *Workload, rng *rand.Rand) int {
	if w.HotspotFraction > 0 && rng.Float64() < w.HotspotFraction {
		return 0
	}
	return rng.Intn(w.Objects)
}

func objName(i int) string { return fmt.Sprintf("obj%d", i) }

// think models per-access latency while holding locks. It sleeps on the
// workload clock, so simulated runs spend event-queue time, not wall
// time.
func (w *Workload) think() {
	if w.ThinkNs <= 0 {
		return
	}
	w.clock().Sleep(time.Duration(w.ThinkNs))
}
