package sim

import (
	"testing"

	"nestedtx"
)

func TestRunSmallWorkloadVerifies(t *testing.T) {
	w := Workload{
		Objects:      3,
		Transactions: 20,
		Concurrency:  4,
		Depth:        1,
		Fanout:       2,
		OpsPerLeaf:   2,
		ReadFraction: 0.5,
		AbortProb:    0.1,
		Record:       true,
		Seed:         42,
	}
	res, err := Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed+res.Aborted != w.Transactions {
		t.Fatalf("committed %d + aborted %d != %d", res.Committed, res.Aborted, w.Transactions)
	}
	if err := res.Manager.Verify(); err != nil {
		t.Fatalf("real run failed Theorem-34 verification: %v", err)
	}
	if err := res.Manager.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRunExclusiveVerifies(t *testing.T) {
	w := Workload{
		Objects:      2,
		Transactions: 15,
		Concurrency:  4,
		Depth:        1,
		Fanout:       2,
		OpsPerLeaf:   2,
		ReadFraction: 0.8,
		Exclusive:    true,
		Record:       true,
		Seed:         7,
	}
	res, err := Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Manager.Verify(); err != nil {
		t.Fatalf("exclusive run failed verification: %v", err)
	}
}

func TestCounterConservation(t *testing.T) {
	// With no voluntary aborts and full retries, every transaction
	// commits; the counters must sum to the number of increments.
	w := Workload{
		Objects:      4,
		Transactions: 40,
		Concurrency:  8,
		Depth:        1,
		Fanout:       2,
		OpsPerLeaf:   3,
		ReadFraction: 0, // all increments
		Retries:      200,
		Seed:         3,
	}
	res, err := Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborted != 0 {
		t.Fatalf("aborted %d transactions; retries should have absorbed deadlocks", res.Aborted)
	}
	var total int64
	for i := 0; i < w.Objects; i++ {
		s, err := res.Manager.State(objName(i))
		if err != nil {
			t.Fatal(err)
		}
		total += s.(nestedtx.Counter).N
	}
	want := int64(res.Committed) * int64(w.Fanout) * int64(w.OpsPerLeaf)
	if total != want {
		t.Fatalf("counter total %d, want %d (ops recorded %d)", total, want, res.Ops)
	}
}

func TestRunMixedReadOnlyVerifies(t *testing.T) {
	// Half the transactions run as read-only snapshot scans (no locks),
	// interleaved with ordinary locking transactions. The recorded
	// schedule must still verify — the checker places each snapshot
	// transaction at its pin point in the commit order.
	w := Workload{
		Objects:            4,
		Transactions:       40,
		Concurrency:        8,
		Depth:              1,
		Fanout:             2,
		OpsPerLeaf:         3,
		ReadFraction:       0.25,
		ReadOnlyTxFraction: 0.5,
		Retries:            200,
		Record:             true,
		Seed:               11,
	}
	res, err := Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Manager.Metrics().Snapshot().SnapTxs; got == 0 {
		t.Fatal("no snapshot transactions ran at ReadOnlyTxFraction=0.5")
	}
	if err := res.Manager.Verify(); err != nil {
		t.Fatalf("mixed snapshot/locking run failed verification: %v", err)
	}
	if err := res.Manager.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateDefaults(t *testing.T) {
	w := Workload{Objects: 1, Transactions: 1}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if w.Concurrency != 1 || w.Fanout != 1 || w.OpsPerLeaf != 1 || w.Retries == 0 {
		t.Fatalf("defaults not applied: %+v", w)
	}
	bad := Workload{}
	if err := bad.Validate(); err == nil {
		t.Fatal("zero workload must be rejected")
	}
	bad2 := Workload{Objects: 1, Transactions: 1, ReadFraction: 1.5}
	if err := bad2.Validate(); err == nil {
		t.Fatal("out-of-range ReadFraction must be rejected")
	}
	bad3 := Workload{Objects: 1, Transactions: 1, ReadOnlyTxFraction: -0.1}
	if err := bad3.Validate(); err == nil {
		t.Fatal("out-of-range ReadOnlyTxFraction must be rejected")
	}
}

func TestRunMVTOVerifiesSerializable(t *testing.T) {
	w := Workload{
		Objects:      4,
		Transactions: 60,
		Concurrency:  8,
		Depth:        0,
		OpsPerLeaf:   3,
		ReadFraction: 0.5,
		Retries:      100,
		Seed:         11,
	}
	res, err := RunMVTO(w)
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed+res.Aborted != w.Transactions {
		t.Fatalf("committed %d + aborted %d != %d", res.Committed, res.Aborted, w.Transactions)
	}
	if err := res.Manager.VerifySerializable(res.Initial); err != nil {
		t.Fatalf("MVTO run not serializable: %v", err)
	}
}

func TestRunMVTORejectsNesting(t *testing.T) {
	w := Workload{Objects: 1, Transactions: 1, Depth: 1}
	if _, err := RunMVTO(w); err == nil {
		t.Fatal("nested workloads must be rejected by the MVTO engine")
	}
}

func TestLatencyPercentiles(t *testing.T) {
	w := Workload{
		Objects:      2,
		Transactions: 16,
		Concurrency:  4,
		OpsPerLeaf:   1,
		ReadFraction: 0.5,
		Seed:         5,
	}
	res, err := Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Latencies) != w.Transactions {
		t.Fatalf("latency samples = %d, want %d", len(res.Latencies), w.Transactions)
	}
	if res.Percentile(0) > res.Percentile(50) || res.Percentile(50) > res.Percentile(100) {
		t.Fatal("percentiles must be monotone")
	}
	if (Result{}).Percentile(50) != 0 {
		t.Fatal("empty result percentile must be 0")
	}
}
