package sim

import (
	"strings"
	"testing"
)

// TestSweepsSmoke runs one point of each standard sweep and renders the
// tables — the experiment plumbing itself under test.
func TestSweepsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps are slow in -short mode")
	}
	var sb strings.Builder

	e3, err := ReadFractionSweep(1, []float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(e3) != 1 || e3[0].RW.Committed == 0 || !e3[0].HasBase {
		t.Fatalf("E3 point malformed: %+v", e3[0])
	}
	if err := WriteTable(&sb, "E3", e3); err != nil {
		t.Fatal(err)
	}

	e4, err := DepthSweep(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(e4) != 2 {
		t.Fatalf("E4 points = %d", len(e4))
	}
	if err := WriteTable(&sb, "E4", e4); err != nil {
		t.Fatal(err)
	}

	e5, err := AbortSweep(1, []float64{0.2})
	if err != nil {
		t.Fatal(err)
	}
	if len(e5) != 1 || e5[0].RW.Committed == 0 {
		t.Fatalf("E5 point malformed")
	}

	e7, err := InheritanceSweep(1, []int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(e7) != 2 {
		t.Fatalf("E7 points = %d", len(e7))
	}

	e9, err := EngineSweep(1, []float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(e9) != 1 || e9[0].MVTO.Committed == 0 {
		t.Fatalf("E9 point malformed")
	}
	if err := WriteEngineTable(&sb, "E9", e9); err != nil {
		t.Fatal(err)
	}

	out := sb.String()
	for _, want := range []string{"E3", "E4", "rw tx/s", "mvto tx/s", "read=50%", "depth=1"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q", want)
		}
	}
}
