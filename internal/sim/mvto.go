package sim

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"nestedtx/internal/adt"
	"nestedtx/internal/mvto"
)

// MVTOResult summarises a run on the multi-version timestamp engine.
type MVTOResult struct {
	Workload  Workload
	Duration  time.Duration
	Committed int
	Aborted   int // transactions that gave up after retries
	Ops       int64
	Stats     mvto.Stats
	Manager   *mvto.Manager
	Initial   map[string]adt.State
}

// Throughput returns committed transactions per second.
func (r MVTOResult) Throughput() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.Committed) / r.Duration.Seconds()
}

// RunMVTO executes a *flat* workload (Depth must be 0; nesting is the
// locking engine's territory — see the package comment of internal/mvto)
// on the multi-version timestamp-ordering engine, with the same
// transaction population and classification as Run.
func RunMVTO(w Workload) (MVTOResult, error) {
	if err := w.Validate(); err != nil {
		return MVTOResult{}, err
	}
	if w.Depth != 0 {
		return MVTOResult{}, errors.New("sim: RunMVTO requires Depth == 0 (flat transactions)")
	}
	m := mvto.New()
	initial := make(map[string]adt.State, w.Objects)
	for i := 0; i < w.Objects; i++ {
		initial[objName(i)] = adt.Counter{}
		if err := m.Register(objName(i), adt.Counter{}); err != nil {
			return MVTOResult{}, err
		}
	}

	var ops, committed, aborted int64
	jobs := make(chan int64)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < w.Concurrency; c++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(w.Seed ^ int64(worker)*0x9e3779b9))
			for range jobs {
				mode := opMix
				if w.ReadTxFraction > 0 {
					if rng.Float64() < w.ReadTxFraction {
						mode = allReads
					} else {
						mode = allWrites
					}
				}
				err := m.Run(w.Retries, func(tx *mvto.Tx) error {
					return mvtoLeaf(tx, &w, rng, mode, &ops)
				})
				if err != nil {
					atomic.AddInt64(&aborted, 1)
				} else {
					atomic.AddInt64(&committed, 1)
				}
			}
		}(c)
	}
	for i := int64(0); i < int64(w.Transactions); i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	dur := time.Since(start)

	return MVTOResult{
		Workload:  w,
		Duration:  dur,
		Committed: int(committed),
		Aborted:   int(aborted),
		Ops:       atomic.LoadInt64(&ops),
		Stats:     m.Stats(),
		Manager:   m,
		Initial:   initial,
	}, nil
}

func mvtoLeaf(tx *mvto.Tx, w *Workload, rng *rand.Rand, mode accessMode, ops *int64) error {
	n := w.OpsPerLeaf
	if mode == allWrites && w.WriterOps > 0 {
		n = w.WriterOps
	}
	for i := 0; i < n; i++ {
		obj := objName(pickObject(w, rng))
		read := false
		switch mode {
		case allReads:
			read = true
		case allWrites:
			read = false
		default:
			read = rng.Float64() < w.ReadFraction
		}
		var err error
		if read {
			_, err = tx.Read(obj, adt.CtrGet{})
		} else {
			_, err = tx.Write(obj, adt.CtrAdd{Delta: 1})
		}
		if err != nil {
			return err
		}
		atomic.AddInt64(ops, 1)
		w.think()
	}
	return nil
}

// EnginePoint is one row of the E9 engine comparison.
type EnginePoint struct {
	Label   string
	Locking Result
	MVTO    MVTOResult
}

// EngineSweep is experiment E9: Moss read/write locking vs Reed-style
// multi-version timestamp ordering on identical flat workloads, sweeping
// the read-only transaction share. Locking trades waits (and deadlock
// victims) for no wasted work; MVTO never blocks writers but discards
// too-late ones.
func EngineSweep(seed int64, fractions []float64) ([]EnginePoint, error) {
	var out []EnginePoint
	for _, f := range fractions {
		w := Workload{
			Objects:         8,
			Transactions:    200,
			Concurrency:     8,
			Depth:           0,
			OpsPerLeaf:      4,
			WriterOps:       1,
			ReadTxFraction:  f,
			HotspotFraction: 0.5,
			ThinkNs:         300000,
			Seed:            seed,
		}
		if f == 0 {
			w.ReadTxFraction = -1
			w.ReadFraction = 0
			w.OpsPerLeaf = 1
		}
		lock, err := Run(w)
		if err != nil {
			return nil, err
		}
		mv, err := RunMVTO(w)
		if err != nil {
			return nil, err
		}
		if err := mv.Manager.VerifySerializable(mv.Initial); err != nil {
			return nil, fmt.Errorf("sim: E9 point %v: %w", f, err)
		}
		out = append(out, EnginePoint{
			Label:   fmt.Sprintf("read=%.0f%%", f*100),
			Locking: lock,
			MVTO:    mv,
		})
	}
	return out, nil
}

// WriteEngineTable renders E9 points.
func WriteEngineTable(wr io.Writer, title string, points []EnginePoint) error {
	tw := newTabWriter(wr)
	fmt.Fprintf(tw, "%s\n", title)
	fmt.Fprintf(tw, "point\tlock tx/s\tmvto tx/s\tlock waits\tlock deadlocks\tmvto waits\tmvto too-late\tlock aborted\tmvto aborted\n")
	for _, p := range points {
		fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%d\t%d\t%d\t%d\t%d\t%d\n",
			p.Label, p.Locking.Throughput(), p.MVTO.Throughput(),
			p.Locking.Stats.Waits, p.Locking.Stats.Deadlocks,
			p.MVTO.Stats.Waits, p.MVTO.Stats.TooLates,
			p.Locking.Aborted, p.MVTO.Aborted)
	}
	return tw.Flush()
}
