package nestedtx

import (
	"context"
	"testing"
)

// The retry entry points clamp attempts <= 0 to a single attempt: a
// non-positive retry budget must never silently skip the body and report
// success for a transaction that never executed.

func TestRunRetryClampsNonPositiveAttempts(t *testing.T) {
	for _, attempts := range []int{0, -1, -100} {
		m := NewManager()
		m.MustRegister("x", Counter{})
		runs := 0
		if err := m.RunRetry(attempts, func(tx *Tx) error {
			runs++
			_, err := tx.Write("x", CtrAdd{Delta: 1})
			return err
		}); err != nil {
			t.Fatalf("attempts=%d: %v", attempts, err)
		}
		if runs != 1 {
			t.Fatalf("attempts=%d: body ran %d times, want 1", attempts, runs)
		}
		st, err := m.State("x")
		if err != nil {
			t.Fatal(err)
		}
		if st.(Counter).N != 1 {
			t.Fatalf("attempts=%d: x = %d, want 1 (the attempt must commit)", attempts, st.(Counter).N)
		}
	}
}

func TestSubRetryClampsNonPositiveAttempts(t *testing.T) {
	for _, attempts := range []int{0, -1} {
		m := NewManager()
		m.MustRegister("x", Counter{})
		runs := 0
		if err := m.Run(func(tx *Tx) error {
			return tx.SubRetry(attempts, func(sub *Tx) error {
				runs++
				_, err := sub.Write("x", CtrAdd{Delta: 1})
				return err
			})
		}); err != nil {
			t.Fatalf("attempts=%d: %v", attempts, err)
		}
		if runs != 1 {
			t.Fatalf("attempts=%d: body ran %d times, want 1", attempts, runs)
		}
	}
}

func TestRunRetryCtxClampsNonPositiveAttempts(t *testing.T) {
	for _, attempts := range []int{0, -1} {
		m := NewManager()
		m.MustRegister("x", Counter{})
		runs := 0
		if err := m.RunRetryCtx(context.Background(), attempts, func(tx *Tx) error {
			runs++
			_, err := tx.Write("x", CtrAdd{Delta: 1})
			return err
		}); err != nil {
			t.Fatalf("attempts=%d: %v", attempts, err)
		}
		if runs != 1 {
			t.Fatalf("attempts=%d: body ran %d times, want 1", attempts, runs)
		}
	}
}

// A clamped attempt still propagates the body's real error (no false
// success either way).
func TestRunRetryClampPropagatesError(t *testing.T) {
	m := NewManager()
	m.MustRegister("x", Counter{})
	wantErr := context.DeadlineExceeded // any sentinel
	err := m.RunRetry(0, func(tx *Tx) error { return wantErr })
	if err != wantErr {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
}
