// Package nestedtx is a nested-transaction runtime for Go implementing
// Moss' read/write locking algorithm, the subject of Fekete, Lynch,
// Merritt & Weihl, "Nested Transactions and Read/Write Locking" (PODS
// 1987).
//
// A transaction may contain concurrent subtransactions that are atomic
// with respect to one another and may abort independently; the effects of
// an aborted subtransaction are rolled back without disturbing its
// siblings or parent. Concurrency control follows Moss' rule: an access
// may proceed only when every holder of a conflicting lock is an ancestor
// of the access; on commit a transaction's locks (and, for write locks,
// its versions) are inherited by its parent, and on abort they are
// discarded.
//
// # Quick start
//
//	m := nestedtx.NewManager()
//	m.Register("acct", nestedtx.Account{Balance: 100})
//
//	err := m.Run(func(tx *nestedtx.Tx) error {
//		h := tx.Go(func(tx *nestedtx.Tx) error { // concurrent subtransaction
//			_, err := tx.Do("acct", nestedtx.AcctDeposit{Amount: 10})
//			return err
//		})
//		if _, err := tx.Do("acct", nestedtx.AcctBalance{}); err != nil {
//			return err
//		}
//		return h.Wait()
//	})
//
// # Correctness
//
// The runtime can record its schedule in the formal vocabulary of the
// paper ([WithRecording]); [Manager.Verify] then machine-checks the run
// against the paper's correctness condition (Theorem 34): the schedule is
// serially correct for every non-orphan transaction.
//
// # Deadlocks
//
// Moss' algorithm blocks accesses, so cycles are possible. The runtime
// detects wait-for cycles and aborts a victim, whose access returns
// [ErrDeadlock]; [Tx.SubRetry] and [Manager.RunRetry] re-run victims.
package nestedtx
