package nestedtx_test

import (
	"errors"
	"fmt"

	"nestedtx"
)

// The basic shape: register objects, run a transaction, observe committed
// state.
func ExampleManager_Run() {
	m := nestedtx.NewManager()
	m.MustRegister("balance", nestedtx.Account{Balance: 100})

	err := m.Run(func(tx *nestedtx.Tx) error {
		_, err := tx.Write("balance", nestedtx.AcctDeposit{Amount: 50})
		return err
	})
	if err != nil {
		fmt.Println("aborted:", err)
		return
	}
	s, _ := m.State("balance")
	fmt.Println(s)
	// Output: acct(150)
}

// A subtransaction's abort rolls back only its own effects; the parent
// continues.
func ExampleTx_Sub() {
	m := nestedtx.NewManager()
	m.MustRegister("ctr", nestedtx.Counter{})

	_ = m.Run(func(tx *nestedtx.Tx) error {
		_ = tx.Sub(func(sub *nestedtx.Tx) error {
			_, _ = sub.Do("ctr", nestedtx.CtrAdd{Delta: 100})
			return errors.New("changed my mind") // rolls back the +100
		})
		_, err := tx.Do("ctr", nestedtx.CtrAdd{Delta: 1})
		return err
	})
	s, _ := m.State("ctr")
	fmt.Println(s)
	// Output: ctr(1)
}

// Concurrent subtransactions run as goroutines and are awaited with
// Handle.Wait; the parent cannot commit past an unfinished child.
func ExampleTx_Go() {
	m := nestedtx.NewManager()
	m.MustRegister("ctr", nestedtx.Counter{})

	_ = m.Run(func(tx *nestedtx.Tx) error {
		a := tx.Go(func(tx *nestedtx.Tx) error {
			_, err := tx.Do("ctr", nestedtx.CtrAdd{Delta: 2})
			return err
		})
		b := tx.Go(func(tx *nestedtx.Tx) error {
			_, err := tx.Do("ctr", nestedtx.CtrAdd{Delta: 3})
			return err
		})
		if err := a.Wait(); err != nil {
			return err
		}
		return b.Wait()
	})
	s, _ := m.State("ctr")
	fmt.Println(s)
	// Output: ctr(5)
}

// With recording on, a run can be machine-checked against the paper's
// correctness condition (Theorem 34).
func ExampleManager_Verify() {
	m := nestedtx.NewManager(nestedtx.WithRecording())
	m.MustRegister("r", nestedtx.NewRegister(int64(0)))

	_ = m.Run(func(tx *nestedtx.Tx) error {
		_, err := tx.Write("r", nestedtx.RegWrite{V: int64(42)})
		return err
	})
	if err := m.Verify(); err != nil {
		fmt.Println("verification failed:", err)
		return
	}
	fmt.Println("serially correct")
	// Output: serially correct
}
