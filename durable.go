package nestedtx

import (
	"fmt"

	"nestedtx/internal/wal"
)

// DurableOptions configures the write-ahead log of a durable manager;
// see wal.Options. The zero value is production-ready: real file system,
// 4 MiB segments, immediate fsync batching (no added group-commit
// window).
type DurableOptions = wal.Options

// Recovery describes what OpenDurable found on disk; see wal.Recovery.
// Its Verify method machine-checks the recovered history against the
// Theorem-34 serial-correctness checker.
type Recovery = wal.Recovery

// WalStats reports a durable manager's log position; see wal.Stats.
type WalStats = wal.Stats

// OpenDurable opens (creating if needed) a durable Manager backed by a
// write-ahead log in dir. Any state a previous process left in dir is
// recovered first — newest valid checkpoint, plus the redo of every
// intact record past it, with a torn tail truncated at the first bad
// CRC — and the recovered objects are registered before the manager is
// returned. The returned Recovery reports what was found; call its
// Verify method to machine-check the recovered history.
//
// On a durable manager every top-level commit is write-ahead logged and
// fsynced (group-committed per DurableOptions.SyncWindow) before it is
// acknowledged, so an acknowledged commit survives kill -9. Objects and
// operations must use the library's serialisable types (see internal/adt);
// registering or committing something the codec cannot encode fails
// rather than logging a hole.
func OpenDurable(dir string, dopts DurableOptions, opts ...Option) (*Manager, *Recovery, error) {
	m := NewManager(opts...)
	dopts.Metrics = m.met
	lg, rec, err := wal.Open(dir, dopts)
	if err != nil {
		return nil, nil, err
	}
	for x, st := range rec.States() {
		if err := m.adopt(x, st); err != nil {
			lg.Close()
			return nil, nil, fmt.Errorf("nestedtx: adopt recovered object %q: %w", x, err)
		}
	}
	m.wal = lg
	return m, rec, nil
}

// Durable reports whether the manager write-ahead logs its commits.
func (m *Manager) Durable() bool { return m.wal != nil }

// Checkpoint snapshots the committed-to-root state of every object into
// the log and truncates the segments below it. It waits for in-flight
// commits to finish their durable apply; new commits block for the
// (short) duration of the snapshot.
func (m *Manager) Checkpoint() error {
	if m.wal == nil {
		return fmt.Errorf("nestedtx: Checkpoint requires a durable manager (OpenDurable)")
	}
	return m.wal.Checkpoint(m.lm.RootStates)
}

// SyncWAL forces any buffered log records to stable storage now. A no-op
// on non-durable managers. If the log has latched a fatal error (a
// failed append poisoned it), SyncWAL reports that error even when the
// flush itself succeeds — a server drain over a poisoned log must fail
// loudly, never report a clean shutdown.
func (m *Manager) SyncWAL() error {
	if m.wal == nil {
		return nil
	}
	return m.wal.Sync()
}

// CloseWAL flushes and closes the write-ahead log; the manager must not
// commit afterwards. A no-op on non-durable managers. Like SyncWAL it
// reports a latched fatal error rather than a clean shutdown.
func (m *Manager) CloseWAL() error {
	if m.wal == nil {
		return nil
	}
	return m.wal.Close()
}

// WalStats returns the log position of a durable manager; ok is false on
// a non-durable one.
func (m *Manager) WalStats() (stats WalStats, ok bool) {
	if m.wal == nil {
		return WalStats{}, false
	}
	return m.wal.Stats(), true
}

// WAL exposes the underlying log of a durable manager (nil otherwise).
// The replication shipper tails it; ordinary callers never need it.
func (m *Manager) WAL() *wal.Log { return m.wal }
