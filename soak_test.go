package nestedtx

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestSoak is a bounded endurance run of the full runtime: many workers,
// all data types, nested concurrent shapes, voluntary aborts and deadlock
// retries — with the formal verification and invariant checks at the end.
// TestNetworkChaosSoak (soak_net_test.go) is its network counterpart,
// running the same kind of workload through the server and client pool
// under faultnet's connection-failure schedules.
func TestSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	m := NewManager(WithRecording())
	m.MustRegister("reg", NewRegister(int64(0)))
	m.MustRegister("ctr", Counter{})
	m.MustRegister("acct", Account{Balance: 1000})
	m.MustRegister("set", NewIntSet())
	m.MustRegister("tbl", NewTable(nil))
	m.MustRegister("q", NewQueue())

	// Bound by transaction count, not wall time: Verify replays the whole
	// recorded history per transaction, so the history must stay test-sized.
	deadline := time.Now().Add(30 * time.Second)
	var wg sync.WaitGroup
	var committed, gaveUp int64
	var mu sync.Mutex
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for n := 0; n < 25 && time.Now().Before(deadline); n++ {
				err := m.RunRetry(40, func(tx *Tx) error {
					return soakBody(tx, rng.Int63(), 2)
				})
				mu.Lock()
				if err == nil {
					committed++
				} else if errors.Is(err, ErrDeadlock) {
					gaveUp++
				} else if !errors.Is(err, errSoakAbort) {
					mu.Unlock()
					t.Errorf("unexpected error: %v", err)
					return
				}
				mu.Unlock()
			}
		}(int64(w) + 1)
	}
	wg.Wait()
	if committed == 0 {
		t.Fatal("soak committed nothing")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := m.Verify(); err != nil {
		t.Fatalf("soak run failed verification (%d committed, %d gave up): %v", committed, gaveUp, err)
	}
	t.Logf("soak: %d committed, %d gave up, %d events verified", committed, gaveUp, m.rec.Len())
}

var errSoakAbort = errors.New("soak: voluntary abort")

func soakBody(tx *Tx, seed int64, depth int) error {
	rng := rand.New(rand.NewSource(seed))
	ops := 1 + rng.Intn(4)
	for i := 0; i < ops; i++ {
		var err error
		switch rng.Intn(8) {
		case 0:
			_, err = tx.Do("reg", RegWrite{V: rng.Int63n(100)})
		case 1:
			_, err = tx.Do("reg", RegRead{})
		case 2:
			_, err = tx.Do("ctr", CtrAdd{Delta: 1})
		case 3:
			_, err = tx.Do("acct", AcctDeposit{Amount: 1})
		case 4:
			_, err = tx.Do("set", SetInsert{X: rng.Int63n(16)})
		case 5:
			_, err = tx.Do("tbl", TblPut{K: fmt.Sprintf("k%d", rng.Intn(4)), V: rng.Int63n(50)})
		case 6:
			_, err = tx.Do("q", QEnqueue{V: rng.Int63n(10)})
		default:
			if depth > 0 {
				childSeed := rng.Int63()
				suberr := tx.Sub(func(sub *Tx) error {
					if e := soakBody(sub, childSeed, depth-1); e != nil {
						return e
					}
					if rng.Intn(4) == 0 {
						return errSoakAbort
					}
					return nil
				})
				if suberr != nil && !errors.Is(suberr, errSoakAbort) {
					return suberr
				}
				continue
			}
			_, err = tx.Do("ctr", CtrGet{})
		}
		if err != nil {
			return err
		}
	}
	return nil
}
