package nestedtx

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestRegisterRacesTransactionsAndStats is a -race stress test: Register
// of new objects races with in-flight transactions on already-registered
// objects and with concurrent Stats() readers. It asserts no data race
// (the detector's job), that every transaction on a registered object
// succeeds, and that the post-quiescence state is exactly the sum of the
// committed work.
func TestRegisterRacesTransactionsAndStats(t *testing.T) {
	const (
		preRegistered = 4
		lateObjects   = 12
		workers       = 8
		txPerWorker   = 40
	)
	m := NewManager() // no recording: this test is about runtime data races
	for i := 0; i < preRegistered; i++ {
		m.MustRegister(fmt.Sprintf("pre%d", i), Counter{})
	}

	// registered publishes the names transactions may currently touch.
	var mu sync.Mutex
	registered := []string{}
	for i := 0; i < preRegistered; i++ {
		registered = append(registered, fmt.Sprintf("pre%d", i))
	}
	pick := func(n int) string {
		mu.Lock()
		defer mu.Unlock()
		return registered[n%len(registered)]
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Registrar: keeps declaring new objects while transactions run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < lateObjects; i++ {
			name := fmt.Sprintf("late%d", i)
			m.MustRegister(name, Counter{})
			mu.Lock()
			registered = append(registered, name)
			mu.Unlock()
			time.Sleep(200 * time.Microsecond)
		}
	}()

	// Stats readers: hammer the counters throughout. They run until the
	// workers and registrar quiesce, so they get their own WaitGroup.
	var statsWG sync.WaitGroup
	var statsReads atomic.Int64
	for i := 0; i < 2; i++ {
		statsWG.Add(1)
		go func() {
			defer statsWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = m.Stats()
					_ = m.CheckInvariants()
					statsReads.Add(1)
				}
			}
		}()
	}

	// Workers: transactions over whatever is registered at pick time.
	var committedAdds atomic.Int64
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for j := 0; j < txPerWorker; j++ {
				obj := pick(w*txPerWorker + j)
				err := m.RunRetry(30, func(tx *Tx) error {
					if _, err := tx.Write(obj, CtrAdd{Delta: 1}); err != nil {
						return err
					}
					_, err := tx.Read(obj, CtrGet{})
					return err
				})
				if err != nil {
					errc <- fmt.Errorf("worker %d tx %d on %s: %w", w, j, obj, err)
					return
				}
				committedAdds.Add(1)
			}
		}(w)
	}

	waitWorkers := make(chan struct{})
	go func() { wg.Wait(); close(waitWorkers) }()
	select {
	case <-waitWorkers:
	case <-time.After(60 * time.Second):
		t.Fatal("stress run did not quiesce")
	}
	close(stop)
	statsWG.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if statsReads.Load() == 0 {
		t.Fatal("stats readers never ran")
	}

	// Post-quiescence: the counters must sum to exactly the committed work.
	var total int64
	mu.Lock()
	names := append([]string(nil), registered...)
	mu.Unlock()
	for _, name := range names {
		st, err := m.State(name)
		if err != nil {
			t.Fatal(err)
		}
		total += st.(Counter).N
	}
	if total != committedAdds.Load() {
		t.Fatalf("sum over objects = %d, want %d committed adds", total, committedAdds.Load())
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("post-quiescence invariants: %v", err)
	}
}

// TestRunCtxCancelWhileBlocked cancels a context while the transaction's
// access is parked on a per-object wait queue: the waiter must unblock
// promptly via the abort cascade, the transaction must roll back, and
// RunCtx must surface ctx.Err().
func TestRunCtxCancelWhileBlocked(t *testing.T) {
	m := NewManager()
	m.MustRegister("x", Counter{})

	// Holder: a transaction that write-locks x and parks until released.
	release := make(chan struct{})
	holderBlocked := make(chan struct{})
	holderDone := make(chan error, 1)
	go func() {
		holderDone <- m.Run(func(tx *Tx) error {
			if _, err := tx.Write("x", CtrAdd{Delta: 1}); err != nil {
				return err
			}
			close(holderBlocked)
			<-release
			return nil
		})
	}()
	<-holderBlocked

	// Victim: blocks acquiring x, then its context is cancelled.
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	victimDone := make(chan error, 1)
	go func() {
		victimDone <- m.RunCtx(ctx, func(tx *Tx) error {
			close(started)
			_, err := tx.Write("x", CtrAdd{Delta: 100})
			return err
		})
	}()
	<-started
	time.Sleep(5 * time.Millisecond) // let the access reach the wait queue
	cancel()
	select {
	case err := <-victimDone:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("RunCtx = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled RunCtx did not unblock while parked on the wait queue")
	}

	// The holder commits untouched; the cancelled write never landed.
	close(release)
	if err := <-holderDone; err != nil {
		t.Fatal(err)
	}
	st, err := m.State("x")
	if err != nil {
		t.Fatal(err)
	}
	if st.(Counter).N != 1 {
		t.Fatalf("x = %d, want 1 (cancelled write must roll back)", st.(Counter).N)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestAbortCascadeRacesTargetedWakeups races markAborted cascades (parents
// aborting spawned children that are parked on wait queues) against the
// targeted wakeups issued by concurrent commits and aborts on the same
// objects. Run under -race; asserts quiescence, counter consistency, and
// the lock-table⇄held-index invariants.
func TestAbortCascadeRacesTargetedWakeups(t *testing.T) {
	const (
		objects     = 4
		workers     = 8
		txPerWorker = 30
	)
	m := NewManager()
	names := make([]string, objects)
	for i := range names {
		names[i] = fmt.Sprintf("o%d", i)
		m.MustRegister(names[i], Counter{})
	}

	var committedAdds atomic.Int64
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := w * 2654435761
			for j := 0; j < txPerWorker; j++ {
				rng ^= j<<16 + j
				first := names[(w+j)%objects]
				second := names[(w+j+1)%objects]
				abortParent := j%3 == 0
				adds := 0
				err := m.RunRetry(50, func(tx *Tx) error {
					adds = 0
					// Two concurrent children contending on shared objects:
					// when the parent aborts, their parked waiters must be
					// cancelled by the cascade while other transactions'
					// commits fire targeted wakeups on the same queues.
					h1 := tx.Go(func(sub *Tx) error {
						if _, err := sub.Write(first, CtrAdd{Delta: 1}); err != nil {
							return err
						}
						_, err := sub.Write(second, CtrAdd{Delta: 1})
						return err
					})
					h2 := tx.Go(func(sub *Tx) error {
						if _, err := sub.Write(second, CtrAdd{Delta: 1}); err != nil {
							return err
						}
						_, err := sub.Write(first, CtrAdd{Delta: 1})
						return err
					})
					if err := h1.Wait(); err != nil {
						return err
					}
					adds += 2
					if err := h2.Wait(); err != nil {
						return err
					}
					adds += 2
					if abortParent {
						return ErrAborted // voluntary abort: cascade + rollback
					}
					return nil
				})
				switch {
				case err == nil:
					committedAdds.Add(int64(adds))
				case abortParent && errors.Is(err, ErrAborted):
					// expected voluntary abort
				case errors.Is(err, ErrDeadlock):
					// retries exhausted under extreme contention: legal
				default:
					errc <- fmt.Errorf("worker %d tx %d: %w", w, j, err)
					return
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(120 * time.Second):
		t.Fatal("cascade/wakeup stress did not quiesce")
	}
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	// Post-quiescence: object states sum to exactly the committed adds.
	var total int64
	for _, name := range names {
		st, err := m.State(name)
		if err != nil {
			t.Fatal(err)
		}
		total += st.(Counter).N
	}
	if total != committedAdds.Load() {
		t.Fatalf("sum over objects = %d, want %d committed adds", total, committedAdds.Load())
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("post-quiescence invariants: %v", err)
	}
}

// TestRunRetryCtxCancelDuringBackoff pins the RunRetryCtx contract: a
// context cancelled between deadlock-backoff attempts stops the retry
// loop promptly, with both the context error and the deadlock visible.
func TestRunRetryCtxCancelDuringBackoff(t *testing.T) {
	m := NewManager()
	m.MustRegister("a", Counter{})
	m.MustRegister("b", Counter{})

	// Manufacture a deterministic deadlock: two transactions lock a and b
	// in opposite orders. The victim's RunRetryCtx would normally back
	// off and retry forever (attempts is huge); cancelling the context
	// must stop it.
	ctx, cancel := context.WithCancel(context.Background())
	firstA := make(chan struct{})
	firstB := make(chan struct{})
	var once sync.Once

	var wg sync.WaitGroup
	errs := make([]error, 2)
	body := func(first, second string, mine, other chan struct{}) func(*Tx) error {
		started := false
		return func(tx *Tx) error {
			if _, err := tx.Write(first, CtrAdd{Delta: 1}); err != nil {
				return err
			}
			if !started {
				started = true
				close(mine)
				<-other
			}
			_, err := tx.Write(second, CtrAdd{Delta: 1})
			if err != nil {
				// One of the two is the victim; as soon as either sees the
				// deadlock, cancel the context so neither retries forever.
				once.Do(cancel)
			}
			return err
		}
	}
	wg.Add(2)
	go func() {
		defer wg.Done()
		errs[0] = m.RunRetryCtx(ctx, 1_000_000, body("a", "b", firstA, firstB))
	}()
	go func() {
		defer wg.Done()
		errs[1] = m.RunRetryCtx(ctx, 1_000_000, body("b", "a", firstB, firstA))
	}()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("RunRetryCtx did not return after cancellation")
	}
	// At least one side must report the cancellation; no side may report
	// success, since the context died before anyone could commit... except
	// the survivor may have committed before cancel landed. Accept: each
	// error is nil, ctx.Err, or a deadlock already in flight.
	sawCancel := false
	for i, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) {
			sawCancel = true
		} else if !errors.Is(err, ErrDeadlock) && !errors.Is(err, ErrAborted) {
			t.Fatalf("side %d: unexpected error %v", i, err)
		}
	}
	if errs[0] == nil && errs[1] == nil {
		t.Fatal("both sides committed despite forced deadlock + cancel")
	}
	_ = sawCancel // the race decides whether cancel or the deadlock surfaces first
}

// TestRunRetryCtxRetriesDeadlockVictims checks the happy path: deadlock
// victims under an un-cancelled context are retried and eventually
// commit, like RunRetry.
func TestRunRetryCtxRetriesDeadlockVictims(t *testing.T) {
	m := NewManager(WithRecording())
	m.MustRegister("a", Counter{})
	m.MustRegister("b", Counter{})
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			first, second := "a", "b"
			if i%2 == 1 {
				first, second = second, first
			}
			errc <- m.RunRetryCtx(context.Background(), 50, func(tx *Tx) error {
				if _, err := tx.Write(first, CtrAdd{Delta: 1}); err != nil {
					return err
				}
				_, err := tx.Write(second, CtrAdd{Delta: 1})
				return err
			})
		}(i)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, obj := range []string{"a", "b"} {
		st, err := m.State(obj)
		if err != nil {
			t.Fatal(err)
		}
		if got := st.(Counter).N; got != 8 {
			t.Fatalf("%s = %d, want 8", obj, got)
		}
	}
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
}
