package nestedtx

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"nestedtx/internal/lockmgr"
)

// objInShard returns n distinct object names that hash to the given
// shard under a shards-way partition, so tests can place deadlock
// cycles exactly on or across shard boundaries.
func objInShard(t *testing.T, shard, shards, n int) []string {
	t.Helper()
	var out []string
	for i := 0; len(out) < n; i++ {
		name := fmt.Sprintf("s%d_obj%d", shard, i)
		if lockmgr.ShardOf(name, shards) == shard {
			out = append(out, name)
		}
		if i > 100000 {
			t.Fatalf("no %d names hashing to shard %d/%d", n, shard, shards)
		}
	}
	return out
}

// runCycle runs one transaction per (first, second) object pair, with a
// rendezvous between the first and second write so every transaction
// holds its first lock before requesting its second — the canonical
// deadlock build-up. It returns how many transactions were chosen as
// deadlock victims and fails the test on any other error.
func runCycle(t *testing.T, m *Manager, pairs [][2]string) int {
	t.Helper()
	barrier := make(chan struct{}, len(pairs))
	rendezvous := func() {
		barrier <- struct{}{}
		for len(barrier) < cap(barrier) {
		}
	}
	var wg sync.WaitGroup
	res := make([]error, len(pairs))
	for i, p := range pairs {
		wg.Add(1)
		go func(i int, first, second string) {
			defer wg.Done()
			res[i] = m.Run(func(tx *Tx) error {
				if _, err := tx.Write(first, RegWrite{V: int64(i)}); err != nil {
					return err
				}
				rendezvous()
				_, err := tx.Write(second, RegWrite{V: int64(i)})
				return err
			})
		}(i, p[0], p[1])
	}
	wg.Wait()
	victims := 0
	for i, err := range res {
		if errors.Is(err, ErrDeadlock) {
			victims++
		} else if err != nil {
			t.Fatalf("transaction %d: unexpected error: %v", i, err)
		}
	}
	return victims
}

// checkAfterCycle is the common post-condition of the shard-boundary
// deadlock suite: exactly one victim was chosen, the survivors
// committed, the partitioned indexes are internally and mutually
// consistent, and the recorded schedule replays through the checker
// (Theorem 34 holds for the run that included the abort).
func checkAfterCycle(t *testing.T, m *Manager, victims int) {
	t.Helper()
	if victims != 1 {
		t.Fatalf("want exactly 1 deadlock victim, got %d", victims)
	}
	if got := m.Stats().Deadlocks; got != 1 {
		t.Fatalf("stats count %d deadlocks, want 1", got)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	if err := m.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

// TestShardDeadlockSameShard pins the local detection path: a 2-cycle
// whose objects live in one shard of four must be found and broken
// without ever escalating to the all-shard walk.
func TestShardDeadlockSameShard(t *testing.T) {
	const shards = 4
	m := NewManager(WithRecording(), WithLockShards(shards))
	if got := m.LockShards(); got != shards {
		t.Fatalf("LockShards = %d, want %d", got, shards)
	}
	objs := objInShard(t, 2, shards, 2)
	for _, x := range objs {
		m.MustRegister(x, NewRegister(int64(0)))
	}
	victims := runCycle(t, m, [][2]string{{objs[0], objs[1]}, {objs[1], objs[0]}})
	checkAfterCycle(t, m, victims)
	if got := m.Stats().Escalations; got != 0 {
		t.Fatalf("same-shard cycle escalated %d times; must stay local", got)
	}
}

// TestShardDeadlockTwoShards crosses one boundary: each transaction
// holds a lock in one shard and waits in the other, so neither shard's
// local view contains the whole cycle — detection must escalate, and
// still elect exactly one victim.
func TestShardDeadlockTwoShards(t *testing.T) {
	const shards = 4
	m := NewManager(WithRecording(), WithLockShards(shards))
	x := objInShard(t, 0, shards, 1)[0]
	y := objInShard(t, 1, shards, 1)[0]
	m.MustRegister(x, NewRegister(int64(0)))
	m.MustRegister(y, NewRegister(int64(0)))
	victims := runCycle(t, m, [][2]string{{x, y}, {y, x}})
	checkAfterCycle(t, m, victims)
	if got := m.Stats().Escalations; got == 0 {
		t.Fatal("cross-shard cycle broken without escalation: local walk cannot have seen it")
	}
}

// TestShardDeadlockThreeShards is the 3-transaction ring over three
// shards: t0 holds a (shard 0) and wants b (shard 1), t1 holds b and
// wants c (shard 2), t2 holds c and wants a. Every shard sees exactly
// one wait edge, so only the escalated walk can close the ring; it must
// abort exactly one transaction and let the other two commit.
func TestShardDeadlockThreeShards(t *testing.T) {
	const shards = 4
	m := NewManager(WithRecording(), WithLockShards(shards))
	a := objInShard(t, 0, shards, 1)[0]
	b := objInShard(t, 1, shards, 1)[0]
	c := objInShard(t, 2, shards, 1)[0]
	for _, x := range []string{a, b, c} {
		m.MustRegister(x, NewRegister(int64(0)))
	}
	victims := runCycle(t, m, [][2]string{{a, b}, {b, c}, {c, a}})
	checkAfterCycle(t, m, victims)
	if got := m.Stats().Escalations; got == 0 {
		t.Fatal("three-shard ring broken without escalation: local walk cannot have seen it")
	}
}

// TestShardPartitionInvariants runs a concurrent mixed workload over a
// many-shard manager while CheckInvariants races the traffic: the
// per-shard tables must partition the universe cleanly (every object in
// exactly the shard its hash names — checkLocked verifies placement),
// the cross-shard footprint and waiter indexes must reconcile with the
// queues at every instant, and the final schedule must replay. The
// workload is kept small because the checker's replay is super-linear
// in schedule length (cf. the unrecorded race stress test).
func TestShardPartitionInvariants(t *testing.T) {
	const shards = 8
	m := NewManager(WithRecording(), WithLockShards(shards))
	const objects = 32
	for i := 0; i < objects; i++ {
		m.MustRegister(fmt.Sprintf("o%d", i), NewRegister(int64(0)))
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := m.CheckInvariants(); err != nil {
				t.Errorf("invariants under load: %v", err)
				return
			}
		}
	}()
	var workers sync.WaitGroup
	for w := 0; w < 6; w++ {
		workers.Add(1)
		go func(w int) {
			defer workers.Done()
			for i := 0; i < 8; i++ {
				m.RunRetry(10, func(tx *Tx) error {
					for k := 0; k < 3; k++ {
						obj := fmt.Sprintf("o%d", (w*13+i*7+k*17)%objects)
						if _, err := tx.Write(obj, RegWrite{V: int64(i)}); err != nil {
							return err
						}
					}
					return nil
				})
			}
		}(w)
	}
	workers.Wait()
	close(stop)
	wg.Wait()
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("invariants at rest: %v", err)
	}
	if err := m.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
	if got := m.Stats().Shards; got != shards {
		t.Fatalf("Stats().Shards = %d, want %d", got, shards)
	}
}
