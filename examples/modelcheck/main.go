// Modelcheck: driving the formal I/O-automaton model directly.
//
// This example bypasses the goroutine runtime and works with the paper's
// objects themselves: it scripts a small R/W Locking system (transactions,
// M(X) lock objects, the generic scheduler), explores its nondeterminism
// with seeded drivers, and for each concurrent schedule constructs and
// prints the serial rearrangement witnessing Theorem 34.
//
// Run with: go run ./examples/modelcheck
package main

import (
	"fmt"
	"log"

	"nestedtx/internal/adt"
	"nestedtx/internal/checker"
	"nestedtx/internal/event"
	"nestedtx/internal/system"
	"nestedtx/internal/tree"
)

func main() {
	// Two top-level transactions over one register:
	//   T0.0 = seq( write(7), read )      T0.1 = par( read, write(9) )
	sys, err := system.New(
		map[string]adt.State{"X": adt.NewRegister(int64(0))},
		[]system.ChildSpec{
			system.Sub(&system.Program{
				Sequential: true,
				Children: []system.ChildSpec{
					system.Access("X", adt.RegWrite{V: int64(7)}),
					system.Access("X", adt.RegRead{}),
				},
			}),
			system.Sub(&system.Program{
				Children: []system.ChildSpec{
					system.Access("X", adt.RegRead{}),
					system.Access("X", adt.RegWrite{V: int64(9)}),
				},
			}),
		},
	)
	if err != nil {
		log.Fatal(err)
	}

	distinct := map[string]bool{}
	for seed := int64(0); seed < 50; seed++ {
		sched, err := sys.RunConcurrent(system.DriverConfig{Seed: seed, AbortProb: 0.1})
		if err != nil {
			log.Fatal(err)
		}
		distinct[sched.String()] = true
		if _, err := checker.Check(sched, sys.SystemType(), tree.Root); err != nil {
			log.Fatalf("seed %d: %v", seed, err)
		}
	}
	fmt.Printf("explored 50 seeds -> %d distinct concurrent schedules, all serially correct\n\n", len(distinct))

	// Beyond sampling: exhaustively enumerate a bounded slice of the
	// schedule space (bounded model checking) and check every schedule.
	verified, exhaustive, err := sys.Enumerate(system.EnumConfig{Limit: 2000}, func(s event.Schedule) bool {
		if err := checker.CheckAll(s, sys.SystemType()); err != nil {
			log.Fatalf("enumerated schedule violates Theorem 34: %v", err)
		}
		return true
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("enumerated %d schedules (space exhausted: %v), all serially correct\n\n", verified, exhaustive)

	// Show one rearrangement in full.
	sched, err := sys.RunConcurrent(system.DriverConfig{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	w, err := checker.Check(sched, sys.SystemType(), tree.Root)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("one concurrent schedule (seed 3):")
	for _, e := range sched {
		fmt.Println("  ", e)
	}
	fmt.Println("\nits serial witness (write-equivalent to visible(α,T0)):")
	for _, e := range w.Serial {
		fmt.Println("  ", e)
	}
}
