// Banking: concurrent transfers with read/write locking.
//
// Many tellers transfer money between accounts concurrently while auditors
// repeatedly read every balance. Moss' locking guarantees each audit sees
// a consistent total (transfers are atomic), read locks let audits overlap
// with one another, and deadlocked transfers are detected, aborted and
// retried.
//
// Run with: go run ./examples/banking
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"

	"nestedtx"
)

const (
	accounts       = 8
	initialBalance = 1000
	tellers        = 6
	transfersEach  = 25
	auditors       = 3
	auditsEach     = 10
)

func acct(i int) string { return fmt.Sprintf("acct%d", i) }

func main() {
	m := nestedtx.NewManager()
	for i := 0; i < accounts; i++ {
		m.MustRegister(acct(i), nestedtx.Account{Balance: initialBalance})
	}

	var wg sync.WaitGroup
	var mu sync.Mutex
	audited := make([]int64, 0, auditors*auditsEach)
	var transferred, refused int

	// Tellers: transfer a random amount between two random accounts, as
	// two nested legs so a refused withdrawal aborts the whole transfer.
	for t := 0; t < tellers; t++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < transfersEach; i++ {
				from, to := rng.Intn(accounts), rng.Intn(accounts)
				if from == to {
					continue
				}
				amt := int64(1 + rng.Intn(200))
				err := m.RunRetry(25, func(tx *nestedtx.Tx) error {
					v, err := tx.Write(acct(from), nestedtx.AcctWithdraw{Amount: amt})
					if err != nil {
						return err
					}
					if !v.(nestedtx.AcctResult).OK {
						return errRefused
					}
					_, err = tx.Write(acct(to), nestedtx.AcctDeposit{Amount: amt})
					return err
				})
				mu.Lock()
				if err == nil {
					transferred++
				} else if err == errRefused {
					refused++
				} else {
					log.Fatalf("transfer failed: %v", err)
				}
				mu.Unlock()
			}
		}(int64(t) + 1)
	}

	// Auditors: read every balance inside one transaction. Reads take
	// read locks, so audits overlap freely with each other.
	for a := 0; a < auditors; a++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for i := 0; i < auditsEach; i++ {
				var total int64
				err := m.RunRetry(25, func(tx *nestedtx.Tx) error {
					total = 0
					for j := 0; j < accounts; j++ {
						v, err := tx.Read(acct(j), nestedtx.AcctBalance{})
						if err != nil {
							return err
						}
						total += v.(int64)
					}
					return nil
				})
				if err != nil {
					log.Fatalf("audit failed: %v", err)
				}
				mu.Lock()
				audited = append(audited, total)
				mu.Unlock()
			}
		}(int64(a) + 100)
	}

	wg.Wait()

	want := int64(accounts * initialBalance)
	for _, total := range audited {
		if total != want {
			log.Fatalf("audit observed inconsistent total %d (want %d)", total, want)
		}
	}
	var final int64
	for i := 0; i < accounts; i++ {
		s, err := m.State(acct(i))
		if err != nil {
			log.Fatal(err)
		}
		final += s.(nestedtx.Account).Balance
	}
	st := m.Stats()
	fmt.Printf("transfers committed: %d, refused (insufficient funds): %d\n", transferred, refused)
	fmt.Printf("audits: %d, every one saw total %d\n", len(audited), want)
	fmt.Printf("final total: %d (conserved: %v)\n", final, final == want)
	fmt.Printf("lock stats: %d acquires, %d waits, %d deadlocks broken\n",
		st.Acquires, st.Waits, st.Deadlocks)
}

var errRefused = fmt.Errorf("insufficient funds")
