// Example remote: network clients contending on shared bank accounts
// through an in-process transaction server — with the network actively
// failing underneath them.
//
// It starts a recording server on a loopback listener and fronts it
// with a faultnet fault-injection proxy (added latency/jitter, plus a
// background goroutine that keeps severing every live connection). Two
// pooled workers concurrently move money between a checking and a
// savings account through the proxy: deadlock victims retry, and cut
// connections poison the client (ErrConnLost), get replaced by the
// pool's jittered-backoff redial, and the transfer re-runs safely —
// a lost connection's open transaction is aborted server-side.
//
// Afterwards the server drains, the recorded schedule is machine-checked
// against the paper's correctness condition (Theorem 34 — which the
// checker proves for every non-orphan transaction, and cut connections
// are exactly the orphan scenario), and money conservation is asserted.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"nestedtx"
	"nestedtx/client"
	"nestedtx/internal/faultnet"
	"nestedtx/internal/server"
)

func main() {
	mgr := nestedtx.NewManager(nestedtx.WithRecording())
	mgr.MustRegister("checking", nestedtx.Account{Balance: 1000})
	mgr.MustRegister("savings", nestedtx.Account{Balance: 1000})

	srv := server.New(mgr, server.Config{
		RequestTimeout: 10 * time.Second,
		IdleTimeout:    500 * time.Millisecond, // reap sessions orphaned by cuts
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(ln)
	fmt.Printf("server listening on %s\n", ln.Addr())

	// Front the server with a fault-injection proxy and keep cutting
	// every live connection while the workload runs.
	px, err := faultnet.New(ln.Addr().String(), faultnet.Faults{
		Latency: 200 * time.Microsecond,
		Jitter:  time.Millisecond,
	}, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fault proxy on %s (cutting connections every 25ms)\n", px.Addr())
	chaosDone := make(chan struct{})
	go func() {
		defer close(chaosDone)
		for i := 0; i < 20; i++ {
			time.Sleep(25 * time.Millisecond)
			px.CutAll()
		}
	}()

	pool, err := client.NewPool(px.Addr(), 2, client.WithTimeout(5*time.Second))
	if err != nil {
		log.Fatal(err)
	}

	// Each worker repeatedly transfers 10 between the accounts — in
	// opposite directions, so the transactions conflict on both objects.
	// Pool.RunRetry absorbs both deadlock victimhood and lost
	// connections (the body is safe to re-run: a cut connection's open
	// transaction never commits).
	transfer := func(from, to string) func(*client.Tx) error {
		return func(tx *client.Tx) error {
			return tx.Sub(func(sub *client.Tx) error {
				v, err := sub.Write(from, nestedtx.AcctWithdraw{Amount: 10})
				if err != nil {
					return err
				}
				if !v.(nestedtx.AcctResult).OK {
					return fmt.Errorf("insufficient funds in %s", from)
				}
				_, err = sub.Write(to, nestedtx.AcctDeposit{Amount: 10})
				return err
			})
		}
	}

	var wg sync.WaitGroup
	for i, dir := range [][2]string{{"checking", "savings"}, {"savings", "checking"}} {
		wg.Add(1)
		go func(i int, from, to string) {
			defer wg.Done()
			for n := 0; n < 20; n++ {
				if err := pool.RunRetry(100, transfer(from, to)); err != nil {
					log.Fatalf("worker %d transfer %d: %v", i, n, err)
				}
			}
		}(i, dir[0], dir[1])
	}
	wg.Wait()
	<-chaosDone

	pool.Close()
	px.Close()
	if err := srv.Shutdown(context.Background()); err != nil {
		log.Fatal(err)
	}
	if err := mgr.CheckInvariants(); err != nil {
		log.Fatalf("lock-table invariants violated: %v", err)
	}
	if err := mgr.Verify(); err != nil {
		log.Fatalf("schedule verification failed: %v", err)
	}

	checking, _ := mgr.State("checking")
	savings, _ := mgr.State("savings")
	st := srv.Counters()
	accepted, cut := px.Stats()
	ps := pool.Stats()
	fmt.Printf("final state (verified, Theorem 34 under faults): checking=%d savings=%d\n",
		checking.(nestedtx.Account).Balance, savings.(nestedtx.Account).Balance)
	fmt.Printf("server: %d sessions, %d requests, %d commits, %d aborts, %d deadlock victims\n",
		st.TotalSessions, st.Requests, st.Commits, st.Aborts, st.DeadlockVictims)
	fmt.Printf("proxy: %d connections accepted, %d cut; pool: %d redials, %d poisoned conns discarded\n",
		accepted, cut, ps.Redials, ps.Discarded)
	if total := checking.(nestedtx.Account).Balance + savings.(nestedtx.Account).Balance; total != 2000 {
		log.Fatalf("money not conserved: %d", total)
	}
	fmt.Println("money conserved: 2000")
}
