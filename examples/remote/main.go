// Example remote: two network clients contending on a shared bank
// account through an in-process transaction server.
//
// It starts a recording server on a loopback listener, connects two
// clients that concurrently move money between a checking and a savings
// account (forcing real lock conflicts and, occasionally, deadlock
// retries), drains the server, machine-checks the recorded schedule
// against the paper's correctness condition, and prints the final
// verified state.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"nestedtx"
	"nestedtx/client"
	"nestedtx/internal/server"
)

func main() {
	mgr := nestedtx.NewManager(nestedtx.WithRecording())
	mgr.MustRegister("checking", nestedtx.Account{Balance: 1000})
	mgr.MustRegister("savings", nestedtx.Account{Balance: 1000})

	srv := server.New(mgr, server.Config{RequestTimeout: 10 * time.Second})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(ln)
	addr := ln.Addr().String()
	fmt.Printf("server listening on %s\n", addr)

	// Each client repeatedly transfers 10 between the accounts — in
	// opposite directions, so the two sessions' transactions conflict on
	// both objects. RunRetry absorbs any deadlock victimhood.
	transfer := func(from, to string) func(*client.Tx) error {
		return func(tx *client.Tx) error {
			return tx.Sub(func(sub *client.Tx) error {
				v, err := sub.Write(from, nestedtx.AcctWithdraw{Amount: 10})
				if err != nil {
					return err
				}
				if !v.(nestedtx.AcctResult).OK {
					return fmt.Errorf("insufficient funds in %s", from)
				}
				_, err = sub.Write(to, nestedtx.AcctDeposit{Amount: 10})
				return err
			})
		}
	}

	var wg sync.WaitGroup
	for i, dir := range [][2]string{{"checking", "savings"}, {"savings", "checking"}} {
		wg.Add(1)
		go func(i int, from, to string) {
			defer wg.Done()
			c, err := client.Dial(addr)
			if err != nil {
				log.Fatalf("client %d: %v", i, err)
			}
			defer c.Close()
			for n := 0; n < 20; n++ {
				if err := c.RunRetry(20, transfer(from, to)); err != nil {
					log.Fatalf("client %d transfer %d: %v", i, n, err)
				}
			}
		}(i, dir[0], dir[1])
	}
	wg.Wait()

	if err := srv.Shutdown(context.Background()); err != nil {
		log.Fatal(err)
	}
	if err := mgr.Verify(); err != nil {
		log.Fatalf("schedule verification failed: %v", err)
	}

	checking, _ := mgr.State("checking")
	savings, _ := mgr.State("savings")
	st := srv.Counters()
	fmt.Printf("final state (verified, Theorem 34): checking=%d savings=%d\n",
		checking.(nestedtx.Account).Balance, savings.(nestedtx.Account).Balance)
	fmt.Printf("server: %d sessions, %d requests, %d commits, %d deadlock victims\n",
		st.TotalSessions, st.Requests, st.Commits, st.DeadlockVictims)
	if total := checking.(nestedtx.Account).Balance + savings.(nestedtx.Account).Balance; total != 2000 {
		log.Fatalf("money not conserved: %d", total)
	}
	fmt.Println("money conserved: 2000")
}
