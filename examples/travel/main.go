// Travel: concurrent subtransactions with independent aborts.
//
// Booking a trip reserves a flight, a hotel and a car *concurrently* —
// each reservation is a subtransaction spawned with Tx.Go. If the
// preferred hotel is sold out, only that subtransaction aborts (releasing
// whatever it had reserved); the parent books the fallback hotel while the
// flight and car legs stand. If nothing works the whole trip aborts and
// every reservation rolls back atomically.
//
// This is the RPC-structured nested-transaction use case from the paper's
// introduction: services calling services, each call atomic, failures
// contained.
//
// Run with: go run ./examples/travel
package main

import (
	"errors"
	"fmt"
	"log"
	"sync"

	"nestedtx"
)

var errSoldOut = errors.New("sold out")

// reserve takes one unit of capacity from a counter-typed inventory
// object, failing (and aborting its subtransaction) when none is left.
// CtrTake is a single conditional write — a read-then-write pair would
// invite lock-upgrade deadlocks between concurrent travellers.
func reserve(resource string) func(*nestedtx.Tx) error {
	return func(tx *nestedtx.Tx) error {
		v, err := tx.Write(resource, nestedtx.CtrTake{N: 1})
		if err != nil {
			return err
		}
		if !v.(nestedtx.TakeResult).OK {
			return errSoldOut
		}
		return nil
	}
}

func bookTrip(m *nestedtx.Manager) error {
	return m.RunRetry(50, func(tx *nestedtx.Tx) error {
		flight := tx.Go(reserve("flights"))
		car := tx.Go(reserve("cars"))
		// Hotel with fallback: the preferred hotel's abort is invisible to
		// the flight and car legs.
		hotel := tx.Go(func(tx *nestedtx.Tx) error {
			if err := tx.Sub(reserve("hotel/grand")); err == nil {
				return nil
			} else if !errors.Is(err, errSoldOut) {
				return err
			}
			return tx.Sub(reserve("hotel/budget"))
		})
		for _, h := range []*nestedtx.Handle{flight, car, hotel} {
			if err := h.Wait(); err != nil {
				return err // aborts the whole trip; all legs roll back
			}
		}
		return nil
	})
}

func main() {
	m := nestedtx.NewManager()
	m.MustRegister("flights", nestedtx.Counter{N: 10})
	m.MustRegister("cars", nestedtx.Counter{N: 10})
	m.MustRegister("hotel/grand", nestedtx.Counter{N: 3})
	m.MustRegister("hotel/budget", nestedtx.Counter{N: 5})

	const travellers = 12
	var wg sync.WaitGroup
	results := make([]error, travellers)
	for i := 0; i < travellers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = bookTrip(m)
		}(i)
	}
	wg.Wait()

	booked := 0
	for i, err := range results {
		switch {
		case err == nil:
			booked++
		case errors.Is(err, errSoldOut):
			fmt.Printf("traveller %2d: trip aborted (no rooms anywhere); all legs rolled back\n", i)
		default:
			log.Fatalf("traveller %d: %v", i, err)
		}
	}

	fmt.Printf("\n%d/%d trips booked\n", booked, travellers)
	remaining := map[string]int64{}
	var taken int64
	for _, r := range []string{"flights", "cars", "hotel/grand", "hotel/budget"} {
		s, err := m.State(r)
		if err != nil {
			log.Fatal(err)
		}
		remaining[r] = s.(nestedtx.Counter).N
		fmt.Printf("%-13s remaining: %d\n", r, remaining[r])
	}
	// Conservation: exactly `booked` units left each of flights and cars,
	// and `booked` rooms across the two hotels.
	taken = (10 - remaining["flights"]) + (10 - remaining["cars"]) +
		(3 - remaining["hotel/grand"]) + (5 - remaining["hotel/budget"])
	if taken != int64(3*booked) {
		log.Fatalf("inventory leak: %d units taken for %d trips", taken, booked)
	}
	fmt.Println("inventory conserved: every aborted leg was rolled back")
}
