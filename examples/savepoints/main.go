// Savepoints: System R recovery blocks as degenerate nested transactions.
//
// The paper's introduction traces nesting back to System R, where "a
// recovery block can be aborted and the transaction restarted at the last
// savepoint". A savepoint is exactly a *sequential* subtransaction: work
// since the savepoint either commits into the parent or rolls back to it,
// and the parent carries on either way.
//
// This example processes a batch of orders inside one transaction, one
// savepoint per order: bad orders roll back individually, the rest of the
// batch commits atomically.
//
// Run with: go run ./examples/savepoints
package main

import (
	"errors"
	"fmt"
	"log"

	"nestedtx"
)

type order struct {
	item string
	qty  int64
}

var errOutOfStock = errors.New("out of stock")

func main() {
	m := nestedtx.NewManager(nestedtx.WithRecording())
	m.MustRegister("stock/widget", nestedtx.Counter{N: 10})
	m.MustRegister("stock/gadget", nestedtx.Counter{N: 2})
	m.MustRegister("shipped", nestedtx.Counter{})

	batch := []order{
		{"widget", 4},
		{"gadget", 5}, // will fail: only 2 in stock
		{"widget", 3},
		{"gadget", 1},
	}

	var applied, skipped []order
	err := m.Run(func(tx *nestedtx.Tx) error {
		for _, o := range batch {
			o := o
			// Savepoint: a sequential subtransaction per order.
			err := tx.Sub(func(sp *nestedtx.Tx) error {
				v, err := sp.Write("stock/"+o.item, nestedtx.CtrTake{N: o.qty})
				if err != nil {
					return err
				}
				if !v.(nestedtx.TakeResult).OK {
					return errOutOfStock // rolls back to the savepoint
				}
				_, err = sp.Write("shipped", nestedtx.CtrAdd{Delta: o.qty})
				return err
			})
			switch {
			case err == nil:
				applied = append(applied, o)
			case errors.Is(err, errOutOfStock):
				skipped = append(skipped, o) // batch continues
			default:
				return err // real failure: abort the whole batch
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("applied: %v\nskipped: %v\n", applied, skipped)
	for _, name := range []string{"stock/widget", "stock/gadget", "shipped"} {
		s, err := m.State(name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-13s %v\n", name, s)
	}
	if err := m.Verify(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("schedule verified (Theorem 34)")
}
