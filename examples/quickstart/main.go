// Quickstart: a first nested transaction.
//
// A top-level transaction moves money between two accounts using a nested
// subtransaction per leg; a failed withdrawal aborts only its
// subtransaction, and the parent falls back to an overdraft account —
// exactly the independent-abort structure nested transactions exist for.
//
// Run with: go run ./examples/quickstart
package main

import (
	"errors"
	"fmt"
	"log"

	"nestedtx"
)

func main() {
	m := nestedtx.NewManager(nestedtx.WithRecording())
	m.MustRegister("checking", nestedtx.Account{Balance: 40})
	m.MustRegister("savings", nestedtx.Account{Balance: 500})
	m.MustRegister("rent", nestedtx.Account{Balance: 0})

	// Pay 100 of rent: try checking first; if that leg aborts (insufficient
	// funds), pay from savings instead.
	err := m.Run(func(tx *nestedtx.Tx) error {
		pay := func(from string) func(*nestedtx.Tx) error {
			return func(tx *nestedtx.Tx) error {
				v, err := tx.Write(from, nestedtx.AcctWithdraw{Amount: 100})
				if err != nil {
					return err
				}
				if !v.(nestedtx.AcctResult).OK {
					return errors.New("insufficient funds") // aborts this subtransaction only
				}
				_, err = tx.Write("rent", nestedtx.AcctDeposit{Amount: 100})
				return err
			}
		}
		if err := tx.Sub(pay("checking")); err != nil {
			fmt.Println("checking leg aborted:", err)
			return tx.Sub(pay("savings")) // sibling retry against a different account
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	for _, name := range []string{"checking", "savings", "rent"} {
		s, err := m.State(name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s %v\n", name, s)
	}

	// The runtime recorded its schedule in the paper's formal vocabulary;
	// verify the run satisfies Theorem 34 (serial correctness).
	if err := m.Verify(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("schedule verified: serially correct for every non-orphan transaction")
}
