package client

import (
	"errors"
	"fmt"
	"testing"

	"nestedtx/internal/wire"
)

// TestProbeRoleErrorCodes pins down which REPL_STATUS outcomes probeRole
// may read as "this endpoint can take writes". Only the dedicated
// not-configured code means "standalone writable server"; any other
// server-side error says nothing about the role and must fail the probe
// — a server answering bad_request or too_large is not a leader, and
// treating it as one would point the failover pool at a node that
// cannot serve transactions.
func TestProbeRoleErrorCodes(t *testing.T) {
	errResp := func(code string) string {
		return frame(fmt.Sprintf(`{"seq":1,"ok":false,"code":%q,"err":"scripted"}`, code))
	}
	cases := []struct {
		name     string
		resp     string
		wantRole string
		wantErr  bool
	}{
		{"not_configured is standalone leader", errResp(wire.CodeNotConfigured), "leader", false},
		{"bad_request is a probe failure", errResp(wire.CodeBadRequest), "", true},
		{"too_large is a probe failure", errResp(wire.CodeTooLarge), "", true},
		{"internal is a probe failure", errResp(wire.CodeInternal), "", true},
		{"unknown_tx is a probe failure", errResp(wire.CodeUnknownTx), "", true},
		{"shutdown is a probe failure", errResp(wire.CodeShutdown), "", true},
		{
			"leader payload",
			frame(`{"seq":1,"ok":true,"repl_status":{"role":"leader","next_lsn":1,"durable_lsn":1,"checkpoint_lsn":0}}`),
			"leader", false,
		},
		{
			"connected follower",
			frame(`{"seq":1,"ok":true,"repl_status":{"role":"follower","next_lsn":1,"durable_lsn":1,"checkpoint_lsn":0,"connected":true}}`),
			"follower", false,
		},
		{
			"disconnected follower stays follower",
			frame(`{"seq":1,"ok":true,"repl_status":{"role":"follower","next_lsn":1,"durable_lsn":1,"checkpoint_lsn":0}}`),
			"follower", false,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			addr := scriptedServer(t, []string{tc.resp})
			role, err := probeRole(addr, nil)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("probeRole = %q, nil; want error", role)
				}
				if role == "leader" {
					t.Fatalf("probeRole returned leader alongside error %v", err)
				}
				return
			}
			if err != nil {
				t.Fatalf("probeRole: %v", err)
			}
			if role != tc.wantRole {
				t.Fatalf("probeRole = %q, want %q", role, tc.wantRole)
			}
		})
	}
}

// TestProbeRoleServerError double-checks the error carries the original
// code, so Failover's aggregated error names what the endpoint said.
func TestProbeRoleServerError(t *testing.T) {
	addr := scriptedServer(t, []string{frame(`{"seq":1,"ok":false,"code":"internal","err":"boom"}`)})
	_, err := probeRole(addr, nil)
	var e *Error
	if !errors.As(err, &e) || e.Code != wire.CodeInternal {
		t.Fatalf("probeRole error = %v, want *Error with code internal", err)
	}
}
