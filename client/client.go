// Package client is the Go client for the nestedtx network transaction
// server (internal/server, cmd/txserver). It mirrors the local API:
// [Client.Run] corresponds to Manager.Run, [Tx.Read]/[Tx.Write]/[Tx.Sub]
// to the local Tx methods, and deadlock victims surface as
// [nestedtx.ErrDeadlock] so RunRetry-style loops work unchanged against
// a remote transaction universe.
//
// A Client owns one connection — one server session — and serialises its
// requests, so a Client is safe for concurrent use but transactions on
// it execute one request at a time; open several Clients for concurrent
// top-level transactions, or use a [Pool].
//
// Connections fail closed: any transport fault (client-side deadline,
// partial read, connection reset) or protocol desynchronisation poisons
// the Client — every later call fails fast with [ErrConnLost] rather
// than reading a stale frame. [Pool] layers reconnection on top:
// poisoned connections are replaced with jittered-backoff redials, and
// [Pool.RunRetry] treats ErrConnLost as retryable (a lost connection's
// open transaction is aborted server-side, so the body can safely run
// again on a fresh connection).
package client

import (
	"bufio"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"nestedtx"
	"nestedtx/internal/obs"
	"nestedtx/internal/wire"
)

// Error is a server-reported failure that has no local errors sentinel
// (bad requests, timeouts, busy/draining servers, internal faults).
type Error struct {
	Code string // a wire.Code* constant
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("client: %s (%s)", e.Msg, e.Code) }

// ErrTimeout is wrapped by errors the server produced by hitting its
// per-request deadline (the transaction was aborted server-side).
var ErrTimeout = errors.New("client: request timed out server-side")

// ErrBusy is wrapped by connection-limit rejections.
var ErrBusy = errors.New("client: server at connection limit")

// ErrConnLost is wrapped by every error a Client returns once its
// connection is poisoned: any transport fault (client-side deadline,
// partial read, reset, or a sequence-number mismatch proving the stream
// is desynchronised) marks the connection permanently dead, and all
// later calls fail fast with ErrConnLost instead of reading a stale
// frame. A lost connection means the server will abort whatever
// transaction was open on it (session teardown or the idle reaper), so
// a workload that failed with ErrConnLost is safe to re-run on a fresh
// connection — [Pool.RunRetry] does exactly that.
var ErrConnLost = errors.New("client: connection lost")

// ErrMalformed is wrapped by protocol-shape violations that are not
// transport faults — e.g. an OK STATS response missing its payload.
var ErrMalformed = errors.New("client: malformed server response")

// ErrReadOnly is wrapped by rejections from a read replica: the server
// is a replication follower and takes no transactions. Writes (and
// locked reads) must go to the leader — [ReplicaPool] reroutes them and
// uses this sentinel to trigger failover probing.
var ErrReadOnly = errors.New("client: server is a read-only replica")

// Option configures Dial.
type Option func(*Client)

// WithTimeout bounds every request round-trip (and the dial itself);
// d <= 0 means no client-side deadline. The default is 30s.
func WithTimeout(d time.Duration) Option { return func(c *Client) { c.timeout = d } }

// withRTT shares a round-trip-latency histogram across clients; the
// Pool uses it so PoolStats aggregates RTTs over every connection it
// ever dialled.
func withRTT(h *obs.Histogram) Option { return func(c *Client) { c.rtt = h } }

// Client is one session with a transaction server.
type Client struct {
	timeout time.Duration
	rtt     *obs.Histogram // per-call round-trip latencies

	mu   sync.Mutex
	conn net.Conn
	bw   *bufio.Writer
	br   *bufio.Reader
	seq  uint64
	lost error // non-nil once the connection is poisoned; the cause
}

// Dial connects to a transaction server at addr.
func Dial(addr string, opts ...Option) (*Client, error) {
	c := &Client{timeout: 30 * time.Second}
	for _, opt := range opts {
		opt(c)
	}
	if c.rtt == nil {
		c.rtt = new(obs.Histogram)
	}
	dialTimeout := c.timeout
	if dialTimeout <= 0 {
		dialTimeout = time.Minute
	}
	conn, err := net.DialTimeout("tcp", addr, dialTimeout)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", addr, err)
	}
	c.conn = conn
	c.bw = bufio.NewWriterSize(conn, 32<<10)
	c.br = bufio.NewReaderSize(conn, 32<<10)
	return c, nil
}

// Close tears down the session; the server aborts any transaction the
// client left open. A closed Client is poisoned: later calls fail with
// [ErrConnLost].
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.lost == nil {
		c.lost = errors.New("client closed")
	}
	return c.conn.Close()
}

// Lost reports whether the connection is poisoned — a transport fault
// (or Close) has made it permanently unusable. [Pool] uses this as the
// health check when recycling connections.
func (c *Client) Lost() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lost != nil
}

// poison marks the connection permanently dead and closes it. Once a
// request/response exchange has failed partway, the stream position is
// unknowable — the next frame on the wire could be the stale response
// to the failed request — so the only safe move is to refuse to read it.
// Called with c.mu held.
func (c *Client) poison(cause error) error {
	c.lost = cause
	c.conn.Close()
	return fmt.Errorf("%w: %v", ErrConnLost, cause)
}

// call performs one request/response round-trip.
func (c *Client) call(req *wire.Request) (*wire.Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.lost != nil {
		return nil, fmt.Errorf("%w (poisoned by earlier fault: %v)", ErrConnLost, c.lost)
	}
	c.seq++
	req.Seq = c.seq
	if c.timeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.timeout))
	}
	start := time.Now()
	if err := wire.WriteFrame(c.bw, req); err != nil {
		return nil, c.poison(fmt.Errorf("send: %w", err))
	}
	resp, err := wire.ReadResponse(c.br)
	if err != nil {
		return nil, c.poison(fmt.Errorf("receive: %w", err))
	}
	c.rtt.Observe(time.Since(start))
	if resp.Code == wire.CodeBusy {
		// A pre-session refusal frame (it carries no seq); the server
		// closes the connection after sending it.
		return nil, fmt.Errorf("%w: %s", ErrBusy, resp.Err)
	}
	if resp.Seq != req.Seq {
		// The stream is desynchronised (e.g. this is the stale response
		// to a request whose reply we previously timed out waiting for).
		return nil, c.poison(fmt.Errorf("response seq %d for request %d", resp.Seq, req.Seq))
	}
	return resp, nil
}

// respErr maps a response to the local error vocabulary: deadlock
// victims to nestedtx.ErrDeadlock, aborted transactions to
// nestedtx.ErrAborted, server-side request deadlines to ErrTimeout, and
// everything else to *Error.
func respErr(resp *wire.Response) error {
	if resp.OK {
		return nil
	}
	switch resp.Code {
	case wire.CodeDeadlock:
		return fmt.Errorf("client: %s: %w", resp.Err, nestedtx.ErrDeadlock)
	case wire.CodeAborted:
		return fmt.Errorf("client: %s: %w", resp.Err, nestedtx.ErrAborted)
	case wire.CodeTimeout:
		return fmt.Errorf("%w: %s", ErrTimeout, resp.Err)
	case wire.CodeReadOnly:
		return fmt.Errorf("%w: %s", ErrReadOnly, resp.Err)
	default:
		return &Error{Code: resp.Code, Msg: resp.Err}
	}
}

// Ping round-trips a no-op frame.
func (c *Client) Ping() error {
	resp, err := c.call(&wire.Request{Type: wire.TPing})
	if err != nil {
		return err
	}
	return respErr(resp)
}

// State fetches the committed-to-root state of an object: the version
// at the root of the version map, reflecting exactly the top-level
// commits so far — never a live writer's tentative version, and never a
// write that later aborts. Each call is an independent point read; for
// a multi-object consistent cut, use [Client.RunReadOnly].
func (c *Client) State(obj string) (nestedtx.State, error) {
	resp, err := c.call(&wire.Request{Type: wire.TState, Obj: obj})
	if err != nil {
		return nil, err
	}
	if err := respErr(resp); err != nil {
		return nil, err
	}
	return wire.DecodeState(resp.State)
}

// Stats fetches the server's counters.
func (c *Client) Stats() (wire.Stats, error) {
	resp, err := c.call(&wire.Request{Type: wire.TStats})
	if err != nil {
		return wire.Stats{}, err
	}
	if err := respErr(resp); err != nil {
		return wire.Stats{}, err
	}
	if resp.Stats == nil {
		// A malformed (or older) server answered OK without the payload;
		// fail typed rather than panicking on the nil dereference.
		return wire.Stats{}, fmt.Errorf("%w: OK STATS response without stats payload", ErrMalformed)
	}
	return *resp.Stats, nil
}

// Metrics fetches the server's latency and contention metrics. With
// dump, the response includes the server's recent event-trace ring
// (empty unless the server enabled tracing).
func (c *Client) Metrics(dump bool) (wire.Metrics, error) {
	resp, err := c.call(&wire.Request{Type: wire.TMetrics, Dump: dump})
	if err != nil {
		return wire.Metrics{}, err
	}
	if err := respErr(resp); err != nil {
		return wire.Metrics{}, err
	}
	if resp.Metrics == nil {
		return wire.Metrics{}, fmt.Errorf("%w: OK METRICS response without metrics payload", ErrMalformed)
	}
	return *resp.Metrics, nil
}

// ReplStatus fetches the server's replication role and positions: lag
// and leader address on a follower, per-follower ack positions on a
// leader. A server with no replication configured (volatile manager)
// answers with an error.
func (c *Client) ReplStatus() (*wire.ReplStatus, error) {
	resp, err := c.call(&wire.Request{Type: wire.TReplStatus})
	if err != nil {
		return nil, err
	}
	if err := respErr(resp); err != nil {
		return nil, err
	}
	if resp.ReplStatus == nil {
		return nil, fmt.Errorf("%w: OK REPL_STATUS response without payload", ErrMalformed)
	}
	return resp.ReplStatus, nil
}

// Promote asks a follower server to promote itself to leader: it stops
// streaming, recovers its replicated WAL, re-verifies the inherited
// history against the Theorem-34 checker, and starts accepting writes.
// Fails on a server that is not a follower, and on a follower whose
// inherited history does not verify.
func (c *Client) Promote() error {
	resp, err := c.call(&wire.Request{Type: wire.TPromote})
	if err != nil {
		return err
	}
	return respErr(resp)
}

// CallStats summarises this client's request round-trip latencies, as
// measured client-side around every completed call (quantiles are
// conservative log-bucket upper bounds, clamped to the observed max).
type CallStats struct {
	Calls              uint64
	P50, P90, P99, Max time.Duration
}

// CallStats reports the client's round-trip latency distribution.
func (c *Client) CallStats() CallStats {
	s := c.rtt.Snapshot()
	return CallStats{
		Calls: s.Count,
		P50:   s.Quantile(50),
		P90:   s.Quantile(90),
		P99:   s.Quantile(99),
		Max:   s.Max,
	}
}

// Tx is an open remote transaction handle (top-level or sub).
type Tx struct {
	c    *Client
	id   uint64
	txid string
}

// ID returns the transaction's name in the paper's tree notation, as
// assigned by the server (e.g. "T0.3.1").
func (t *Tx) ID() string { return t.txid }

// Begin opens a top-level transaction. Callers must resolve it with
// [Tx.Commit] or [Tx.Abort]; prefer [Client.Run], which does.
func (c *Client) Begin() (*Tx, error) {
	resp, err := c.call(&wire.Request{Type: wire.TBegin})
	if err != nil {
		return nil, err
	}
	if err := respErr(resp); err != nil {
		return nil, err
	}
	return &Tx{c: c, id: resp.Tx, txid: resp.TxID}, nil
}

// Do performs op on the named object as an access subtransaction of t,
// blocking (server-side) until Moss' locking rule admits it.
func (t *Tx) Do(obj string, op nestedtx.Op) (nestedtx.Value, error) {
	typ := wire.TWrite
	if op.ReadOnly() {
		typ = wire.TRead
	}
	raw, err := wire.EncodeOp(op)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	resp, err := t.c.call(&wire.Request{Type: typ, Tx: t.id, Obj: obj, Op: raw})
	if err != nil {
		return nil, err
	}
	if err := respErr(resp); err != nil {
		return nil, err
	}
	return wire.DecodeValue(resp.Value)
}

// Read performs a read-only op; it errors if op is not read-only.
func (t *Tx) Read(obj string, op nestedtx.Op) (nestedtx.Value, error) {
	if !op.ReadOnly() {
		return nil, fmt.Errorf("client: Read with non-read-only op %v", op)
	}
	return t.Do(obj, op)
}

// Write performs a mutating op; it errors if op is read-only.
func (t *Tx) Write(obj string, op nestedtx.Op) (nestedtx.Value, error) {
	if op.ReadOnly() {
		return nil, fmt.Errorf("client: Write with read-only op %v", op)
	}
	return t.Do(obj, op)
}

// Commit commits the transaction.
func (t *Tx) Commit() error {
	resp, err := t.c.call(&wire.Request{Type: wire.TCommit, Tx: t.id})
	if err != nil {
		return err
	}
	return respErr(resp)
}

// Abort aborts the transaction, rolling back its and its descendants'
// effects.
func (t *Tx) Abort() error {
	resp, err := t.c.call(&wire.Request{Type: wire.TAbort, Tx: t.id})
	if err != nil {
		return err
	}
	return respErr(resp)
}

// Sub runs fn as a subtransaction of t, exactly like the local Tx.Sub: a
// nil return commits the child (its locks and versions pass to t), an
// error aborts only the child's effects.
func (t *Tx) Sub(fn func(*Tx) error) error {
	resp, err := t.c.call(&wire.Request{Type: wire.TSub, Tx: t.id})
	if err != nil {
		return err
	}
	if err := respErr(resp); err != nil {
		return err
	}
	child := &Tx{c: t.c, id: resp.Tx, txid: resp.TxID}
	if err := fn(child); err != nil {
		if aerr := child.Abort(); aerr != nil && !errors.Is(err, nestedtx.ErrAborted) {
			return errors.Join(err, aerr)
		}
		return err
	}
	return child.Commit()
}

// Run executes fn as a remote top-level transaction: Begin, then Commit
// on nil or Abort on error — the remote mirror of Manager.Run.
func (c *Client) Run(fn func(*Tx) error) error {
	tx, err := c.Begin()
	if err != nil {
		return err
	}
	if err := fn(tx); err != nil {
		if errors.Is(err, ErrConnLost) {
			// The connection is gone: ABORT cannot be delivered, and the
			// server aborts the open tree on session teardown anyway.
			return err
		}
		if aerr := tx.Abort(); aerr != nil && !errors.Is(err, nestedtx.ErrAborted) {
			return errors.Join(err, aerr)
		}
		return err
	}
	return tx.Commit()
}

// RunRetry is Run, retrying up to attempts times while the transaction
// fails as a deadlock victim, with jittered exponential backoff — the
// remote mirror of Manager.RunRetry. attempts values below 1 are
// clamped to 1, so fn always runs at least once.
func (c *Client) RunRetry(attempts int, fn func(*Tx) error) error {
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for i := 0; i < attempts; i++ {
		err = c.Run(fn)
		if !errors.Is(err, nestedtx.ErrDeadlock) {
			return err
		}
		sleepBackoff(i)
	}
	return err
}

// sleepBackoff sleeps a jittered, exponentially growing interval after
// the attempt'th deadlock, so competing victims restart out of phase
// (the same policy as the local runtime's retry helpers).
func sleepBackoff(attempt int) {
	time.Sleep(backoffDelay(attempt, 50*time.Microsecond))
}

// backoffDelay returns a jittered delay in (0, min(base·2^attempt,
// 64·base)]. The delay — not the shift count — is clamped, so
// out-of-range attempts (negative, or large enough to overflow the
// shift) saturate at the cap instead of panicking or going negative.
func backoffDelay(attempt int, base time.Duration) time.Duration {
	delay := 64 * base // cap after 6 doublings
	if attempt < 0 {
		attempt = 0
	}
	if attempt < 7 {
		delay = base << uint(attempt)
	}
	return time.Duration(rand.Int63n(int64(delay)) + 1)
}
