package client

import (
	"bufio"
	"errors"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"nestedtx"
	"nestedtx/internal/wire"
)

// scriptedServer accepts one connection and answers each incoming frame
// with the next scripted raw byte string (written verbatim — so scripts
// can desynchronise seqs, truncate payloads or garble headers at will).
// A script entry of "" closes the connection instead of answering.
// Extra requests beyond the script also close the connection.
func scriptedServer(t *testing.T, script []string) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		br := bufio.NewReader(conn)
		for _, raw := range script {
			if _, err := wire.ReadRequest(br); err != nil {
				return
			}
			if raw == "" {
				return
			}
			if _, err := io.WriteString(conn, raw); err != nil {
				return
			}
		}
	}()
	return ln.Addr().String()
}

// frame builds a well-formed wire frame around payload.
func frame(payload string) string {
	var sb strings.Builder
	sb.WriteString(itoa(len(payload)))
	sb.WriteByte('\n')
	sb.WriteString(payload)
	sb.WriteByte('\n')
	return sb.String()
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestCallFaultsPoisonConnection is the table-driven tour of the
// transport/protocol failure paths in Client.call: each scripted server
// response must (a) fail the in-flight call with an ErrConnLost-wrapped
// error and (b) poison the client, so the *next* call fails fast with
// ErrConnLost without touching the wire.
func TestCallFaultsPoisonConnection(t *testing.T) {
	cases := []struct {
		name    string
		raw     string // scripted response to the first request (a PING with seq 1)
		errFrag string // substring expected in the first call's error
	}{
		{"stale seq replay", frame(`{"seq":0,"ok":true}`), "seq 0 for request 1"},
		{"future seq", frame(`{"seq":9,"ok":true}`), "seq 9 for request 1"},
		{"garbage header", "not-a-length\n", "bad frame length"},
		{"truncated payload", "50\n{\"seq\":1,\"ok\":true}", "receive"},
		{"missing trailing newline", "19\n{\"seq\":1,\"ok\":true}X", "newline"},
		{"connection closed", "", "receive"},
		{"oversize frame", "99999999\n", "limit"},
		{"unparsable json", frame(`{"seq":`), "receive"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			addr := scriptedServer(t, []string{tc.raw})
			c, err := Dial(addr, WithTimeout(2*time.Second))
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			err = c.Ping()
			if err == nil {
				t.Fatal("faulted call succeeded")
			}
			if !errors.Is(err, ErrConnLost) {
				t.Fatalf("first call error not ErrConnLost: %v", err)
			}
			if !strings.Contains(err.Error(), tc.errFrag) {
				t.Fatalf("error %q does not mention %q", err, tc.errFrag)
			}
			if !c.Lost() {
				t.Fatal("client not poisoned after transport fault")
			}
			// Poisoned: every later call fails fast with ErrConnLost and
			// never reads whatever stale bytes may sit on the wire.
			for i := 0; i < 3; i++ {
				if err := c.Ping(); !errors.Is(err, ErrConnLost) {
					t.Fatalf("post-fault call %d: got %v, want ErrConnLost", i, err)
				}
			}
			if _, err := c.Stats(); !errors.Is(err, ErrConnLost) {
				t.Fatalf("post-fault Stats: got %v, want ErrConnLost", err)
			}
		})
	}
}

// TestClientDeadlinePoisons covers the client-side timeout: a server
// that answers too late must not leave the client reading the stale
// response as the answer to its next request (the pre-fix bug reported
// a bogus seq mismatch); the deadline poisons the connection instead.
func TestClientDeadlinePoisons(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	responded := make(chan struct{})
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		br := bufio.NewReader(conn)
		if _, err := wire.ReadRequest(br); err != nil {
			return
		}
		time.Sleep(300 * time.Millisecond) // well past the client deadline
		io.WriteString(conn, frame(`{"seq":1,"ok":true}`))
		close(responded)
	}()
	c, err := Dial(ln.Addr().String(), WithTimeout(50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); !errors.Is(err, ErrConnLost) {
		t.Fatalf("timed-out call: got %v, want ErrConnLost", err)
	}
	<-responded // the stale frame is now (or soon) on the dead socket
	if err := c.Ping(); !errors.Is(err, ErrConnLost) {
		t.Fatalf("call after timeout: got %v, want fast ErrConnLost (no stale-frame read)", err)
	}
}

// TestStatsNilPayload: an OK STATS response with no stats payload must
// return a typed error, not panic on a nil dereference.
func TestStatsNilPayload(t *testing.T) {
	addr := scriptedServer(t, []string{frame(`{"seq":1,"ok":true}`)})
	c, err := Dial(addr, WithTimeout(2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Stats()
	if !errors.Is(err, ErrMalformed) {
		t.Fatalf("Stats without payload: got %v, want ErrMalformed", err)
	}
}

// TestRunRetryClampsAttempts mirrors the local-runtime clamp fix: a
// non-positive attempts count still runs fn exactly once.
func TestRunRetryClampsAttempts(t *testing.T) {
	for _, attempts := range []int{0, -3} {
		// BEGIN succeeds, the body errors, ABORT succeeds: fn observably
		// ran exactly once (a fresh one-connection script per case).
		addr := scriptedServer(t, []string{
			frame(`{"seq":1,"ok":true,"tx":1,"txid":"T0.1"}`), // BEGIN
			frame(`{"seq":2,"ok":true}`),                      // ABORT
		})
		c, err := Dial(addr, WithTimeout(2*time.Second))
		if err != nil {
			t.Fatal(err)
		}
		ran := 0
		bodyErr := errors.New("body ran")
		err = c.RunRetry(attempts, func(tx *Tx) error {
			ran++
			return bodyErr
		})
		c.Close()
		if ran != 1 {
			t.Fatalf("RunRetry(%d) ran fn %d times, want 1", attempts, ran)
		}
		if !errors.Is(err, bodyErr) {
			t.Fatalf("RunRetry(%d) = %v, want the body's error", attempts, err)
		}
	}
}

// TestPoolRunRetryClampsAttempts: the pool mirror of the clamp.
func TestPoolRunRetryClampsAttempts(t *testing.T) {
	// PING (health check) then BEGIN/ABORT.
	addr := scriptedServer(t, []string{
		frame(`{"seq":1,"ok":true}`),                      // Ping health check
		frame(`{"seq":2,"ok":true,"tx":1,"txid":"T0.1"}`), // BEGIN
		frame(`{"seq":3,"ok":true}`),                      // ABORT
	})
	p, err := NewPool(addr, 1, WithTimeout(2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	ran := false
	bodyErr := errors.New("pool body ran")
	if err := p.RunRetry(0, func(tx *Tx) error { ran = true; return bodyErr }); !errors.Is(err, bodyErr) || !ran {
		t.Fatalf("Pool.RunRetry(0): ran=%v err=%v", ran, err)
	}
}

// TestBusyFrameDoesNotPoison: a busy refusal is an orderly protocol
// answer (it precedes any session), not a transport fault.
func TestBusyFrameDoesNotPoison(t *testing.T) {
	addr := scriptedServer(t, []string{frame(`{"seq":0,"ok":false,"code":"busy","err":"full"}`)})
	c, err := Dial(addr, WithTimeout(2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); !errors.Is(err, ErrBusy) {
		t.Fatalf("got %v, want ErrBusy", err)
	}
	if c.Lost() {
		t.Fatal("busy frame poisoned the client")
	}
}

// TestClosePoisons: an explicitly closed client fails fast too.
func TestClosePoisons(t *testing.T) {
	addr := scriptedServer(t, []string{frame(`{"seq":1,"ok":true}`)})
	c, err := Dial(addr, WithTimeout(2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	c.Close()
	if err := c.Ping(); !errors.Is(err, ErrConnLost) {
		t.Fatalf("ping after Close: got %v, want ErrConnLost", err)
	}
}

// TestRunSkipsAbortOnLostConn: when the body fails because the
// connection died, Run must not try to deliver ABORT on the dead
// connection — the server aborts the open tree on teardown.
func TestRunSkipsAbortOnLostConn(t *testing.T) {
	addr := scriptedServer(t, []string{
		frame(`{"seq":1,"ok":true,"tx":1,"txid":"T0.1"}`), // BEGIN
		"", // WRITE: close the connection instead of answering
	})
	c, err := Dial(addr, WithTimeout(2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Run(func(tx *Tx) error {
		_, err := tx.Write("x", nestedtx.CtrAdd{Delta: 1})
		return err
	})
	if !errors.Is(err, ErrConnLost) {
		t.Fatalf("Run over cut connection: got %v, want ErrConnLost", err)
	}
	if !errors.Is(err, ErrConnLost) || strings.Contains(err.Error(), "abort") {
		t.Fatalf("Run attempted an abort on a lost connection: %v", err)
	}
}
