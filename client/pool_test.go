package client

import (
	"bufio"
	"errors"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nestedtx/internal/wire"
)

// okServer accepts any number of connections and answers every request
// OK with the echoed seq, sleeping respDelay (read per request) before
// each answer. Handler goroutines exit when their connection closes.
func okServer(t *testing.T, respDelay *atomic.Int64) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				br := bufio.NewReader(conn)
				bw := bufio.NewWriter(conn)
				for {
					req, err := wire.ReadRequest(br)
					if err != nil {
						return
					}
					if d := time.Duration(respDelay.Load()); d > 0 {
						time.Sleep(d)
					}
					if wire.WriteFrame(bw, &wire.Response{Seq: req.Seq, OK: true}) != nil {
						return
					}
				}
			}()
		}
	}()
	return ln.Addr().String()
}

// TestPoolGetAfterCloseFailsClosed pins the Close/Get race on the
// redial path: a Get that is mid-dial (health-check ping in flight)
// when Close completes must fail with ErrPoolClosed and close the fresh
// connection — not hand out a live connection the closed pool will
// never tear down. Before the closed-flag re-check under the pool lock,
// the dial-success path returned the connection unconditionally.
func TestPoolGetAfterCloseFailsClosed(t *testing.T) {
	var delay atomic.Int64
	addr := okServer(t, &delay)
	p, err := NewPool(addr, 1, WithTimeout(2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	// Poison the idle connection so the next Get must redial.
	c, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	p.Put(c)

	delay.Store(int64(300 * time.Millisecond)) // stall the redial's health check
	var closed atomic.Bool
	res := make(chan error, 1)
	go func() {
		c, err := p.Get()
		if err == nil {
			defer p.Put(c)
			if closed.Load() {
				res <- errors.New("Get returned a live connection after Close returned")
				return
			}
			res <- nil
			return
		}
		if closed.Load() && !errors.Is(err, ErrPoolClosed) {
			res <- err
			return
		}
		res <- nil
	}()

	time.Sleep(100 * time.Millisecond) // let Get reach the stalled ping
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	closed.Store(true)
	if err := <-res; err != nil {
		t.Fatal(err)
	}
	if _, err := p.Get(); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("Get on closed pool = %v, want ErrPoolClosed", err)
	}
}

// TestPoolCloseGetHammer races Close against concurrent Get/Put traffic
// (including forced poisonings, so the redial path stays hot) and then
// checks nothing leaked: every post-Close Get fails with ErrPoolClosed
// and all server-side session goroutines drain — a connection handed
// out after Close would pin its handler goroutine forever.
func TestPoolCloseGetHammer(t *testing.T) {
	var delay atomic.Int64
	addr := okServer(t, &delay)
	base := runtime.NumGoroutine()

	for round := 0; round < 10; round++ {
		p, err := NewPool(addr, 4, WithTimeout(2*time.Second))
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; ; i++ {
					c, err := p.Get()
					if err != nil {
						if !errors.Is(err, ErrPoolClosed) {
							t.Errorf("worker %d: Get: %v", w, err)
						}
						return
					}
					c.Ping()
					if (i+w)%3 == 0 {
						c.Close() // poison: force the next Get to redial
					}
					p.Put(c)
				}
			}(w)
		}
		time.Sleep(5 * time.Millisecond)
		p.Close()
		wg.Wait()
		if _, err := p.Get(); !errors.Is(err, ErrPoolClosed) {
			t.Fatalf("round %d: Get after Close = %v, want ErrPoolClosed", round, err)
		}
	}

	// All connections closed => all server handler goroutines exit.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= base {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d goroutines, want <= %d (a live connection escaped Close)",
				runtime.NumGoroutine(), base)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestBackoffDelayBounds pins the client backoff schedule: positive,
// below the per-attempt ceiling, and saturating for out-of-range
// attempts instead of panicking on a negative or overflowing shift.
func TestBackoffDelayBounds(t *testing.T) {
	const base = 50 * time.Microsecond
	cases := []struct {
		attempt int
		ceil    time.Duration
	}{
		{-1, base}, {0, base}, {3, 8 * base}, {6, 64 * base},
		{7, 64 * base}, {32, 64 * base}, {63, 64 * base}, {64, 64 * base},
	}
	for _, c := range cases {
		for i := 0; i < 50; i++ {
			d := backoffDelay(c.attempt, base)
			if d <= 0 || d > c.ceil {
				t.Fatalf("backoffDelay(%d) = %v, want in (0, %v]", c.attempt, d, c.ceil)
			}
		}
	}
}
