package client

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"nestedtx"
	"nestedtx/internal/obs"
)

// ErrPoolClosed is returned by Pool operations after Close.
var ErrPoolClosed = errors.New("client: pool closed")

// Pool maintains up to size healthy connections to one server and hands
// them out as sessions. Poisoned connections (see [ErrConnLost]) are
// discarded on return and replaced on demand by redialling with
// jittered exponential backoff, so the pool rides out connection cuts,
// server restarts and transient partitions.
//
// [Pool.Run] borrows a connection for one transaction; [Pool.RunRetry]
// additionally retries deadlock victims *and* lost connections — the
// latter is safe because a lost connection's open transaction is
// aborted server-side (session teardown or the idle reaper), so its
// effects never commit and the body can run again.
type Pool struct {
	addr   string
	opts   []Option
	tokens chan struct{} // capacity tickets: one per potential connection
	stop   chan struct{}
	rtt    *obs.Histogram // round-trip latencies across every connection dialled

	mu     sync.Mutex
	idle   []*Client
	rng    *rand.Rand
	closed bool

	redials   uint64 // successful replacement dials after the initial fill
	discarded uint64 // poisoned connections dropped
}

// poolDialAttempts bounds one Get's redial loop; with jittered backoff
// doubling from ~5ms the worst case waits well under a second.
const poolDialAttempts = 6

// NewPool dials and health-checks size connections to addr (opts apply
// to every dial, now and on reconnect). Dial failures during the
// initial fill are not fatal as long as at least one connection comes
// up — the missing ones are redialled on demand — but a pool that
// cannot reach the server at all fails fast.
func NewPool(addr string, size int, opts ...Option) (*Pool, error) {
	if size < 1 {
		size = 1
	}
	p := &Pool{
		addr:   addr,
		opts:   opts,
		tokens: make(chan struct{}, size),
		stop:   make(chan struct{}),
		rtt:    new(obs.Histogram),
		rng:    rand.New(rand.NewSource(time.Now().UnixNano())),
	}
	for i := 0; i < size; i++ {
		p.tokens <- struct{}{}
	}
	ok := 0
	for i := 0; i < size; i++ {
		c, err := p.dialOne()
		if err != nil {
			continue
		}
		p.idle = append(p.idle, c)
		ok++
	}
	if ok == 0 {
		return nil, fmt.Errorf("client: pool: no connection to %s could be established", addr)
	}
	return p, nil
}

// dialOne dials and health-checks a single connection. Every connection
// shares the pool's RTT histogram.
func (p *Pool) dialOne() (*Client, error) {
	c, err := Dial(p.addr, append(append([]Option(nil), p.opts...), withRTT(p.rtt))...)
	if err != nil {
		return nil, err
	}
	if err := c.Ping(); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// Get borrows a healthy connection, blocking while all size connections
// are in use. If no idle connection is healthy it redials with jittered
// backoff; if the server stays unreachable for the whole backoff
// schedule, the error wraps [ErrConnLost] so retry loops treat "cannot
// connect" the same as "connection died".
//
// Get never returns a live connection after [Pool.Close] has returned:
// every hand-out path re-checks the closed flag under the pool lock —
// the same lock Close latches it under — so a Close racing a Get either
// beats the hand-out (Get fails with ErrPoolClosed and the connection
// is closed) or loses it (Put closes the connection on return).
func (p *Pool) Get() (*Client, error) {
	select {
	case <-p.stop:
		return nil, ErrPoolClosed
	case <-p.tokens:
	}
	// Prefer a recycled healthy connection.
	for {
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			p.putToken()
			return nil, ErrPoolClosed
		}
		var c *Client
		if n := len(p.idle); n > 0 {
			c = p.idle[n-1]
			p.idle = p.idle[:n-1]
		}
		p.mu.Unlock()
		if c == nil {
			break
		}
		if !c.Lost() {
			return c, nil
		}
		p.noteDiscard()
		c.Close()
	}
	// None idle (or all poisoned): replace with a fresh dial.
	var lastErr error
	for attempt := 0; attempt < poolDialAttempts; attempt++ {
		select {
		case <-p.stop:
			p.putToken()
			return nil, ErrPoolClosed
		default:
		}
		c, err := p.dialOne()
		if err == nil {
			p.mu.Lock()
			if p.closed {
				// Close won the race while we were dialling: a connection
				// handed out now would never be torn down by Close.
				p.mu.Unlock()
				c.Close()
				p.putToken()
				return nil, ErrPoolClosed
			}
			p.redials++
			p.mu.Unlock()
			return c, nil
		}
		lastErr = err
		p.backoff(attempt)
	}
	p.putToken()
	return nil, fmt.Errorf("%w: pool redial to %s failed: %v", ErrConnLost, p.addr, lastErr)
}

// Put returns a borrowed connection. Poisoned connections are closed
// and dropped — the next Get redials their replacement.
func (p *Pool) Put(c *Client) {
	if c != nil {
		if c.Lost() {
			p.noteDiscard()
			c.Close()
		} else {
			p.mu.Lock()
			closed := p.closed
			if !closed {
				p.idle = append(p.idle, c)
			}
			p.mu.Unlock()
			if closed {
				c.Close()
			}
		}
	}
	p.putToken()
}

func (p *Pool) putToken() {
	select {
	case p.tokens <- struct{}{}:
	default: // Close drained nothing; capacity invariant keeps this from firing
	}
}

func (p *Pool) noteDiscard() {
	p.mu.Lock()
	p.discarded++
	p.mu.Unlock()
}

// backoff sleeps a jittered, exponentially growing interval after the
// attempt'th failed redial, interruptible by Close. The delay schedule
// saturates like backoffDelay's: 5ms doubling to a 320ms cap.
func (p *Pool) backoff(attempt int) {
	t := time.NewTimer(backoffDelay(attempt, 5*time.Millisecond))
	defer t.Stop()
	select {
	case <-t.C:
	case <-p.stop:
	}
}

// Close tears the pool down: idle connections close now, borrowed ones
// close when returned, and pending/future Gets fail with ErrPoolClosed.
func (p *Pool) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	idle := p.idle
	p.idle = nil
	p.mu.Unlock()
	close(p.stop)
	for _, c := range idle {
		c.Close()
	}
	return nil
}

// PoolStats is a snapshot of a pool's reconnection activity and
// round-trip latency distribution (aggregated across every connection
// the pool ever dialled; quantiles are conservative log-bucket upper
// bounds, clamped to the observed max).
type PoolStats struct {
	Idle      int    // healthy connections waiting in the pool
	Redials   uint64 // replacement dials that succeeded (beyond the initial fill)
	Discarded uint64 // poisoned connections dropped

	Calls              uint64 // completed request round-trips
	P50, P90, P99, Max time.Duration
}

// Stats reports the pool's reconnection counters and RTT quantiles.
func (p *Pool) Stats() PoolStats {
	s := p.rtt.Snapshot()
	p.mu.Lock()
	defer p.mu.Unlock()
	return PoolStats{
		Idle: len(p.idle), Redials: p.redials, Discarded: p.discarded,
		Calls: s.Count, P50: s.Quantile(50), P90: s.Quantile(90),
		P99: s.Quantile(99), Max: s.Max,
	}
}

// Run borrows a connection and executes fn as one top-level transaction
// on it (see [Client.Run]), returning the connection afterwards.
func (p *Pool) Run(fn func(*Tx) error) error {
	c, err := p.Get()
	if err != nil {
		return err
	}
	defer p.Put(c)
	return c.Run(fn)
}

// RunRetry is Run, retrying up to attempts times with jittered backoff
// while the failure is retryable: a deadlock victimhood
// (nestedtx.ErrDeadlock) or a lost connection ([ErrConnLost] — including
// "could not redial"). Both leave the server without the transaction's
// effects, so re-running fn is safe. attempts values below 1 are
// clamped to 1.
func (p *Pool) RunRetry(attempts int, fn func(*Tx) error) error {
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for i := 0; i < attempts; i++ {
		err = p.Run(fn)
		if err == nil ||
			(!errors.Is(err, nestedtx.ErrDeadlock) && !errors.Is(err, ErrConnLost)) {
			return err
		}
		sleepBackoff(i)
	}
	return err
}
