package client

import (
	"fmt"

	"nestedtx"
	"nestedtx/internal/wire"
)

// Snapshot is an open remote read-only snapshot transaction: the remote
// mirror of nestedtx.Snapshot. Its reads are served from the server's
// committed-version store — pinned at the commit sequence number BEGIN
// returned — without ever touching the lock manager, so long scans
// neither block nor are blocked by writers. Followers serve snapshot
// transactions too (from their replicated version store), unlike
// locking transactions, which they refuse.
type Snapshot struct {
	c    *Client
	id   uint64
	txid string
	seq  uint64
}

// ID returns the snapshot transaction's server-assigned identifier
// (e.g. "S3"); the namespace is disjoint from the transaction tree's
// TIDs.
func (s *Snapshot) ID() string { return s.txid }

// Seq returns the pinned commit sequence number: the snapshot observes
// exactly the first Seq published top-level commits.
func (s *Snapshot) Seq() uint64 { return s.seq }

// BeginReadOnly opens a read-only snapshot transaction pinned at the
// server's current commit sequence number. Callers must resolve it with
// [Snapshot.Close]; prefer [Client.RunReadOnly], which does.
func (c *Client) BeginReadOnly() (*Snapshot, error) {
	resp, err := c.call(&wire.Request{Type: wire.TBegin, ReadOnly: true})
	if err != nil {
		return nil, err
	}
	if err := respErr(resp); err != nil {
		return nil, err
	}
	return &Snapshot{c: c, id: resp.Tx, txid: resp.TxID, seq: resp.Snap}, nil
}

// Read applies a read-only operation to obj's state as of the pinned
// sequence number and returns its value. It rejects mutating operations
// client-side; the server enforces the same rule.
func (s *Snapshot) Read(obj string, op nestedtx.Op) (nestedtx.Value, error) {
	if !op.ReadOnly() {
		return nil, fmt.Errorf("client: snapshot Read with non-read-only op %v", op)
	}
	raw, err := wire.EncodeOp(op)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	resp, err := s.c.call(&wire.Request{Type: wire.TRead, Tx: s.id, Obj: obj, Op: raw})
	if err != nil {
		return nil, err
	}
	if err := respErr(resp); err != nil {
		return nil, err
	}
	return wire.DecodeValue(resp.Value)
}

// Close ends the snapshot transaction, releasing the server-side pin so
// the version store can trim the history it was holding.
func (s *Snapshot) Close() error {
	resp, err := s.c.call(&wire.Request{Type: wire.TCommit, Tx: s.id})
	if err != nil {
		return err
	}
	return respErr(resp)
}

// RunReadOnly runs fn as a remote read-only snapshot transaction and
// releases the snapshot when fn returns — the remote mirror of
// Manager.RunReadOnly. All reads inside fn observe one consistent
// committed prefix of the history, pinned at entry.
func (c *Client) RunReadOnly(fn func(*Snapshot) error) error {
	s, err := c.BeginReadOnly()
	if err != nil {
		return err
	}
	err = fn(s)
	if cerr := s.Close(); err == nil {
		err = cerr
	}
	return err
}
