package client

import (
	"errors"
	"fmt"
	"sync"

	"nestedtx"
	"nestedtx/internal/wire"
)

// ReplicaPool fronts a replicated deployment: a [Pool] of connections
// to the current leader for transactions, plus one connection to each
// read replica for committed-state reads. It knows two things a plain
// Pool does not:
//
//   - ReadState prefers replicas (round-robin), falling back through
//     the remaining replicas to the leader, so read load leaves the
//     leader's sessions free for transactions. A replica read returns
//     replicated committed-to-root state, which may trail the leader by
//     the replication lag — the usual asynchronous-replica contract.
//   - Writes that fail with [ErrReadOnly] or [ErrConnLost] trigger a
//     failover probe: every known endpoint is asked REPL_STATUS, and if
//     one now answers as leader (e.g. an operator promoted a follower
//     after a leader crash), the transaction pool is rebuilt against it
//     and the transaction retried.
//
// A ReplicaPool is safe for concurrent use.
type ReplicaPool struct {
	size int
	opts []Option

	// probeMu serialises Failover's endpoint probing. It is a separate
	// mutex so a probe's network dials never stall readers of the state
	// below: rp.mu is only ever held for field access, never across I/O.
	// Lock order: probeMu before mu, never the reverse.
	probeMu sync.Mutex

	mu       sync.Mutex
	leader   string
	addrs    []string // every known endpoint, leader included
	pool     *Pool    // transaction pool to the current leader
	replicas map[string]*Client
	next     int // round-robin cursor over non-leader addrs
	closed   bool

	failovers uint64
	probes    uint64 // completed Failover probe rounds, for coalescing
	lastProbe error  // outcome of the last round (nil = leader reachable)
}

// NewReplicaPool connects a transaction pool of size connections to
// leader and remembers replicas for read routing and failover probing
// (replica connections are dialled lazily). opts apply to every dial.
func NewReplicaPool(leader string, replicas []string, size int, opts ...Option) (*ReplicaPool, error) {
	pool, err := NewPool(leader, size, opts...)
	if err != nil {
		return nil, err
	}
	addrs := append([]string{leader}, replicas...)
	return &ReplicaPool{
		size: size, opts: opts,
		leader: leader, addrs: addrs, pool: pool,
		replicas: make(map[string]*Client),
	}, nil
}

// Leader returns the address transactions currently go to.
func (rp *ReplicaPool) Leader() string {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	return rp.leader
}

// Failovers counts successful leader switches.
func (rp *ReplicaPool) Failovers() uint64 {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	return rp.failovers
}

// readOrder returns the replica addresses to try, rotated round-robin,
// with the current leader excluded (it is the fallback, not a target).
func (rp *ReplicaPool) readOrder() []string {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	var reps []string
	for _, a := range rp.addrs {
		if a != rp.leader {
			reps = append(reps, a)
		}
	}
	if len(reps) > 1 {
		k := rp.next % len(reps)
		rp.next++
		reps = append(reps[k:], reps[:k]...)
	}
	return reps
}

// replicaConn returns a healthy cached connection to addr, dialling if
// needed.
func (rp *ReplicaPool) replicaConn(addr string) (*Client, error) {
	rp.mu.Lock()
	if rp.closed {
		rp.mu.Unlock()
		return nil, ErrPoolClosed
	}
	c := rp.replicas[addr]
	rp.mu.Unlock()
	if c != nil && !c.Lost() {
		return c, nil
	}
	fresh, err := Dial(addr, rp.opts...)
	if err != nil {
		return nil, err
	}
	rp.mu.Lock()
	if rp.closed {
		rp.mu.Unlock()
		fresh.Close()
		return nil, ErrPoolClosed
	}
	if old := rp.replicas[addr]; old != nil {
		old.Close()
	}
	rp.replicas[addr] = fresh
	rp.mu.Unlock()
	return fresh, nil
}

// txPool snapshots the current transaction pool under rp.mu. Failover
// swaps and closes rp.pool concurrently; callers must work on a
// snapshot, never read the field directly. A transaction in flight on a
// swapped-out pool finishes safely: Pool.Close only closes idle
// connections, and a borrowed connection returned to a closed pool is
// closed on Put.
func (rp *ReplicaPool) txPool() *Pool {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	return rp.pool
}

// ReadState reads an object's committed-to-root state, preferring
// replicas and falling back to the leader. Replica answers may trail
// the leader by the replication lag.
func (rp *ReplicaPool) ReadState(obj string) (nestedtx.State, error) {
	var lastErr error
	for _, addr := range rp.readOrder() {
		c, err := rp.replicaConn(addr)
		if err != nil {
			lastErr = err
			continue
		}
		st, err := c.State(obj)
		if err == nil {
			return st, nil
		}
		lastErr = err
		if !errors.Is(err, ErrConnLost) {
			// The replica answered (e.g. object unknown there because it
			// is still catching up): the leader settles it below.
			break
		}
	}
	// No replica could answer: the leader always can.
	pool := rp.txPool()
	c, err := pool.Get()
	if err != nil {
		if lastErr != nil {
			return nil, fmt.Errorf("replica reads failed (%v); leader: %w", lastErr, err)
		}
		return nil, err
	}
	defer pool.Put(c)
	return c.State(obj)
}

// Run executes fn as one top-level transaction on the current leader.
// If the leader refuses as read-only or its connections are gone, one
// failover probe runs and — on a leader change — fn is retried once.
// (fn may have partially run before the failure; like Pool.RunRetry,
// this is safe because a transaction on a lost or read-only session
// never commits.)
func (rp *ReplicaPool) Run(fn func(*Tx) error) error {
	err := rp.txPool().Run(fn)
	if err == nil || (!errors.Is(err, ErrReadOnly) && !errors.Is(err, ErrConnLost)) {
		return err
	}
	if ferr := rp.Failover(); ferr != nil {
		return errors.Join(err, ferr)
	}
	return rp.txPool().Run(fn)
}

// RunRetry is Run with Pool.RunRetry's retry policy on top: deadlock
// victims and lost connections are retried with backoff, and a leader
// change is chased through Failover between attempts.
func (rp *ReplicaPool) RunRetry(attempts int, fn func(*Tx) error) error {
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for i := 0; i < attempts; i++ {
		err = rp.Run(fn)
		if err == nil || (!errors.Is(err, nestedtx.ErrDeadlock) &&
			!errors.Is(err, ErrConnLost) && !errors.Is(err, ErrReadOnly)) {
			return err
		}
		sleepBackoff(i)
	}
	return err
}

// Failover probes every known endpoint for the current leader and, on
// a change, repoints the transaction pool at it. Concurrent callers
// coalesce: whoever holds probeMu probes, callers that were queued
// behind a completed probe inherit its result without re-probing. The
// state mutex is never held across the network dials, so Leader,
// ReadState and Run proceed while a probe is stuck on a dead endpoint.
// Returns nil if a leader (new or unchanged) is reachable.
func (rp *ReplicaPool) Failover() error {
	rp.mu.Lock()
	if rp.closed {
		rp.mu.Unlock()
		return ErrPoolClosed
	}
	probesBefore := rp.probes
	addrs := append([]string(nil), rp.addrs...)
	rp.mu.Unlock()

	rp.probeMu.Lock()
	defer rp.probeMu.Unlock()

	rp.mu.Lock()
	if rp.closed {
		rp.mu.Unlock()
		return ErrPoolClosed
	}
	if rp.probes != probesBefore {
		// A probe round completed while this caller was queued behind
		// probeMu: inherit its outcome instead of re-probing — an
		// immediate rerun would see the same cluster.
		err := rp.lastProbe
		rp.mu.Unlock()
		return err
	}
	rp.mu.Unlock()

	var firstErr error
	newLeader, switched := "", false
	var newPool *Pool
	for _, addr := range addrs {
		role, err := probeRole(addr, rp.opts)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if role != "leader" {
			continue
		}
		newLeader = addr
		if addr == rp.Leader() {
			break // unchanged; the pool redials on its own
		}
		pool, err := NewPool(addr, rp.size, rp.opts...)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			newLeader = ""
			continue
		}
		newPool, switched = pool, true
		break
	}

	var outcome error
	if newLeader == "" {
		if firstErr == nil {
			firstErr = fmt.Errorf("no endpoint in %v answers as leader", addrs)
		}
		outcome = fmt.Errorf("client: failover: %w", firstErr)
	}

	rp.mu.Lock()
	rp.probes++
	rp.lastProbe = outcome
	if rp.closed {
		rp.mu.Unlock()
		if newPool != nil {
			newPool.Close()
		}
		return ErrPoolClosed
	}
	var oldPool *Pool
	if switched {
		oldPool = rp.pool
		rp.pool = newPool
		rp.leader = newLeader
		rp.failovers++
	}
	rp.mu.Unlock()
	if oldPool != nil {
		oldPool.Close()
	}
	return outcome
}

// probeRole asks one endpoint for its replication role. A server
// without replication configured answers REPL_STATUS with
// wire.CodeNotConfigured — that, and only that, marks a standalone
// writable server; any other server-side error (bad_request, too_large,
// internal, …) says nothing about the role and is reported as a probe
// failure.
func probeRole(addr string, opts []Option) (string, error) {
	c, err := Dial(addr, opts...)
	if err != nil {
		return "", err
	}
	defer c.Close()
	rs, err := c.ReplStatus()
	if err != nil {
		var e *Error
		if errors.As(err, &e) && e.Code == wire.CodeNotConfigured {
			// Replication not configured: a standalone writable server.
			return "leader", nil
		}
		return "", err
	}
	if rs.Role == "follower" && !rs.Connected {
		// A follower that has lost its leader is still a follower — only
		// an explicit promotion changes its role.
		return "follower", nil
	}
	return rs.Role, nil
}

// Close tears down the transaction pool and every replica connection.
func (rp *ReplicaPool) Close() error {
	rp.mu.Lock()
	if rp.closed {
		rp.mu.Unlock()
		return nil
	}
	rp.closed = true
	pool := rp.pool
	reps := rp.replicas
	rp.replicas = nil
	rp.mu.Unlock()
	for _, c := range reps {
		c.Close()
	}
	return pool.Close()
}
