// E17 — read-only snapshot transactions vs locked scans (EXPERIMENTS.md).
//
// A scan-heavy workload (~90% of accesses are scan reads over a zipfian
// universe, ~10% zipfian writer updates) run two ways: scanners as
// ordinary locking transactions (read locks on every scanned object,
// held to commit under strict locking), and scanners as read-only
// snapshot transactions over the committed version store (no locks at
// all). Each cell runs for a fixed wall-clock window and reports writer
// throughput under the scan load and completed scans/sec — the
// before/after of the snapshot-transaction tentpole. The window design
// is deliberate: under locked scans, readers are granted past queued
// writers (read locks are compatible with each other, and waiters do
// not block grants), so overlapping continuous scans can starve writers
// indefinitely — a completion-count design would simply hang.
package nestedtx_test

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nestedtx"
)

// e17Config shapes one E17 cell.
type e17Config struct {
	objects  int
	scanners int
	writers  int
	window   time.Duration // wall-clock run time of the cell
	thinkNs  int           // per-scan-read latency (models an analytics scan)
	snapshot bool          // scanners use RunReadOnly instead of locking reads
}

// e17Result is one measured cell.
type e17Result struct {
	dur       time.Duration
	writerTx  int64
	scans     int64
	scanReads int64
	deadlocks uint64
}

func (r e17Result) writerTps() float64   { return float64(r.writerTx) / r.dur.Seconds() }
func (r e17Result) scansPerSec() float64 { return float64(r.scans) / r.dur.Seconds() }

// runE17 runs scanners and writers concurrently for the window.
func runE17(cfg e17Config, seed int64) (e17Result, error) {
	m := nestedtx.NewManager()
	for i := 0; i < cfg.objects; i++ {
		m.MustRegister(fmt.Sprintf("obj%d", i), nestedtx.Counter{})
	}
	var (
		scans, scanReads, writerTx int64
		stop                       = make(chan struct{})
		wg                         sync.WaitGroup
		firstErr                   atomic.Value
	)
	stopped := func() bool {
		select {
		case <-stop:
			return true
		default:
			return false
		}
	}
	fail := func(err error) { firstErr.CompareAndSwap(nil, err) }

	// Scanners: full sweeps of the universe, continuously. In locking
	// mode every read takes (and keeps, to commit) a read lock; in
	// snapshot mode no locks are involved.
	for s := 0; s < cfg.scanners; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stopped() {
				var err error
				if cfg.snapshot {
					err = m.RunReadOnly(func(sn *nestedtx.Snapshot) error {
						for i := 0; i < cfg.objects; i++ {
							if _, err := sn.Read(fmt.Sprintf("obj%d", i), nestedtx.CtrGet{}); err != nil {
								return err
							}
							atomic.AddInt64(&scanReads, 1)
							think(cfg.thinkNs)
						}
						return nil
					})
				} else {
					err = m.RunRetry(10, func(tx *nestedtx.Tx) error {
						for i := 0; i < cfg.objects; i++ {
							if _, err := tx.Read(fmt.Sprintf("obj%d", i), nestedtx.CtrGet{}); err != nil {
								return err
							}
							atomic.AddInt64(&scanReads, 1)
							think(cfg.thinkNs)
						}
						return nil
					})
				}
				if err != nil && !errors.Is(err, nestedtx.ErrDeadlock) {
					fail(err)
					return
				}
				if err == nil {
					atomic.AddInt64(&scans, 1)
				}
			}
		}()
	}

	// Writers: short zipfian two-object transfers, as many as the window
	// admits. Under locked scans this is where starvation bites.
	for w := 0; w < cfg.writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			zipf := rand.NewZipf(rng, 1.2, 1, uint64(cfg.objects-1))
			for !stopped() {
				a := int(zipf.Uint64())
				b := int(zipf.Uint64())
				if b == a {
					b = (a + 1) % cfg.objects
				}
				err := m.RunRetry(10, func(tx *nestedtx.Tx) error {
					if _, err := tx.Write(fmt.Sprintf("obj%d", a), nestedtx.CtrAdd{Delta: 1}); err != nil {
						return err
					}
					_, err := tx.Write(fmt.Sprintf("obj%d", b), nestedtx.CtrAdd{Delta: -1})
					return err
				})
				if err != nil {
					if !errors.Is(err, nestedtx.ErrDeadlock) {
						fail(err)
						return
					}
					continue // gave up after retries; not counted
				}
				atomic.AddInt64(&writerTx, 1)
			}
		}(seed ^ int64(0x517cc1b7)<<w)
	}

	start := time.Now()
	time.Sleep(cfg.window)
	// (scanners mid-scan drain after the window; dur measures to full stop)
	close(stop)
	wg.Wait()
	dur := time.Since(start)
	if err, _ := firstErr.Load().(error); err != nil {
		return e17Result{}, err
	}
	if err := m.CheckInvariants(); err != nil {
		return e17Result{}, err
	}
	return e17Result{
		dur:       dur,
		writerTx:  atomic.LoadInt64(&writerTx),
		scans:     atomic.LoadInt64(&scans),
		scanReads: atomic.LoadInt64(&scanReads),
		deadlocks: m.Stats().Deadlocks,
	}, nil
}

// BenchmarkE17SnapshotScans is the E17 grid: locked scans vs snapshot
// scans at the same writer workload. Writer tx/s is the headline metric
// (do long scans stall writers?); scans/s is the scan side of the trade.
func BenchmarkE17SnapshotScans(b *testing.B) {
	for _, scan := range []struct {
		name    string
		thinkNs int
	}{{"fast-scan", 0}, {"slow-scan", 20000}} {
		for _, mode := range []struct {
			name string
			snap bool
		}{{"locked", false}, {"snapshot", true}} {
			cfg := e17Config{
				objects: 64, scanners: 4, writers: 4,
				window: 300 * time.Millisecond,
				thinkNs: scan.thinkNs, snapshot: mode.snap,
			}
			b.Run(scan.name+"/"+mode.name, func(b *testing.B) {
				var agg e17Result
				for i := 0; i < b.N; i++ {
					res, err := runE17(cfg, int64(i+1))
					if err != nil {
						b.Fatal(err)
					}
					agg.dur += res.dur
					agg.writerTx += res.writerTx
					agg.scans += res.scans
					agg.scanReads += res.scanReads
					agg.deadlocks += res.deadlocks
				}
				b.ReportMetric(agg.writerTps(), "writer-tx/s")
				b.ReportMetric(agg.scansPerSec(), "scans/s")
				b.ReportMetric(float64(agg.deadlocks)/float64(b.N), "deadlocks/op")
			})
		}
	}
}

// think models per-read latency while the scan is in flight (and, in
// locked mode, while its read locks are held).
func think(ns int) {
	if ns > 0 {
		time.Sleep(time.Duration(ns))
	}
}

// TestE17SnapshotScansSmoke keeps the E17 harness honest in `go test`:
// both modes run and complete scans; the snapshot mode also commits
// writer transactions (the locked mode may legitimately starve them).
func TestE17SnapshotScansSmoke(t *testing.T) {
	for _, snap := range []bool{false, true} {
		cfg := e17Config{objects: 16, scanners: 2, writers: 2, window: 100 * time.Millisecond, snapshot: snap}
		res, err := runE17(cfg, 7)
		if err != nil {
			t.Fatalf("snapshot=%v: %v", snap, err)
		}
		if res.scans == 0 {
			t.Fatalf("snapshot=%v: no scans completed", snap)
		}
		if snap && res.writerTx == 0 {
			t.Fatal("snapshot mode: no writer transactions committed")
		}
	}
}
